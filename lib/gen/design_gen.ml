open Msched_netlist
module B = Netlist.Builder

type design = {
  netlist : Netlist.t;
  design_label : string;
  modules : int;
  mts_modules : int;
}

(* ------------------------------------------------------------------ *)
(* Paper Figure 1: Q transitions and is sampled in both domains.       *)

let fig1 () =
  let b = B.create ~design_name:"fig1" () in
  let d1 = B.add_domain b "clk1" and d2 = B.add_domain b "clk2" in
  let n1 = B.add_input b ~name:"N1" ~domain:d1 () in
  let n2 = B.add_input b ~name:"N2" ~domain:d2 () in
  let ff1 = B.add_flip_flop b ~name:"FF1" ~data:n1 ~clock:(Cell.Dom_clock d1) () in
  let ff2 = B.add_flip_flop b ~name:"FF2" ~data:n2 ~clock:(Cell.Dom_clock d2) () in
  let n3 = B.add_gate b ~name:"N3" Cell.Buf [ ff1 ] in
  let n4 = B.add_gate b ~name:"N4" Cell.Buf [ ff2 ] in
  let q = B.add_gate b ~name:"Q" Cell.And [ n3; n4 ] in
  let n6 = B.add_gate b ~name:"N6" Cell.Buf [ q ] in
  let n7 = B.add_gate b ~name:"N7" Cell.Buf [ q ] in
  let ff3 = B.add_flip_flop b ~name:"FF3" ~data:n6 ~clock:(Cell.Dom_clock d1) () in
  let ff4 = B.add_flip_flop b ~name:"FF4" ~data:n7 ~clock:(Cell.Dom_clock d2) () in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O1" ff3 in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O2" ff4 in
  {
    netlist = B.finalize b;
    design_label = "fig1";
    modules = 1;
    mts_modules = 1;
  }

(* ------------------------------------------------------------------ *)
(* Paper Figure 3: an MTS latch with logic on both Data and Gate.      *)

let fig3_latch () =
  let b = B.create ~design_name:"fig3_latch" () in
  let d1 = B.add_domain b "clk1" and d2 = B.add_domain b "clk2" in
  let i1 = B.add_input b ~name:"I1" ~domain:d1 () in
  let i2 = B.add_input b ~name:"I2" ~domain:d2 () in
  let fa = B.add_flip_flop b ~name:"FA" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  let fb = B.add_flip_flop b ~name:"FB" ~data:i2 ~clock:(Cell.Dom_clock d2) () in
  let fa2 = B.add_flip_flop b ~name:"FA2" ~data:fa ~clock:(Cell.Dom_clock d1) () in
  let fb2 = B.add_flip_flop b ~name:"FB2" ~data:fb ~clock:(Cell.Dom_clock d2) () in
  (* Data: two levels of logic mixing both domains. *)
  let dmix = B.add_gate b ~name:"DMIX" Cell.Xor [ fa; fb ] in
  let data = B.add_gate b ~name:"DATA" Cell.And [ dmix; fa2 ] in
  (* Gate: one signal per domain, so a single clock edge never races two
     gate-path inputs (a same-domain race would make the latch behavior
     timing-dependent even in real hardware). *)
  let gate = B.add_gate b ~name:"GATE" Cell.Or [ fa2; fb2 ] in
  let q =
    B.add_latch b ~name:"MTSL" ~data ~gate:(Cell.Net_trigger gate) ()
  in
  let s1 = B.add_flip_flop b ~name:"S1" ~data:q ~clock:(Cell.Dom_clock d1) () in
  let s2 = B.add_flip_flop b ~name:"S2" ~data:q ~clock:(Cell.Dom_clock d2) () in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O1" s1 in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O2" s2 in
  {
    netlist = B.finalize b;
    design_label = "fig3_latch";
    modules = 1;
    mts_modules = 1;
  }

(* ------------------------------------------------------------------ *)
(* Two-flop-synchronizer handshake: correct CDC, no MTS latches.       *)

let handshake () =
  let b = B.create ~design_name:"handshake" () in
  let da = B.add_domain b "clk_send" and db = B.add_domain b "clk_recv" in
  let start = B.add_input b ~name:"start" ~domain:da () in
  (* Sender: toggle req when start is high and ack returned. *)
  let req = B.fresh_net b ~name:"req" () in
  let ack_sync2 = B.fresh_net b ~name:"ack_sync2" () in
  let fire = B.add_gate b ~name:"fire" Cell.And [ start; ack_sync2 ] in
  let req_next = B.add_gate b ~name:"req_next" Cell.Xor [ req; fire ] in
  B.add_flip_flop_to b ~name:"req_ff" ~data:req_next
    ~clock:(Cell.Dom_clock da) ~output:req ();
  (* Data payload registered in the sender's domain. *)
  let payload =
    List.init 4 (fun i ->
        let src = B.add_input b ~name:(Printf.sprintf "din%d" i) ~domain:da () in
        B.add_flip_flop b
          ~name:(Printf.sprintf "data_ff%d" i)
          ~data:src ~clock:(Cell.Dom_clock da) ())
  in
  (* Receiver: two-flop synchronizer on req. *)
  let sync1 =
    B.add_flip_flop b ~name:"sync1" ~data:req ~clock:(Cell.Dom_clock db) ()
  in
  let sync2 =
    B.add_flip_flop b ~name:"sync2" ~data:sync1 ~clock:(Cell.Dom_clock db) ()
  in
  let sync3 =
    B.add_flip_flop b ~name:"sync3" ~data:sync2 ~clock:(Cell.Dom_clock db) ()
  in
  let new_req = B.add_gate b ~name:"new_req" Cell.Xor [ sync2; sync3 ] in
  (* Capture payload into the receiver's domain when a new req lands. *)
  let captured =
    List.mapi
      (fun i d ->
        let cur = B.fresh_net b ~name:(Printf.sprintf "cap%d" i) () in
        let nxt =
          B.add_gate b ~name:(Printf.sprintf "capmux%d" i) Cell.Mux
            [ new_req; cur; d ]
        in
        B.add_flip_flop_to b
          ~name:(Printf.sprintf "cap_ff%d" i)
          ~data:nxt ~clock:(Cell.Dom_clock db) ~output:cur ();
        cur)
      payload
  in
  (* Ack path back through a two-flop synchronizer in the sender. *)
  let ack =
    B.add_flip_flop b ~name:"ack_ff" ~data:sync2 ~clock:(Cell.Dom_clock db) ()
  in
  let ack_sync1 =
    B.add_flip_flop b ~name:"ack_sync1" ~data:ack ~clock:(Cell.Dom_clock da) ()
  in
  B.add_flip_flop_to b ~name:"ack_sync2_ff" ~data:ack_sync1
    ~clock:(Cell.Dom_clock da) ~output:ack_sync2 ();
  List.iteri
    (fun i c ->
      let (_ : Ids.Cell.t) = B.add_output b ~name:(Printf.sprintf "dout%d" i) c in
      ())
    captured;
  {
    netlist = B.finalize b;
    design_label = "handshake";
    modules = 2;
    mts_modules = 0;
  }

(* ------------------------------------------------------------------ *)
(* Random module-structured designs.                                   *)

type gen_state = {
  rng : Random.State.t;
  builder : B.t;
  doms : Ids.Dom.t array;
  pools : Ids.Net.t list array;  (* registered nets per domain *)
  mutable outputs_made : int;
}

let pool_pick st d =
  match st.pools.(d) with
  | [] ->
      let n =
        B.add_input st.builder ~domain:st.doms.(d)
          ~name:(Printf.sprintf "pi_d%d_%d" d (Random.State.int st.rng 10000))
          ()
      in
      st.pools.(d) <- n :: st.pools.(d);
      n
  | pool -> List.nth pool (Random.State.int st.rng (List.length pool))

let pool_add st d n =
  (* Bound pool size so wiring stays local-ish. *)
  let pool = n :: st.pools.(d) in
  st.pools.(d) <-
    (if List.length pool > 64 then List.filteri (fun i _ -> i < 64) pool
     else pool)

let random_gate st nets =
  let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand; Cell.Nor |] in
  let kind = kinds.(Random.State.int st.rng (Array.length kinds)) in
  let arity = match Cell.gate_arity kind with Some a -> a | None -> 2 in
  let pick () = List.nth nets (Random.State.int st.rng (List.length nets)) in
  B.add_gate st.builder kind (List.init arity (fun _ -> pick ()))

let regular_module st d ~gates ~ffs ~fanin =
  let ins = List.init fanin (fun _ -> pool_pick st d) in
  let local = ref ins in
  for _ = 1 to gates do
    let g = random_gate st !local in
    local := g :: !local
  done;
  for _ = 1 to ffs do
    let data = List.nth !local (Random.State.int st.rng (List.length !local)) in
    let q =
      B.add_flip_flop st.builder ~data ~clock:(Cell.Dom_clock st.doms.(d)) ()
    in
    local := q :: !local;
    pool_add st d q
  done;
  if st.outputs_made < 32 && Random.State.int st.rng 10 = 0 then begin
    let n = List.nth !local (Random.State.int st.rng (List.length !local)) in
    let (_ : Ids.Cell.t) = st.builder |> fun b -> B.add_output b n in
    st.outputs_made <- st.outputs_made + 1
  end

(* An MTS module mixing domains [da] and [db]: an MTS latch whose data and
   gate both combine signals from the two domains, plus a raw MTS net
   sampled back in both domains (the Figure 1 pattern). *)
let mts_module st da db =
  let a1 = pool_pick st da and a2 = pool_pick st da in
  let b1 = pool_pick st db and b2 = pool_pick st db in
  let data = B.add_gate st.builder Cell.Xor [ a1; b1 ] in
  (* One gate-path signal per domain: same-edge gate races are design bugs
     the paper's flow does not (and cannot) repair. *)
  let gate = B.add_gate st.builder Cell.Or [ a2; b2 ] in
  let q = B.add_latch st.builder ~data ~gate:(Cell.Net_trigger gate) () in
  let sa =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(da)) ()
  in
  let sb =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st da sa;
  pool_add st db sb;
  (* A plain MTS net (no latch) sampled in both domains. *)
  let m = B.add_gate st.builder Cell.And [ a1; b2 ] in
  let ma =
    B.add_flip_flop st.builder ~data:m ~clock:(Cell.Dom_clock st.doms.(da)) ()
  in
  let mb =
    B.add_flip_flop st.builder ~data:m ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st da ma;
  pool_add st db mb

(* A memory module: a [width]-bit word RAM written by domain [da] and read
   by domain [db], so every read-data net is multi-transition (write clock
   plus read-address domains).  Memory transactions dominate the critical
   path the way the paper describes for Design2: addresses go through
   ripple-carry increment chains, and the write data is a read-modify-write
   of the previous read, so paths run input → address chain → RAM → modify
   chain → RAM. *)
let memory_module st da db ~addr_bits ~width =
  let bit d = pool_pick st d in
  (* Ripple-carry incrementer: the RAM is addressed by the combinational
     next-address (sum) bits, so each access pays the full carry chain —
     the long memory-transaction paths that dominate Design2's critical
     path in the paper. *)
  let counter_chain d =
    let carry0 = bit d in
    let rec go i carry acc =
      if i >= addr_bits then List.rev acc
      else begin
        let q = B.fresh_net st.builder () in
        let sum = B.add_gate st.builder Cell.Xor [ q; carry ] in
        let carry' = B.add_gate st.builder Cell.And [ q; carry ] in
        B.add_flip_flop_to st.builder ~data:sum
          ~clock:(Cell.Dom_clock st.doms.(d))
          ~output:q ();
        go (i + 1) carry' (sum :: acc)
      end
    in
    go 0 carry0 []
  in
  let write_addr = counter_chain da in
  let read_addr = counter_chain db in
  let we = bit da in
  (* Combinational read-modify-write, chained across the data bits like a
     carry: bit i's write-back depends on bit i-1's modified read, so a
     memory transaction pays RAM-read + a [width]-deep modify chain before
     the write deadline. *)
  let carry = ref (bit da) in
  let rdatas =
    List.init width (fun _ ->
        let wdata = B.fresh_net st.builder () in
        let rdata =
          B.add_ram st.builder ~addr_bits ~write_enable:we ~write_data:wdata
            ~write_addr ~read_addr
            ~clock:(Cell.Dom_clock st.doms.(da))
            ()
        in
        let mix = B.add_gate st.builder Cell.Xor [ rdata; !carry ] in
        carry := mix;
        B.add_gate_to st.builder Cell.Buf [ mix ] ~output:wdata;
        rdata)
  in
  List.iter
    (fun rdata ->
      let sb =
        B.add_flip_flop st.builder ~data:rdata
          ~clock:(Cell.Dom_clock st.doms.(db))
          ()
      in
      pool_add st db sb)
    rdatas;
  match rdatas with
  | first :: _ ->
      let sa =
        B.add_flip_flop st.builder ~data:first
          ~clock:(Cell.Dom_clock st.doms.(da))
          ()
      in
      pool_add st da sa
  | [] -> ()

(* A flip-flop on a race-free derived clock mixing two domains: the
   compiler rewrites it into a master/slave latch pair. *)
let mts_ff_module st da db =
  let a = pool_pick st da and b = pool_pick st db in
  let dclk = B.add_gate st.builder Cell.Or [ a; b ] in
  let data = pool_pick st da in
  let q = B.add_flip_flop st.builder ~data ~clock:(Cell.Net_trigger dclk) () in
  let sa =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(da)) ()
  in
  let sb =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st da sa;
  pool_add st db sb

(* A RAM whose write clock mixes two domains — the paper's "memories under
   test" future work, handled by the write-port-as-latch extension. *)
let xwrite_ram_module st da db ~addr_bits =
  let a = pool_pick st da and b = pool_pick st db in
  let wclk = B.add_gate st.builder Cell.Or [ a; b ] in
  let we = pool_pick st da in
  let wdata = pool_pick st da in
  let write_addr = List.init addr_bits (fun _ -> pool_pick st da) in
  let read_addr = List.init addr_bits (fun _ -> pool_pick st db) in
  let rdata =
    B.add_ram st.builder ~addr_bits ~write_enable:we ~write_data:wdata
      ~write_addr ~read_addr ~clock:(Cell.Net_trigger wclk) ()
  in
  let sb =
    B.add_flip_flop st.builder ~data:rdata ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st db sb

let generate ~label ~seed ~domains ~modules ~mts_fraction ~mem_fraction
    ~gates_per_module ~ffs_per_module ~addr_bits ~mem_width ~fanin ~mts_ffs
    ~xwrite_rams =
  if domains < 1 then invalid_arg "generate: domains";
  if modules < 1 then invalid_arg "generate: modules";
  let builder = B.create ~design_name:label () in
  let doms =
    Array.init domains (fun i ->
        B.add_domain builder (Printf.sprintf "clk%d" i))
  in
  (* Materialize clock nets so gated-clock logic is expressible later and
     clock distribution is explicit in the netlist. *)
  Array.iter
    (fun d ->
      let (_ : Ids.Net.t) = B.add_clock_source builder d in
      ())
    doms;
  let st =
    {
      rng = Random.State.make [| seed; domains; modules |];
      builder;
      doms;
      pools = Array.make domains [];
      outputs_made = 0;
    }
  in
  (* Seed each domain pool with registered inputs. *)
  for d = 0 to domains - 1 do
    for _ = 1 to 3 do
      let i = B.add_input builder ~domain:doms.(d) () in
      let q =
        B.add_flip_flop builder ~data:i ~clock:(Cell.Dom_clock doms.(d)) ()
      in
      pool_add st d q
    done
  done;
  let n_mts = int_of_float (ceil (mts_fraction *. float_of_int modules)) in
  let n_mem = int_of_float (ceil (mem_fraction *. float_of_int modules)) in
  let n_mts = min n_mts modules in
  let n_mem = min n_mem (modules - n_mts) in
  let mts_modules = ref 0 in
  for m = 0 to modules - 1 do
    if domains >= 2 && m < n_mts then begin
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      mts_module st da db;
      incr mts_modules
    end
    else if domains >= 2 && m < n_mts + n_mem then begin
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      memory_module st da db ~addr_bits ~width:mem_width;
      incr mts_modules
    end
    else
      regular_module st
        (Random.State.int st.rng domains)
        ~gates:gates_per_module ~ffs:ffs_per_module ~fanin
  done;
  if domains >= 2 then begin
    for _ = 1 to mts_ffs do
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      mts_ff_module st da db
    done;
    for _ = 1 to xwrite_rams do
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      xwrite_ram_module st da db ~addr_bits:2
    done
  end;
  (* Make sure every domain pool head is observed. *)
  for d = 0 to domains - 1 do
    match st.pools.(d) with
    | n :: _ ->
        let (_ : Ids.Cell.t) = B.add_output builder n in
        ()
    | [] -> ()
  done;
  {
    netlist = B.finalize builder;
    design_label = label;
    modules;
    mts_modules = !mts_modules;
  }

let random_multidomain ?(seed = 11) ?(gates_per_module = 8)
    ?(ffs_per_module = 3) ?(mts_ffs = 0) ?(xwrite_rams = 0) ~domains ~modules
    ~mts_fraction () =
  generate ~label:"random_multidomain" ~seed ~domains ~modules ~mts_fraction
    ~mem_fraction:0.0 ~gates_per_module ~ffs_per_module ~addr_bits:4
    ~mem_width:2 ~fanin:3 ~mts_ffs ~xwrite_rams

let design1_like ?(seed = 101) ?(scale = 0.1) () =
  let modules = max 8 (int_of_float (3341.0 *. scale)) in
  generate ~label:"design1_like" ~seed ~domains:3 ~modules
    ~mts_fraction:(28.0 /. 3341.0) ~mem_fraction:(4.0 /. 3341.0)
    ~gates_per_module:8 ~ffs_per_module:3 ~addr_bits:4 ~mem_width:2 ~fanin:4
    ~mts_ffs:0 ~xwrite_rams:0

let design2_like ?(seed = 202) ?(scale = 0.1) () =
  let modules = max 8 (int_of_float (2008.0 *. scale)) in
  generate ~label:"design2_like" ~seed ~domains:2 ~modules
    ~mts_fraction:(47.0 /. 2008.0) ~mem_fraction:(89.0 /. 2008.0)
    ~gates_per_module:6 ~ffs_per_module:2 ~addr_bits:6 ~mem_width:4 ~fanin:4
    ~mts_ffs:0 ~xwrite_rams:0
