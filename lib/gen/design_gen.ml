open Msched_netlist
module B = Netlist.Builder
module Diag = Msched_diag.Diag

type design = {
  netlist : Netlist.t;
  design_label : string;
  modules : int;
  mts_modules : int;
}

(* Generator parameters are user input (CLI specs, bench configs), so
   out-of-range values surface as structured E_PARSE diagnostics — exit
   class 3, malformed input — instead of silently clamping or looping. *)
let check_arg cond fmt =
  Format.kasprintf
    (fun msg -> if not cond then Diag.fail Diag.E_PARSE "generator: %s" msg)
    fmt

let check_fraction name v =
  check_arg (v >= 0.0 && v <= 1.0) "%s %g outside [0,1]" name v

(* ------------------------------------------------------------------ *)
(* Paper Figure 1: Q transitions and is sampled in both domains.       *)

let fig1 () =
  let b = B.create ~design_name:"fig1" () in
  let d1 = B.add_domain b "clk1" and d2 = B.add_domain b "clk2" in
  let n1 = B.add_input b ~name:"N1" ~domain:d1 () in
  let n2 = B.add_input b ~name:"N2" ~domain:d2 () in
  let ff1 = B.add_flip_flop b ~name:"FF1" ~data:n1 ~clock:(Cell.Dom_clock d1) () in
  let ff2 = B.add_flip_flop b ~name:"FF2" ~data:n2 ~clock:(Cell.Dom_clock d2) () in
  let n3 = B.add_gate b ~name:"N3" Cell.Buf [ ff1 ] in
  let n4 = B.add_gate b ~name:"N4" Cell.Buf [ ff2 ] in
  let q = B.add_gate b ~name:"Q" Cell.And [ n3; n4 ] in
  let n6 = B.add_gate b ~name:"N6" Cell.Buf [ q ] in
  let n7 = B.add_gate b ~name:"N7" Cell.Buf [ q ] in
  let ff3 = B.add_flip_flop b ~name:"FF3" ~data:n6 ~clock:(Cell.Dom_clock d1) () in
  let ff4 = B.add_flip_flop b ~name:"FF4" ~data:n7 ~clock:(Cell.Dom_clock d2) () in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O1" ff3 in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O2" ff4 in
  {
    netlist = B.finalize b;
    design_label = "fig1";
    modules = 1;
    mts_modules = 1;
  }

(* ------------------------------------------------------------------ *)
(* Paper Figure 3: an MTS latch with logic on both Data and Gate.      *)

let fig3_latch () =
  let b = B.create ~design_name:"fig3_latch" () in
  let d1 = B.add_domain b "clk1" and d2 = B.add_domain b "clk2" in
  let i1 = B.add_input b ~name:"I1" ~domain:d1 () in
  let i2 = B.add_input b ~name:"I2" ~domain:d2 () in
  let fa = B.add_flip_flop b ~name:"FA" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  let fb = B.add_flip_flop b ~name:"FB" ~data:i2 ~clock:(Cell.Dom_clock d2) () in
  let fa2 = B.add_flip_flop b ~name:"FA2" ~data:fa ~clock:(Cell.Dom_clock d1) () in
  let fb2 = B.add_flip_flop b ~name:"FB2" ~data:fb ~clock:(Cell.Dom_clock d2) () in
  (* Data: two levels of logic mixing both domains. *)
  let dmix = B.add_gate b ~name:"DMIX" Cell.Xor [ fa; fb ] in
  let data = B.add_gate b ~name:"DATA" Cell.And [ dmix; fa2 ] in
  (* Gate: one signal per domain, so a single clock edge never races two
     gate-path inputs (a same-domain race would make the latch behavior
     timing-dependent even in real hardware). *)
  let gate = B.add_gate b ~name:"GATE" Cell.Or [ fa2; fb2 ] in
  let q =
    B.add_latch b ~name:"MTSL" ~data ~gate:(Cell.Net_trigger gate) ()
  in
  let s1 = B.add_flip_flop b ~name:"S1" ~data:q ~clock:(Cell.Dom_clock d1) () in
  let s2 = B.add_flip_flop b ~name:"S2" ~data:q ~clock:(Cell.Dom_clock d2) () in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O1" s1 in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"O2" s2 in
  {
    netlist = B.finalize b;
    design_label = "fig3_latch";
    modules = 1;
    mts_modules = 1;
  }

(* ------------------------------------------------------------------ *)
(* Two-flop-synchronizer handshake: correct CDC, no MTS latches.       *)

let handshake () =
  let b = B.create ~design_name:"handshake" () in
  let da = B.add_domain b "clk_send" and db = B.add_domain b "clk_recv" in
  let start = B.add_input b ~name:"start" ~domain:da () in
  (* Sender: toggle req when start is high and ack returned. *)
  let req = B.fresh_net b ~name:"req" () in
  let ack_sync2 = B.fresh_net b ~name:"ack_sync2" () in
  let fire = B.add_gate b ~name:"fire" Cell.And [ start; ack_sync2 ] in
  let req_next = B.add_gate b ~name:"req_next" Cell.Xor [ req; fire ] in
  B.add_flip_flop_to b ~name:"req_ff" ~data:req_next
    ~clock:(Cell.Dom_clock da) ~output:req ();
  (* Data payload registered in the sender's domain. *)
  let payload =
    List.init 4 (fun i ->
        let src = B.add_input b ~name:(Printf.sprintf "din%d" i) ~domain:da () in
        B.add_flip_flop b
          ~name:(Printf.sprintf "data_ff%d" i)
          ~data:src ~clock:(Cell.Dom_clock da) ())
  in
  (* Receiver: two-flop synchronizer on req. *)
  let sync1 =
    B.add_flip_flop b ~name:"sync1" ~data:req ~clock:(Cell.Dom_clock db) ()
  in
  let sync2 =
    B.add_flip_flop b ~name:"sync2" ~data:sync1 ~clock:(Cell.Dom_clock db) ()
  in
  let sync3 =
    B.add_flip_flop b ~name:"sync3" ~data:sync2 ~clock:(Cell.Dom_clock db) ()
  in
  let new_req = B.add_gate b ~name:"new_req" Cell.Xor [ sync2; sync3 ] in
  (* Capture payload into the receiver's domain when a new req lands. *)
  let captured =
    List.mapi
      (fun i d ->
        let cur = B.fresh_net b ~name:(Printf.sprintf "cap%d" i) () in
        let nxt =
          B.add_gate b ~name:(Printf.sprintf "capmux%d" i) Cell.Mux
            [ new_req; cur; d ]
        in
        B.add_flip_flop_to b
          ~name:(Printf.sprintf "cap_ff%d" i)
          ~data:nxt ~clock:(Cell.Dom_clock db) ~output:cur ();
        cur)
      payload
  in
  (* Ack path back through a two-flop synchronizer in the sender. *)
  let ack =
    B.add_flip_flop b ~name:"ack_ff" ~data:sync2 ~clock:(Cell.Dom_clock db) ()
  in
  let ack_sync1 =
    B.add_flip_flop b ~name:"ack_sync1" ~data:ack ~clock:(Cell.Dom_clock da) ()
  in
  B.add_flip_flop_to b ~name:"ack_sync2_ff" ~data:ack_sync1
    ~clock:(Cell.Dom_clock da) ~output:ack_sync2 ();
  List.iteri
    (fun i c ->
      let (_ : Ids.Cell.t) = B.add_output b ~name:(Printf.sprintf "dout%d" i) c in
      ())
    captured;
  {
    netlist = B.finalize b;
    design_label = "handshake";
    modules = 2;
    mts_modules = 0;
  }

(* ------------------------------------------------------------------ *)
(* Random module-structured designs.                                   *)

type gen_state = {
  rng : Random.State.t;
  builder : B.t;
  doms : Ids.Dom.t array;
  pools : Ids.Net.t list array;  (* registered nets per domain *)
  mutable outputs_made : int;
}

let pool_pick st d =
  match st.pools.(d) with
  | [] ->
      let n =
        B.add_input st.builder ~domain:st.doms.(d)
          ~name:(Printf.sprintf "pi_d%d_%d" d (Random.State.int st.rng 10000))
          ()
      in
      st.pools.(d) <- n :: st.pools.(d);
      n
  | pool -> List.nth pool (Random.State.int st.rng (List.length pool))

let pool_add st d n =
  (* Bound pool size so wiring stays local-ish. *)
  let pool = n :: st.pools.(d) in
  st.pools.(d) <-
    (if List.length pool > 64 then List.filteri (fun i _ -> i < 64) pool
     else pool)

let random_gate st nets =
  let kinds = [| Cell.And; Cell.Or; Cell.Xor; Cell.Nand; Cell.Nor |] in
  let kind = kinds.(Random.State.int st.rng (Array.length kinds)) in
  let arity = match Cell.gate_arity kind with Some a -> a | None -> 2 in
  let pick () = List.nth nets (Random.State.int st.rng (List.length nets)) in
  B.add_gate st.builder kind (List.init arity (fun _ -> pick ()))

let regular_module st d ~gates ~ffs ~fanin =
  let ins = List.init fanin (fun _ -> pool_pick st d) in
  let local = ref ins in
  for _ = 1 to gates do
    let g = random_gate st !local in
    local := g :: !local
  done;
  for _ = 1 to ffs do
    let data = List.nth !local (Random.State.int st.rng (List.length !local)) in
    let q =
      B.add_flip_flop st.builder ~data ~clock:(Cell.Dom_clock st.doms.(d)) ()
    in
    local := q :: !local;
    pool_add st d q
  done;
  if st.outputs_made < 32 && Random.State.int st.rng 10 = 0 then begin
    let n = List.nth !local (Random.State.int st.rng (List.length !local)) in
    let (_ : Ids.Cell.t) = st.builder |> fun b -> B.add_output b n in
    st.outputs_made <- st.outputs_made + 1
  end

(* An MTS module mixing domains [da] and [db]: an MTS latch whose data and
   gate both combine signals from the two domains, plus a raw MTS net
   sampled back in both domains (the Figure 1 pattern). *)
let mts_module st da db =
  let a1 = pool_pick st da and a2 = pool_pick st da in
  let b1 = pool_pick st db and b2 = pool_pick st db in
  let data = B.add_gate st.builder Cell.Xor [ a1; b1 ] in
  (* One gate-path signal per domain: same-edge gate races are design bugs
     the paper's flow does not (and cannot) repair. *)
  let gate = B.add_gate st.builder Cell.Or [ a2; b2 ] in
  let q = B.add_latch st.builder ~data ~gate:(Cell.Net_trigger gate) () in
  let sa =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(da)) ()
  in
  let sb =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st da sa;
  pool_add st db sb;
  (* A plain MTS net (no latch) sampled in both domains. *)
  let m = B.add_gate st.builder Cell.And [ a1; b2 ] in
  let ma =
    B.add_flip_flop st.builder ~data:m ~clock:(Cell.Dom_clock st.doms.(da)) ()
  in
  let mb =
    B.add_flip_flop st.builder ~data:m ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st da ma;
  pool_add st db mb

(* A memory module: a [width]-bit word RAM written by domain [da] and read
   by domain [db], so every read-data net is multi-transition (write clock
   plus read-address domains).  Memory transactions dominate the critical
   path the way the paper describes for Design2: addresses go through
   ripple-carry increment chains, and the write data is a read-modify-write
   of the previous read, so paths run input → address chain → RAM → modify
   chain → RAM. *)
let memory_module st da db ~addr_bits ~width =
  let bit d = pool_pick st d in
  (* Ripple-carry incrementer: the RAM is addressed by the combinational
     next-address (sum) bits, so each access pays the full carry chain —
     the long memory-transaction paths that dominate Design2's critical
     path in the paper. *)
  let counter_chain d =
    let carry0 = bit d in
    let rec go i carry acc =
      if i >= addr_bits then List.rev acc
      else begin
        let q = B.fresh_net st.builder () in
        let sum = B.add_gate st.builder Cell.Xor [ q; carry ] in
        let carry' = B.add_gate st.builder Cell.And [ q; carry ] in
        B.add_flip_flop_to st.builder ~data:sum
          ~clock:(Cell.Dom_clock st.doms.(d))
          ~output:q ();
        go (i + 1) carry' (sum :: acc)
      end
    in
    go 0 carry0 []
  in
  let write_addr = counter_chain da in
  let read_addr = counter_chain db in
  let we = bit da in
  (* Combinational read-modify-write, chained across the data bits like a
     carry: bit i's write-back depends on bit i-1's modified read, so a
     memory transaction pays RAM-read + a [width]-deep modify chain before
     the write deadline. *)
  let carry = ref (bit da) in
  let rdatas =
    List.init width (fun _ ->
        let wdata = B.fresh_net st.builder () in
        let rdata =
          B.add_ram st.builder ~addr_bits ~write_enable:we ~write_data:wdata
            ~write_addr ~read_addr
            ~clock:(Cell.Dom_clock st.doms.(da))
            ()
        in
        let mix = B.add_gate st.builder Cell.Xor [ rdata; !carry ] in
        carry := mix;
        B.add_gate_to st.builder Cell.Buf [ mix ] ~output:wdata;
        rdata)
  in
  List.iter
    (fun rdata ->
      let sb =
        B.add_flip_flop st.builder ~data:rdata
          ~clock:(Cell.Dom_clock st.doms.(db))
          ()
      in
      pool_add st db sb)
    rdatas;
  match rdatas with
  | first :: _ ->
      let sa =
        B.add_flip_flop st.builder ~data:first
          ~clock:(Cell.Dom_clock st.doms.(da))
          ()
      in
      pool_add st da sa
  | [] -> ()

(* A flip-flop on a race-free derived clock mixing two domains: the
   compiler rewrites it into a master/slave latch pair. *)
let mts_ff_module st da db =
  let a = pool_pick st da and b = pool_pick st db in
  let dclk = B.add_gate st.builder Cell.Or [ a; b ] in
  let data = pool_pick st da in
  let q = B.add_flip_flop st.builder ~data ~clock:(Cell.Net_trigger dclk) () in
  let sa =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(da)) ()
  in
  let sb =
    B.add_flip_flop st.builder ~data:q ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st da sa;
  pool_add st db sb

(* A RAM whose write clock mixes two domains — the paper's "memories under
   test" future work, handled by the write-port-as-latch extension. *)
let xwrite_ram_module st da db ~addr_bits =
  let a = pool_pick st da and b = pool_pick st db in
  let wclk = B.add_gate st.builder Cell.Or [ a; b ] in
  let we = pool_pick st da in
  let wdata = pool_pick st da in
  let write_addr = List.init addr_bits (fun _ -> pool_pick st da) in
  let read_addr = List.init addr_bits (fun _ -> pool_pick st db) in
  let rdata =
    B.add_ram st.builder ~addr_bits ~write_enable:we ~write_data:wdata
      ~write_addr ~read_addr ~clock:(Cell.Net_trigger wclk) ()
  in
  let sb =
    B.add_flip_flop st.builder ~data:rdata ~clock:(Cell.Dom_clock st.doms.(db)) ()
  in
  pool_add st db sb

let generate ~label ~seed ~domains ~modules ~mts_fraction ~mem_fraction
    ~gates_per_module ~ffs_per_module ~addr_bits ~mem_width ~fanin ~mts_ffs
    ~xwrite_rams =
  check_arg (domains >= 1) "domains must be >= 1, got %d" domains;
  check_arg (modules >= 1) "modules must be >= 1, got %d" modules;
  check_fraction "mts_fraction" mts_fraction;
  check_fraction "mem_fraction" mem_fraction;
  check_arg (gates_per_module >= 0) "gates_per_module must be >= 0, got %d"
    gates_per_module;
  check_arg (ffs_per_module >= 0) "ffs_per_module must be >= 0, got %d"
    ffs_per_module;
  check_arg (fanin >= 1) "fanin must be >= 1, got %d" fanin;
  check_arg
    (addr_bits >= 1 && addr_bits <= 10)
    "addr_bits must be in [1,10], got %d" addr_bits;
  check_arg (mem_width >= 1) "mem_width must be >= 1, got %d" mem_width;
  check_arg (mts_ffs >= 0) "mts_ffs must be >= 0, got %d" mts_ffs;
  check_arg (xwrite_rams >= 0) "xwrite_rams must be >= 0, got %d" xwrite_rams;
  let builder = B.create ~design_name:label () in
  let doms =
    Array.init domains (fun i ->
        B.add_domain builder (Printf.sprintf "clk%d" i))
  in
  (* Materialize clock nets so gated-clock logic is expressible later and
     clock distribution is explicit in the netlist. *)
  Array.iter
    (fun d ->
      let (_ : Ids.Net.t) = B.add_clock_source builder d in
      ())
    doms;
  let st =
    {
      rng = Random.State.make [| seed; domains; modules |];
      builder;
      doms;
      pools = Array.make domains [];
      outputs_made = 0;
    }
  in
  (* Seed each domain pool with registered inputs. *)
  for d = 0 to domains - 1 do
    for _ = 1 to 3 do
      let i = B.add_input builder ~domain:doms.(d) () in
      let q =
        B.add_flip_flop builder ~data:i ~clock:(Cell.Dom_clock doms.(d)) ()
      in
      pool_add st d q
    done
  done;
  let n_mts = int_of_float (ceil (mts_fraction *. float_of_int modules)) in
  let n_mem = int_of_float (ceil (mem_fraction *. float_of_int modules)) in
  let n_mts = min n_mts modules in
  let n_mem = min n_mem (modules - n_mts) in
  let mts_modules = ref 0 in
  for m = 0 to modules - 1 do
    if domains >= 2 && m < n_mts then begin
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      mts_module st da db;
      incr mts_modules
    end
    else if domains >= 2 && m < n_mts + n_mem then begin
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      memory_module st da db ~addr_bits ~width:mem_width;
      incr mts_modules
    end
    else
      regular_module st
        (Random.State.int st.rng domains)
        ~gates:gates_per_module ~ffs:ffs_per_module ~fanin
  done;
  if domains >= 2 then begin
    for _ = 1 to mts_ffs do
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      mts_ff_module st da db
    done;
    for _ = 1 to xwrite_rams do
      let da = Random.State.int st.rng domains in
      let db = (da + 1 + Random.State.int st.rng (domains - 1)) mod domains in
      xwrite_ram_module st da db ~addr_bits:2
    done
  end;
  (* Make sure every domain pool head is observed. *)
  for d = 0 to domains - 1 do
    match st.pools.(d) with
    | n :: _ ->
        let (_ : Ids.Cell.t) = B.add_output builder n in
        ()
    | [] -> ()
  done;
  {
    netlist = B.finalize builder;
    design_label = label;
    modules;
    mts_modules = !mts_modules;
  }

let random_multidomain ?(seed = 11) ?(gates_per_module = 8)
    ?(ffs_per_module = 3) ?(mts_ffs = 0) ?(xwrite_rams = 0) ~domains ~modules
    ~mts_fraction () =
  generate ~label:"random_multidomain" ~seed ~domains ~modules ~mts_fraction
    ~mem_fraction:0.0 ~gates_per_module ~ffs_per_module ~addr_bits:4
    ~mem_width:2 ~fanin:3 ~mts_ffs ~xwrite_rams

let design1_like ?(seed = 101) ?(scale = 0.1) () =
  let modules = max 8 (int_of_float (3341.0 *. scale)) in
  generate ~label:"design1_like" ~seed ~domains:3 ~modules
    ~mts_fraction:(28.0 /. 3341.0) ~mem_fraction:(4.0 /. 3341.0)
    ~gates_per_module:8 ~ffs_per_module:3 ~addr_bits:4 ~mem_width:2 ~fanin:4
    ~mts_ffs:0 ~xwrite_rams:0

let design2_like ?(seed = 202) ?(scale = 0.1) () =
  let modules = max 8 (int_of_float (2008.0 *. scale)) in
  generate ~label:"design2_like" ~seed ~domains:2 ~modules
    ~mts_fraction:(47.0 /. 2008.0) ~mem_fraction:(89.0 /. 2008.0)
    ~gates_per_module:6 ~ffs_per_module:2 ~addr_bits:6 ~mem_width:4 ~fanin:4
    ~mts_ffs:0 ~xwrite_rams:0

(* ------------------------------------------------------------------ *)
(* GALS and handshake-dominated workload families (ROADMAP scenario
   diversity; shapes from arXiv 0802.3441 and 0710.4711).              *)

(* Seed each domain pool with a couple of registered primary inputs so
   [pool_pick] never has to invent ad-hoc inputs mid-module. *)
let seed_pools st ~per_domain =
  Array.iteri
    (fun d dom ->
      for _ = 1 to per_domain do
        let i = B.add_input st.builder ~domain:dom () in
        let q =
          B.add_flip_flop st.builder ~data:i ~clock:(Cell.Dom_clock dom) ()
        in
        pool_add st d q
      done)
    st.doms

(* Observe the head of every domain pool so no domain's logic is dead. *)
let observe_pools st =
  Array.iteri
    (fun d _ ->
      match st.pools.(d) with
      | n :: _ ->
          let (_ : Ids.Cell.t) = B.add_output st.builder n in
          ()
      | [] -> ())
    st.doms

let fresh_state ~label ~seed ~domain_name ~domains =
  let builder = B.create ~design_name:label () in
  let doms =
    Array.init domains (fun i -> B.add_domain builder (domain_name i))
  in
  let clks = Array.map (fun d -> B.add_clock_source builder d) doms in
  let st =
    {
      rng = Random.State.make [| seed; domains; Hashtbl.hash label |];
      builder;
      doms;
      pools = Array.make domains [];
      outputs_made = 0;
    }
  in
  (st, clks)

(* A chain of [depth] flip-flops in domain [d] — the synchronizer half of a
   handshake wrapper. *)
let sync_chain st ~name d src ~depth =
  let rec go k src =
    if k > depth then src
    else
      go (k + 1)
        (B.add_flip_flop st.builder
           ~name:(Printf.sprintf "%s%d" name k)
           ~data:src
           ~clock:(Cell.Dom_clock st.doms.(d))
           ())
  in
  go 1 src

(* One req/ack handshake wrapper carrying [payload_bits] bits from island
   [i] to island [j]: the [handshake] idiom generalized to depth-[depth]
   synchronizer chains.  Captured payload bits land in island [j]'s pool,
   so cross-island traffic actually feeds downstream logic. *)
let handshake_wrapper st ~prefix i j ~depth ~payload_bits =
  let b = st.builder in
  let di = st.doms.(i) and dj = st.doms.(j) in
  let req = B.fresh_net b ~name:(prefix ^ "_req") () in
  let ack_sync = B.fresh_net b ~name:(prefix ^ "_ack_sync") () in
  let start = pool_pick st i in
  let fire = B.add_gate b ~name:(prefix ^ "_fire") Cell.And [ start; ack_sync ] in
  let req_next =
    B.add_gate b ~name:(prefix ^ "_req_next") Cell.Xor [ req; fire ]
  in
  B.add_flip_flop_to b ~name:(prefix ^ "_req_ff") ~data:req_next
    ~clock:(Cell.Dom_clock di) ~output:req ();
  (* Receiver: depth-k synchronizer plus one edge-detect stage. *)
  let sync_k = sync_chain st ~name:(prefix ^ "_req_sync") j req ~depth in
  let edge_ff =
    B.add_flip_flop b ~name:(prefix ^ "_req_edge") ~data:sync_k
      ~clock:(Cell.Dom_clock dj) ()
  in
  let new_req =
    B.add_gate b ~name:(prefix ^ "_new_req") Cell.Xor [ sync_k; edge_ff ]
  in
  for bit = 0 to payload_bits - 1 do
    let data = pool_pick st i in
    let payload =
      B.add_flip_flop b
        ~name:(Printf.sprintf "%s_data%d" prefix bit)
        ~data ~clock:(Cell.Dom_clock di) ()
    in
    let cur = B.fresh_net b ~name:(Printf.sprintf "%s_cap%d" prefix bit) () in
    let nxt =
      B.add_gate b
        ~name:(Printf.sprintf "%s_capmux%d" prefix bit)
        Cell.Mux [ new_req; cur; payload ]
    in
    B.add_flip_flop_to b
      ~name:(Printf.sprintf "%s_cap_ff%d" prefix bit)
      ~data:nxt ~clock:(Cell.Dom_clock dj) ~output:cur ();
    pool_add st j cur
  done;
  (* Ack path back through a depth-k synchronizer in the sender. *)
  let ack =
    B.add_flip_flop b ~name:(prefix ^ "_ack_ff") ~data:sync_k
      ~clock:(Cell.Dom_clock dj) ()
  in
  let ack_tail = sync_chain st ~name:(prefix ^ "_ack_sync") i ack ~depth:(depth - 1) in
  B.add_flip_flop_to b
    ~name:(prefix ^ "_ack_sync_ff")
    ~data:ack_tail ~clock:(Cell.Dom_clock di) ~output:ack_sync ();
  (* The receiver-side activity signal: high for one dj cycle per word. *)
  edge_ff

(* An integrated-clock-gating cell in domain [d]: [enable] is latched while
   the root clock is low (so the gated clock never glitches at the rising
   edge) and ANDed with the clock-source net.  Returns the gated clock net.
   The gating latch's gate cone is the single-domain Not of the root clock,
   so no clock edge ever races two gate-path inputs. *)
let clock_gate st ~prefix d clk enable =
  let b = st.builder in
  let nclk = B.add_gate b ~name:(prefix ^ "_nclk") Cell.Not [ clk ] in
  let latched =
    B.add_latch b ~name:(prefix ^ "_gate_latch") ~data:enable
      ~gate:(Cell.Net_trigger nclk) ()
  in
  ignore d;
  B.add_gate b ~name:(prefix ^ "_gclk") Cell.And [ clk; latched ]

let gals_islands ?(seed = 31) ?(island_size = 4) ?(wrapper_depth = 2) ~islands
    () =
  check_arg (islands >= 2) "gals_islands: islands must be >= 2, got %d" islands;
  check_arg (island_size >= 1) "gals_islands: island_size must be >= 1, got %d"
    island_size;
  check_arg (wrapper_depth >= 2)
    "gals_islands: wrapper_depth must be >= 2, got %d" wrapper_depth;
  let label = "gals_islands" in
  let st, clks =
    fresh_state ~label
      ~seed:(seed + (1000 * island_size) + wrapper_depth)
      ~domain_name:(Printf.sprintf "island%d")
      ~domains:islands
  in
  seed_pools st ~per_domain:2;
  (* Local pausible-clock island logic. *)
  for i = 0 to islands - 1 do
    for _ = 1 to island_size do
      regular_module st i ~gates:5 ~ffs:2 ~fanin:3
    done
  done;
  (* Handshake wrappers around the ring; every island sends to its
     successor, and every island's clock can be paused by the wrapper. *)
  for i = 0 to islands - 1 do
    let j = (i + 1) mod islands in
    let prefix = Printf.sprintf "hs%d_%d" i j in
    let active = handshake_wrapper st ~prefix i j ~depth:wrapper_depth ~payload_bits:2 in
    (* Pausible clock: a slice of island [j]'s state advances only while
       the wrapper grants activity.  Enable and gate are both island-local
       (the pause decision was already synchronized), so the gated clock
       transitions only in island [j]. *)
    let gclk = clock_gate st ~prefix j clks.(j) active in
    let paused =
      B.add_flip_flop st.builder
        ~name:(prefix ^ "_paused_ff")
        ~data:(pool_pick st j)
        ~clock:(Cell.Net_trigger gclk) ()
    in
    pool_add st j paused
  done;
  observe_pools st;
  {
    netlist = B.finalize st.builder;
    design_label = label;
    modules = islands * island_size;
    mts_modules = 0;
  }

(* The number of cross-domain MTS crossings a [dense_crossing] design with
   [domains] domains and pairwise density [density] will contain — exposed
   so tests and benches can assert the realized MTS fraction exactly. *)
let dense_crossing_count ~domains ~density =
  let npairs = domains * (domains - 1) / 2 in
  let raw = int_of_float (Float.round (density *. float_of_int npairs)) in
  if density > 0.0 then min npairs (max 1 raw) else 0

let dense_crossing ?(seed = 47) ?(module_gates = 4) ~domains ~density () =
  check_arg (domains >= 2) "dense_crossing: domains must be >= 2, got %d"
    domains;
  check_fraction "dense_crossing: density" density;
  check_arg (module_gates >= 0)
    "dense_crossing: module_gates must be >= 0, got %d" module_gates;
  let label = "dense_crossing" in
  let st, _clks =
    fresh_state ~label
      ~seed:(seed + (7 * module_gates))
      ~domain_name:(Printf.sprintf "dom%d")
      ~domains
  in
  seed_pools st ~per_domain:2;
  (* One small module of local logic per domain. *)
  for d = 0 to domains - 1 do
    regular_module st d ~gates:module_gates ~ffs:2 ~fanin:3
  done;
  (* The pairwise-crossing density matrix, realized exactly: shuffle all
     unordered domain pairs and take the first [density]-fraction of them.
     Each chosen pair gets a full MTS crossing (latch + raw MTS net), so
     the design's MTS fraction is [crossings / (domains + crossings)] by
     construction — far above the paper's Design1/Design2. *)
  let pairs =
    Array.of_list
      (List.concat
         (List.init domains (fun i ->
              List.init (domains - 1 - i) (fun k -> (i, i + 1 + k)))))
  in
  for k = Array.length pairs - 1 downto 1 do
    let r = Random.State.int st.rng (k + 1) in
    let tmp = pairs.(k) in
    pairs.(k) <- pairs.(r);
    pairs.(r) <- tmp
  done;
  let crossings = dense_crossing_count ~domains ~density in
  for k = 0 to crossings - 1 do
    let i, j = pairs.(k) in
    mts_module st i j
  done;
  observe_pools st;
  {
    netlist = B.finalize st.builder;
    design_label = label;
    modules = domains + crossings;
    mts_modules = crossings;
  }

let gated_memory_fabric ?(seed = 53) ?(addr_bits = 3) ?(domains = 3) ~banks ()
    =
  check_arg (banks >= 1) "gated_memory_fabric: banks must be >= 1, got %d"
    banks;
  check_arg (domains >= 2) "gated_memory_fabric: domains must be >= 2, got %d"
    domains;
  check_arg
    (addr_bits >= 1 && addr_bits <= 8)
    "gated_memory_fabric: addr_bits must be in [1,8], got %d" addr_bits;
  let label = "gated_memory_fabric" in
  let st, clks =
    fresh_state ~label
      ~seed:(seed + (11 * addr_bits) + banks)
      ~domain_name:(Printf.sprintf "fab%d")
      ~domains
  in
  seed_pools st ~per_domain:2;
  for d = 0 to domains - 1 do
    regular_module st d ~gates:4 ~ffs:2 ~fanin:3
  done;
  (* Clock-gated RAM banks with cross-domain write traffic: bank [b] lives
     in home domain [db]; its write clock is the [db] root clock gated by
     an enable registered in a *different* domain [dw] (so the gating latch
     is an MTS latch and the RAM's write port fires in two domains — the
     write-port-as-latch extension), its write data and enable come from
     [dw], and its read data is sampled both at home and by a third reader
     domain [dr]. *)
  for b = 0 to banks - 1 do
    let db = b mod domains in
    let dw = (db + 1 + Random.State.int st.rng (domains - 1)) mod domains in
    let dr = (db + 1 + Random.State.int st.rng (domains - 1)) mod domains in
    let prefix = Printf.sprintf "bank%d" b in
    let enable = pool_pick st dw in
    let gclk = clock_gate st ~prefix db clks.(db) enable in
    let we = pool_pick st dw in
    let wdata = pool_pick st dw in
    let write_addr = List.init addr_bits (fun _ -> pool_pick st db) in
    let read_addr = List.init addr_bits (fun _ -> pool_pick st dr) in
    let rdata =
      B.add_ram st.builder ~name:(prefix ^ "_ram") ~addr_bits ~write_enable:we
        ~write_data:wdata ~write_addr ~read_addr ~clock:(Cell.Net_trigger gclk)
        ()
    in
    let home =
      B.add_flip_flop st.builder ~name:(prefix ^ "_home") ~data:rdata
        ~clock:(Cell.Dom_clock st.doms.(db)) ()
    in
    let remote =
      B.add_flip_flop st.builder ~name:(prefix ^ "_reader") ~data:rdata
        ~clock:(Cell.Dom_clock st.doms.(dr)) ()
    in
    pool_add st db home;
    pool_add st dr remote
  done;
  observe_pools st;
  {
    netlist = B.finalize st.builder;
    design_label = label;
    modules = domains + banks;
    mts_modules = banks;
  }

(* ------------------------------------------------------------------ *)
(* Generator specs: one textual grammar shared by the CLI, the bench and
   the experiment harness, e.g. "gals:islands=16,size=8".               *)

let spec_help =
  "fig1 | fig3 | handshake | design1[:scale=F,seed=N] | design2[:scale=F,seed=N] \
   | random:domains=N,modules=N,mts=F[,seed=N,gates=N,ffs=N,mtsffs=N,xrams=N] \
   | gals:islands=N[,size=N,depth=N,seed=N] \
   | dense:domains=N,density=F[,gates=N,seed=N] \
   | fabric:banks=N[,domains=N,addr=N,seed=N]"

let parse_fields s =
  if String.trim s = "" then Error "empty parameter list"
  else
    List.fold_left
      (fun acc field ->
        match acc with
        | Error _ -> acc
        | Ok l -> (
            match String.index_opt field '=' with
            | None ->
                Error
                  (Printf.sprintf "malformed field %S (expected key=value)"
                     field)
            | Some i ->
                let k = String.trim (String.sub field 0 i) in
                let v =
                  String.trim
                    (String.sub field (i + 1) (String.length field - i - 1))
                in
                if k = "" || v = "" then
                  Error
                    (Printf.sprintf "malformed field %S (expected key=value)"
                       field)
                else Ok ((k, v) :: l)))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

let int_key r v =
  match int_of_string_opt v with
  | Some n ->
      r := n;
      None
  | None -> Some (Printf.sprintf "%S is not an integer" v)

let float_key r v =
  match float_of_string_opt v with
  | Some f ->
      r := f;
      None
  | None -> Some (Printf.sprintf "%S is not a number" v)

(* Apply every parsed field through its keyed setter; [Some msg] on the
   first unknown key or unparseable value. *)
let apply_fields keys fields =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match List.assoc_opt k keys with
          | None ->
              Some
                (Printf.sprintf "unknown key %S (expected %s)" k
                   (String.concat "|" (List.map fst keys)))
          | Some set -> (
              match set v with
              | None -> None
              | Some msg -> Some (Printf.sprintf "key %s: %s" k msg))))
    None fields

let of_spec spec =
  let family, fields =
    match String.index_opt spec ':' with
    | None -> (spec, Ok [])
    | Some i ->
        ( String.sub spec 0 i,
          parse_fields (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let fail msg =
    Error
      (Diag.error Diag.E_PARSE "generator spec %S: %s (grammar: %s)" spec msg
         spec_help)
  in
  match fields with
  | Error msg -> fail msg
  | Ok fields -> (
      let no_params build =
        if fields <> [] then Error "takes no parameters" else Ok (build ())
      in
      let with_keys keys build =
        match apply_fields keys fields with
        | Some msg -> Error msg
        | None -> Ok (build ())
      in
      let run () =
        match family with
        | "fig1" -> no_params fig1
        | "fig3" | "fig3_latch" -> no_params fig3_latch
        | "handshake" -> no_params handshake
        | "design1" ->
            let seed = ref 101 and scale = ref 0.1 in
            with_keys
              [ ("seed", int_key seed); ("scale", float_key scale) ]
              (fun () -> design1_like ~seed:!seed ~scale:!scale ())
        | "design2" ->
            let seed = ref 202 and scale = ref 0.1 in
            with_keys
              [ ("seed", int_key seed); ("scale", float_key scale) ]
              (fun () -> design2_like ~seed:!seed ~scale:!scale ())
        | "random" ->
            let seed = ref 11
            and doms = ref 3
            and modules = ref 20
            and mts = ref 0.2
            and gates = ref 8
            and ffs = ref 3
            and mts_ffs = ref 0
            and xrams = ref 0 in
            with_keys
              [
                ("seed", int_key seed);
                ("domains", int_key doms);
                ("modules", int_key modules);
                ("mts", float_key mts);
                ("gates", int_key gates);
                ("ffs", int_key ffs);
                ("mtsffs", int_key mts_ffs);
                ("xrams", int_key xrams);
              ]
              (fun () ->
                random_multidomain ~seed:!seed ~gates_per_module:!gates
                  ~ffs_per_module:!ffs ~mts_ffs:!mts_ffs ~xwrite_rams:!xrams
                  ~domains:!doms ~modules:!modules ~mts_fraction:!mts ())
        | "gals" ->
            let seed = ref 31 and islands = ref 8 and size = ref 4 and depth = ref 2 in
            with_keys
              [
                ("seed", int_key seed);
                ("islands", int_key islands);
                ("size", int_key size);
                ("depth", int_key depth);
              ]
              (fun () ->
                gals_islands ~seed:!seed ~island_size:!size
                  ~wrapper_depth:!depth ~islands:!islands ())
        | "dense" ->
            let seed = ref 47 and doms = ref 12 and density = ref 0.3 and gates = ref 4 in
            with_keys
              [
                ("seed", int_key seed);
                ("domains", int_key doms);
                ("density", float_key density);
                ("gates", int_key gates);
              ]
              (fun () ->
                dense_crossing ~seed:!seed ~module_gates:!gates ~domains:!doms
                  ~density:!density ())
        | "fabric" ->
            let seed = ref 53 and banks = ref 8 and doms = ref 3 and addr = ref 3 in
            with_keys
              [
                ("seed", int_key seed);
                ("banks", int_key banks);
                ("domains", int_key doms);
                ("addr", int_key addr);
              ]
              (fun () ->
                gated_memory_fabric ~seed:!seed ~addr_bits:!addr
                  ~domains:!doms ~banks:!banks ())
        | other ->
            Error
              (Printf.sprintf
                 "unknown generator %S (families: \
                  fig1|fig3|handshake|design1|design2|random|gals|dense|fabric)"
                 other)
      in
      match run () with
      | Ok d -> Ok d
      | Error msg -> fail msg
      | exception Diag.Fail d -> Error d)
