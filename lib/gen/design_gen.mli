(** Synthetic benchmark designs.

    The paper evaluates on two proprietary ASICs; these seeded generators
    produce designs with the same structural features (module counts, domain
    counts, MTS fractions, memory traffic) so the experiments exercise the
    same compiler paths.  All generators are deterministic in their seed.

    Generator parameters are treated as user input: out-of-range values
    (e.g. a fraction outside [0,1] or [domains < 1]) raise
    [Msched_diag.Diag.Fail] with code [E_PARSE] rather than silently
    clamping or looping. *)

open Msched_netlist

type design = {
  netlist : Netlist.t;
  design_label : string;
  modules : int;  (** Design modules (Table 1 row 1). *)
  mts_modules : int;  (** Modules containing MTS logic (row 2). *)
}

val fig1 : unit -> design
(** The paper's Figure 1: two asynchronous domains, a gate whose output is a
    Multi Transition and Sample net, sampled back in both domains. *)

val fig3_latch : unit -> design
(** The paper's Figure 3: an MTS latch with combinational logic from two
    domains on both its data and gate paths, split across a partition. *)

val handshake : unit -> design
(** Req/ack handshake between two asynchronous domains with two-flop
    synchronizers — the classic correct CDC idiom, useful as a design that
    must compile and simulate with full fidelity. *)

val random_multidomain :
  ?seed:int ->
  ?gates_per_module:int ->
  ?ffs_per_module:int ->
  ?mts_ffs:int ->
  ?xwrite_rams:int ->
  domains:int ->
  modules:int ->
  mts_fraction:float ->
  unit ->
  design
(** Module-structured multi-domain design.  Each module lives in one domain;
    an [mts_fraction] of modules contain MTS latches whose data and gate mix
    two domains, plus MTS nets sampled in both.  [mts_ffs] adds flip-flops
    clocked by race-free derived clocks mixing two domains (rewritten to
    master/slave pairs by the compiler); [xwrite_rams] adds RAMs whose write
    clock mixes two domains (the future-work extension).  Both default
    to 0. *)

val design1_like : ?seed:int -> ?scale:float -> unit -> design
(** Design1 analogue: 3 clock domains, logic-dominated, small MTS fraction
    (paper: 3341 modules, 28 MTS modules, 44 MTS paths). [scale] shrinks the
    module count for fast tests (default 0.1). *)

val design2_like : ?seed:int -> ?scale:float -> unit -> design
(** Design2 analogue: 2 clock domains, RAM-transaction-dominated, larger MTS
    fraction (paper: 2008 modules, 87 MTS modules, 116 MTS paths, many
    memory modules). *)

val gals_islands :
  ?seed:int ->
  ?island_size:int ->
  ?wrapper_depth:int ->
  islands:int ->
  unit ->
  design
(** GALS: [islands] pausible-clock islands (one clock domain each) on a ring,
    every edge wrapped in a req/ack handshake port with depth-[wrapper_depth]
    synchronizer chains (>= 2, default 2) carrying a 2-bit payload, plus a
    handshake-gated (pausible) clock slice per island.  [island_size]
    (default 4) modules of local logic per island.  All CDC goes through
    synchronizers, so [mts_modules = 0] — the family stresses domain count
    and FORK/MERGE transport rather than MTS hold-offs.  Models the
    GALS-over-synchronous-FPGA shape of arXiv 0802.3441. *)

val dense_crossing_count : domains:int -> density:float -> int
(** Number of pairwise MTS crossings [dense_crossing] realizes for a given
    [domains]/[density]: [round (density * C(domains,2))], at least 1 when
    [density > 0].  Exposed so tests and benches can assert the realized
    MTS fraction exactly. *)

val dense_crossing :
  ?seed:int -> ?module_gates:int -> domains:int -> density:float -> unit -> design
(** Dozens of small domains with a pairwise-crossing density matrix: one
    small module of local logic per domain, plus a full MTS crossing
    (latch + raw MTS net) on [dense_crossing_count] seed-shuffled domain
    pairs.  [density] in [0,1] is the fraction of the C(domains,2) pairs
    that cross, driving the MTS fraction far above the paper's designs.
    Models the dense multi-style asynchronous fabric of arXiv 0710.4711. *)

val gated_memory_fabric :
  ?seed:int -> ?addr_bits:int -> ?domains:int -> banks:int -> unit -> design
(** Clock-gated RAM fabric: [banks] RAM banks spread over [domains]
    (default 3) domains.  Each bank's write clock is its home-domain root
    clock gated (glitch-free integrated-clock-gating latch) by an enable
    registered in a different domain — so the gating latch is an MTS latch
    and the write port fires under two domains' edges — with write data
    from the enable's domain and read data sampled both at home and by a
    third reader domain.  [addr_bits] in [1,8] (default 3). *)

val spec_help : string
(** One-line grammar summary of the generator spec language, for CLI
    manpages and error messages. *)

val of_spec : string -> (design, Msched_diag.Diag.t) result
(** Parse and run a textual generator spec — the single grammar shared by
    the CLI, bench, and experiment harness.  Examples: ["fig1"],
    ["design2:scale=0.05"], ["random:domains=3,modules=20,mts=0.2"],
    ["gals:islands=16,size=8"], ["dense:domains=24,density=0.3"],
    ["fabric:banks=12,domains=4"].  Malformed specs (unknown family or key,
    bad number, out-of-range parameter) return [Error d] with code
    [E_PARSE]; this function never raises. *)
