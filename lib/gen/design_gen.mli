(** Synthetic benchmark designs.

    The paper evaluates on two proprietary ASICs; these seeded generators
    produce designs with the same structural features (module counts, domain
    counts, MTS fractions, memory traffic) so the experiments exercise the
    same compiler paths.  All generators are deterministic in their seed. *)

open Msched_netlist

type design = {
  netlist : Netlist.t;
  design_label : string;
  modules : int;  (** Design modules (Table 1 row 1). *)
  mts_modules : int;  (** Modules containing MTS logic (row 2). *)
}

val fig1 : unit -> design
(** The paper's Figure 1: two asynchronous domains, a gate whose output is a
    Multi Transition and Sample net, sampled back in both domains. *)

val fig3_latch : unit -> design
(** The paper's Figure 3: an MTS latch with combinational logic from two
    domains on both its data and gate paths, split across a partition. *)

val handshake : unit -> design
(** Req/ack handshake between two asynchronous domains with two-flop
    synchronizers — the classic correct CDC idiom, useful as a design that
    must compile and simulate with full fidelity. *)

val random_multidomain :
  ?seed:int ->
  ?gates_per_module:int ->
  ?ffs_per_module:int ->
  ?mts_ffs:int ->
  ?xwrite_rams:int ->
  domains:int ->
  modules:int ->
  mts_fraction:float ->
  unit ->
  design
(** Module-structured multi-domain design.  Each module lives in one domain;
    an [mts_fraction] of modules contain MTS latches whose data and gate mix
    two domains, plus MTS nets sampled in both.  [mts_ffs] adds flip-flops
    clocked by race-free derived clocks mixing two domains (rewritten to
    master/slave pairs by the compiler); [xwrite_rams] adds RAMs whose write
    clock mixes two domains (the future-work extension).  Both default
    to 0. *)

val design1_like : ?seed:int -> ?scale:float -> unit -> design
(** Design1 analogue: 3 clock domains, logic-dominated, small MTS fraction
    (paper: 3341 modules, 28 MTS modules, 44 MTS paths). [scale] shrinks the
    module count for fast tests (default 0.1). *)

val design2_like : ?seed:int -> ?scale:float -> unit -> design
(** Design2 analogue: 2 clock domains, RAM-transaction-dominated, larger MTS
    fraction (paper: 2008 modules, 87 MTS modules, 116 MTS paths, many
    memory modules). *)
