(** Clock domain descriptors.

    A domain's root clock is a periodic waveform described by its period,
    initial phase and duty cycle, all in picoseconds.  Domains are
    {e asynchronous} when their period ratio is not a small rational — the
    generator in {!Async_gen} picks near-coprime periods so edge patterns
    never repeat within a simulation horizon. *)

open Msched_netlist

type t = {
  domain : Ids.Dom.t;
  name : string;
  period_ps : int;
  phase_ps : int;  (** Time of the first rising edge. *)
  duty_num : int;
  duty_den : int;  (** High time is [period_ps * duty_num / duty_den]. *)
}

val make :
  ?phase_ps:int -> ?duty:int * int -> Ids.Dom.t -> name:string -> period_ps:int -> t
(** @raise Invalid_argument on non-positive period or duty outside (0, 1). *)

val rising_edge_time : t -> int -> int
(** Time of the [k]-th (0-based) rising edge. *)

val falling_edge_time : t -> int -> int
(** Time of the [k]-th falling edge (follows the [k]-th rising edge). *)

val level_at : t -> int -> bool
(** Clock level at time [t] (picoseconds). Low before the first rising
    edge. *)

val rising_edges_before : t -> int -> int
(** Number of rising edges with time strictly less than the horizon. *)

val frequency_hz : t -> float
val pp : Format.formatter -> t -> unit
