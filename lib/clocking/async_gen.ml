let primes =
  [| 101; 211; 307; 401; 503; 601; 701; 809; 907; 1009; 1103; 1201 |]

let clocks ?(seed = 17) ?(base_period_ps = 10_000) ?(spread = 0.35) domains =
  if base_period_ps < 100 then invalid_arg "Async_gen.clocks: base period";
  if spread < 0.0 || spread > 0.9 then invalid_arg "Async_gen.clocks: spread";
  let rng = Random.State.make [| seed; base_period_ps |] in
  List.mapi
    (fun i d ->
      let wobble =
        1.0 +. ((Random.State.float rng 2.0 -. 1.0) *. spread)
      in
      let base = int_of_float (float_of_int base_period_ps *. wobble) in
      (* Adding a distinct prime keeps period pairs near-coprime, so phase
         relationships drift instead of locking. *)
      let period = base + primes.(i mod Array.length primes) in
      let phase = Random.State.int rng (period / 2) in
      Clock.make ~phase_ps:phase d
        ~name:(Printf.sprintf "clk%d" i)
        ~period_ps:period)
    domains
