open Msched_netlist

type polarity = Rising | Falling

let pp_polarity ppf = function
  | Rising -> Format.pp_print_string ppf "rise"
  | Falling -> Format.pp_print_string ppf "fall"

type edge = {
  domain : Ids.Dom.t;
  polarity : polarity;
  index : int;
  time_ps : int;
}

let pp_edge ppf e =
  Format.fprintf ppf "%a@%dps(%a#%d)" pp_polarity e.polarity e.time_ps
    Ids.Dom.pp e.domain e.index

let stream clocks ~horizon_ps =
  let edges_of_clock c =
    let n = Clock.rising_edges_before c horizon_ps in
    let rec collect k acc =
      if k >= n then acc
      else
        let rise =
          {
            domain = c.Clock.domain;
            polarity = Rising;
            index = k;
            time_ps = Clock.rising_edge_time c k;
          }
        in
        let fall_t = Clock.falling_edge_time c k in
        let acc = rise :: acc in
        let acc =
          if fall_t < horizon_ps then
            {
              domain = c.Clock.domain;
              polarity = Falling;
              index = k;
              time_ps = fall_t;
            }
            :: acc
          else acc
        in
        collect (k + 1) acc
    in
    collect 0 []
  in
  let all = List.concat_map edges_of_clock clocks in
  List.sort
    (fun a b ->
      match Int.compare a.time_ps b.time_ps with
      | 0 -> Ids.Dom.compare a.domain b.domain
      | c -> c)
    all

let rising_only edges =
  List.filter (fun e -> e.polarity = Rising) edges

let frames edges ~frame_ps =
  if frame_ps <= 0 then invalid_arg "Edges.frames: frame_ps";
  let rec go current current_k acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | e :: rest ->
        let k = e.time_ps / frame_ps in
        if k = current_k || current = [] then go (e :: current) k acc rest
        else go [ e ] k (List.rev current :: acc) rest
  in
  go [] 0 [] edges

let max_edges_per_domain_in_frame frames =
  List.fold_left
    (fun acc frame ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let key = (Ids.Dom.to_int e.domain, e.polarity = Rising) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        frame;
      Hashtbl.fold (fun _ v acc -> max acc v) tbl acc)
    0 frames

let count_by_domain ~num_domains edges =
  let counts = Array.make num_domains 0 in
  List.iter
    (fun e ->
      if e.polarity = Rising then
        let i = Ids.Dom.to_int e.domain in
        counts.(i) <- counts.(i) + 1)
    edges;
  counts

let level_at clocks domain t =
  let c = List.find (fun c -> Ids.Dom.equal c.Clock.domain domain) clocks in
  Clock.level_at c t
