(** Merged multi-domain edge streams.

    The testbench view of an asynchronous system is a single time-ordered
    stream of clock edges drawn from all domains.  Each edge carries its
    domain, polarity and per-domain edge index — the [k] in the paper's
    [V(Ai, Bk)] notation. *)

open Msched_netlist

type polarity = Rising | Falling

val pp_polarity : Format.formatter -> polarity -> unit

type edge = {
  domain : Ids.Dom.t;
  polarity : polarity;
  index : int;  (** 0-based index among edges of this polarity and domain. *)
  time_ps : int;
}

val pp_edge : Format.formatter -> edge -> unit

val stream : Clock.t list -> horizon_ps:int -> edge list
(** All edges of all clocks with [time_ps < horizon_ps], sorted by time;
    simultaneous edges are ordered by domain id (a deterministic tie-break —
    truly asynchronous clocks should not produce ties). *)

val rising_only : edge list -> edge list

val frames : edge list -> frame_ps:int -> edge list list
(** Group a time-sorted edge stream into consecutive frame windows of
    [frame_ps] picoseconds, as an emulator whose frame takes [frame_ps] of
    wall time would: all edges with [time_ps] in [[k*frame_ps,
    (k+1)*frame_ps)] form frame [k]; empty windows are dropped.  When a
    window contains two edges of the same domain and polarity, the design
    clock outruns the emulator — the caller should pick [frame_ps] at most
    half the fastest period.
    @raise Invalid_argument on a non-positive [frame_ps]. *)

val max_edges_per_domain_in_frame : edge list list -> int
(** Diagnostic for pick-the-frame-length: 1 means every domain edges at most
    once per frame window. *)

val count_by_domain : num_domains:int -> edge list -> int array
(** Rising-edge count per domain index. *)

val level_at : Clock.t list -> Ids.Dom.t -> int -> bool
(** Level of a domain's clock at a time, given the clock list.
    @raise Not_found if the domain has no clock. *)
