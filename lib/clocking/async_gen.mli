(** Generation of mutually asynchronous clock sets.

    Periods are drawn around a base period but perturbed to near-coprime
    values (distinct primes as offsets) so that no two domains keep a stable
    phase relationship over a simulation horizon. *)

open Msched_netlist

val clocks :
  ?seed:int ->
  ?base_period_ps:int ->
  ?spread:float ->
  Ids.Dom.t list ->
  Clock.t list
(** One clock per domain.  [spread] (default 0.35) controls how far apart the
    periods are allowed to drift from the base period (default 10_000 ps =
    100 MHz). Deterministic for a fixed [seed]. *)
