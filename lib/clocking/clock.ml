open Msched_netlist

type t = {
  domain : Ids.Dom.t;
  name : string;
  period_ps : int;
  phase_ps : int;
  duty_num : int;
  duty_den : int;
}

let make ?(phase_ps = 0) ?(duty = (1, 2)) domain ~name ~period_ps =
  if period_ps <= 0 then invalid_arg "Clock.make: period must be positive";
  let duty_num, duty_den = duty in
  if duty_num <= 0 || duty_den <= 0 || duty_num >= duty_den then
    invalid_arg "Clock.make: duty must be in (0, 1)";
  if phase_ps < 0 then invalid_arg "Clock.make: phase must be non-negative";
  { domain; name; period_ps; phase_ps; duty_num; duty_den }

let high_time c = c.period_ps * c.duty_num / c.duty_den
let rising_edge_time c k = c.phase_ps + (k * c.period_ps)
let falling_edge_time c k = rising_edge_time c k + high_time c

let level_at c t =
  if t < c.phase_ps then false
  else
    let offset = (t - c.phase_ps) mod c.period_ps in
    offset < high_time c

let rising_edges_before c horizon =
  if horizon <= c.phase_ps then 0
  else ((horizon - c.phase_ps - 1) / c.period_ps) + 1

let frequency_hz c = 1e12 /. float_of_int c.period_ps

let pp ppf c =
  Format.fprintf ppf "%s(%a): %d ps period, %d ps phase" c.name Ids.Dom.pp
    c.domain c.period_ps c.phase_ps
