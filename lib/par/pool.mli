(** Persistent intra-compile worker pool.

    One pool serves many small task batches (the TIERS reverse pass and
    the placement annealer both fan out hundreds of batches per compile),
    so the domains are spawned once per pool and parked on a condition
    variable between batches instead of paying a [Domain.spawn] per batch.

    Determinism contract: [run] only distributes indices — tasks must not
    rely on execution order, and anything order-sensitive belongs in the
    caller's sequential commit step.  With [jobs <= 1] no domain is ever
    spawned and every task runs inline on the caller ([with_pool ~jobs:1]
    is byte-for-byte the sequential path). *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] worker domains (the caller participates as the
    [jobs]-th worker during {!run}).  [jobs <= 1] creates a spawn-free
    inline pool. *)

val jobs : t -> int
(** The parallel width, as requested (>= 1). *)

val run : t -> n:int -> (worker:int -> int -> unit) -> unit
(** [run t ~n f] executes [f ~worker 0 .. f ~worker (n-1)], each exactly
    once, across the pool's domains plus the calling domain, returning
    once all [n] tasks finished.  [worker] identifies the executing domain
    (caller is [0], spawned domains [1 .. jobs-1]) so tasks can write into
    per-worker scratch (e.g. a forked {!Msched_obs.Sink}) without
    synchronization.  Tasks are claimed from a shared atomic cursor, so
    the assignment of indices to workers is nondeterministic.  If any task
    raises, the exception of the lowest-indexed failing task is re-raised
    on the caller (with its backtrace) after the batch quiesces. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must not be used afterwards;
    idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the thunk, and [shutdown] even on exceptions. *)
