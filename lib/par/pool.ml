(* See pool.mli.  The pool is a generation-stamped barrier: [run] installs
   a batch record under the mutex, bumps the generation and wakes the
   parked domains; everyone (caller included) then claims task indices
   from the batch's atomic cursor until it runs past [n].  Completion is
   tracked by a second atomic counting down to zero so the last finisher —
   whichever domain that is — wakes the caller.

   Each batch is its own record with its own cursor, captured by workers
   under the mutex: a domain that wakes late (or returns from a previous
   batch after the caller has already moved on) can only ever drain the
   batch it captured, never claim indices of a batch it was not shown. *)

type batch = {
  bn : int;
  bf : worker:int -> int -> unit;
  cursor : int Atomic.t;
  remaining : int Atomic.t;
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
}

type t = {
  pool_jobs : int;
  mutable domains : unit Domain.t list;
  m : Mutex.t;
  work_ready : Condition.t;
  batch_done : Condition.t;
  mutable generation : int;
  mutable stop : bool;
  mutable batch : batch option;
}

let jobs t = t.pool_jobs

let drain t ~worker b =
  let rec claim () =
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i < b.bn then begin
      (try b.bf ~worker i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.m;
         b.failures <- (i, e, bt) :: b.failures;
         Mutex.unlock t.m);
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.m
      end;
      claim ()
    end
  in
  claim ()

let worker t ~worker:w =
  let my_gen = ref 0 in
  Mutex.lock t.m;
  let rec loop () =
    while (not t.stop) && t.generation = !my_gen do
      Condition.wait t.work_ready t.m
    done;
    if not t.stop then begin
      my_gen := t.generation;
      let b = t.batch in
      Mutex.unlock t.m;
      (match b with Some b -> drain t ~worker:w b | None -> ());
      Mutex.lock t.m;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.m

let create ~jobs =
  let pool_jobs = max 1 jobs in
  let t =
    {
      pool_jobs;
      domains = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      generation = 0;
      stop = false;
      batch = None;
    }
  in
  if pool_jobs > 1 then
    t.domains <-
      List.init (pool_jobs - 1) (fun k ->
          Domain.spawn (fun () -> worker t ~worker:(k + 1)));
  t

let reraise_first b =
  match b.failures with
  | [] -> ()
  | fails ->
      let _, e, bt =
        List.fold_left
          (fun ((bi, _, _) as best) ((i, _, _) as cand) ->
            if i < bi then cand else best)
          (List.hd fails) (List.tl fails)
      in
      Printexc.raise_with_backtrace e bt

let run t ~n f =
  if n <= 0 then ()
  else if t.pool_jobs <= 1 || t.domains = [] then
    for i = 0 to n - 1 do
      f ~worker:0 i
    done
  else begin
    let b =
      {
        bn = n;
        bf = f;
        cursor = Atomic.make 0;
        remaining = Atomic.make n;
        failures = [];
      }
    in
    Mutex.lock t.m;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    drain t ~worker:0 b;
    Mutex.lock t.m;
    while Atomic.get b.remaining > 0 do
      Condition.wait t.batch_done t.m
    done;
    Mutex.unlock t.m;
    reraise_first b
  end

let shutdown t =
  if t.domains <> [] then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
