open Msched_netlist
module Partition = Msched_partition.Partition

type t = {
  mts_nets : Ids.Net.Set.t;
  mts_gates : Ids.Cell.Set.t;
  mts_states : Ids.Cell.Set.t;
  mts_blocks : Ids.Block.Set.t;
  mts_crossings : (Ids.Net.t * Ids.Block.t) list;
}

let compute ?(obs = Msched_obs.Sink.null) part analysis =
  let nl = Partition.netlist part in
  let mts_nets = ref Ids.Net.Set.empty in
  Netlist.iter_nets nl (fun n _ ->
      if Domain_analysis.is_multi_transition analysis n then
        mts_nets := Ids.Net.Set.add n !mts_nets);
  let mts_gates = ref Ids.Cell.Set.empty in
  let mts_states = ref Ids.Cell.Set.empty in
  let mts_blocks = ref Ids.Block.Set.empty in
  Netlist.iter_cells nl (fun c ->
      if Domain_analysis.is_mts_gate analysis nl c then begin
        mts_gates := Ids.Cell.Set.add c.Cell.id !mts_gates;
        mts_blocks := Ids.Block.Set.add (Partition.block_of_cell part c.Cell.id) !mts_blocks
      end;
      if Domain_analysis.is_mts_state analysis c then begin
        mts_states := Ids.Cell.Set.add c.Cell.id !mts_states;
        mts_blocks := Ids.Block.Set.add (Partition.block_of_cell part c.Cell.id) !mts_blocks
      end);
  let mts_crossings = ref [] in
  List.iter
    (fun net ->
      if Domain_analysis.is_multi_transition analysis net then begin
        let src = Partition.block_of_cell part (Netlist.driver nl net).Cell.id in
        mts_blocks := Ids.Block.Set.add src !mts_blocks;
        List.iter
          (fun (b, _terms) ->
            mts_blocks := Ids.Block.Set.add b !mts_blocks;
            mts_crossings := (net, b) :: !mts_crossings)
          (Partition.foreign_consumers part net)
      end)
    (Partition.crossing_nets part);
  let t =
    {
      mts_nets = !mts_nets;
      mts_gates = !mts_gates;
      mts_states = !mts_states;
      mts_blocks = !mts_blocks;
      mts_crossings = List.rev !mts_crossings;
    }
  in
  Msched_obs.Sink.add obs "classify.mts_states" (Ids.Cell.Set.cardinal t.mts_states);
  Msched_obs.Sink.add obs "classify.mts_paths" (List.length t.mts_crossings);
  Msched_obs.Sink.add obs "classify.mts_blocks" (Ids.Block.Set.cardinal t.mts_blocks);
  t

let num_mts_blocks t = Ids.Block.Set.cardinal t.mts_blocks

let num_non_mts_blocks part t =
  Partition.num_blocks part - num_mts_blocks t

let num_mts_paths t = List.length t.mts_crossings

let pp_summary ppf t =
  Format.fprintf ppf
    "MTS: %d nets, %d gates, %d states, %d blocks, %d crossing paths"
    (Ids.Net.Set.cardinal t.mts_nets)
    (Ids.Cell.Set.cardinal t.mts_gates)
    (Ids.Cell.Set.cardinal t.mts_states)
    (num_mts_blocks t) (num_mts_paths t)
