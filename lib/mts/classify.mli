(** MTS classification over a partitioned design (paper Section 4 definitions
    plus the Table 1 counting rows). *)

open Msched_netlist

type t = {
  mts_nets : Ids.Net.Set.t;  (** Multi-transition nets. *)
  mts_gates : Ids.Cell.Set.t;
  mts_states : Ids.Cell.Set.t;  (** Latches/FFs with multi-domain triggers. *)
  mts_blocks : Ids.Block.Set.t;
      (** Blocks containing MTS logic or touched by an MTS crossing. *)
  mts_crossings : (Ids.Net.t * Ids.Block.t) list;
      (** Multi-transition (net, destination block) pairs — the paper's
          "MTS paths". *)
}

val compute :
  ?obs:Msched_obs.Sink.t ->
  Msched_partition.Partition.t ->
  Domain_analysis.t ->
  t

val num_mts_blocks : t -> int
val num_non_mts_blocks : Msched_partition.Partition.t -> t -> int
val num_mts_paths : t -> int
val pp_summary : Format.formatter -> t -> unit
