open Msched_netlist
module Partition = Msched_partition.Partition

type pin_delay = {
  to_data : Traverse.delay option;
  to_gate : Traverse.delay option;
}

type dep = { dep_origin : Ids.Net.t; dep_latch : Ids.Cell.t; dep_pd : pin_delay }

type group = {
  gid : int;
  latches : Ids.Cell.t list;
  input_deps : dep list;
  local_deps : dep list;
}

type origin_info = {
  to_outputs : (Ids.Net.t * Traverse.delay) list;
  deadline_delay : int option;
  to_latch_pins : (Ids.Cell.t * pin_delay) list;
}

type t = {
  block : Ids.Block.t;
  input_nets : Ids.Net.t list;
  output_nets : Ids.Net.t list;
  latch_output_origins : Ids.Net.t list;
  origins : origin_info Ids.Net.Tbl.t;
  groups : group array;
  local_max_settle : int Ids.Net.Tbl.t;
}

(* --- Union-find over latch indices ------------------------------------ *)

module Uf = struct
  let create n = Array.init n Fun.id

  let rec find uf i = if uf.(i) = i then i else find uf uf.(i)

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then uf.(min ri rj) |> fun root -> uf.(max ri rj) <- root
end

(* --- Pin classification ------------------------------------------------ *)

type sink_class =
  | State_data of Ids.Cell.t  (* latch D, or net-triggered FF D *)
  | State_gate of Ids.Cell.t  (* latch gate, or net-triggered FF clock *)
  | Deadline  (* Dom-clocked FF data, RAM write pins, primary output *)
  | Not_sink  (* combinational pins, global clock triggers *)

(* Net-triggered flip-flops share the latch hold hazard (their clock edge
   arrives mid-frame), so they get the same D/G treatment; dom-clocked
   flip-flops capture at frame boundaries and only impose deadlines. *)
let classify_sink nl (tm : Netlist.term) =
  let c = Netlist.cell nl tm.Netlist.term_cell in
  let net_triggered () =
    match c.Cell.trigger with
    | Some (Cell.Net_trigger _) -> true
    | Some (Cell.Dom_clock _) | None -> false
  in
  match c.Cell.kind, tm.Netlist.term_pin with
  | Cell.Latch _, Netlist.Data_pin _ -> State_data c.Cell.id
  | Cell.Latch _, Netlist.Trigger_pin ->
      if net_triggered () then State_gate c.Cell.id else Not_sink
  | Cell.Flip_flop, Netlist.Data_pin _ ->
      if net_triggered () then State_data c.Cell.id else Deadline
  | Cell.Flip_flop, Netlist.Trigger_pin ->
      if net_triggered () then State_gate c.Cell.id else Not_sink
  | Cell.Ram { addr_bits }, Netlist.Data_pin i ->
      if i >= 2 + addr_bits then Not_sink (* read address: combinational *)
      else if net_triggered () then State_data c.Cell.id
      else Deadline
  | Cell.Ram _, Netlist.Trigger_pin ->
      if net_triggered () then State_gate c.Cell.id else Not_sink
  | Cell.Output, Netlist.Data_pin _ -> Deadline
  | (Cell.Gate _ | Cell.Input _ | Cell.Clock_source _), _ -> Not_sink
  | Cell.Output, Netlist.Trigger_pin -> Not_sink

let merge_delay a b =
  match a with
  | None -> Some b
  | Some d ->
      Some
        {
          Traverse.dmin = min d.Traverse.dmin b.Traverse.dmin;
          Traverse.dmax = max d.Traverse.dmax b.Traverse.dmax;
        }

(* Origin info from a delays_from table. *)
let origin_info_of nl region is_output table =
  let to_outputs = ref [] in
  let deadline = ref None in
  let pins : pin_delay Ids.Cell.Tbl.t = Ids.Cell.Tbl.create 8 in
  Ids.Net.Tbl.iter
    (fun n d ->
      if is_output n then to_outputs := (n, d) :: !to_outputs;
      Array.iter
        (fun tm ->
          if Traverse.mem region (Netlist.cell nl tm.Netlist.term_cell).Cell.id
          then
            match classify_sink nl tm with
            | Not_sink -> ()
            | Deadline ->
                let cur = Option.value ~default:0 !deadline in
                deadline := Some (max cur d.Traverse.dmax)
            | State_data l ->
                let pd =
                  Option.value
                    ~default:{ to_data = None; to_gate = None }
                    (Ids.Cell.Tbl.find_opt pins l)
                in
                Ids.Cell.Tbl.replace pins l
                  { pd with to_data = merge_delay pd.to_data d }
            | State_gate l ->
                let pd =
                  Option.value
                    ~default:{ to_data = None; to_gate = None }
                    (Ids.Cell.Tbl.find_opt pins l)
                in
                Ids.Cell.Tbl.replace pins l
                  { pd with to_gate = merge_delay pd.to_gate d })
        (Netlist.fanouts nl n))
    table;
  {
    to_outputs = List.rev !to_outputs;
    deadline_delay = !deadline;
    to_latch_pins =
      Ids.Cell.Tbl.fold (fun l pd acc -> (l, pd) :: acc) pins []
      |> List.sort (fun (a, _) (b, _) -> Ids.Cell.compare a b);
  }

(* Max combinational settle from frame-start origins local to the block. *)
let compute_local_settle nl region cells =
  let table = Ids.Net.Tbl.create 64 in
  let seed (c : Cell.t) =
    (* Net-triggered flip-flops update mid-frame (when their derived clock
       arrives), so they are not frame-start origins; their outputs are
       handled like latch outputs. *)
    match c.Cell.kind, c.Cell.trigger with
    | Cell.Flip_flop, Some (Cell.Net_trigger _) -> ()
    | (Cell.Flip_flop | Cell.Ram _ | Cell.Input _ | Cell.Clock_source _), _ -> (
        match c.Cell.output with
        | Some out -> Ids.Net.Tbl.replace table out 0
        | None -> ())
    | (Cell.Latch _ | Cell.Gate _ | Cell.Output), _ -> ()
  in
  List.iter (fun cid -> seed (Netlist.cell nl cid)) cells;
  List.iter
    (fun cid ->
      let c = Netlist.cell nl cid in
      let ins = Levelize.comb_inputs nl c in
      let reach = List.filter_map (fun n -> Ids.Net.Tbl.find_opt table n) ins in
      match reach, c.Cell.output with
      | [], _ | _, None -> ()
      | first :: rest, Some out ->
          let m = List.fold_left max first rest in
          Ids.Net.Tbl.replace table out (m + 1))
    (Traverse.topo region);
  table

let analyze_block part block =
  let nl = Partition.netlist part in
  let cells = Partition.cells_of_block part block in
  let region = Traverse.of_cells nl cells in
  let input_nets = Partition.input_nets part block in
  let output_nets = Partition.output_nets part block in
  let output_set =
    List.fold_left (fun s n -> Ids.Net.Set.add n s) Ids.Net.Set.empty output_nets
  in
  let is_output n = Ids.Net.Set.mem n output_set in
  let latches =
    let is_stateful cid =
      let c = Netlist.cell nl cid in
      match c.Cell.kind, c.Cell.trigger with
      | Cell.Latch _, _ -> true
      | (Cell.Flip_flop | Cell.Ram _), Some (Cell.Net_trigger _) -> true
      | (Cell.Flip_flop | Cell.Ram _), (Some (Cell.Dom_clock _) | None) ->
          false
      | (Cell.Gate _ | Cell.Input _ | Cell.Clock_source _ | Cell.Output), _ ->
          false
    in
    List.filter is_stateful cells
  in
  let latch_output_origins =
    List.filter_map (fun cid -> (Netlist.cell nl cid).Cell.output) latches
  in
  let origins = Ids.Net.Tbl.create 64 in
  let origin_nets = input_nets @ latch_output_origins in
  List.iter
    (fun m ->
      if not (Ids.Net.Tbl.mem origins m) then
        let table = Traverse.delays_from region m in
        Ids.Net.Tbl.replace origins m (origin_info_of nl region is_output table))
    origin_nets;
  (* Latches needing group coordination: those reached by an input net, or
     by another latch's output (local latch chains must propagate ReadyTime
     requirements too, or a downstream link could sample a chained latch
     before it has evaluated). *)
  let latch_index = Ids.Cell.Tbl.create 16 in
  List.iteri (fun i l -> Ids.Cell.Tbl.replace latch_index l i) latches;
  let nlatches = List.length latches in
  let latch_arr = Array.of_list latches in
  let touched = Array.make nlatches false in
  List.iter
    (fun m ->
      let info = Ids.Net.Tbl.find origins m in
      List.iter
        (fun (l, _) -> touched.(Ids.Cell.Tbl.find latch_index l) <- true)
        info.to_latch_pins)
    (input_nets @ latch_output_origins);
  (* D-type sibling merge via union-find. *)
  let uf = Uf.create nlatches in
  List.iter
    (fun m ->
      let info = Ids.Net.Tbl.find origins m in
      let data_latches =
        List.filter_map
          (fun (l, pd) ->
            if pd.to_data <> None then Some (Ids.Cell.Tbl.find latch_index l)
            else None)
          info.to_latch_pins
      in
      match data_latches with
      | [] -> ()
      | first :: rest -> List.iter (fun j -> Uf.union uf first j) rest)
    input_nets;
  (* Processing-order edges between union-find roots:
     - G-type: gate-consumer latch root before data-consumer latch root;
     - local consumption: downstream group before upstream group. *)
  let edges = Hashtbl.create 32 in
  let add_edge a b =
    let ra = Uf.find uf a and rb = Uf.find uf b in
    if ra <> rb then Hashtbl.replace edges (ra, rb) ()
  in
  List.iter
    (fun m ->
      let info = Ids.Net.Tbl.find origins m in
      let data_l, gate_l =
        List.fold_left
          (fun (dl, gl) (l, pd) ->
            let i = Ids.Cell.Tbl.find latch_index l in
            ( (if pd.to_data <> None then i :: dl else dl),
              if pd.to_gate <> None then i :: gl else gl ))
          ([], []) info.to_latch_pins
      in
      List.iter (fun g -> List.iter (fun d -> add_edge g d) data_l) gate_l)
    input_nets;
  (* Local consumption edges: latch LA's output feeding latch LB means LB
     (downstream) is processed before LA. *)
  List.iter
    (fun la ->
      match (Netlist.cell nl la).Cell.output with
      | None -> ()
      | Some out -> (
          match Ids.Net.Tbl.find_opt origins out with
          | None -> ()
          | Some info ->
              let ia = Ids.Cell.Tbl.find latch_index la in
              List.iter
                (fun (lb, _) ->
                  let ib = Ids.Cell.Tbl.find latch_index lb in
                  if touched.(ia) && touched.(ib) then add_edge ib ia)
                info.to_latch_pins))
    latches;
  (* Condense to groups. Only touched roots become groups. *)
  let members = Array.make nlatches [] in
  for i = nlatches - 1 downto 0 do
    if touched.(i) then begin
      let r = Uf.find uf i in
      members.(r) <- i :: members.(r)
    end
  done;
  let roots =
    List.filter (fun r -> members.(r) <> []) (List.init nlatches Fun.id)
  in
  let root_pos = Hashtbl.create 16 in
  List.iteri (fun pos r -> Hashtbl.replace root_pos r pos) roots;
  let nroots = List.length roots in
  let succ = Array.make nroots [] in
  Hashtbl.iter
    (fun (a, b) () ->
      match Hashtbl.find_opt root_pos a, Hashtbl.find_opt root_pos b with
      | Some pa, Some pb -> succ.(pa) <- pb :: succ.(pa)
      | _, _ -> ())
    edges;
  let comps = Graph_util.sccs nroots (fun v -> succ.(v)) in
  let root_arr = Array.of_list roots in
  let input_set =
    List.fold_left (fun s n -> Ids.Net.Set.add n s) Ids.Net.Set.empty input_nets
  in
  let groups =
    List.mapi
      (fun gid comp ->
        let latch_ids =
          List.concat_map (fun pos -> members.(root_arr.(pos))) comp
          |> List.map (fun i -> latch_arr.(i))
        in
        let latch_set =
          List.fold_left
            (fun s l -> Ids.Cell.Set.add l s)
            Ids.Cell.Set.empty latch_ids
        in
        let deps_of origin_list =
          List.concat_map
            (fun m ->
              match Ids.Net.Tbl.find_opt origins m with
              | None -> []
              | Some info ->
                  List.filter_map
                    (fun (l, pd) ->
                      if Ids.Cell.Set.mem l latch_set then
                        Some { dep_origin = m; dep_latch = l; dep_pd = pd }
                      else None)
                    info.to_latch_pins)
            origin_list
        in
        {
          gid;
          latches = latch_ids;
          input_deps = deps_of (Ids.Net.Set.elements input_set);
          local_deps = deps_of latch_output_origins;
        })
      comps
  in
  {
    block;
    input_nets;
    output_nets;
    latch_output_origins;
    origins;
    groups = Array.of_list groups;
    local_max_settle = compute_local_settle nl region cells;
  }

let analyze ?(obs = Msched_obs.Sink.null) part =
  let la =
    Array.init (Partition.num_blocks part) (fun b ->
        analyze_block part (Ids.Block.of_int b))
  in
  if Msched_obs.Sink.enabled obs then
    Array.iter
      (fun lab ->
        Msched_obs.Sink.add obs "latch.groups" (Array.length lab.groups);
        Msched_obs.Sink.add obs "latch.origins"
          (Ids.Net.Tbl.length lab.origins))
      la;
  la

let group_of_latch t latch =
  Array.fold_left
    (fun acc g ->
      match acc with
      | Some _ -> acc
      | None -> if List.exists (Ids.Cell.equal latch) g.latches then Some g else None)
    None t.groups

let pp_group ppf g =
  Format.fprintf ppf "group %d: latches={%a} inputs=%d locals=%d" g.gid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Ids.Cell.pp)
    g.latches
    (List.length g.input_deps)
    (List.length g.local_deps)
