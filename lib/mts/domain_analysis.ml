open Msched_netlist
module DSet = Ids.Dom.Set

type t = { trans : DSet.t array; sample : DSet.t array }

let transitions t n = t.trans.(Ids.Net.to_int n)
let samples t n = t.sample.(Ids.Net.to_int n)

let trigger_domains_with trans = function
  | Cell.Dom_clock d -> DSet.singleton d
  | Cell.Net_trigger n -> trans.(Ids.Net.to_int n)

(* Forward fixed point for transition domains.

   A cell's output transitions in:
   - Input: its declared stimulus domain;
   - Clock_source d: {d};
   - Gate: the union over its data inputs;
   - Flip_flop: the domains of its trigger;
   - Latch: trigger domains union data-input domains (transparent latches
     pass data transitions through);
   - Ram: trigger domains (synchronous write visible on read-through) union
     read-address transition domains (asynchronous read). *)
let output_trans trans (c : Cell.t) =
  let of_net n = trans.(Ids.Net.to_int n) in
  let of_trigger () =
    match c.Cell.trigger with
    | Some tr -> trigger_domains_with trans tr
    | None -> DSet.empty
  in
  match c.Cell.kind with
  | Cell.Input { domain = Some d } -> DSet.singleton d
  | Cell.Input { domain = None } -> DSet.empty
  | Cell.Clock_source d -> DSet.singleton d
  | Cell.Gate _ ->
      Array.fold_left (fun acc n -> DSet.union acc (of_net n)) DSet.empty
        c.Cell.data_inputs
  | Cell.Flip_flop -> of_trigger ()
  | Cell.Latch _ -> DSet.union (of_trigger ()) (of_net c.Cell.data_inputs.(0))
  | Cell.Ram { addr_bits } ->
      let raddr =
        List.init addr_bits (fun i -> c.Cell.data_inputs.(2 + addr_bits + i))
      in
      List.fold_left
        (fun acc n -> DSet.union acc (of_net n))
        (of_trigger ()) raddr
  | Cell.Output -> DSet.empty

let compute_trans nl =
  let trans = Array.make (Netlist.num_nets nl) DSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    Netlist.iter_cells nl (fun c ->
        match c.Cell.output with
        | None -> ()
        | Some out ->
            let s = output_trans trans c in
            let i = Ids.Net.to_int out in
            if not (DSet.subset s trans.(i)) then begin
              trans.(i) <- DSet.union trans.(i) s;
              changed := true
            end)
  done;
  trans

(* Backward fixed point for sample domains.

   A net is sampled in domain d when it feeds, through combinational logic:
   - the data pin of a flip-flop or latch whose trigger fires in d;
   - a write pin of a RAM whose trigger fires in d;
   - the trigger pin of a state element whose *data* can transition in d
     (the gate is "read against" the data on every relevant edge);
   - the read-address pins of a RAM propagate the RAM output's samples
     backward (asynchronous read path), as do gate data pins. *)
let compute_sample nl trans =
  let sample = Array.make (Netlist.num_nets nl) DSet.empty in
  let changed = ref true in
  let demand_of_term (tm : Netlist.term) =
    let c = Netlist.cell nl tm.Netlist.term_cell in
    let trig_doms () =
      match c.Cell.trigger with
      | Some tr -> trigger_domains_with trans tr
      | None -> DSet.empty
    in
    match c.Cell.kind, tm.Netlist.term_pin with
    | Cell.Gate _, Netlist.Data_pin _ -> (
        match c.Cell.output with
        | Some out -> sample.(Ids.Net.to_int out)
        | None -> DSet.empty)
    | (Cell.Flip_flop | Cell.Latch _), Netlist.Data_pin _ -> trig_doms ()
    | (Cell.Flip_flop | Cell.Latch _), Netlist.Trigger_pin ->
        (* The gate value matters whenever the data can change. *)
        trans.(Ids.Net.to_int c.Cell.data_inputs.(0))
    | Cell.Ram { addr_bits }, Netlist.Data_pin i ->
        if i < 2 + addr_bits then trig_doms () (* we / wdata / waddr *)
        else (
          (* raddr: backward through the asynchronous read *)
          match c.Cell.output with
          | Some out -> sample.(Ids.Net.to_int out)
          | None -> DSet.empty)
    | Cell.Ram _, Netlist.Trigger_pin -> DSet.empty
    | Cell.Output, Netlist.Data_pin _ -> DSet.empty
    | (Cell.Input _ | Cell.Clock_source _), _ -> DSet.empty
    | Cell.Gate _, Netlist.Trigger_pin | Cell.Output, Netlist.Trigger_pin ->
        DSet.empty
  in
  while !changed do
    changed := false;
    Netlist.iter_nets nl (fun n ni ->
        let s =
          Array.fold_left
            (fun acc tm -> DSet.union acc (demand_of_term tm))
            DSet.empty ni.Netlist.fanouts
        in
        let i = Ids.Net.to_int n in
        if not (DSet.subset s sample.(i)) then begin
          sample.(i) <- DSet.union sample.(i) s;
          changed := true
        end)
  done;
  sample

let compute ?(obs = Msched_obs.Sink.null) nl =
  let trans = compute_trans nl in
  let sample = compute_sample nl trans in
  let t = { trans; sample } in
  if Msched_obs.Sink.enabled obs then begin
    let module Sink = Msched_obs.Sink in
    Sink.add obs "domain.nets" (Netlist.num_nets nl);
    Sink.add obs "domain.domains" (List.length (Netlist.domains nl));
    let multi = ref 0 and mts = ref 0 in
    Array.iteri
      (fun i ds ->
        if DSet.cardinal ds >= 2 then begin
          Stdlib.incr multi;
          if DSet.cardinal sample.(i) >= 2 then Stdlib.incr mts
        end)
      trans;
    Sink.add obs "domain.multi_transition_nets" !multi;
    Sink.add obs "domain.mts_nets" !mts
  end;
  t

let trigger_domains t tr = trigger_domains_with t.trans tr
let is_multi_transition t n = DSet.cardinal (transitions t n) >= 2

let is_mts_net t n =
  DSet.cardinal (transitions t n) >= 2 && DSet.cardinal (samples t n) >= 2

let is_mts_gate t _nl (c : Cell.t) =
  Cell.is_combinational c
  &&
  match c.Cell.output with
  | Some out -> is_mts_net t out
  | None -> false

let is_mts_state t (c : Cell.t) =
  match c.Cell.kind, c.Cell.trigger with
  | (Cell.Latch _ | Cell.Flip_flop), Some tr ->
      DSet.cardinal (trigger_domains t tr) >= 2
  | (Cell.Latch _ | Cell.Flip_flop), None -> false
  | (Cell.Gate _ | Cell.Ram _ | Cell.Input _ | Cell.Clock_source _ | Cell.Output), _
    ->
      false

let pp_net t ppf n =
  let pp_set ppf s =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
      Ids.Dom.pp ppf (DSet.elements s)
  in
  Format.fprintf ppf "%a: T={%a} S={%a}" Ids.Net.pp n pp_set (transitions t n)
    pp_set (samples t n)
