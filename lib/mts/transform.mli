(** MTS flip-flop transformation (paper Section 5, "Transforming MTS
    flip-flops").

    Edge-triggered flip-flops whose clock can fire in more than one domain
    are not covered by the latch hold-time machinery (Observation 2), so they
    are rewritten into master/slave latch pairs: an active-low master latch
    followed by an active-high slave latch sharing the original clock net.
    The rewritten netlist preserves all net ids of the original; one fresh
    net per rewritten flip-flop is appended for the master's output. *)

open Msched_netlist

type rewrite = {
  old_ff : Ids.Cell.t;  (** Cell id in the {e original} netlist. *)
  master : Ids.Cell.t;  (** Master latch in the {e new} netlist. *)
  slave : Ids.Cell.t;  (** Slave latch in the {e new} netlist. *)
}

type rewritten = {
  netlist : Netlist.t;
  rewrites : rewrite list;
  new_cell_of_old : Ids.Cell.t array;
      (** Indexed by old cell id; for a rewritten flip-flop this is the slave
          latch (which drives the flip-flop's original output net). *)
}

val master_slave :
  ?obs:Msched_obs.Sink.t -> Netlist.t -> Domain_analysis.t -> rewritten
(** Identity (modulo cell renumbering) when the design has no MTS
    flip-flops. *)

val check_supported : Netlist.t -> Domain_analysis.t -> (unit, string) result
(** Reports constructs the compiler cannot schedule.  Currently everything
    the netlist layer can express is supported: RAMs with multi-domain write
    clocks — the paper's "memories under test" future work — are handled by
    treating the write port like an MTS latch (write clock = gate, write
    pins = data). *)
