(** Transition- and sample-domain analysis (paper Section 4).

    For every net we compute:
    - its {e transition domains}: the clock domains whose edges can cause the
      net's value to change;
    - its {e sample domains}: the domains whose state elements read the net
      (directly or through combinational logic).

    Both are monotone fixed points over the netlist graph, so combinational
    loops through latches converge.  A net is {e multi-transition} when it
    transitions in two or more domains; an MTS net additionally is sampled by
    more than one domain. *)

open Msched_netlist

type t

val compute : ?obs:Msched_obs.Sink.t -> Netlist.t -> t
(** [obs] records [domain.*] counters (net, domain and multi-transition
    counts). *)

val transitions : t -> Ids.Net.t -> Ids.Dom.Set.t
val samples : t -> Ids.Net.t -> Ids.Dom.Set.t

val trigger_domains : t -> Cell.trigger -> Ids.Dom.Set.t
(** Domains in which a trigger can fire: the domain itself for [Dom_clock],
    the transition domains of the trigger net for [Net_trigger]. *)

val is_multi_transition : t -> Ids.Net.t -> bool
(** Two or more transition domains — the property that forces FORK/MERGE
    decomposition of inter-FPGA transport. *)

val is_mts_net : t -> Ids.Net.t -> bool
(** The paper's MTS net: transitions in more than one domain {e and} is
    sampled by more than one domain. *)

val is_mts_gate : t -> Netlist.t -> Cell.t -> bool
(** A combinational gate whose output is an MTS net. *)

val is_mts_state : t -> Cell.t -> bool
(** A latch or flip-flop whose gate/clock input can fire in more than one
    domain (paper: "sourced by a multi transition net"). *)

val pp_net : t -> Format.formatter -> Ids.Net.t -> unit
