open Msched_netlist

type rewrite = {
  old_ff : Ids.Cell.t;
  master : Ids.Cell.t;
  slave : Ids.Cell.t;
}

type rewritten = {
  netlist : Netlist.t;
  rewrites : rewrite list;
  new_cell_of_old : Ids.Cell.t array;
}

(* Multi-domain RAM write clocks — the paper's "memories under test" future
   work — are supported by treating the write port like an MTS latch (write
   clock = gate, write pins = data), so nothing is rejected anymore.  The
   function remains as the extension point for future unsupported shapes. *)
let check_supported _nl _analysis = Ok ()

let is_mts_ff analysis (c : Cell.t) =
  match c.Cell.kind, c.Cell.trigger with
  | Cell.Flip_flop, Some tr ->
      Ids.Dom.Set.cardinal (Domain_analysis.trigger_domains analysis tr) >= 2
  | _, _ -> false

(* Rebuild the netlist, preserving net ids: every original net is
   pre-allocated in id order, then cells are re-added in id order with _to
   constructors.  Master-latch output nets are appended at the end. *)
let master_slave ?(obs = Msched_obs.Sink.null) nl analysis =
  let b = Netlist.Builder.create ~design_name:(Netlist.design_name nl) () in
  List.iter
    (fun d ->
      let (_ : Ids.Dom.t) = Netlist.Builder.add_domain b (Netlist.domain_name nl d) in
      ())
    (Netlist.domains nl);
  for i = 0 to Netlist.num_nets nl - 1 do
    let old = Ids.Net.of_int i in
    let n' =
      Netlist.Builder.fresh_net b ~name:(Netlist.net nl old).Netlist.net_name ()
    in
    assert (Ids.Net.equal n' old)
  done;
  let rewrites = ref [] in
  let new_cell_of_old =
    Array.make (Netlist.num_cells nl) (Ids.Cell.of_int 0)
  in
  let next_new_cell = ref 0 in
  let take () =
    let id = Ids.Cell.of_int !next_new_cell in
    incr next_new_cell;
    id
  in
  Netlist.iter_cells nl (fun c ->
      let old_idx = Ids.Cell.to_int c.Cell.id in
      if is_mts_ff analysis c then begin
        let out = Option.get c.Cell.output in
        let trigger = Option.get c.Cell.trigger in
        let data = c.Cell.data_inputs.(0) in
        let mid =
          Netlist.Builder.fresh_net b ~name:(c.Cell.name ^ "_master_q") ()
        in
        let master = take () in
        Netlist.Builder.add_latch_to b ~name:(c.Cell.name ^ "_master")
          ~active_high:false ~data ~gate:trigger ~output:mid ();
        let slave = take () in
        Netlist.Builder.add_latch_to b ~name:(c.Cell.name ^ "_slave")
          ~active_high:true ~data:mid ~gate:trigger ~output:out ();
        rewrites := { old_ff = c.Cell.id; master; slave } :: !rewrites;
        new_cell_of_old.(old_idx) <- slave
      end
      else begin
        let id = take () in
        (match c.Cell.kind with
        | Cell.Input { domain } ->
            Netlist.Builder.add_input_to b ~name:c.Cell.name ?domain
              ~output:(Option.get c.Cell.output) ()
        | Cell.Clock_source d ->
            Netlist.Builder.add_clock_source_to b d
              ~output:(Option.get c.Cell.output)
        | Cell.Output ->
            let (_ : Ids.Cell.t) =
              Netlist.Builder.add_output b ~name:c.Cell.name c.Cell.data_inputs.(0)
            in
            ()
        | Cell.Gate g ->
            Netlist.Builder.add_gate_to b ~name:c.Cell.name g
              (Array.to_list c.Cell.data_inputs)
              ~output:(Option.get c.Cell.output)
        | Cell.Latch { active_high } ->
            Netlist.Builder.add_latch_to b ~name:c.Cell.name ~active_high
              ~data:c.Cell.data_inputs.(0)
              ~gate:(Option.get c.Cell.trigger)
              ~output:(Option.get c.Cell.output)
              ()
        | Cell.Flip_flop ->
            Netlist.Builder.add_flip_flop_to b ~name:c.Cell.name
              ~data:c.Cell.data_inputs.(0)
              ~clock:(Option.get c.Cell.trigger)
              ~output:(Option.get c.Cell.output)
              ()
        | Cell.Ram { addr_bits } ->
            let d = c.Cell.data_inputs in
            Netlist.Builder.add_ram_to b ~name:c.Cell.name ~addr_bits
              ~write_enable:d.(0) ~write_data:d.(1)
              ~write_addr:(List.init addr_bits (fun i -> d.(2 + i)))
              ~read_addr:(List.init addr_bits (fun i -> d.(2 + addr_bits + i)))
              ~clock:(Option.get c.Cell.trigger)
              ~output:(Option.get c.Cell.output)
              ());
        new_cell_of_old.(old_idx) <- id
      end);
  let r =
    { netlist = Netlist.Builder.finalize b; rewrites = List.rev !rewrites; new_cell_of_old }
  in
  Msched_obs.Sink.add obs "mts.ff_rewrites" (List.length r.rewrites);
  Msched_obs.Sink.add obs "mts.cells_out" (Netlist.num_cells r.netlist);
  r
