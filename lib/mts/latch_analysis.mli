(** Per-block latch terminal sets, delay tables and latch groups
    (paper Section 7: "MTS Latch Ordering" and "Latch Groups").

    For each partition block we compute, once, everything the static
    scheduler needs when it reaches that block:

    - {b origin nets}: the block's input nets (crossings entering it) and the
      outputs of latches inside it — the places where values appear during a
      frame.  For each origin we tabulate min/max combinational delays to the
      block's output nets (used for ReadyTime propagation), the worst delay
      to any frame-end sink (flip-flop data, RAM write, primary output), and
      the delays to every latch data/gate pin it reaches.

    - {b latch groups}: latches whose evaluation must be coordinated.
      D-type sibling latches (sharing a data-reaching input terminal) are
      merged; G-type relations (an input reaching one latch's data and
      another's gate) order groups parent-before-child; G-cycles are merged
      into a single group (evaluated simultaneously), implemented as SCC
      condensation.  The [groups] array is in processing order: parents
      first, and consumers (via local latch-to-latch paths) before
      producers. *)

open Msched_netlist

type pin_delay = {
  to_data : Traverse.delay option;
  to_gate : Traverse.delay option;
}
(** Combinational delays from an origin net to a latch's data and gate pins
    ([None] when unreachable).  An origin with both is the paper's "GD"
    terminal. *)

type dep = { dep_origin : Ids.Net.t; dep_latch : Ids.Cell.t; dep_pd : pin_delay }

type group = {
  gid : int;
  latches : Ids.Cell.t list;
  input_deps : dep list;  (** Origins that are block input nets. *)
  local_deps : dep list;  (** Origins that are latch outputs of this block. *)
}

type origin_info = {
  to_outputs : (Ids.Net.t * Traverse.delay) list;
      (** Block output nets reachable from this origin. *)
  deadline_delay : int option;
      (** Max delay to any frame-end sink pin (FF data, RAM write pins,
          primary output) reachable from this origin. *)
  to_latch_pins : (Ids.Cell.t * pin_delay) list;
}

type t = {
  block : Ids.Block.t;
  input_nets : Ids.Net.t list;
  output_nets : Ids.Net.t list;
  latch_output_origins : Ids.Net.t list;
  origins : origin_info Ids.Net.Tbl.t;
  groups : group array;  (** In processing order (see above). *)
  local_max_settle : int Ids.Net.Tbl.t;
      (** For each block output net and latch pin net: the max combinational
          delay from frame-start origins (FF/RAM outputs, inputs, clock
          sources) local to the block, [0] if none reaches it. *)
}

val analyze_block : Msched_partition.Partition.t -> Ids.Block.t -> t

val analyze : ?obs:Msched_obs.Sink.t -> Msched_partition.Partition.t -> t array
(** One entry per block, indexed by [Ids.Block.to_int]. *)

val group_of_latch : t -> Ids.Cell.t -> group option
val pp_group : Format.formatter -> group -> unit
