(** Static schedule verifier: an independent axiom-checking pass over
    compiled schedules.

    The TIERS and forward schedulers ({!Msched_route.Tiers},
    {!Msched_route.Forward}) construct schedules that are correct {e by
    construction}; the fidelity harness ({!Msched_sim.Fidelity}) checks them
    {e dynamically} against a finite edge stream.  This module closes the
    gap with a third, static leg: it re-derives the paper's invariants
    directly from a finished {!Msched_route.Schedule.t} plus the placement
    and domain analysis it was built from, in O(schedule), sharing no code
    with either scheduler (only the base netlist graph library).  A schedule
    that passes is structurally incapable of the failure modes of the
    paper's Section 3, independent of any particular stimulus.

    Checked axioms, mapped to the paper:

    - {b Functional Axiom 1} (timing closure): every transport fits inside
      the frame, departs no earlier than its source can have settled
      ([Departure_too_early], [Transport_overrun]), and hop slots advance
      strictly monotonically along a channel path that really connects the
      link's source FPGA to its destination ([Hop_misordered],
      [Path_broken]).
    - {b Functional Axiom 2} (causality of multi-domain transports): all
      constituent-domain transports of one MTS crossing exist
      ([Missing_fork_transport]) and are delay-equalized so the MERGE at the
      destination regenerates a causally correct value ([Fork_skew]).
    - {b Observation 2} (hold-time safety of MTS latches): every latch and
      net-triggered flip-flop/RAM carries a data hold-off record whose data
      slot lies strictly after its gate slot ([Missing_holdoff],
      [Holdoff_misordered]) and after every link-fed same-domain gate
      arrival, so Gate information is presented no later than Data
      ([Gate_after_data]).
    - {b Physical resources}: time-multiplexed wire occupancy never exceeds
      a channel's non-dedicated width ([Channel_overbooked]), the recorded
      peak usage is not understated ([Peak_understated]), peak plus
      dedicated wires fit the channel ([Channel_overflow]) and the per-FPGA
      pin budget ([Pin_budget_exceeded]), and hard-routed MTS transports
      have genuinely dedicated wires on every channel they traverse
      ([Hard_not_dedicated]).
    - {b Completeness}: every partition-crossing net is delivered to every
      foreign consumer block ([Missing_link]).

    The verifier is deliberately {e conservative the sound way}: its derived
    bounds (settle times, gate arrivals) are lower bounds of what the
    schedulers enforce, so a TIERS- or forward-compiled schedule is always
    clean, while a corrupted or naively scheduled one is flagged. *)

open Msched_netlist
module Link := Msched_route.Link
module Schedule := Msched_route.Schedule

type violation =
  | Transport_overrun of {
      link : Link.t;
      domain : Ids.Dom.t option;
      dep : int;
      arr : int;
      length : int;
    }  (** Departure/arrival outside [0, length] or arrival before departure. *)
  | Hop_misordered of {
      link : Link.t;
      domain : Ids.Dom.t option;
      channel : int;
      slot : int;
      dep : int;
      arr : int;
    }
      (** A hop slot outside the transport's [dep, arr] window, or not
          strictly after the previous hop's slot. *)
  | Path_broken of {
      link : Link.t;
      domain : Ids.Dom.t option;
      detail : string;
    }
      (** The hop channels do not form a connected source-to-destination
          channel path of the emulation system. *)
  | Departure_too_early of {
      link : Link.t;
      domain : Ids.Dom.t option;
      dep : int;
      required : int;
    }
      (** The transport samples its source terminal before the source net
          can have settled (local frame-start paths or upstream link
          arrivals plus combinational delay). *)
  | Fork_skew of { link : Link.t; deps : int list; arrs : int list }
      (** Constituent-domain transports of one MTS crossing with unequal
          departures or arrivals (the MERGE would reassemble values sampled
          at different instants — paper Figure 2's clobbering). *)
  | Missing_link of { net : Ids.Net.t; dst_block : Ids.Block.t }
      (** A partition-crossing net with no transport at all to one of its
          foreign consumer blocks. *)
  | Missing_fork_transport of {
      net : Ids.Net.t;
      dst_block : Ids.Block.t;
      domain : Ids.Dom.t;
    }
      (** A multi-transition net delivered without one of its constituent
          domains (an incomplete FORK — paper Figure 5). *)
  | Channel_overbooked of {
      channel : int;
      slot : int;
      used : int;
      capacity : int;
    }
      (** More concurrent multiplexed transports on a channel slot than the
          channel has non-dedicated wires. *)
  | Peak_understated of { channel : int; recorded : int; actual : int }
      (** [peak_channel_usage] claims fewer wires than the hop schedule
          actually uses (pin accounting would be wrong). *)
  | Channel_overflow of { channel : int; committed : int; width : int }
      (** Peak multiplexed usage plus dedicated wires exceed the channel's
          physical width. *)
  | Pin_budget_exceeded of { fpga : Ids.Fpga.t; used : int; budget : int }
      (** Wires incident to an FPGA exceed its user-IO pin budget. *)
  | Hard_not_dedicated of {
      channel : int;
      hard_transports : int;
      dedicated : int;
    }
      (** More hard transports traverse a channel than it has dedicated
          wires — the "hard" wires would actually be shared. *)
  | Missing_holdoff of { cell : Ids.Cell.t }
      (** A latch or net-triggered flip-flop/RAM without a data hold-off
          record: nothing stops Data from outrunning Gate. *)
  | Holdoff_misordered of { cell : Ids.Cell.t; gate : int; data : int }
      (** A hold-off whose data slot is not strictly after its gate slot
          (simultaneous arrival must latch the old value — paper
          Figure 4a). *)
  | Holdoff_out_of_frame of {
      cell : Ids.Cell.t;
      gate : int;
      data : int;
      length : int;
    }  (** Hold-off slots outside [0, length]. *)
  | Gate_after_data of {
      cell : Ids.Cell.t;
      data_holdoff : int;
      required : int;
    }
      (** Observation 2 violated: a link-fed same-domain gate arrival lands
          after the cell's data hold-off expires, so new Data can be
          evaluated against stale Gate information. *)

val kind_name : violation -> string
(** Stable snake-case tag of the violation's constructor, for tests and
    machine consumption (e.g. ["fork-skew"], ["gate-after-data"]). *)

val pp_violation : Format.formatter -> violation -> unit

type report = {
  violations : violation list;  (** In deterministic discovery order. *)
  length : int;  (** Frame length of the schedule checked. *)
  links_checked : int;
  transports_checked : int;
  holdoffs_checked : int;
  blocks_checked : int;
}

val is_clean : report -> bool

val count_kind : report -> string -> int
(** Number of violations whose {!kind_name} equals the tag. *)

val hold_safety_cells : report -> Ids.Cell.Set.t
(** Cells with at least one hold-safety violation ([Missing_holdoff],
    [Holdoff_misordered], [Holdoff_out_of_frame] or [Gate_after_data]) —
    the static counterpart of the emulator's hold-hazard accounting. *)

val pp_report : Format.formatter -> report -> unit

val verify :
  ?obs:Msched_obs.Sink.t ->
  Msched_place.Placement.t ->
  Msched_mts.Domain_analysis.t ->
  Schedule.t ->
  report
(** [verify placement analysis schedule] checks every axiom above.  The
    placement and domain analysis must be the ones the schedule was
    compiled from.  Never raises on malformed schedules: structural damage
    surfaces as violations. *)
