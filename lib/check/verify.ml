open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module System = Msched_arch.System
module Domain_analysis = Msched_mts.Domain_analysis
module Link = Msched_route.Link
module Schedule = Msched_route.Schedule

type violation =
  | Transport_overrun of {
      link : Link.t;
      domain : Ids.Dom.t option;
      dep : int;
      arr : int;
      length : int;
    }
  | Hop_misordered of {
      link : Link.t;
      domain : Ids.Dom.t option;
      channel : int;
      slot : int;
      dep : int;
      arr : int;
    }
  | Path_broken of {
      link : Link.t;
      domain : Ids.Dom.t option;
      detail : string;
    }
  | Departure_too_early of {
      link : Link.t;
      domain : Ids.Dom.t option;
      dep : int;
      required : int;
    }
  | Fork_skew of { link : Link.t; deps : int list; arrs : int list }
  | Missing_link of { net : Ids.Net.t; dst_block : Ids.Block.t }
  | Missing_fork_transport of {
      net : Ids.Net.t;
      dst_block : Ids.Block.t;
      domain : Ids.Dom.t;
    }
  | Channel_overbooked of {
      channel : int;
      slot : int;
      used : int;
      capacity : int;
    }
  | Peak_understated of { channel : int; recorded : int; actual : int }
  | Channel_overflow of { channel : int; committed : int; width : int }
  | Pin_budget_exceeded of { fpga : Ids.Fpga.t; used : int; budget : int }
  | Hard_not_dedicated of {
      channel : int;
      hard_transports : int;
      dedicated : int;
    }
  | Missing_holdoff of { cell : Ids.Cell.t }
  | Holdoff_misordered of { cell : Ids.Cell.t; gate : int; data : int }
  | Holdoff_out_of_frame of {
      cell : Ids.Cell.t;
      gate : int;
      data : int;
      length : int;
    }
  | Gate_after_data of {
      cell : Ids.Cell.t;
      data_holdoff : int;
      required : int;
    }

let kind_name = function
  | Transport_overrun _ -> "transport-overrun"
  | Hop_misordered _ -> "hop-misordered"
  | Path_broken _ -> "path-broken"
  | Departure_too_early _ -> "departure-too-early"
  | Fork_skew _ -> "fork-skew"
  | Missing_link _ -> "missing-link"
  | Missing_fork_transport _ -> "missing-fork-transport"
  | Channel_overbooked _ -> "channel-overbooked"
  | Peak_understated _ -> "peak-understated"
  | Channel_overflow _ -> "channel-overflow"
  | Pin_budget_exceeded _ -> "pin-budget"
  | Hard_not_dedicated _ -> "hard-not-dedicated"
  | Missing_holdoff _ -> "missing-holdoff"
  | Holdoff_misordered _ -> "holdoff-misordered"
  | Holdoff_out_of_frame _ -> "holdoff-out-of-frame"
  | Gate_after_data _ -> "gate-after-data"

let pp_domain ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some d -> Ids.Dom.pp ppf d

let pp_violation ppf = function
  | Transport_overrun { link; domain; dep; arr; length } ->
      Format.fprintf ppf
        "transport-overrun: %a dom=%a dep=%d arr=%d outside frame [0,%d]"
        Link.pp link pp_domain domain dep arr length
  | Hop_misordered { link; domain; channel; slot; dep; arr } ->
      Format.fprintf ppf
        "hop-misordered: %a dom=%a hop (ch%d, slot %d) not strictly \
         increasing within [%d,%d]"
        Link.pp link pp_domain domain channel slot dep arr
  | Path_broken { link; domain; detail } ->
      Format.fprintf ppf "path-broken: %a dom=%a %s" Link.pp link pp_domain
        domain detail
  | Departure_too_early { link; domain; dep; required } ->
      Format.fprintf ppf
        "departure-too-early: %a dom=%a departs at %d but source settles at \
         %d"
        Link.pp link pp_domain domain dep required
  | Fork_skew { link; deps; arrs } ->
      Format.fprintf ppf "fork-skew: %a deps={%a} arrs={%a} not equalized"
        Link.pp link
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        deps
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        arrs
  | Missing_link { net; dst_block } ->
      Format.fprintf ppf "missing-link: crossing %a never delivered to %a"
        Ids.Net.pp net Ids.Block.pp dst_block
  | Missing_fork_transport { net; dst_block; domain } ->
      Format.fprintf ppf
        "missing-fork-transport: %a to %a lacks constituent domain %a"
        Ids.Net.pp net Ids.Block.pp dst_block Ids.Dom.pp domain
  | Channel_overbooked { channel; slot; used; capacity } ->
      Format.fprintf ppf
        "channel-overbooked: ch%d slot %d carries %d transports, capacity %d"
        channel slot used capacity
  | Peak_understated { channel; recorded; actual } ->
      Format.fprintf ppf
        "peak-understated: ch%d records peak %d but hops use %d" channel
        recorded actual
  | Channel_overflow { channel; committed; width } ->
      Format.fprintf ppf
        "channel-overflow: ch%d commits %d wires, physical width %d" channel
        committed width
  | Pin_budget_exceeded { fpga; used; budget } ->
      Format.fprintf ppf "pin-budget: %a uses %d pins, budget %d" Ids.Fpga.pp
        fpga used budget
  | Hard_not_dedicated { channel; hard_transports; dedicated } ->
      Format.fprintf ppf
        "hard-not-dedicated: ch%d carries %d hard transports on %d dedicated \
         wires"
        channel hard_transports dedicated
  | Missing_holdoff { cell } ->
      Format.fprintf ppf "missing-holdoff: %a has no data hold-off record"
        Ids.Cell.pp cell
  | Holdoff_misordered { cell; gate; data } ->
      Format.fprintf ppf
        "holdoff-misordered: %a data slot %d not strictly after gate slot %d"
        Ids.Cell.pp cell data gate
  | Holdoff_out_of_frame { cell; gate; data; length } ->
      Format.fprintf ppf
        "holdoff-out-of-frame: %a (gate=%d, data=%d) outside frame [0,%d]"
        Ids.Cell.pp cell gate data length
  | Gate_after_data { cell; data_holdoff; required } ->
      Format.fprintf ppf
        "gate-after-data: %a releases data at %d but gate information \
         settles at %d"
        Ids.Cell.pp cell data_holdoff (required - 1)

type report = {
  violations : violation list;
  length : int;
  links_checked : int;
  transports_checked : int;
  holdoffs_checked : int;
  blocks_checked : int;
}

let is_clean r = r.violations = []

let count_kind r tag =
  List.length (List.filter (fun v -> String.equal (kind_name v) tag) r.violations)

let hold_safety_cells r =
  List.fold_left
    (fun acc v ->
      match v with
      | Missing_holdoff { cell }
      | Holdoff_misordered { cell; _ }
      | Holdoff_out_of_frame { cell; _ }
      | Gate_after_data { cell; _ } ->
          Ids.Cell.Set.add cell acc
      | Transport_overrun _ | Hop_misordered _ | Path_broken _
      | Departure_too_early _ | Fork_skew _ | Missing_link _
      | Missing_fork_transport _ | Channel_overbooked _ | Peak_understated _
      | Channel_overflow _ | Pin_budget_exceeded _ | Hard_not_dedicated _ ->
          acc)
    Ids.Cell.Set.empty r.violations

let pp_report ppf r =
  if is_clean r then
    Format.fprintf ppf
      "verify: clean (%d links, %d transports, %d holdoffs, %d blocks, frame \
       %d)"
      r.links_checked r.transports_checked r.holdoffs_checked r.blocks_checked
      r.length
  else begin
    Format.fprintf ppf "verify: %d violation(s):"
      (List.length r.violations);
    List.iter
      (fun v -> Format.fprintf ppf "@\n  %a" pp_violation v)
      r.violations
  end

(* ---- Independent local-settle recomputation ----------------------------

   Max combinational delay from frame-start origins (primary inputs, clock
   sources, dom-clocked flip-flop outputs, RAM read outputs) local to a
   block.  Re-derived here from the netlist graph alone so the verifier
   does not trust the scheduler's Latch_analysis tables. *)
let local_settle_table nl region cells =
  let table = Ids.Net.Tbl.create 64 in
  List.iter
    (fun cid ->
      let c = Netlist.cell nl cid in
      match c.Cell.kind, c.Cell.trigger with
      | Cell.Flip_flop, Some (Cell.Net_trigger _) ->
          (* Net-triggered flip-flops evaluate mid-frame, not at frame
             start. *)
          ()
      | (Cell.Flip_flop | Cell.Ram _ | Cell.Input _ | Cell.Clock_source _), _
        -> (
          match c.Cell.output with
          | Some out -> Ids.Net.Tbl.replace table out 0
          | None -> ())
      | (Cell.Latch _ | Cell.Gate _ | Cell.Output), _ -> ())
    cells;
  List.iter
    (fun cid ->
      let c = Netlist.cell nl cid in
      let ins = Levelize.comb_inputs nl c in
      let reach = List.filter_map (fun n -> Ids.Net.Tbl.find_opt table n) ins in
      match reach, c.Cell.output with
      | [], _ | _, None -> ()
      | first :: rest, Some out ->
          Ids.Net.Tbl.replace table out (List.fold_left max first rest + 1))
    (Traverse.topo region);
  table

let verify ?(obs = Msched_obs.Sink.null) placement analysis
    (sched : Schedule.t) =
  Msched_obs.Sink.span obs "verify" @@ fun () ->
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let sys = Placement.system placement in
  let channels = System.channels sys in
  let nch = Array.length channels in
  let length = sched.Schedule.length in
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let dedicated c =
    if c >= 0 && c < Array.length sched.Schedule.dedicated_per_channel then
      sched.Schedule.dedicated_per_channel.(c)
    else 0
  in
  let recorded_peak c =
    if c >= 0 && c < Array.length sched.Schedule.peak_channel_usage then
      sched.Schedule.peak_channel_usage.(c)
    else 0
  in

  (* ---- Per-transport structural checks + occupancy/arrival tallies. ---- *)
  let occupancy : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let hard_cnt = Array.make (max 1 nch) 0 in
  let arrival_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let transports_checked = ref 0 in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      let link = ls.Schedule.ls_link in
      let key =
        ( Ids.Block.to_int link.Link.dst_block,
          Ids.Net.to_int link.Link.net )
      in
      List.iter
        (fun (tr : Schedule.transport) ->
          incr transports_checked;
          let dep = tr.Schedule.tr_fwd_dep and arr = tr.Schedule.tr_fwd_arr in
          let cur = Option.value ~default:0 (Hashtbl.find_opt arrival_tbl key) in
          if arr > cur then Hashtbl.replace arrival_tbl key arr;
          if dep < 0 || arr < dep || arr > length then
            push
              (Transport_overrun
                 { link; domain = tr.Schedule.tr_domain; dep; arr; length });
          (* Channel path connectivity (hard and virtual alike). *)
          let rec walk at = function
            | [] ->
                if not (Ids.Fpga.equal at link.Link.dst_fpga) then
                  push
                    (Path_broken
                       {
                         link;
                         domain = tr.Schedule.tr_domain;
                         detail =
                           Format.asprintf
                             "path ends at %a, destination is %a" Ids.Fpga.pp
                             at Ids.Fpga.pp link.Link.dst_fpga;
                       })
            | (c, _) :: rest ->
                if c < 0 || c >= nch then
                  push
                    (Path_broken
                       {
                         link;
                         domain = tr.Schedule.tr_domain;
                         detail = Format.asprintf "unknown channel %d" c;
                       })
                else begin
                  let ch = channels.(c) in
                  if not (Ids.Fpga.equal ch.System.src at) then
                    push
                      (Path_broken
                         {
                           link;
                           domain = tr.Schedule.tr_domain;
                           detail =
                             Format.asprintf
                               "hop ch%d departs %a but value is at %a" c
                               Ids.Fpga.pp ch.System.src Ids.Fpga.pp at;
                         });
                  walk ch.System.dst rest
                end
          in
          walk link.Link.src_fpga tr.Schedule.tr_hops;
          if tr.Schedule.tr_hard then
            (* Dedicated wires carry the value whenever the source changes:
               slots are meaningless, but every traversed channel must hold
               a dedicated wire for this transport. *)
            List.iter
              (fun (c, _) ->
                if c >= 0 && c < nch then hard_cnt.(c) <- hard_cnt.(c) + 1)
              tr.Schedule.tr_hops
          else begin
            (* Slot monotonicity inside the transport window, and wire-pool
               occupancy accounting. *)
            let prev = ref (dep - 1) in
            List.iter
              (fun (c, slot) ->
                if slot <= !prev || slot < dep || slot > arr then
                  push
                    (Hop_misordered
                       {
                         link;
                         domain = tr.Schedule.tr_domain;
                         channel = c;
                         slot;
                         dep;
                         arr;
                       });
                prev := slot;
                if c >= 0 && c < nch then begin
                  let k = (c, slot) in
                  let n = Option.value ~default:0 (Hashtbl.find_opt occupancy k) in
                  Hashtbl.replace occupancy k (n + 1)
                end)
              tr.Schedule.tr_hops
          end)
        ls.Schedule.ls_transports;
      (* FORK equalization: all virtual constituent transports of one MTS
         crossing must share one departure and one arrival. *)
      let virts =
        List.filter
          (fun tr -> not tr.Schedule.tr_hard)
          ls.Schedule.ls_transports
      in
      match virts with
      | [] | [ _ ] -> ()
      | first :: rest ->
          let skewed =
            List.exists
              (fun tr ->
                tr.Schedule.tr_fwd_dep <> first.Schedule.tr_fwd_dep
                || tr.Schedule.tr_fwd_arr <> first.Schedule.tr_fwd_arr)
              rest
          in
          if skewed then
            push
              (Fork_skew
                 {
                   link;
                   deps = List.map (fun tr -> tr.Schedule.tr_fwd_dep) virts;
                   arrs = List.map (fun tr -> tr.Schedule.tr_fwd_arr) virts;
                 }))
    sched.Schedule.link_scheds;

  (* ---- Wire pools, peaks, dedication and pin budgets. ---- *)
  let actual_peak = Array.make (max 1 nch) 0 in
  Hashtbl.iter
    (fun (c, slot) used ->
      if used > actual_peak.(c) then actual_peak.(c) <- used;
      let capacity = channels.(c).System.width - dedicated c in
      if used > capacity then push (Channel_overbooked { channel = c; slot; used; capacity }))
    occupancy;
  (* Deterministic order for the slot-level violations found above. *)
  for c = 0 to nch - 1 do
    if recorded_peak c < actual_peak.(c) then
      push
        (Peak_understated
           { channel = c; recorded = recorded_peak c; actual = actual_peak.(c) });
    let committed = max (recorded_peak c) actual_peak.(c) + dedicated c in
    if committed > channels.(c).System.width then
      push
        (Channel_overflow
           { channel = c; committed; width = channels.(c).System.width });
    if hard_cnt.(c) > dedicated c then
      push
        (Hard_not_dedicated
           { channel = c; hard_transports = hard_cnt.(c); dedicated = dedicated c })
  done;
  let pins = Array.make (System.num_fpgas sys) 0 in
  Array.iteri
    (fun c (ch : System.channel) ->
      let wires = max (recorded_peak c) actual_peak.(c) + dedicated c in
      let s = Ids.Fpga.to_int ch.System.src
      and d = Ids.Fpga.to_int ch.System.dst in
      pins.(s) <- pins.(s) + wires;
      pins.(d) <- pins.(d) + wires)
    channels;
  Array.iteri
    (fun f used ->
      if used > System.pins_per_fpga sys then
        push
          (Pin_budget_exceeded
             {
               fpga = Ids.Fpga.of_int f;
               used;
               budget = System.pins_per_fpga sys;
             }))
    pins;

  (* ---- Completeness: every crossing net reaches every foreign block,
     with a transport per constituent domain for multi-transition nets. ---- *)
  List.iter
    (fun net ->
      List.iter
        (fun (dst_block, _terms) ->
          let transports =
            List.concat_map
              (fun (ls : Schedule.link_sched) ->
                if
                  Ids.Net.equal ls.Schedule.ls_link.Link.net net
                  && Ids.Block.equal ls.Schedule.ls_link.Link.dst_block
                       dst_block
                then ls.Schedule.ls_transports
                else [])
              sched.Schedule.link_scheds
          in
          if transports = [] then push (Missing_link { net; dst_block })
          else if
            (not (List.exists (fun tr -> tr.Schedule.tr_hard) transports))
            && Domain_analysis.is_multi_transition analysis net
          then
            Ids.Dom.Set.iter
              (fun d ->
                let present =
                  List.exists
                    (fun tr ->
                      match tr.Schedule.tr_domain with
                      | Some d' -> Ids.Dom.equal d d'
                      | None -> false)
                    transports
                in
                if not present then
                  push (Missing_fork_transport { net; dst_block; domain = d }))
              (Domain_analysis.transitions analysis net))
        (Partition.foreign_consumers part net))
    (Partition.crossing_nets part);

  (* ---- Per-block checks: hold safety (Observation 2) and departure
     readiness (Functional Axiom 1). ---- *)
  let holdoff_tbl = Ids.Cell.Tbl.create 64 in
  List.iter
    (fun (h : Schedule.holdoff) ->
      Ids.Cell.Tbl.replace holdoff_tbl h.Schedule.ho_cell
        (h.Schedule.ho_gate, h.Schedule.ho_data))
    sched.Schedule.holdoffs;
  let nblocks = Partition.num_blocks part in
  let links_from = Array.make (max 1 nblocks) [] in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      let sb = Ids.Block.to_int ls.Schedule.ls_link.Link.src_block in
      if sb >= 0 && sb < nblocks then links_from.(sb) <- ls :: links_from.(sb))
    sched.Schedule.link_scheds;
  let arrival b n =
    Option.value ~default:0
      (Hashtbl.find_opt arrival_tbl (b, Ids.Net.to_int n))
  in
  let shares_domain m data_net =
    not
      (Ids.Dom.Set.is_empty
         (Ids.Dom.Set.inter
            (Domain_analysis.transitions analysis m)
            (Domain_analysis.transitions analysis data_net)))
  in
  for b = 0 to nblocks - 1 do
    let block = Ids.Block.of_int b in
    let cells = Partition.cells_of_block part block in
    let region = Traverse.of_cells nl cells in
    let settle_tbl = local_settle_table nl region cells in
    let settle n =
      Option.value ~default:0 (Ids.Net.Tbl.find_opt settle_tbl n)
    in
    let input_delay_tbls =
      List.map
        (fun m -> (m, Traverse.delays_from region m))
        (Partition.input_nets part block)
    in
    (* Hold safety: latches and net-triggered flip-flops/RAMs must hold
       data back until after the latest link-fed same-domain gate
       arrival (delay compensation, paper Section 7 / Observation 2). *)
    List.iter
      (fun cid ->
        let c = Netlist.cell nl cid in
        let needs_holdoff =
          match c.Cell.kind, c.Cell.trigger with
          | Cell.Latch _, _ -> true
          | (Cell.Flip_flop | Cell.Ram _), Some (Cell.Net_trigger _) -> true
          | (Cell.Flip_flop | Cell.Ram _), (Some (Cell.Dom_clock _) | None) ->
              false
          | (Cell.Gate _ | Cell.Input _ | Cell.Clock_source _ | Cell.Output), _
            ->
              false
        in
        if needs_holdoff then begin
          let data_net = c.Cell.data_inputs.(0) in
          let is_ram =
            match c.Cell.kind with Cell.Ram _ -> true | _ -> false
          in
          let gate_lb =
            match c.Cell.trigger with
            | Some (Cell.Net_trigger tn) ->
                List.fold_left
                  (fun acc (m, tbl) ->
                    match Ids.Net.Tbl.find_opt tbl tn with
                    | Some d when is_ram || shares_domain m data_net ->
                        max acc (arrival b m + d.Traverse.dmax)
                    | Some _ | None -> acc)
                  0 input_delay_tbls
            | Some (Cell.Dom_clock _) | None -> 0
          in
          match Ids.Cell.Tbl.find_opt holdoff_tbl cid with
          | None -> push (Missing_holdoff { cell = cid })
          | Some (gate, data) ->
              if gate < 0 || data < 0 || gate > length || data > length then
                push (Holdoff_out_of_frame { cell = cid; gate; data; length })
              else begin
                if data < min length (gate + 1) then
                  push (Holdoff_misordered { cell = cid; gate; data });
                let required = min length (gate_lb + 1) in
                if data < required then
                  push
                    (Gate_after_data
                       { cell = cid; data_holdoff = data; required })
              end
        end)
      cells;
    (* Departure readiness: a virtual transport may not sample its source
       terminal before the net can have settled there. *)
    List.iter
      (fun (ls : Schedule.link_sched) ->
        let link = ls.Schedule.ls_link in
        let net = link.Link.net in
        let required =
          List.fold_left
            (fun acc (m, tbl) ->
              match Ids.Net.Tbl.find_opt tbl net with
              | Some d -> max acc (arrival b m + d.Traverse.dmax)
              | None -> acc)
            (settle net) input_delay_tbls
        in
        List.iter
          (fun (tr : Schedule.transport) ->
            if (not tr.Schedule.tr_hard) && tr.Schedule.tr_fwd_dep < required
            then
              push
                (Departure_too_early
                   {
                     link;
                     domain = tr.Schedule.tr_domain;
                     dep = tr.Schedule.tr_fwd_dep;
                     required;
                   }))
          ls.Schedule.ls_transports)
      links_from.(b)
  done;
  let report =
    {
      violations = List.rev !violations;
      length;
      links_checked = List.length sched.Schedule.link_scheds;
      transports_checked = !transports_checked;
      holdoffs_checked = List.length sched.Schedule.holdoffs;
      blocks_checked = nblocks;
    }
  in
  if Msched_obs.Sink.enabled obs then begin
    let module Sink = Msched_obs.Sink in
    Sink.add obs "verify.runs" 1;
    Sink.add obs "verify.links_checked" report.links_checked;
    Sink.add obs "verify.transports_checked" report.transports_checked;
    Sink.add obs "verify.holdoffs_checked" report.holdoffs_checked;
    Sink.add obs "verify.blocks_checked" report.blocks_checked;
    Sink.add obs "verify.violations" (List.length report.violations)
  end;
  report
