(** Seeded single-edit mutators for the delta differential suite: each
    [(kind, seed)] pair deterministically names one small, always-valid
    netlist edit — the kind of change an edit-compile-check loop makes
    between two compiles.

    Edits rebuild the netlist through {!Msched_netlist.Netlist.Builder}
    in the enumeration order of the original, so the ids of untouched
    nets and cells are preserved (the same property the serial format's
    round-trip relies on); the edit itself appends, drops or rewires at
    well-defined points. *)

open Msched_netlist

type kind =
  | Add_cell  (** New buffer + output port fed by a random net. *)
  | Remove_cell  (** Drop a sink or a fanout-free cell. *)
  | Retime_net
      (** Insert a flip-flop between a net's driver and its data
          consumers (clock domain drawn from the seed). *)
  | Flip_domain
      (** Move a domained input or a domain-clocked state element to the
          next clock domain. *)
  | Resize_fanout  (** Add an output port fanning out a random net. *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

val apply : ?seed:int -> kind -> Netlist.t -> (Netlist.t * string, string) result
(** The edited netlist plus a human description of the edit, or [Error]
    when the kind does not apply to this design (single-domain designs
    cannot flip, sink-free designs cannot remove).  The result always
    validates ({!Netlist.Builder.finalize} succeeded). *)
