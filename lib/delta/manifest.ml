open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module Reroute = Msched_route.Reroute
module J = Msched_diag.Diag.Json

let schema = "msched-delta-manifest-1"
let block_schema = "msched-delta-block-1"

(* Ledger entries cross netlists, so they are keyed by {e names}: net and
   domain names survive an edit while ids shift with it.  Resolution back
   to ids happens at seed time; a name that no longer resolves (or never
   resolved uniquely) just costs that entry's reuse, never correctness —
   under an exact context a replay is validated by its probe transcript,
   not by the key that found it. *)
type entry = {
  m_net : string;
  m_src : int;
  m_dst : int;
  m_dom : string;  (* domain name, "" for single-domain transports *)
  m_anchor : int;
  m_len : int;
  m_hops : (int * int) list;
  m_pf : (int * int) list;  (* probes that found the slot free *)
  m_pb : (int * int) list;  (* probes that found the slot full *)
}

type t = {
  options_fp : string;
  design_fp : string;
  num_blocks : int;
  assignment : int array;  (* block -> fpga *)
  block_fps : string array;
  boundary : (string * string) list;  (* crossing-net name -> signature *)
  entries : entry list;
}

(* ------------------------------------------------------------------ *)
(* Construction from a finished exact-context compile. *)

let build ~options_fp ~design_fp placement ~analysis ~ctx =
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let nb = Partition.num_blocks part in
  (* Names are resolved back to ids at seed time, so a name shared by two
     nets is useless as a key: drop those entries up front. *)
  let name_count = Hashtbl.create 256 in
  Netlist.iter_nets nl (fun _ ni ->
      let n = ni.Netlist.net_name in
      Hashtbl.replace name_count n
        (1 + Option.value ~default:0 (Hashtbl.find_opt name_count n)));
  let unique name = Hashtbl.find_opt name_count name = Some 1 in
  let entries =
    Reroute.keys ctx
    |> List.filter_map (fun (k : Reroute.key) ->
           match (k.Reroute.k_dir, Reroute.lookup ctx k) with
           | Reroute.Fwd, _ | _, None -> None
           | Reroute.Rev, Some e -> (
               match e.Reroute.e_probes with
               | None -> None
               | Some (pf, pb) ->
                   let net_name =
                     (Netlist.net nl (Ids.Net.of_int k.Reroute.k_net))
                       .Netlist.net_name
                   in
                   if not (unique net_name) then None
                   else
                     Some
                       {
                         m_net = net_name;
                         m_src = k.Reroute.k_src_block;
                         m_dst = k.Reroute.k_dst_block;
                         m_dom =
                           (if k.Reroute.k_domain < 0 then ""
                            else
                              Netlist.domain_name nl
                                (Ids.Dom.of_int k.Reroute.k_domain));
                         m_anchor = e.Reroute.e_anchor;
                         m_len = e.Reroute.e_len;
                         m_hops = e.Reroute.e_hops;
                         m_pf = pf;
                         m_pb = pb;
                       }))
    |> List.sort compare
  in
  let boundary =
    Partition.crossing_nets part
    |> List.filter_map (fun n ->
           let name = (Netlist.net nl n).Netlist.net_name in
           if not (unique name) then None
           else Some (name, Fingerprint.boundary_signature nl analysis n))
    |> List.sort compare
  in
  {
    options_fp;
    design_fp;
    num_blocks = nb;
    assignment =
      Array.init nb (fun b ->
          Ids.Fpga.to_int
            (Placement.fpga_of_block placement (Ids.Block.of_int b)));
    block_fps =
      Array.init nb (fun b ->
          Fingerprint.block part ~analysis (Ids.Block.of_int b));
    boundary;
    entries;
  }

(* ------------------------------------------------------------------ *)
(* Canonical, checksummed JSON.  Same conventions as the reroute cache:
   sorted structural order, re-serialize-and-compare integrity check. *)

let fnv = Fingerprint.hash_hex

let pair_array b pairs =
  Buffer.add_char b '[';
  List.iteri
    (fun j (c, s) ->
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d]" c s))
    pairs;
  Buffer.add_char b ']'

let int_array b a =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    a;
  Buffer.add_char b ']'

let entry_json b e =
  Buffer.add_string b
    (Printf.sprintf "{\"net\":%s,\"src\":%d,\"dst\":%d,\"dom\":%s,\"anchor\":%d,\"len\":%d,\"hops\":"
       (J.string e.m_net) e.m_src e.m_dst (J.string e.m_dom) e.m_anchor
       e.m_len);
  pair_array b e.m_hops;
  Buffer.add_string b ",\"pf\":";
  pair_array b e.m_pf;
  Buffer.add_string b ",\"pb\":";
  pair_array b e.m_pb;
  Buffer.add_char b '}'

let entries_json entries =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      entry_json b e)
    entries;
  Buffer.add_char b ']';
  Buffer.contents b

let header_payload t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"options_fp\":%s,\"design_fp\":%s,\"num_blocks\":%d,\"assignment\":"
       (J.string t.options_fp) (J.string t.design_fp) t.num_blocks);
  int_array b t.assignment;
  Buffer.add_string b ",\"blocks\":[";
  Array.iteri
    (fun i fp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (J.string fp))
    t.block_fps;
  Buffer.add_string b "],\"boundary\":[";
  List.iteri
    (fun i (name, sg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "[%s,%s]" (J.string name) (J.string sg)))
    t.boundary;
  Buffer.add_string b "]}";
  Buffer.contents b

let document ~schema payload =
  Printf.sprintf "{\"schema\":\"%s\",\"checksum\":\"%s\",\"payload\":%s}"
    schema (fnv payload) payload

let to_json_string t =
  let header = header_payload t in
  (* Splice the ledger into the header payload: drop the closing brace. *)
  let payload =
    String.sub header 0 (String.length header - 1)
    ^ ",\"ledger\":" ^ entries_json t.entries ^ "}"
  in
  document ~schema payload

(* Block-granular persistence: the header names the design and its block
   fingerprints; one slice per source block carries that block's ledger
   entries.  A cache can then evict slices independently — a missing
   slice costs its entries' reuse, a missing header costs the manifest. *)

let header_json t = document ~schema (header_payload t)

let slice_json t ~block =
  let payload =
    Printf.sprintf "{\"block\":%d,\"ledger\":%s}" block
      (entries_json (List.filter (fun e -> e.m_src = block) t.entries))
  in
  document ~schema:block_schema payload

(* ---- Parsing. ---- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt
let get what o = match o with Some v -> v | None -> fail "missing %s" what
let geti what v = get what (J.int v)
let gets what v = get what (J.str v)

let pairs what v =
  match J.arr v with
  | Some [ a; b ] -> (geti what a, geti what b)
  | _ -> fail "malformed %s pair" what

let pair_list what v = List.map (pairs what) (get what (J.arr v))

let parse_entry v =
  let m what = get what (J.mem what v) in
  {
    m_net = gets "net" (m "net");
    m_src = geti "src" (m "src");
    m_dst = geti "dst" (m "dst");
    m_dom = gets "dom" (m "dom");
    m_anchor = geti "anchor" (m "anchor");
    m_len = geti "len" (m "len");
    m_hops = pair_list "hops" (m "hops");
    m_pf = pair_list "pf" (m "pf");
    m_pb = pair_list "pb" (m "pb");
  }

(* A parsed document: schema-checked, payload extracted, checksum
   verified against the canonical re-rendering done by the caller. *)
let open_document ~schema:want text =
  match J.parse text with
  | Error msg -> fail "unparseable manifest: %s" msg
  | Ok doc ->
      (match Option.bind (J.mem "schema" doc) J.str with
      | Some s when s = want -> ()
      | Some s -> fail "schema mismatch: %S (want %S)" s want
      | None -> fail "missing schema");
      let sum =
        get "checksum" (Option.bind (J.mem "checksum" doc) J.str)
      in
      (get "payload" (J.mem "payload" doc), sum)

let parse_header payload =
  let m what = get what (J.mem what payload) in
  let num_blocks = geti "num_blocks" (m "num_blocks") in
  let assignment =
    get "assignment" (J.arr (m "assignment"))
    |> List.map (geti "assignment")
    |> Array.of_list
  in
  let block_fps =
    get "blocks" (J.arr (m "blocks")) |> List.map (gets "blocks")
    |> Array.of_list
  in
  if Array.length assignment <> num_blocks then fail "assignment arity";
  if Array.length block_fps <> num_blocks then fail "blocks arity";
  let boundary =
    get "boundary" (J.arr (m "boundary"))
    |> List.map (fun v ->
           match J.arr v with
           | Some [ a; b ] -> (gets "boundary" a, gets "boundary" b)
           | _ -> fail "malformed boundary pair")
  in
  {
    options_fp = gets "options_fp" (m "options_fp");
    design_fp = gets "design_fp" (m "design_fp");
    num_blocks;
    assignment;
    block_fps;
    boundary;
    entries = [];
  }

let check ~sum t render =
  let actual = fnv render in
  if not (String.equal actual sum) then
    fail "checksum mismatch: stored %s, payload hashes to %s" sum actual;
  t

let of_json_string text =
  try
    let payload, sum = open_document ~schema text in
    let t = parse_header payload in
    let entries =
      get "ledger" (Option.bind (J.mem "ledger" payload) J.arr)
      |> List.map parse_entry
    in
    let t = { t with entries } in
    (* Integrity: re-render what we rebuilt and compare checksums.  The
       ledger must already be in canonical (sorted) order for this to
       pass, so a doctored or truncated manifest fails here. *)
    let header = header_payload t in
    let render =
      String.sub header 0 (String.length header - 1)
      ^ ",\"ledger\":" ^ entries_json entries ^ "}"
    in
    Ok (check ~sum t render)
  with Bad msg -> Error msg

let header_of_json_string text =
  try
    let payload, sum = open_document ~schema text in
    let t = parse_header payload in
    Ok (check ~sum t (header_payload t))
  with Bad msg -> Error msg

let slice_of_json_string text =
  try
    let payload, sum = open_document ~schema:block_schema text in
    let block = geti "block" (get "block" (J.mem "block" payload)) in
    let entries =
      get "ledger" (Option.bind (J.mem "ledger" payload) J.arr)
      |> List.map parse_entry
    in
    let render =
      Printf.sprintf "{\"block\":%d,\"ledger\":%s}" block
        (entries_json entries)
    in
    ignore (check ~sum () render);
    if List.exists (fun e -> e.m_src <> block) entries then
      fail "slice entry outside block %d" block;
    Ok (block, entries)
  with Bad msg -> Error msg

let with_slices header slices =
  {
    header with
    entries =
      List.concat_map snd
        (List.sort (fun (a, _) (b, _) -> compare a b) slices);
  }
