open Msched_netlist
module Partition = Msched_partition.Partition
module Domain_analysis = Msched_mts.Domain_analysis

(* FNV-1a, 64-bit — the same dependency-free hash the reroute cache and
   the server cache use, so every fingerprint in the system reads as the
   same 16-hex-digit currency. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)

(* The design fingerprint hashes the canonical serial text: re-emitting a
   parsed design normalizes whitespace, comments and file-local net
   numbering, so two sources that parse to the same netlist fingerprint
   identically.  Internal id order is part of the text and hence of the
   fingerprint — by design, since id order is semantic identity for the
   seeded partitioner and placer. *)
let design nl = hash_hex (Serial.to_string nl)

(* ------------------------------------------------------------------ *)
(* Block fingerprints are id-free: every cell, net and domain is named,
   and the rendered lines are sorted, so a block whose contents are
   untouched by an edit elsewhere in the design hashes identically even
   though the edit shifted every id after the insertion point. *)

let dom_name nl d = Netlist.domain_name nl d
let net_name nl n = (Netlist.net nl n).Netlist.net_name

let trigger_text nl = function
  | None -> "-"
  | Some (Cell.Dom_clock d) -> "dom:" ^ dom_name nl d
  | Some (Cell.Net_trigger t) -> "net:" ^ net_name nl t

let kind_text nl (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Gate g -> "gate/" ^ Serial.gate_name g
  | Cell.Latch { active_high } ->
      if active_high then "latch/high" else "latch/low"
  | Cell.Flip_flop -> "ff"
  | Cell.Ram { addr_bits } -> Printf.sprintf "ram/%d" addr_bits
  | Cell.Input { domain } -> (
      match domain with
      | None -> "input"
      | Some d -> "input/" ^ dom_name nl d)
  | Cell.Clock_source d -> "clocksource/" ^ dom_name nl d
  | Cell.Output -> "output"

let cell_line nl (c : Cell.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b "cell ";
  Buffer.add_string b c.Cell.name;
  Buffer.add_char b ' ';
  Buffer.add_string b (kind_text nl c);
  Buffer.add_char b ' ';
  Buffer.add_string b (trigger_text nl c.Cell.trigger);
  Array.iter
    (fun i ->
      Buffer.add_char b ' ';
      Buffer.add_string b (net_name nl i))
    c.Cell.data_inputs;
  Buffer.add_string b " -> ";
  Buffer.add_string b
    (match c.Cell.output with None -> "-" | Some o -> net_name nl o);
  Buffer.contents b

let dom_set_text nl set =
  Ids.Dom.Set.elements set
  |> List.map (dom_name nl)
  |> List.sort compare |> String.concat ","

(* What the scheduler can observe about a net crossing a block boundary:
   which domains toggle it, which domains sample it, and whether it is
   multi-transition (forcing per-domain FORK/MERGE transport).  A change
   in any of these reshapes the block's route-links even when the block's
   own cells are untouched — which is exactly when the dirty cone must
   grow past the fingerprint-dirty set. *)
let boundary_signature nl analysis n =
  Printf.sprintf "t=%s;s=%s;mt=%b;mts=%b"
    (dom_set_text nl (Domain_analysis.transitions analysis n))
    (dom_set_text nl (Domain_analysis.samples analysis n))
    (Domain_analysis.is_multi_transition analysis n)
    (Domain_analysis.is_mts_net analysis n)

let block_text part ~analysis b =
  let nl = Partition.netlist part in
  let cells =
    Partition.cells_of_block part b
    |> List.map (fun c -> cell_line nl (Netlist.cell nl c))
    |> List.sort compare
  in
  let boundary dir nets =
    nets
    |> List.map (fun n ->
           Printf.sprintf "%s %s %s" dir (net_name nl n)
             (boundary_signature nl analysis n))
    |> List.sort compare
  in
  String.concat "\n"
    (cells
    @ boundary "in" (Partition.input_nets part b)
    @ boundary "out" (Partition.output_nets part b))

let block part ~analysis b = hash_hex (block_text part ~analysis b)
