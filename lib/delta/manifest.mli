(** The delta-compilation manifest (schema ["msched-delta-manifest-1"]):
    everything a later compile of an {e edited} design needs in order to
    prove which work it may skip.

    A manifest is only ever produced by an {e exact-context} base compile
    ({!Msched_route.Reroute.create}[ ~exact:true]), so every ledger entry
    carries the probe transcript that makes its replay provable.  Ledger
    entries and boundary signatures are keyed by {e names} (net and domain
    names, block indices), because ids shift under edits; names that fail
    to resolve in the edited design cost reuse, never correctness. *)

type entry = {
  m_net : string;  (** Net name in the post-MTS-rewrite netlist. *)
  m_src : int;  (** Source block index. *)
  m_dst : int;  (** Destination block index. *)
  m_dom : string;  (** Constituent-domain name, [""] for none. *)
  m_anchor : int;
  m_len : int;
  m_hops : (int * int) list;
  m_pf : (int * int) list;
  m_pb : (int * int) list;
}

type t = {
  options_fp : string;
      (** {!Msched.Compile.options_fingerprint} of the producing compile;
          a mismatch forces a cold compile. *)
  design_fp : string;  (** {!Fingerprint.design} of the original netlist. *)
  num_blocks : int;
  assignment : int array;  (** Block index -> FPGA index. *)
  block_fps : string array;  (** {!Fingerprint.block} per block. *)
  boundary : (string * string) list;
      (** Crossing-net name -> {!Fingerprint.boundary_signature}, sorted;
          nets with ambiguous names omitted. *)
  entries : entry list;  (** Canonically sorted. *)
}

val schema : string
val block_schema : string

val build :
  options_fp:string ->
  design_fp:string ->
  Msched_place.Placement.t ->
  analysis:Msched_mts.Domain_analysis.t ->
  ctx:Msched_route.Reroute.t ->
  t
(** Harvest the manifest of a finished compile: the placement/partition
    shape plus every replayable (probe-carrying, reverse-direction,
    uniquely-named) entry of the exact context's ledger. *)

(** {2 Whole-manifest persistence (CLI files)} *)

val to_json_string : t -> string
(** Canonical, checksummed single document. *)

val of_json_string : string -> (t, string) result
(** Never raises; checksum and schema failures land in [Error]. *)

(** {2 Block-granular persistence (server cache)}

    The header carries the design shape and fingerprints; one slice per
    source block carries that block's ledger entries.  Slices evict
    independently: a missing slice costs its entries' reuse, a corrupt or
    missing header costs the whole manifest. *)

val header_json : t -> string
val slice_json : t -> block:int -> string

val header_of_json_string : string -> (t, string) result
(** The reassembled manifest with an empty ledger. *)

val slice_of_json_string : string -> (int * entry list, string) result

val with_slices : t -> (int * entry list) list -> t
(** Attach loaded slices to a loaded header (sorted by block). *)
