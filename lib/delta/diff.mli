(** The delta diff engine: classify the blocks of an edited, re-prepared
    design against a base manifest, compute the {e dirty cone}, and seed
    an exact reroute context with the ledger entries that survive.

    The cone is a reuse heuristic, not a correctness boundary: every
    seeded entry individually proves its replay through its probe
    transcript (see {!Msched_route.Reroute.create}[ ~exact]), so the
    compiled schedule is byte-identical to a cold compile no matter how
    the classification turns out.  The cone exists to drop entries that
    almost certainly cannot replay — dirty blocks, moved blocks, both
    ends of changed boundary nets, and the MTS closure over them (one
    crossing's per-domain transports are latency-equalized as a group). *)

open Msched_netlist

type t = {
  d_clean : int list;  (** Block indices whose fingerprints match. *)
  d_dirty : int list;
  d_moved : int list;  (** Blocks whose FPGA assignment drifted. *)
  d_changed_boundary : string list;  (** Crossing-net names. *)
  d_cone : Ids.Block.Set.t;
}

val clean_count : t -> int
val dirty_count : t -> int
val cone_size : t -> int

val compute :
  manifest:Manifest.t ->
  Msched_place.Placement.t ->
  analysis:Msched_mts.Domain_analysis.t ->
  t option
(** [None] when the edited design partitions into a different number of
    blocks — the topology changed, nothing is comparable, compile cold. *)

type seeded = { ctx : Msched_route.Reroute.t; seeded : int; dropped : int }

val seed : manifest:Manifest.t -> diff:t -> Msched_place.Placement.t -> seeded
(** An exact context holding every manifest entry that resolves in the
    edited design and avoids the cone. *)

val pp : Format.formatter -> t -> unit

val to_json_string : t -> string
(** Schema ["msched-delta-diff-1"] (the [msched delta diff] output). *)
