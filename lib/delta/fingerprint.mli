(** Content-addressing for delta compilation.

    Two layers of identity:

    - the {e design fingerprint} hashes the canonical serial text of a
      netlist, so "did anything change at all" is one string compare;
    - {e block fingerprints} hash an id-free rendering of one
      post-partition block — its cells (by name, with kinds, triggers and
      the {e names} of their input/output nets) plus the signatures of the
      nets crossing its boundary.  Because no internal id appears in the
      rendering, an edit elsewhere in the design that shifts ids leaves
      untouched blocks' fingerprints intact — the property the diff engine
      builds its clean/dirty classification on. *)

open Msched_netlist

val hash_hex : string -> string
(** FNV-1a 64-bit as 16 lowercase hex digits. *)

val design : Netlist.t -> string
(** Hash of {!Serial.to_string}: whitespace/comment/file-numbering
    insensitive, id-order sensitive (id order is semantic identity for the
    seeded partitioner and placer). *)

val boundary_signature :
  Netlist.t -> Msched_mts.Domain_analysis.t -> Ids.Net.t -> string
(** What the scheduler observes about a net at a block boundary:
    transition domains, sample domains, multi-transition and MTS flags
    (all by domain {e name}).  A signature change reshapes the route-links
    of every block the net touches. *)

val block :
  Msched_partition.Partition.t ->
  analysis:Msched_mts.Domain_analysis.t ->
  Ids.Block.t ->
  string

val block_text :
  Msched_partition.Partition.t ->
  analysis:Msched_mts.Domain_analysis.t ->
  Ids.Block.t ->
  string
(** The sorted-line rendering {!block} hashes (exposed for tests and
    [msched delta diff] explanations). *)
