open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module Domain_analysis = Msched_mts.Domain_analysis
module Reroute = Msched_route.Reroute
module J = Msched_diag.Diag.Json

type t = {
  d_clean : int list;
  d_dirty : int list;
  d_moved : int list;
  d_changed_boundary : string list;
  d_cone : Ids.Block.Set.t;
}

let clean_count d = List.length d.d_clean
let dirty_count d = List.length d.d_dirty
let cone_size d = Ids.Block.Set.cardinal d.d_cone

(* Endpoint blocks of a crossing net: the driver's block plus every
   foreign consumer block. *)
let endpoints part n =
  let nl = Partition.netlist part in
  let drv = Partition.block_of_cell part (Netlist.driver nl n).Cell.id in
  drv :: List.map fst (Partition.foreign_consumers part n)

let compute ~(manifest : Manifest.t) placement ~analysis =
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let nb = Partition.num_blocks part in
  if nb <> manifest.Manifest.num_blocks then None
  else begin
    let clean = ref [] and dirty = ref [] and moved = ref [] in
    for b = nb - 1 downto 0 do
      let bid = Ids.Block.of_int b in
      if
        String.equal
          (Fingerprint.block part ~analysis bid)
          manifest.Manifest.block_fps.(b)
      then clean := b :: !clean
      else dirty := b :: !dirty;
      if
        Ids.Fpga.to_int (Placement.fpga_of_block placement bid)
        <> manifest.Manifest.assignment.(b)
      then moved := b :: !moved
    done;
    let old_boundary = Hashtbl.create 64 in
    List.iter
      (fun (name, sg) -> Hashtbl.replace old_boundary name sg)
      manifest.Manifest.boundary;
    let crossing = Partition.crossing_nets part in
    let changed =
      List.filter
        (fun n ->
          let name = (Netlist.net nl n).Netlist.net_name in
          match Hashtbl.find_opt old_boundary name with
          | Some sg ->
              not
                (String.equal sg
                   (Fingerprint.boundary_signature nl analysis n))
          | None -> true)
        crossing
    in
    (* The dirty cone: fingerprint-dirty blocks, blocks whose placement
       drifted, and both endpoints of every changed boundary net — then
       closed over multi-transition crossings, because MTS transports of
       one net are latency-equalized as a group: touching one endpoint
       re-decides the whole FORK/MERGE bundle. *)
    let cone =
      ref
        (Ids.Block.Set.of_list
           (List.map Ids.Block.of_int (!dirty @ !moved)))
    in
    List.iter
      (fun n ->
        List.iter
          (fun b -> cone := Ids.Block.Set.add b !cone)
          (endpoints part n))
      changed;
    let mts_crossings =
      List.filter (Domain_analysis.is_multi_transition analysis) crossing
    in
    let grew = ref true in
    while !grew do
      grew := false;
      List.iter
        (fun n ->
          let eps = endpoints part n in
          if
            List.exists (fun b -> Ids.Block.Set.mem b !cone) eps
            && not (List.for_all (fun b -> Ids.Block.Set.mem b !cone) eps)
          then begin
            List.iter (fun b -> cone := Ids.Block.Set.add b !cone) eps;
            grew := true
          end)
        mts_crossings
    done;
    Some
      {
        d_clean = !clean;
        d_dirty = !dirty;
        d_moved = !moved;
        d_changed_boundary =
          List.map (fun n -> (Netlist.net nl n).Netlist.net_name) changed;
        d_cone = !cone;
      }
  end

(* ------------------------------------------------------------------ *)
(* Seeding: turn the manifest's surviving ledger into an exact reroute
   context against the edited design.  Entries are dropped when their key
   cannot be resolved in the new netlist or when they touch the dirty
   cone; what remains still individually proves its own replay via the
   probe transcript, so over-seeding can never change the schedule. *)

type seeded = { ctx : Reroute.t; seeded : int; dropped : int }

let seed ~(manifest : Manifest.t) ~diff placement =
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let nb = Partition.num_blocks part in
  let net_ids = Hashtbl.create 256 in
  Netlist.iter_nets nl (fun n ni ->
      let name = ni.Netlist.net_name in
      match Hashtbl.find_opt net_ids name with
      | None -> Hashtbl.replace net_ids name (Some n)
      | Some _ -> Hashtbl.replace net_ids name None);
  let dom_ids = Hashtbl.create 16 in
  List.iter
    (fun d -> Hashtbl.replace dom_ids (Netlist.domain_name nl d) d)
    (Netlist.domains nl);
  let ctx = Reroute.create ~exact:true () in
  let seeded = ref 0 and dropped = ref 0 in
  List.iter
    (fun (e : Manifest.entry) ->
      let in_cone b = Ids.Block.Set.mem (Ids.Block.of_int b) diff.d_cone in
      let resolved_net =
        Option.join (Hashtbl.find_opt net_ids e.Manifest.m_net)
      in
      let resolved_dom =
        if e.Manifest.m_dom = "" then Some (-1)
        else
          Option.map Ids.Dom.to_int
            (Hashtbl.find_opt dom_ids e.Manifest.m_dom)
      in
      match (resolved_net, resolved_dom) with
      | Some net, Some dom
        when e.Manifest.m_src < nb && e.Manifest.m_dst < nb
             && (not (in_cone e.Manifest.m_src))
             && not (in_cone e.Manifest.m_dst) ->
          Reroute.record ctx
            {
              Reroute.k_dir = Reroute.Rev;
              k_net = Ids.Net.to_int net;
              k_src_block = e.Manifest.m_src;
              k_dst_block = e.Manifest.m_dst;
              k_domain = dom;
            }
            {
              Reroute.e_anchor = e.Manifest.m_anchor;
              e_len = e.Manifest.m_len;
              e_hops = e.Manifest.m_hops;
              e_probes = Some (e.Manifest.m_pf, e.Manifest.m_pb);
            };
          incr seeded
      | _ -> incr dropped)
    manifest.Manifest.entries;
  { ctx; seeded = !seeded; dropped = !dropped }

(* ---- Reporting. ---- *)

let pp ppf d =
  Format.fprintf ppf
    "blocks: %d clean / %d dirty / %d moved; cone: %d; changed boundary \
     nets: %d"
    (clean_count d) (dirty_count d) (List.length d.d_moved) (cone_size d)
    (List.length d.d_changed_boundary)

let to_json_string d =
  let b = Buffer.create 256 in
  let first = ref true in
  let ints l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]" in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-delta-diff-1");
  J.field b ~first "clean" (ints d.d_clean);
  J.field b ~first "dirty" (ints d.d_dirty);
  J.field b ~first "moved" (ints d.d_moved);
  J.field b ~first "cone"
    (ints (List.map Ids.Block.to_int (Ids.Block.Set.elements d.d_cone)));
  J.field b ~first "changed_boundary"
    ("["
    ^ String.concat ","
        (List.map J.string (List.sort compare d.d_changed_boundary))
    ^ "]");
  Buffer.add_char b '}';
  Buffer.contents b
