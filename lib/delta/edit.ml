open Msched_netlist
module Builder = Netlist.Builder

type kind = Add_cell | Remove_cell | Retime_net | Flip_domain | Resize_fanout

let all_kinds =
  [ Add_cell; Remove_cell; Retime_net; Flip_domain; Resize_fanout ]

let kind_name = function
  | Add_cell -> "add-cell"
  | Remove_cell -> "remove-cell"
  | Retime_net -> "retime-net"
  | Flip_domain -> "flip-domain"
  | Resize_fanout -> "resize-fanout"

let kind_of_name = function
  | "add-cell" -> Some Add_cell
  | "remove-cell" -> Some Remove_cell
  | "retime-net" -> Some Retime_net
  | "flip-domain" -> Some Flip_domain
  | "resize-fanout" -> Some Resize_fanout
  | _ -> None

(* Deterministic splitmix-style draw so an (edit kind, seed) pair names
   one concrete edit forever — the differential suite depends on replaying
   the exact same mutation against cold and delta compiles. *)
let draw seed salt bound =
  if bound <= 0 then invalid_arg "draw";
  let z = ref (Int64.of_int ((seed * 0x9e3779b9) + salt + 1)) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30))
         0xbf58476d1ce4e5b9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27))
         0x94d049bb133111ebL;
  z := Int64.logxor !z (Int64.shift_right_logical !z 31);
  Int64.to_int (Int64.rem (Int64.logand !z Int64.max_int) (Int64.of_int bound))

(* ------------------------------------------------------------------ *)
(* Rebuild a netlist through the Builder, preserving the ids of every
   untouched net and cell (fresh nets and cells are allocated in the same
   order the original enumerates them — the order Serial.output writes).
   [transform] may drop or replace cells (a dropped cell's output net must
   be fanout-free: the net is dropped with it); [extra_nets] are allocated
   after the originals; [remap] redirects {e data} inputs (triggers are
   never remapped); [append] adds new cells at the end. *)

type action = Keep | Drop | Replace of Cell.t

let copy nl ?(extra_nets = []) ?(transform = fun _ -> Keep)
    ?(remap = fun (_ : Cell.t) (_ : Ids.Net.t) -> `Keep)
    ?(append = fun _ ~trans:_ ~extras:_ -> ()) () =
  let b = Builder.create ~design_name:(Netlist.design_name nl) () in
  List.iter
    (fun d -> ignore (Builder.add_domain b (Netlist.domain_name nl d)))
    (Netlist.domains nl);
  let resolved =
    Array.init (Netlist.num_cells nl) (fun i ->
        let c = Netlist.cell nl (Ids.Cell.of_int i) in
        match transform c with
        | Keep -> Some c
        | Replace c' -> Some c'
        | Drop -> None)
  in
  let skip_net = Array.make (max 1 (Netlist.num_nets nl)) false in
  Array.iteri
    (fun i r ->
      if r = None then
        match (Netlist.cell nl (Ids.Cell.of_int i)).Cell.output with
        | Some n ->
            if Array.length (Netlist.fanouts nl n) > 0 then
              invalid_arg "edit: dropped cell's output net has consumers";
            skip_net.(Ids.Net.to_int n) <- true
        | None -> ())
    resolved;
  let trans_tbl = Array.make (max 1 (Netlist.num_nets nl)) None in
  Netlist.iter_nets nl (fun n ni ->
      let i = Ids.Net.to_int n in
      if not skip_net.(i) then
        trans_tbl.(i) <- Some (Builder.fresh_net b ~name:ni.Netlist.net_name ()));
  let extras =
    Array.of_list
      (List.map (fun name -> Builder.fresh_net b ~name ()) extra_nets)
  in
  let trans n =
    match trans_tbl.(Ids.Net.to_int n) with
    | Some n' -> n'
    | None -> invalid_arg "edit: reference to a removed net"
  in
  let tnet c n =
    match remap c n with `Keep -> trans n | `Extra i -> extras.(i)
  in
  let ttrig = function
    | Cell.Dom_clock d -> Cell.Dom_clock d
    | Cell.Net_trigger n -> Cell.Net_trigger (trans n)
  in
  Array.iter
    (function
      | None -> ()
      | Some c -> (
          let name = c.Cell.name in
          let out () = trans (Option.get c.Cell.output) in
          let ins () = Array.map (tnet c) c.Cell.data_inputs in
          match c.Cell.kind with
          | Cell.Input { domain } ->
              Builder.add_input_to b ~name ?domain ~output:(out ()) ()
          | Cell.Clock_source d ->
              Builder.add_clock_source_to b d ~output:(out ())
          | Cell.Gate g ->
              Builder.add_gate_to b ~name g
                (Array.to_list (ins ()))
                ~output:(out ())
          | Cell.Latch { active_high } ->
              Builder.add_latch_to b ~name ~active_high
                ~data:(tnet c c.Cell.data_inputs.(0))
                ~gate:(ttrig (Option.get c.Cell.trigger))
                ~output:(out ()) ()
          | Cell.Flip_flop ->
              Builder.add_flip_flop_to b ~name
                ~data:(tnet c c.Cell.data_inputs.(0))
                ~clock:(ttrig (Option.get c.Cell.trigger))
                ~output:(out ()) ()
          | Cell.Ram { addr_bits } ->
              let ins = ins () in
              let slice off len = Array.to_list (Array.sub ins off len) in
              Builder.add_ram_to b ~name ~addr_bits
                ~write_enable:ins.(0) ~write_data:ins.(1)
                ~write_addr:(slice 2 addr_bits)
                ~read_addr:(slice (2 + addr_bits) addr_bits)
                ~clock:(ttrig (Option.get c.Cell.trigger))
                ~output:(out ()) ()
          | Cell.Output ->
              ignore (Builder.add_output b ~name (tnet c c.Cell.data_inputs.(0)))))
    resolved;
  append b ~trans ~extras;
  Builder.finalize b

(* ------------------------------------------------------------------ *)

let fresh_name nl base =
  let taken = Hashtbl.create 256 in
  Netlist.iter_nets nl (fun _ ni -> Hashtbl.replace taken ni.Netlist.net_name ());
  Netlist.iter_cells nl (fun c -> Hashtbl.replace taken c.Cell.name ());
  let rec go name = if Hashtbl.mem taken name then go (name ^ "x") else name in
  go base

let pick_net nl seed salt =
  Ids.Net.of_int (draw seed salt (Netlist.num_nets nl))

let add_cell nl seed =
  let n = pick_net nl seed 1 in
  let buf = fresh_name nl (Printf.sprintf "delta$add%d" seed) in
  let nl' =
    copy nl
      ~extra_nets:[ buf ^ "$n" ]
      ~append:(fun b ~trans ~extras ->
        Builder.add_gate_to b ~name:buf Cell.Buf [ trans n ]
          ~output:extras.(0);
        ignore (Builder.add_output b ~name:(buf ^ "$o") extras.(0)))
      ()
  in
  Ok (nl', Printf.sprintf "add buf+output %s on net %s" buf
            (Netlist.net nl n).Netlist.net_name)

let remove_cell nl seed =
  let removable (c : Cell.t) =
    match c.Cell.kind with
    | Cell.Output -> true
    | Cell.Clock_source _ -> false
    | _ -> (
        match c.Cell.output with
        | Some n -> Array.length (Netlist.fanouts nl n) = 0
        | None -> false)
  in
  let candidates =
    Netlist.fold_cells nl ~init:[] ~f:(fun acc c ->
        if removable c then c.Cell.id :: acc else acc)
    |> List.rev
  in
  match candidates with
  | [] -> Error "remove-cell: no sink or fanout-free cell to remove"
  | _ ->
      let victim =
        List.nth candidates (draw seed 2 (List.length candidates))
      in
      let nl' =
        copy nl
          ~transform:(fun c ->
            if Ids.Cell.equal c.Cell.id victim then Drop else Keep)
          ()
      in
      Ok
        ( nl',
          Printf.sprintf "remove cell %s"
            (Netlist.cell nl victim).Cell.name )

let retime_net nl seed =
  let has_data_fanout n =
    Array.exists
      (fun t -> match t.Netlist.term_pin with
        | Netlist.Data_pin _ -> true
        | Netlist.Trigger_pin -> false)
      (Netlist.fanouts nl n)
  in
  let candidates =
    List.filter has_data_fanout
      (List.init (Netlist.num_nets nl) Ids.Net.of_int)
  in
  match candidates with
  | [] -> Error "retime-net: no net with data consumers"
  | _ ->
      let n = List.nth candidates (draw seed 3 (List.length candidates)) in
      let doms = Netlist.domains nl in
      let dom = List.nth doms (draw seed 4 (List.length doms)) in
      let name = fresh_name nl (Printf.sprintf "delta$rt%d" seed) in
      (* Every data consumer of [n] moves to the new flop's output; the
         flop itself (added in [append]) reads the original net.  Triggers
         stay on [n] — retiming a gating path is a different edit. *)
      let nl' =
        copy nl
          ~extra_nets:[ name ^ "$q" ]
          ~remap:(fun _ m -> if Ids.Net.equal m n then `Extra 0 else `Keep)
          ~append:(fun b ~trans ~extras ->
            Builder.add_flip_flop_to b ~name ~data:(trans n)
              ~clock:(Cell.Dom_clock dom) ~output:extras.(0) ())
          ()
      in
      Ok
        ( nl',
          Printf.sprintf "retime net %s through flop %s in domain %s"
            (Netlist.net nl n).Netlist.net_name name
            (Netlist.domain_name nl dom) )

let resize_fanout nl seed =
  let n = pick_net nl seed 5 in
  let name = fresh_name nl (Printf.sprintf "delta$fan%d" seed) in
  let nl' =
    copy nl
      ~append:(fun b ~trans ~extras ->
        ignore extras;
        ignore (Builder.add_output b ~name (trans n)))
      ()
  in
  Ok
    ( nl',
      Printf.sprintf "add output %s fanning out net %s" name
        (Netlist.net nl n).Netlist.net_name )

let flip_domain nl seed =
  let nd = Netlist.num_domains nl in
  if nd < 2 then Error "flip-domain: design has a single domain"
  else begin
    let flippable (c : Cell.t) =
      match (c.Cell.kind, c.Cell.trigger) with
      | Cell.Input { domain = Some _ }, _ -> true
      | _, Some (Cell.Dom_clock _) -> true
      | _ -> false
    in
    let candidates =
      Netlist.fold_cells nl ~init:[] ~f:(fun acc c ->
          if flippable c then c.Cell.id :: acc else acc)
      |> List.rev
    in
    match candidates with
    | [] -> Error "flip-domain: no domain-clocked cell or domained input"
    | _ ->
        let victim =
          List.nth candidates (draw seed 6 (List.length candidates))
        in
        let next d = Ids.Dom.of_int ((Ids.Dom.to_int d + 1) mod nd) in
        let nl' =
          copy nl
            ~transform:(fun c ->
              if not (Ids.Cell.equal c.Cell.id victim) then Keep
              else
                match (c.Cell.kind, c.Cell.trigger) with
                | Cell.Input { domain = Some d }, _ ->
                    Replace
                      { c with Cell.kind = Cell.Input { domain = Some (next d) } }
                | _, Some (Cell.Dom_clock d) ->
                    Replace
                      { c with Cell.trigger = Some (Cell.Dom_clock (next d)) }
                | _ -> Keep)
            ()
        in
        Ok
          ( nl',
            Printf.sprintf "flip domain of cell %s"
              (Netlist.cell nl victim).Cell.name )
  end

let apply ?(seed = 0) kind nl =
  match kind with
  | Add_cell -> add_cell nl seed
  | Remove_cell -> remove_cell nl seed
  | Retime_net -> retime_net nl seed
  | Flip_domain -> flip_domain nl seed
  | Resize_fanout -> resize_fanout nl seed
