(* Typed compiler diagnostics.

   This module sits below every other msched library (it depends on
   nothing), so the culprit context carries raw integer ids rather than the
   strongly-typed ids of Msched_netlist.Ids; callers convert with
   [Ids.X.to_int] at the raise/record site.  The numeric ids round-trip
   into the JSON report unchanged, which is what external tooling wants
   anyway. *)

type code =
  | E_PARSE
  | E_MALFORMED_NET
  | E_UNDRIVEN
  | E_DANGLING
  | E_COMB_CYCLE
  | E_UNKNOWN_DOMAIN
  | E_ARITY
  | E_UNSUPPORTED
  | E_CAPACITY
  | E_UNROUTABLE
  | E_HOLD_VIOLATION
  | E_VERIFY
  | E_XDOMAIN_FANIN
  | E_INTERNAL
  | E_CACHE
  | E_TIMEOUT
  | E_OVERLOAD

let code_name = function
  | E_PARSE -> "E_PARSE"
  | E_MALFORMED_NET -> "E_MALFORMED_NET"
  | E_UNDRIVEN -> "E_UNDRIVEN"
  | E_DANGLING -> "E_DANGLING"
  | E_COMB_CYCLE -> "E_COMB_CYCLE"
  | E_UNKNOWN_DOMAIN -> "E_UNKNOWN_DOMAIN"
  | E_ARITY -> "E_ARITY"
  | E_UNSUPPORTED -> "E_UNSUPPORTED"
  | E_CAPACITY -> "E_CAPACITY"
  | E_UNROUTABLE -> "E_UNROUTABLE"
  | E_HOLD_VIOLATION -> "E_HOLD_VIOLATION"
  | E_VERIFY -> "E_VERIFY"
  | E_XDOMAIN_FANIN -> "E_XDOMAIN_FANIN"
  | E_INTERNAL -> "E_INTERNAL"
  | E_CACHE -> "E_CACHE"
  | E_TIMEOUT -> "E_TIMEOUT"
  | E_OVERLOAD -> "E_OVERLOAD"

let all_codes =
  [
    E_PARSE;
    E_MALFORMED_NET;
    E_UNDRIVEN;
    E_DANGLING;
    E_COMB_CYCLE;
    E_UNKNOWN_DOMAIN;
    E_ARITY;
    E_UNSUPPORTED;
    E_CAPACITY;
    E_UNROUTABLE;
    E_HOLD_VIOLATION;
    E_VERIFY;
    E_XDOMAIN_FANIN;
    E_INTERNAL;
    E_CACHE;
    E_TIMEOUT;
    E_OVERLOAD;
  ]

let code_of_name s = List.find_opt (fun c -> code_name c = s) all_codes

(* Process exit codes, one per diagnostic class (documented in
   docs/ROBUSTNESS.md; keep the three in sync with bin/msched_cli.ml).
   2 is the historical "verification failed" exit of `msched check`. *)
let exit_code = function
  | E_VERIFY | E_HOLD_VIOLATION -> 2
  | E_PARSE | E_MALFORMED_NET | E_UNDRIVEN | E_DANGLING | E_COMB_CYCLE
  | E_UNKNOWN_DOMAIN | E_ARITY | E_XDOMAIN_FANIN | E_CACHE ->
      3
  | E_UNROUTABLE | E_CAPACITY -> 4
  | E_UNSUPPORTED -> 5
  | E_INTERNAL -> 6
  | E_TIMEOUT -> 7
  | E_OVERLOAD -> 8

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type context = {
  net : int option;
  cell : int option;
  domain : int option;
  fpga : int option;
  block : int option;
  slack : int option;  (** Slot budget that was exceeded, when known. *)
  culprit : string option;  (** Human-readable net/cell name. *)
}

let no_context =
  {
    net = None;
    cell = None;
    domain = None;
    fpga = None;
    block = None;
    slack = None;
    culprit = None;
  }

type t = {
  code : code;
  severity : severity;
  message : string;
  ctx : context;
}

let make ?net ?cell ?domain ?fpga ?block ?slack ?culprit severity code message
    =
  {
    code;
    severity;
    message;
    ctx = { net; cell; domain; fpga; block; slack; culprit };
  }

let error ?net ?cell ?domain ?fpga ?block ?slack ?culprit code fmt =
  Format.kasprintf
    (make ?net ?cell ?domain ?fpga ?block ?slack ?culprit Error code)
    fmt

let warning ?net ?cell ?domain ?fpga ?block ?slack ?culprit code fmt =
  Format.kasprintf
    (make ?net ?cell ?domain ?fpga ?block ?slack ?culprit Warning code)
    fmt

let is_error d = d.severity = Error

let pp_context ppf ctx =
  let item name = function
    | None -> ()
    | Some v -> Format.fprintf ppf " %s=%d" name v
  in
  item "net" ctx.net;
  item "cell" ctx.cell;
  item "domain" ctx.domain;
  item "fpga" ctx.fpga;
  item "block" ctx.block;
  item "slack" ctx.slack;
  match ctx.culprit with
  | None -> ()
  | Some c -> Format.fprintf ppf " culprit=%s" c

let pp ppf d =
  Format.fprintf ppf "%s[%s]: %s%a" (severity_name d.severity)
    (code_name d.code) d.message pp_context d.ctx

exception Fail of t
(** Structured escape hatch for contexts that must unwind (deep inside a
    scheduler pass).  Catch at the driver/CLI boundary. *)

let fail ?net ?cell ?domain ?fpga ?block ?slack ?culprit code fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Fail (make ?net ?cell ?domain ?fpga ?block ?slack ?culprit Error code message)))
    fmt

(* ---- JSON (hand-emitted, schema "msched-diag-1"; mirrors the style of
   Msched_obs.Export so no JSON library is pulled in). ---- *)

module Json = struct
  let escape b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let string s =
    let b = Buffer.create (String.length s + 8) in
    escape b s;
    Buffer.contents b

  let field b ~first name value =
    if not !first then Buffer.add_char b ',';
    first := false;
    escape b name;
    Buffer.add_char b ':';
    Buffer.add_string b value

  (* A minimal JSON reader for the documents this toolchain itself emits
     (diag/driver/reroute/batch schemas): objects, arrays, strings with
     the escapes [escape] produces, numbers, booleans, null.  Readers that
     accumulate diagnostics (the batch server, the reroute cache) need to
     parse without pulling a JSON library into the dependency cone. *)
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  exception Parse_error of string

  let parse text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let next () =
      match peek () with
      | Some c ->
          incr pos;
          c
      | None -> fail "unexpected end of input"
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if next () <> c then fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      String.iter expect word;
      value
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
            (match next () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub text !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some cp when cp < 0x80 -> Buffer.add_char b (Char.chr cp)
                | Some _ ->
                    (* Our emitters only \u-escape control chars; keep
                       anything wider escaped rather than transcoding. *)
                    Buffer.add_string b ("\\u" ^ hex)
                | None -> fail "bad \\u escape")
            | c -> Buffer.add_char b c);
            go ()
        | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        incr pos
      done;
      if start = !pos then fail "empty number";
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (
            incr pos;
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match next () with
              | ',' -> members ((k, v) :: acc)
              | '}' -> Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (
            incr pos;
            Arr [])
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match next () with
              | ',' -> elems (v :: acc)
              | ']' -> Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elems []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let mem name = function
    | Obj members -> List.assoc_opt name members
    | _ -> None

  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
  let arr = function Arr l -> Some l | _ -> None

  let int v =
    match num v with
    | Some f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None
end

let to_json_buf b d =
  let first = ref true in
  Buffer.add_char b '{';
  Json.field b ~first "code" (Json.string (code_name d.code));
  Json.field b ~first "severity" (Json.string (severity_name d.severity));
  Json.field b ~first "message" (Json.string d.message);
  Json.field b ~first "exit_code" (string_of_int (exit_code d.code));
  let opt name = function
    | None -> ()
    | Some v -> Json.field b ~first name (string_of_int v)
  in
  opt "net" d.ctx.net;
  opt "cell" d.ctx.cell;
  opt "domain" d.ctx.domain;
  opt "fpga" d.ctx.fpga;
  opt "block" d.ctx.block;
  opt "slack" d.ctx.slack;
  (match d.ctx.culprit with
  | None -> ()
  | Some c -> Json.field b ~first "culprit" (Json.string c));
  Buffer.add_char b '}'

let to_json d =
  let b = Buffer.create 256 in
  to_json_buf b d;
  Buffer.contents b

(* ---- Accumulating report. ---- *)

module Report = struct
  type diag = t

  type t = { mutable rev_diags : diag list }

  let create () = { rev_diags = [] }
  let add r d = r.rev_diags <- d :: r.rev_diags
  let add_list r ds = List.iter (add r) ds
  let to_list r = List.rev r.rev_diags
  let errors r = List.filter is_error (to_list r)
  let warnings r = List.filter (fun d -> not (is_error d)) (to_list r)
  let has_errors r = List.exists is_error r.rev_diags
  let is_empty r = r.rev_diags = []
  let count r = List.length r.rev_diags

  (* Exit code of the most severe error class present (the smallest
     numeric exit wins ties arbitrarily but deterministically: we take the
     first error's class in discovery order). *)
  let exit_code r =
    match errors r with [] -> 0 | d :: _ -> exit_code d.code

  let pp ppf r =
    match to_list r with
    | [] -> Format.pp_print_string ppf "no diagnostics"
    | ds ->
        Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ds

  let to_json_buf b r =
    Buffer.add_char b '[';
    List.iteri
      (fun i d ->
        if i > 0 then Buffer.add_char b ',';
        to_json_buf b d)
      (to_list r);
    Buffer.add_char b ']'

  let to_json r =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"schema\":\"msched-diag-1\",\"diagnostics\":";
    to_json_buf b r;
    Buffer.add_char b '}';
    Buffer.contents b
end
