(** Typed compiler diagnostics: stable error codes, severity, culprit
    context, and an accumulating report — the structured replacement for
    the seed's [Compile_error of string] / [failwith] failure style.

    This library depends on nothing, so it can be used from every layer
    (including [Msched_netlist]).  Culprit ids are raw integers; convert
    with [Ids.X.to_int] at the record site.  The catalogue of codes, their
    meaning and their process exit codes is documented in
    [docs/ROBUSTNESS.md]. *)

(** Stable machine-readable error codes.  Never renumber or rename: external
    tooling keys on [code_name] strings and on {!exit_code} classes. *)
type code =
  | E_PARSE  (** Text-format netlist does not parse. *)
  | E_MALFORMED_NET  (** Structural netlist error not covered below. *)
  | E_UNDRIVEN  (** A net has no driver cell. *)
  | E_DANGLING  (** A net drives no consumer (warning-class). *)
  | E_COMB_CYCLE  (** Combinational cycle through gates/latch data. *)
  | E_UNKNOWN_DOMAIN  (** Reference to an undeclared clock domain. *)
  | E_ARITY  (** Wrong input/port count on a cell. *)
  | E_UNSUPPORTED  (** Construct the compiler cannot handle. *)
  | E_CAPACITY  (** Resource exhaustion: pins, wires, block weight. *)
  | E_UNROUTABLE  (** No transport schedule within the slack budget. *)
  | E_HOLD_VIOLATION  (** Hold-safety (Observation 2) verification failure. *)
  | E_VERIFY  (** Any other static-verification failure. *)
  | E_XDOMAIN_FANIN
      (** A net is sampled by more domains than the MTS transport fabric
          comfortably forks to (warning-class: legal, but each crossing
          costs a per-domain transport and equalization padding). *)
  | E_INTERNAL  (** Invariant breakage inside the compiler. *)
  | E_CACHE
      (** A persisted artifact (warm-route cache file) is unreadable,
          corrupt, checksum-mismatched or version-skewed.  Warning-class
          in practice: the consumer degrades to a cold start. *)
  | E_TIMEOUT
      (** A request exceeded its deadline: the serve dispatcher cancelled
          it while queued, or abandoned the running compile and answered
          the client without it. *)
  | E_OVERLOAD
      (** The serve request queue is full (or the server is draining) and
          the shed policy rejected the request.  Retryable by the client
          once load subsides. *)

val code_name : code -> string
(** ["E_UNROUTABLE"] etc. — stable. *)

val code_of_name : string -> code option
val all_codes : code list

val exit_code : code -> int
(** Documented process exit code of the diagnostic class: 2 verification,
    3 malformed input, 4 infeasible/unroutable, 5 unsupported, 6 internal,
    7 request deadline exceeded, 8 server overloaded. *)

type severity = Error | Warning

val severity_name : severity -> string

type context = {
  net : int option;
  cell : int option;
  domain : int option;
  fpga : int option;
  block : int option;
  slack : int option;  (** Slot budget that was exceeded, when known. *)
  culprit : string option;  (** Human-readable net/cell name. *)
}

val no_context : context

type t = {
  code : code;
  severity : severity;
  message : string;
  ctx : context;
}

val make :
  ?net:int ->
  ?cell:int ->
  ?domain:int ->
  ?fpga:int ->
  ?block:int ->
  ?slack:int ->
  ?culprit:string ->
  severity ->
  code ->
  string ->
  t

val error :
  ?net:int ->
  ?cell:int ->
  ?domain:int ->
  ?fpga:int ->
  ?block:int ->
  ?slack:int ->
  ?culprit:string ->
  code ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [error code fmt ...] — format-string constructor for an error diag. *)

val warning :
  ?net:int ->
  ?cell:int ->
  ?domain:int ->
  ?fpga:int ->
  ?block:int ->
  ?slack:int ->
  ?culprit:string ->
  code ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val is_error : t -> bool
val pp : Format.formatter -> t -> unit
(** [error[E_UNROUTABLE]: message net=3 fpga=1 slack=4096 culprit=n3]. *)

exception Fail of t
(** Structured unwind for deep pipeline contexts; catch at the driver/CLI
    boundary.  Prefer [Result]/report accumulation where control flow
    allows. *)

val fail :
  ?net:int ->
  ?cell:int ->
  ?domain:int ->
  ?fpga:int ->
  ?block:int ->
  ?slack:int ->
  ?culprit:string ->
  code ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** [fail code fmt ...] raises {!Fail} with an error diag. *)

val to_json : t -> string
(** One diagnostic as a JSON object (fields: code, severity, message,
    exit_code, then any present context ids). *)

val to_json_buf : Buffer.t -> t -> unit

(** JSON string escaping shared with report emitters elsewhere, plus a
    minimal reader for the documents this toolchain itself emits (no
    external JSON library anywhere in the dependency cone). *)
module Json : sig
  val escape : Buffer.t -> string -> unit
  val string : string -> string
  val field : Buffer.t -> first:bool ref -> string -> string -> unit

  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  val parse : string -> (value, string) result
  (** Strict single-document parse; [Error] carries the offset of the
      first problem.  Never raises. *)

  val mem : string -> value -> value option
  (** Object member lookup; [None] on missing member or non-object. *)

  val str : value -> string option
  val num : value -> float option
  val arr : value -> value list option
  val int : value -> int option
  (** [num] restricted to integral values. *)
end

(** Accumulate-don't-crash collection of diagnostics. *)
module Report : sig
  type diag = t
  type t

  val create : unit -> t
  val add : t -> diag -> unit
  val add_list : t -> diag list -> unit
  val to_list : t -> diag list
  (** In insertion order. *)

  val errors : t -> diag list
  val warnings : t -> diag list
  val has_errors : t -> bool
  val is_empty : t -> bool
  val count : t -> int

  val exit_code : t -> int
  (** 0 when error-free, else the {!exit_code} class of the first error. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> string
  (** [{"schema":"msched-diag-1","diagnostics":[...]}]. *)

  val to_json_buf : Buffer.t -> t -> unit
  (** Just the diagnostics array, for embedding in larger documents. *)
end
