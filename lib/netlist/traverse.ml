type delay = { dmin : int; dmax : int }

let pp_delay ppf d = Format.fprintf ppf "[%d,%d]" d.dmin d.dmax

type t = { nl : Netlist.t; member : bool array; topo : Ids.Cell.t list }

let mem t c = t.member.(Ids.Cell.to_int c)
let netlist t = t.nl
let topo t = t.topo

(* Region-local Kahn topological sort over member combinational cells. *)
let region_topo nl member =
  let ncells = Netlist.num_cells nl in
  let indeg = Array.make ncells 0 in
  let in_play i =
    member.(i) && Levelize.is_comb_through (Netlist.cell nl (Ids.Cell.of_int i))
  in
  for i = 0 to ncells - 1 do
    if in_play i then begin
      let c = Netlist.cell nl (Ids.Cell.of_int i) in
      let deg =
        List.fold_left
          (fun acc n ->
            let d = Netlist.driver nl n in
            if in_play (Ids.Cell.to_int d.Cell.id) then acc + 1 else acc)
          0
          (Levelize.comb_inputs nl c)
      in
      indeg.(i) <- deg
    end
  done;
  let queue = Queue.create () in
  for i = 0 to ncells - 1 do
    if in_play i && indeg.(i) = 0 then Queue.add (Ids.Cell.of_int i) queue
  done;
  let order = ref [] in
  let processed = ref 0 in
  let total = ref 0 in
  for i = 0 to ncells - 1 do
    if in_play i then incr total
  done;
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    incr processed;
    order := cid :: !order;
    let c = Netlist.cell nl cid in
    match c.Cell.output with
    | None -> ()
    | Some out ->
        Array.iter
          (fun (tm : Netlist.term) ->
            let consumer = Netlist.cell nl tm.Netlist.term_cell in
            let j = Ids.Cell.to_int consumer.Cell.id in
            if in_play j && Levelize.is_comb_pin consumer tm.Netlist.term_pin
            then begin
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then Queue.add consumer.Cell.id queue
            end)
          (Netlist.fanouts nl out)
  done;
  if !processed < !total then begin
    let stuck = ref [] in
    for i = ncells - 1 downto 0 do
      if in_play i && indeg.(i) > 0 then stuck := Ids.Cell.of_int i :: !stuck
    done;
    raise (Levelize.Combinational_cycle !stuck)
  end;
  List.rev !order

let make nl ~member =
  let arr = Array.make (Netlist.num_cells nl) false in
  for i = 0 to Netlist.num_cells nl - 1 do
    arr.(i) <- member (Ids.Cell.of_int i)
  done;
  { nl; member = arr; topo = region_topo nl arr }

let of_cells nl cells =
  let arr = Array.make (Netlist.num_cells nl) false in
  List.iter (fun c -> arr.(Ids.Cell.to_int c) <- true) cells;
  { nl; member = arr; topo = region_topo nl arr }

let delays_from t src =
  let table = Ids.Net.Tbl.create 64 in
  Ids.Net.Tbl.replace table src { dmin = 0; dmax = 0 };
  List.iter
    (fun cid ->
      let c = Netlist.cell t.nl cid in
      let ins = Levelize.comb_inputs t.nl c in
      let reach =
        List.filter_map (fun n -> Ids.Net.Tbl.find_opt table n) ins
      in
      match reach, c.Cell.output with
      | [], _ | _, None -> ()
      | first :: rest, Some out ->
          let d =
            List.fold_left
              (fun acc d ->
                { dmin = min acc.dmin d.dmin; dmax = max acc.dmax d.dmax })
              first rest
          in
          Ids.Net.Tbl.replace table out { dmin = d.dmin + 1; dmax = d.dmax + 1 })
    t.topo;
  table

let sink_terms_from t src =
  let table = delays_from t src in
  let acc = ref [] in
  Ids.Net.Tbl.iter
    (fun n d ->
      Array.iter
        (fun (tm : Netlist.term) ->
          let consumer = Netlist.cell t.nl tm.Netlist.term_cell in
          if
            mem t consumer.Cell.id
            && not (Levelize.is_comb_pin consumer tm.Netlist.term_pin)
          then acc := (tm, d) :: !acc)
        (Netlist.fanouts t.nl n))
    table;
  !acc

let reaches t a b = Ids.Net.Tbl.mem (delays_from t a) b

let cone nl start ~forward =
  let seen_nets = Ids.Net.Tbl.create 64 in
  let cells = ref Ids.Cell.Set.empty in
  let rec visit n =
    if not (Ids.Net.Tbl.mem seen_nets n) then begin
      Ids.Net.Tbl.replace seen_nets n ();
      if forward then
        Array.iter
          (fun (tm : Netlist.term) ->
            let c = Netlist.cell nl tm.Netlist.term_cell in
            cells := Ids.Cell.Set.add c.Cell.id !cells;
            if
              Levelize.is_comb_through c
              && Levelize.is_comb_pin c tm.Netlist.term_pin
            then Option.iter visit c.Cell.output)
          (Netlist.fanouts nl n)
      else begin
        let d = Netlist.driver nl n in
        cells := Ids.Cell.Set.add d.Cell.id !cells;
        if Levelize.is_comb_through d then
          List.iter visit (Levelize.comb_inputs nl d)
      end
    end
  in
  visit start;
  !cells

let fanin_cone nl n = cone nl n ~forward:false
let fanout_cone nl n = cone nl n ~forward:true
