module Diag = Msched_diag.Diag

let diag_of_validation_error (e : Netlist.validation_error) =
  match e with
  | Netlist.Undriven_net n ->
      Diag.error Diag.E_UNDRIVEN ~net:(Ids.Net.to_int n) "net %a has no driver"
        Ids.Net.pp n
  | Netlist.Multiple_drivers (n, a, b) ->
      Diag.error Diag.E_MALFORMED_NET ~net:(Ids.Net.to_int n)
        ~cell:(Ids.Cell.to_int b) "net %a driven by both %a and %a" Ids.Net.pp
        n Ids.Cell.pp a Ids.Cell.pp b
  | Netlist.Bad_arity (c, msg) ->
      Diag.error Diag.E_ARITY ~cell:(Ids.Cell.to_int c)
        "cell %a has bad arity: %s" Ids.Cell.pp c msg
  | Netlist.Missing_trigger c ->
      Diag.error Diag.E_MALFORMED_NET ~cell:(Ids.Cell.to_int c)
        "sequential cell %a has no trigger" Ids.Cell.pp c
  | Netlist.Unknown_domain d ->
      Diag.error Diag.E_UNKNOWN_DOMAIN ~domain:(Ids.Dom.to_int d)
        "unknown domain %a" Ids.Dom.pp d

(* The frozen-netlist lint.  Builder.finalize already rejects structurally
   broken graphs (undriven nets, arity, unknown domains) fail-fast;
   [Builder.validate_all] collects those without raising.  What remains
   checkable — and is NOT enforced by finalize — is linted here:

   - combinational cycles (otherwise first surfaced as a raise from deep
     inside levelization, mid-pipeline);
   - dangling nets: a driven net no consumer reads (almost always a
     front-end bug; the scheduler would silently ship it between FPGAs);
   - domains declared but never used by any cell (a domain needs no
     materialized [Clock_source] cell — edges normally arrive from the
     external clock generators — but declaring one nothing references is
     suspicious);
   - cross-domain fanin: a net whose backward cone is sampled by more than
     [xdomain_fanin_limit] distinct clock domains. *)
let xdomain_fanin_limit = 4

let check nl =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  (* Dangling nets. *)
  Netlist.iter_nets nl (fun n ni ->
      if Array.length ni.Netlist.fanouts = 0 then
        push
          (Diag.warning Diag.E_DANGLING ~net:(Ids.Net.to_int n)
             ~cell:(Ids.Cell.to_int ni.Netlist.driver)
             ~culprit:ni.Netlist.net_name "net %s (driven by %s) has no consumer"
             ni.Netlist.net_name
             (Netlist.cell nl ni.Netlist.driver).Cell.name));
  (* Combinational cycles. *)
  (match Levelize.compute nl with
  | Ok _ -> ()
  | Error cycle ->
      let culprit =
        match cycle with
        | c :: _ -> Some (Netlist.cell nl c).Cell.name
        | [] -> None
      in
      push
        (Diag.error Diag.E_COMB_CYCLE
           ?cell:(match cycle with c :: _ -> Some (Ids.Cell.to_int c) | [] -> None)
           ?culprit
           "combinational cycle through %d cells: %a" (List.length cycle)
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
              Ids.Cell.pp)
           cycle));
  (* Declared-but-unused domains. *)
  let used_domains = Array.make (Netlist.num_domains nl) false in
  let use d = used_domains.(Ids.Dom.to_int d) <- true in
  Netlist.iter_cells nl (fun c ->
      (match c.Cell.kind with
      | Cell.Input { domain = Some d } -> use d
      | Cell.Clock_source d -> use d
      | _ -> ());
      match c.Cell.trigger with
      | Some (Cell.Dom_clock d) -> use d
      | Some (Cell.Net_trigger _) | None -> ());
  Array.iteri
    (fun i used ->
      if not used then
        push
          (Diag.warning Diag.E_UNKNOWN_DOMAIN ~domain:i
             "domain %s is declared but never used"
             (Netlist.domain_name nl (Ids.Dom.of_int i))))
    used_domains;
  (* Cross-domain fanin.  A net sampled by sequential cells of many
     different domains forks into one MTS transport per crossing, and the
     equal-delay MERGE rule (Axiom 2) pads every fork to the slowest arm —
     so high cross-domain fanin is where schedule length quietly goes.  The
     sampling-domain set of each net is the backward closure over
     combinational logic of the [Dom_clock] triggers of its sequential
     readers; more than [xdomain_fanin_limit] domains draws a warning. *)
  let module IntSet = Set.Make (Int) in
  let sampled : (int, IntSet.t) Hashtbl.t = Hashtbl.create 97 in
  let get n = Option.value ~default:IntSet.empty (Hashtbl.find_opt sampled n) in
  let work = Queue.create () in
  let add_domain net d =
    let n = Ids.Net.to_int net in
    let s = get n in
    if not (IntSet.mem d s) then (
      Hashtbl.replace sampled n (IntSet.add d s);
      Queue.push net work)
  in
  Netlist.iter_cells nl (fun c ->
      match c.Cell.trigger with
      | Some (Cell.Dom_clock d) ->
          Array.iter
            (fun n -> add_domain n (Ids.Dom.to_int d))
            c.Cell.data_inputs
      | Some (Cell.Net_trigger _) | None -> ());
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    let drv = Netlist.driver nl n in
    if Cell.is_combinational drv then
      let s = get (Ids.Net.to_int n) in
      Array.iter
        (fun m -> IntSet.iter (fun d -> add_domain m d) s)
        drv.Cell.data_inputs
  done;
  Netlist.iter_nets nl (fun n ni ->
      let k = IntSet.cardinal (get (Ids.Net.to_int n)) in
      if k > xdomain_fanin_limit then
        push
          (Diag.warning Diag.E_XDOMAIN_FANIN ~net:(Ids.Net.to_int n)
             ~cell:(Ids.Cell.to_int ni.Netlist.driver)
             ~culprit:ni.Netlist.net_name
             "net %s (driven by %s) is sampled by %d clock domains (limit \
              %d): each crossing costs an MTS transport and equal-delay \
              padding"
             ni.Netlist.net_name
             (Netlist.cell nl ni.Netlist.driver).Cell.name
             k xdomain_fanin_limit));
  List.rev !diags

let errors ds = List.filter Diag.is_error ds
let has_errors ds = List.exists Diag.is_error ds
