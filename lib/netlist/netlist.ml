type pin = Data_pin of int | Trigger_pin

let pp_pin ppf = function
  | Data_pin i -> Format.fprintf ppf "d%d" i
  | Trigger_pin -> Format.pp_print_string ppf "trig"

type term = { term_cell : Ids.Cell.t; term_pin : pin }

let term_equal a b =
  Ids.Cell.equal a.term_cell b.term_cell && a.term_pin = b.term_pin

let pp_term ppf t =
  Format.fprintf ppf "%a.%a" Ids.Cell.pp t.term_cell pp_pin t.term_pin

type net_info = {
  net_name : string;
  driver : Ids.Cell.t;
  fanouts : term array;
}

type t = {
  design_name : string;
  domain_names : string array;
  cells : Cell.t array;
  nets : net_info array;
  clock_sources : Ids.Net.t option array;  (* by domain index *)
}

type validation_error =
  | Undriven_net of Ids.Net.t
  | Multiple_drivers of Ids.Net.t * Ids.Cell.t * Ids.Cell.t
  | Bad_arity of Ids.Cell.t * string
  | Missing_trigger of Ids.Cell.t
  | Unknown_domain of Ids.Dom.t

let pp_validation_error ppf = function
  | Undriven_net n -> Format.fprintf ppf "net %a has no driver" Ids.Net.pp n
  | Multiple_drivers (n, a, b) ->
      Format.fprintf ppf "net %a driven by both %a and %a" Ids.Net.pp n
        Ids.Cell.pp a Ids.Cell.pp b
  | Bad_arity (c, msg) ->
      Format.fprintf ppf "cell %a has bad arity: %s" Ids.Cell.pp c msg
  | Missing_trigger c ->
      Format.fprintf ppf "sequential cell %a has no trigger" Ids.Cell.pp c
  | Unknown_domain d -> Format.fprintf ppf "unknown domain %a" Ids.Dom.pp d

exception Invalid of validation_error

let design_name t = t.design_name
let num_domains t = Array.length t.domain_names
let num_cells t = Array.length t.cells
let num_nets t = Array.length t.nets
let domain_name t d = t.domain_names.(Ids.Dom.to_int d)
let domains t = List.init (num_domains t) Ids.Dom.of_int
let cell t c = t.cells.(Ids.Cell.to_int c)
let net t n = t.nets.(Ids.Net.to_int n)
let driver t n = cell t (net t n).driver
let fanouts t n = (net t n).fanouts
let iter_cells t f = Array.iter f t.cells

let fold_cells t ~init ~f = Array.fold_left f init t.cells
let iter_nets t f = Array.iteri (fun i ni -> f (Ids.Net.of_int i) ni) t.nets
let cells t = t.cells
let clock_source_net t d = t.clock_sources.(Ids.Dom.to_int d)

let trigger_net_of t (c : Cell.t) =
  match c.trigger with
  | None -> None
  | Some (Cell.Net_trigger n) -> Some n
  | Some (Cell.Dom_clock d) -> clock_source_net t d

let term_input_net t tm =
  let c = cell t tm.term_cell in
  match tm.term_pin with
  | Data_pin i -> c.data_inputs.(i)
  | Trigger_pin -> (
      match trigger_net_of t c with
      | Some n -> n
      | None -> invalid_arg "term_input_net: trigger has no net")

let pp_summary ppf t =
  let count p = fold_cells t ~init:0 ~f:(fun n c -> if p c then n + 1 else n) in
  let gates = count Cell.is_combinational in
  let latches = count (fun c -> match c.Cell.kind with Latch _ -> true | _ -> false) in
  let ffs = count (fun c -> match c.Cell.kind with Flip_flop -> true | _ -> false) in
  let rams = count (fun c -> match c.Cell.kind with Ram _ -> true | _ -> false) in
  Format.fprintf ppf
    "design %s: %d domains, %d cells (%d gates, %d latches, %d ffs, %d rams), %d nets"
    t.design_name (num_domains t) (num_cells t) gates latches ffs rams
    (num_nets t)

(* ------------------------------------------------------------------ *)

module Builder = struct
  type proto_net = { mutable pname : string; mutable pdriver : Ids.Cell.t option }

  type t = {
    bname : string;
    mutable bdomains : string list;  (* reversed *)
    mutable ndomains : int;
    mutable bcells : Cell.t list;  (* reversed *)
    mutable ncells : int;
    pnets : (int, proto_net) Hashtbl.t;
    mutable nnets : int;
    bclock_sources : (int, Ids.Net.t) Hashtbl.t;
  }

  let create ?(design_name = "design") () =
    {
      bname = design_name;
      bdomains = [];
      ndomains = 0;
      bcells = [];
      ncells = 0;
      pnets = Hashtbl.create 1024;
      nnets = 0;
      bclock_sources = Hashtbl.create 8;
    }

  let add_domain b name =
    let d = Ids.Dom.of_int b.ndomains in
    b.bdomains <- name :: b.bdomains;
    b.ndomains <- b.ndomains + 1;
    d

  let fresh_net b ?name () =
    let id = b.nnets in
    let name = match name with Some s -> s | None -> Printf.sprintf "n%d" id in
    Hashtbl.add b.pnets id { pname = name; pdriver = None };
    b.nnets <- b.nnets + 1;
    Ids.Net.of_int id

  let fresh_cell_id b =
    let id = Ids.Cell.of_int b.ncells in
    b.ncells <- b.ncells + 1;
    id

  let drive b net cell_id =
    let p = Hashtbl.find b.pnets (Ids.Net.to_int net) in
    (match p.pdriver with
    | Some prev -> raise (Invalid (Multiple_drivers (net, prev, cell_id)))
    | None -> p.pdriver <- Some cell_id);
    ()

  let push b (c : Cell.t) = b.bcells <- c :: b.bcells

  let add_cell b ?name kind ~data_inputs ~trigger ~output =
    let id = fresh_cell_id b in
    let name =
      match name with Some s -> s | None -> Format.asprintf "%a" Ids.Cell.pp id
    in
    (match output with Some n -> drive b n id | None -> ());
    let c : Cell.t =
      { id; kind; data_inputs = Array.of_list data_inputs; trigger; output; name }
    in
    push b c;
    id

  let add_input b ?name ?domain () =
    let out = fresh_net b ?name () in
    let (_ : Ids.Cell.t) =
      add_cell b ?name (Cell.Input { domain }) ~data_inputs:[] ~trigger:None
        ~output:(Some out)
    in
    out

  let add_input_to b ?name ?domain ~output () =
    let (_ : Ids.Cell.t) =
      add_cell b ?name (Cell.Input { domain }) ~data_inputs:[] ~trigger:None
        ~output:(Some output)
    in
    ()

  let add_clock_source_to b d ~output =
    if Hashtbl.mem b.bclock_sources (Ids.Dom.to_int d) then
      invalid_arg "add_clock_source_to: domain already has a clock source";
    let (_ : Ids.Cell.t) =
      add_cell b
        ~name:(Format.asprintf "clksrc_%a" Ids.Dom.pp d)
        (Cell.Clock_source d) ~data_inputs:[] ~trigger:None
        ~output:(Some output)
    in
    Hashtbl.add b.bclock_sources (Ids.Dom.to_int d) output

  let add_clock_source b d =
    match Hashtbl.find_opt b.bclock_sources (Ids.Dom.to_int d) with
    | Some n -> n
    | None ->
        let out = fresh_net b ~name:(Format.asprintf "clk_%a" Ids.Dom.pp d) () in
        let (_ : Ids.Cell.t) =
          add_cell b
            ~name:(Format.asprintf "clksrc_%a" Ids.Dom.pp d)
            (Cell.Clock_source d) ~data_inputs:[] ~trigger:None
            ~output:(Some out)
        in
        Hashtbl.add b.bclock_sources (Ids.Dom.to_int d) out;
        out

  let add_output b ?name net =
    add_cell b ?name Cell.Output ~data_inputs:[ net ] ~trigger:None ~output:None

  let add_gate_to b ?name g inputs ~output =
    let (_ : Ids.Cell.t) =
      add_cell b ?name (Cell.Gate g) ~data_inputs:inputs ~trigger:None
        ~output:(Some output)
    in
    ()

  let add_gate b ?name g inputs =
    let out = fresh_net b ?name () in
    add_gate_to b ?name g inputs ~output:out;
    out

  let add_latch_to b ?name ?(active_high = true) ~data ~gate ~output () =
    let (_ : Ids.Cell.t) =
      add_cell b ?name
        (Cell.Latch { active_high })
        ~data_inputs:[ data ] ~trigger:(Some gate) ~output:(Some output)
    in
    ()

  let add_latch b ?name ?active_high ~data ~gate () =
    let out = fresh_net b ?name () in
    add_latch_to b ?name ?active_high ~data ~gate ~output:out ();
    out

  let add_flip_flop_to b ?name ~data ~clock ~output () =
    let (_ : Ids.Cell.t) =
      add_cell b ?name Cell.Flip_flop ~data_inputs:[ data ]
        ~trigger:(Some clock) ~output:(Some output)
    in
    ()

  let add_flip_flop b ?name ~data ~clock () =
    let out = fresh_net b ?name () in
    add_flip_flop_to b ?name ~data ~clock ~output:out ();
    out

  let add_ram_to b ?name ~addr_bits ~write_enable ~write_data ~write_addr
      ~read_addr ~clock ~output () =
    if List.length write_addr <> addr_bits || List.length read_addr <> addr_bits
    then invalid_arg "add_ram: address width mismatch";
    let data_inputs = (write_enable :: write_data :: write_addr) @ read_addr in
    let (_ : Ids.Cell.t) =
      add_cell b ?name (Cell.Ram { addr_bits }) ~data_inputs ~trigger:(Some clock)
        ~output:(Some output)
    in
    ()

  let add_ram b ?name ~addr_bits ~write_enable ~write_data ~write_addr
      ~read_addr ~clock () =
    let out = fresh_net b ?name () in
    add_ram_to b ?name ~addr_bits ~write_enable ~write_data ~write_addr
      ~read_addr ~clock ~output:out ();
    out

  let check_cell ndomains (c : Cell.t) =
    let arity_fail msg = raise (Invalid (Bad_arity (c.id, msg))) in
    let expect n =
      if Array.length c.data_inputs <> n then
        arity_fail (Printf.sprintf "expected %d data inputs" n)
    in
    let check_domain d =
      if Ids.Dom.to_int d >= ndomains then raise (Invalid (Unknown_domain d))
    in
    (match c.trigger with
    | Some (Cell.Dom_clock d) -> check_domain d
    | Some (Cell.Net_trigger _) | None -> ());
    match c.kind with
    | Cell.Gate g -> (
        match Cell.gate_arity g with
        | Some a -> expect a
        | None ->
            if Array.length c.data_inputs < 1 then
              arity_fail "variadic gate needs at least one input")
    | Cell.Latch _ | Cell.Flip_flop ->
        expect 1;
        if c.trigger = None then raise (Invalid (Missing_trigger c.id))
    | Cell.Ram { addr_bits } ->
        expect (2 + (2 * addr_bits));
        if c.trigger = None then raise (Invalid (Missing_trigger c.id))
    | Cell.Input { domain } ->
        expect 0;
        Option.iter check_domain domain
    | Cell.Clock_source d ->
        expect 0;
        check_domain d
    | Cell.Output -> expect 1

  (* Accumulating variant of the finalize-time checks: every structural
     error in the builder graph (one per cell at most, plus every undriven
     net), in deterministic id order, without raising.  [Lint] maps these
     onto diagnostic codes. *)
  let validate_all b =
    let cells = Array.of_list (List.rev b.bcells) in
    let errs = ref [] in
    Array.iter
      (fun c ->
        match check_cell b.ndomains c with
        | () -> ()
        | exception Invalid e -> errs := e :: !errs)
      cells;
    for i = 0 to b.nnets - 1 do
      match Hashtbl.find_opt b.pnets i with
      | Some { pdriver = Some _; _ } -> ()
      | Some { pdriver = None; _ } | None ->
          errs := Undriven_net (Ids.Net.of_int i) :: !errs
    done;
    List.rev !errs

  let finalize b =
    let domain_names = Array.of_list (List.rev b.bdomains) in
    let cells = Array.of_list (List.rev b.bcells) in
    Array.iter (check_cell (Array.length domain_names)) cells;
    let drivers = Array.make b.nnets None in
    let names = Array.make b.nnets "" in
    Hashtbl.iter
      (fun i p ->
        names.(i) <- p.pname;
        drivers.(i) <- p.pdriver)
      b.pnets;
    let fanouts = Array.make b.nnets [] in
    let add_fanout n tm =
      let i = Ids.Net.to_int n in
      fanouts.(i) <- tm :: fanouts.(i)
    in
    let clock_sources = Array.make (Array.length domain_names) None in
    Hashtbl.iter
      (fun d n -> clock_sources.(d) <- Some n)
      b.bclock_sources;
    Array.iter
      (fun (c : Cell.t) ->
        Array.iteri
          (fun i n -> add_fanout n { term_cell = c.id; term_pin = Data_pin i })
          c.data_inputs;
        match c.trigger with
        | Some (Cell.Net_trigger n) ->
            add_fanout n { term_cell = c.id; term_pin = Trigger_pin }
        | Some (Cell.Dom_clock d) -> (
            (* If the domain clock is materialized as a net, record the
               trigger as its fanout so analyses see the dependency. *)
            match clock_sources.(Ids.Dom.to_int d) with
            | Some n -> add_fanout n { term_cell = c.id; term_pin = Trigger_pin }
            | None -> ())
        | None -> ())
      cells;
    let nets =
      Array.init b.nnets (fun i ->
          match drivers.(i) with
          | None -> raise (Invalid (Undriven_net (Ids.Net.of_int i)))
          | Some d ->
              {
                net_name = names.(i);
                driver = d;
                fanouts = Array.of_list (List.rev fanouts.(i));
              })
    in
    { design_name = b.bname; domain_names; cells; nets; clock_sources }

  let finalize_result b =
    match validate_all b with
    | [] -> (
        (* The accumulating pass mirrors finalize's checks; a raise here
           would mean they diverged, so surface it rather than mask it. *)
        match finalize b with
        | nl -> Ok nl
        | exception Invalid e -> Error [ e ])
    | errs -> Error errs
end
