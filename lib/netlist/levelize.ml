exception Combinational_cycle of Ids.Cell.t list

type t = {
  levels : int array;  (* by net index *)
  topo : Ids.Cell.t array;
  max_level : int;
}

let comb_inputs _nl (c : Cell.t) =
  match c.kind with
  | Cell.Gate _ -> Array.to_list c.data_inputs
  | Cell.Ram { addr_bits } ->
      (* data_inputs = [| we; wdata; waddr...; raddr... |] *)
      List.init addr_bits (fun i -> c.data_inputs.(2 + addr_bits + i))
  | Cell.Latch _ | Cell.Flip_flop | Cell.Input _ | Cell.Clock_source _
  | Cell.Output ->
      []

let is_comb_through (c : Cell.t) =
  match c.kind with
  | Cell.Gate _ | Cell.Ram _ -> true
  | Cell.Latch _ | Cell.Flip_flop | Cell.Input _ | Cell.Clock_source _
  | Cell.Output ->
      false

(* Whether an individual input pin participates in combinational propagation
   through the cell (for RAMs, only read-address pins do). *)
let is_comb_pin (c : Cell.t) (pin : Netlist.pin) =
  match pin, c.kind with
  | Netlist.Trigger_pin, _ -> false
  | Netlist.Data_pin _, Cell.Gate _ -> true
  | Netlist.Data_pin i, Cell.Ram { addr_bits } -> i >= 2 + addr_bits
  | Netlist.Data_pin _, ( Cell.Latch _ | Cell.Flip_flop | Cell.Input _
                        | Cell.Clock_source _ | Cell.Output ) ->
      false

(* Kahn's algorithm over the combinational subgraph.  In-degree of a cell is
   the number of its combinational input nets whose drivers are themselves
   combinational through-cells. *)
let compute nl =
  let ncells = Netlist.num_cells nl in
  let nnets = Netlist.num_nets nl in
  let levels = Array.make nnets 0 in
  let indeg = Array.make ncells 0 in
  let members = Array.make ncells false in
  Netlist.iter_cells nl (fun c ->
      if is_comb_through c then begin
        members.(Ids.Cell.to_int c.id) <- true;
        let deg =
          List.fold_left
            (fun acc n ->
              if is_comb_through (Netlist.driver nl n) then acc + 1 else acc)
            0 (comb_inputs nl c)
        in
        indeg.(Ids.Cell.to_int c.id) <- deg
      end);
  let queue = Queue.create () in
  Netlist.iter_cells nl (fun c ->
      if members.(Ids.Cell.to_int c.id) && indeg.(Ids.Cell.to_int c.id) = 0
      then Queue.add c.id queue);
  let topo = ref [] in
  let processed = ref 0 in
  let total = Array.fold_left (fun n m -> if m then n + 1 else n) 0 members in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    incr processed;
    topo := cid :: !topo;
    let c = Netlist.cell nl cid in
    let lvl =
      List.fold_left
        (fun acc n -> max acc (levels.(Ids.Net.to_int n) + 1))
        1 (comb_inputs nl c)
    in
    (match c.output with
    | Some out -> levels.(Ids.Net.to_int out) <- lvl
    | None -> ());
    match c.output with
    | None -> ()
    | Some out ->
        Array.iter
          (fun (tm : Netlist.term) ->
            let consumer = Netlist.cell nl tm.Netlist.term_cell in
            if is_comb_through consumer && is_comb_pin consumer tm.Netlist.term_pin
            then begin
              let i = Ids.Cell.to_int consumer.id in
              indeg.(i) <- indeg.(i) - 1;
              if indeg.(i) = 0 then Queue.add consumer.id queue
            end)
          (Netlist.fanouts nl out)
  done;
  if !processed < total then begin
    (* Cells still having positive in-degree are on or downstream of a cycle;
       extract one actual cycle by walking predecessors. *)
    let stuck =
      List.filter
        (fun i -> members.(i) && indeg.(i) > 0)
        (List.init ncells Fun.id)
    in
    let stuck_set = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace stuck_set i ()) stuck;
    let rec walk seen i =
      if List.exists (Int.equal i) seen then
        (* cut the path at the first repetition *)
        let rec take = function
          | [] -> []
          | j :: rest -> if Int.equal j i then [ j ] else j :: take rest
        in
        take seen
      else
        let c = Netlist.cell nl (Ids.Cell.of_int i) in
        let pred =
          List.find_map
            (fun n ->
              let d = Netlist.driver nl n in
              let j = Ids.Cell.to_int d.Cell.id in
              if Hashtbl.mem stuck_set j then Some j else None)
            (comb_inputs nl c)
        in
        match pred with
        | Some j -> walk (i :: seen) j
        | None -> i :: seen
    in
    let cycle =
      match stuck with
      | [] -> []
      | i :: _ -> List.map Ids.Cell.of_int (walk [] i)
    in
    Error cycle
  end
  else
    let max_level = Array.fold_left max 0 levels in
    Ok { levels; topo = Array.of_list (List.rev !topo); max_level }

let compute_exn nl =
  match compute nl with
  | Ok t -> t
  | Error cycle -> raise (Combinational_cycle cycle)

let net_level t n = t.levels.(Ids.Net.to_int n)
let topo_cells t = t.topo
let max_level t = t.max_level
