let gate_name = function
  | Cell.And -> "and"
  | Cell.Or -> "or"
  | Cell.Nand -> "nand"
  | Cell.Nor -> "nor"
  | Cell.Xor -> "xor"
  | Cell.Xnor -> "xnor"
  | Cell.Not -> "not"
  | Cell.Buf -> "buf"
  | Cell.Mux -> "mux"

let gate_of_name = function
  | "and" -> Some Cell.And
  | "or" -> Some Cell.Or
  | "nand" -> Some Cell.Nand
  | "nor" -> Some Cell.Nor
  | "xor" -> Some Cell.Xor
  | "xnor" -> Some Cell.Xnor
  | "not" -> Some Cell.Not
  | "buf" -> Some Cell.Buf
  | "mux" -> Some Cell.Mux
  | _ -> None

(* Names may not contain whitespace; sanitize on output. *)
let clean_name s =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' then '_' else c) s

let output ppf nl =
  let line fmt = Format.fprintf ppf fmt in
  line "design %s@\n" (clean_name (Netlist.design_name nl));
  List.iter
    (fun d -> line "domain %s@\n" (clean_name (Netlist.domain_name nl d)))
    (Netlist.domains nl);
  Netlist.iter_nets nl (fun n ni ->
      line "net %d %s@\n" (Ids.Net.to_int n) (clean_name ni.Netlist.net_name));
  let net n = Ids.Net.to_int n in
  let trigger (c : Cell.t) =
    match c.Cell.trigger with
    | Some (Cell.Dom_clock d) -> Printf.sprintf "dom %d" (Ids.Dom.to_int d)
    | Some (Cell.Net_trigger t) -> Printf.sprintf "net %d" (net t)
    | None -> "dom 0" (* unreachable for sequential cells *)
  in
  Netlist.iter_cells nl (fun c ->
      let name = clean_name c.Cell.name in
      match c.Cell.kind with
      | Cell.Input { domain } ->
          line "input %s %d%s@\n" name
            (net (Option.get c.Cell.output))
            (match domain with
            | Some d -> Printf.sprintf " domain %d" (Ids.Dom.to_int d)
            | None -> "")
      | Cell.Clock_source d ->
          line "clocksource %d %d@\n" (Ids.Dom.to_int d)
            (net (Option.get c.Cell.output))
      | Cell.Gate g ->
          line "gate %s %s %d" (gate_name g) name (net (Option.get c.Cell.output));
          Array.iter (fun i -> line " %d" (net i)) c.Cell.data_inputs;
          line "@\n"
      | Cell.Latch { active_high } ->
          line "latch %s %d %d %s %s@\n" name
            (net (Option.get c.Cell.output))
            (net c.Cell.data_inputs.(0))
            (trigger c)
            (if active_high then "high" else "low")
      | Cell.Flip_flop ->
          line "ff %s %d %d %s@\n" name
            (net (Option.get c.Cell.output))
            (net c.Cell.data_inputs.(0))
            (trigger c)
      | Cell.Ram { addr_bits } ->
          line "ram %s %d %d" name (net (Option.get c.Cell.output)) addr_bits;
          Array.iter (fun i -> line " %d" (net i)) c.Cell.data_inputs;
          line " %s@\n" (trigger c)
      | Cell.Output -> line "output %s %d@\n" name (net c.Cell.data_inputs.(0)))

let to_string nl = Format.asprintf "%a" output nl

(* ------------------------------------------------------------------ *)

exception Parse of int * string

(* Mutable parse state shared by the fail-fast and the diagnostic-collecting
   entry points.  A `design' directive resets the builder (matching the
   historical behavior of one design per file). *)
type pstate = {
  mutable b : Netlist.Builder.t;
  nets : (int, Ids.Net.t) Hashtbl.t;
}

let process_line st lineno tokens =
  let nets = st.nets in
  let net lineno id =
    match Hashtbl.find_opt nets id with
    | Some n -> n
    | None -> raise (Parse (lineno, Printf.sprintf "unknown net %d" id))
  in
  let int lineno s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> raise (Parse (lineno, Printf.sprintf "expected integer, got %S" s))
  in
  let dom lineno s = Ids.Dom.of_int (int lineno s) in
  let parse_trigger lineno = function
    | [ "dom"; d ] -> Cell.Dom_clock (dom lineno d)
    | [ "net"; n ] -> Cell.Net_trigger (net lineno (int lineno n))
    | _ -> raise (Parse (lineno, "expected `dom <d>' or `net <n>'"))
  in
  match tokens with
    | [] -> ()
    | "#" :: _ -> ()
    | [ "design"; name ] -> st.b <- Netlist.Builder.create ~design_name:name ()
    | [ "domain"; name ] ->
        let (_ : Ids.Dom.t) = Netlist.Builder.add_domain st.b name in
        ()
    | [ "net"; id; name ] ->
        let n = Netlist.Builder.fresh_net st.b ~name () in
        Hashtbl.replace nets (int lineno id) n
    | "input" :: name :: out :: rest ->
        let domain =
          match rest with
          | [] -> None
          | [ "domain"; d ] -> Some (dom lineno d)
          | _ -> raise (Parse (lineno, "bad input line"))
        in
        Netlist.Builder.add_input_to st.b ~name ?domain
          ~output:(net lineno (int lineno out))
          ()
    | [ "clocksource"; d; out ] ->
        Netlist.Builder.add_clock_source_to st.b (dom lineno d)
          ~output:(net lineno (int lineno out))
    | "gate" :: kind :: name :: out :: ins -> (
        match gate_of_name kind with
        | None -> raise (Parse (lineno, "unknown gate kind " ^ kind))
        | Some g ->
            Netlist.Builder.add_gate_to st.b ~name g
              (List.map (fun i -> net lineno (int lineno i)) ins)
              ~output:(net lineno (int lineno out)))
    | [ "latch"; name; out; data; t0; t1; pol ] ->
        let active_high =
          match pol with
          | "high" -> true
          | "low" -> false
          | _ -> raise (Parse (lineno, "latch polarity must be high|low"))
        in
        Netlist.Builder.add_latch_to st.b ~name ~active_high
          ~data:(net lineno (int lineno data))
          ~gate:(parse_trigger lineno [ t0; t1 ])
          ~output:(net lineno (int lineno out))
          ()
    | [ "ff"; name; out; data; t0; t1 ] ->
        Netlist.Builder.add_flip_flop_to st.b ~name
          ~data:(net lineno (int lineno data))
          ~clock:(parse_trigger lineno [ t0; t1 ])
          ~output:(net lineno (int lineno out))
          ()
    | "ram" :: name :: out :: addr_bits :: rest ->
        let a = int lineno addr_bits in
        let expected = 2 + (2 * a) + 2 in
        if List.length rest <> expected then
          raise (Parse (lineno, "bad ram pin count"));
        let pins, trig =
          let rec split k acc = function
            | rest when k = 0 -> (List.rev acc, rest)
            | x :: rest -> split (k - 1) (x :: acc) rest
            | [] -> raise (Parse (lineno, "bad ram line"))
          in
          split (2 + (2 * a)) [] rest
        in
        let pins = List.map (fun i -> net lineno (int lineno i)) pins in
        let we, wdata, waddr, raddr =
          match pins with
          | we :: wdata :: rest ->
              let rec take k acc = function
                | rest when k = 0 -> (List.rev acc, rest)
                | x :: rest -> take (k - 1) (x :: acc) rest
                | [] -> raise (Parse (lineno, "bad ram address pins"))
              in
              let waddr, rest = take a [] rest in
              let raddr, _ = take a [] rest in
              (we, wdata, waddr, raddr)
          | _ -> raise (Parse (lineno, "bad ram pins"))
        in
        Netlist.Builder.add_ram_to st.b ~name ~addr_bits:a ~write_enable:we
          ~write_data:wdata ~write_addr:waddr ~read_addr:raddr
          ~clock:(parse_trigger lineno trig)
          ~output:(net lineno (int lineno out))
          ()
    | [ "output"; name; input ] ->
        let (_ : Ids.Cell.t) =
          Netlist.Builder.add_output st.b ~name (net lineno (int lineno input))
        in
        ()
    | tok :: _ -> raise (Parse (lineno, "unknown directive " ^ tok))

let iter_lines text f =
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let tokens =
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         in
         match tokens with
         | t :: _ when String.length t > 0 && t.[0] = '#' -> ()
         | _ -> f (i + 1) tokens)

let of_string text =
  let st = { b = Netlist.Builder.create (); nets = Hashtbl.create 256 } in
  match iter_lines text (process_line st) with
  | () -> (
      match Netlist.Builder.finalize st.b with
      | nl -> Ok nl
      | exception Netlist.Invalid e ->
          Error (Format.asprintf "validation: %a" Netlist.pp_validation_error e))
  | exception Parse (lineno, msg) ->
      Error (Printf.sprintf "line %d: %s" lineno msg)
  | exception Invalid_argument msg -> Error msg

let canonical text =
  match of_string text with
  | Ok nl -> Ok (to_string nl)
  | Error _ as e -> e

(* Diagnostic-collecting parse: one diagnostic per bad line (the line is
   skipped and parsing continues, so one typo does not hide the rest), then
   the accumulating structural validation of [Builder.finalize_result].
   Skipped lines can cascade (a skipped `net' makes later users of that id
   fail too), so the count is capped. *)
let max_parse_diags = 100

let of_string_diag text =
  let module Diag = Msched_diag.Diag in
  let st = { b = Netlist.Builder.create (); nets = Hashtbl.create 256 } in
  let rev_diags = ref [] in
  let ndiags = ref 0 in
  let truncated = ref false in
  let push d =
    if !ndiags < max_parse_diags then begin
      rev_diags := d :: !rev_diags;
      incr ndiags
    end
    else truncated := true
  in
  iter_lines text (fun lineno tokens ->
      match process_line st lineno tokens with
      | () -> ()
      | exception Parse (l, m) ->
          push (Diag.error Diag.E_PARSE "line %d: %s" l m)
      | exception Netlist.Invalid e -> push (Lint.diag_of_validation_error e)
      | exception Invalid_argument m ->
          push (Diag.error Diag.E_MALFORMED_NET "line %d: %s" lineno m));
  if !truncated then
    push
      (Diag.error Diag.E_PARSE "more than %d parse errors; rest suppressed"
         max_parse_diags);
  let parse_diags = List.rev !rev_diags in
  if parse_diags <> [] then Error parse_diags
  else
    match Netlist.Builder.finalize_result st.b with
    | Ok nl -> Ok nl
    | Error errs -> Error (List.map Lint.diag_of_validation_error errs)

let of_string_exn text =
  match of_string text with Ok nl -> nl | Error msg -> failwith msg
