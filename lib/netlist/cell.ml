type gate = And | Or | Nand | Nor | Xor | Xnor | Not | Buf | Mux

let gate_arity = function
  | And | Or | Nand | Nor -> None
  | Xor | Xnor -> Some 2
  | Not | Buf -> Some 1
  | Mux -> Some 3

let pp_gate ppf g =
  let s =
    match g with
    | And -> "and"
    | Or -> "or"
    | Nand -> "nand"
    | Nor -> "nor"
    | Xor -> "xor"
    | Xnor -> "xnor"
    | Not -> "not"
    | Buf -> "buf"
    | Mux -> "mux"
  in
  Format.pp_print_string ppf s

let check_arity g inputs =
  let n = Array.length inputs in
  match gate_arity g with
  | Some a when a <> n ->
      invalid_arg
        (Format.asprintf "gate %a expects %d inputs, got %d" pp_gate g a n)
  | Some _ -> ()
  | None -> if n < 1 then invalid_arg "variadic gate needs at least one input"

let eval_gate g inputs =
  check_arity g inputs;
  let all = Array.for_all Fun.id inputs in
  let any = Array.exists Fun.id inputs in
  match g with
  | And -> all
  | Or -> any
  | Nand -> not all
  | Nor -> not any
  | Xor -> inputs.(0) <> inputs.(1)
  | Xnor -> inputs.(0) = inputs.(1)
  | Not -> not inputs.(0)
  | Buf -> inputs.(0)
  | Mux -> if inputs.(0) then inputs.(2) else inputs.(1)

type trigger = Dom_clock of Ids.Dom.t | Net_trigger of Ids.Net.t

type kind =
  | Gate of gate
  | Latch of { active_high : bool }
  | Flip_flop
  | Ram of { addr_bits : int }
  | Input of { domain : Ids.Dom.t option }
  | Clock_source of Ids.Dom.t
  | Output

type t = {
  id : Ids.Cell.t;
  kind : kind;
  data_inputs : Ids.Net.t array;
  trigger : trigger option;
  output : Ids.Net.t option;
  name : string;
}

let is_sequential c =
  match c.kind with
  | Latch _ | Flip_flop | Ram _ -> true
  | Gate _ | Input _ | Clock_source _ | Output -> false

let is_combinational c =
  match c.kind with
  | Gate _ -> true
  | Latch _ | Flip_flop | Ram _ | Input _ | Clock_source _ | Output -> false

let is_source c =
  match c.kind with
  | Input _ | Clock_source _ -> true
  | Gate _ | Latch _ | Flip_flop | Ram _ | Output -> false

let ram_words ~addr_bits =
  if addr_bits < 0 || addr_bits > 20 then invalid_arg "ram_words: addr_bits";
  1 lsl addr_bits

let pp_kind ppf = function
  | Gate g -> pp_gate ppf g
  | Latch { active_high } ->
      Format.fprintf ppf "latch(%s)" (if active_high then "high" else "low")
  | Flip_flop -> Format.pp_print_string ppf "dff"
  | Ram { addr_bits } -> Format.fprintf ppf "ram(%d words)" (1 lsl addr_bits)
  | Input { domain = None } -> Format.pp_print_string ppf "input"
  | Input { domain = Some d } -> Format.fprintf ppf "input@%a" Ids.Dom.pp d
  | Clock_source d -> Format.fprintf ppf "clock@%a" Ids.Dom.pp d
  | Output -> Format.pp_print_string ppf "output"

let pp ppf c =
  Format.fprintf ppf "%a:%s[%a]" Ids.Cell.pp c.id c.name pp_kind c.kind
