module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module Make (P : sig
  val prefix : string
end) : S = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg (P.prefix ^ " id must be non-negative");
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash = Hashtbl.hash
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i

  module Key = struct
    type nonrec t = t

    let compare = compare
    let equal = equal
    let hash = hash
  end

  module Set = Set.Make (Key)
  module Map = Map.Make (Key)
  module Tbl = Hashtbl.Make (Key)
end

module Net = Make (struct
  let prefix = "n"
end)

module Cell = Make (struct
  let prefix = "c"
end)

module Dom = Make (struct
  let prefix = "d"
end)

module Block = Make (struct
  let prefix = "b"
end)

module Fpga = Make (struct
  let prefix = "f"
end)

module Wire = Make (struct
  let prefix = "w"
end)

module Link = Make (struct
  let prefix = "l"
end)
