let domain_colors =
  [| "lightblue"; "lightsalmon"; "palegreen"; "plum"; "khaki"; "lightcyan" |]

let shape_of (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Gate _ -> "ellipse"
  | Cell.Latch _ -> "diamond"
  | Cell.Flip_flop -> "box"
  | Cell.Ram _ -> "box3d"
  | Cell.Input _ | Cell.Clock_source _ -> "invtriangle"
  | Cell.Output -> "triangle"

let color_of nl (c : Cell.t) =
  let dom_of_trigger () =
    match c.Cell.trigger with
    | Some (Cell.Dom_clock d) -> Some d
    | Some (Cell.Net_trigger _) | None -> None
  in
  let d =
    match c.Cell.kind with
    | Cell.Input { domain } -> domain
    | Cell.Clock_source d -> Some d
    | Cell.Latch _ | Cell.Flip_flop | Cell.Ram _ -> dom_of_trigger ()
    | Cell.Gate _ | Cell.Output -> None
  in
  ignore nl;
  match d with
  | Some d -> domain_colors.(Ids.Dom.to_int d mod Array.length domain_colors)
  | None -> "white"

let node_id (c : Cell.t) = Printf.sprintf "c%d" (Ids.Cell.to_int c.Cell.id)

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let output ?(cluster = fun _ -> None) ppf nl =
  let line fmt = Format.fprintf ppf fmt in
  line "digraph %s {@\n" (escape (Netlist.design_name nl));
  line "  rankdir=LR;@\n  node [style=filled];@\n";
  (* Group cells by cluster. *)
  let clusters : (int, Cell.t list) Hashtbl.t = Hashtbl.create 16 in
  let toplevel = ref [] in
  Netlist.iter_cells nl (fun c ->
      match cluster c.Cell.id with
      | Some k ->
          Hashtbl.replace clusters k
            (c :: Option.value ~default:[] (Hashtbl.find_opt clusters k))
      | None -> toplevel := c :: !toplevel);
  let emit_cell (c : Cell.t) =
    line "    %s [label=\"%s\\n%s\" shape=%s fillcolor=%s];@\n" (node_id c)
      (escape c.Cell.name)
      (escape (Format.asprintf "%a" Cell.pp_kind c.Cell.kind))
      (shape_of c) (color_of nl c)
  in
  Hashtbl.iter
    (fun k cells ->
      line "  subgraph cluster_%d {@\n    label=\"block %d\";@\n" k k;
      List.iter emit_cell (List.rev cells);
      line "  }@\n")
    clusters;
  List.iter emit_cell (List.rev !toplevel);
  (* Edges: driver -> each consumer; trigger edges dashed. *)
  Netlist.iter_nets nl (fun _n ni ->
      let src = Netlist.cell nl ni.Netlist.driver in
      Array.iter
        (fun (tm : Netlist.term) ->
          let dst = Netlist.cell nl tm.Netlist.term_cell in
          let style =
            match tm.Netlist.term_pin with
            | Netlist.Trigger_pin -> " [style=dashed]"
            | Netlist.Data_pin _ -> ""
          in
          line "  %s -> %s%s;@\n" (node_id src) (node_id dst) style)
        ni.Netlist.fanouts);
  line "}@\n"

let to_string ?cluster nl = Format.asprintf "%a" (output ?cluster) nl
