(** Combinational levelization of a netlist.

    Combinational propagation goes through [Gate] cells (all data inputs) and
    through the asynchronous read path of [Ram] cells (read-address inputs to
    the read-data output).  Latch, flip-flop and RAM-write inputs are timing
    endpoints; latch/flip-flop/RAM outputs, primary inputs and clock sources
    are timing start points with level 0.

    Latches are treated as cut points here even though they are transparent
    when open; their in-frame evaluation order is handled separately by the
    MTS latch scheduler. *)

type t

val compute : Netlist.t -> (t, Ids.Cell.t list) result
(** Levelize the whole netlist.  [Error cycle] reports a purely combinational
    cycle (a loop through gates and RAM read paths with no sequential
    element), listing the cells on it. *)

val compute_exn : Netlist.t -> t
(** @raise Combinational_cycle on a gate-level loop. *)

exception Combinational_cycle of Ids.Cell.t list

val net_level : t -> Ids.Net.t -> int
(** Combinational depth of a net: 0 for start points, [1 + max input level]
    for gate outputs. *)

val topo_cells : t -> Ids.Cell.t array
(** Combinational cells ([Gate] and [Ram] read paths) in topological order. *)

val max_level : t -> int

val comb_inputs : Netlist.t -> Cell.t -> Ids.Net.t list
(** The nets a cell's output depends on combinationally: all data inputs for
    gates, the read-address nets for RAMs, nothing for sequential/source
    cells. *)

val is_comb_through : Cell.t -> bool
(** Whether the cell propagates values combinationally from (some of) its
    inputs to its output: gates and RAM read paths. *)

val is_comb_pin : Cell.t -> Netlist.pin -> bool
(** Whether an individual input pin participates in combinational propagation
    through the cell. *)
