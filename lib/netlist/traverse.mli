(** Region-scoped combinational traversal and delay analysis.

    A {e region} is a subset of cells (typically one partition block).  Within
    a region, values flow combinationally through gates and RAM read paths;
    sequential pins, primary outputs and nets leaving the region are sinks.
    These queries underpin the MTS latch terminal sets (D-INPUT, G-INPUT,
    G-OUTPUT) and the Min/MaxDelay tables of the paper's Section 7. *)

type delay = { dmin : int; dmax : int }
(** Shortest and longest combinational path delay, counted in gate levels
    (one virtual clock per level by default). *)

val pp_delay : Format.formatter -> delay -> unit

type t
(** A prepared region: member set plus a topological order of its
    combinational cells. *)

val make : Netlist.t -> member:(Ids.Cell.t -> bool) -> t
(** @raise Levelize.Combinational_cycle if the region's gates are cyclic. *)

val of_cells : Netlist.t -> Ids.Cell.t list -> t

val mem : t -> Ids.Cell.t -> bool
val netlist : t -> Netlist.t
val topo : t -> Ids.Cell.t list

val delays_from : t -> Ids.Net.t -> delay Ids.Net.Tbl.t
(** [delays_from region src] maps every net combinationally reachable from
    [src] inside the region (including [src] itself, at delay 0/0) to its
    min/max delay.  Propagation crosses a cell only when both the cell and
    the specific input pin are combinational, and only when the cell is a
    region member. *)

val sink_terms_from : t -> Ids.Net.t -> (Netlist.term * delay) list
(** Sink terminals reached from [src] inside the region: sequential data and
    trigger pins, RAM write pins and primary-output pins of member cells,
    with the min/max delay of the net feeding them. *)

val reaches : t -> Ids.Net.t -> Ids.Net.t -> bool
(** [reaches region a b]: is there a combinational path from [a] to [b]
    inside the region? *)

val fanin_cone : Netlist.t -> Ids.Net.t -> Ids.Cell.Set.t
(** Transitive combinational fan-in cone of a net over the whole netlist. *)

val fanout_cone : Netlist.t -> Ids.Net.t -> Ids.Cell.Set.t
(** Transitive combinational fan-out cone of a net over the whole netlist
    (cells whose outputs can change combinationally when the net changes,
    plus the sink cells sampling it). *)
