(** Small graph utilities shared across the compiler. *)

val sccs : int -> (int -> int list) -> int list list
(** [sccs n succ] — Tarjan's strongly connected components of the digraph on
    vertices [0 .. n-1].  The returned component list is in topological order
    of the condensation, edge sources first; vertices inside a component are
    in discovery order. *)
