(** Gate-level netlists: a frozen, validated design graph plus a mutable
    builder used by front-ends and generators.

    Invariants of a frozen netlist:
    - every net has exactly one driver cell;
    - cell and net ids are dense indices into the respective arrays;
    - fanout (consumer terminal) lists are precomputed for every net;
    - trigger nets of sequential cells appear in the fanout of their source
      nets as {!Trigger_pin} terminals. *)

type pin =
  | Data_pin of int  (** Index into [Cell.data_inputs]. *)
  | Trigger_pin  (** The gate/clock input of a sequential cell. *)

val pp_pin : Format.formatter -> pin -> unit

type term = { term_cell : Ids.Cell.t; term_pin : pin }
(** A consumer terminal: one input pin of one cell. *)

val term_equal : term -> term -> bool
val pp_term : Format.formatter -> term -> unit

type net_info = {
  net_name : string;
  driver : Ids.Cell.t;
  fanouts : term array;
}

type t

(** {1 Accessors} *)

val design_name : t -> string
val num_domains : t -> int
val num_cells : t -> int
val num_nets : t -> int
val domain_name : t -> Ids.Dom.t -> string
val domains : t -> Ids.Dom.t list
val cell : t -> Ids.Cell.t -> Cell.t
val net : t -> Ids.Net.t -> net_info
val driver : t -> Ids.Net.t -> Cell.t
val fanouts : t -> Ids.Net.t -> term array
val iter_cells : t -> (Cell.t -> unit) -> unit
val fold_cells : t -> init:'a -> f:('a -> Cell.t -> 'a) -> 'a
val iter_nets : t -> (Ids.Net.t -> net_info -> unit) -> unit
val cells : t -> Cell.t array
(** The underlying cell array, indexed by [Ids.Cell.to_int]. Do not mutate. *)

val trigger_net_of : t -> Cell.t -> Ids.Net.t option
(** The net feeding a sequential cell's trigger pin: the clock-source net for
    [Dom_clock] triggers, the trigger net itself for [Net_trigger]. Returns
    [None] for combinational cells and for [Dom_clock] triggers whose domain
    has no materialized clock-source cell. *)

val clock_source_net : t -> Ids.Dom.t -> Ids.Net.t option
(** The net driven by the domain's [Clock_source] cell, if one was created. *)

val term_input_net : t -> term -> Ids.Net.t
(** The net connected to a consumer terminal. *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Validation} *)

type validation_error =
  | Undriven_net of Ids.Net.t
  | Multiple_drivers of Ids.Net.t * Ids.Cell.t * Ids.Cell.t
  | Bad_arity of Ids.Cell.t * string
  | Missing_trigger of Ids.Cell.t
  | Unknown_domain of Ids.Dom.t

val pp_validation_error : Format.formatter -> validation_error -> unit

exception Invalid of validation_error

(** {1 Builder} *)

module Builder : sig
  type netlist := t
  type t

  val create : ?design_name:string -> unit -> t

  val add_domain : t -> string -> Ids.Dom.t
  (** Declare a clock domain. Domains are the unit of asynchrony. *)

  val fresh_net : t -> ?name:string -> unit -> Ids.Net.t
  (** Allocate an undriven net, to be driven later with one of the [_to]
      constructors (needed for feedback loops). *)

  val add_input : t -> ?name:string -> ?domain:Ids.Dom.t -> unit -> Ids.Net.t
  (** Primary input; returns the net it drives. *)

  val add_input_to :
    t -> ?name:string -> ?domain:Ids.Dom.t -> output:Ids.Net.t -> unit -> unit
  (** Like {!add_input} but drives a pre-allocated net (used by netlist
      rewrites that must preserve net ids). *)

  val add_clock_source : t -> Ids.Dom.t -> Ids.Net.t
  (** The domain's root clock as a net (idempotent per domain). *)

  val add_clock_source_to : t -> Ids.Dom.t -> output:Ids.Net.t -> unit
  (** Like {!add_clock_source} but drives a pre-allocated net.
      @raise Invalid_argument if the domain already has a clock source. *)

  val add_output : t -> ?name:string -> Ids.Net.t -> Ids.Cell.t

  val add_gate : t -> ?name:string -> Cell.gate -> Ids.Net.t list -> Ids.Net.t
  (** Create a gate driving a fresh net; returns that net. *)

  val add_gate_to :
    t -> ?name:string -> Cell.gate -> Ids.Net.t list -> output:Ids.Net.t -> unit
  (** Like {!add_gate} but drives a pre-allocated (so far undriven) net. *)

  val add_latch :
    t ->
    ?name:string ->
    ?active_high:bool ->
    data:Ids.Net.t ->
    gate:Cell.trigger ->
    unit ->
    Ids.Net.t

  val add_latch_to :
    t ->
    ?name:string ->
    ?active_high:bool ->
    data:Ids.Net.t ->
    gate:Cell.trigger ->
    output:Ids.Net.t ->
    unit ->
    unit

  val add_flip_flop :
    t -> ?name:string -> data:Ids.Net.t -> clock:Cell.trigger -> unit -> Ids.Net.t

  val add_flip_flop_to :
    t ->
    ?name:string ->
    data:Ids.Net.t ->
    clock:Cell.trigger ->
    output:Ids.Net.t ->
    unit ->
    unit

  val add_ram :
    t ->
    ?name:string ->
    addr_bits:int ->
    write_enable:Ids.Net.t ->
    write_data:Ids.Net.t ->
    write_addr:Ids.Net.t list ->
    read_addr:Ids.Net.t list ->
    clock:Cell.trigger ->
    unit ->
    Ids.Net.t
  (** One-bit-wide synchronous-write, asynchronous-read RAM; returns the read
      data net. [write_addr] and [read_addr] must each have [addr_bits]
      nets. *)

  val add_ram_to :
    t ->
    ?name:string ->
    addr_bits:int ->
    write_enable:Ids.Net.t ->
    write_data:Ids.Net.t ->
    write_addr:Ids.Net.t list ->
    read_addr:Ids.Net.t list ->
    clock:Cell.trigger ->
    output:Ids.Net.t ->
    unit ->
    unit

  val validate_all : t -> validation_error list
  (** Every structural error of the builder graph (bad arities, missing
      triggers, unknown domains — at most one per cell — plus every
      undriven net), in deterministic id order.  Never raises; [[]] iff
      {!finalize} would succeed. *)

  val finalize : t -> netlist
  (** Freeze and validate. @raise Invalid on a malformed design. *)

  val finalize_result : t -> (netlist, validation_error list) result
  (** Like {!finalize} but collects {e all} validation errors instead of
      raising on the first. *)
end
