(** Netlist lint: collect {e all} problems of a design as structured
    diagnostics instead of crashing on the first.

    Three layers of defence, shallowest first:

    + {!Serial.of_string_diag} — parse errors, one diagnostic per bad line
      (with recovery), plus accumulated structural validation;
    + {!Netlist.Builder.validate_all} — every structural error of a
      builder graph ([E_UNDRIVEN], [E_ARITY], [E_UNKNOWN_DOMAIN], ...);
    + {!check} (this module) — properties finalize does not enforce:
      combinational cycles, dangling nets, unclocked domains.

    Run by [Compile.compile_resilient] before [prepare] so malformed
    designs are reported wholesale rather than dying mid-pipeline. *)

val diag_of_validation_error :
  Netlist.validation_error -> Msched_diag.Diag.t
(** Stable mapping from finalize-time validation errors to diagnostic
    codes (e.g. [Undriven_net] → [E_UNDRIVEN]). *)

val xdomain_fanin_limit : int
(** Largest number of distinct clock domains that may sample (directly or
    through combinational logic) a single net before {!check} warns with
    [E_XDOMAIN_FANIN].  Currently 4: each sampling domain costs one MTS
    transport per crossing plus equal-delay fork padding. *)

val check : Netlist.t -> Msched_diag.Diag.t list
(** Lint a frozen (already structurally valid) netlist.  Combinational
    cycles are errors; dangling nets, clockless [Dom_clock] cells,
    unused domains and cross-domain fanin beyond
    {!xdomain_fanin_limit} are warnings.  Returns diagnostics in
    deterministic discovery order — never raises. *)

val errors : Msched_diag.Diag.t list -> Msched_diag.Diag.t list
val has_errors : Msched_diag.Diag.t list -> bool
