(** Plain-text netlist serialization.

    A simple line-oriented format, stable under round-trips:

    {v
    design counter
    domain clk0
    net 0 n0
    net 1 q
    input c0 0 domain 0
    gate not c1 1 0
    ff c2 0 1 dom 0
    output c3 1
    v}

    Lines: [design <name>], [domain <name>], [net <id> <name>],
    [input <name> <out> [domain <d>]], [clocksource <d> <out>],
    [gate <kind> <name> <out> <in>...],
    [latch <name> <out> <data> (dom <d> | net <n>) (high|low)],
    [ff <name> <out> <data> (dom <d> | net <n>)],
    [ram <name> <out> <addr_bits> <we> <wdata> <waddr...> <raddr...>
         (dom <d> | net <n>)],
    [output <name> <in>].  [#] starts a comment. *)

val to_string : Netlist.t -> string
val output : Format.formatter -> Netlist.t -> unit

val gate_name : Cell.gate -> string
val gate_of_name : string -> Cell.gate option

val canonical : string -> (string, string) result
(** Parse and re-emit: normalizes whitespace, comments, blank lines and
    file-local net numbering while preserving the semantic identity of the
    design (internal id order).  Emitted text is a fixpoint:
    [canonical (canonical s) = canonical s], byte for byte — the property
    that makes it safe to use as a cache-key preimage. *)

val of_string : string -> (Netlist.t, string) result
(** Parse and validate, stopping at the first problem. The error carries a
    line number and reason. *)

val of_string_diag :
  string -> (Netlist.t, Msched_diag.Diag.t list) result
(** Lint-grade parse: collects {e all} problems instead of stopping at the
    first.  Bad lines each yield an [E_PARSE] (or [E_MALFORMED_NET] /
    builder-validation) diagnostic and are skipped; if every line parses,
    structural validation runs accumulating ([E_UNDRIVEN], [E_ARITY], ...).
    Never raises; [Error] lists are non-empty and in discovery order. *)

val of_string_exn : string -> Netlist.t
(** @raise Failure on a parse error. *)
