type t = {
  num_cells : int;
  num_nets : int;
  num_gates : int;
  num_latches : int;
  num_flip_flops : int;
  num_rams : int;
  num_inputs : int;
  num_outputs : int;
  num_domains : int;
  seq_per_domain : int array;
  max_fanout : int;
  avg_fanout : float;
}

let compute nl =
  let gates = ref 0
  and latches = ref 0
  and ffs = ref 0
  and rams = ref 0
  and inputs = ref 0
  and outputs = ref 0 in
  let seq_per_domain = Array.make (Netlist.num_domains nl) 0 in
  Netlist.iter_cells nl (fun c ->
      (match c.Cell.kind with
      | Cell.Gate _ -> incr gates
      | Cell.Latch _ -> incr latches
      | Cell.Flip_flop -> incr ffs
      | Cell.Ram _ -> incr rams
      | Cell.Input _ -> incr inputs
      | Cell.Clock_source _ -> ()
      | Cell.Output -> incr outputs);
      match c.Cell.trigger with
      | Some (Cell.Dom_clock d) ->
          let i = Ids.Dom.to_int d in
          seq_per_domain.(i) <- seq_per_domain.(i) + 1
      | Some (Cell.Net_trigger _) | None -> ());
  let max_fanout = ref 0 and total_fanout = ref 0 in
  Netlist.iter_nets nl (fun _ ni ->
      let f = Array.length ni.Netlist.fanouts in
      if f > !max_fanout then max_fanout := f;
      total_fanout := !total_fanout + f);
  let nnets = Netlist.num_nets nl in
  {
    num_cells = Netlist.num_cells nl;
    num_nets = nnets;
    num_gates = !gates;
    num_latches = !latches;
    num_flip_flops = !ffs;
    num_rams = !rams;
    num_inputs = !inputs;
    num_outputs = !outputs;
    num_domains = Netlist.num_domains nl;
    seq_per_domain;
    max_fanout = !max_fanout;
    avg_fanout =
      (if nnets = 0 then 0.0 else float_of_int !total_fanout /. float_of_int nnets);
  }

let pp ppf s =
  Format.fprintf ppf
    "cells=%d nets=%d gates=%d latches=%d ffs=%d rams=%d in=%d out=%d \
     domains=%d max_fanout=%d avg_fanout=%.2f"
    s.num_cells s.num_nets s.num_gates s.num_latches s.num_flip_flops
    s.num_rams s.num_inputs s.num_outputs s.num_domains s.max_fanout
    s.avg_fanout
