(** Netlist primitives.

    The primitive set mirrors what an emulation compiler front-end produces
    after technology mapping: simple combinational gates, level-sensitive
    latches, edge-triggered flip-flops, small synchronous-write RAMs and
    primary ports.  All nets are single-bit; multi-bit structures (such as RAM
    address buses) are expressed as groups of nets. *)

type gate =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux  (** [data_inputs = [| sel; a; b |]]; output is [a] when [sel] is 0. *)

val gate_arity : gate -> int option
(** Fixed arity of a gate, or [None] for variadic gates (And/Or/Nand/Nor). *)

val pp_gate : Format.formatter -> gate -> unit

val eval_gate : gate -> bool array -> bool
(** [eval_gate g inputs] evaluates [g] on concrete input values.
    Raises [Invalid_argument] on an arity mismatch. *)

type trigger =
  | Dom_clock of Ids.Dom.t
      (** Directly clocked by a domain's root clock (the common case). *)
  | Net_trigger of Ids.Net.t
      (** Gated or derived clock/gate: the trigger is an ordinary net driven
          by logic.  This is where MTS latches and flip-flops come from. *)

type kind =
  | Gate of gate
  | Latch of { active_high : bool }
      (** Level-sensitive latch: transparent while its trigger is at the
          active level.  [data_inputs = [| d |]]. *)
  | Flip_flop  (** Rising-edge D flip-flop. [data_inputs = [| d |]]. *)
  | Ram of { addr_bits : int }
      (** [2^addr_bits] one-bit words, synchronous write / asynchronous read.
          [data_inputs = [| we; wdata; waddr_0 .. waddr_{a-1};
                            raddr_0 .. raddr_{a-1} |]]. *)
  | Input of { domain : Ids.Dom.t option }
      (** Primary input. [domain] is the clock domain in which the testbench
          changes it ([None] for quasi-static inputs). *)
  | Clock_source of Ids.Dom.t
      (** The root clock waveform of a domain exposed as a net, so that gated
          clocks and MTS gate logic can be built from it. *)
  | Output  (** Primary output. [data_inputs = [| d |]], no output net. *)

type t = {
  id : Ids.Cell.t;
  kind : kind;
  data_inputs : Ids.Net.t array;
  trigger : trigger option;  (** [Some _] iff the cell is sequential. *)
  output : Ids.Net.t option;  (** [None] only for [Output] cells. *)
  name : string;
}

val is_sequential : t -> bool
(** Latches, flip-flops and RAMs. *)

val is_combinational : t -> bool
(** Gates only (sources and sinks excluded). *)

val is_source : t -> bool
(** Inputs and clock sources: cells with an output but no data inputs. *)

val ram_words : addr_bits:int -> int
val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
