(** Graphviz DOT export for netlists.

    Cells become nodes (shaped by kind, colored by trigger domain), nets
    become edges from driver to each consumer.  Useful for eyeballing small
    designs and partition results. *)

val output :
  ?cluster:(Ids.Cell.t -> int option) ->
  Format.formatter ->
  Netlist.t ->
  unit
(** [cluster] assigns cells to DOT subgraph clusters (e.g. partition
    blocks); cells mapped to [None] stay at top level. *)

val to_string : ?cluster:(Ids.Cell.t -> int option) -> Netlist.t -> string
