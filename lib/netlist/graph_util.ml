(* Tarjan's algorithm, iterative in the component bookkeeping but recursive
   in the DFS; block sizes keep recursion depth moderate, and the scheduler
   graphs are shallow. *)
let sccs n succ =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      (succ v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strong v
  done;
  (* A component completes only after every component it points to, so
     prepending leaves sources first. *)
  !comps
