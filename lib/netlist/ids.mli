(** Typed integer identifiers for the netlist and emulation-system domains.

    Every entity (net, cell, clock domain, partition block, FPGA, physical
    wire, route-link) gets its own abstract id type so that indices cannot be
    mixed up across tables.  Ids are dense: they are allocated consecutively
    from 0 by the builders, which makes them usable as array indices via
    {!S.to_int}. *)

module type S = sig
  type t

  val of_int : int -> t
  (** [of_int i] casts a raw index. Raises [Invalid_argument] if [i < 0]. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val pp : Format.formatter -> t -> unit
  (** Prints as [<prefix><index>], e.g. [n42]. *)

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module Make (_ : sig
  val prefix : string
end) : S

module Net : S
(** Single-bit signal nets. *)

module Cell : S
(** Netlist primitives (gates, latches, flip-flops, RAMs, ports). *)

module Dom : S
(** Clock domains. *)

module Block : S
(** FPGA-sized partitions produced by the partitioner. *)

module Fpga : S
(** Physical FPGAs of the emulation system. *)

module Wire : S
(** Physical inter-FPGA wires. *)

module Link : S
(** Route-links (logical inter-FPGA connections to be scheduled). *)
