(** Aggregate statistics over a netlist, used by reports and Table 1. *)

type t = {
  num_cells : int;
  num_nets : int;
  num_gates : int;
  num_latches : int;
  num_flip_flops : int;
  num_rams : int;
  num_inputs : int;
  num_outputs : int;
  num_domains : int;
  seq_per_domain : int array;
      (** Sequential cells directly clocked by each domain's root clock,
          indexed by [Ids.Dom.to_int]. Net-triggered cells are not counted
          here. *)
  max_fanout : int;
  avg_fanout : float;
}

val compute : Netlist.t -> t
val pp : Format.formatter -> t -> unit
