open Msched_netlist

type xing = {
  x_crossing : Ids.Net.t list;
  x_inputs : Ids.Net.t list array;  (* by block index *)
  x_outputs : Ids.Net.t list array;
}

type t = {
  netlist : Netlist.t;
  block_of_cell : int array;  (* by cell index *)
  cells_of_block : Ids.Cell.t list array;
  mutable xing : xing option;  (* lazily computed crossing index *)
}

let netlist t = t.netlist
let num_blocks t = Array.length t.cells_of_block
let blocks t = List.init (num_blocks t) Ids.Block.of_int
let block_of_cell t c = Ids.Block.of_int t.block_of_cell.(Ids.Cell.to_int c)
let cells_of_block t b = t.cells_of_block.(Ids.Block.to_int b)

let weight_of_block t b =
  Capacity.block_weight t.netlist (cells_of_block t b)

let is_global_term nl (tm : Netlist.term) =
  match tm.Netlist.term_pin with
  | Netlist.Data_pin _ -> false
  | Netlist.Trigger_pin -> (
      let c = Netlist.cell nl tm.Netlist.term_cell in
      match c.Cell.trigger with
      | Some (Cell.Dom_clock _) -> true
      | Some (Cell.Net_trigger _) | None -> false)

(* Neighbor cells of a cell through its nets (for clustering). *)
let neighbor_cells nl (c : Cell.t) =
  let acc = ref [] in
  Array.iter (fun n -> acc := (Netlist.driver nl n).Cell.id :: !acc) c.Cell.data_inputs;
  (match c.Cell.trigger with
  | Some (Cell.Net_trigger n) -> acc := (Netlist.driver nl n).Cell.id :: !acc
  | Some (Cell.Dom_clock _) | None -> ());
  (match c.Cell.output with
  | Some out ->
      Array.iter
        (fun (tm : Netlist.term) ->
          if not (is_global_term nl tm) then
            acc := tm.Netlist.term_cell :: !acc)
        (Netlist.fanouts nl out)
  | None -> ());
  List.rev !acc

let build nl block_of_cell =
  let nblocks = 1 + Array.fold_left max (-1) block_of_cell in
  let cells_of_block = Array.make nblocks [] in
  for i = Array.length block_of_cell - 1 downto 0 do
    let b = block_of_cell.(i) in
    cells_of_block.(b) <- Ids.Cell.of_int i :: cells_of_block.(b)
  done;
  { netlist = nl; block_of_cell; cells_of_block; xing = None }

let of_assignment nl assignment =
  if Array.length assignment <> Netlist.num_cells nl then
    invalid_arg "Partition.of_assignment: wrong length";
  build nl (Array.map Ids.Block.to_int assignment)

(* BFS clustering: grow a block from each unassigned seed until the weight
   budget is reached. *)
let cluster nl ~max_weight ~order =
  let ncells = Netlist.num_cells nl in
  let assignment = Array.make ncells (-1) in
  let next_block = ref 0 in
  let grow seed =
    let b = !next_block in
    incr next_block;
    let weight = ref 0 in
    let queue = Queue.create () in
    Queue.add seed queue;
    let try_take cid =
      let i = Ids.Cell.to_int cid in
      if assignment.(i) = -1 then begin
        let w = Capacity.cell_weight (Netlist.cell nl cid) in
        if w > max_weight then
          invalid_arg "Partition.make: a cell exceeds max_weight";
        if !weight + w <= max_weight then begin
          assignment.(i) <- b;
          weight := !weight + w;
          true
        end
        else false
      end
      else false
    in
    let (_ : bool) = try_take seed in
    while not (Queue.is_empty queue) do
      let cid = Queue.pop queue in
      if assignment.(Ids.Cell.to_int cid) = b then
        List.iter
          (fun n -> if try_take n then Queue.add n queue)
          (neighbor_cells nl (Netlist.cell nl cid))
    done
  in
  Array.iter
    (fun i -> if assignment.(i) = -1 then grow (Ids.Cell.of_int i))
    order;
  assignment

(* One FM-style refinement pass: move boundary cells to the neighbor block
   they are most connected to when it reduces the cut and fits. *)
let refine nl ~max_weight assignment =
  let nblocks = 1 + Array.fold_left max (-1) assignment in
  let weights = Array.make nblocks 0 in
  Array.iteri
    (fun i b ->
      weights.(b) <- weights.(b) + Capacity.cell_weight (Netlist.cell nl (Ids.Cell.of_int i)))
    assignment;
  let moved = ref 0 in
  let gain_of_move cid target =
    let c = Netlist.cell nl cid in
    let here = assignment.(Ids.Cell.to_int cid) in
    let score net =
      (* For the net's other endpoints: +1 if the move makes the net
         internal to [target], -1 if it cuts a net currently internal. *)
      let others = ref [] in
      let d = Netlist.driver nl net in
      if not (Ids.Cell.equal d.Cell.id cid) then
        others := assignment.(Ids.Cell.to_int d.Cell.id) :: !others;
      Array.iter
        (fun (tm : Netlist.term) ->
          if
            (not (Ids.Cell.equal tm.Netlist.term_cell cid))
            && not (is_global_term nl tm)
          then others := assignment.(Ids.Cell.to_int tm.Netlist.term_cell) :: !others)
        (Netlist.fanouts nl net);
      match !others with
      | [] -> 0
      | l ->
          let all_in b = List.for_all (Int.equal b) l in
          if all_in target then 1 else if all_in here then -1 else 0
    in
    let nets = ref [] in
    Array.iter (fun n -> nets := n :: !nets) c.Cell.data_inputs;
    (match c.Cell.trigger with
    | Some (Cell.Net_trigger n) -> nets := n :: !nets
    | Some (Cell.Dom_clock _) | None -> ());
    (match c.Cell.output with Some o -> nets := o :: !nets | None -> ());
    List.fold_left (fun acc n -> acc + score n) 0 !nets
  in
  for i = 0 to Array.length assignment - 1 do
    let cid = Ids.Cell.of_int i in
    let c = Netlist.cell nl cid in
    let here = assignment.(i) in
    let candidates =
      List.sort_uniq Int.compare
        (List.filter_map
           (fun n ->
             let b = assignment.(Ids.Cell.to_int n) in
             if b <> here then Some b else None)
           (neighbor_cells nl c))
    in
    let w = Capacity.cell_weight c in
    let best =
      List.fold_left
        (fun best target ->
          if weights.(target) + w > max_weight then best
          else
            let g = gain_of_move cid target in
            match best with
            | Some (_, bg) when bg >= g -> best
            | _ when g > 0 -> Some (target, g)
            | _ -> best)
        None candidates
    in
    match best with
    | Some (target, _) ->
        assignment.(i) <- target;
        weights.(here) <- weights.(here) - w;
        weights.(target) <- weights.(target) + w;
        incr moved
    | None -> ()
  done;
  !moved

(* Greedy merge of under-filled blocks: repeatedly fold each small block
   into the block it is most connected to that still has room (falling back
   to any block with room), until no merge fits.  BFS clustering leaves a
   tail of fragment blocks behind; this pass packs them. *)
let merge_small nl ~max_weight assignment =
  let weight_of_cell i = Capacity.cell_weight (Netlist.cell nl (Ids.Cell.of_int i)) in
  let nblocks () = 1 + Array.fold_left max (-1) assignment in
  let progress = ref true in
  while !progress do
    progress := false;
    let n = nblocks () in
    let weights = Array.make n 0 in
    let cell_counts = Array.make n 0 in
    Array.iteri
      (fun i b ->
        weights.(b) <- weights.(b) + weight_of_cell i;
        cell_counts.(b) <- cell_counts.(b) + 1)
      assignment;
    (* Inter-block connectivity from net endpoints. *)
    let conn = Hashtbl.create 256 in
    let bump a b =
      if a <> b then begin
        let key = (min a b, max a b) in
        Hashtbl.replace conn key
          (1 + Option.value ~default:0 (Hashtbl.find_opt conn key))
      end
    in
    Netlist.iter_nets nl (fun n ni ->
        ignore n;
        let src = assignment.(Ids.Cell.to_int ni.Netlist.driver) in
        Array.iter
          (fun (tm : Netlist.term) ->
            if not (is_global_term nl tm) then
              bump src assignment.(Ids.Cell.to_int tm.Netlist.term_cell))
          ni.Netlist.fanouts);
    let neighbors = Array.make n [] in
    Hashtbl.iter
      (fun (a, b) w ->
        neighbors.(a) <- (b, w) :: neighbors.(a);
        neighbors.(b) <- (a, w) :: neighbors.(b))
      conn;
    let order = List.init n Fun.id in
    let order =
      List.sort (fun a b -> compare (weights.(a), a) (weights.(b), b)) order
    in
    let merged_into = Array.init n Fun.id in
    let rec root b = if merged_into.(b) = b then b else root merged_into.(b) in
    List.iter
      (fun s ->
        (* Ids with no cells are holes left by earlier rounds, not blocks. *)
        if cell_counts.(s) > 0 && merged_into.(s) = s && weights.(s) * 2 <= max_weight
        then begin
          let candidates =
            List.sort (fun (_, w1) (_, w2) -> compare w2 w1) neighbors.(s)
          in
          let try_merge t =
            let t = root t in
            if t <> s && weights.(t) + weights.(s) <= max_weight then begin
              merged_into.(s) <- t;
              weights.(t) <- weights.(t) + weights.(s);
              weights.(s) <- 0;
              progress := true;
              true
            end
            else false
          in
          let merged = List.exists (fun (t, _) -> try_merge t) candidates in
          if not merged then begin
            (* fall back to any block with room *)
            let rec scan t =
              if t >= n then ()
              else if
                cell_counts.(t) > 0 && t <> s && merged_into.(t) = t
                && try_merge t
              then ()
              else scan (t + 1)
            in
            scan 0
          end
        end)
      order;
    if !progress then
      Array.iteri (fun i b -> assignment.(i) <- root b) assignment
  done

(* Empty blocks can appear after refinement; renumber densely. *)
let compact assignment =
  let nblocks = 1 + Array.fold_left max (-1) assignment in
  let used = Array.make nblocks false in
  Array.iter (fun b -> used.(b) <- true) assignment;
  let remap = Array.make nblocks (-1) in
  let next = ref 0 in
  for b = 0 to nblocks - 1 do
    if used.(b) then begin
      remap.(b) <- !next;
      incr next
    end
  done;
  Array.map (fun b -> remap.(b)) assignment

let make ?(obs = Msched_obs.Sink.null) nl ~max_weight ?(seed = 1) () =
  if max_weight <= 0 then invalid_arg "Partition.make: max_weight";
  let ncells = Netlist.num_cells nl in
  let order = Array.init ncells Fun.id in
  (* Deterministic shuffle of seed order. *)
  let rng = Random.State.make [| seed; ncells |] in
  for i = ncells - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let assignment = cluster nl ~max_weight ~order in
  merge_small nl ~max_weight assignment;
  let assignment = compact assignment in
  let rec loop pass =
    if pass < 3 then
      let moved = refine nl ~max_weight assignment in
      if moved > 0 then loop (pass + 1)
  in
  loop 0;
  let t = build nl (compact assignment) in
  if Msched_obs.Sink.enabled obs then begin
    let module Sink = Msched_obs.Sink in
    Sink.add obs "partition.blocks" (num_blocks t);
    List.iter
      (fun b -> Sink.observe obs "partition.block_weight" (weight_of_block t b))
      (blocks t)
  end;
  t

let foreign_consumers t net =
  let nl = t.netlist in
  let dblock = t.block_of_cell.(Ids.Cell.to_int (Netlist.driver nl net).Cell.id) in
  let by_block = Hashtbl.create 4 in
  Array.iter
    (fun (tm : Netlist.term) ->
      if not (is_global_term nl tm) then begin
        let b = t.block_of_cell.(Ids.Cell.to_int tm.Netlist.term_cell) in
        if b <> dblock then
          Hashtbl.replace by_block b
            (tm :: Option.value ~default:[] (Hashtbl.find_opt by_block b))
      end)
    (Netlist.fanouts nl net);
  Hashtbl.fold
    (fun b terms acc -> (Ids.Block.of_int b, List.rev terms) :: acc)
    by_block []
  |> List.sort (fun (a, _) (b, _) -> Ids.Block.compare a b)

let xing_of t =
  match t.xing with
  | Some x -> x
  | None ->
      let nblocks = num_blocks t in
      let crossing = ref [] in
      let inputs = Array.make nblocks [] in
      let outputs = Array.make nblocks [] in
      Netlist.iter_nets t.netlist (fun n _ ->
          match foreign_consumers t n with
          | [] -> ()
          | foreign ->
              crossing := n :: !crossing;
              let src =
                t.block_of_cell.(Ids.Cell.to_int (Netlist.driver t.netlist n).Cell.id)
              in
              outputs.(src) <- n :: outputs.(src);
              List.iter
                (fun (b, _) ->
                  let bi = Ids.Block.to_int b in
                  inputs.(bi) <- n :: inputs.(bi))
                foreign);
      let x =
        {
          x_crossing = List.rev !crossing;
          x_inputs = Array.map List.rev inputs;
          x_outputs = Array.map List.rev outputs;
        }
      in
      t.xing <- Some x;
      x

let crossing_nets t = (xing_of t).x_crossing
let input_nets t b = (xing_of t).x_inputs.(Ids.Block.to_int b)
let output_nets t b = (xing_of t).x_outputs.(Ids.Block.to_int b)

let cut_size t =
  List.fold_left
    (fun acc n -> acc + List.length (foreign_consumers t n))
    0 (crossing_nets t)

let naive_pin_count t b =
  let nl = t.netlist in
  let outgoing = ref 0 and incoming = Ids.Net.Tbl.create 32 in
  List.iter
    (fun n ->
      let dblock = block_of_cell t (Netlist.driver nl n).Cell.id in
      let foreign = foreign_consumers t n in
      if Ids.Block.equal dblock b && foreign <> [] then incr outgoing;
      if List.exists (fun (fb, _) -> Ids.Block.equal fb b) foreign then
        Ids.Net.Tbl.replace incoming n ())
    (crossing_nets t);
  !outgoing + Ids.Net.Tbl.length incoming

let validate t =
  let ncells = Netlist.num_cells t.netlist in
  if Array.length t.block_of_cell <> ncells then Error "wrong assignment length"
  else
    let nblocks = num_blocks t in
    let bad =
      Array.exists (fun b -> b < 0 || b >= nblocks) t.block_of_cell
    in
    if bad then Error "cell with out-of-range block"
    else if Array.exists (fun l -> l = []) t.cells_of_block then
      Error "empty block"
    else Ok ()

let pp_summary ppf t =
  let max_w =
    List.fold_left (fun m b -> max m (weight_of_block t b)) 0 (blocks t)
  in
  Format.fprintf ppf "%d blocks, cut=%d, max block weight=%d" (num_blocks t)
    (cut_size t) max_w
