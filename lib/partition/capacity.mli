(** FPGA capacity model for partitioning.

    Weights approximate CLB usage: gates and state elements cost one unit,
    RAMs cost proportionally to their word count, ports cost nothing (they
    consume pins, which the pin model accounts for separately). *)

open Msched_netlist

val cell_weight : Cell.t -> int
val total_weight : Netlist.t -> int
val block_weight : Netlist.t -> Ids.Cell.t list -> int
