(** Partitioning a netlist into FPGA-sized blocks.

    One block maps to one FPGA (the VirtuaLogic flow).  The partitioner is a
    seeded BFS clustering pass followed by Fiduccia–Mattheyses-style boundary
    refinement; it is deterministic for a fixed seed.

    A net {e crosses} the partition when some consumer terminal lives in a
    different block than the net's driver.  Root-clock trigger connections
    ([Dom_clock]) are excluded: emulators distribute root clocks on dedicated
    global lines, so they consume neither pins nor schedule slots.  Gated or
    derived clock nets ([Net_trigger]) are ordinary data crossings. *)

open Msched_netlist

type t

val make :
  ?obs:Msched_obs.Sink.t ->
  Netlist.t ->
  max_weight:int ->
  ?seed:int ->
  unit ->
  t
(** Cluster into blocks of weight at most [max_weight].
    @raise Invalid_argument if some single cell outweighs [max_weight]. *)

val of_assignment : Netlist.t -> Ids.Block.t array -> t
(** Adopt an explicit cell-to-block map (indexed by [Ids.Cell.to_int]);
    block ids must be dense from 0. Used by tests and tiny examples. *)

val netlist : t -> Netlist.t
val num_blocks : t -> int
val blocks : t -> Ids.Block.t list
val block_of_cell : t -> Ids.Cell.t -> Ids.Block.t
val cells_of_block : t -> Ids.Block.t -> Ids.Cell.t list
val weight_of_block : t -> Ids.Block.t -> int

val is_global_term : Netlist.t -> Netlist.term -> bool
(** True for [Dom_clock] trigger terminals (globally distributed). *)

val crossing_nets : t -> Ids.Net.t list
(** Nets with at least one non-global consumer outside the driver's block. *)

val input_nets : t -> Ids.Block.t -> Ids.Net.t list
(** Crossing nets entering the block (consumed there, driven elsewhere). *)

val output_nets : t -> Ids.Block.t -> Ids.Net.t list
(** Crossing nets leaving the block (driven there, consumed elsewhere). *)

val foreign_consumers : t -> Ids.Net.t -> (Ids.Block.t * Netlist.term list) list
(** Non-global consumer terminals of a net grouped by foreign block
    (excluding the driver's own block). *)

val cut_size : t -> int
(** Number of (crossing net, foreign block) pairs — the route-link count
    before MTS decomposition. *)

val naive_pin_count : t -> Ids.Block.t -> int
(** Pins this block would need if every crossing net used a dedicated pin:
    distinct nets leaving the block plus distinct nets entering it. This is
    the all-hard-wired baseline of the Figure 8 discussion. *)

val validate : t -> (unit, string) result
(** Every cell assigned exactly once, dense block ids, no empty block. *)

val pp_summary : Format.formatter -> t -> unit
