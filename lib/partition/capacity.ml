open Msched_netlist

let cell_weight (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Gate _ | Cell.Latch _ | Cell.Flip_flop -> 1
  | Cell.Ram { addr_bits } -> max 2 (Cell.ram_words ~addr_bits / 4)
  | Cell.Input _ | Cell.Clock_source _ | Cell.Output -> 0

let total_weight nl =
  Netlist.fold_cells nl ~init:0 ~f:(fun acc c -> acc + cell_weight c)

let block_weight nl cells =
  List.fold_left (fun acc c -> acc + cell_weight (Netlist.cell nl c)) 0 cells
