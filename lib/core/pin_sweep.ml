open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module System = Msched_arch.System
module Topology = Msched_arch.Topology
module Schedule = Msched_route.Schedule
module Tiers = Msched_route.Tiers

type point = {
  max_block_weight : int;
  fpga_count : int;
  pins_hard : int;
  pins_virtual : int option;
  base_length : int;
}

let default_weights = [ 256; 128; 64; 32 ]
let default_candidates = [ 160; 96; 64; 48; 32; 24; 16 ]
let generous_pins = 2048

let sweep ?(options = Compile.default_options) ?(weights = default_weights)
    ?(pin_candidates = default_candidates) ?(slack = 1.5) nl =
  List.filter_map
    (fun w ->
      let options =
        {
          options with
          Compile.max_block_weight = w;
          Compile.pins_per_fpga = generous_pins;
        }
      in
      (* Only a capacity infeasibility of this weight point is skippable;
         anything else (unsupported construct, internal error) is a real
         failure of the sweep's input and must propagate. *)
      match Compile.prepare ~options nl with
      | exception Compile.Compile_error d
        when d.Msched_diag.Diag.code = Msched_diag.Diag.E_CAPACITY ->
          None
      | prepared ->
          let part = prepared.Compile.partition in
          let pins_hard =
            List.fold_left
              (fun acc b -> max acc (Partition.naive_pin_count part b))
              0 (Partition.blocks part)
          in
          let base = Compile.route prepared Tiers.default_options in
          let base_length = base.Schedule.length in
          let budget = int_of_float (ceil (slack *. float_of_int base_length)) in
          let topology = System.topology prepared.Compile.system in
          let assignment =
            Array.init (Partition.num_blocks part) (fun b ->
                Placement.fpga_of_block prepared.Compile.placement
                  (Ids.Block.of_int b))
          in
          (* Try candidate pin budgets from small to large; the first that
             compiles within the length budget is the virtual pin demand. *)
          let feasible pins =
            match System.make ~vclock_hz:(System.vclock_hz prepared.Compile.system)
                    topology ~pins_per_fpga:pins
            with
            | exception Invalid_argument _ -> false
            | sys -> (
                let placement = Placement.of_assignment part sys assignment in
                match
                  Msched_route.Tiers.schedule placement prepared.Compile.analysis
                    ~analysis:prepared.Compile.latch_analysis
                    ~options:Tiers.default_options ()
                with
                | sched -> sched.Schedule.length <= budget
                | exception Tiers.Unroutable _ -> false)
          in
          let pins_virtual =
            List.find_opt feasible (List.sort compare pin_candidates)
          in
          ignore (Topology.num_fpgas topology);
          Some
            {
              max_block_weight = w;
              fpga_count = Partition.num_blocks part;
              pins_hard;
              pins_virtual;
              base_length;
            })
    weights

let min_fpgas_under_pin_limit points ~pin_limit ~hard =
  List.fold_left
    (fun acc p ->
      let fits =
        if hard then p.pins_hard <= pin_limit
        else match p.pins_virtual with Some v -> v <= pin_limit | None -> false
      in
      if fits then
        match acc with
        | Some best when best <= p.fpga_count -> acc
        | Some _ | None -> Some p.fpga_count
      else acc)
    None points

let pp_points ppf points =
  Format.fprintf ppf "%-12s %-10s %-12s %-14s %-10s@\n" "max_weight" "fpgas"
    "pins(hard)" "pins(virtual)" "base CP";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-12d %-10d %-12d %-14s %-10d@\n" p.max_block_weight
        p.fpga_count p.pins_hard
        (match p.pins_virtual with
        | Some v -> string_of_int v
        | None -> "infeasible")
        p.base_length)
    points
