module Partition = Msched_partition.Partition
module Classify = Msched_mts.Classify
module Schedule = Msched_route.Schedule
module Tiers = Msched_route.Tiers
module Netlist = Msched_netlist.Netlist

type t = {
  label : string;
  num_modules : int;
  num_mts_modules : int;
  num_domains : int;
  num_mts_paths : int;
  num_mts_fpgas : int;
  num_non_mts_fpgas : int;
  domain_names : string list;
  critical_path_hard : int;
  critical_path_virtual : int;
  speed_hard_hz : float;
  speed_virtual_hz : float;
  total_fpgas : int;
  holdoff_slots : int;
}

let of_design ?(options = Compile.default_options) (d : Msched_gen.Design_gen.design) =
  let prepared = Compile.prepare ~options d.Msched_gen.Design_gen.netlist in
  let hard = Compile.route ~obs:options.Compile.obs prepared Tiers.hard_options in
  let virt =
    Compile.route ~obs:options.Compile.obs prepared
      { options.Compile.route with Tiers.mode = Tiers.Mts_virtual }
  in
  let cls = prepared.Compile.classification in
  let nl = prepared.Compile.netlist in
  {
    label = d.Msched_gen.Design_gen.design_label;
    num_modules = d.Msched_gen.Design_gen.modules;
    num_mts_modules = d.Msched_gen.Design_gen.mts_modules;
    num_domains = Netlist.num_domains nl;
    num_mts_paths = Classify.num_mts_paths cls;
    num_mts_fpgas = Classify.num_mts_blocks cls;
    num_non_mts_fpgas = Classify.num_non_mts_blocks prepared.Compile.partition cls;
    domain_names =
      List.map (Netlist.domain_name nl) (Netlist.domains nl);
    critical_path_hard = hard.Schedule.length;
    critical_path_virtual = virt.Schedule.length;
    speed_hard_hz = Schedule.est_speed_hz hard;
    speed_virtual_hz = Schedule.est_speed_hz virt;
    total_fpgas = Partition.num_blocks prepared.Compile.partition;
    holdoff_slots = Schedule.total_holdoff virt;
  }

let pp_row ppf r =
  Format.fprintf ppf
    "%s: modules=%d mts_modules=%d domains=%d mts_paths=%d mts_fpgas=%d \
     non_mts_fpgas=%d cp_hard=%d cp_virtual=%d speed_hard=%.1fkHz \
     speed_virtual=%.1fkHz"
    r.label r.num_modules r.num_mts_modules r.num_domains r.num_mts_paths
    r.num_mts_fpgas r.num_non_mts_fpgas r.critical_path_hard
    r.critical_path_virtual (r.speed_hard_hz /. 1e3)
    (r.speed_virtual_hz /. 1e3)

let pp_table ppf rows =
  let line fmt = Format.fprintf ppf fmt in
  let col f = List.iter (fun r -> line " | %14s" (f r)) rows in
  let row label f =
    line "%-38s" label;
    col f;
    line "@\n"
  in
  line "%-38s" "Testcase";
  col (fun r -> r.label);
  line "@\n";
  row "1. Num. Total Modules" (fun r -> string_of_int r.num_modules);
  row "2. Num. MTS Modules" (fun r -> string_of_int r.num_mts_modules);
  row "3. Num. Clock Domains" (fun r -> string_of_int r.num_domains);
  row "4. Num. MTS Paths" (fun r -> string_of_int r.num_mts_paths);
  row "5. Num. MTS FPGAs" (fun r -> string_of_int r.num_mts_fpgas);
  row "6. Clock Domains" (fun r -> String.concat " " r.domain_names);
  row "7. Num. Non MTS FPGAs" (fun r -> string_of_int r.num_non_mts_fpgas);
  row "8. Critical Path (VClocks) MTS HardRouted" (fun r ->
      string_of_int r.critical_path_hard);
  row "9. Critical Path (VClocks) MTS VirtualRouted" (fun r ->
      string_of_int r.critical_path_virtual);
  row "10. Est. Max Speed MTS HardRouted" (fun r ->
      Printf.sprintf "%.0f kHz" (r.speed_hard_hz /. 1e3));
  row "11. Est. Max Speed MTS VirtualRouted" (fun r ->
      Printf.sprintf "%.0f kHz" (r.speed_virtual_hz /. 1e3))
