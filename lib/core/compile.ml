open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module System = Msched_arch.System
module Topology = Msched_arch.Topology
module Domain_analysis = Msched_mts.Domain_analysis
module Latch_analysis = Msched_mts.Latch_analysis
module Transform = Msched_mts.Transform
module Classify = Msched_mts.Classify
module Tiers = Msched_route.Tiers
module Reroute = Msched_route.Reroute
module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag

type options = {
  max_block_weight : int;
  pins_per_fpga : int;
  topology_kind : Topology.kind;
  vclock_hz : float;
  partition_seed : int;
  place_seed : int;
  place_effort : int;
  route : Tiers.options;
  verify : bool;
  obs : Sink.t;
  compile_jobs : int;
      (* Intra-compile parallel width for the TIERS reverse pass and the
         placement annealer; results are bit-identical for every value.
         1 (the default) never spawns a domain. *)
}

let default_options =
  {
    max_block_weight = 64;
    pins_per_fpga = System.xilinx_4062_pins;
    topology_kind = Topology.Mesh;
    vclock_hz = System.default_vclock_hz;
    partition_seed = 1;
    place_seed = 7;
    place_effort = 4;
    route = Tiers.default_options;
    verify = true;
    obs = Sink.null;
    compile_jobs = 1;
  }

type prepared = {
  original : Netlist.t;
  netlist : Netlist.t;
  rewrites : Transform.rewrite list;
  analysis : Domain_analysis.t;
  partition : Partition.t;
  system : System.t;
  placement : Placement.t;
  latch_analysis : Latch_analysis.t array;
  classification : Classify.t;
}

type compiled = { prepared : prepared; schedule : Msched_route.Schedule.t }

exception Compile_error of Diag.t

let compile_error d = raise (Compile_error d)

let prepare ?(options = default_options) original =
  let obs = options.obs in
  Sink.span obs
    ~args:
      [
        ("cells", string_of_int (Netlist.num_cells original));
        ("nets", string_of_int (Netlist.num_nets original));
        ("domains", string_of_int (Netlist.num_domains original));
      ]
    "prepare"
  @@ fun () ->
  let analysis0 =
    Sink.span obs "domain-analysis" @@ fun () ->
    Domain_analysis.compute ~obs original
  in
  (match Transform.check_supported original analysis0 with
  | Ok () -> ()
  | Error msg -> compile_error (Diag.error Diag.E_UNSUPPORTED "%s" msg));
  let rewritten =
    Sink.span obs "mts-transform" @@ fun () ->
    Transform.master_slave ~obs original analysis0
  in
  let netlist = rewritten.Transform.netlist in
  let analysis =
    Sink.span obs "domain-analysis" @@ fun () ->
    Domain_analysis.compute ~obs netlist
  in
  let partition =
    Sink.span obs "partition" @@ fun () ->
    (* Partition capacity failures (a single cell heavier than the block
       budget) are an infeasibility of the requested options, not an
       internal error: E_CAPACITY, so sweeps and the resilient driver can
       tell them apart from genuine bugs. *)
    match
      Partition.make ~obs netlist ~max_weight:options.max_block_weight
        ~seed:options.partition_seed ()
    with
    | p -> p
    | exception Invalid_argument msg ->
        compile_error
          (Diag.error Diag.E_CAPACITY
             "partitioning with max_block_weight=%d failed: %s"
             options.max_block_weight msg)
  in
  (match Partition.validate partition with
  | Ok () -> ()
  | Error msg ->
      compile_error (Diag.error Diag.E_INTERNAL "invalid partition: %s" msg));
  let topology =
    Topology.make_for_count options.topology_kind (Partition.num_blocks partition)
  in
  let system =
    System.make ~vclock_hz:options.vclock_hz topology
      ~pins_per_fpga:options.pins_per_fpga
  in
  let placement =
    Sink.span obs "placement" @@ fun () ->
    Placement.place partition system ~seed:options.place_seed
      ~effort:options.place_effort ~obs ~jobs:options.compile_jobs ()
  in
  let latch_analysis =
    Sink.span obs "latch-analysis" @@ fun () ->
    Latch_analysis.analyze ~obs partition
  in
  let classification =
    Sink.span obs "classification" @@ fun () ->
    Classify.compute ~obs partition analysis
  in
  {
    original;
    netlist;
    rewrites = rewritten.Transform.rewrites;
    analysis;
    partition;
    system;
    placement;
    latch_analysis;
    classification;
  }

let route ?(obs = Sink.null) ?reroute ?jobs prepared route_options =
  Tiers.schedule prepared.placement prepared.analysis
    ~analysis:prepared.latch_analysis ~options:route_options ~obs ?reroute
    ?jobs ()

let route_forward ?(obs = Sink.null) ?reroute prepared route_options =
  Msched_route.Forward.schedule prepared.placement prepared.analysis
    ~analysis:prepared.latch_analysis ~options:route_options ~obs ?reroute ()

let verify_schedule ?(obs = Sink.null) prepared sched =
  Msched_check.Verify.verify ~obs prepared.placement prepared.analysis sched

let verify_or_fail ~obs prepared schedule =
  let report = verify_schedule ~obs prepared schedule in
  if not (Msched_check.Verify.is_clean report) then begin
    let hold_cells = Msched_check.Verify.hold_safety_cells report in
    let code =
      if Ids.Cell.Set.is_empty hold_cells then Diag.E_VERIFY
      else Diag.E_HOLD_VIOLATION
    in
    let cell =
      Option.map Ids.Cell.to_int (Ids.Cell.Set.min_elt_opt hold_cells)
    in
    compile_error
      (Diag.error code ?cell "schedule fails static verification:@\n%a"
         Msched_check.Verify.pp_report report)
  end

let compile_prepared ?(options = default_options) ?reroute prepared =
  let obs = options.obs in
  let schedule =
    route ~obs ?reroute ~jobs:options.compile_jobs prepared options.route
  in
  if options.verify then verify_or_fail ~obs prepared schedule;
  { prepared; schedule }

(* Two multiplicative parallelism knobs (process-level workers × intra-
   compile domains) oversubscribe quietly, so the product is validated up
   front.  Only the combination is rejected: either knob alone may exceed
   the core count (that is a latency/throughput tradeoff the user may
   want), and the default for each knob is safe with any value of the
   other. *)
let check_jobs_budget ?(recommended = Domain.recommended_domain_count ())
    ~jobs ~compile_jobs () =
  if jobs > 1 && compile_jobs > 1 && jobs * compile_jobs > recommended then
    Error
      (Diag.error Diag.E_PARSE
         "%d workers x %d compile jobs = %d domains oversubscribes this \
          machine (%d cores); lower --jobs or --compile-jobs so their \
          product fits"
         jobs compile_jobs (jobs * compile_jobs) recommended)
  else Ok ()

let compile ?(options = default_options) ?reroute nl =
  let obs = options.obs in
  Sink.span obs "compile" @@ fun () ->
  let prepared = prepare ~options nl in
  compile_prepared ~options ?reroute prepared

(* ------------------------------------------------------------------ *)
(* Resilient driver: lint first, then a bounded retry/escalation ladder
   instead of the batch tool's fail-fast crash.  See docs/ROBUSTNESS.md. *)

type attempt_outcome =
  | Attempt_ok of { length : int; est_speed_hz : float }
  | Attempt_failed of Diag.t

type attempt = {
  attempt_label : string;
  attempt_mode : Tiers.mts_mode;
  attempt_max_extra : int;
  attempt_partition_seed : int;
  attempt_place_seed : int;
  attempt_expansions : int;
  attempt_reused : int;
  attempt_ripped : int;
  attempt_outcome : attempt_outcome;
}

type degradation = {
  requested_mode : Tiers.mts_mode;
  achieved_mode : Tiers.mts_mode option;
  requested_hz : float;
      (** The virtual-clock rate: the Table-1 hardware ceiling of one
          emulated cycle per virtual clock. *)
  achieved_hz : float option;  (** vclock / frame length of the final schedule. *)
  retries : int;  (** Attempts that failed before the outcome was decided. *)
  fallback_nets : int;
      (** Transports hard-routed on dedicated wires in the final schedule
          beyond what the requested mode implies (per-net fallback residue,
          or every MTS transport after the whole-schedule hard rung). *)
  reused_transports : int;
      (** Transports replayed from the reroute ledger across all attempts. *)
  ripped_transports : int;
      (** Ledger entries invalidated (anchor moved or slots taken) across
          all attempts. *)
  lint_errors : int;
  lint_warnings : int;
}

type resilient = {
  compiled : compiled option;
  attempts : attempt list;
  diagnostics : Diag.t list;
  degradation : degradation;
}

let succeeded r = r.compiled <> None

let degraded r =
  match r.attempts with
  | [] -> false
  | _ -> succeeded r && r.degradation.retries > 0

(* The escalation ladder.  Retry [i] of [n]: first pure slack relaxation
   (the cheapest knob: longer frames instead of failure), then rip-up &
   retry with perturbed partition/placement seeds on top of the relaxed
   slack.  The hard fallback is handled separately by [compile_resilient]:
   first per-net (only the unroutable residue moves to dedicated wires),
   then — as a last resort — the whole-schedule hard baseline (paper
   Table 1 rows 8 vs 9: correct but slower and pin-hungrier). *)
let relax_slack options i =
  min (1 lsl 20)
    (max 1024 ((options.route.Tiers.max_extra_slots + 1) * (1 lsl i)))

let ladder options ~max_retries =
  let base = options.route in
  let baseline = ("baseline", options) in
  let retry i =
    let label =
      if i = 1 then "relax-slack" else Printf.sprintf "reseed-%d" (i - 1)
    in
    let route = { base with Tiers.max_extra_slots = relax_slack options i } in
    let options =
      if i = 1 then { options with route }
      else
        {
          options with
          route;
          partition_seed = options.partition_seed + (7 * (i - 1));
          place_seed = options.place_seed + (13 * (i - 1));
        }
    in
    (label, options)
  in
  baseline :: List.init max_retries (fun i -> retry (i + 1))

let diag_of_exn = function
  | Compile_error d | Tiers.Unroutable d | Msched_route.Forward.Unsupported d
  | Diag.Fail d ->
      d
  | Netlist.Invalid e -> Lint.diag_of_validation_error e
  | Levelize.Combinational_cycle cells ->
      Diag.error Diag.E_COMB_CYCLE
        ?cell:(match cells with c :: _ -> Some (Ids.Cell.to_int c) | [] -> None)
        "combinational cycle through %d cells" (List.length cells)
  | Invalid_argument msg -> Diag.error Diag.E_INTERNAL "invalid argument: %s" msg
  | Failure msg -> Diag.error Diag.E_INTERNAL "failure: %s" msg
  | e -> Diag.error Diag.E_INTERNAL "unexpected exception: %s" (Printexc.to_string e)

let count_hard_transports (s : Msched_route.Schedule.t) =
  List.fold_left
    (fun acc ls ->
      List.fold_left
        (fun acc tr ->
          if tr.Msched_route.Schedule.tr_hard then acc + 1 else acc)
        acc ls.Msched_route.Schedule.ls_transports)
    0 s.Msched_route.Schedule.link_scheds

(* Bound on per-net fallback iterations: each one hard-wires the residue
   of the previous attempt, so a design that keeps producing fresh residue
   is converging toward the whole-schedule hard rung anyway. *)
let max_fallback_iters = 4

let compile_resilient ?(options = default_options) ?(max_retries = 3)
    ?(fallback_hard = false) ?(reuse = true) ?reroute nl =
  let obs = options.obs in
  Sink.span obs "driver" @@ fun () ->
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let lint =
    Sink.span obs "driver.lint" @@ fun () ->
    match Lint.check nl with
    | ds -> ds
    | exception e -> [ diag_of_exn e ]
  in
  List.iter push lint;
  let lint_errors = List.length (Lint.errors lint) in
  let lint_warnings = List.length lint - lint_errors in
  Sink.add obs "driver.lint_errors" lint_errors;
  Sink.add obs "driver.lint_warnings" lint_warnings;
  let degradation0 =
    {
      requested_mode = options.route.Tiers.mode;
      achieved_mode = None;
      requested_hz = options.vclock_hz;
      achieved_hz = None;
      retries = 0;
      fallback_nets = 0;
      reused_transports = 0;
      ripped_transports = 0;
      lint_errors;
      lint_warnings;
    }
  in
  if lint_errors > 0 then
    {
      compiled = None;
      attempts = [];
      diagnostics = List.rev !diags;
      degradation = degradation0;
    }
  else begin
    (* One reroute context for the whole ladder.  [reuse] keeps it warm
       across attempts that share a partition/placement (baseline →
       relax-slack, and the per-net fallback iterations); a seed change
       invalidates the ledger, so reseed rungs start cold.  With
       [reuse = false] every attempt starts cold — the differential-test
       baseline.  An externally supplied [reroute] context (deserialized
       from the warm-route cache, or retained from a previous run of the
       same design) makes even the baseline attempt warm: its ledger
       replays and its congestion history steers from the first search. *)
    let ctx = match reroute with Some c -> c | None -> Reroute.create () in
    (* Forced-hard keys survive context clears via this driver-side list,
       so cold mode reaches the same per-net fallback state as warm. *)
    let forced : Reroute.key list ref = ref [] in
    let last_seeds = ref None in
    (* [prepare] is deterministic in (netlist, options minus route), so
       rungs that only touch the route options share the front-end. *)
    let prepared_cache : (int * int, prepared) Hashtbl.t = Hashtbl.create 4 in
    let attempts = ref [] in
    let record a = attempts := a :: !attempts in
    let run_attempt label opts =
      Sink.incr obs "driver.attempts";
      let seeds = (opts.partition_seed, opts.place_seed) in
      let stale =
        (not reuse)
        || match !last_seeds with Some s -> s <> seeds | None -> false
      in
      if stale then Reroute.clear ctx;
      last_seeds := Some seeds;
      List.iter (Reroute.force_hard ctx) !forced;
      let e0 = Reroute.expansions ctx in
      let ru0 = Reroute.reused ctx in
      let rp0 = Reroute.ripped ctx in
      let outcome =
        Sink.span obs
          ~args:
            [
              ("label", label);
              ("mode", Tiers.mode_name opts.route.Tiers.mode);
            ]
          "driver.attempt"
        @@ fun () ->
        match
          let prepared =
            match Hashtbl.find_opt prepared_cache seeds with
            | Some p -> p
            | None ->
                let p = prepare ~options:opts nl in
                Hashtbl.add prepared_cache seeds p;
                p
          in
          compile_prepared ~options:opts ~reroute:ctx prepared
        with
        | c ->
            Ok
              ( c,
                Attempt_ok
                  {
                    length = c.schedule.Msched_route.Schedule.length;
                    est_speed_hz =
                      Msched_route.Schedule.est_speed_hz c.schedule;
                  } )
        | exception e -> Error (diag_of_exn e)
      in
      record
        {
          attempt_label = label;
          attempt_mode = opts.route.Tiers.mode;
          attempt_max_extra = opts.route.Tiers.max_extra_slots;
          attempt_partition_seed = opts.partition_seed;
          attempt_place_seed = opts.place_seed;
          attempt_expansions = Reroute.expansions ctx - e0;
          attempt_reused = Reroute.reused ctx - ru0;
          attempt_ripped = Reroute.ripped ctx - rp0;
          attempt_outcome =
            (match outcome with Ok (_, ok) -> ok | Error d -> Attempt_failed d);
        };
      outcome
    in
    let rec run = function
      | [] -> None
      | (label, opts) :: rest -> (
          match run_attempt label opts with
          | Ok (c, _) -> Some (c, opts)
          | Error d ->
              push d;
              if rest <> [] then Sink.incr obs "driver.retries";
              run rest)
    in
    let result = run (ladder options ~max_retries) in
    (* Hard fallback, per net first: the residue the last attempt could
       not route moves to dedicated wires; everything else stays on the
       scheduled virtual network and replays warm.  Only when the residue
       cannot be named (the failure was not an unroutable transport) or
       refuses to converge does the whole schedule fall back to hard
       routing. *)
    let result =
      if result <> None || not fallback_hard then result
      else begin
        let relaxed =
          {
            options with
            route =
              {
                options.route with
                Tiers.max_extra_slots = relax_slack options (max_retries + 1);
              };
          }
        in
        let rec per_net i =
          if i > max_fallback_iters then None
          else
            match Reroute.failures ctx with
            | [] -> None
            | fails ->
                List.iter
                  (fun (k, _) ->
                    Reroute.force_hard ctx k;
                    forced := k :: !forced)
                  fails;
                Sink.add obs "driver.fallback_forced" (List.length fails);
                let label =
                  if i = 1 then "fallback-hard"
                  else Printf.sprintf "fallback-hard-%d" i
                in
                (match run_attempt label relaxed with
                | Ok (c, _) -> Some (c, relaxed)
                | Error d ->
                    push d;
                    Sink.incr obs "driver.retries";
                    per_net (i + 1))
        in
        match per_net 1 with
        | Some _ as r -> r
        | None -> (
            (* Whole-schedule hard baseline: a different routing problem,
               so the warm context is meaningless — start cold. *)
            Reroute.clear ctx;
            forced := [];
            let hard_all =
              {
                relaxed with
                route =
                  { relaxed.route with Tiers.mode = Tiers.Mts_hard };
              }
            in
            Sink.incr obs "driver.retries";
            match run_attempt "fallback-hard-all" hard_all with
            | Ok (c, _) -> Some (c, hard_all)
            | Error d ->
                push d;
                None)
      end
    in
    let attempts = List.rev !attempts in
    (* Attempts beyond the baseline; a lone failed baseline is 0 retries. *)
    let retries = max 0 (List.length attempts - 1) in
    let reused_transports = Reroute.reused ctx in
    let ripped_transports = Reroute.ripped ctx in
    Sink.add obs "driver.reused_transports" reused_transports;
    Sink.add obs "driver.ripped_transports" ripped_transports;
    let compiled, degradation =
      match result with
      | None ->
          ( None,
            { degradation0 with retries; reused_transports; ripped_transports }
          )
      | Some (c, opts) ->
          let fallback_nets =
            if
              opts.route.Tiers.mode <> options.route.Tiers.mode
              || Reroute.forced_hard_count ctx > 0
            then count_hard_transports c.schedule
            else 0
          in
          Sink.add obs "driver.fallback_nets" fallback_nets;
          ( Some c,
            {
              degradation0 with
              achieved_mode = Some opts.route.Tiers.mode;
              achieved_hz = Some (Msched_route.Schedule.est_speed_hz c.schedule);
              retries;
              fallback_nets;
              reused_transports;
              ripped_transports;
            } )
    in
    { compiled; attempts; diagnostics = List.rev !diags; degradation }
  end

(* ------------------------------------------------------------------ *)
(* Delta compilation (docs/DELTA.md): compile against a base manifest,
   replaying the base compile's routed schedule for everything the edit
   provably did not touch.  Equivalence rests on the exact-context
   machinery of [Reroute] — every replay is validated by its probe
   transcript, so the result is byte-identical to a cold compile of the
   same design no matter what the diff classification decided. *)

module Manifest = Msched_delta.Manifest
module Delta_diff = Msched_delta.Diff
module Delta_fp = Msched_delta.Fingerprint

(* The canonical rendering of every option that shapes a compile; the
   server cache keys on it and manifests embed it (a mismatch makes the
   manifest's ledger meaningless: different seeds, slack or topology
   re-decide everything). *)
let options_fingerprint (o : options) =
  Printf.sprintf
    "mode=%s;extra=%d;pins=%d;weight=%d;pseed=%d;plseed=%d;effort=%d;vhz=%.6g;topo=%s;verify=%b"
    (Tiers.mode_name o.route.Tiers.mode)
    o.route.Tiers.max_extra_slots o.pins_per_fpga o.max_block_weight
    o.partition_seed o.place_seed o.place_effort o.vclock_hz
    (Format.asprintf "%a" Msched_arch.Topology.pp_kind o.topology_kind)
    o.verify

let manifest_of ~options ~ctx prepared =
  Manifest.build
    ~options_fp:(options_fingerprint options)
    ~design_fp:(Delta_fp.design prepared.original)
    prepared.placement ~analysis:prepared.analysis ~ctx

type base = {
  base_compiled : compiled;
  base_manifest : Manifest.t;
  base_expansions : int;
}

let compile_base ?(options = default_options) nl =
  let obs = options.obs in
  Sink.span obs "compile" @@ fun () ->
  let prepared = prepare ~options nl in
  let ctx = Reroute.create ~exact:true () in
  let compiled = compile_prepared ~options ~reroute:ctx prepared in
  {
    base_compiled = compiled;
    base_manifest = manifest_of ~options ~ctx prepared;
    base_expansions = Reroute.expansions ctx;
  }

type delta_result = {
  delta_compiled : compiled;
  delta_manifest : Manifest.t;
  delta_diff : Delta_diff.t option;  (* [None] when the compile fell cold *)
  delta_seeded : int;
  delta_dropped : int;
  delta_reused : int;
  delta_ripped : int;
  delta_fresh : int;
  delta_expansions : int;
}

let delta_reuse_fraction d =
  let total = d.delta_reused + d.delta_ripped + d.delta_fresh in
  if total = 0 then 0.0
  else float_of_int d.delta_reused /. float_of_int total

let compile_delta ?(options = default_options) ~manifest nl =
  let obs = options.obs in
  Sink.span obs "delta" @@ fun () ->
  let finish ?diff ~seeded ~dropped ctx compiled prepared =
    if diff = None then Sink.incr obs "delta.cold_fallback";
    Sink.add obs "delta.reused" (Reroute.reused ctx);
    Sink.add obs "delta.ripped" (Reroute.ripped ctx);
    Sink.add obs "delta.fresh" (Reroute.fresh ctx);
    {
      delta_compiled = compiled;
      delta_manifest = manifest_of ~options ~ctx prepared;
      delta_diff = diff;
      delta_seeded = seeded;
      delta_dropped = dropped;
      delta_reused = Reroute.reused ctx;
      delta_ripped = Reroute.ripped ctx;
      delta_fresh = Reroute.fresh ctx;
      delta_expansions = Reroute.expansions ctx;
    }
  in
  let cold prepared =
    let ctx = Reroute.create ~exact:true () in
    let compiled = compile_prepared ~options ~reroute:ctx prepared in
    finish ~seeded:0 ~dropped:0 ctx compiled prepared
  in
  let options_fp = options_fingerprint options in
  if not (String.equal manifest.Manifest.options_fp options_fp) then
    cold (prepare ~options nl)
  else
    let prepared = prepare ~options nl in
    match
      Delta_diff.compute ~manifest prepared.placement
        ~analysis:prepared.analysis
    with
    | None -> cold prepared
    | Some diff -> (
        Sink.add obs "delta.blocks_clean" (Delta_diff.clean_count diff);
        Sink.add obs "delta.blocks_dirty" (Delta_diff.dirty_count diff);
        Sink.add obs "delta.cone" (Delta_diff.cone_size diff);
        let s = Delta_diff.seed ~manifest ~diff prepared.placement in
        Sink.add obs "delta.entries_seeded" s.Delta_diff.seeded;
        Sink.add obs "delta.entries_dropped" s.Delta_diff.dropped;
        let ctx = s.Delta_diff.ctx in
        match compile_prepared ~options ~reroute:ctx prepared with
        | compiled ->
            finish ~diff ~seeded:s.Delta_diff.seeded
              ~dropped:s.Delta_diff.dropped ctx compiled prepared
        | exception (Tiers.Unroutable _ | Compile_error _) ->
            (* Unreachable when the base compiled: validated replays make
               the warm pass the cold pass.  Kept as defense in depth for
               manifests from foreign or corrupted sources. *)
            cold prepared)

(* ---- Reporting. ---- *)

let pp_attempt ppf a =
  let pp_outcome ppf = function
    | Attempt_ok { length; est_speed_hz } ->
        Format.fprintf ppf "ok: %d vclocks/frame, %.1f kHz" length
          (est_speed_hz /. 1e3)
    | Attempt_failed d -> Diag.pp ppf d
  in
  Format.fprintf ppf
    "%-17s mode=%-7s slack=%-7d seeds=%d/%d reused=%d ripped=%d  %a"
    a.attempt_label
    (Tiers.mode_name a.attempt_mode)
    a.attempt_max_extra a.attempt_partition_seed a.attempt_place_seed
    a.attempt_reused a.attempt_ripped pp_outcome a.attempt_outcome

let pp_degradation ppf d =
  Format.fprintf ppf
    "requested: %s MTS routing at %.1f MHz vclock@\n\
     achieved:  %s, %s emulation speed@\n\
     retries: %d, hard-fallback transports: %d, reused/ripped: %d/%d, \
     lint: %d errors / %d warnings"
    (Tiers.mode_name d.requested_mode)
    (d.requested_hz /. 1e6)
    (match d.achieved_mode with
    | None -> "nothing (all attempts failed)"
    | Some m -> Tiers.mode_name m ^ " MTS routing")
    (match d.achieved_hz with
    | None -> "no"
    | Some hz -> Format.asprintf "%.1f kHz" (hz /. 1e3))
    d.retries d.fallback_nets d.reused_transports d.ripped_transports
    d.lint_errors d.lint_warnings

let pp_resilient ppf r =
  (match r.attempts with
  | [] -> ()
  | attempts ->
      Format.fprintf ppf "attempts:@\n";
      List.iter (fun a -> Format.fprintf ppf "  %a@\n" pp_attempt a) attempts);
  Format.fprintf ppf "%a" pp_degradation r.degradation

let resilient_to_json r =
  let module J = Diag.Json in
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-driver-1");
  J.field b ~first "status"
    (J.string
       (if not (succeeded r) then "failed"
        else if degraded r then "degraded"
        else "ok"));
  let attempts_json =
    let ab = Buffer.create 1024 in
    Buffer.add_char ab '[';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_char ab ',';
        let af = ref true in
        Buffer.add_char ab '{';
        J.field ab ~first:af "label" (J.string a.attempt_label);
        J.field ab ~first:af "mode" (J.string (Tiers.mode_name a.attempt_mode));
        J.field ab ~first:af "max_extra_slots"
          (string_of_int a.attempt_max_extra);
        J.field ab ~first:af "partition_seed"
          (string_of_int a.attempt_partition_seed);
        J.field ab ~first:af "place_seed" (string_of_int a.attempt_place_seed);
        J.field ab ~first:af "expansions" (string_of_int a.attempt_expansions);
        J.field ab ~first:af "reused" (string_of_int a.attempt_reused);
        J.field ab ~first:af "ripped" (string_of_int a.attempt_ripped);
        (match a.attempt_outcome with
        | Attempt_ok { length; est_speed_hz } ->
            J.field ab ~first:af "ok" "true";
            J.field ab ~first:af "length" (string_of_int length);
            J.field ab ~first:af "est_speed_hz"
              (Printf.sprintf "%.6g" est_speed_hz)
        | Attempt_failed d ->
            J.field ab ~first:af "ok" "false";
            J.field ab ~first:af "diagnostic" (Diag.to_json d));
        Buffer.add_char ab '}')
      r.attempts;
    Buffer.add_char ab ']';
    Buffer.contents ab
  in
  J.field b ~first "attempts" attempts_json;
  let diags_json =
    let rb = Buffer.create 1024 in
    let rep = Diag.Report.create () in
    Diag.Report.add_list rep r.diagnostics;
    Diag.Report.to_json_buf rb rep;
    Buffer.contents rb
  in
  J.field b ~first "diagnostics" diags_json;
  let d = r.degradation in
  let deg_json =
    let db = Buffer.create 256 in
    let df = ref true in
    Buffer.add_char db '{';
    J.field db ~first:df "requested_mode"
      (J.string (Tiers.mode_name d.requested_mode));
    (match d.achieved_mode with
    | None -> ()
    | Some m -> J.field db ~first:df "achieved_mode" (J.string (Tiers.mode_name m)));
    J.field db ~first:df "requested_hz" (Printf.sprintf "%.6g" d.requested_hz);
    (match d.achieved_hz with
    | None -> ()
    | Some hz -> J.field db ~first:df "achieved_hz" (Printf.sprintf "%.6g" hz));
    J.field db ~first:df "retries" (string_of_int d.retries);
    J.field db ~first:df "fallback_nets" (string_of_int d.fallback_nets);
    J.field db ~first:df "reused_transports"
      (string_of_int d.reused_transports);
    J.field db ~first:df "ripped_transports"
      (string_of_int d.ripped_transports);
    J.field db ~first:df "lint_errors" (string_of_int d.lint_errors);
    J.field db ~first:df "lint_warnings" (string_of_int d.lint_warnings);
    Buffer.add_char db '}';
    Buffer.contents db
  in
  J.field b ~first "degradation" deg_json;
  Buffer.add_char b '}';
  Buffer.contents b

(* Exit code of a resilient run: 0 on success (degraded or not), else the
   class of the first error diagnostic. *)
let resilient_exit_code r =
  if succeeded r then 0
  else
    match List.filter Diag.is_error r.diagnostics with
    | [] -> Diag.exit_code Diag.E_INTERNAL
    | d :: _ -> Diag.exit_code d.Diag.code
