open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module System = Msched_arch.System
module Topology = Msched_arch.Topology
module Domain_analysis = Msched_mts.Domain_analysis
module Latch_analysis = Msched_mts.Latch_analysis
module Transform = Msched_mts.Transform
module Classify = Msched_mts.Classify
module Tiers = Msched_route.Tiers
module Sink = Msched_obs.Sink

type options = {
  max_block_weight : int;
  pins_per_fpga : int;
  topology_kind : Topology.kind;
  vclock_hz : float;
  partition_seed : int;
  place_seed : int;
  place_effort : int;
  route : Tiers.options;
  verify : bool;
  obs : Sink.t;
}

let default_options =
  {
    max_block_weight = 64;
    pins_per_fpga = System.xilinx_4062_pins;
    topology_kind = Topology.Mesh;
    vclock_hz = System.default_vclock_hz;
    partition_seed = 1;
    place_seed = 7;
    place_effort = 4;
    route = Tiers.default_options;
    verify = true;
    obs = Sink.null;
  }

type prepared = {
  original : Netlist.t;
  netlist : Netlist.t;
  rewrites : Transform.rewrite list;
  analysis : Domain_analysis.t;
  partition : Partition.t;
  system : System.t;
  placement : Placement.t;
  latch_analysis : Latch_analysis.t array;
  classification : Classify.t;
}

type compiled = { prepared : prepared; schedule : Msched_route.Schedule.t }

exception Compile_error of string

let prepare ?(options = default_options) original =
  let obs = options.obs in
  Sink.span obs "prepare" @@ fun () ->
  let analysis0 =
    Sink.span obs "domain-analysis" @@ fun () ->
    Domain_analysis.compute ~obs original
  in
  (match Transform.check_supported original analysis0 with
  | Ok () -> ()
  | Error msg -> raise (Compile_error msg));
  let rewritten =
    Sink.span obs "mts-transform" @@ fun () ->
    Transform.master_slave ~obs original analysis0
  in
  let netlist = rewritten.Transform.netlist in
  let analysis =
    Sink.span obs "domain-analysis" @@ fun () ->
    Domain_analysis.compute ~obs netlist
  in
  let partition =
    Sink.span obs "partition" @@ fun () ->
    Partition.make ~obs netlist ~max_weight:options.max_block_weight
      ~seed:options.partition_seed ()
  in
  (match Partition.validate partition with
  | Ok () -> ()
  | Error msg -> raise (Compile_error ("invalid partition: " ^ msg)));
  let topology =
    Topology.make_for_count options.topology_kind (Partition.num_blocks partition)
  in
  let system =
    System.make ~vclock_hz:options.vclock_hz topology
      ~pins_per_fpga:options.pins_per_fpga
  in
  let placement =
    Sink.span obs "placement" @@ fun () ->
    Placement.place partition system ~seed:options.place_seed
      ~effort:options.place_effort ~obs ()
  in
  let latch_analysis =
    Sink.span obs "latch-analysis" @@ fun () ->
    Latch_analysis.analyze ~obs partition
  in
  let classification =
    Sink.span obs "classification" @@ fun () ->
    Classify.compute ~obs partition analysis
  in
  {
    original;
    netlist;
    rewrites = rewritten.Transform.rewrites;
    analysis;
    partition;
    system;
    placement;
    latch_analysis;
    classification;
  }

let route ?(obs = Sink.null) prepared route_options =
  Tiers.schedule prepared.placement prepared.analysis
    ~analysis:prepared.latch_analysis ~options:route_options ~obs ()

let route_forward ?(obs = Sink.null) prepared route_options =
  Msched_route.Forward.schedule prepared.placement prepared.analysis
    ~analysis:prepared.latch_analysis ~options:route_options ~obs ()

let verify_schedule ?(obs = Sink.null) prepared sched =
  Msched_check.Verify.verify ~obs prepared.placement prepared.analysis sched

let compile ?(options = default_options) nl =
  let obs = options.obs in
  Sink.span obs "compile" @@ fun () ->
  let prepared = prepare ~options nl in
  let schedule = route ~obs prepared options.route in
  if options.verify then begin
    let report = verify_schedule ~obs prepared schedule in
    if not (Msched_check.Verify.is_clean report) then
      raise
        (Compile_error
           (Format.asprintf "schedule fails static verification:@\n%a"
              Msched_check.Verify.pp_report report))
  end;
  { prepared; schedule }
