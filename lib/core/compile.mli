(** The full emulation-compiler pipeline (paper Section 2):

    domain analysis → MTS flip-flop transform → partitioning → placement →
    per-block latch analysis → MTS classification → static scheduling.

    [prepare] runs everything up to (and excluding) routing, so multiple
    routing modes (virtual / hard / naive) can be compared on the same
    partition and placement — exactly how Table 1 compares rows 8/9. *)

open Msched_netlist

type options = {
  max_block_weight : int;  (** FPGA capacity in cell-weight units. *)
  pins_per_fpga : int;
  topology_kind : Msched_arch.Topology.kind;
  vclock_hz : float;
  partition_seed : int;
  place_seed : int;
  place_effort : int;
  route : Msched_route.Tiers.options;
  verify : bool;
      (** Run the independent static verifier ({!Msched_check.Verify}) on
          the compiled schedule and raise {!Compile_error} on violations. *)
  obs : Msched_obs.Sink.t;
      (** Observability sink.  {!Msched_obs.Sink.null} (the default) makes
          every probe a no-op; an enabled sink records a span per pipeline
          phase plus the counters catalogued in [docs/OBSERVABILITY.md]. *)
  compile_jobs : int;
      (** Intra-compile parallel width (default 1): worker domains for the
          TIERS reverse pass and the placement annealer.  The compiled
          schedule, placement and pipeline metrics are bit-identical for
          every value — parallelism is a pure wall-clock knob — and
          [compile_jobs <= 1] never spawns a domain. *)
}

val default_options : options
(** 240 pins (XC4062XL), mesh, 34 MHz virtual clock, virtual MTS routing,
    verification on. *)

type prepared = {
  original : Netlist.t;
  netlist : Netlist.t;  (** After the MTS flip-flop transform. *)
  rewrites : Msched_mts.Transform.rewrite list;
  analysis : Msched_mts.Domain_analysis.t;
  partition : Msched_partition.Partition.t;
  system : Msched_arch.System.t;
  placement : Msched_place.Placement.t;
  latch_analysis : Msched_mts.Latch_analysis.t array;
  classification : Msched_mts.Classify.t;
}

type compiled = {
  prepared : prepared;
  schedule : Msched_route.Schedule.t;
}

exception Compile_error of Msched_diag.Diag.t
(** Structured pipeline failure: [E_UNSUPPORTED] for constructs the flow
    cannot compile, [E_CAPACITY] for infeasible capacity settings,
    [E_VERIFY] / [E_HOLD_VIOLATION] for schedules rejected by the static
    verifier, [E_INTERNAL] for invariant breakage.  Routing failures
    escape as {!Msched_route.Tiers.Unroutable} with their own diagnostic
    payload. *)

val prepare : ?options:options -> Netlist.t -> prepared
(** @raise Compile_error on unsupported constructs (multi-domain RAM write
    clocks) or infeasible capacity settings. *)

val route :
  ?obs:Msched_obs.Sink.t ->
  ?reroute:Msched_route.Reroute.t ->
  ?jobs:int ->
  prepared ->
  Msched_route.Tiers.options ->
  Msched_route.Schedule.t
(** Reverse (TIERS) scheduling.  With a [reroute] context the attempt runs
    warm (ledger replay, congestion-history steering, deferred residue
    collection) — see {!Msched_route.Tiers.schedule}.  [jobs] is the
    parallel width of the reverse pass (default 1; bit-identical results
    for every value). *)

val route_forward :
  ?obs:Msched_obs.Sink.t ->
  ?reroute:Msched_route.Reroute.t ->
  prepared ->
  Msched_route.Tiers.options ->
  Msched_route.Schedule.t
(** Forward list scheduling (see {!Msched_route.Forward}). *)

val verify_schedule :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Schedule.t ->
  Msched_check.Verify.report
(** Run the static verifier against a schedule routed from [prepared]. *)

val compile_prepared :
  ?options:options -> ?reroute:Msched_route.Reroute.t -> prepared -> compiled
(** [route] with [options.route] on an already-prepared front-end; when
    [options.verify] is set the schedule is then checked by
    {!Msched_check.Verify} and a violation raises {!Compile_error} with the
    pretty-printed report.  Lets callers (the resilient driver, ablation
    sweeps) retry routing without re-partitioning and re-placing. *)

val compile :
  ?options:options ->
  ?reroute:Msched_route.Reroute.t ->
  Netlist.t ->
  compiled
(** [prepare] followed by {!compile_prepared}. *)

val check_jobs_budget :
  ?recommended:int ->
  jobs:int ->
  compile_jobs:int ->
  unit ->
  (unit, Msched_diag.Diag.t) result
(** Validate the product of the two parallelism knobs (process-level
    [jobs]/[workers] × [compile_jobs]) against the machine's core count
    ([recommended] defaults to [Domain.recommended_domain_count ()];
    injectable for tests).  [Error] (an [E_PARSE] diagnostic naming both
    knobs) only when {e both} knobs exceed 1 and their product exceeds the
    budget — either knob alone is an explicit user tradeoff and passes. *)

(** {2 Delta compilation}

    An {e exact} base compile routes under a probe-transcribing reroute
    context ({!Msched_route.Reroute.create}[ ~exact:true]) and harvests a
    {!Msched_delta.Manifest.t}: block fingerprints, boundary signatures,
    the placement assignment, and every routed transport with the probe
    transcript that proves its replay.  A later {!compile_delta} of an
    edited design diffs its blocks against the manifest, seeds an exact
    context with the surviving ledger, and replays everything the edit
    did not touch — producing a schedule {e byte-identical} to a cold
    compile (same [Schedule.to_json_string]) at a fraction of the search
    work.  See [docs/DELTA.md] for the equivalence argument. *)

val options_fingerprint : options -> string
(** Canonical rendering of every option that shapes a compile (routing
    mode, slack, capacity, seeds, effort, vclock, topology, verify).  The
    server cache keys on it; manifests embed it and refuse to warm-start a
    compile run under different options. *)

type base = {
  base_compiled : compiled;
  base_manifest : Msched_delta.Manifest.t;
  base_expansions : int;  (** Pathfinder states popped — the cold cost. *)
}

val compile_base : ?options:options -> Netlist.t -> base
(** A cold compile under a fresh exact context.  The schedule is
    byte-identical to {!compile} with no context (exact contexts freeze
    congestion history, so searches explore in declaration order either
    way); the extra output is the manifest. *)

type delta_result = {
  delta_compiled : compiled;
  delta_manifest : Msched_delta.Manifest.t;
      (** The updated manifest — the base for the {e next} edit. *)
  delta_diff : Msched_delta.Diff.t option;
      (** [None] when the compile fell back cold (options fingerprint or
          block-count mismatch, or a foreign manifest that failed). *)
  delta_seeded : int;  (** Manifest entries seeded into the context. *)
  delta_dropped : int;  (** Entries dropped (cone, unresolvable names). *)
  delta_reused : int;  (** Transports replayed without a search. *)
  delta_ripped : int;
  delta_fresh : int;
  delta_expansions : int;  (** Pathfinder states popped — the warm cost. *)
}

val delta_reuse_fraction : delta_result -> float
(** [reused / (reused + ripped + fresh)]; 0 when nothing was routed. *)

val compile_delta :
  ?options:options -> manifest:Msched_delta.Manifest.t -> Netlist.t -> delta_result
(** Compile [nl] warm against [manifest].  Front-end phases (domain
    analysis, MTS transform, partition, placement, latch analysis) always
    run — they are cheap and deterministic; only transport {e routing} is
    replayed.  Byte-identical to a cold compile by construction.
    Observability: span [delta], counters [delta.blocks_clean],
    [delta.blocks_dirty], [delta.cone], [delta.entries_seeded],
    [delta.entries_dropped], [delta.reused], [delta.ripped],
    [delta.fresh], [delta.cold_fallback].
    @raise Compile_error / {!Msched_route.Tiers.Unroutable} exactly when a
    cold compile of [nl] would. *)

val diag_of_exn : exn -> Msched_diag.Diag.t
(** Map any pipeline exception onto its structured diagnostic
    ([Compile_error] / [Unroutable] / [Unsupported] / [Diag.Fail] payloads
    pass through; netlist validation errors, combinational cycles and
    unexpected exceptions are classified).  This is the classifier the
    resilient driver and the CLI/bench entry points share. *)

(** {2 Resilient driver}

    {!compile} is fail-fast: the first problem raises.  The resilient
    driver never lets an exception escape.  It lints the netlist first
    ({!Msched_netlist.Lint}), then walks a bounded escalation ladder:

    + baseline attempt with the requested options;
    + relax the congestion-slack budget ([max_extra_slots]);
    + rip-up & retry: relaxed slack plus perturbed partition/placement
      seeds (one rung per remaining retry);
    + optionally ([fallback_hard]) fall back to dedicated (hard) wires —
      {e per net} first: only the unroutable residue the last attempt
      recorded is hard-wired, the rest of the schedule stays virtual and
      replays warm (rungs [fallback-hard], [fallback-hard-2], …); the
      whole-schedule hard baseline ([fallback-hard-all], paper Table 1
      rows 8 vs 9) runs only when the residue cannot be named or refuses
      to converge.

    Attempts share one {!Msched_route.Reroute.t} context: a rung that
    keeps the partition/placement seeds replays the previous attempt's
    routes from the ledger and re-searches only what changed, steered by
    the accumulated congestion history.  [reuse:false] clears the context
    before every attempt (cold — the differential-test baseline).

    Every attempt and diagnostic is recorded; the degradation report says
    what was requested vs what was achieved.  Observability: span
    [driver] / [driver.lint] / [driver.attempt], counters
    [driver.attempts], [driver.retries], [driver.fallback_nets],
    [driver.fallback_forced], [driver.reused_transports],
    [driver.ripped_transports], [driver.lint_errors],
    [driver.lint_warnings], plus the [reroute.*] family (see
    [docs/OBSERVABILITY.md]). *)

type attempt_outcome =
  | Attempt_ok of { length : int; est_speed_hz : float }
  | Attempt_failed of Msched_diag.Diag.t

type attempt = {
  attempt_label : string;
      (** ["baseline"], ["relax-slack"], ["reseed-N"], ["fallback-hard"],
          ["fallback-hard-N"], ["fallback-hard-all"]. *)
  attempt_mode : Msched_route.Tiers.mts_mode;
  attempt_max_extra : int;
  attempt_partition_seed : int;
  attempt_place_seed : int;
  attempt_expansions : int;
      (** Pathfinder states expanded during this attempt (warm reuse makes
          this drop on retry rungs). *)
  attempt_reused : int;  (** Transports replayed from the ledger. *)
  attempt_ripped : int;  (** Stale ledger entries ripped up. *)
  attempt_outcome : attempt_outcome;
}

type degradation = {
  requested_mode : Msched_route.Tiers.mts_mode;
  achieved_mode : Msched_route.Tiers.mts_mode option;
  requested_hz : float;  (** The virtual-clock ceiling (one emulated cycle
                             per vclock). *)
  achieved_hz : float option;  (** [est_speed_hz] of the final schedule. *)
  retries : int;  (** Attempts made beyond the baseline. *)
  fallback_nets : int;  (** Hard-wired transports in the final schedule when
                            a hard fallback (per-net or whole-schedule) was
                            taken; 0 otherwise. *)
  reused_transports : int;
      (** Transports replayed from the reroute ledger across all attempts
          (0 under [reuse:false]). *)
  ripped_transports : int;  (** Stale ledger entries ripped across attempts. *)
  lint_errors : int;
  lint_warnings : int;
}

type resilient = {
  compiled : compiled option;  (** [None] when every attempt failed or lint
                                   found errors. *)
  attempts : attempt list;  (** In execution order; empty when lint errors
                                stopped the run before any attempt. *)
  diagnostics : Msched_diag.Diag.t list;
      (** Lint findings plus one diagnostic per failed attempt. *)
  degradation : degradation;
}

val compile_resilient :
  ?options:options ->
  ?max_retries:int ->
  ?fallback_hard:bool ->
  ?reuse:bool ->
  ?reroute:Msched_route.Reroute.t ->
  Netlist.t ->
  resilient
(** Never raises (any unexpected exception becomes an [E_INTERNAL]
    diagnostic).  [max_retries] (default 3) bounds the escalation rungs
    after the baseline attempt; [fallback_hard] (default [false]) appends
    the per-net hard-fallback rungs (and the whole-schedule hard rung as a
    last resort); [reuse] (default [true]) keeps the reroute context warm
    across seed-compatible attempts — [false] re-searches every attempt
    from scratch (same results, more work; used by the differential
    tests).  [reroute] supplies the context instead of starting fresh:
    pass one deserialized from {!Msched_route.Reroute.of_json_string} (or
    retained from a previous run of the same design) and even the baseline
    attempt runs warm — the mechanism behind the process-spanning
    warm-route cache of {!Msched_server}.  The context is mutated in
    place; serialize it afterwards to persist what this run learned. *)

val succeeded : resilient -> bool
val degraded : resilient -> bool
(** Succeeded, but not on the baseline attempt. *)

val resilient_exit_code : resilient -> int
(** 0 on success (even degraded); otherwise the
    {!Msched_diag.Diag.exit_code} class of the first error diagnostic. *)

val pp_attempt : Format.formatter -> attempt -> unit
val pp_degradation : Format.formatter -> degradation -> unit
val pp_resilient : Format.formatter -> resilient -> unit

val resilient_to_json : resilient -> string
(** Stable JSON document (schema ["msched-driver-1"]) with status,
    attempts, diagnostics and the degradation report. *)
