(** The full emulation-compiler pipeline (paper Section 2):

    domain analysis → MTS flip-flop transform → partitioning → placement →
    per-block latch analysis → MTS classification → static scheduling.

    [prepare] runs everything up to (and excluding) routing, so multiple
    routing modes (virtual / hard / naive) can be compared on the same
    partition and placement — exactly how Table 1 compares rows 8/9. *)

open Msched_netlist

type options = {
  max_block_weight : int;  (** FPGA capacity in cell-weight units. *)
  pins_per_fpga : int;
  topology_kind : Msched_arch.Topology.kind;
  vclock_hz : float;
  partition_seed : int;
  place_seed : int;
  place_effort : int;
  route : Msched_route.Tiers.options;
  verify : bool;
      (** Run the independent static verifier ({!Msched_check.Verify}) on
          the compiled schedule and raise {!Compile_error} on violations. *)
  obs : Msched_obs.Sink.t;
      (** Observability sink.  {!Msched_obs.Sink.null} (the default) makes
          every probe a no-op; an enabled sink records a span per pipeline
          phase plus the counters catalogued in [docs/OBSERVABILITY.md]. *)
}

val default_options : options
(** 240 pins (XC4062XL), mesh, 34 MHz virtual clock, virtual MTS routing,
    verification on. *)

type prepared = {
  original : Netlist.t;
  netlist : Netlist.t;  (** After the MTS flip-flop transform. *)
  rewrites : Msched_mts.Transform.rewrite list;
  analysis : Msched_mts.Domain_analysis.t;
  partition : Msched_partition.Partition.t;
  system : Msched_arch.System.t;
  placement : Msched_place.Placement.t;
  latch_analysis : Msched_mts.Latch_analysis.t array;
  classification : Msched_mts.Classify.t;
}

type compiled = {
  prepared : prepared;
  schedule : Msched_route.Schedule.t;
}

exception Compile_error of Msched_diag.Diag.t
(** Structured pipeline failure: [E_UNSUPPORTED] for constructs the flow
    cannot compile, [E_CAPACITY] for infeasible capacity settings,
    [E_VERIFY] / [E_HOLD_VIOLATION] for schedules rejected by the static
    verifier, [E_INTERNAL] for invariant breakage.  Routing failures
    escape as {!Msched_route.Tiers.Unroutable} with their own diagnostic
    payload. *)

val prepare : ?options:options -> Netlist.t -> prepared
(** @raise Compile_error on unsupported constructs (multi-domain RAM write
    clocks) or infeasible capacity settings. *)

val route :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Tiers.options ->
  Msched_route.Schedule.t
(** Reverse (TIERS) scheduling. *)

val route_forward :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Tiers.options ->
  Msched_route.Schedule.t
(** Forward list scheduling (see {!Msched_route.Forward}). *)

val verify_schedule :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Schedule.t ->
  Msched_check.Verify.report
(** Run the static verifier against a schedule routed from [prepared]. *)

val compile : ?options:options -> Netlist.t -> compiled
(** [prepare] followed by [route] with [options.route]; when
    [options.verify] is set the schedule is then checked by
    {!Msched_check.Verify} and a violation raises {!Compile_error} with the
    pretty-printed report. *)

(** {2 Resilient driver}

    {!compile} is fail-fast: the first problem raises.  The resilient
    driver never lets an exception escape.  It lints the netlist first
    ({!Msched_netlist.Lint}), then walks a bounded escalation ladder:

    + baseline attempt with the requested options;
    + relax the congestion-slack budget ([max_extra_slots]);
    + rip-up & retry: relaxed slack plus perturbed partition/placement
      seeds (one rung per remaining retry);
    + optionally ([fallback_hard]) abandon virtual MTS routing for the
      hard-wired baseline — correct but slower and pin-hungrier (paper
      Table 1 rows 8 vs 9).

    Every attempt and diagnostic is recorded; the degradation report says
    what was requested vs what was achieved.  Observability: span
    [driver] / [driver.lint] / [driver.attempt], counters
    [driver.attempts], [driver.retries], [driver.fallback_nets],
    [driver.lint_errors], [driver.lint_warnings]. *)

type attempt_outcome =
  | Attempt_ok of { length : int; est_speed_hz : float }
  | Attempt_failed of Msched_diag.Diag.t

type attempt = {
  attempt_label : string;  (** ["baseline"], ["relax-slack"], ["reseed-N"],
                               ["fallback-hard"]. *)
  attempt_mode : Msched_route.Tiers.mts_mode;
  attempt_max_extra : int;
  attempt_partition_seed : int;
  attempt_place_seed : int;
  attempt_outcome : attempt_outcome;
}

type degradation = {
  requested_mode : Msched_route.Tiers.mts_mode;
  achieved_mode : Msched_route.Tiers.mts_mode option;
  requested_hz : float;  (** The virtual-clock ceiling (one emulated cycle
                             per vclock). *)
  achieved_hz : float option;  (** [est_speed_hz] of the final schedule. *)
  retries : int;  (** Attempts made beyond the baseline. *)
  fallback_nets : int;  (** Hard-wired transports in the final schedule when
                            the hard fallback was taken; 0 otherwise. *)
  lint_errors : int;
  lint_warnings : int;
}

type resilient = {
  compiled : compiled option;  (** [None] when every attempt failed or lint
                                   found errors. *)
  attempts : attempt list;  (** In execution order; empty when lint errors
                                stopped the run before any attempt. *)
  diagnostics : Msched_diag.Diag.t list;
      (** Lint findings plus one diagnostic per failed attempt. *)
  degradation : degradation;
}

val compile_resilient :
  ?options:options ->
  ?max_retries:int ->
  ?fallback_hard:bool ->
  Netlist.t ->
  resilient
(** Never raises (any unexpected exception becomes an [E_INTERNAL]
    diagnostic).  [max_retries] (default 3) bounds the escalation rungs
    after the baseline attempt; [fallback_hard] (default [false]) appends
    the hard-routing rung. *)

val succeeded : resilient -> bool
val degraded : resilient -> bool
(** Succeeded, but not on the baseline attempt. *)

val resilient_exit_code : resilient -> int
(** 0 on success (even degraded); otherwise the
    {!Msched_diag.Diag.exit_code} class of the first error diagnostic. *)

val pp_attempt : Format.formatter -> attempt -> unit
val pp_degradation : Format.formatter -> degradation -> unit
val pp_resilient : Format.formatter -> resilient -> unit

val resilient_to_json : resilient -> string
(** Stable JSON document (schema ["msched-driver-1"]) with status,
    attempts, diagnostics and the degradation report. *)
