(** The full emulation-compiler pipeline (paper Section 2):

    domain analysis → MTS flip-flop transform → partitioning → placement →
    per-block latch analysis → MTS classification → static scheduling.

    [prepare] runs everything up to (and excluding) routing, so multiple
    routing modes (virtual / hard / naive) can be compared on the same
    partition and placement — exactly how Table 1 compares rows 8/9. *)

open Msched_netlist

type options = {
  max_block_weight : int;  (** FPGA capacity in cell-weight units. *)
  pins_per_fpga : int;
  topology_kind : Msched_arch.Topology.kind;
  vclock_hz : float;
  partition_seed : int;
  place_seed : int;
  place_effort : int;
  route : Msched_route.Tiers.options;
  verify : bool;
      (** Run the independent static verifier ({!Msched_check.Verify}) on
          the compiled schedule and raise {!Compile_error} on violations. *)
  obs : Msched_obs.Sink.t;
      (** Observability sink.  {!Msched_obs.Sink.null} (the default) makes
          every probe a no-op; an enabled sink records a span per pipeline
          phase plus the counters catalogued in [docs/OBSERVABILITY.md]. *)
}

val default_options : options
(** 240 pins (XC4062XL), mesh, 34 MHz virtual clock, virtual MTS routing,
    verification on. *)

type prepared = {
  original : Netlist.t;
  netlist : Netlist.t;  (** After the MTS flip-flop transform. *)
  rewrites : Msched_mts.Transform.rewrite list;
  analysis : Msched_mts.Domain_analysis.t;
  partition : Msched_partition.Partition.t;
  system : Msched_arch.System.t;
  placement : Msched_place.Placement.t;
  latch_analysis : Msched_mts.Latch_analysis.t array;
  classification : Msched_mts.Classify.t;
}

type compiled = {
  prepared : prepared;
  schedule : Msched_route.Schedule.t;
}

exception Compile_error of string

val prepare : ?options:options -> Netlist.t -> prepared
(** @raise Compile_error on unsupported constructs (multi-domain RAM write
    clocks) or infeasible capacity settings. *)

val route :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Tiers.options ->
  Msched_route.Schedule.t
(** Reverse (TIERS) scheduling. *)

val route_forward :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Tiers.options ->
  Msched_route.Schedule.t
(** Forward list scheduling (see {!Msched_route.Forward}). *)

val verify_schedule :
  ?obs:Msched_obs.Sink.t ->
  prepared ->
  Msched_route.Schedule.t ->
  Msched_check.Verify.report
(** Run the static verifier against a schedule routed from [prepared]. *)

val compile : ?options:options -> Netlist.t -> compiled
(** [prepare] followed by [route] with [options.route]; when
    [options.verify] is set the schedule is then checked by
    {!Msched_check.Verify} and a violation raises {!Compile_error} with the
    pretty-printed report. *)
