(** Table 1 reproduction: "MTS Virtual Routing vs. Hard Routing".

    One row set per design, matching the paper's eleven rows: module counts,
    MTS statistics, FPGA counts, critical path lengths (virtual clocks) for
    hard- and virtual-routed MTS, and estimated maximum emulation speeds. *)

type t = {
  label : string;
  num_modules : int;  (** Row 1 (from the generator metadata). *)
  num_mts_modules : int;  (** Row 2. *)
  num_domains : int;  (** Row 3. *)
  num_mts_paths : int;  (** Row 4. *)
  num_mts_fpgas : int;  (** Row 5. *)
  num_non_mts_fpgas : int;  (** Row 7 (row 6 names the domains). *)
  domain_names : string list;  (** Row 6. *)
  critical_path_hard : int;  (** Row 8 (virtual clocks). *)
  critical_path_virtual : int;  (** Row 9. *)
  speed_hard_hz : float;  (** Row 10. *)
  speed_virtual_hz : float;  (** Row 11. *)
  total_fpgas : int;
  holdoff_slots : int;  (** Injected delay-compensation slots (virtual). *)
}

val of_design :
  ?options:Compile.options ->
  Msched_gen.Design_gen.design ->
  t
(** Prepares the design once and routes it twice (hard, then virtual). *)

val pp_row : Format.formatter -> t -> unit
val pp_table : Format.formatter -> t list -> unit
(** The full Table 1 layout, designs as columns. *)
