(** Figure 8 reproduction: FPGA count vs per-FPGA pin count, hard routing
    vs virtual routing.

    "Hard routing" is the figure's classic Virtual-Wires sense: every
    crossing signal occupies a dedicated point-to-point wire, costing one
    pin per endpoint and no time multiplexing — so a partition's pin demand
    is simply its worst-case crossing count, a hard floor.

    "Virtual routing" multiplexes signals over shared wires, trading pins
    for schedule length.  Its pin demand for a partition is the smallest
    per-FPGA pin budget (from a candidate list) at which the design still
    compiles with a critical path within a slack factor of the
    unconstrained schedule.

    Sweeping the partition size reproduces the figure: under a fixed
    per-FPGA pin limit (240 user IOs on the paper's Xilinx 4062s), hard
    routing forces much smaller partitions — many more FPGAs — than
    virtual routing. *)

type point = {
  max_block_weight : int;
  fpga_count : int;
  pins_hard : int;  (** Dedicated-wire pin demand (worst FPGA). *)
  pins_virtual : int option;
      (** Smallest feasible pin budget under the slack criterion; [None]
          when even the largest candidate fails. *)
  base_length : int;  (** Critical path with unconstrained pins. *)
}

val sweep :
  ?options:Compile.options ->
  ?weights:int list ->
  ?pin_candidates:int list ->
  ?slack:float ->
  Msched_netlist.Netlist.t ->
  point list
(** Defaults: weights [256; 128; 64; 32], candidates
    [160; 96; 64; 48; 32; 24; 16], slack 1.5. *)

val min_fpgas_under_pin_limit :
  point list -> pin_limit:int -> hard:bool -> int option
(** The smallest FPGA count among sweep points whose pin demand fits the
    limit — the quantity Figure 8 plots. *)

val pp_points : Format.formatter -> point list -> unit
