(** On-disk warm-route cache: persisted {!Msched_route.Reroute} contexts
    keyed by a content hash of the design text and the compile-options
    fingerprint, so warm retries span processes.

    All functions are stateless in the directory argument — concurrent
    worker domains share nothing but the filesystem.  The file layout
    ([reroute-<key>.json], one canonical [msched-reroute-1] document each)
    is documented in [docs/SERVER.md]. *)

val hash_hex : string -> string
(** FNV-1a 64-bit, as 16 lowercase hex digits. *)

val fingerprint : Msched.Compile.options -> string
(** {!Msched.Compile.options_fingerprint}: the option fields that change
    routing results; part of the cache key so stale contexts are never
    replayed against different options. *)

val key : text:string -> options:Msched.Compile.options -> string
(** Content hash of the {e canonical} serial form of [text] (when it
    parses — whitespace, comments and file-local net numbering do not
    split cache entries) plus the options fingerprint. *)

val file : dir:string -> key:string -> string

val ensure_dir : string -> unit
(** Create the cache directory (and one missing parent) if needed.
    @raise Msched_diag.Diag.Fail (E_CACHE) when the path exists but is not
    a directory. *)

type load =
  | Miss  (** No cache file for this key. *)
  | Hit of Msched_route.Reroute.t
  | Corrupt of Msched_diag.Diag.t
      (** Unreadable / truncated / checksum-mismatched file: the carried
          E_CACHE warning says why; the caller degrades to a cold start. *)

val load : dir:string -> key:string -> load
(** A [Hit] also touches the entry's mtime (best-effort), making mtime a
    least-recently-used clock for {!gc}. *)

val store :
  dir:string -> key:string -> Msched_route.Reroute.t -> (unit, Msched_diag.Diag.t) result
(** Atomic and durable: the entry is written to a writer-private temp file
    (name includes pid and domain id, so concurrent processes never
    collide), fsynced, then renamed into place — a crash can leave a stale
    temp file but never a partially-written entry.  [Error] carries an
    E_CACHE warning; persisting is best-effort and never fails a job. *)

(** {2 Block-granular delta-manifest entries}

    A {!Msched_delta.Manifest.t} is stored as [manifest-<key>.json] (the
    header: shape, fingerprints, boundary signatures) plus one
    [block-<key>-<n>.json] ledger slice per block, all atomic like
    {!store}.  Slices evict independently under {!gc}: a manifest whose
    slices were evicted still loads — the missing blocks' ledger entries
    just compile cold — while a missing or corrupt header is a full miss
    ([M_corrupt] carries the E_CACHE warning). *)

val manifest_file : dir:string -> key:string -> string
val block_file : dir:string -> key:string -> block:int -> string

val store_manifest :
  dir:string ->
  key:string ->
  Msched_delta.Manifest.t ->
  (unit, Msched_diag.Diag.t) result

type manifest_load =
  | M_miss
  | M_hit of Msched_delta.Manifest.t * int
      (** The reassembled manifest and the number of evicted or corrupt
          block slices it is missing (0 = fully warm). *)
  | M_corrupt of Msched_diag.Diag.t

val load_manifest : dir:string -> key:string -> manifest_load
(** Touches every file it reads (LRU). *)

(** {2 Hygiene: stats, locking, LRU eviction}

    A long-lived serve process grows the cache without bound unless capped.
    [gc ~max_bytes] evicts entries oldest-mtime-first (loads touch, so
    mtime order is LRU order) until the directory fits the cap, under an
    exclusive advisory lock so two gc passes (or gc racing an external
    [msched cache gc]) never double-delete. *)

type stats = {
  st_entries : int;
      (** All cache entries ([reroute-*] / [manifest-*] / [block-*]). *)
  st_manifests : int;  (** Manifest headers among them. *)
  st_blocks : int;  (** Block ledger slices among them. *)
  st_bytes : int;  (** Total bytes across entries. *)
  st_oldest_s : float;
      (** Age in seconds of the least-recently-used entry; [0.] when
          empty. *)
}

val stats : dir:string -> stats
(** Snapshot of the directory; never raises (an unreadable directory reads
    as empty). *)

val with_lock : dir:string -> (unit -> 'a) -> 'a
(** Run [f] holding an exclusive [Unix.lockf] lock on
    [dir/.msched-cache.lock] (created if missing).  Blocks until the lock
    is available; always released, even if [f] raises. *)

type gc_result = {
  gc_scanned : int;
  gc_evicted : int;
  gc_orphans : int;
      (** Block slices deleted because their manifest header was evicted
          (they are unreachable: loads go through the header). *)
  gc_bytes_before : int;
  gc_bytes_after : int;
}

val gc : dir:string -> max_bytes:int -> gc_result
(** Evict entries oldest-mtime-first (deterministic path tie-break) until
    total entry bytes fit [max_bytes], then sweep orphaned block slices,
    all under {!with_lock}.  Entries that vanish mid-scan are skipped; the
    lock file itself is never evicted.  Eviction never strands a manifest:
    a header that survives with missing slices still loads, degrading the
    missing blocks to cold with an E_CACHE accounting. *)
