(** On-disk warm-route cache: persisted {!Msched_route.Reroute} contexts
    keyed by a content hash of the design text and the compile-options
    fingerprint, so warm retries span processes.

    All functions are stateless in the directory argument — concurrent
    worker domains share nothing but the filesystem.  The file layout
    ([reroute-<key>.json], one canonical [msched-reroute-1] document each)
    is documented in [docs/SERVER.md]. *)

val hash_hex : string -> string
(** FNV-1a 64-bit, as 16 lowercase hex digits. *)

val fingerprint : Msched.Compile.options -> string
(** The option fields that change routing results; part of the cache key
    so stale contexts are never replayed against different options. *)

val key : text:string -> options:Msched.Compile.options -> string
val file : dir:string -> key:string -> string

val ensure_dir : string -> unit
(** Create the cache directory (and one missing parent) if needed.
    @raise Msched_diag.Diag.Fail (E_CACHE) when the path exists but is not
    a directory. *)

type load =
  | Miss  (** No cache file for this key. *)
  | Hit of Msched_route.Reroute.t
  | Corrupt of Msched_diag.Diag.t
      (** Unreadable / truncated / checksum-mismatched file: the carried
          E_CACHE warning says why; the caller degrades to a cold start. *)

val load : dir:string -> key:string -> load

val store :
  dir:string -> key:string -> Msched_route.Reroute.t -> (unit, Msched_diag.Diag.t) result
(** Atomic (temp file + rename), domain-safe.  [Error] carries an E_CACHE
    warning; persisting is best-effort and never fails a job. *)
