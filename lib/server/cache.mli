(** On-disk warm-route cache: persisted {!Msched_route.Reroute} contexts
    keyed by a content hash of the design text and the compile-options
    fingerprint, so warm retries span processes.

    All functions are stateless in the directory argument — concurrent
    worker domains share nothing but the filesystem.  The file layout
    ([reroute-<key>.json], one canonical [msched-reroute-1] document each)
    is documented in [docs/SERVER.md]. *)

val hash_hex : string -> string
(** FNV-1a 64-bit, as 16 lowercase hex digits. *)

val fingerprint : Msched.Compile.options -> string
(** The option fields that change routing results; part of the cache key
    so stale contexts are never replayed against different options. *)

val key : text:string -> options:Msched.Compile.options -> string
val file : dir:string -> key:string -> string

val ensure_dir : string -> unit
(** Create the cache directory (and one missing parent) if needed.
    @raise Msched_diag.Diag.Fail (E_CACHE) when the path exists but is not
    a directory. *)

type load =
  | Miss  (** No cache file for this key. *)
  | Hit of Msched_route.Reroute.t
  | Corrupt of Msched_diag.Diag.t
      (** Unreadable / truncated / checksum-mismatched file: the carried
          E_CACHE warning says why; the caller degrades to a cold start. *)

val load : dir:string -> key:string -> load
(** A [Hit] also touches the entry's mtime (best-effort), making mtime a
    least-recently-used clock for {!gc}. *)

val store :
  dir:string -> key:string -> Msched_route.Reroute.t -> (unit, Msched_diag.Diag.t) result
(** Atomic and durable: the entry is written to a writer-private temp file
    (name includes pid and domain id, so concurrent processes never
    collide), fsynced, then renamed into place — a crash can leave a stale
    temp file but never a partially-written entry.  [Error] carries an
    E_CACHE warning; persisting is best-effort and never fails a job. *)

(** {2 Hygiene: stats, locking, LRU eviction}

    A long-lived serve process grows the cache without bound unless capped.
    [gc ~max_bytes] evicts entries oldest-mtime-first (loads touch, so
    mtime order is LRU order) until the directory fits the cap, under an
    exclusive advisory lock so two gc passes (or gc racing an external
    [msched cache gc]) never double-delete. *)

type stats = {
  st_entries : int;  (** Cache entries ([reroute-*.json] files). *)
  st_bytes : int;  (** Total bytes across entries. *)
  st_oldest_s : float;
      (** Age in seconds of the least-recently-used entry; [0.] when
          empty. *)
}

val stats : dir:string -> stats
(** Snapshot of the directory; never raises (an unreadable directory reads
    as empty). *)

val with_lock : dir:string -> (unit -> 'a) -> 'a
(** Run [f] holding an exclusive [Unix.lockf] lock on
    [dir/.msched-cache.lock] (created if missing).  Blocks until the lock
    is available; always released, even if [f] raises. *)

type gc_result = {
  gc_scanned : int;
  gc_evicted : int;
  gc_bytes_before : int;
  gc_bytes_after : int;
}

val gc : dir:string -> max_bytes:int -> gc_result
(** Evict entries oldest-mtime-first (deterministic path tie-break) until
    total entry bytes fit [max_bytes], under {!with_lock}.  Entries that
    vanish mid-scan are skipped; the lock file itself is never evicted. *)
