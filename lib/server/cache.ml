(* Process-spanning warm-route cache: one msched-reroute-1 document per
   (design content, compile-options fingerprint) key on disk.  A later
   process compiling the same design under the same options deserializes
   the context and replays the previous run's routes instead of searching
   from scratch (ROADMAP: "warm retries span processes").

   The module is stateless — all functions take the directory explicitly —
   so concurrent worker domains share nothing but the filesystem.  Stores
   are atomic and durable (write a writer-private temp file, fsync it, then
   rename: a crash mid-write can leave at most a stale temp file, never a
   short-but-parseable entry); loads of a missing key are misses; loads of
   an unreadable, truncated or checksum-mismatched file degrade to a cold
   start with an E_CACHE warning instead of failing the job.

   Hygiene for long-lived servers: a successful load touches the entry's
   mtime, making mtime an LRU clock; [gc ~max_bytes] evicts
   oldest-mtime-first under an exclusive lock file until the directory fits
   the cap, so entries in active use (recently loaded or stored) survive. *)

module Reroute = Msched_route.Reroute
module Diag = Msched_diag.Diag

(* FNV-1a 64-bit over the design text + options fingerprint: stable across
   platforms and processes, cheap, and collision-resistant enough for a
   content-addressed cache of compile jobs. *)
let hash_hex s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint (o : Msched.Compile.options) =
  Printf.sprintf
    "mode=%s;extra=%d;pins=%d;weight=%d;pseed=%d;plseed=%d;effort=%d;vhz=%.6g;topo=%s;verify=%b"
    (Msched_route.Tiers.mode_name o.Msched.Compile.route.Msched_route.Tiers.mode)
    o.Msched.Compile.route.Msched_route.Tiers.max_extra_slots
    o.Msched.Compile.pins_per_fpga o.Msched.Compile.max_block_weight
    o.Msched.Compile.partition_seed o.Msched.Compile.place_seed
    o.Msched.Compile.place_effort o.Msched.Compile.vclock_hz
    (Format.asprintf "%a" Msched_arch.Topology.pp_kind
       o.Msched.Compile.topology_kind)
    o.Msched.Compile.verify

let key ~text ~options = hash_hex (fingerprint options ^ "\n" ^ text)

let file ~dir ~key = Filename.concat dir ("reroute-" ^ key ^ ".json")

let ensure_dir dir =
  (* mkdir -p, shallow: the cache dir plus one missing parent is all the
     CLI ever needs; anything deeper fails loudly below. *)
  let rec make d =
    if not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir;
  if not (Sys.is_directory dir) then
    raise (Diag.Fail (Diag.error Diag.E_CACHE "%s is not a directory" dir))

type load = Miss | Hit of Reroute.t | Corrupt of Diag.t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A hit bumps the entry's mtime so LRU eviction ([gc]) sees it as in
   active use.  Best-effort: a read-only cache still serves hits. *)
let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let load ~dir ~key =
  let path = file ~dir ~key in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | exception Sys_error msg ->
        Corrupt
          (Diag.warning Diag.E_CACHE
             "warm-route cache %s unreadable (%s); starting cold" path msg)
    | text -> (
        match Reroute.of_json_string text with
        | Ok ctx ->
            touch path;
            Hit ctx
        | Error msg ->
            Corrupt
              (Diag.warning Diag.E_CACHE
                 "warm-route cache %s corrupt (%s); starting cold" path msg))

let store ~dir ~key ctx =
  let path = file ~dir ~key in
  (* pid + domain id: unique per writer even when several processes (each
     with a domain 0) share the directory — two writers can never clobber
     each other's temp file, and rename keeps the entry itself atomic. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let payload = Reroute.to_json_string ctx ^ "\n" in
        let n = String.length payload in
        let written = ref 0 in
        while !written < n do
          written :=
            !written + Unix.write_substring fd payload !written (n - !written)
        done;
        (* Durability before visibility: without the fsync, a crash after
           the rename could expose an entry whose tail never reached disk —
           short but possibly still parseable.  With it, the rename only
           ever publishes fully-written bytes. *)
        Unix.fsync fd);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception e ->
      let msg =
        match e with
        | Sys_error msg -> msg
        | Unix.Unix_error (err, _, _) -> Unix.error_message err
        | e -> Printexc.to_string e
      in
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Error
        (Diag.warning Diag.E_CACHE "could not persist warm-route cache %s: %s"
           path msg)

(* ---- Hygiene: stats, locking, LRU-by-mtime eviction. ---- *)

let is_entry name =
  String.length name > String.length "reroute-.json"
  && String.sub name 0 8 = "reroute-"
  && Filename.check_suffix name ".json"

(* Entries with their size and mtime; files that vanish mid-scan (another
   worker's rename or eviction) are skipped, not errors. *)
let scan dir =
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc name ->
      if not (is_entry name) then acc
      else
        let path = Filename.concat dir name in
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
            (path, st_size, st_mtime) :: acc
        | _ | (exception Unix.Unix_error _) -> acc)
    [] names

type stats = {
  st_entries : int;
  st_bytes : int;
  st_oldest_s : float;  (** Age in seconds of the least-recently-used entry. *)
}

let stats ~dir =
  let entries = scan dir in
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun acc (_, size, mtime) ->
      {
        st_entries = acc.st_entries + 1;
        st_bytes = acc.st_bytes + size;
        st_oldest_s = Float.max acc.st_oldest_s (now -. mtime);
      })
    { st_entries = 0; st_bytes = 0; st_oldest_s = 0.0 }
    entries

let lock_path dir = Filename.concat dir ".msched-cache.lock"

let with_lock ~dir f =
  ensure_dir dir;
  let fd =
    Unix.openfile (lock_path dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      Fun.protect
        ~finally:(fun () ->
          try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
        f)

type gc_result = {
  gc_scanned : int;
  gc_evicted : int;
  gc_bytes_before : int;
  gc_bytes_after : int;
}

let gc ~dir ~max_bytes =
  with_lock ~dir (fun () ->
      let entries = scan dir in
      let total =
        List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries
      in
      (* Oldest mtime first = least recently used first (loads touch);
         path tie-break keeps eviction order deterministic. *)
      let by_age =
        List.sort
          (fun (pa, _, ma) (pb, _, mb) ->
            match compare (ma : float) mb with 0 -> compare pa pb | c -> c)
          entries
      in
      let evicted, bytes_after =
        List.fold_left
          (fun (evicted, bytes) (path, size, _) ->
            if bytes <= max_bytes then (evicted, bytes)
            else
              match Sys.remove path with
              | () -> (evicted + 1, bytes - size)
              | exception Sys_error _ -> (evicted, bytes))
          (0, total) by_age
      in
      {
        gc_scanned = List.length entries;
        gc_evicted = evicted;
        gc_bytes_before = total;
        gc_bytes_after = bytes_after;
      })
