(* Process-spanning warm-route cache: one msched-reroute-1 document per
   (design content, compile-options fingerprint) key on disk.  A later
   process compiling the same design under the same options deserializes
   the context and replays the previous run's routes instead of searching
   from scratch (ROADMAP: "warm retries span processes").

   The module is stateless — all functions take the directory explicitly —
   so concurrent worker domains share nothing but the filesystem.  Stores
   are atomic (write a domain-private temp file, then rename); loads of a
   missing key are misses; loads of an unreadable, truncated or
   checksum-mismatched file degrade to a cold start with an E_CACHE
   warning instead of failing the job. *)

module Reroute = Msched_route.Reroute
module Diag = Msched_diag.Diag

(* FNV-1a 64-bit over the design text + options fingerprint: stable across
   platforms and processes, cheap, and collision-resistant enough for a
   content-addressed cache of compile jobs. *)
let hash_hex s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint (o : Msched.Compile.options) =
  Printf.sprintf
    "mode=%s;extra=%d;pins=%d;weight=%d;pseed=%d;plseed=%d;effort=%d;vhz=%.6g;topo=%s;verify=%b"
    (Msched_route.Tiers.mode_name o.Msched.Compile.route.Msched_route.Tiers.mode)
    o.Msched.Compile.route.Msched_route.Tiers.max_extra_slots
    o.Msched.Compile.pins_per_fpga o.Msched.Compile.max_block_weight
    o.Msched.Compile.partition_seed o.Msched.Compile.place_seed
    o.Msched.Compile.place_effort o.Msched.Compile.vclock_hz
    (Format.asprintf "%a" Msched_arch.Topology.pp_kind
       o.Msched.Compile.topology_kind)
    o.Msched.Compile.verify

let key ~text ~options = hash_hex (fingerprint options ^ "\n" ^ text)

let file ~dir ~key = Filename.concat dir ("reroute-" ^ key ^ ".json")

let ensure_dir dir =
  (* mkdir -p, shallow: the cache dir plus one missing parent is all the
     CLI ever needs; anything deeper fails loudly below. *)
  let rec make d =
    if not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir;
  if not (Sys.is_directory dir) then
    raise (Diag.Fail (Diag.error Diag.E_CACHE "%s is not a directory" dir))

type load = Miss | Hit of Reroute.t | Corrupt of Diag.t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir ~key =
  let path = file ~dir ~key in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | exception Sys_error msg ->
        Corrupt
          (Diag.warning Diag.E_CACHE
             "warm-route cache %s unreadable (%s); starting cold" path msg)
    | text -> (
        match Reroute.of_json_string text with
        | Ok ctx -> Hit ctx
        | Error msg ->
            Corrupt
              (Diag.warning Diag.E_CACHE
                 "warm-route cache %s corrupt (%s); starting cold" path msg))

let store ~dir ~key ctx =
  let path = file ~dir ~key in
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Domain.self () :> int)
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Reroute.to_json_string ctx);
        output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Error
        (Diag.warning Diag.E_CACHE "could not persist warm-route cache %s: %s"
           path msg)
