(* Process-spanning warm-route cache: one msched-reroute-1 document per
   (design content, compile-options fingerprint) key on disk.  A later
   process compiling the same design under the same options deserializes
   the context and replays the previous run's routes instead of searching
   from scratch (ROADMAP: "warm retries span processes").

   The module is stateless — all functions take the directory explicitly —
   so concurrent worker domains share nothing but the filesystem.  Stores
   are atomic and durable (write a writer-private temp file, fsync it, then
   rename: a crash mid-write can leave at most a stale temp file, never a
   short-but-parseable entry); loads of a missing key are misses; loads of
   an unreadable, truncated or checksum-mismatched file degrade to a cold
   start with an E_CACHE warning instead of failing the job.

   Hygiene for long-lived servers: a successful load touches the entry's
   mtime, making mtime an LRU clock; [gc ~max_bytes] evicts
   oldest-mtime-first under an exclusive lock file until the directory fits
   the cap, so entries in active use (recently loaded or stored) survive. *)

module Reroute = Msched_route.Reroute
module Diag = Msched_diag.Diag

(* FNV-1a 64-bit over the design text + options fingerprint: stable across
   platforms and processes, cheap, and collision-resistant enough for a
   content-addressed cache of compile jobs. *)
let hash_hex s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint = Msched.Compile.options_fingerprint

(* Keys hash the {e canonical} serial text when the design parses:
   whitespace, comments and file-local net numbering no longer split one
   design across several cache entries.  Unparseable text (which the
   compile path will reject anyway) keys on its raw bytes. *)
let key ~text ~options =
  let text =
    match Msched_netlist.Serial.canonical text with
    | Ok canonical -> canonical
    | Error _ -> text
  in
  hash_hex (fingerprint options ^ "\n" ^ text)

let file ~dir ~key = Filename.concat dir ("reroute-" ^ key ^ ".json")

let ensure_dir dir =
  (* mkdir -p, shallow: the cache dir plus one missing parent is all the
     CLI ever needs; anything deeper fails loudly below. *)
  let rec make d =
    if not (Sys.file_exists d) then begin
      make (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir;
  if not (Sys.is_directory dir) then
    raise (Diag.Fail (Diag.error Diag.E_CACHE "%s is not a directory" dir))

type load = Miss | Hit of Reroute.t | Corrupt of Diag.t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A hit bumps the entry's mtime so LRU eviction ([gc]) sees it as in
   active use.  Best-effort: a read-only cache still serves hits. *)
let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let load ~dir ~key =
  let path = file ~dir ~key in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | exception Sys_error msg ->
        Corrupt
          (Diag.warning Diag.E_CACHE
             "warm-route cache %s unreadable (%s); starting cold" path msg)
    | text -> (
        match Reroute.of_json_string text with
        | Ok ctx ->
            touch path;
            Hit ctx
        | Error msg ->
            Corrupt
              (Diag.warning Diag.E_CACHE
                 "warm-route cache %s corrupt (%s); starting cold" path msg))

let write_atomic ~path payload =
  (* pid + domain id: unique per writer even when several processes (each
     with a domain 0) share the directory — two writers can never clobber
     each other's temp file, and rename keeps the entry itself atomic. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let n = String.length payload in
        let written = ref 0 in
        while !written < n do
          written :=
            !written + Unix.write_substring fd payload !written (n - !written)
        done;
        (* Durability before visibility: without the fsync, a crash after
           the rename could expose an entry whose tail never reached disk —
           short but possibly still parseable.  With it, the rename only
           ever publishes fully-written bytes. *)
        Unix.fsync fd);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception e ->
      let msg =
        match e with
        | Sys_error msg -> msg
        | Unix.Unix_error (err, _, _) -> Unix.error_message err
        | e -> Printexc.to_string e
      in
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Error
        (Diag.warning Diag.E_CACHE "could not persist warm-route cache %s: %s"
           path msg)

let store ~dir ~key ctx =
  write_atomic ~path:(file ~dir ~key) (Reroute.to_json_string ctx ^ "\n")

(* ---- Block-granular delta-manifest entries. ----

   A manifest is stored as a header file plus one ledger slice per block,
   so LRU eviction can shed cold slices without killing the manifest.  A
   missing or corrupt slice degrades that block's entries to cold
   (counted, E_CACHE-warned); a missing or corrupt header is the whole
   manifest gone. *)

module Manifest = Msched_delta.Manifest

let manifest_file ~dir ~key = Filename.concat dir ("manifest-" ^ key ^ ".json")

let block_file ~dir ~key ~block =
  Filename.concat dir (Printf.sprintf "block-%s-%d.json" key block)

let store_manifest ~dir ~key m =
  let ( let* ) = Result.bind in
  let* () =
    write_atomic ~path:(manifest_file ~dir ~key) (Manifest.header_json m ^ "\n")
  in
  let rec blocks b =
    if b >= m.Manifest.num_blocks then Ok ()
    else
      let* () =
        write_atomic
          ~path:(block_file ~dir ~key ~block:b)
          (Manifest.slice_json m ~block:b ^ "\n")
      in
      blocks (b + 1)
  in
  blocks 0

type manifest_load =
  | M_miss
  | M_hit of Manifest.t * int
      (* manifest (ledger = surviving slices), evicted/corrupt slice count *)
  | M_corrupt of Diag.t

let load_manifest ~dir ~key =
  let path = manifest_file ~dir ~key in
  if not (Sys.file_exists path) then M_miss
  else
    match read_file path with
    | exception Sys_error msg ->
        M_corrupt
          (Diag.warning Diag.E_CACHE
             "delta manifest %s unreadable (%s); compiling cold" path msg)
    | text -> (
        match Manifest.header_of_json_string text with
        | Error msg ->
            M_corrupt
              (Diag.warning Diag.E_CACHE
                 "delta manifest %s corrupt (%s); compiling cold" path msg)
        | Ok header ->
            touch path;
            let missing = ref 0 in
            let slices = ref [] in
            for b = 0 to header.Manifest.num_blocks - 1 do
              let bpath = block_file ~dir ~key ~block:b in
              match read_file bpath with
              | exception Sys_error _ -> incr missing
              | btext -> (
                  match Manifest.slice_of_json_string btext with
                  | Ok slice ->
                      touch bpath;
                      slices := slice :: !slices
                  | Error _ -> incr missing)
            done;
            M_hit (Manifest.with_slices header !slices, !missing))

(* ---- Hygiene: stats, locking, LRU-by-mtime eviction. ---- *)

let has_prefix p name =
  String.length name > String.length p + String.length ".json"
  && String.sub name 0 (String.length p) = p

let is_entry name =
  Filename.check_suffix name ".json"
  && (has_prefix "reroute-" name || has_prefix "manifest-" name
    || has_prefix "block-" name)

(* Entries with their size and mtime; files that vanish mid-scan (another
   worker's rename or eviction) are skipped, not errors. *)
let scan dir =
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.fold_left
    (fun acc name ->
      if not (is_entry name) then acc
      else
        let path = Filename.concat dir name in
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
            (path, st_size, st_mtime) :: acc
        | _ | (exception Unix.Unix_error _) -> acc)
    [] names

type stats = {
  st_entries : int;
  st_manifests : int;
  st_blocks : int;
  st_bytes : int;
  st_oldest_s : float;  (** Age in seconds of the least-recently-used entry. *)
}

let stats ~dir =
  let entries = scan dir in
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun acc (path, size, mtime) ->
      let name = Filename.basename path in
      {
        st_entries = acc.st_entries + 1;
        st_manifests =
          (acc.st_manifests + if has_prefix "manifest-" name then 1 else 0);
        st_blocks = (acc.st_blocks + if has_prefix "block-" name then 1 else 0);
        st_bytes = acc.st_bytes + size;
        st_oldest_s = Float.max acc.st_oldest_s (now -. mtime);
      })
    {
      st_entries = 0;
      st_manifests = 0;
      st_blocks = 0;
      st_bytes = 0;
      st_oldest_s = 0.0;
    }
    entries

let lock_path dir = Filename.concat dir ".msched-cache.lock"

let with_lock ~dir f =
  ensure_dir dir;
  let fd =
    Unix.openfile (lock_path dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      Fun.protect
        ~finally:(fun () ->
          try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
        f)

type gc_result = {
  gc_scanned : int;
  gc_evicted : int;
  gc_orphans : int;
  gc_bytes_before : int;
  gc_bytes_after : int;
}

(* The manifest key a block slice belongs to: block-<key>-<n>.json. *)
let block_owner name =
  if not (has_prefix "block-" name) then None
  else
    let stem = Filename.chop_suffix name ".json" in
    match String.rindex_opt stem '-' with
    | Some i when i > String.length "block-" ->
        Some (String.sub stem 6 (i - 6))
    | _ -> None

let gc ~dir ~max_bytes =
  with_lock ~dir (fun () ->
      let entries = scan dir in
      let total =
        List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries
      in
      (* Oldest mtime first = least recently used first (loads touch);
         path tie-break keeps eviction order deterministic. *)
      let by_age =
        List.sort
          (fun (pa, _, ma) (pb, _, mb) ->
            match compare (ma : float) mb with 0 -> compare pa pb | c -> c)
          entries
      in
      let evicted, bytes_after =
        List.fold_left
          (fun (evicted, bytes) (path, size, _) ->
            if bytes <= max_bytes then (evicted, bytes)
            else
              match Sys.remove path with
              | () -> (evicted + 1, bytes - size)
              | exception Sys_error _ -> (evicted, bytes))
          (0, total) by_age
      in
      (* Orphan sweep: evicting a manifest header makes its surviving
         slices unreachable (loads go through the header), so they are
         dead bytes — collect them now rather than waiting for LRU age.
         The reverse is fine as-is: a manifest with evicted slices still
         loads and degrades those blocks to cold. *)
      let survivors = scan dir in
      let live_manifest = Hashtbl.create 16 in
      List.iter
        (fun (path, _, _) ->
          let name = Filename.basename path in
          if has_prefix "manifest-" name then
            Hashtbl.replace live_manifest
              (String.sub name 9 (String.length name - 9 - 5))
              ())
        survivors;
      let orphans, bytes_after =
        List.fold_left
          (fun (orphans, bytes) (path, size, _) ->
            match block_owner (Filename.basename path) with
            | Some owner when not (Hashtbl.mem live_manifest owner) -> (
                match Sys.remove path with
                | () -> (orphans + 1, bytes - size)
                | exception Sys_error _ -> (orphans, bytes))
            | _ -> (orphans, bytes))
          (0, bytes_after) survivors
      in
      {
        gc_scanned = List.length entries;
        gc_evicted = evicted;
        gc_orphans = orphans;
        gc_bytes_before = total;
        gc_bytes_after = bytes_after;
      })
