(** Concurrent request dispatcher for `msched serve`: a bounded queue of
    jobs drained by a fixed set of worker domains, with explicit
    backpressure, per-request deadlines, crash recovery and graceful
    shutdown.  The full state machine (request and worker lifecycles) is
    documented in [docs/SERVER.md]; the failure taxonomy (E_OVERLOAD,
    E_TIMEOUT, E_INTERNAL) in [docs/ROBUSTNESS.md].

    The dispatcher is generic in the job and result types so the chaos
    tests can inject poison work; `msched serve` instantiates it with
    {!Server.job}/{!Server.job_result}.

    Threading model: submitters are sys-threads (one per client session),
    workers are domains, and one monitor thread reaps crashed workers,
    replaces hung ones, and is the {e only} writer of the optional
    observability sink (sinks are single-threaded mutable state). *)

type overload =
  | Shed  (** Full queue: answer E_OVERLOAD immediately. *)
  | Block
      (** Full queue: make the submitter wait for space (still bounded by
          its deadline). *)

val overload_name : overload -> string

type 'res outcome =
  | Done of 'res
  | Rejected of Msched_diag.Diag.t
      (** E_OVERLOAD: shed on a full queue, or refused while draining /
          aborted before starting.  Retryable. *)
  | Timed_out of Msched_diag.Diag.t
      (** E_TIMEOUT: deadline expired — cancelled while queued, or the
          running compile was abandoned. *)
  | Crashed of Msched_diag.Diag.t
      (** E_INTERNAL: the worker domain died executing this job (it was
          reaped and replaced). *)

type config = {
  d_workers : int;  (** Worker domains (>= 1). *)
  d_queue_max : int;  (** Bounded queue depth. *)
  d_overload : overload;
  d_deadline_s : float option;  (** Default per-request deadline. *)
  d_grace_s : float;
      (** How long an abandoned (timed-out, still running) worker may keep
          going before the monitor writes it off and spawns a
          replacement. *)
}

val default_config : config
(** 2 workers, queue 64, shed, no deadline, 1 s grace. *)

type ('job, 'res) t

val create :
  ?sink:Msched_obs.Sink.t ->
  ?gauges:(string * (unit -> float)) list ->
  config ->
  (stopping:(unit -> bool) -> 'job -> 'res) ->
  ('job, 'res) t
(** Spawn the workers and the monitor.  The run function receives
    [stopping], which turns true on {!abort}: cooperative long-running
    jobs may poll it and bail early (compiles that ignore it simply finish
    and are dropped).  A run function that {e raises} kills its worker —
    that is the crash-recovery path, not an error-reporting channel;
    report job failures in the ['res] value.

    [gauges] are extra probes sampled by the monitor alongside the
    [server.*] gauges (e.g. cache eviction counts owned by the transport
    layer), keeping the sink single-writer. *)

val submit :
  ?client:int -> ?deadline_s:float -> ('job, 'res) t -> 'job -> 'res outcome
(** Enqueue and wait for the outcome (blocks the calling thread).
    [deadline_s] overrides the config default; [None] means wait forever.
    Safe to call from many threads concurrently.

    [client] (default 0) names the fairness lane: tickets queue per
    client and workers drain the lanes round-robin, so one client
    flooding the queue cannot starve the others — each queued client
    gets one job per rotation.  The transport passes its connection id
    here; the queue bound and overload policy apply across all lanes
    combined. *)

val accepting : ('job, 'res) t -> bool

type counters = {
  c_submitted : int;
  c_completed : int;
  c_rejected : int;
  c_timed_out : int;
  c_crashed : int;
  c_late : int;  (** Abandoned jobs that eventually finished anyway. *)
  c_reaped : int;  (** Dead (crashed) worker domains joined + replaced. *)
  c_replaced : int;  (** Hung workers written off after the grace period. *)
  c_queue_depth : int;
  c_inflight : int;
  c_peak_queue_depth : int;
  c_peak_inflight : int;
  c_peak_lanes : int;  (** Most distinct client fairness lanes queued at once. *)
}

val counters : ('job, 'res) t -> counters
(** Consistent snapshot (taken under the dispatcher lock). *)

val drain : ?timeout_s:float -> ('job, 'res) t -> bool
(** Graceful shutdown: stop accepting, let the workers finish everything
    already queued and running, join them, stop the monitor.  Returns
    [false] if some worker failed to finish within [timeout_s] (default
    30 s) and was leaked to process exit. *)

val abort : ?timeout_s:float -> ('job, 'res) t -> bool
(** Forced shutdown: stop accepting, answer every queued request with
    E_OVERLOAD, raise the [stopping] flag for cooperative jobs, then wait
    up to [timeout_s] (default 2 s) for workers to exit; stragglers are
    leaked to process exit ([false]). *)
