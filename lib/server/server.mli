(** Parallel batch-compile server.

    Runs many designs through {!Msched.Compile.compile_resilient} on a
    {!Pool} of worker domains, each job under an explicit per-job context
    ({!job_ctx}: private options + observability sink + diagnostic report
    + reroute context), with an optional process-spanning warm-route
    {!Cache}.  Per-design output records are deterministic — byte-identical
    across worker counts — because no mutable state is shared between
    in-flight jobs (audit in [docs/SERVER.md]) and results merge in job
    order.

    Output is NDJSON: one [msched-batch-1] record per design (embedding
    the job's [msched-driver-1] document) plus one [msched-batch-summary-1]
    line; timing appears only in the summary. *)

type job = {
  j_index : int;  (** Position in the batch; results merge in this order. *)
  j_path : string;  (** Display name (file path, or synthetic label). *)
  j_text : string;  (** Netlist text, parsed inside the worker. *)
}

type settings = {
  s_options : Msched.Compile.options;
      (** Template; each job runs with a private copy (its own sink). *)
  s_max_retries : int;
  s_fallback_hard : bool;
  s_reuse : bool;  (** Warm rerouting across retry rungs ([--cold] unsets). *)
  s_cache_dir : string option;  (** Process-spanning warm-route cache. *)
  s_obs_jobs : bool;
      (** Give each job an enabled sink and merge its counters into the
          server totals (on for [--trace]; off keeps probes free). *)
}

val default_settings : settings

type cache_status = Cache_off | Cache_cold | Cache_warm | Cache_corrupt

val cache_status_name : cache_status -> string

type job_ctx = {
  ctx_job : job;
  ctx_options : Msched.Compile.options;  (** With this job's private sink. *)
  ctx_obs : Msched_obs.Sink.t;
  ctx_reroute : Msched_route.Reroute.t;  (** Warm-loaded, or fresh. *)
  ctx_cache : cache_status;
  ctx_key : string;  (** Content-hash cache key ([""] when cache off). *)
  ctx_report : Msched_diag.Diag.Report.t;
}
(** Everything mutable a job touches, owned by that job alone. *)

type job_result = {
  r_job : job;
  r_key : string;
  r_cache : cache_status;
  r_resilient : Msched.Compile.resilient option;
      (** [None] when the design text did not parse. *)
  r_diags : Msched_diag.Diag.t list;  (** Front-end / cache diagnostics. *)
  r_exit : int;  (** The job's documented exit class (0 on success). *)
  r_queue_s : float;  (** Batch start to job start. *)
  r_wall_s : float;
  r_counters : (string * int) list;  (** Job-sink counters ([s_obs_jobs]). *)
}

val make_ctx : settings -> job -> job_ctx
val run_job : settings -> epoch:float -> job -> job_result

type batch_result = {
  b_results : job_result array;  (** In job order, always. *)
  b_jobs : int;  (** Worker count actually used. *)
  b_max_inflight : int;
  b_queue_peak : int;
      (** Peak depth of the pending-task queue: tasks that existed before a
          worker slot freed up for them ([max 0 (tasks - jobs)]; 0 in
          [serve], which admits one job at a time). *)
  b_wall_s : float;
}

val run_batch : ?jobs:int -> settings -> job list -> batch_result
(** [jobs] is clamped to [1 .. length job_list].  Creates the cache
    directory when [s_cache_dir] is set. *)

val job_of_text : index:int -> path:string -> string -> job
val job_of_file : index:int -> string -> (job, Msched_diag.Diag.t) result

val record_json : job_result -> string
(** One deterministic [msched-batch-1] object (no timing fields). *)

val summary_json : batch_result -> string
(** The [msched-batch-summary-1] line (carries all the timing). *)

val to_ndjson : batch_result -> string
(** All records, one per line, then the summary line. *)

val exit_code : batch_result -> int
(** 0 when every job compiled (degraded counts as success), else the exit
    class of the first failing job in job order. *)

val merged_counters : batch_result -> (string * int) list
(** Per-job sink counters summed in job order, sorted by name. *)

val merged_diagnostics : batch_result -> Msched_diag.Diag.t list
(** Every job's diagnostics (front-end, cache, driver), in job order. *)

val record_obs : Msched_obs.Sink.t -> batch_result -> unit
(** Record the [server.*] metrics (queue wait, job wall, cache hit/miss,
    in-flight high-water mark) plus the merged job counters onto a
    main-domain sink.  Call after {!run_batch}; no-op on a null sink. *)

val with_id : string option -> string -> string
(** Splice [{"id": ...}] in front of a record's first member (identity on
    [None]); lets transports echo the client's request id. *)

val error_record : ?id:string -> path:string -> Msched_diag.Diag.t list -> string
(** A [msched-batch-1] record for a request that never reached the driver
    (parse failure, unreadable file, shed, timed out, worker crash):
    [result] is null, [exit_code] is the first diagnostic's class. *)

(** {2 Delta jobs}

    The [{"op": "delta"}] request (docs/DELTA.md): compile an edited
    design against the cached manifest of its previous version, replaying
    every transport the edit provably did not touch.  The updated
    manifest is stored under the design's own content key, announced in
    the response so the client can thread it into its next edit. *)

type base_status =
  | Base_none  (** No base requested: cold base compile. *)
  | Base_warm of int  (** Manifest loaded; [n] block slices missing. *)
  | Base_miss  (** Key given, nothing stored under it. *)
  | Base_corrupt  (** Header failed its checksum; E_CACHE diag carried. *)
  | Base_off  (** Base requested but the server runs without --cache-dir. *)

val base_status_name : base_status -> string

type delta_request = {
  dq_path : string;  (** Display name. *)
  dq_text : string;  (** Netlist text of the {e edited} design. *)
  dq_base : string option;  (** Manifest key from a previous response. *)
}

type delta_outcome = {
  do_blocks_clean : int;
  do_blocks_dirty : int;
  do_cone : int;
  do_reused : int;
  do_ripped : int;
  do_fresh : int;
  do_expansions : int;
  do_reuse_fraction : float;
  do_cold_fallback : bool;
      (** A base was loaded but the compile fell cold (foreign options
          fingerprint or block-count mismatch). *)
  do_schedule_fp : string;
      (** Content hash of the schedule JSON — the warm≡cold witness: a
          client can assert it equals the cold compile's. *)
  do_length : int;
  do_est_speed_hz : float;
}

type delta_result = {
  dr_request : delta_request;
  dr_key : string;  (** Manifest key for this design ([""] cache off). *)
  dr_base : base_status;
  dr_outcome : delta_outcome option;  (** [None]: parse/compile failure. *)
  dr_diags : Msched_diag.Diag.t list;
  dr_exit : int;
}

val run_delta : settings -> delta_request -> delta_result
(** Never raises: pipeline failures are classified into [dr_diags] and
    [dr_exit], exactly like {!run_job}. *)

val delta_record_json : delta_result -> string
(** One deterministic [msched-delta-1] object. *)

val serve : settings -> in_channel -> out_channel -> unit
(** Long-lived loop: one NDJSON request ([{"path": ..., "id"?: ...}] or a
    bare path) per stdin line, one [msched-batch-1] response line each
    (with the request [id] spliced in when given), summary line at EOF.
    Requests run sequentially; the warm-route cache persists across
    requests. *)
