(* Batch job sources: a directory (every *.mnl underneath, recursively,
   in sorted path order) or a manifest file — one design path per line,
   [#] comments, or NDJSON lines {"path": "..."} as emitted/consumed by
   `msched serve`.  Relative paths resolve against the manifest's own
   directory, so manifests are relocatable with their designs. *)

module Diag = Msched_diag.Diag

type entry = { e_path : string  (** Resolved path to the design file. *) }

let is_mnl name = Filename.check_suffix name ".mnl"

let rec scan_dir dir acc =
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then scan_dir path acc
      else if is_mnl name then { e_path = path } :: acc
      else acc)
    acc (Sys.readdir dir)

let of_dir dir =
  let entries = scan_dir dir [] in
  Ok (List.sort (fun a b -> compare a.e_path b.e_path) entries)

let resolve ~base path =
  if Filename.is_relative path then Filename.concat base path else path

let entry_of_json ~base ~lineno line =
  let module J = Diag.Json in
  match J.parse line with
  | Error msg ->
      Error (Diag.error Diag.E_PARSE "manifest line %d: %s" lineno msg)
  | Ok doc -> (
      match Option.bind (J.mem "path" doc) J.str with
      | Some path -> Ok { e_path = resolve ~base path }
      | None ->
          Error
            (Diag.error Diag.E_PARSE
               "manifest line %d: missing \"path\" member" lineno))

let of_file path =
  let base = Filename.dirname path in
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let entries, errors =
    List.fold_left
      (fun ((entries, errors) as acc) (lineno, line) ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then acc
        else if line.[0] = '{' then
          match entry_of_json ~base ~lineno line with
          | Ok e -> (e :: entries, errors)
          | Error d -> (entries, d :: errors)
        else ({ e_path = resolve ~base line } :: entries, errors))
      ([], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  match errors with
  | [] -> Ok (List.rev entries)
  | errs -> Error (List.rev errs)

let load path =
  if not (Sys.file_exists path) then
    Error [ Diag.error Diag.E_PARSE "%s: no such file or directory" path ]
  else if Sys.is_directory path then of_dir path
  else of_file path
