(* Domain-based worker pool: a fixed set of OCaml 5 domains draining a
   lock-protected index queue.  Results land in the slot of the task that
   produced them, so the output order is the input order no matter how the
   domains interleave — the foundation of the batch server's determinism
   guarantee (jobs=4 output is byte-identical to jobs=1).

   Tasks must not share mutable state (see docs/SERVER.md for the audit);
   the pool itself touches only the cursor (under the mutex), per-slot
   result cells (each written by exactly one domain, read after join) and
   the in-flight high-water mark (atomic). *)

type stats = { max_inflight : int  (** Peak concurrently-running tasks. *) }

let map ?(jobs = 1) f tasks =
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    (* In-process fast path: no spawn cost, and the degenerate case the
       differential tests compare the parallel runs against. *)
    (Array.map f tasks, { max_inflight = min 1 n })
  else begin
    let cursor = ref 0 in
    let lock = Mutex.create () in
    let take () =
      Mutex.lock lock;
      let i = !cursor in
      if i < n then incr cursor;
      Mutex.unlock lock;
      if i < n then Some i else None
    in
    let inflight = Atomic.make 0 in
    let peak = Atomic.make 0 in
    let rec note_peak cur =
      let m = Atomic.get peak in
      if cur > m && not (Atomic.compare_and_set peak m cur) then note_peak cur
    in
    let results = Array.make n None in
    let rec worker () =
      match take () with
      | None -> ()
      | Some i ->
          note_peak (1 + Atomic.fetch_and_add inflight 1);
          let r =
            match f tasks.(i) with
            | v -> Ok v
            | exception e ->
                (* Capture the backtrace at the catch site so the caller
                   re-raises with the worker's original trace, not the
                   join-site one. *)
                Error (e, Printexc.get_raw_backtrace ())
          in
          ignore (Atomic.fetch_and_add inflight (-1));
          results.(i) <- Some r;
          worker ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (* Re-raise the exception of the FIRST failing task (lowest index), no
       matter which domain ran it or in what order the domains joined. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    let out =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error _) | None ->
              assert false (* every index was taken exactly once *))
        results
    in
    (out, { max_inflight = Atomic.get peak })
  end
