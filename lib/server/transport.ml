(* Socket front end for `msched serve`: framed NDJSON over a Unix-domain
   or TCP stream socket, dispatched onto the {!Dispatch} worker engine.

   Wire protocol (one request per line, one response line per request —
   docs/SERVER.md has the full grammar):

     path/to/design.mnl                      bare path
     {"path": "...", "id": "...", "deadline_s": 2.5}
     {"text": "design inline\n...", "id": "..."}
     {"op": "delta", "path"|"text": ..., "base"?: "<manifest key>"}
     {"op": "shutdown", "mode": "drain"|"abort"}
     poison:sleep=0.25 | poison:hang | poison:crash   (--inject-faults only)

   Every response is a [msched-batch-1] record (the request [id] spliced
   in when given); failures carry the documented diagnostic codes —
   E_PARSE for malformed or oversized frames, E_OVERLOAD when shed,
   E_TIMEOUT on deadline, E_INTERNAL when a worker crashed on the job.
   Client EOF gets a [msched-serve-conn-1] summary line; the server's own
   [msched-serve-summary-1] is returned from {!wait} after shutdown.

   Threading: an accept thread, one sys-thread per client session, the
   Dispatch worker domains + monitor, and a janitor thread that enforces
   the cache size cap.  Sessions block inside {!Dispatch.submit}; all
   socket reads go through [select] with a short timeout so the stop flag
   is always honoured, and SIGPIPE is ignored so a client vanishing
   mid-response is a counted disconnect, not a process kill. *)

module Diag = Msched_diag.Diag
module Sink = Msched_obs.Sink

(* ---- Addresses. ---- *)

type address = Unix_path of string | Tcp of string * int

let address_name = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let parse_address s =
  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> bad "tcp address %S needs host:port" rest
    | Some i -> (
        let host = String.sub rest 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
        | Some port when port >= 0 && port < 65536 -> Ok (Tcp (host, port))
        | _ -> bad "invalid tcp port in %S" s)
  else if s <> "" then Ok (Unix_path s)
  else bad "empty listen address"

(* ---- Requests. ---- *)

type poison = Sleep of float | Hang | Crash

let poison_name = function
  | Sleep s -> Printf.sprintf "poison:sleep=%g" s
  | Hang -> "poison:hang"
  | Crash -> "poison:crash"

type request =
  | Q_blank
  | Q_compile of {
      q_source : [ `Path of string | `Text of string ];
      q_id : string option;
      q_deadline_s : float option;
    }
  | Q_delta of {
      q_source : [ `Path of string | `Text of string ];
      q_base : string option;  (** Manifest key from a prior response. *)
      q_id : string option;
      q_deadline_s : float option;
    }
  | Q_poison of {
      q_poison : poison;
      q_id : string option;
      q_deadline_s : float option;
    }
  | Q_shutdown of [ `Drain | `Abort ]
  | Q_bad of Diag.t

let parse_poison_spec spec =
  if spec = "hang" then Some Hang
  else if spec = "crash" then Some Crash
  else
    match String.index_opt spec '=' with
    | Some i
      when String.sub spec 0 i = "sleep" ->
        Option.map
          (fun s -> Sleep (Float.max 0.0 s))
          (float_of_string_opt
             (String.sub spec (i + 1) (String.length spec - i - 1)))
    | _ -> None

let parse_request ~inject_faults line =
  let module J = Diag.Json in
  let line = String.trim line in
  let gate_poison p id deadline =
    if inject_faults then
      Q_poison { q_poison = p; q_id = id; q_deadline_s = deadline }
    else
      Q_bad
        (Diag.error Diag.E_UNSUPPORTED
           "fault injection is disabled (start the server with \
            --inject-faults)")
  in
  if line = "" || line.[0] = '#' then Q_blank
  else if String.length line > 7 && String.sub line 0 7 = "poison:" then
    match parse_poison_spec (String.sub line 7 (String.length line - 7)) with
    | Some p -> gate_poison p None None
    | None -> Q_bad (Diag.error Diag.E_PARSE "bad poison spec %S" line)
  else if line.[0] <> '{' then
    Q_compile { q_source = `Path line; q_id = None; q_deadline_s = None }
  else
    match J.parse line with
    | Error msg -> Q_bad (Diag.error Diag.E_PARSE "bad request frame: %s" msg)
    | Ok doc -> (
        let id = Option.bind (J.mem "id" doc) J.str in
        let deadline = Option.bind (J.mem "deadline_s" doc) J.num in
        match Option.bind (J.mem "op" doc) J.str with
        | Some "shutdown" -> (
            match Option.bind (J.mem "mode" doc) J.str with
            | Some "abort" -> Q_shutdown `Abort
            | Some "drain" | None -> Q_shutdown `Drain
            | Some m ->
                Q_bad
                  (Diag.error Diag.E_PARSE "unknown shutdown mode %S" m))
        | Some "delta" -> (
            let base = Option.bind (J.mem "base" doc) J.str in
            match
              ( Option.bind (J.mem "path" doc) J.str,
                Option.bind (J.mem "text" doc) J.str )
            with
            | Some path, None ->
                Q_delta
                  {
                    q_source = `Path path;
                    q_base = base;
                    q_id = id;
                    q_deadline_s = deadline;
                  }
            | None, Some text ->
                Q_delta
                  {
                    q_source = `Text text;
                    q_base = base;
                    q_id = id;
                    q_deadline_s = deadline;
                  }
            | Some _, Some _ ->
                Q_bad
                  (Diag.error Diag.E_PARSE
                     "delta request has both \"path\" and \"text\"")
            | None, None ->
                Q_bad
                  (Diag.error Diag.E_PARSE
                     "delta request needs a \"path\" or \"text\" member"))
        | Some op -> Q_bad (Diag.error Diag.E_PARSE "unknown op %S" op)
        | None -> (
            match Option.bind (J.mem "poison" doc) J.str with
            | Some spec -> (
                match parse_poison_spec spec with
                | Some p -> gate_poison p id deadline
                | None ->
                    Q_bad (Diag.error Diag.E_PARSE "bad poison spec %S" spec))
            | None -> (
                match
                  ( Option.bind (J.mem "path" doc) J.str,
                    Option.bind (J.mem "text" doc) J.str )
                with
                | Some path, None ->
                    Q_compile
                      { q_source = `Path path; q_id = id; q_deadline_s = deadline }
                | None, Some text ->
                    Q_compile
                      { q_source = `Text text; q_id = id; q_deadline_s = deadline }
                | Some _, Some _ ->
                    Q_bad
                      (Diag.error Diag.E_PARSE
                         "request has both \"path\" and \"text\"")
                | None, None ->
                    Q_bad
                      (Diag.error Diag.E_PARSE
                         "request needs a \"path\" or \"text\" member"))))

(* ---- Dispatcher payload. ---- *)

(* A structurally minimal design that lints clean: what poison jobs
   compile once their fault has played out, so every code path still
   produces a well-formed record. *)
let poison_design =
  "design poison\ndomain clk0\nnet 0 a\nnet 1 q\ninput in0 0 domain 0\n\
   ff f0 1 0 dom 0\noutput o0 1\n"

type payload = {
  p_epoch : float;  (** Submit time; [run_job] derives queue wait from it. *)
  p_label : string;
  p_work :
    [ `Job of Server.job | `Delta of Server.delta_request | `Poison of poison ];
}

(* Compile and delta jobs share the dispatcher, so they share its queue
   bound, deadlines and fairness lanes; only the response record differs. *)
type reply = R_record of Server.job_result | R_delta of Server.delta_result

let run_payload settings ~stopping payload =
  match payload.p_work with
  | `Job job -> R_record (Server.run_job settings ~epoch:payload.p_epoch job)
  | `Delta req -> R_delta (Server.run_delta settings req)
  | `Poison p ->
      (match p with
      | Crash -> failwith "injected fault: worker crash"
      | Sleep s ->
          let t_end = Unix.gettimeofday () +. s in
          while Unix.gettimeofday () < t_end && not (stopping ()) do
            Thread.delay 0.005
          done
      | Hang ->
          (* Hangs until [abort] raises the stopping flag; from the
             dispatcher's point of view this is a real stuck compile. *)
          while not (stopping ()) do
            Thread.delay 0.005
          done);
      R_record
        (Server.run_job settings ~epoch:payload.p_epoch
           (Server.job_of_text ~index:0 ~path:payload.p_label poison_design))

(* ---- Server. ---- *)

type config = {
  t_address : address;
  t_dispatch : Dispatch.config;
  t_settings : Server.settings;
  t_inject_faults : bool;
  t_max_frame : int;
  t_cache_max_bytes : int option;
  t_gc_interval_s : float;
  t_drain_timeout_s : float;
  t_abort_timeout_s : float;
}

let default_config =
  {
    t_address = Unix_path "msched-serve.sock";
    t_dispatch = Dispatch.default_config;
    t_settings = Server.default_settings;
    t_inject_faults = false;
    t_max_frame = 8 * 1024 * 1024;
    t_cache_max_bytes = None;
    t_gc_interval_s = 5.0;
    t_drain_timeout_s = 30.0;
    t_abort_timeout_s = 2.0;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : address;  (** Actual address (TCP port 0 resolved). *)
  disp : (payload, reply) Dispatch.t;
  lock : Mutex.t;
  mutable sessions : Thread.t list;
  (* Counters are refs (not mutable fields) so the gauge probes handed to
     the dispatcher can close over them before this record exists. *)
  n_conns : int ref;
  n_disconnects : int ref;
  n_frame_errors : int ref;
  n_evicted : int ref;
  mutable shutdown : [ `Drain | `Abort ] option;
  mutable stop_accept : bool;
  mutable stop_sessions : bool;
  mutable accept_thread : Thread.t option;
  mutable janitor : Thread.t option;
  t_start : float;
}

let locked srv f =
  Mutex.lock srv.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.lock) f

let bound_address srv = srv.bound

exception Disconnect

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ETIMEDOUT | EAGAIN | EWOULDBLOCK), _, _)
        ->
          raise Disconnect
  in
  go 0

(* ---- Per-client session. ---- *)

type session_stats = {
  mutable ss_requests : int;
  mutable ss_ok : int;
  mutable ss_errors : int;
}

let conn_summary_json ss wall =
  let module J = Diag.Json in
  let b = Buffer.create 128 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-serve-conn-1");
  J.field b ~first "requests" (string_of_int ss.ss_requests);
  J.field b ~first "ok" (string_of_int ss.ss_ok);
  J.field b ~first "errors" (string_of_int ss.ss_errors);
  J.field b ~first "wall_s" (Printf.sprintf "%.6f" wall);
  Buffer.add_char b '}';
  Buffer.contents b

let ctl_ack_json action =
  let module J = Diag.Json in
  Printf.sprintf "{\"schema\":\"msched-serve-ctl-1\",\"ok\":true,\"action\":%s}"
    (J.string action)

(* Escalate only: a drain can harden into an abort, never the reverse. *)
let request_shutdown srv mode =
  locked srv (fun () ->
      match (srv.shutdown, mode) with
      | None, m -> srv.shutdown <- Some m
      | Some `Drain, `Abort -> srv.shutdown <- Some `Abort
      | Some _, _ -> ())

(* Submit one payload into this session's fairness lane and emit its
   response record; all three job kinds (compile, delta, poison) share
   this path, so they share backpressure, deadlines and fairness. *)
let submit_and_emit srv ~client ss emit ~id ~deadline_s payload =
  match Dispatch.submit ~client ?deadline_s srv.disp payload with
  | Dispatch.Done (R_record r) ->
      if r.Server.r_exit = 0 then ss.ss_ok <- ss.ss_ok + 1
      else ss.ss_errors <- ss.ss_errors + 1;
      emit (Server.with_id id (Server.record_json r))
  | Dispatch.Done (R_delta r) ->
      if r.Server.dr_exit = 0 then ss.ss_ok <- ss.ss_ok + 1
      else ss.ss_errors <- ss.ss_errors + 1;
      emit (Server.with_id id (Server.delta_record_json r))
  | Dispatch.Rejected d | Dispatch.Timed_out d | Dispatch.Crashed d ->
      ss.ss_errors <- ss.ss_errors + 1;
      emit (Server.error_record ?id ~path:payload.p_label [ d ])

(* Delta jobs parse their source in the session thread (cheap file read);
   the compile itself runs on a worker. *)
let delta_request_of ~source ~base =
  match source with
  | `Text text ->
      Ok { Server.dq_path = "<inline>"; dq_text = text; dq_base = base }
  | `Path path -> (
      match Server.job_of_file ~index:0 path with
      | Ok job ->
          Ok { Server.dq_path = path; dq_text = job.Server.j_text; dq_base = base }
      | Error d -> Error d)

let handle_request srv ~client ss emit line =
  match parse_request ~inject_faults:srv.cfg.t_inject_faults line with
  | Q_blank -> ()
  | Q_bad d ->
      ss.ss_requests <- ss.ss_requests + 1;
      ss.ss_errors <- ss.ss_errors + 1;
      emit (Server.error_record ~path:"<request>" [ d ])
  | Q_shutdown mode ->
      request_shutdown srv mode;
      emit (ctl_ack_json (match mode with `Drain -> "drain" | `Abort -> "abort"))
  | Q_poison { q_poison = p; q_id; q_deadline_s } ->
      ss.ss_requests <- ss.ss_requests + 1;
      let label = poison_name p in
      submit_and_emit srv ~client ss emit ~id:q_id ~deadline_s:q_deadline_s
        { p_epoch = Unix.gettimeofday (); p_label = label; p_work = `Poison p }
  | Q_delta { q_source; q_base; q_id; q_deadline_s } -> (
      ss.ss_requests <- ss.ss_requests + 1;
      match delta_request_of ~source:q_source ~base:q_base with
      | Error d ->
          ss.ss_errors <- ss.ss_errors + 1;
          let path =
            match q_source with `Path p -> p | `Text _ -> "<inline>"
          in
          emit (Server.error_record ?id:q_id ~path [ d ])
      | Ok req ->
          submit_and_emit srv ~client ss emit ~id:q_id ~deadline_s:q_deadline_s
            {
              p_epoch = Unix.gettimeofday ();
              p_label = req.Server.dq_path;
              p_work = `Delta req;
            })
  | Q_compile { q_source; q_id; q_deadline_s } -> (
      ss.ss_requests <- ss.ss_requests + 1;
      let job =
        match q_source with
        | `Path path -> Server.job_of_file ~index:0 path
        | `Text text -> Ok (Server.job_of_text ~index:0 ~path:"<inline>" text)
      in
      match job with
      | Error d ->
          ss.ss_errors <- ss.ss_errors + 1;
          let path =
            match q_source with `Path p -> p | `Text _ -> "<inline>"
          in
          emit (Server.error_record ?id:q_id ~path [ d ])
      | Ok job ->
          submit_and_emit srv ~client ss emit ~id:q_id ~deadline_s:q_deadline_s
            {
              p_epoch = Unix.gettimeofday ();
              p_label = job.Server.j_path;
              p_work = `Job job;
            })

let session_main srv ~client fd =
  let t0 = Unix.gettimeofday () in
  let ss = { ss_requests = 0; ss_ok = 0; ss_errors = 0 } in
  let emit line = write_all fd (line ^ "\n") in
  let carry = ref "" in
  let chunk = Bytes.create 8192 in
  let lines = Queue.create () in
  let eof = ref false in
  (* Split completed frames out of [carry]; enforce the frame cap on the
     unterminated tail. *)
  let absorb data =
    let s = !carry ^ data in
    let n = String.length s in
    let start = ref 0 in
    (try
       while true do
         let i = String.index_from s !start '\n' in
         Queue.add (String.sub s !start (i - !start)) lines;
         start := i + 1
       done
     with Not_found -> ());
    carry := String.sub s !start (n - !start);
    if String.length !carry > srv.cfg.t_max_frame then begin
      locked srv (fun () -> incr srv.n_frame_errors);
      ss.ss_requests <- ss.ss_requests + 1;
      ss.ss_errors <- ss.ss_errors + 1;
      emit
        (Server.error_record ~path:"<request>"
           [
             Diag.error Diag.E_PARSE
               "request frame exceeds %d bytes without a newline; closing \
                connection"
               srv.cfg.t_max_frame;
           ]);
      raise Disconnect
    end
  in
  (try
     let rec loop () =
       match Queue.take_opt lines with
       | Some line ->
           handle_request srv ~client ss emit line;
           loop ()
       | None ->
           if !eof then begin
             (* A truncated final frame (no newline before EOF) is still a
                request, same as the stdin loop's last line. *)
             if !carry <> "" then begin
               let line = !carry in
               carry := "";
               handle_request srv ~client ss emit line
             end
           end
           else if srv.stop_sessions then ()
           else begin
             (match Unix.select [ fd ] [] [] 0.05 with
             | [], _, _ -> ()
             | _ -> (
                 match Unix.read fd chunk 0 (Bytes.length chunk) with
                 | 0 -> eof := true
                 | n -> absorb (Bytes.sub_string chunk 0 n)
                 | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) ->
                     raise Disconnect));
             loop ()
           end
     in
     loop ();
     emit (conn_summary_json ss (Unix.gettimeofday () -. t0))
   with
  | Disconnect -> locked srv (fun () -> incr srv.n_disconnects)
  | Unix.Unix_error _ -> locked srv (fun () -> incr srv.n_disconnects));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- Accept loop / janitor. ---- *)

let accept_loop srv =
  while not srv.stop_accept do
    match Unix.select [ srv.listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept srv.listen_fd with
        | fd, _ ->
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
             with Unix.Unix_error _ -> ());
            (* The connection ordinal doubles as the session's fairness
               lane in the dispatcher (ids start at 1; lane 0 is the
               anonymous default). *)
            let client =
              locked srv (fun () ->
                  incr srv.n_conns;
                  !(srv.n_conns))
            in
            let th = Thread.create (fun fd -> session_main srv ~client fd) fd in
            locked srv (fun () -> srv.sessions <- th :: srv.sessions)
        | exception Unix.Unix_error _ -> ())
  done

let run_gc srv =
  match (srv.cfg.t_cache_max_bytes, srv.cfg.t_settings.Server.s_cache_dir) with
  | Some max_bytes, Some dir ->
      let r = Cache.gc ~dir ~max_bytes in
      if r.Cache.gc_evicted > 0 then
        locked srv (fun () ->
            srv.n_evicted := !(srv.n_evicted) + r.Cache.gc_evicted)
  | _ -> ()

let janitor_loop srv =
  let next = ref (Unix.gettimeofday () +. srv.cfg.t_gc_interval_s) in
  while not srv.stop_accept do
    Thread.delay 0.05;
    if Unix.gettimeofday () >= !next then begin
      run_gc srv;
      next := Unix.gettimeofday () +. srv.cfg.t_gc_interval_s
    end
  done

(* ---- Lifecycle. ---- *)

let listen_socket address =
  match address with
  | Unix_path path ->
      (* A stale socket file from a dead server would make bind fail;
         refuse to clobber anything that is not a socket. *)
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ ->
          Diag.fail Diag.E_UNSUPPORTED
            "listen path %s exists and is not a socket" path
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp (host, p)
        | _ -> address
      in
      (fd, bound)

let start ?sink cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match cfg.t_settings.Server.s_cache_dir with
  | Some dir -> Cache.ensure_dir dir
  | None -> ());
  let listen_fd, bound = listen_socket cfg.t_address in
  let lock = Mutex.create () in
  let n_conns = ref 0
  and n_disconnects = ref 0
  and n_frame_errors = ref 0
  and n_evicted = ref 0 in
  let probe cell () =
    Mutex.lock lock;
    let v = float_of_int !cell in
    Mutex.unlock lock;
    v
  in
  let disp =
    Dispatch.create ?sink
      ~gauges:
        [
          ("server.cache_evictions", probe n_evicted);
          ("server.connections", probe n_conns);
          ("server.disconnects", probe n_disconnects);
          ("server.frame_errors", probe n_frame_errors);
        ]
      cfg.t_dispatch
      (run_payload cfg.t_settings)
  in
  let srv =
    {
      cfg;
      listen_fd;
      bound;
      disp;
      lock;
      sessions = [];
      n_conns;
      n_disconnects;
      n_frame_errors;
      n_evicted;
      shutdown = None;
      stop_accept = false;
      stop_sessions = false;
      accept_thread = None;
      janitor = None;
      t_start = Unix.gettimeofday ();
    }
  in
  run_gc srv;
  srv.accept_thread <- Some (Thread.create accept_loop srv);
  srv.janitor <- Some (Thread.create janitor_loop srv);
  srv

type summary = {
  sm_counters : Dispatch.counters;
  sm_connections : int;
  sm_disconnects : int;
  sm_frame_errors : int;
  sm_evictions : int;
  sm_wall_s : float;
  sm_clean : bool;
}

let summary_json s =
  let module J = Diag.Json in
  let c = s.sm_counters in
  let b = Buffer.create 256 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-serve-summary-1");
  J.field b ~first "submitted" (string_of_int c.Dispatch.c_submitted);
  J.field b ~first "completed" (string_of_int c.Dispatch.c_completed);
  J.field b ~first "rejected" (string_of_int c.Dispatch.c_rejected);
  J.field b ~first "timed_out" (string_of_int c.Dispatch.c_timed_out);
  J.field b ~first "crashed" (string_of_int c.Dispatch.c_crashed);
  J.field b ~first "late_results" (string_of_int c.Dispatch.c_late);
  J.field b ~first "workers_reaped" (string_of_int c.Dispatch.c_reaped);
  J.field b ~first "workers_replaced" (string_of_int c.Dispatch.c_replaced);
  J.field b ~first "peak_queue_depth" (string_of_int c.Dispatch.c_peak_queue_depth);
  J.field b ~first "peak_inflight" (string_of_int c.Dispatch.c_peak_inflight);
  J.field b ~first "connections" (string_of_int s.sm_connections);
  J.field b ~first "disconnects" (string_of_int s.sm_disconnects);
  J.field b ~first "frame_errors" (string_of_int s.sm_frame_errors);
  J.field b ~first "cache_evictions" (string_of_int s.sm_evictions);
  J.field b ~first "wall_s" (Printf.sprintf "%.6f" s.sm_wall_s);
  J.field b ~first "drain"
    (J.string (if s.sm_clean then "clean" else "forced"));
  Buffer.add_char b '}';
  Buffer.contents b

let shutdown_requested srv = locked srv (fun () -> srv.shutdown)

let wait srv =
  (* Sit until someone asks for shutdown: a signal handler via
     {!request_shutdown}, or a client's {"op":"shutdown"}. *)
  let rec poll () =
    match shutdown_requested srv with
    | Some mode -> mode
    | None ->
        Thread.delay 0.05;
        poll ()
  in
  let mode = poll () in
  srv.stop_accept <- true;
  (* While a graceful drain runs, keep watching for escalation to abort
     (second SIGTERM / SIGINT): Dispatch.abort is safe to fire
     concurrently with the drain in progress and unsticks it. *)
  let drain_done = ref false in
  let escalated = ref false in
  let watcher =
    Thread.create
      (fun () ->
        while not !drain_done do
          Thread.delay 0.02;
          if
            mode = `Drain
            && (not !escalated)
            && shutdown_requested srv = Some `Abort
          then begin
            escalated := true;
            ignore (Dispatch.abort ~timeout_s:srv.cfg.t_abort_timeout_s srv.disp)
          end
        done)
      ()
  in
  let clean =
    match mode with
    | `Drain -> Dispatch.drain ~timeout_s:srv.cfg.t_drain_timeout_s srv.disp
    | `Abort -> Dispatch.abort ~timeout_s:srv.cfg.t_abort_timeout_s srv.disp
  in
  drain_done := true;
  Thread.join watcher;
  (* Every in-flight submit has now been answered; release the sessions
     (they flush their connection summaries and close) and the accept /
     janitor threads. *)
  srv.stop_sessions <- true;
  (match srv.accept_thread with Some t -> Thread.join t | None -> ());
  (match srv.janitor with Some t -> Thread.join t | None -> ());
  List.iter Thread.join (locked srv (fun () -> srv.sessions));
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (match srv.bound with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  run_gc srv;
  let clean = clean && not !escalated in
  let counters = Dispatch.counters srv.disp in
  locked srv (fun () ->
      {
        sm_counters = counters;
        sm_connections = !(srv.n_conns);
        sm_disconnects = !(srv.n_disconnects);
        sm_frame_errors = !(srv.n_frame_errors);
        sm_evictions = !(srv.n_evicted);
        sm_wall_s = Unix.gettimeofday () -. srv.t_start;
        sm_clean = clean;
      })
