(* Batch compilation server: many designs through the resilient driver,
   concurrently, with nothing shared between in-flight jobs.

   Every job gets an explicit per-job context ([job_ctx]): its own copy of
   the compile options carrying a job-private observability sink, its own
   diagnostic report, and its own reroute context (possibly deserialized
   warm from the on-disk cache).  The pipeline passes reachable from
   [Compile.compile] hold no module-level mutable state (audit in
   docs/SERVER.md), so two jobs never race — which is what makes the
   jobs=N output byte-identical to jobs=1.

   Timing and observability are kept out of the per-design NDJSON records
   (they go to the summary line and the server sink instead), so the
   per-design output is a pure function of (design text, settings, cache
   state). *)

module Compile = Msched.Compile
module Reroute = Msched_route.Reroute
module Tiers = Msched_route.Tiers
module Serial = Msched_netlist.Serial
module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag

type job = {
  j_index : int;  (** Position in the batch; results merge in this order. *)
  j_path : string;  (** Display name (file path, or synthetic label). *)
  j_text : string;  (** Netlist text, parsed inside the worker. *)
}

type settings = {
  s_options : Compile.options;
      (** Template; each job runs with a private copy (its own sink). *)
  s_max_retries : int;
  s_fallback_hard : bool;
  s_reuse : bool;  (** Warm rerouting across retry rungs (--cold unsets). *)
  s_cache_dir : string option;  (** Process-spanning warm-route cache. *)
  s_obs_jobs : bool;
      (** Give each job an enabled sink and merge its counters into the
          server totals (on for --trace; off keeps probes free). *)
}

let default_settings =
  {
    s_options = Compile.default_options;
    s_max_retries = 3;
    s_fallback_hard = false;
    s_reuse = true;
    s_cache_dir = None;
    s_obs_jobs = false;
  }

type cache_status = Cache_off | Cache_cold | Cache_warm | Cache_corrupt

let cache_status_name = function
  | Cache_off -> "off"
  | Cache_cold -> "cold"
  | Cache_warm -> "warm"
  | Cache_corrupt -> "corrupt"

(* The per-job context record: everything mutable a job touches, owned by
   that job alone. *)
type job_ctx = {
  ctx_job : job;
  ctx_options : Compile.options;  (** With this job's private sink. *)
  ctx_obs : Sink.t;
  ctx_reroute : Reroute.t;  (** Warm-loaded from cache, or fresh. *)
  ctx_cache : cache_status;
  ctx_key : string;  (** Content-hash cache key ("" when cache off). *)
  ctx_report : Diag.Report.t;  (** Front-end / cache diagnostics. *)
}

type job_result = {
  r_job : job;
  r_key : string;
  r_cache : cache_status;
  r_resilient : Compile.resilient option;
      (** [None] when the design text did not parse. *)
  r_diags : Diag.t list;  (** Front-end / cache diagnostics. *)
  r_exit : int;  (** The job's documented exit class (0 on success). *)
  r_queue_s : float;  (** Batch start to job start. *)
  r_wall_s : float;
  r_counters : (string * int) list;  (** Job-sink counters (s_obs_jobs). *)
}

let make_ctx settings job =
  let obs = if settings.s_obs_jobs then Sink.create () else Sink.null in
  let options = { settings.s_options with Compile.obs } in
  let report = Diag.Report.create () in
  let key, cache, reroute =
    match settings.s_cache_dir with
    | None -> ("", Cache_off, Reroute.create ())
    | Some dir -> (
        let key = Cache.key ~text:job.j_text ~options in
        match Cache.load ~dir ~key with
        | Cache.Hit ctx -> (key, Cache_warm, ctx)
        | Cache.Miss -> (key, Cache_cold, Reroute.create ())
        | Cache.Corrupt d ->
            Diag.Report.add report d;
            (key, Cache_corrupt, Reroute.create ()))
  in
  {
    ctx_job = job;
    ctx_options = options;
    ctx_obs = obs;
    ctx_reroute = reroute;
    ctx_cache = cache;
    ctx_key = key;
    ctx_report = report;
  }

let run_job settings ~epoch job =
  let t0 = Unix.gettimeofday () in
  let ctx = make_ctx settings job in
  let resilient, exit_code =
    match Serial.of_string_diag job.j_text with
    | Error diags ->
        Diag.Report.add_list ctx.ctx_report diags;
        (None, Diag.Report.exit_code ctx.ctx_report)
    | Ok nl ->
        let r =
          Compile.compile_resilient ~options:ctx.ctx_options
            ~max_retries:settings.s_max_retries
            ~fallback_hard:settings.s_fallback_hard ~reuse:settings.s_reuse
            ~reroute:ctx.ctx_reroute nl
        in
        (match (settings.s_cache_dir, Compile.succeeded r) with
        | Some dir, true -> (
            match Cache.store ~dir ~key:ctx.ctx_key ctx.ctx_reroute with
            | Ok () -> ()
            | Error d -> Diag.Report.add ctx.ctx_report d)
        | _ -> ());
        (Some r, Compile.resilient_exit_code r)
  in
  let t1 = Unix.gettimeofday () in
  {
    r_job = job;
    r_key = ctx.ctx_key;
    r_cache = ctx.ctx_cache;
    r_resilient = resilient;
    r_diags = Diag.Report.to_list ctx.ctx_report;
    r_exit = exit_code;
    r_queue_s = t0 -. epoch;
    r_wall_s = t1 -. t0;
    r_counters = Sink.counters ctx.ctx_obs;
  }

(* ---- Delta jobs ({"op":"delta"}): compile against a cached base
   manifest (docs/DELTA.md), replaying every transport the edit provably
   did not touch.  The updated manifest is stored back under the design's
   own content key, which the response announces — a client threads that
   key into its next edit's request to stay warm across the whole
   edit-compile-check loop. *)

module Schedule = Msched_route.Schedule

type base_status =
  | Base_none  (** No base requested: cold base compile. *)
  | Base_warm of int  (** Manifest loaded; [n] block slices missing. *)
  | Base_miss  (** Key given, no manifest under it (evicted or never stored). *)
  | Base_corrupt  (** Header failed its checksum; E_CACHE diag carried. *)
  | Base_off  (** Base requested but the server runs without --cache-dir. *)

let base_status_name = function
  | Base_none -> "none"
  | Base_warm _ -> "warm"
  | Base_miss -> "miss"
  | Base_corrupt -> "corrupt"
  | Base_off -> "off"

type delta_request = {
  dq_path : string;  (** Display name. *)
  dq_text : string;  (** Netlist text of the {e edited} design. *)
  dq_base : string option;  (** Manifest key from a previous response. *)
}

type delta_outcome = {
  do_blocks_clean : int;
  do_blocks_dirty : int;
  do_cone : int;
  do_reused : int;
  do_ripped : int;
  do_fresh : int;
  do_expansions : int;  (** Pathfinder states popped — the warm cost. *)
  do_reuse_fraction : float;
  do_cold_fallback : bool;
      (** A base was loaded but the compile fell cold (foreign options
          fingerprint or block-count mismatch). *)
  do_schedule_fp : string;
      (** Content hash of the schedule JSON: equal fp = byte-identical
          schedule, the warm≡cold witness a client can assert. *)
  do_length : int;
  do_est_speed_hz : float;
}

type delta_result = {
  dr_request : delta_request;
  dr_key : string;  (** Manifest key for this design ([""] cache off). *)
  dr_base : base_status;
  dr_outcome : delta_outcome option;  (** [None]: parse/compile failure. *)
  dr_diags : Diag.t list;
  dr_exit : int;
}

let run_delta settings req =
  let report = Diag.Report.create () in
  let options = { settings.s_options with Compile.obs = Sink.null } in
  let key =
    match settings.s_cache_dir with
    | None -> ""
    | Some _ -> Cache.key ~text:req.dq_text ~options
  in
  let fail base =
    {
      dr_request = req;
      dr_key = key;
      dr_base = base;
      dr_outcome = None;
      dr_diags = Diag.Report.to_list report;
      dr_exit = Diag.Report.exit_code report;
    }
  in
  let base, manifest =
    match (req.dq_base, settings.s_cache_dir) with
    | None, _ -> (Base_none, None)
    | Some _, None -> (Base_off, None)
    | Some bkey, Some dir -> (
        match Cache.load_manifest ~dir ~key:bkey with
        | Cache.M_miss -> (Base_miss, None)
        | Cache.M_corrupt d ->
            Diag.Report.add report d;
            (Base_corrupt, None)
        | Cache.M_hit (m, missing) -> (Base_warm missing, Some m))
  in
  match Serial.of_string_diag req.dq_text with
  | Error diags ->
      Diag.Report.add_list report diags;
      fail base
  | Ok nl -> (
      match
        match manifest with
        | Some m ->
            let d = Compile.compile_delta ~options ~manifest:m nl in
            ( d.Compile.delta_compiled,
              d.Compile.delta_manifest,
              Some d )
        | None ->
            let b = Compile.compile_base ~options nl in
            (b.Compile.base_compiled, b.Compile.base_manifest, None)
      with
      | exception e ->
          Diag.Report.add report (Compile.diag_of_exn e);
          fail base
      | compiled, manifest', delta ->
          (match settings.s_cache_dir with
          | Some dir -> (
              match Cache.store_manifest ~dir ~key manifest' with
              | Ok () -> ()
              | Error d -> Diag.Report.add report d)
          | None -> ());
          let sched = compiled.Compile.schedule in
          let outcome =
            match delta with
            | Some d ->
                {
                  do_blocks_clean =
                    (match d.Compile.delta_diff with
                    | Some diff -> Msched_delta.Diff.clean_count diff
                    | None -> 0);
                  do_blocks_dirty =
                    (match d.Compile.delta_diff with
                    | Some diff -> Msched_delta.Diff.dirty_count diff
                    | None -> 0);
                  do_cone =
                    (match d.Compile.delta_diff with
                    | Some diff -> Msched_delta.Diff.cone_size diff
                    | None -> 0);
                  do_reused = d.Compile.delta_reused;
                  do_ripped = d.Compile.delta_ripped;
                  do_fresh = d.Compile.delta_fresh;
                  do_expansions = d.Compile.delta_expansions;
                  do_reuse_fraction = Compile.delta_reuse_fraction d;
                  do_cold_fallback = d.Compile.delta_diff = None;
                  do_schedule_fp =
                    Cache.hash_hex (Schedule.to_json_string sched);
                  do_length = sched.Schedule.length;
                  do_est_speed_hz = Schedule.est_speed_hz sched;
                }
            | None ->
                {
                  do_blocks_clean = 0;
                  do_blocks_dirty = 0;
                  do_cone = 0;
                  do_reused = 0;
                  do_ripped = 0;
                  (* A base compile routes everything fresh; the manifest's
                     ledger is the count of transports it proved. *)
                  do_fresh =
                    List.length
                      manifest'.Msched_delta.Manifest.entries;
                  do_expansions = 0;
                  do_reuse_fraction = 0.0;
                  do_cold_fallback = false;
                  do_schedule_fp =
                    Cache.hash_hex (Schedule.to_json_string sched);
                  do_length = sched.Schedule.length;
                  do_est_speed_hz = Schedule.est_speed_hz sched;
                }
          in
          {
            dr_request = req;
            dr_key = key;
            dr_base = base;
            dr_outcome = Some outcome;
            dr_diags = Diag.Report.to_list report;
            dr_exit = Diag.Report.exit_code report;
          })

let delta_record_json r =
  let module J = Diag.Json in
  let b = Buffer.create 1024 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-delta-1");
  J.field b ~first "design" (J.string r.dr_request.dq_path);
  if r.dr_key <> "" then J.field b ~first "key" (J.string r.dr_key);
  J.field b ~first "base" (J.string (base_status_name r.dr_base));
  (match r.dr_base with
  | Base_warm missing ->
      J.field b ~first "base_missing_blocks" (string_of_int missing)
  | _ -> ());
  J.field b ~first "exit_code" (string_of_int r.dr_exit);
  let diags = Buffer.create 256 in
  let rep = Diag.Report.create () in
  Diag.Report.add_list rep r.dr_diags;
  Diag.Report.to_json_buf diags rep;
  J.field b ~first "diagnostics" (Buffer.contents diags);
  J.field b ~first "delta"
    (match r.dr_outcome with
    | None -> "null"
    | Some o ->
        let db = Buffer.create 512 in
        let df = ref true in
        Buffer.add_char db '{';
        J.field db ~first:df "blocks_clean" (string_of_int o.do_blocks_clean);
        J.field db ~first:df "blocks_dirty" (string_of_int o.do_blocks_dirty);
        J.field db ~first:df "cone" (string_of_int o.do_cone);
        J.field db ~first:df "reused" (string_of_int o.do_reused);
        J.field db ~first:df "ripped" (string_of_int o.do_ripped);
        J.field db ~first:df "fresh" (string_of_int o.do_fresh);
        J.field db ~first:df "expansions" (string_of_int o.do_expansions);
        J.field db ~first:df "reuse_fraction"
          (Printf.sprintf "%.6g" o.do_reuse_fraction);
        J.field db ~first:df "cold_fallback"
          (string_of_bool o.do_cold_fallback);
        J.field db ~first:df "schedule_fp" (J.string o.do_schedule_fp);
        J.field db ~first:df "length" (string_of_int o.do_length);
        J.field db ~first:df "est_speed_hz"
          (Printf.sprintf "%.6g" o.do_est_speed_hz);
        Buffer.add_char db '}';
        Buffer.contents db);
  Buffer.add_char b '}';
  Buffer.contents b

type batch_result = {
  b_results : job_result array;  (** In job order, always. *)
  b_jobs : int;  (** Worker count actually used. *)
  b_max_inflight : int;
  b_queue_peak : int;
  b_wall_s : float;
}

let run_batch ?(jobs = 1) settings job_list =
  (match settings.s_cache_dir with
  | Some dir -> Cache.ensure_dir dir
  | None -> ());
  let tasks = Array.of_list job_list in
  let jobs = max 1 (min jobs (max 1 (Array.length tasks))) in
  let epoch = Unix.gettimeofday () in
  let results, stats = Pool.map ~jobs (run_job settings ~epoch) tasks in
  let wall = Unix.gettimeofday () -. epoch in
  {
    b_results = results;
    b_jobs = jobs;
    b_max_inflight = stats.Pool.max_inflight;
    (* Every task beyond the worker count starts its life queued. *)
    b_queue_peak = max 0 (Array.length tasks - jobs);
    b_wall_s = wall;
  }

(* ---- Job construction. ---- *)

let job_of_text ~index ~path text = { j_index = index; j_path = path; j_text = text }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let job_of_file ~index path =
  match read_file path with
  | text -> Ok (job_of_text ~index ~path text)
  | exception Sys_error msg ->
      Error (Diag.error Diag.E_PARSE "%s: %s" path msg)

(* ---- NDJSON emission (schemas msched-batch-1 / msched-batch-summary-1).

   The per-design record is deterministic: no wall-clock fields, job
   order fixed by j_index.  Timing lives in the summary line only. *)

let record_json r =
  let module J = Diag.Json in
  let b = Buffer.create 1024 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-batch-1");
  J.field b ~first "design" (J.string r.r_job.j_path);
  if r.r_key <> "" then J.field b ~first "key" (J.string r.r_key);
  J.field b ~first "cache" (J.string (cache_status_name r.r_cache));
  J.field b ~first "exit_code" (string_of_int r.r_exit);
  let diags = Buffer.create 256 in
  let rep = Diag.Report.create () in
  Diag.Report.add_list rep r.r_diags;
  Diag.Report.to_json_buf diags rep;
  J.field b ~first "diagnostics" (Buffer.contents diags);
  J.field b ~first "result"
    (match r.r_resilient with
    | None -> "null"
    | Some r -> Compile.resilient_to_json r);
  Buffer.add_char b '}';
  Buffer.contents b

let ok_degraded_failed batch =
  Array.fold_left
    (fun (ok, degraded, failed) r ->
      match r.r_resilient with
      | Some res when Compile.succeeded res ->
          if Compile.degraded res then (ok, degraded + 1, failed)
          else (ok + 1, degraded, failed)
      | _ -> (ok, degraded, failed + 1))
    (0, 0, 0) batch.b_results

let count_cache batch status =
  Array.fold_left
    (fun n r -> if r.r_cache = status then n + 1 else n)
    0 batch.b_results

let summary_json batch =
  let module J = Diag.Json in
  let ok, degraded, failed = ok_degraded_failed batch in
  let n = Array.length batch.b_results in
  let b = Buffer.create 512 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-batch-summary-1");
  J.field b ~first "designs" (string_of_int n);
  J.field b ~first "ok" (string_of_int ok);
  J.field b ~first "degraded" (string_of_int degraded);
  J.field b ~first "failed" (string_of_int failed);
  J.field b ~first "jobs" (string_of_int batch.b_jobs);
  J.field b ~first "max_inflight" (string_of_int batch.b_max_inflight);
  J.field b ~first "queue_depth_peak" (string_of_int batch.b_queue_peak);
  let cb = Buffer.create 128 in
  let cf = ref true in
  Buffer.add_char cb '{';
  List.iter
    (fun s ->
      J.field cb ~first:cf (cache_status_name s)
        (string_of_int (count_cache batch s)))
    [ Cache_off; Cache_cold; Cache_warm; Cache_corrupt ];
  Buffer.add_char cb '}';
  J.field b ~first "cache" (Buffer.contents cb);
  J.field b ~first "wall_s" (Printf.sprintf "%.6f" batch.b_wall_s);
  J.field b ~first "designs_per_s"
    (Printf.sprintf "%.6g"
       (if batch.b_wall_s > 0.0 then float_of_int n /. batch.b_wall_s
        else 0.0));
  Buffer.add_char b '}';
  Buffer.contents b

let to_ndjson batch =
  let b = Buffer.create 4096 in
  Array.iter
    (fun r ->
      Buffer.add_string b (record_json r);
      Buffer.add_char b '\n')
    batch.b_results;
  Buffer.add_string b (summary_json batch);
  Buffer.add_char b '\n';
  Buffer.contents b

(* Batch exit class: 0 when every job compiled (degraded counts as
   success, matching the single-design driver), else the class of the
   first failing job — deterministic because results are in job order. *)
let exit_code batch =
  Array.fold_left
    (fun acc r -> if acc <> 0 then acc else r.r_exit)
    0 batch.b_results

(* ---- Deterministic merges (job order) onto a main-domain sink. ---- *)

let merged_counters batch =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      List.iter
        (fun (name, v) ->
          Hashtbl.replace tbl name
            (v + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
        r.r_counters)
    batch.b_results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merged_diagnostics batch =
  Array.fold_left
    (fun acc r ->
      let own =
        match r.r_resilient with None -> [] | Some res -> res.Compile.diagnostics
      in
      acc @ r.r_diags @ own)
    [] batch.b_results

let record_obs obs batch =
  if Sink.enabled obs then begin
    Sink.gauge obs "server.jobs_inflight_max"
      (float_of_int batch.b_max_inflight);
    Sink.gauge obs "server.workers" (float_of_int batch.b_jobs);
    Sink.gauge obs "server.queue_depth_peak" (float_of_int batch.b_queue_peak);
    Array.iter
      (fun r ->
        Sink.incr obs "server.jobs";
        Sink.incr obs ("server.cache." ^ cache_status_name r.r_cache);
        (if r.r_exit <> 0 then Sink.incr obs "server.jobs_failed");
        Sink.observe obs "server.queue_wait_us"
          (int_of_float (r.r_queue_s *. 1e6));
        Sink.observe obs "server.job_wall_us"
          (int_of_float (r.r_wall_s *. 1e6)))
      batch.b_results;
    List.iter (fun (name, v) -> Sink.add obs name v) (merged_counters batch)
  end

(* ---- Long-lived serve loop: NDJSON requests on stdin, one record per
   response line, summary at EOF.  Jobs run sequentially in request order
   (the process-spanning cache still makes repeat designs warm). ---- *)

let parse_request ~lineno line =
  let module J = Diag.Json in
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else if line.[0] <> '{' then Ok (Some (line, None))
  else
    match J.parse line with
    | Error msg ->
        Error (Diag.error Diag.E_PARSE "request line %d: %s" lineno msg)
    | Ok doc -> (
        let id = Option.bind (J.mem "id" doc) J.str in
        match Option.bind (J.mem "path" doc) J.str with
        | Some path -> Ok (Some (path, id))
        | None ->
            Error
              (Diag.error Diag.E_PARSE
                 "request line %d: missing \"path\" member" lineno))

let with_id id json =
  match id with
  | None -> json
  | Some id ->
      (* Splice {"id":...} in front of the record's first member. *)
      Printf.sprintf "{\"id\":%s,%s"
        (Diag.Json.string id)
        (String.sub json 1 (String.length json - 1))

let error_record ?id ~path diags =
  let module J = Diag.Json in
  let b = Buffer.create 256 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-batch-1");
  J.field b ~first "design" (J.string path);
  J.field b ~first "cache" (J.string "off");
  J.field b ~first "exit_code"
    (string_of_int
       (let rep = Diag.Report.create () in
        Diag.Report.add_list rep diags;
        Diag.Report.exit_code rep));
  let diags_buf = Buffer.create 128 in
  let rep = Diag.Report.create () in
  Diag.Report.add_list rep diags;
  Diag.Report.to_json_buf diags_buf rep;
  J.field b ~first "diagnostics" (Buffer.contents diags_buf);
  J.field b ~first "result" "null";
  Buffer.add_char b '}';
  with_id id (Buffer.contents b)

let serve settings ic oc =
  (match settings.s_cache_dir with
  | Some dir -> Cache.ensure_dir dir
  | None -> ());
  let results = ref [] in
  let t0 = Unix.gettimeofday () in
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop lineno =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        (match parse_request ~lineno line with
        | Ok None -> ()
        | Error d -> emit (error_record ~path:"<request>" [ d ])
        | Ok (Some (path, id)) -> (
            let epoch = Unix.gettimeofday () in
            match job_of_file ~index:(List.length !results) path with
            | Error d -> emit (error_record ?id ~path [ d ])
            | Ok job ->
                let r = run_job settings ~epoch job in
                results := r :: !results;
                emit (with_id id (record_json r))));
        loop (lineno + 1)
  in
  loop 1;
  let batch =
    {
      b_results = Array.of_list (List.rev !results);
      b_jobs = 1;
      b_max_inflight = 1;
      b_queue_peak = 0;
      b_wall_s = Unix.gettimeofday () -. t0;
    }
  in
  emit (summary_json batch)
