(* Concurrent request dispatcher: the engine behind `msched serve`'s
   socket front end.  Session threads submit jobs into a bounded queue;
   a fixed set of worker domains drain it; a monitor thread watches the
   workers and is the sole writer of the observability sink.

   The failure semantics are the point (docs/SERVER.md has the state
   machine):

   - Backpressure: the queue is bounded.  When full, [Shed] answers
     E_OVERLOAD immediately; [Block] makes the submitter wait for space
     (still subject to its deadline).

   - Deadlines: every submit can carry one.  A request that expires while
     QUEUED is cancelled — no worker ever sees it.  One that expires while
     RUNNING is abandoned: the submitter gets E_TIMEOUT now, the worker
     keeps going (OCaml domains cannot be killed), and if it is still stuck
     after a grace period the monitor replaces the worker so capacity
     recovers.  A late result from an abandoned job is counted and dropped.

   - Crashes: a worker whose [run] raises answers the in-flight job with an
     E_INTERNAL diagnostic and lets its domain die.  The monitor reaps the
     dead domain and spawns a replacement, so one poisoned request never
     costs a worker slot.

   - Fairness: tickets queue into per-client lanes drained round-robin,
     so a client that floods the queue cannot starve the others — each
     admitted client gets one job per rotation regardless of how deep its
     own lane is.  The bound and the overload policy still apply to the
     queue as a whole (a flooder fills it and sheds {e itself} first,
     since its lane holds almost all of the queued tickets).

   - Shutdown: [drain] stops accepting, finishes everything queued and
     running, then joins the workers.  [abort] stops accepting, answers
     queued requests with E_OVERLOAD, raises the [stopping] flag that
     cooperative jobs may poll, and joins whatever exits within the
     timeout.  Workers that refuse to finish are leaked to process exit —
     never waited on forever.

   Locking: one mutex guards the queue, tickets, worker table and
   counters.  Workers block on a condition variable for work; submitters
   poll their ticket's result cell (OCaml has no timed condition wait, and
   1 ms polling granularity is far below compile latency). *)

module Diag = Msched_diag.Diag
module Sink = Msched_obs.Sink

type overload = Shed | Block

let overload_name = function Shed -> "shed" | Block -> "block"

type 'res outcome =
  | Done of 'res
  | Rejected of Diag.t
  | Timed_out of Diag.t
  | Crashed of Diag.t

type config = {
  d_workers : int;
  d_queue_max : int;
  d_overload : overload;
  d_deadline_s : float option;
  d_grace_s : float;
}

let default_config =
  {
    d_workers = 2;
    d_queue_max = 64;
    d_overload = Shed;
    d_deadline_s = None;
    d_grace_s = 1.0;
  }

type ticket_state =
  | Queued
  | Running of int  (** Worker slot executing it. *)
  | Finished
  | Cancelled  (** Deadline expired while queued; workers skip it. *)
  | Abandoned of float
      (** Deadline expired while running; the time the submitter gave up. *)

type ('job, 'res) ticket = {
  k_id : int;
  k_client : int;  (** Fairness lane (connection id; 0 = anonymous). *)
  k_job : 'job;
  mutable k_state : ticket_state;
  mutable k_cell : 'res outcome option;
}

type ('job, 'res) worker = {
  w_slot : int;
  mutable w_dom : unit Domain.t option;
  mutable w_ticket : ('job, 'res) ticket option;
  mutable w_exited : bool;  (** Loop returned; the domain is joinable. *)
  mutable w_joined : bool;
      (** Claimed for joining (monitor and drain race; join is
          single-use). *)
}

type counters = {
  c_submitted : int;
  c_completed : int;
  c_rejected : int;
  c_timed_out : int;
  c_crashed : int;
  c_late : int;  (** Abandoned jobs that eventually finished anyway. *)
  c_reaped : int;  (** Dead (crashed) worker domains joined + replaced. *)
  c_replaced : int;  (** Hung workers written off after the grace period. *)
  c_queue_depth : int;
  c_inflight : int;
  c_peak_queue_depth : int;
  c_peak_inflight : int;
  c_peak_lanes : int;  (** Most distinct clients queued at once. *)
}

type ('job, 'res) t = {
  cfg : config;
  run : stopping:(unit -> bool) -> 'job -> 'res;
  lock : Mutex.t;
  cond : Condition.t;  (** Workers wait here for work. *)
  lanes : (int, ('job, 'res) ticket Queue.t) Hashtbl.t;
      (** Per-client FIFO lanes; a lane exists iff it is non-empty. *)
  rr : int Queue.t;
      (** Round-robin rotation: each client with a non-empty lane appears
          exactly once; popping a job sends the client to the tail. *)
  slots : ('job, 'res) worker option array;
  mutable zombies : ('job, 'res) worker list;
      (** Replaced hung workers, joined by the monitor if they ever exit. *)
  mutable accepting : bool;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable next_id : int;
  mutable q_live : int;  (** Queued tickets that are not cancelled. *)
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_rejected : int;
  mutable n_timed_out : int;
  mutable n_crashed : int;
  mutable n_late : int;
  mutable n_reaped : int;
  mutable n_replaced : int;
  mutable n_inflight : int;
  mutable peak_queue : int;
  mutable peak_inflight : int;
  mutable peak_lanes : int;
  sink : Sink.t option;
  extra_gauges : (string * (unit -> float)) list;
  mutable monitor : Thread.t option;
  mutable monitor_stop : bool;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- Worker loop (runs on its own domain). ---- *)

let current t w =
  match t.slots.(w.w_slot) with Some w' -> w' == w | None -> false

(* Pop the next live ticket round-robin across client lanes; cancelled
   (deadline) and pre-answered (abort) tickets are discarded.  Invariant:
   a client id sits in [rr] exactly once iff its lane is non-empty.  Lock
   held. *)
let rec pop_live t =
  match Queue.take_opt t.rr with
  | None -> None
  | Some client -> (
      match Hashtbl.find_opt t.lanes client with
      | None -> pop_live t
      | Some lane ->
          let rec next () =
            match Queue.take_opt lane with
            | None -> None
            | Some k -> ( match k.k_state with Queued -> Some k | _ -> next ())
          in
          let found = next () in
          if Queue.is_empty lane then Hashtbl.remove t.lanes client
          else Queue.add client t.rr;
          (match found with Some _ as s -> s | None -> pop_live t))

(* Append a ticket to its client's lane, creating the lane (and its
   rotation slot) on first use.  Lock held. *)
let push_lane t k =
  let lane =
    match Hashtbl.find_opt t.lanes k.k_client with
    | Some lane -> lane
    | None ->
        let lane = Queue.create () in
        Hashtbl.add t.lanes k.k_client lane;
        Queue.add k.k_client t.rr;
        let n = Hashtbl.length t.lanes in
        if n > t.peak_lanes then t.peak_lanes <- n;
        lane
  in
  Queue.add k lane

let take t w =
  locked t (fun () ->
      let rec go () =
        if (not (current t w)) || t.stopping then None
        else
          match pop_live t with
          | Some k ->
              k.k_state <- Running w.w_slot;
              t.q_live <- t.q_live - 1;
              w.w_ticket <- Some k;
              t.n_inflight <- t.n_inflight + 1;
              if t.n_inflight > t.peak_inflight then
                t.peak_inflight <- t.n_inflight;
              Some k
          | None ->
              if not t.accepting then None
              else begin
                Condition.wait t.cond t.lock;
                go ()
              end
      in
      go ())

let finish t w k outcome =
  locked t (fun () ->
      w.w_ticket <- None;
      t.n_inflight <- t.n_inflight - 1;
      match k.k_state with
      | Running _ ->
          k.k_state <- Finished;
          k.k_cell <- Some outcome;
          (match outcome with
          | Done _ -> t.n_completed <- t.n_completed + 1
          | Crashed _ -> t.n_crashed <- t.n_crashed + 1
          | Rejected _ | Timed_out _ -> ())
      | Abandoned _ | Finished | Queued | Cancelled ->
          (* The submitter was already answered (deadline abandonment, or
             shutdown settled the orphan); drop the late result but keep
             the evidence. *)
          t.n_late <- t.n_late + 1)

let rec worker_loop t w =
  match take t w with
  | None -> locked t (fun () -> w.w_exited <- true)
  | Some k -> (
      match t.run ~stopping:(fun () -> t.stopping) k.k_job with
      | res ->
          finish t w k (Done res);
          worker_loop t w
      | exception e ->
          (* The job poisoned this worker: answer it, then let the domain
             die — the monitor reaps and replaces. *)
          let diag =
            Diag.error Diag.E_INTERNAL
              "worker %d crashed while serving request %d: %s" w.w_slot k.k_id
              (Printexc.to_string e)
          in
          finish t w k (Crashed diag);
          locked t (fun () -> w.w_exited <- true))

(* Lock held by the caller. *)
let spawn_worker t slot =
  let w =
    {
      w_slot = slot;
      w_dom = None;
      w_ticket = None;
      w_exited = false;
      w_joined = false;
    }
  in
  t.slots.(slot) <- Some w;
  w.w_dom <- Some (Domain.spawn (fun () -> worker_loop t w))

(* Claim an exited worker for joining.  Lock held; [Domain.join] is
   single-use, and the monitor and [drain]/[abort] race to reap. *)
let claim w =
  if w.w_exited && not w.w_joined then begin
    w.w_joined <- true;
    true
  end
  else false

(* ---- Monitor (runs on a thread of the caller's domain). ---- *)

let sample_gauges t =
  match t.sink with
  | None -> ()
  | Some sink ->
      (* Snapshot under the lock, write to the (single-threaded) sink
         outside it: the monitor is the sink's only writer. *)
      let snap =
        locked t (fun () ->
            [
              ("server.queue_depth", float_of_int t.q_live);
              ("server.inflight", float_of_int t.n_inflight);
              ("server.peak_queue_depth", float_of_int t.peak_queue);
              ("server.peak_inflight", float_of_int t.peak_inflight);
              ("server.client_lanes", float_of_int (Hashtbl.length t.lanes));
              ("server.peak_client_lanes", float_of_int t.peak_lanes);
              ("server.timeouts", float_of_int t.n_timed_out);
              ("server.rejected", float_of_int t.n_rejected);
              ("server.crashes", float_of_int t.n_crashed);
              ("server.reaped", float_of_int t.n_reaped);
              ("server.replaced", float_of_int t.n_replaced);
              ("server.late_results", float_of_int t.n_late);
            ])
      in
      List.iter (fun (name, v) -> Sink.gauge sink name v) snap;
      List.iter (fun (name, probe) -> Sink.gauge sink name (probe ())) t.extra_gauges

let monitor_tick t =
  let now = Unix.gettimeofday () in
  let to_join =
    locked t (fun () ->
        let acc = ref [] in
        (* Reap crashed workers: their loop returned, so the join below is
           immediate; respawn into the same slot. *)
        Array.iteri
          (fun i wo ->
            match wo with
            | Some w when w.w_exited && current t w && not t.stopped ->
                (* An exited worker during normal operation means a crash
                   (drain/abort claims the clean exits itself). *)
                if (t.accepting || t.q_live > 0) && claim w then begin
                  t.n_reaped <- t.n_reaped + 1;
                  acc := w :: !acc;
                  spawn_worker t i
                end
            | _ -> ())
          t.slots;
        (* Replace workers hung past the grace period on an abandoned
           request: the old domain cannot be killed, so it is moved to the
           zombie list (joined if it ever exits) and a fresh worker takes
           the slot. *)
        Array.iteri
          (fun i wo ->
            match wo with
            | Some w when not w.w_exited -> (
                match w.w_ticket with
                | Some { k_state = Abandoned t0; _ }
                  when now -. t0 >= t.cfg.d_grace_s ->
                    t.n_replaced <- t.n_replaced + 1;
                    t.zombies <- w :: t.zombies;
                    spawn_worker t i
                | _ -> ())
            | _ -> ())
          t.slots;
        (* Zombies that eventually exited become joinable. *)
        let exited, still = List.partition claim t.zombies in
        t.zombies <- still;
        acc := exited @ !acc;
        !acc)
  in
  List.iter
    (fun w -> match w.w_dom with Some d -> Domain.join d | None -> ())
    to_join;
  sample_gauges t

let monitor_loop t =
  while not t.monitor_stop do
    Thread.delay 0.01;
    monitor_tick t
  done;
  (* Final sample so post-shutdown counters reach the sink. *)
  sample_gauges t

(* ---- Public API. ---- *)

let create ?sink ?(gauges = []) cfg run =
  let cfg = { cfg with d_workers = max 1 cfg.d_workers } in
  let t =
    {
      cfg;
      run;
      lock = Mutex.create ();
      cond = Condition.create ();
      lanes = Hashtbl.create 16;
      rr = Queue.create ();
      slots = Array.make cfg.d_workers None;
      zombies = [];
      accepting = true;
      stopping = false;
      stopped = false;
      next_id = 0;
      q_live = 0;
      n_submitted = 0;
      n_completed = 0;
      n_rejected = 0;
      n_timed_out = 0;
      n_crashed = 0;
      n_late = 0;
      n_reaped = 0;
      n_replaced = 0;
      n_inflight = 0;
      peak_queue = 0;
      peak_inflight = 0;
      peak_lanes = 0;
      sink;
      extra_gauges = gauges;
      monitor = None;
      monitor_stop = false;
    }
  in
  locked t (fun () ->
      for i = 0 to cfg.d_workers - 1 do
        spawn_worker t i
      done);
  t.monitor <- Some (Thread.create monitor_loop t);
  t

let overload_diag fmt = Diag.error Diag.E_OVERLOAD fmt
let timeout_diag fmt = Diag.error Diag.E_TIMEOUT fmt

let submit ?(client = 0) ?deadline_s t job =
  let deadline_s =
    match deadline_s with Some _ as d -> d | None -> t.cfg.d_deadline_s
  in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun d -> t0 +. d) deadline_s in
  let expired () =
    match deadline with
    | None -> false
    | Some d -> Unix.gettimeofday () >= d
  in
  Mutex.lock t.lock;
  (* Admission: draining/stopped servers shed everything; a full queue
     sheds or blocks per policy. *)
  let rec admit () =
    if not t.accepting then (
      t.n_rejected <- t.n_rejected + 1;
      Error
        (Rejected
           (overload_diag "server is draining; request shed (retry elsewhere)")))
    else if t.q_live < t.cfg.d_queue_max then Ok ()
    else
      match t.cfg.d_overload with
      | Shed ->
          t.n_rejected <- t.n_rejected + 1;
          Error
            (Rejected
               (overload_diag
                  "request queue full (%d deep, policy shed); retry after \
                   backoff"
                  t.cfg.d_queue_max))
      | Block ->
          if expired () then begin
            t.n_timed_out <- t.n_timed_out + 1;
            Error
              (Timed_out
                 (timeout_diag
                    "deadline expired after %.3fs blocked on a full queue"
                    (Unix.gettimeofday () -. t0)))
          end
          else begin
            Mutex.unlock t.lock;
            Thread.delay 0.001;
            Mutex.lock t.lock;
            admit ()
          end
  in
  match admit () with
  | Error outcome ->
      Mutex.unlock t.lock;
      outcome
  | Ok () ->
      let k =
        {
          k_id = t.next_id;
          k_client = client;
          k_job = job;
          k_state = Queued;
          k_cell = None;
        }
      in
      t.next_id <- t.next_id + 1;
      t.n_submitted <- t.n_submitted + 1;
      push_lane t k;
      t.q_live <- t.q_live + 1;
      if t.q_live > t.peak_queue then t.peak_queue <- t.q_live;
      Condition.signal t.cond;
      Mutex.unlock t.lock;
      (* Await the outcome: poll the cell; on deadline, cancel (queued) or
         abandon (running). *)
      let rec await () =
        Mutex.lock t.lock;
        match k.k_cell with
        | Some o ->
            Mutex.unlock t.lock;
            o
        | None ->
            if not (expired ()) then begin
              Mutex.unlock t.lock;
              Thread.delay 0.001;
              await ()
            end
            else begin
              let elapsed = Unix.gettimeofday () -. t0 in
              match k.k_state with
              | Queued ->
                  k.k_state <- Cancelled;
                  t.q_live <- t.q_live - 1;
                  t.n_timed_out <- t.n_timed_out + 1;
                  Mutex.unlock t.lock;
                  Timed_out
                    (timeout_diag
                       "request %d cancelled after %.3fs in queue (never \
                        started)"
                       k.k_id elapsed)
              | Running slot ->
                  k.k_state <- Abandoned (Unix.gettimeofday ());
                  t.n_timed_out <- t.n_timed_out + 1;
                  Mutex.unlock t.lock;
                  Timed_out
                    (timeout_diag
                       "request %d abandoned after %.3fs running on worker %d \
                        (worker will be replaced if it does not recover)"
                       k.k_id elapsed slot)
              | Finished | Cancelled | Abandoned _ ->
                  (* Finished sets the cell in the same critical section;
                     cancel/abandon are ours alone. *)
                  Mutex.unlock t.lock;
                  assert false
            end
      in
      await ()

let counters t =
  locked t (fun () ->
      {
        c_submitted = t.n_submitted;
        c_completed = t.n_completed;
        c_rejected = t.n_rejected;
        c_timed_out = t.n_timed_out;
        c_crashed = t.n_crashed;
        c_late = t.n_late;
        c_reaped = t.n_reaped;
        c_replaced = t.n_replaced;
        c_queue_depth = t.q_live;
        c_inflight = t.n_inflight;
        c_peak_queue_depth = t.peak_queue;
        c_peak_inflight = t.peak_inflight;
        c_peak_lanes = t.peak_lanes;
      })

let accepting t = locked t (fun () -> t.accepting)

(* Wait until every live worker has exited, up to [timeout_s].  Returns
   the workers that did exit (joinable) and whether all of them did. *)
let wait_workers t timeout_s =
  let t_end = Unix.gettimeofday () +. timeout_s in
  let all_exited () =
    locked t (fun () ->
        Array.for_all
          (function Some w -> w.w_exited | None -> true)
          t.slots
        && List.for_all (fun w -> w.w_exited) t.zombies)
  in
  let rec wait () =
    if all_exited () then true
    else if Unix.gettimeofday () >= t_end then false
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  let clean = wait () in
  let joinable =
    locked t (fun () ->
        let acc = ref [] in
        Array.iter
          (function
            | Some w when claim w -> acc := w :: !acc | _ -> ())
          t.slots;
        List.iter (fun w -> if claim w then acc := w :: !acc) t.zombies;
        !acc)
  in
  List.iter
    (fun w -> match w.w_dom with Some d -> Domain.join d | None -> ())
    joinable;
  clean

(* Any ticket still Running when shutdown gives up belongs to a leaked
   (hung) worker: answer its submitter now so no session thread waits
   forever on a cell that will never fill. *)
let settle_orphans t =
  locked t (fun () ->
      let settle w =
        match w.w_ticket with
        | Some ({ k_state = Running _; _ } as k) ->
            k.k_state <- Abandoned (Unix.gettimeofday ());
            k.k_cell <-
              Some
                (Timed_out
                   (timeout_diag
                      "request %d was still running on a leaked worker at \
                       shutdown; abandoned"
                      k.k_id));
            t.n_timed_out <- t.n_timed_out + 1
        | _ -> ()
      in
      Array.iter (Option.iter settle) t.slots;
      List.iter settle t.zombies)

let stop_monitor t =
  t.monitor_stop <- true;
  (* drain and abort may race here (signal escalation); join is
     single-use, so claim the thread under the lock. *)
  let th = locked t (fun () ->
      let th = t.monitor in
      t.monitor <- None;
      th)
  in
  match th with Some th -> Thread.join th | None -> ()

let drain ?(timeout_s = 30.0) t =
  locked t (fun () ->
      t.accepting <- false;
      Condition.broadcast t.cond);
  (* Workers finish the queue, then their takes return None and they
     exit.  Monitor keeps reaping crashes mid-drain. *)
  let clean = wait_workers t timeout_s in
  settle_orphans t;
  locked t (fun () -> t.stopped <- true);
  stop_monitor t;
  clean

let abort ?(timeout_s = 2.0) t =
  locked t (fun () ->
      t.accepting <- false;
      t.stopping <- true;
      (* Everything still queued is answered now; no worker will start
         it. *)
      Hashtbl.iter
        (fun _client lane ->
          Queue.iter
            (fun k ->
              if k.k_state = Queued then begin
                k.k_state <- Finished;
                k.k_cell <-
                  Some
                    (Rejected
                       (overload_diag
                          "server aborted before request %d started" k.k_id));
                t.q_live <- t.q_live - 1;
                t.n_rejected <- t.n_rejected + 1
              end)
            lane)
        t.lanes;
      Condition.broadcast t.cond);
  let clean = wait_workers t timeout_s in
  settle_orphans t;
  locked t (fun () -> t.stopped <- true);
  stop_monitor t;
  clean
