(** Domain worker pool with deterministic result placement.

    [map ~jobs f tasks] applies [f] to every task on up to [jobs] worker
    domains (clamped to the task count; [jobs <= 1] runs in the calling
    domain with no spawn).  The result array is in task order regardless of
    scheduling.  If any [f] raises, the exception of the {e first} failing
    task (lowest task index — deterministic, independent of domain join
    order) is re-raised in the caller after all domains have joined, with
    the worker's original backtrace preserved
    ({!Printexc.raise_with_backtrace}).

    [f] must not share mutable state between concurrent invocations: every
    pipeline entry point reachable from {!Msched.Compile.compile} takes its
    state via explicit context arguments (per-job options, observability
    sink, reroute context — the audit is documented in [docs/SERVER.md]). *)

type stats = { max_inflight : int  (** Peak concurrently-running tasks. *) }

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array * stats
