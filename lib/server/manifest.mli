(** Batch job sources for [msched batch].

    A source is either a directory — every [*.mnl] underneath it,
    recursively, in sorted path order — or a manifest file with one entry
    per line: a design path, a [#] comment, or an NDJSON object
    [{"path": "..."}].  Relative paths resolve against the manifest's own
    directory. *)

type entry = { e_path : string  (** Resolved path to the design file. *) }

val load : string -> (entry list, Msched_diag.Diag.t list) result
(** [Error] accumulates one [E_PARSE] diagnostic per bad manifest line
    (or a single one for a missing source). *)
