(** Socket transport for `msched serve`: framed NDJSON requests over a
    Unix-domain or TCP stream socket, dispatched onto {!Dispatch} worker
    domains — one response line per request, per-connection summary at
    client EOF, [msched-serve-summary-1] from {!wait} after shutdown.

    Protocol grammar, timeout/backpressure semantics and the drain state
    machine are documented in [docs/SERVER.md]; the failure taxonomy
    (E_PARSE / E_OVERLOAD / E_TIMEOUT / E_INTERNAL / E_UNSUPPORTED) in
    [docs/ROBUSTNESS.md]. *)

type address = Unix_path of string | Tcp of string * int

val address_name : address -> string
(** ["unix:/path"] / ["tcp:host:port"]. *)

val parse_address : string -> (address, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"] (empty host means 127.0.0.1), or a
    bare path (Unix-domain). *)

(** Fault-injection requests, accepted only when the server was started
    with fault injection enabled (they exercise the dispatcher's timeout,
    hang-replacement and crash-recovery paths from real clients). *)
type poison =
  | Sleep of float  (** Hold a worker for N seconds, then compile. *)
  | Hang  (** Hold a worker until the server aborts. *)
  | Crash  (** Raise inside the worker: kills its domain. *)

val poison_name : poison -> string

type request =
  | Q_blank
  | Q_compile of {
      q_source : [ `Path of string | `Text of string ];
      q_id : string option;
      q_deadline_s : float option;
    }
  | Q_delta of {
      q_source : [ `Path of string | `Text of string ];
      q_base : string option;
          (** Manifest key from a prior response; absent = cold base
              compile that seeds the cache. *)
      q_id : string option;
      q_deadline_s : float option;
    }  (** [{"op": "delta"}]: incremental compile (docs/DELTA.md). *)
  | Q_poison of {
      q_poison : poison;
      q_id : string option;
      q_deadline_s : float option;
    }
  | Q_shutdown of [ `Drain | `Abort ]
  | Q_bad of Msched_diag.Diag.t

val parse_request : inject_faults:bool -> string -> request
(** One request line.  Poison lines parse to {!Q_bad} (E_UNSUPPORTED)
    unless [inject_faults]. *)

type config = {
  t_address : address;
  t_dispatch : Dispatch.config;
  t_settings : Server.settings;
  t_inject_faults : bool;
  t_max_frame : int;
      (** Max request-line bytes; an unterminated frame beyond this is
          answered with E_PARSE and the connection closed. *)
  t_cache_max_bytes : int option;
      (** Cache size cap, enforced by a janitor thread (and once at start
          and shutdown) via {!Cache.gc}. *)
  t_gc_interval_s : float;
  t_drain_timeout_s : float;
  t_abort_timeout_s : float;
}

val default_config : config

type t

val start : ?sink:Msched_obs.Sink.t -> config -> t
(** Bind, listen, spawn the dispatcher (workers + monitor), the accept
    thread and the cache janitor; returns immediately.  Ignores SIGPIPE.
    @raise Msched_diag.Diag.Fail when the Unix listen path exists and is
    not a socket. *)

val bound_address : t -> address
(** The actual bound address — resolves TCP port 0 to the kernel-chosen
    port (how tests listen on a free port). *)

val request_shutdown : t -> [ `Drain | `Abort ] -> unit
(** Async-signal-safe shutdown request (sets a flag {!wait} polls).
    Escalates drain to abort; never de-escalates.  Also triggered by a
    client sending [{"op": "shutdown"}]. *)

type summary = {
  sm_counters : Dispatch.counters;
  sm_connections : int;
  sm_disconnects : int;  (** Clients that vanished mid-session. *)
  sm_frame_errors : int;
  sm_evictions : int;  (** Cache entries evicted by the janitor. *)
  sm_wall_s : float;
  sm_clean : bool;
      (** Every worker finished within the timeout and no abort
          escalation happened. *)
}

val wait : t -> summary
(** Block until a shutdown is requested, then run it: stop accepting
    connections, drain (or abort) the dispatcher — every in-flight request
    is answered, queued requests run to completion on drain or are shed
    with E_OVERLOAD on abort — flush per-connection summaries, close
    sessions, release the socket.  Call once. *)

val summary_json : summary -> string
(** The [msched-serve-summary-1] line. *)
