(** Incremental rerouting context: negotiated-congestion history and a
    per-transport reservation ledger that survive across scheduling
    attempts (PathFinder-style, after McMurchie & Ebeling).

    The TIERS and forward schedulers are stateless: every attempt of the
    resilient driver's retry ladder re-searches every transport from
    scratch.  A reroute context makes retries {e warm}: transports whose
    requirement (arrival/departure anchor slot) is unchanged and whose
    reserved slots are still free are {e replayed} from the ledger without
    a search; only the stale or previously-unroutable {e residue} is
    ripped up and re-searched — biased away from historically congested
    channels by the per-channel history table.

    A context also carries the failure residue of the last attempt (which
    transports found no path) and a forced-hard set: links the driver has
    decided to route on dedicated wires instead of the time-multiplexed
    pool (the per-net hard fallback — ripping up only the unroutable
    residue instead of flipping the whole schedule to hard mode).

    One context belongs to one prepared design: partition or placement
    reseeding invalidates both ledger and history ({!clear}).  All state
    is single-threaded mutable, like {!Msched_obs.Sink}. *)

type dir = Rev | Fwd
(** Coordinate system of a ledger entry: reverse (TIERS) or forward
    (list-scheduler) slots.  Entries never cross directions. *)

type key = {
  k_dir : dir;
  k_net : int;
  k_src_block : int;
  k_dst_block : int;
  k_domain : int;  (** Constituent domain of the transport, [-1] for none. *)
}

type entry = {
  e_anchor : int;
      (** The requirement slot the path was searched for: [r_arr] for
          reverse entries, [t_dep] for forward ones.  A ledger hit is only
          replayable when the new requirement matches exactly. *)
  e_len : int;  (** Path latency in virtual clocks. *)
  e_hops : (int * int) list;  (** (channel, slot) in [k_dir] coordinates. *)
  e_probes : ((int * int) list * (int * int) list) option;
      (** The recording search's probe transcript — (free, blocked)
          (channel, slot) pairs.  Required for replay under an {e exact}
          context: the entry replays only when every free probe is still
          free {e and} every blocked probe is still blocked, which proves
          the skipped search would have returned exactly [e_hops].
          [None] on entries recorded under ordinary contexts. *)
}

type t

val create : ?exact:bool -> unit -> t
(** An [exact] context trades congestion steering for provable replay:
    history is frozen at zero (channel exploration order then matches a
    cold, context-free search), searches transcribe their probes into the
    entries they record, and ledger replay demands the full probe
    transcript to resolve identically ({!entry.e_probes}).  A schedule
    routed under an exact context is byte-identical to the cold schedule
    of the same prepared design — the foundation of delta compilation.
    Default [false]: the PathFinder-style negotiated-congestion context. *)

val is_exact : t -> bool

val clear : t -> unit
(** Drop ledger, history, failures and the forced-hard set (statistics
    are kept; they are monotone over the context's lifetime).  Required
    when the placement the entries were routed against changes. *)

(** {2 Reservation ledger} *)

val lookup : t -> key -> entry option
val record : t -> key -> entry -> unit
(** Insert or overwrite the entry for [key]. *)

val rip : t -> key -> unit
(** Remove a ledger entry (rip-up); a no-op for unknown keys. *)

val keys : t -> key list
(** All ledger keys, in unspecified order. *)

val ledger_size : t -> int

(** {2 Congestion history} *)

val bump_history : t -> channel:int -> unit
(** Called by the pathfinder whenever a hop over [channel] is rejected
    because the slot is full: one unit of negotiated-congestion history.
    A no-op on exact contexts (history stays frozen at zero). *)

val history : t -> channel:int -> int
val history_total : t -> int
(** Sum over channels; 0 means channel exploration order is untouched. *)

(** {2 Failure residue} *)

val note_failure : t -> key -> Msched_diag.Diag.t -> unit
val failures : t -> (key * Msched_diag.Diag.t) list
(** Transports of the {e last} attempt that found no path, in discovery
    order. *)

val clear_failures : t -> unit
(** Called by the schedulers on entry so {!failures} always describes the
    most recent attempt. *)

(** {2 Forced-hard set (per-net fallback)} *)

val force_hard : t -> key -> unit
(** Mark the link behind [key] (net, src block, dst block — the domain is
    ignored) to be routed on dedicated wires on subsequent attempts. *)

val is_forced_hard : t -> net:int -> src_block:int -> dst_block:int -> bool
val forced_hard_count : t -> int

(** {2 Statistics (monotone over the context's lifetime)} *)

val note_expansions : t -> int -> unit
(** Called by the pathfinder with the number of BFS states popped. *)

val expansions : t -> int
val reused : t -> int
(** Transports replayed from the ledger without a search. *)

val ripped : t -> int
(** Stale ledger entries (anchor mismatch or reserved slot taken) that
    were discarded and re-searched. *)

val fresh : t -> int
(** Transports routed with no usable ledger entry. *)

val note_reused : t -> unit
val note_ripped : t -> unit
val note_fresh : t -> unit

val record_metrics : Msched_obs.Sink.t -> t -> unit
(** Record the context statistics as [reroute.*] gauges into [obs]
    (cumulative totals; the per-attempt counters are recorded at the use
    sites).  No-op on a disabled sink. *)

(** {2 Persistence (schema ["msched-reroute-1"])}

    The warm parts of a context — ledger, congestion history, forced-hard
    set — as a versioned, checksummed, canonical JSON document, so warm
    retries can span processes (batch compile servers, CI re-runs).
    Statistics and the failure residue are per-run state: a deserialized
    context starts with zero counters and no residue. *)

val to_json_string : t -> string
(** Canonical (sorted) emission: [to_json_string (of_json_string s)] is
    byte-identical to [s] for any document this function produced. *)

val of_json_string : string -> (t, string) result
(** [Error] on unparseable text, schema mismatch, malformed payload or
    checksum mismatch (truncation and bit-rot both land here).  Callers
    are expected to degrade to a cold context and surface the message as
    an [E_CACHE] warning.  Never raises. *)
