module System = Msched_arch.System

type t = {
  widths : int array;  (* physical wires per channel *)
  dedicated : int array;
  used : (int * int, int) Hashtbl.t;  (* (channel, rslot) -> count *)
  peak : int array;
  mutable max_rslot : int;
}

let create sys =
  let channels = System.channels sys in
  {
    widths = Array.map (fun c -> c.System.width) channels;
    dedicated = Array.make (Array.length channels) 0;
    used = Hashtbl.create 4096;
    peak = Array.make (Array.length channels) 0;
    max_rslot = -1;
  }

let effective_width t ~channel = t.widths.(channel) - t.dedicated.(channel)

let dedicate t ~channel =
  if effective_width t ~channel <= 0 then
    invalid_arg "Resource.dedicate: channel exhausted";
  t.dedicated.(channel) <- t.dedicated.(channel) + 1

let dedicated t ~channel = t.dedicated.(channel)

let usage_at t ~channel ~rslot =
  Option.value ~default:0 (Hashtbl.find_opt t.used (channel, rslot))

let free_at t ~channel ~rslot =
  usage_at t ~channel ~rslot < effective_width t ~channel

let reserve t ~channel ~rslot =
  let u = usage_at t ~channel ~rslot in
  if u >= effective_width t ~channel then
    invalid_arg "Resource.reserve: slot full";
  Hashtbl.replace t.used (channel, rslot) (u + 1);
  if u + 1 > t.peak.(channel) then t.peak.(channel) <- u + 1;
  if rslot > t.max_rslot then t.max_rslot <- rslot

let peak_usage t = Array.copy t.peak
let max_rslot t = t.max_rslot
