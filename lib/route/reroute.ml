module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag

type dir = Rev | Fwd

type key = {
  k_dir : dir;
  k_net : int;
  k_src_block : int;
  k_dst_block : int;
  k_domain : int;
}

type entry = {
  e_anchor : int;
  e_len : int;
  e_hops : (int * int) list;
  e_probes : ((int * int) list * (int * int) list) option;
      (* (free, blocked) probe transcript for exact replay *)
}

type t = {
  exact : bool;
  ledger : (key, entry) Hashtbl.t;
  history : (int, int) Hashtbl.t;  (* channel -> congestion bumps *)
  mutable history_sum : int;
  mutable failed : (key * Diag.t) list;  (* reverse discovery order *)
  forced : (int * int * int, unit) Hashtbl.t;  (* net, src, dst *)
  mutable expansions : int;
  mutable reused : int;
  mutable ripped : int;
  mutable fresh : int;
}

let create ?(exact = false) () =
  {
    exact;
    ledger = Hashtbl.create 1024;
    history = Hashtbl.create 64;
    history_sum = 0;
    failed = [];
    forced = Hashtbl.create 16;
    expansions = 0;
    reused = 0;
    ripped = 0;
    fresh = 0;
  }

let is_exact t = t.exact

let clear t =
  Hashtbl.reset t.ledger;
  Hashtbl.reset t.history;
  t.history_sum <- 0;
  t.failed <- [];
  Hashtbl.reset t.forced

let lookup t key = Hashtbl.find_opt t.ledger key
let record t key entry = Hashtbl.replace t.ledger key entry
let rip t key = Hashtbl.remove t.ledger key
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.ledger []
let ledger_size t = Hashtbl.length t.ledger

(* Exact contexts freeze congestion history at zero: channel exploration
   order then matches a context-free cold search byte for byte, which is
   what lets a validated ledger replay stand in for the search it skips. *)
let bump_history t ~channel =
  if not t.exact then begin
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.history channel) in
    Hashtbl.replace t.history channel (cur + 1);
    t.history_sum <- t.history_sum + 1
  end

let history t ~channel =
  Option.value ~default:0 (Hashtbl.find_opt t.history channel)

let history_total t = t.history_sum

let note_failure t key d = t.failed <- (key, d) :: t.failed
let failures t = List.rev t.failed
let clear_failures t = t.failed <- []

let force_hard t key =
  Hashtbl.replace t.forced (key.k_net, key.k_src_block, key.k_dst_block) ()

let is_forced_hard t ~net ~src_block ~dst_block =
  Hashtbl.mem t.forced (net, src_block, dst_block)

let forced_hard_count t = Hashtbl.length t.forced

let note_expansions t n = t.expansions <- t.expansions + n
let expansions t = t.expansions
let reused t = t.reused
let ripped t = t.ripped
let fresh t = t.fresh
let note_reused t = t.reused <- t.reused + 1
let note_ripped t = t.ripped <- t.ripped + 1
let note_fresh t = t.fresh <- t.fresh + 1

let record_metrics obs t =
  if Sink.enabled obs then begin
    Sink.gauge obs "reroute.ledger_size" (float_of_int (ledger_size t));
    Sink.gauge obs "reroute.history_total" (float_of_int t.history_sum);
    Sink.gauge obs "reroute.forced_hard_links"
      (float_of_int (forced_hard_count t))
  end

(* ------------------------------------------------------------------ *)
(* Persistence (schema "msched-reroute-1"): the warm parts of a context
   — ledger, congestion history, forced-hard set — serialized to a
   versioned, checksummed JSON document so warm retries can span
   processes (batch servers, CI re-runs).  Statistics and the failure
   residue are per-run state and are not persisted.

   The document is canonical: entries are emitted in sorted key order, so
   serialize → deserialize → serialize is byte-identical, and integrity
   can be checked by re-serializing the reconstructed payload and
   comparing its checksum against the stored one (catching both bit-rot
   and truncation). *)

let schema_name = "msched-reroute-1"

(* FNV-1a, 64-bit: tiny, dependency-free, stable across platforms. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let dir_name = function Rev -> "rev" | Fwd -> "fwd"

let dir_of_name = function
  | "rev" -> Some Rev
  | "fwd" -> Some Fwd
  | _ -> None

let payload_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"ledger\":[";
  let entries =
    Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.ledger []
    |> List.sort compare
  in
  let pair_array b pairs =
    Buffer.add_char b '[';
    List.iteri
      (fun j (c, s) ->
        if j > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "[%d,%d]" c s))
      pairs;
    Buffer.add_char b ']'
  in
  List.iteri
    (fun i (k, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"dir\":\"%s\",\"net\":%d,\"src\":%d,\"dst\":%d,\"dom\":%d,\"anchor\":%d,\"len\":%d,\"hops\":"
           (dir_name k.k_dir) k.k_net k.k_src_block k.k_dst_block k.k_domain
           e.e_anchor e.e_len);
      pair_array b e.e_hops;
      (match e.e_probes with
      | None -> ()
      | Some (pf, pb) ->
          Buffer.add_string b ",\"pf\":";
          pair_array b pf;
          Buffer.add_string b ",\"pb\":";
          pair_array b pb);
      Buffer.add_char b '}')
    entries;
  Buffer.add_string b "],\"history\":[";
  let hist =
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) t.history []
    |> List.sort compare
  in
  List.iteri
    (fun i (c, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d]" c n))
    hist;
  Buffer.add_string b "],\"forced\":[";
  let forced =
    Hashtbl.fold (fun k () acc -> k :: acc) t.forced [] |> List.sort compare
  in
  List.iteri
    (fun i (n, s, d) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d,%d]" n s d))
    forced;
  Buffer.add_string b "]}";
  Buffer.contents b

let to_json_string t =
  let payload = payload_json t in
  Printf.sprintf "{\"schema\":\"%s\",\"checksum\":\"%016Lx\",\"payload\":%s}"
    schema_name (fnv1a64 payload) payload

exception Bad of string

let of_json_string text =
  let module J = Diag.Json in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let get what o = match o with Some v -> v | None -> fail "missing %s" what in
  let geti what v = get what (J.int v) in
  match J.parse text with
  | Error msg -> Error (Printf.sprintf "unparseable cache document: %s" msg)
  | Ok doc -> (
      try
        (match Option.bind (J.mem "schema" doc) J.str with
        | Some s when s = schema_name -> ()
        | Some s -> fail "schema mismatch: %S (want %S)" s schema_name
        | None -> fail "missing schema");
        let stored_sum =
          get "checksum" (Option.bind (J.mem "checksum" doc) J.str)
        in
        let payload = get "payload" (J.mem "payload" doc) in
        let t = create () in
        let pairs what v =
          match J.arr v with
          | Some [ a; b ] -> (geti what a, geti what b)
          | _ -> fail "malformed %s pair" what
        in
        List.iter
          (fun entry ->
            let m what = get what (J.mem what entry) in
            let dir =
              get "dir"
                (Option.bind (Option.bind (J.mem "dir" entry) J.str)
                   dir_of_name)
            in
            let key =
              {
                k_dir = dir;
                k_net = geti "net" (m "net");
                k_src_block = geti "src" (m "src");
                k_dst_block = geti "dst" (m "dst");
                k_domain = geti "dom" (m "dom");
              }
            in
            let hops =
              List.map (pairs "hop") (get "hops" (J.arr (m "hops")))
            in
            let probes =
              match (J.mem "pf" entry, J.mem "pb" entry) with
              | Some pf, Some pb ->
                  Some
                    ( List.map (pairs "pf") (get "pf" (J.arr pf)),
                      List.map (pairs "pb") (get "pb" (J.arr pb)) )
              | Some _, None | None, Some _ ->
                  fail "probe log needs both pf and pb"
              | None, None -> None
            in
            record t key
              {
                e_anchor = geti "anchor" (m "anchor");
                e_len = geti "len" (m "len");
                e_hops = hops;
                e_probes = probes;
              })
          (get "ledger" (Option.bind (J.mem "ledger" payload) J.arr));
        List.iter
          (fun v ->
            let c, n = pairs "history" v in
            if n < 0 then fail "negative history count";
            Hashtbl.replace t.history c n;
            t.history_sum <- t.history_sum + n)
          (get "history" (Option.bind (J.mem "history" payload) J.arr));
        List.iter
          (fun v ->
            match J.arr v with
            | Some [ a; b; c ] ->
                Hashtbl.replace t.forced
                  (geti "forced" a, geti "forced" b, geti "forced" c)
                  ()
            | _ -> fail "malformed forced triple")
          (get "forced" (Option.bind (J.mem "forced" payload) J.arr));
        (* Integrity: the canonical re-serialization of what we rebuilt
           must hash to the stored checksum. *)
        let actual = Printf.sprintf "%016Lx" (fnv1a64 (payload_json t)) in
        if not (String.equal actual stored_sum) then
          fail "checksum mismatch: stored %s, payload hashes to %s" stored_sum
            actual;
        Ok t
      with Bad msg -> Error msg)
