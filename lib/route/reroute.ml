module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag

type dir = Rev | Fwd

type key = {
  k_dir : dir;
  k_net : int;
  k_src_block : int;
  k_dst_block : int;
  k_domain : int;
}

type entry = { e_anchor : int; e_len : int; e_hops : (int * int) list }

type t = {
  ledger : (key, entry) Hashtbl.t;
  history : (int, int) Hashtbl.t;  (* channel -> congestion bumps *)
  mutable history_sum : int;
  mutable failed : (key * Diag.t) list;  (* reverse discovery order *)
  forced : (int * int * int, unit) Hashtbl.t;  (* net, src, dst *)
  mutable expansions : int;
  mutable reused : int;
  mutable ripped : int;
  mutable fresh : int;
}

let create () =
  {
    ledger = Hashtbl.create 1024;
    history = Hashtbl.create 64;
    history_sum = 0;
    failed = [];
    forced = Hashtbl.create 16;
    expansions = 0;
    reused = 0;
    ripped = 0;
    fresh = 0;
  }

let clear t =
  Hashtbl.reset t.ledger;
  Hashtbl.reset t.history;
  t.history_sum <- 0;
  t.failed <- [];
  Hashtbl.reset t.forced

let lookup t key = Hashtbl.find_opt t.ledger key
let record t key entry = Hashtbl.replace t.ledger key entry
let rip t key = Hashtbl.remove t.ledger key
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.ledger []
let ledger_size t = Hashtbl.length t.ledger

let bump_history t ~channel =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.history channel) in
  Hashtbl.replace t.history channel (cur + 1);
  t.history_sum <- t.history_sum + 1

let history t ~channel =
  Option.value ~default:0 (Hashtbl.find_opt t.history channel)

let history_total t = t.history_sum

let note_failure t key d = t.failed <- (key, d) :: t.failed
let failures t = List.rev t.failed
let clear_failures t = t.failed <- []

let force_hard t key =
  Hashtbl.replace t.forced (key.k_net, key.k_src_block, key.k_dst_block) ()

let is_forced_hard t ~net ~src_block ~dst_block =
  Hashtbl.mem t.forced (net, src_block, dst_block)

let forced_hard_count t = Hashtbl.length t.forced

let note_expansions t n = t.expansions <- t.expansions + n
let expansions t = t.expansions
let reused t = t.reused
let ripped t = t.ripped
let fresh t = t.fresh
let note_reused t = t.reused <- t.reused + 1
let note_ripped t = t.ripped <- t.ripped + 1
let note_fresh t = t.fresh <- t.fresh + 1

let record_metrics obs t =
  if Sink.enabled obs then begin
    Sink.gauge obs "reroute.ledger_size" (float_of_int (ledger_size t));
    Sink.gauge obs "reroute.history_total" (float_of_int t.history_sum);
    Sink.gauge obs "reroute.forced_hard_links"
      (float_of_int (forced_hard_count t))
  end
