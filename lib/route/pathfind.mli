(** Reverse-time shortest-path search over the time-expanded wire graph
    (the "modified Dijkstra" of the paper's Section 6; with unit edge costs
    it degenerates to a layered BFS).

    Coordinates are {e reverse} virtual-clock slots: [r = 0] is the frame
    end, larger [r] is earlier in forward time.  A transport that must
    arrive at the destination FPGA at reverse time [r_arr] is searched
    backwards: a hop from FPGA [g] to [f] over channel [(g, f)] departs [g]
    at [r + 1], arrives [f] at [r], and occupies the channel at slot
    [r + 1]; waiting inside an FPGA (pipelining in flops) is free. *)

open Msched_netlist

type path = {
  p_len : int;  (** Transport latency in virtual clocks (departure − arrival). *)
  p_hops : (int * int) list;
      (** (channel index, reverse slot) per hop, source-side first. *)
}

type probe_log = {
  mutable pr_free : (int * int) list;
      (** (channel, reverse slot) probes that found the slot free. *)
  mutable pr_blocked : (int * int) list;
      (** Probes that found the slot full. *)
}
(** Probe transcript of one live search.  The BFS exploration is a
    deterministic function of its probe results, so a later search in
    which every recorded probe resolves identically is provably the
    byte-identical search — the validity condition for exact ledger
    replay in delta compilation ({!Reroute.is_exact}). *)

val probe_log : unit -> probe_log

val search :
  ?obs:Msched_obs.Sink.t ->
  ?ctx:Reroute.t ->
  ?probe:probe_log ->
  Msched_arch.System.t ->
  Resource.t ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  r_arr:int ->
  max_extra:int ->
  path option
(** Minimal-latency path whose arrival is exactly [r_arr]; [None] if no path
    exists within [r_arr + distance + max_extra] reverse slots (pathological
    congestion or a disconnected wire pool).  Does not reserve slots.

    With a reroute context [ctx], congestion-blocked hops accumulate
    per-channel history and equal-length path ties are broken toward the
    least-contested channels (negotiated congestion); expansion counts are
    charged to the context and to the [reroute.expansions] counter.
    With [probe], every reservation-table probe is transcribed into the
    log (used to build exact-replay ledger entries). *)

val reserve_path : Resource.t -> path -> unit

(** {2 Frozen speculative search}

    The parallel TIERS reverse pass routes several links concurrently
    against a {e frozen} snapshot of the reservation table and congestion
    history: workers must not mutate shared state, so the frozen search
    defers every side effect (reservation probes, history bumps, expansion
    accounting) into a per-search log.  The sequential committer then
    either {e replays} the log — valid exactly when every free-probed slot
    is still free, since reservations are monotone within a pass — or
    discards it and re-routes the link on the live path.  When the replay
    is valid the exploration the worker performed is provably the one the
    sequential pass would have performed, which is what makes jobs=N
    schedules byte-identical to jobs=1. *)

type frozen_log = {
  mutable fl_free : (int * int) list;
      (** Free-probed (channel, reverse slot) pairs, newest first.  The
          commit-time validity condition: all still free. *)
  mutable fl_blocked : int list;
      (** Channels of blocked probes in exploration order (newest first);
          replayed as congestion-history bumps at commit. *)
  mutable fl_blocked_slots : (int * int) list;
      (** Blocked probes with their slots, newest first — the committer
          turns these into exact-replay ledger entries under an exact
          reroute context. *)
  mutable fl_expanded : int;
  mutable fl_entered : bool;  (** BFS body ran ([src <> dst]). *)
}

val frozen_log : unit -> frozen_log

val overlay_free :
  Resource.t -> (int * int, int) Hashtbl.t -> channel:int -> rslot:int -> bool
(** Probe against the frozen table plus a private overlay of (channel,
    rslot) -> count reservations (a worker's — or the committer's — own
    not-yet-applied hops). *)

val search_frozen :
  ?ctx:Reroute.t ->
  Msched_arch.System.t ->
  Resource.t ->
  overlay:(int * int, int) Hashtbl.t ->
  local_history:(int, int) Hashtbl.t ->
  local_total:int ref ->
  log:frozen_log ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  r_arr:int ->
  max_extra:int ->
  path option
(** Side-effect-free twin of {!search}: reads [res], [ctx] history and the
    caller's [overlay] (reservations made by earlier transports of the
    same link) but mutates only [log] and the link-local history tables
    ([local_history]/[local_total], which keep tie-breaking consistent
    with the bumps the sequential pass would already have applied). *)

val frozen_still_valid : Resource.t -> frozen_log -> bool
(** All free-probed slots of the log are still free (overlay-less form;
    the committer uses {!overlay_free} directly when validating several
    transports of one link against each other). *)

val replay_frozen_accounting :
  ?obs:Msched_obs.Sink.t ->
  ?ctx:Reroute.t ->
  frozen_log ->
  path option ->
  dist:int ->
  unit
(** Apply the accounting a validated frozen search deferred: the
    [pathfind.*] counters and observations, context expansion charges and
    congestion-history bumps, exactly as the live {!search} would have
    recorded them. *)

val search_forward :
  ?obs:Msched_obs.Sink.t ->
  ?ctx:Reroute.t ->
  Msched_arch.System.t ->
  Resource.t ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  t_dep:int ->
  max_extra:int ->
  path option
(** Forward-time variant used by the list scheduler: the value leaves its
    source at [t_dep] (forward slot) and the search minimizes the arrival
    time at [dst]; [p_hops] carry {e forward} slots.  A hop departing an
    FPGA at slot [t] occupies its channel at slot [t + 1] and lands at
    [t + 1]. *)

val shortest_free_wire_path :
  ?obs:Msched_obs.Sink.t ->
  Msched_arch.System.t ->
  Resource.t ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  int list option
(** Spatial (time-free) shortest path using only channels that still have at
    least one multiplexable wire; used by the hard-routing baseline to pick
    wires to dedicate. Returns channel indices, source-side first. *)
