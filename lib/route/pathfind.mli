(** Reverse-time shortest-path search over the time-expanded wire graph
    (the "modified Dijkstra" of the paper's Section 6; with unit edge costs
    it degenerates to a layered BFS).

    Coordinates are {e reverse} virtual-clock slots: [r = 0] is the frame
    end, larger [r] is earlier in forward time.  A transport that must
    arrive at the destination FPGA at reverse time [r_arr] is searched
    backwards: a hop from FPGA [g] to [f] over channel [(g, f)] departs [g]
    at [r + 1], arrives [f] at [r], and occupies the channel at slot
    [r + 1]; waiting inside an FPGA (pipelining in flops) is free. *)

open Msched_netlist

type path = {
  p_len : int;  (** Transport latency in virtual clocks (departure − arrival). *)
  p_hops : (int * int) list;
      (** (channel index, reverse slot) per hop, source-side first. *)
}

val search :
  ?obs:Msched_obs.Sink.t ->
  ?ctx:Reroute.t ->
  Msched_arch.System.t ->
  Resource.t ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  r_arr:int ->
  max_extra:int ->
  path option
(** Minimal-latency path whose arrival is exactly [r_arr]; [None] if no path
    exists within [r_arr + distance + max_extra] reverse slots (pathological
    congestion or a disconnected wire pool).  Does not reserve slots.

    With a reroute context [ctx], congestion-blocked hops accumulate
    per-channel history and equal-length path ties are broken toward the
    least-contested channels (negotiated congestion); expansion counts are
    charged to the context and to the [reroute.expansions] counter. *)

val reserve_path : Resource.t -> path -> unit

val search_forward :
  ?obs:Msched_obs.Sink.t ->
  ?ctx:Reroute.t ->
  Msched_arch.System.t ->
  Resource.t ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  t_dep:int ->
  max_extra:int ->
  path option
(** Forward-time variant used by the list scheduler: the value leaves its
    source at [t_dep] (forward slot) and the search minimizes the arrival
    time at [dst]; [p_hops] carry {e forward} slots.  A hop departing an
    FPGA at slot [t] occupies its channel at slot [t + 1] and lands at
    [t + 1]. *)

val shortest_free_wire_path :
  ?obs:Msched_obs.Sink.t ->
  Msched_arch.System.t ->
  Resource.t ->
  src:Ids.Fpga.t ->
  dst:Ids.Fpga.t ->
  int list option
(** Spatial (time-free) shortest path using only channels that still have at
    least one multiplexable wire; used by the hard-routing baseline to pick
    wires to dedicate. Returns channel indices, source-side first. *)
