(** TIERS-style reverse static scheduling with multi-domain (MTS) support —
    the paper's Sections 6 and 7.

    The scheduler processes {e route-links} and {e latch groups} in a
    dependency order derived from combinational reachability inside blocks:
    consumers before producers, gate-side constraints before data-side ones
    (G-type latch ordering).  Each link is routed backwards in time over the
    time-expanded wire graph so that it arrives exactly when its destination
    needs it; ReadyTime requirements then propagate to the source block's
    terminals.  Multi-transition nets travel as per-domain transports whose
    latencies are equalized so the merge at the destination is causally
    correct; hold-time safety at latches is enforced by scheduling gate
    information no later than data and by data hold-offs (delay
    compensation). *)

type mts_mode =
  | Mts_virtual  (** The paper's contribution: scheduled MTS transport. *)
  | Mts_hard  (** Baseline: MTS nets on dedicated (hard) wires. *)
  | Naive
      (** Broken baseline for fidelity experiments: per-domain transports
          routed independently with no causal alignment and no latch
          ordering. *)

type options = {
  mode : mts_mode;
  equalize_forks : bool;
      (** Pad per-domain transports of one MTS crossing to equal latency. *)
  latch_ordering : bool;
      (** Enforce gate-before-data ReadyTimes and emit data hold-offs. *)
  same_domain_only : bool;
      (** Apply hold constraints only to same-domain (data, gate) pairs
          (Observation 1); [false] is the conservative all-pairs ablation. *)
  max_extra_slots : int;
      (** Congestion slack allowed beyond shortest distance per transport. *)
}

val default_options : options
(** [Mts_virtual], everything on, [max_extra_slots = 4096]. *)

val mode_name : mts_mode -> string
(** ["virtual"], ["hard"], ["naive"]. *)

val hard_options : options
val naive_options : options

exception Unroutable of Msched_diag.Diag.t
(** The payload is a structured diagnostic ([E_UNROUTABLE] for slack-budget
    exhaustion, [E_CAPACITY] for wire/pin exhaustion) carrying the culprit
    net, destination FPGA/block and the slack budget that was exceeded. *)

val schedule :
  Msched_place.Placement.t ->
  Msched_mts.Domain_analysis.t ->
  ?analysis:Msched_mts.Latch_analysis.t array ->
  ?options:options ->
  ?obs:Msched_obs.Sink.t ->
  ?reroute:Reroute.t ->
  ?jobs:int ->
  unit ->
  Schedule.t
(** Compile a placed design into a static schedule.  [analysis] (per-block
    latch analysis) is computed on demand when not supplied.  [obs] records
    stage spans ([tiers.*]) plus scheduler/pathfinder/channel metrics (see
    [docs/OBSERVABILITY.md]).

    [jobs] (default 1) is the intra-pass parallel width.  With [jobs > 1]
    the reverse pass routes batches of independent links speculatively on
    [jobs] worker domains and commits them in canonical order, falling
    back to live sequential routing for any link whose speculation is
    invalidated; the resulting schedule, metrics and ledger state are
    byte-identical to [jobs = 1] (see [tiers.par.*] in
    [docs/OBSERVABILITY.md]).  [jobs <= 1] never spawns a domain.

    With a [reroute] context the attempt runs {e warm}: transports whose
    requirement slot is unchanged since the last attempt are replayed from
    the context's ledger without a search, searches are steered by the
    negotiated-congestion history, links the driver forced hard
    ({!Reroute.force_hard}) are routed on dedicated wires, and an
    unroutable transport no longer aborts the pass — the whole residue is
    collected into the context first, then {!Unroutable} is raised with
    the first culprit.  The context must belong to this placement; clear
    it when the partition or placement changes.
    @raise Unroutable when a transport cannot be placed within the slack
    budget (e.g. hard wires exhausted a channel). *)
