open Msched_netlist
module Partition = Msched_partition.Partition
module Latch_analysis = Msched_mts.Latch_analysis

type node = Lnk of int | Grp of int * int

let order part la links =
  let nl = Partition.netlist part in
  let nblocks = Partition.num_blocks part in
  let out_links_by_net : int list Ids.Net.Tbl.t array =
    Array.init nblocks (fun _ -> Ids.Net.Tbl.create 16)
  in
  Array.iteri
    (fun i (l : Link.t) ->
      let b = Ids.Block.to_int l.Link.src_block in
      let tbl = out_links_by_net.(b) in
      let cur = Option.value ~default:[] (Ids.Net.Tbl.find_opt tbl l.Link.net) in
      Ids.Net.Tbl.replace tbl l.Link.net (i :: cur))
    links;
  let nlinks = Array.length links in
  let group_base = Array.make nblocks 0 in
  let ngroups = ref 0 in
  for b = 0 to nblocks - 1 do
    group_base.(b) <- nlinks + !ngroups;
    ngroups := !ngroups + Array.length la.(b).Latch_analysis.groups
  done;
  let nnodes = nlinks + !ngroups in
  let group_node_of_latch = Ids.Cell.Tbl.create 64 in
  for b = 0 to nblocks - 1 do
    Array.iteri
      (fun gi (g : Latch_analysis.group) ->
        List.iter
          (fun latch ->
            Ids.Cell.Tbl.replace group_node_of_latch latch (group_base.(b) + gi))
          g.Latch_analysis.latches)
      la.(b).Latch_analysis.groups
  done;
  let succ = Array.make nnodes [] in
  let add_edge a b = if a <> b then succ.(a) <- b :: succ.(a) in
  let links_out_of b net =
    Option.value ~default:[]
      (Ids.Net.Tbl.find_opt out_links_by_net.(Ids.Block.to_int b) net)
  in
  (* Link consumers first: a link X delivering net n to block b is processed
     after every link departing b on a net reachable from n and after every
     latch group whose member pins n reaches. *)
  Array.iteri
    (fun xi (l : Link.t) ->
      let b = Ids.Block.to_int l.Link.dst_block in
      match Ids.Net.Tbl.find_opt la.(b).Latch_analysis.origins l.Link.net with
      | None -> ()
      | Some info ->
          List.iter
            (fun (onet, _d) ->
              List.iter
                (fun yi -> add_edge yi xi)
                (links_out_of l.Link.dst_block onet))
            info.Latch_analysis.to_outputs;
          List.iter
            (fun (latch, _pd) ->
              match Ids.Cell.Tbl.find_opt group_node_of_latch latch with
              | Some gnode -> add_edge gnode xi
              | None -> ())
            info.Latch_analysis.to_latch_pins)
    links;
  (* Groups after every link consuming a member latch's output (the group
     reads those accumulated requirements as its ReadyTime), and chained in
     per-block processing order.  Input-dep origins must NOT order links
     before the group: the group only *writes* requirements on them, and
     such edges manufacture spurious cycles through latch pairs split
     across blocks. *)
  for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    let block = lab.Latch_analysis.block in
    let groups = lab.Latch_analysis.groups in
    Array.iteri
      (fun gi (g : Latch_analysis.group) ->
        let gnode = group_base.(b) + gi in
        if gi + 1 < Array.length groups then add_edge gnode (gnode + 1);
        let origin_nets =
          List.sort_uniq Ids.Net.compare
            (List.filter_map
               (fun latch -> (Netlist.cell nl latch).Cell.output)
               g.Latch_analysis.latches)
        in
        List.iter
          (fun m ->
            match Ids.Net.Tbl.find_opt lab.Latch_analysis.origins m with
            | None -> ()
            | Some info ->
                List.iter
                  (fun (onet, _d) ->
                    List.iter
                      (fun yi -> add_edge yi gnode)
                      (links_out_of block onet))
                  info.Latch_analysis.to_outputs)
          origin_nets)
      groups
  done;
  (if Sys.getenv_opt "MSCHED_DEBUG_GRAPH" <> None then
     let pp_node ppf v =
       if v < nlinks then Format.fprintf ppf "L(%a)" Link.pp links.(v)
       else Format.fprintf ppf "G(%d)" v
     in
     Array.iteri
       (fun a bs ->
         List.iter
           (fun b2 -> Format.eprintf "EDGE %a -> %a@." pp_node a pp_node b2)
           bs)
       succ);
  let comps = Graph_util.sccs nnodes (fun v -> succ.(v)) in
  let warnings =
    List.filter_map
      (fun comp ->
        if List.length comp > 1 then
          Some
            (Printf.sprintf
               "scheduling dependency cycle over %d nodes (cross-block latch \
                loop); falling back to arbitrary order within the cycle"
               (List.length comp))
        else None)
      comps
  in
  let decode v =
    if v < nlinks then Lnk v
    else begin
      let b = ref (nblocks - 1) in
      while group_base.(!b) > v do
        decr b
      done;
      Grp (!b, v - group_base.(!b))
    end
  in
  (List.map decode (List.concat comps), warnings)
