(** Forward list scheduling — the variant the paper notes its techniques
    also apply to ("the techniques explained are also applicable to forward
    routing", Section 6).

    Links and latch groups are processed producers-first.  Each transport
    departs as soon as its source terminal has settled and is routed
    forward in time for the earliest feasible arrival; per-domain
    transports of an MTS crossing are equalized by aligning their arrivals
    to the group's latest (when [equalize_forks] is set).  The frame length
    is whatever the resulting arrivals plus frame-end deadlines require.

    Compared to reverse (TIERS) scheduling, forward scheduling tends to
    deliver values earlier than needed, which lengthens latch hold-offs and
    can lengthen the critical path — the reason the original Virtual Wires
    work went reverse.  The [scheduler-duel] ablation quantifies this. *)

exception Unsupported of Msched_diag.Diag.t
(** Structured [E_UNSUPPORTED] diagnostic. *)

val schedule :
  Msched_place.Placement.t ->
  Msched_mts.Domain_analysis.t ->
  ?analysis:Msched_mts.Latch_analysis.t array ->
  ?options:Tiers.options ->
  ?obs:Msched_obs.Sink.t ->
  ?reroute:Reroute.t ->
  unit ->
  Schedule.t
(** With a [reroute] context transports whose departure slot is unchanged
    are replayed from the ledger (forward-direction keys) and searches are
    congestion-history steered; unlike {!Tiers.schedule}, an unroutable
    transport still aborts immediately.
    @raise Unsupported when [options.mode] is [Mts_hard] (dedicated-wire
    pre-routing is a property of the baseline flow, not of this scheduler).
    @raise Tiers.Unroutable when a transport cannot be placed within the
    slack budget. *)
