open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module Domain_analysis = Msched_mts.Domain_analysis

type t = {
  id : Ids.Link.t;
  net : Ids.Net.t;
  src_block : Ids.Block.t;
  dst_block : Ids.Block.t;
  src_fpga : Ids.Fpga.t;
  dst_fpga : Ids.Fpga.t;
  domains : Ids.Dom.t list;
  hard : bool;
}

let build placement analysis ~decompose_mts ~hard_mts =
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let links = ref [] in
  let next = ref 0 in
  List.iter
    (fun net ->
      let src_block = Partition.block_of_cell part (Netlist.driver nl net).Cell.id in
      let multi = Domain_analysis.is_multi_transition analysis net in
      let domains =
        if multi && decompose_mts then
          Ids.Dom.Set.elements (Domain_analysis.transitions analysis net)
        else []
      in
      List.iter
        (fun (dst_block, _terms) ->
          let link =
            {
              id = Ids.Link.of_int !next;
              net;
              src_block;
              dst_block;
              src_fpga = Placement.fpga_of_block placement src_block;
              dst_fpga = Placement.fpga_of_block placement dst_block;
              domains;
              hard = hard_mts && multi;
            }
          in
          incr next;
          links := link :: !links)
        (Partition.foreign_consumers part net))
    (Partition.crossing_nets part);
  List.rev !links

let num_transports t = max 1 (List.length t.domains)

let pp ppf t =
  Format.fprintf ppf "%a: %a %a->%a%s%s" Ids.Link.pp t.id Ids.Net.pp t.net
    Ids.Block.pp t.src_block Ids.Block.pp t.dst_block
    (if t.domains = [] then ""
     else
       Format.asprintf " doms={%a}"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
            Ids.Dom.pp)
         t.domains)
    (if t.hard then " hard" else "")
