open Msched_netlist
module System = Msched_arch.System

type transport = {
  tr_domain : Ids.Dom.t option;
  tr_fwd_dep : int;
  tr_fwd_arr : int;
  tr_hops : (int * int) list;
  tr_hard : bool;
}

type link_sched = { ls_link : Link.t; ls_transports : transport list }

type holdoff = { ho_cell : Ids.Cell.t; ho_gate : int; ho_data : int }

type t = {
  length : int;
  length_driver : string;
  vclock_hz : float;
  link_scheds : link_sched list;
  holdoffs : holdoff list;
  peak_channel_usage : int array;
  dedicated_per_channel : int array;
  warnings : string list;
}

let est_speed_hz t = t.vclock_hz /. float_of_int (max 1 t.length)

let total_holdoff t =
  List.fold_left (fun acc h -> acc + h.ho_data) 0 t.holdoffs

let pins_used_per_fpga t sys =
  let pins = Array.make (System.num_fpgas sys) 0 in
  Array.iteri
    (fun i (c : System.channel) ->
      let wires = t.peak_channel_usage.(i) + t.dedicated_per_channel.(i) in
      let s = Ids.Fpga.to_int c.System.src and d = Ids.Fpga.to_int c.System.dst in
      pins.(s) <- pins.(s) + wires;
      pins.(d) <- pins.(d) + wires)
    (System.channels sys);
  pins

let max_pins_used t sys = Array.fold_left max 0 (pins_used_per_fpga t sys)

let find_transports t ~net ~dst_block =
  List.concat_map
    (fun ls ->
      if
        Ids.Net.equal ls.ls_link.Link.net net
        && Ids.Block.equal ls.ls_link.Link.dst_block dst_block
      then ls.ls_transports
      else [])
    t.link_scheds

let holdoff_of t cell =
  List.find_opt (fun h -> Ids.Cell.equal h.ho_cell cell) t.holdoffs

let per_channel_utilization t sys =
  Array.mapi
    (fun i (c : System.channel) ->
      let used = t.peak_channel_usage.(i) + t.dedicated_per_channel.(i) in
      float_of_int used /. float_of_int c.System.width)
    (System.channels sys)

let channel_utilization t sys =
  let per = per_channel_utilization t sys in
  if Array.length per = 0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 per /. float_of_int (Array.length per)

let occupancy_matrix t sys =
  let nc = Array.length (System.channels sys) in
  let m = Array.make_matrix nc (t.length + 1) 0 in
  List.iter
    (fun ls ->
      List.iter
        (fun tr ->
          if not tr.tr_hard then
            List.iter
              (fun (c, slot) ->
                if c >= 0 && c < nc && slot >= 0 && slot <= t.length then
                  m.(c).(slot) <- m.(c).(slot) + 1)
              tr.tr_hops)
        ls.ls_transports)
    t.link_scheds;
  m

let mean_transport_latency t =
  let n = ref 0 and sum = ref 0 in
  List.iter
    (fun ls ->
      List.iter
        (fun tr ->
          incr n;
          sum := !sum + (tr.tr_fwd_arr - tr.tr_fwd_dep))
        ls.ls_transports)
    t.link_scheds;
  if !n = 0 then 0.0 else float_of_int !sum /. float_of_int !n

(* Schedule-level metrics shared by the TIERS and forward schedulers:
   frame length, hold-off totals, per-channel wire occupancy (multiplexed
   peak plus dedicated) and per-FPGA pin usage distributions. *)
let record_metrics obs t sys =
  let module Sink = Msched_obs.Sink in
  if Sink.enabled obs then begin
    Sink.gauge obs "schedule.length" (float_of_int t.length);
    Sink.gauge obs "schedule.est_speed_hz" (est_speed_hz t);
    Sink.add obs "holdoff.cells" (List.length t.holdoffs);
    Sink.add obs "holdoff.slots" (total_holdoff t);
    Array.iteri
      (fun c peak ->
        Sink.observe obs "channel.occupancy" (peak + t.dedicated_per_channel.(c)))
      t.peak_channel_usage;
    Array.iter
      (fun p -> Sink.observe obs "fpga.pins_used" p)
      (pins_used_per_fpga t sys)
  end

(* Canonical JSON emission (schema "msched-schedule-1"): every field in a
   fixed order, every list in its structural order, no whitespace — two
   schedules are byte-identical iff they are semantically identical.  The
   differential determinism suite (test_par) and the serve byte-equality
   test diff this string across parallel widths. *)
let to_json_string t =
  let module Json = Msched_diag.Diag.Json in
  let b = Buffer.create 8192 in
  let int_pairs ps =
    Buffer.add_char b '[';
    List.iteri
      (fun i (x, y) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "[%d,%d]" x y))
      ps;
    Buffer.add_char b ']'
  in
  Buffer.add_string b "{\"schema\":\"msched-schedule-1\",\"length\":";
  Buffer.add_string b (string_of_int t.length);
  Buffer.add_string b ",\"length_driver\":";
  Json.escape b t.length_driver;
  Buffer.add_string b (Printf.sprintf ",\"vclock_hz\":%.17g" t.vclock_hz);
  Buffer.add_string b (Printf.sprintf ",\"est_speed_hz\":%.17g" (est_speed_hz t));
  Buffer.add_string b ",\"links\":[";
  List.iteri
    (fun i ls ->
      if i > 0 then Buffer.add_char b ',';
      let l = ls.ls_link in
      Buffer.add_string b
        (Printf.sprintf
           "{\"net\":%d,\"src_block\":%d,\"dst_block\":%d,\"src_fpga\":%d,\"dst_fpga\":%d,\"hard\":%b,\"transports\":["
           (Ids.Net.to_int l.Link.net)
           (Ids.Block.to_int l.Link.src_block)
           (Ids.Block.to_int l.Link.dst_block)
           (Ids.Fpga.to_int l.Link.src_fpga)
           (Ids.Fpga.to_int l.Link.dst_fpga)
           l.Link.hard);
      List.iteri
        (fun j tr ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"domain\":%d,\"dep\":%d,\"arr\":%d,\"hard\":%b,\"hops\":"
               (match tr.tr_domain with Some d -> Ids.Dom.to_int d | None -> -1)
               tr.tr_fwd_dep tr.tr_fwd_arr tr.tr_hard);
          int_pairs tr.tr_hops;
          Buffer.add_char b '}')
        ls.ls_transports;
      Buffer.add_string b "]}")
    t.link_scheds;
  Buffer.add_string b "],\"holdoffs\":[";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"cell\":%d,\"gate\":%d,\"data\":%d}"
           (Ids.Cell.to_int h.ho_cell) h.ho_gate h.ho_data))
    t.holdoffs;
  Buffer.add_string b "],\"peak_channel_usage\":[";
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    t.peak_channel_usage;
  Buffer.add_string b "],\"dedicated_per_channel\":[";
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    t.dedicated_per_channel;
  Buffer.add_string b "],\"warnings\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      Json.escape b w)
    t.warnings;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_summary ppf t =
  Format.fprintf ppf
    "schedule: %d vclocks/frame (%s), %.1f kHz est. speed, %d links, %d \
     holdoffs (%d slots total)%s"
    t.length t.length_driver
    (est_speed_hz t /. 1e3)
    (List.length t.link_scheds)
    (List.length t.holdoffs) (total_holdoff t)
    (match t.warnings with
    | [] -> ""
    | w -> Format.asprintf " [%d warnings]" (List.length w))
