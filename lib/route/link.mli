(** Route-links: logical inter-FPGA connections to be scheduled.

    One link carries one crossing net to one foreign block.  A link whose net
    is multi-transition is a {e fork group}: it decomposes into one transport
    per constituent domain (paper Figure 5), all of which the scheduler
    routes together. *)

open Msched_netlist

type t = {
  id : Ids.Link.t;
  net : Ids.Net.t;
  src_block : Ids.Block.t;
  dst_block : Ids.Block.t;
  src_fpga : Ids.Fpga.t;
  dst_fpga : Ids.Fpga.t;
  domains : Ids.Dom.t list;
      (** Constituent transition domains; [[]] for single/zero-domain nets,
          which travel as one untagged transport. *)
  hard : bool;  (** Pre-routed on dedicated wires (hard-routing baseline). *)
}

val build :
  Msched_place.Placement.t ->
  Msched_mts.Domain_analysis.t ->
  decompose_mts:bool ->
  hard_mts:bool ->
  t list
(** One link per (crossing net, foreign block).  [decompose_mts] controls
    whether multi-transition nets are split into per-domain transports;
    [hard_mts] marks multi-transition links for dedicated-wire routing. *)

val num_transports : t -> int
val pp : Format.formatter -> t -> unit
