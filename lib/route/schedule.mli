(** The compiled static schedule: everything the emulation-system simulator
    and the reports need.

    All times here are {e forward} virtual-clock slots within one frame of
    [length] slots: slot 0 is the frame start (domain edges applied), values
    feeding frame-end consumers must be final by slot [length]. *)

open Msched_netlist

type transport = {
  tr_domain : Ids.Dom.t option;
      (** The constituent domain this transport carries ([None] for
          single-domain nets and hard wires). *)
  tr_fwd_dep : int;  (** Source terminal sampled at this slot. *)
  tr_fwd_arr : int;  (** Destination copy updated at this slot. *)
  tr_hops : (int * int) list;  (** (channel, forward slot) per hop. *)
  tr_hard : bool;
      (** Dedicated-wire transport: flows whenever the source changes, with
          [tr_fwd_arr - tr_fwd_dep] hops of combinational latency. *)
}

type link_sched = { ls_link : Link.t; ls_transports : transport list }

type holdoff = {
  ho_cell : Ids.Cell.t;  (** A latch or net-triggered flip-flop. *)
  ho_gate : int;
      (** Forward slot at which the gate/clock pin's settled value is
          presented to the state element.  Before it, transient (glitching)
          gate values are masked — intra-FPGA evaluation is scheduled, so
          latches never see unsettled gates. *)
  ho_data : int;
      (** Forward slot before which data-pin updates are buffered; always
          strictly after [ho_gate] (the materialization of the paper's
          delay compensation: data never outruns gate). *)
}

type t = {
  length : int;  (** Virtual clocks per frame (the critical path). *)
  length_driver : string;
      (** Human-readable description of the binding constraint that set
          [length] (a transport chain, a latch evaluation, a local
          combinational chain, or wire congestion). *)
  vclock_hz : float;
  link_scheds : link_sched list;
  holdoffs : holdoff list;
  peak_channel_usage : int array;  (** Multiplexed wires, per channel. *)
  dedicated_per_channel : int array;
  warnings : string list;
}

val est_speed_hz : t -> float
(** [vclock_hz / length] — paper Table 1 rows 10–11. *)

val total_holdoff : t -> int
(** Sum of data hold-off slots (a proxy for injected compensation flops). *)

val pins_used_per_fpga : t -> Msched_arch.System.t -> int array
(** Per FPGA: pins actually exercised — peak multiplexed wires plus
    dedicated wires over all incident channels (each wire costs one pin at
    each endpoint). *)

val max_pins_used : t -> Msched_arch.System.t -> int

val find_transports :
  t -> net:Ids.Net.t -> dst_block:Ids.Block.t -> transport list
(** Transports delivering a net to a block ([] when none). *)

val holdoff_of : t -> Ids.Cell.t -> holdoff option

val per_channel_utilization : t -> Msched_arch.System.t -> float array
(** Per channel: (peak multiplexed + dedicated wires) / width. *)

val channel_utilization : t -> Msched_arch.System.t -> float
(** Mean over channels of {!per_channel_utilization} — how hard the
    schedule leans on the physical wire pool. *)

val occupancy_matrix : t -> Msched_arch.System.t -> int array array
(** [channel × (length + 1)] matrix of multiplexed hop counts: entry
    [(c, s)] is the number of time-multiplexed transport hops crossing
    channel [c] at forward slot [s].  Dedicated (hard) wires are excluded —
    they occupy their channel continuously and are reported separately in
    [dedicated_per_channel]. *)

val mean_transport_latency : t -> float
(** Average arrival − departure over all transports (0 when there are
    none). *)

val to_json_string : t -> string
(** Canonical JSON emission (schema ["msched-schedule-1"]): fixed field
    order, structural list order, no whitespace — two schedules serialize
    byte-identically iff they are semantically identical.  This is the
    equality witness of the parallel-compile differential suite: jobs=N
    and jobs=1 compiles must produce the same string. *)

val record_metrics : Msched_obs.Sink.t -> t -> Msched_arch.System.t -> unit
(** Record schedule-level observability metrics (frame length and estimated
    speed gauges, hold-off counters, per-channel occupancy and per-FPGA pin
    histograms) into [obs].  No-op on a disabled sink. *)

val pp_summary : Format.formatter -> t -> unit
