open Msched_netlist
module System = Msched_arch.System
module Topology = Msched_arch.Topology
module Sink = Msched_obs.Sink

type path = { p_len : int; p_hops : (int * int) list }

(* Negotiated-congestion steering: with a reroute context carrying
   history, explore channels with the least accumulated congestion first.
   BFS still finds a minimal-latency path — the order only breaks ties
   between equal-length paths, away from historically contested wires. *)
let order_channels ctx channels =
  match ctx with
  | Some c when Reroute.history_total c > 0 ->
      List.stable_sort
        (fun (a : System.channel) (b : System.channel) ->
          compare
            (Reroute.history c ~channel:a.System.channel_index)
            (Reroute.history c ~channel:b.System.channel_index))
        channels
  | Some _ | None -> channels

let blocked_hop ctx ~channel =
  match ctx with Some c -> Reroute.bump_history c ~channel | None -> ()

let account_expansions ctx obs n =
  Sink.add obs "pathfind.states_expanded" n;
  match ctx with
  | Some c ->
      Reroute.note_expansions c n;
      Sink.add obs "reroute.expansions" n
  | None -> ()

(* Backward BFS from (dst, r_arr).  States are (fpga, r); both transitions
   (wait, hop) increase r by one, so a FIFO queue explores r layer by
   layer and the first time we reach [src] is with minimal latency.

   The core is parameterized over the channel probe, channel ordering and
   blocked-hop callback so the live search (probing the real reservation
   table, bumping congestion history in place) and the frozen speculative
   search (probing a snapshot plus a worker-private overlay, deferring
   every side effect into a log) run the byte-identical exploration. *)
let backward_core ~probe ~order sys ~src ~dst ~r_arr ~r_limit ~expanded =
  let parent : (int * int, (int * int) * int option) Hashtbl.t =
    (* state -> (parent state, channel used to reach it, if a hop) *)
    Hashtbl.create 256
  in
  let queue = Queue.create () in
  let start = (Ids.Fpga.to_int dst, r_arr) in
  Hashtbl.replace parent start (start, None);
  Queue.add start queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let (f, r) as state = Queue.pop queue in
    incr expanded;
    if Ids.Fpga.to_int src = f then found := Some state
    else if r < r_limit then begin
      let push next via =
        if not (Hashtbl.mem parent next) then begin
          Hashtbl.replace parent next (state, via);
          Queue.add next queue
        end
      in
      (* Wait: the value was already at [f] one slot earlier (forward). *)
      push (f, r + 1) None;
      (* Hop: the value came from a neighbor [g] over channel (g -> f),
         departing at r + 1. *)
      List.iter
        (fun (c : System.channel) ->
          if probe ~channel:c.System.channel_index ~rslot:(r + 1) then
            push
              (Ids.Fpga.to_int c.System.src, r + 1)
              (Some c.System.channel_index))
        (order (System.in_channels sys (Ids.Fpga.of_int f)))
    end
  done;
  match !found with
  | None -> None
  | Some final ->
      let rec unwind state acc =
        let prev, via = Hashtbl.find parent state in
        let acc =
          match via with
          | Some channel -> (channel, snd state) :: acc
          | None -> acc
        in
        if prev = state then acc else unwind prev acc
      in
      (* Unwinding from the source state toward the destination yields hops
         in source-to-destination order already reversed; rebuild so the
         source-side hop (largest rslot) comes first. *)
      let hops = List.rev (unwind final []) in
      Some { p_len = snd final - r_arr; p_hops = hops }

(* Probe transcript of one live search: every (channel, reverse slot) the
   BFS tested, split by outcome.  The exploration is a deterministic
   function of these results (see [backward_core]), so a later run in
   which every recorded probe resolves identically provably performs the
   byte-identical search — the validity condition for exact ledger replay
   in delta compilation. *)
type probe_log = {
  mutable pr_free : (int * int) list;
  mutable pr_blocked : (int * int) list;
}

let probe_log () = { pr_free = []; pr_blocked = [] }

let search ?(obs = Sink.null) ?ctx ?probe:plog sys res ~src ~dst ~r_arr
    ~max_extra =
  Sink.incr obs "pathfind.searches";
  if Ids.Fpga.equal src dst then Some { p_len = 0; p_hops = [] }
  else begin
    let dist = Topology.distance (System.topology sys) src dst in
    let expanded = ref 0 in
    let blocked = ref 0 in
    let probe ~channel ~rslot =
      let free = Resource.free_at res ~channel ~rslot in
      (match plog with
      | Some l ->
          if free then l.pr_free <- (channel, rslot) :: l.pr_free
          else l.pr_blocked <- (channel, rslot) :: l.pr_blocked
      | None -> ());
      if not free then begin
        incr blocked;
        blocked_hop ctx ~channel
      end;
      free
    in
    let result =
      backward_core ~probe ~order:(order_channels ctx) sys ~src ~dst ~r_arr
        ~r_limit:(r_arr + dist + max_extra) ~expanded
    in
    account_expansions ctx obs !expanded;
    Sink.add obs "pathfind.congestion_blocked" !blocked;
    match result with
    | None ->
        Sink.incr obs "pathfind.failures";
        None
    | Some p ->
        Sink.observe obs "pathfind.path_len" p.p_len;
        Sink.observe obs "pathfind.extra_slots" (p.p_len - dist);
        result
  end

(* ---- Frozen speculative search (see tiers.ml's parallel pass). ---- *)

type frozen_log = {
  mutable fl_free : (int * int) list;  (* free-probed (channel, rslot) *)
  mutable fl_blocked : int list;  (* blocked-probe channels, newest first *)
  mutable fl_blocked_slots : (int * int) list;
      (* blocked probes with their slots, for exact-replay ledger entries *)
  mutable fl_expanded : int;
  mutable fl_entered : bool;  (* BFS body ran (src <> dst) *)
}

let frozen_log () =
  {
    fl_free = [];
    fl_blocked = [];
    fl_blocked_slots = [];
    fl_expanded = 0;
    fl_entered = false;
  }

let overlay_count overlay ~channel ~rslot =
  Option.value ~default:0 (Hashtbl.find_opt overlay (channel, rslot))

let overlay_free res overlay ~channel ~rslot =
  Resource.usage_at res ~channel ~rslot + overlay_count overlay ~channel ~rslot
  < Resource.effective_width res ~channel

let search_frozen ?ctx sys res ~overlay ~local_history ~local_total ~log ~src
    ~dst ~r_arr ~max_extra =
  if Ids.Fpga.equal src dst then Some { p_len = 0; p_hops = [] }
  else begin
    log.fl_entered <- true;
    let dist = Topology.distance (System.topology sys) src dst in
    let expanded = ref 0 in
    let probe ~channel ~rslot =
      let free = overlay_free res overlay ~channel ~rslot in
      if free then log.fl_free <- (channel, rslot) :: log.fl_free
      else begin
        log.fl_blocked <- channel :: log.fl_blocked;
        log.fl_blocked_slots <- (channel, rslot) :: log.fl_blocked_slots;
        (* Exact contexts freeze history (see Reroute.bump_history); the
           link-local mirror must stay frozen too or the speculative
           channel ordering would diverge from the sequential pass. *)
        match ctx with
        | Some c when not (Reroute.is_exact c) ->
            Hashtbl.replace local_history channel
              (1
              + Option.value ~default:0 (Hashtbl.find_opt local_history channel));
            incr local_total
        | Some _ | None -> ()
      end;
      free
    in
    (* Ordering must mirror the sequential pass exactly: global history as
       of the batch snapshot plus the bumps this link itself would have
       made so far (the sequential pass applies those immediately). *)
    let order channels =
      match ctx with
      | Some c when Reroute.history_total c + !local_total > 0 ->
          let h (ch : System.channel) =
            Reroute.history c ~channel:ch.System.channel_index
            + Option.value ~default:0
                (Hashtbl.find_opt local_history ch.System.channel_index)
          in
          List.stable_sort (fun a b -> compare (h a) (h b)) channels
      | Some _ | None -> channels
    in
    let result =
      backward_core ~probe ~order sys ~src ~dst ~r_arr
        ~r_limit:(r_arr + dist + max_extra) ~expanded
    in
    log.fl_expanded <- !expanded;
    result
  end

let frozen_still_valid res log =
  List.for_all
    (fun (channel, rslot) -> Resource.free_at res ~channel ~rslot)
    log.fl_free

let replay_frozen_accounting ?(obs = Sink.null) ?ctx log result ~dist =
  Sink.incr obs "pathfind.searches";
  if log.fl_entered then begin
    List.iter (fun channel -> blocked_hop ctx ~channel) (List.rev log.fl_blocked);
    account_expansions ctx obs log.fl_expanded;
    Sink.add obs "pathfind.congestion_blocked" (List.length log.fl_blocked);
    match result with
    | None -> Sink.incr obs "pathfind.failures"
    | Some p ->
        Sink.observe obs "pathfind.path_len" p.p_len;
        Sink.observe obs "pathfind.extra_slots" (p.p_len - dist)
  end

let reserve_path res path =
  List.iter
    (fun (channel, rslot) -> Resource.reserve res ~channel ~rslot)
    path.p_hops

(* Mirror image of [search]: BFS forward in time from (src, t_dep). *)
let search_forward ?(obs = Sink.null) ?ctx sys res ~src ~dst ~t_dep ~max_extra =
  Sink.incr obs "pathfind.searches";
  if Ids.Fpga.equal src dst then Some { p_len = 0; p_hops = [] }
  else begin
    let dist = Topology.distance (System.topology sys) src dst in
    let t_limit = t_dep + dist + max_extra in
    let parent : (int * int, (int * int) * int option) Hashtbl.t =
      Hashtbl.create 256
    in
    let queue = Queue.create () in
    let start = (Ids.Fpga.to_int src, t_dep) in
    Hashtbl.replace parent start (start, None);
    Queue.add start queue;
    let expanded = ref 0 in
    let blocked = ref 0 in
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let (f, t) as state = Queue.pop queue in
      incr expanded;
      if Ids.Fpga.to_int dst = f then found := Some state
      else if t < t_limit then begin
        let push next via =
          if not (Hashtbl.mem parent next) then begin
            Hashtbl.replace parent next (state, via);
            Queue.add next queue
          end
        in
        push (f, t + 1) None;
        List.iter
          (fun (c : System.channel) ->
            if Resource.free_at res ~channel:c.System.channel_index ~rslot:(t + 1)
            then
              push
                (Ids.Fpga.to_int c.System.dst, t + 1)
                (Some c.System.channel_index)
            else begin
              incr blocked;
              blocked_hop ctx ~channel:c.System.channel_index
            end)
          (order_channels ctx (System.out_channels sys (Ids.Fpga.of_int f)))
      end
    done;
    account_expansions ctx obs !expanded;
    Sink.add obs "pathfind.congestion_blocked" !blocked;
    match !found with
    | None ->
        Sink.incr obs "pathfind.failures";
        None
    | Some final ->
        Sink.observe obs "pathfind.path_len" (snd final - t_dep);
        Sink.observe obs "pathfind.extra_slots" (snd final - t_dep - dist);
        let rec unwind state acc =
          let prev, via = Hashtbl.find parent state in
          let acc =
            match via with
            | Some channel -> (channel, snd state) :: acc
            | None -> acc
          in
          if prev = state then acc else unwind prev acc
        in
        (* Unwinding from the destination prepends later hops first, so the
           accumulated list is already source-side first. *)
        let hops = unwind final [] in
        Some { p_len = snd final - t_dep; p_hops = hops }
  end

let shortest_free_wire_path_keeping sys res ~src ~dst ~min_left =
  if Ids.Fpga.equal src dst then Some []
  else begin
    let parent : (int, int * int option) Hashtbl.t = Hashtbl.create 64 in
    let queue = Queue.create () in
    let s = Ids.Fpga.to_int src in
    Hashtbl.replace parent s (s, None);
    Queue.add s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let f = Queue.pop queue in
      if f = Ids.Fpga.to_int dst then found := true
      else begin
        (* Prefer channels with the most wires left so dedication spreads
           instead of starving hot channels. *)
        let channels =
          List.sort
            (fun (a : System.channel) (b : System.channel) ->
              compare
                (Resource.effective_width res ~channel:b.System.channel_index)
                (Resource.effective_width res ~channel:a.System.channel_index))
            (System.out_channels sys (Ids.Fpga.of_int f))
        in
        List.iter
          (fun (c : System.channel) ->
            let g = Ids.Fpga.to_int c.System.dst in
            if
              Resource.effective_width res ~channel:c.System.channel_index
              > min_left
              && not (Hashtbl.mem parent g)
            then begin
              Hashtbl.replace parent g (f, Some c.System.channel_index);
              Queue.add g queue
            end)
          channels
      end
    done;
    if not !found then None
    else begin
      let rec unwind f acc =
        let prev, via = Hashtbl.find parent f in
        match via with
        | None -> acc
        | Some channel -> unwind prev (channel :: acc)
      in
      Some (unwind (Ids.Fpga.to_int dst) [])
    end
  end

(* Dedicating the last wire of a channel would disconnect the multiplexed
   network, so keep one wire in reserve and only fall back to draining a
   channel completely when no alternative exists. *)
let shortest_free_wire_path ?(obs = Sink.null) sys res ~src ~dst =
  Sink.incr obs "pathfind.hard_searches";
  let result =
    match shortest_free_wire_path_keeping sys res ~src ~dst ~min_left:1 with
    | Some p -> Some p
    | None ->
        Sink.incr obs "pathfind.hard_fallbacks";
        shortest_free_wire_path_keeping sys res ~src ~dst ~min_left:0
  in
  (match result with
  | Some p -> Sink.observe obs "pathfind.hard_path_len" (List.length p)
  | None -> Sink.incr obs "pathfind.failures");
  result
