(** Unified processing-order graph over route-links and latch groups, shared
    by the reverse (TIERS) and forward schedulers.

    Nodes are links plus per-block latch groups.  Edges encode
    "A is processed before B" for reverse scheduling (consumers first):
    - a link departing a block precedes every link/group whose delivered or
      origin nets combinationally feed its source terminal;
    - a latch group precedes the links delivering its input terminals;
    - groups within a block are chained in their analysis order
      (parents/consumers first).

    Strongly connected components (cross-block latch loops) are collapsed
    and processed in an arbitrary internal order, with a warning. *)

type node = Lnk of int  (** Index into the link array. *) | Grp of int * int
    (** (block index, group index). *)

val order :
  Msched_partition.Partition.t ->
  Msched_mts.Latch_analysis.t array ->
  Link.t array ->
  node list * string list
(** Consumers-first order (reverse schedulers iterate it directly; forward
    schedulers iterate it reversed), plus warnings for collapsed cycles. *)
