open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module System = Msched_arch.System
module Topology = Msched_arch.Topology
module Domain_analysis = Msched_mts.Domain_analysis
module Latch_analysis = Msched_mts.Latch_analysis
module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag

let log = Logs.Src.create "msched.tiers" ~doc:"TIERS scheduler"

module Log = (val Logs.src_log log : Logs.LOG)

type mts_mode = Mts_virtual | Mts_hard | Naive

type options = {
  mode : mts_mode;
  equalize_forks : bool;
  latch_ordering : bool;
  same_domain_only : bool;
  max_extra_slots : int;
}

let default_options =
  {
    mode = Mts_virtual;
    equalize_forks = true;
    latch_ordering = true;
    same_domain_only = true;
    max_extra_slots = 4096;
  }

let hard_options = { default_options with mode = Mts_hard }

let naive_options =
  {
    default_options with
    mode = Naive;
    equalize_forks = false;
    latch_ordering = false;
  }

exception Unroutable of Diag.t

(* Internal result of routing one link, in reverse coordinates. *)
type routed_transport = {
  rt_domain : Ids.Dom.t option;
  rt_rdep : int;
  rt_rarr : int;
  rt_hops : (int * int) list;
  rt_hard : bool;
}

type routed_link = { rl_link : Link.t; rl_transports : routed_transport list }

(* ---- Speculative parallel reverse pass (jobs > 1). ----

   Links in one batch are routed concurrently by worker domains against a
   frozen view of the reservation table, ledger and congestion history;
   nothing shared is written during speculation.  A sequential committer
   then walks the batch in canonical order and, per link, either replays
   the speculative result (valid exactly when every slot a worker probed
   free is still free and no committed link has bumped congestion history
   this batch — reservations and history are monotone within a pass, so a
   valid replay is provably the route the sequential pass would have
   found) or discards it and re-routes the link on the live path.  Either
   way the committed state, metrics and schedule are byte-identical to
   the jobs=1 pass. *)

type spec_branch =
  | Br_nocontext  (* no reroute context: plain search *)
  | Br_ripped  (* stale ledger entry: rip, then search *)
  | Br_fresh  (* no ledger entry: search *)

type spec_transport =
  | St_warm of Reroute.entry  (* ledger replay: anchor matched, hops free *)
  | St_search of {
      st_branch : spec_branch;
      st_path : Pathfind.path option;
      st_log : Pathfind.frozen_log;
      st_dist : int;
    }

type link_spec =
  | Sp_hard  (* pre-routed on dedicated wires; nothing to validate *)
  | Sp_routed of (Ids.Dom.t option * spec_transport) list

(* Batches never grow past this; a fixed cap (rather than one scaled by
   [jobs]) keeps the batch boundaries — and the tiers.par.* counters —
   identical for every parallel width. *)
let batch_cap = 32

let mode_name = function
  | Mts_virtual -> "virtual"
  | Mts_hard -> "hard"
  | Naive -> "naive"

(* Ledger key of one transport of [l] (domain [-1] when the link is not
   decomposed per domain). *)
let transport_key dir (l : Link.t) dom =
  {
    Reroute.k_dir = dir;
    k_net = Ids.Net.to_int l.Link.net;
    k_src_block = Ids.Block.to_int l.Link.src_block;
    k_dst_block = Ids.Block.to_int l.Link.dst_block;
    k_domain = (match dom with Some d -> Ids.Dom.to_int d | None -> -1);
  }

(* Can a ledger entry be replayed without a search?  Ordinary contexts
   demand the anchor and the remembered slots; exact contexts additionally
   demand the recording search's whole probe transcript to resolve
   identically (every free probe still free, every blocked probe still
   blocked), which proves the skipped BFS would have returned exactly
   [e_hops] — the bit-identity obligation of delta compilation.  [free] is
   the caller's reservation probe (live table, or overlay-aware). *)
let replayable ctx e ~r_arr ~free =
  e.Reroute.e_anchor = r_arr
  &&
  if Reroute.is_exact ctx then
    match e.Reroute.e_probes with
    | None -> false
    | Some (pf, pb) ->
        List.for_all (fun (channel, rslot) -> free ~channel ~rslot) pf
        && List.for_all
             (fun (channel, rslot) -> not (free ~channel ~rslot))
             pb
  else
    List.for_all (fun (channel, rslot) -> free ~channel ~rslot) e.Reroute.e_hops

let schedule placement dom_analysis ?analysis ?(options = default_options)
    ?(obs = Sink.null) ?reroute ?(jobs = 1) () =
  Sink.span obs ~args:[ ("mode", mode_name options.mode) ] "tiers"
  @@ fun () ->
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let sys = Placement.system placement in
  let la =
    match analysis with Some a -> a | None -> Latch_analysis.analyze part
  in
  Option.iter Reroute.clear_failures reroute;
  let warnings = ref [] in
  let warn fmt =
    Format.kasprintf
      (fun s ->
        Log.warn (fun m -> m "%s" s);
        warnings := s :: !warnings)
      fmt
  in
  let links =
    Sink.span obs "tiers.link-build" @@ fun () ->
    Array.of_list
      (Link.build placement dom_analysis
         ~decompose_mts:(options.mode <> Mts_hard)
         ~hard_mts:(options.mode = Mts_hard))
  in
  (* Per-net hard fallback: links the driver forced onto dedicated wires
     (the unroutable residue of a previous attempt) are rewritten as hard
     links, exactly as Mts_hard mode would build them — the hard pre-pass,
     the verifier's fork/dedication rules and the pin accounting then
     apply unchanged. *)
  let links =
    match reroute with
    | None -> links
    | Some ctx when Reroute.forced_hard_count ctx = 0 -> links
    | Some ctx ->
        let forced = ref 0 in
        let links =
          Array.map
            (fun (l : Link.t) ->
              if
                (not l.Link.hard)
                && Reroute.is_forced_hard ctx
                     ~net:(Ids.Net.to_int l.Link.net)
                     ~src_block:(Ids.Block.to_int l.Link.src_block)
                     ~dst_block:(Ids.Block.to_int l.Link.dst_block)
              then begin
                incr forced;
                { l with Link.hard = true; domains = [] }
              end
              else l)
            links
        in
        Sink.add obs "reroute.forced_hard" !forced;
        links
  in
  Sink.add obs "sched.links" (Array.length links);
  Sink.add obs "sched.hard_links"
    (Array.fold_left (fun n l -> if l.Link.hard then n + 1 else n) 0 links);
  Sink.annotate obs [ ("links", string_of_int (Array.length links)) ];
  let res = Resource.create sys in

  (* ---- Hard-routing pre-pass: dedicate wires for MTS crossings. ---- *)
  let hard_paths = Array.make (Array.length links) None in
  (Sink.span obs "tiers.hard-prepass" @@ fun () ->
   Array.iteri
     (fun i (l : Link.t) ->
       if l.Link.hard then
         match
           Pathfind.shortest_free_wire_path ~obs sys res ~src:l.Link.src_fpga
             ~dst:l.Link.dst_fpga
         with
         | Some channels ->
             List.iter (fun channel -> Resource.dedicate res ~channel) channels;
             hard_paths.(i) <- Some channels
         | None ->
             raise
               (Unroutable
                  (Diag.error Diag.E_CAPACITY
                     ~net:(Ids.Net.to_int l.Link.net)
                     ~fpga:(Ids.Fpga.to_int l.Link.src_fpga)
                     ~block:(Ids.Block.to_int l.Link.src_block)
                     ~culprit:(Netlist.net nl l.Link.net).Netlist.net_name
                     "hard routing exhausted wires for %a" Link.pp l)))
     links);

  (* ---- Processing order: links and latch groups, consumers first. ---- *)
  let nblocks = Partition.num_blocks part in
  let order, graph_warnings =
    Sink.span obs "tiers.order" @@ fun () -> Sched_graph.order part la links
  in
  List.iter (fun w -> warn "%s" w) graph_warnings;

  (* ---- ReadyTime requirement table, reverse coordinates. ---- *)
  let req : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let req_get b n =
    Option.value ~default:0
      (Hashtbl.find_opt req (Ids.Block.to_int b, Ids.Net.to_int n))
  in
  let req_bump b n v =
    let key = (Ids.Block.to_int b, Ids.Net.to_int n) in
    let cur = Option.value ~default:0 (Hashtbl.find_opt req key) in
    if v > cur then Hashtbl.replace req key v
  in
  (* Seed with frame-end deadlines: every origin that reaches a flip-flop
     data pin, RAM write pin or primary output must be settled that many
     slots before the frame end. *)
  for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    Ids.Net.Tbl.iter
      (fun m info ->
        match info.Latch_analysis.deadline_delay with
        | Some d -> req_bump lab.Latch_analysis.block m d
        | None -> ())
      lab.Latch_analysis.origins
  done;

  (* ---- Process nodes. ---- *)
  let routed = Array.make (Array.length links) None in
  let lmax = ref 1 in
  let lmax_reason = ref "minimum frame" in
  let local_settle b n =
    Option.value ~default:0
      (Ids.Net.Tbl.find_opt la.(b).Latch_analysis.local_max_settle n)
  in
  let unroutable_diag (l : Link.t) r_arr =
    Diag.error Diag.E_UNROUTABLE
      ~net:(Ids.Net.to_int l.Link.net)
      ~fpga:(Ids.Fpga.to_int l.Link.dst_fpga)
      ~block:(Ids.Block.to_int l.Link.dst_block)
      ~slack:(r_arr + options.max_extra_slots)
      ~culprit:(Netlist.net nl l.Link.net).Netlist.net_name
      "no path for %a within slack budget %d" Link.pp l
      options.max_extra_slots
  in
  (* Without a reroute context an unroutable transport aborts the attempt
     immediately (fail-fast, the seed behavior).  With one, the failure is
     recorded as residue and the pass continues with an optimistic
     shortest-distance estimate, so one attempt discovers the whole
     unroutable set and everything routable lands in the ledger for the
     next (warm) attempt. *)
  let searched_transport ctx (l : Link.t) dom r_arr =
    let plog =
      match ctx with
      | Some c when Reroute.is_exact c -> Some (Pathfind.probe_log ())
      | Some _ | None -> None
    in
    let probes () =
      Option.map
        (fun (pl : Pathfind.probe_log) ->
          (pl.Pathfind.pr_free, pl.Pathfind.pr_blocked))
        plog
    in
    match
      Pathfind.search ~obs ?ctx ?probe:plog sys res ~src:l.Link.src_fpga
        ~dst:l.Link.dst_fpga ~r_arr ~max_extra:options.max_extra_slots
    with
    | Some p ->
        Pathfind.reserve_path res p;
        Option.iter
          (fun c ->
            Reroute.record c (transport_key Reroute.Rev l dom)
              {
                Reroute.e_anchor = r_arr;
                e_len = p.Pathfind.p_len;
                e_hops = p.Pathfind.p_hops;
                e_probes = probes ();
              })
          ctx;
        {
          rt_domain = dom;
          rt_rdep = r_arr + p.Pathfind.p_len;
          rt_rarr = r_arr;
          rt_hops = p.Pathfind.p_hops;
          rt_hard = false;
        }
    | None -> (
        let d = unroutable_diag l r_arr in
        match ctx with
        | None -> raise (Unroutable d)
        | Some c ->
            Reroute.note_failure c (transport_key Reroute.Rev l dom) d;
            Sink.incr obs "reroute.residue";
            let dist =
              Topology.distance (System.topology sys) l.Link.src_fpga
                l.Link.dst_fpga
            in
            {
              rt_domain = dom;
              rt_rdep = r_arr + dist;
              rt_rarr = r_arr;
              rt_hops = [];
              rt_hard = false;
            })
  in
  let route_transport (l : Link.t) dom r_arr =
    match reroute with
    | None -> searched_transport None l dom r_arr
    | Some ctx -> (
        let key = transport_key Reroute.Rev l dom in
        match Reroute.lookup ctx key with
        | Some e
          when replayable ctx e ~r_arr ~free:(fun ~channel ~rslot ->
                   Resource.free_at res ~channel ~rslot) ->
            (* Warm replay: same requirement, slots still free (and under
               an exact context, the whole probe transcript unchanged) —
               reserve the remembered path without searching. *)
            List.iter
              (fun (channel, rslot) -> Resource.reserve res ~channel ~rslot)
              e.Reroute.e_hops;
            Reroute.note_reused ctx;
            Sink.incr obs "reroute.reused";
            {
              rt_domain = dom;
              rt_rdep = r_arr + e.Reroute.e_len;
              rt_rarr = r_arr;
              rt_hops = e.Reroute.e_hops;
              rt_hard = false;
            }
        | Some _ ->
            Reroute.rip ctx key;
            Reroute.note_ripped ctx;
            Sink.incr obs "reroute.ripped";
            searched_transport reroute l dom r_arr
        | None ->
            Reroute.note_fresh ctx;
            Sink.incr obs "reroute.fresh";
            searched_transport reroute l dom r_arr)
  in
  let debug = Sys.getenv_opt "MSCHED_DEBUG_TIERS" <> None in
  let link_domains (l : Link.t) =
    match l.Link.domains with
    | [] -> [ None ]
    | ds -> List.map Option.some ds
  in
  let hard_transports xi r_arr =
    match hard_paths.(xi) with
    | Some channels ->
        (* Hard wires are unregistered: a transit through an FPGA's
           fabric and IO buffers is budgeted at two virtual clocks per
           hop, versus one for a pipelined virtual-wire hop. *)
        let hops = List.map (fun c -> (c, 0)) channels in
        [
          {
            rt_domain = None;
            rt_rdep = r_arr + (2 * List.length channels);
            rt_rarr = r_arr;
            rt_hops = hops;
            rt_hard = true;
          };
        ]
    | None -> assert false
  in
  let equalized ts =
    if options.equalize_forks && List.length ts > 1 then begin
      let rdep = List.fold_left (fun acc t -> max acc t.rt_rdep) 0 ts in
      List.map (fun t -> { t with rt_rdep = rdep }) ts
    end
    else ts
  in
  let finish_link xi transports =
    let l = links.(xi) in
    Sink.add obs "sched.transports" (List.length transports);
    Sink.observe obs "fork.fanout" (List.length transports);
    let rdep_max =
      List.fold_left (fun acc t -> max acc t.rt_rdep) 0 transports
    in
    routed.(xi) <- Some { rl_link = l; rl_transports = transports };
    (* Propagate into the source block: every origin feeding this link's
       source terminal must be ready MaxDelay earlier (in forward time) than
       the departure. *)
    let sb = Ids.Block.to_int l.Link.src_block in
    Ids.Net.Tbl.iter
      (fun m info ->
        List.iter
          (fun (onet, (d : Traverse.delay)) ->
            if Ids.Net.equal onet l.Link.net then
              req_bump l.Link.src_block m (rdep_max + d.Traverse.dmax))
          info.Latch_analysis.to_outputs)
      la.(sb).Latch_analysis.origins;
    (* Frame-start-settled sources bound the schedule length. *)
    let need = rdep_max + local_settle sb l.Link.net in
    if need > !lmax then begin
      lmax := need;
      lmax_reason :=
        Format.asprintf "transport chain: settle + departure of %a" Link.pp l
    end
  in
  let process_link xi =
    let l = links.(xi) in
    let r_arr = req_get l.Link.dst_block l.Link.net in
    if debug then Format.eprintf "LINK %a r_arr=%d@." Link.pp l r_arr;
    let transports =
      match hard_paths.(xi) with
      | Some _ -> hard_transports xi r_arr
      | None ->
          equalized
            (List.map (fun d -> route_transport l d r_arr) (link_domains l))
    in
    finish_link xi transports
  in
  let process_group b gi =
    let lab = la.(b) in
    let block = lab.Latch_analysis.block in
    let g = lab.Latch_analysis.groups.(gi) in
    let r_group =
      List.fold_left
        (fun acc latch ->
          match (Netlist.cell nl latch).Cell.output with
          | Some out -> max acc (req_get block out)
          | None -> acc)
        0 g.Latch_analysis.latches
    in
    if debug then
      Format.eprintf "GROUP b%d g%d R=%d latches=%a@." b gi r_group
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Ids.Cell.pp)
        g.Latch_analysis.latches;
    (* The latch evaluation itself costs one level on top of the pin
       delay, hence the +1 on both sides. *)
    let bump_for_dep (dep : Latch_analysis.dep) ~gate_side =
      (match dep.Latch_analysis.dep_pd.Latch_analysis.to_data with
      | Some d ->
          req_bump block dep.Latch_analysis.dep_origin
            (r_group + d.Traverse.dmax + 1)
      | None -> ());
      if gate_side then
        match dep.Latch_analysis.dep_pd.Latch_analysis.to_gate with
        | Some d ->
            req_bump block dep.Latch_analysis.dep_origin
              (r_group + d.Traverse.dmax + 1)
        | None -> ()
    in
    List.iter
      (bump_for_dep ~gate_side:options.latch_ordering)
      g.Latch_analysis.input_deps;
    List.iter (bump_for_dep ~gate_side:true) g.Latch_analysis.local_deps
  in
  (* ---- Speculative routing of one link against frozen state. ----
     Runs on a worker domain: reads [links], [hard_paths], [res], the
     ledger and history, writes only its own overlay/log/sink. *)
  let overlay_add overlay hops =
    List.iter
      (fun (c, r) ->
        Hashtbl.replace overlay (c, r)
          (1 + Option.value ~default:0 (Hashtbl.find_opt overlay (c, r))))
      hops
  in
  let spec_link wobs xi r_arr =
    let l = links.(xi) in
    match hard_paths.(xi) with
    | Some _ -> Sp_hard
    | None ->
        (* Overlay of this link's own earlier transports (a multi-domain
           link's forks contend with each other exactly as they would
           sequentially); link-local history bumps keep the tie-break
           ordering of later forks consistent with the sequential pass. *)
        let overlay = Hashtbl.create 16 in
        let local_history = Hashtbl.create 8 in
        let local_total = ref 0 in
        let frozen_search branch =
          Sink.incr wobs "tiers.par.spec_searches";
          let log = Pathfind.frozen_log () in
          let p =
            Pathfind.search_frozen ?ctx:reroute sys res ~overlay
              ~local_history ~local_total ~log ~src:l.Link.src_fpga
              ~dst:l.Link.dst_fpga ~r_arr ~max_extra:options.max_extra_slots
          in
          (match p with
          | Some p -> overlay_add overlay p.Pathfind.p_hops
          | None -> ());
          St_search
            {
              st_branch = branch;
              st_path = p;
              st_log = log;
              st_dist =
                Topology.distance (System.topology sys) l.Link.src_fpga
                  l.Link.dst_fpga;
            }
        in
        let spec_one dom =
          let st =
            match reroute with
            | None -> frozen_search Br_nocontext
            | Some ctx -> (
                match Reroute.lookup ctx (transport_key Reroute.Rev l dom) with
                | Some e
                  when replayable ctx e ~r_arr ~free:(fun ~channel ~rslot ->
                           Pathfind.overlay_free res overlay ~channel ~rslot)
                  ->
                    overlay_add overlay e.Reroute.e_hops;
                    St_warm e
                | Some _ -> frozen_search Br_ripped
                | None -> frozen_search Br_fresh)
          in
          (dom, st)
        in
        Sp_routed (List.map spec_one (link_domains l))
  in
  (* ---- Commit: validate a speculative result against live state and,
     if valid, replay its effects in exact sequential order. ---- *)
  let try_commit_spec xi r_arr spec =
    let l = links.(xi) in
    match spec with
    | Sp_hard ->
        if debug then Format.eprintf "LINK %a r_arr=%d@." Link.pp l r_arr;
        finish_link xi (hard_transports xi r_arr);
        true
    | Sp_routed specs ->
        (* Every slot a worker probed free must still be free — probed
           through a fresh overlay rebuilt from this link's own transports,
           so intra-link contention is re-checked too. *)
        let overlay = Hashtbl.create 16 in
        let free ~channel ~rslot =
          Pathfind.overlay_free res overlay ~channel ~rslot
        in
        let transport_ok (_, st) =
          match st with
          | St_warm e ->
              replayable (Option.get reroute) e ~r_arr ~free
              && begin
                   overlay_add overlay e.Reroute.e_hops;
                   true
                 end
          | St_search { st_path; st_log; _ } ->
              List.for_all
                (fun (channel, rslot) -> free ~channel ~rslot)
                st_log.Pathfind.fl_free
              && begin
                   (match st_path with
                   | Some p -> overlay_add overlay p.Pathfind.p_hops
                   | None -> ());
                   true
                 end
        in
        List.for_all transport_ok specs
        && begin
             if debug then
               Format.eprintf "LINK %a r_arr=%d@." Link.pp l r_arr;
             let commit_one (dom, st) =
               match st with
               | St_warm e ->
                   let ctx = Option.get reroute in
                   List.iter
                     (fun (channel, rslot) ->
                       Resource.reserve res ~channel ~rslot)
                     e.Reroute.e_hops;
                   Reroute.note_reused ctx;
                   Sink.incr obs "reroute.reused";
                   {
                     rt_domain = dom;
                     rt_rdep = r_arr + e.Reroute.e_len;
                     rt_rarr = r_arr;
                     rt_hops = e.Reroute.e_hops;
                     rt_hard = false;
                   }
               | St_search { st_branch; st_path; st_log; st_dist } ->
                   (match (st_branch, reroute) with
                   | Br_ripped, Some ctx ->
                       Reroute.rip ctx (transport_key Reroute.Rev l dom);
                       Reroute.note_ripped ctx;
                       Sink.incr obs "reroute.ripped"
                   | Br_fresh, Some ctx ->
                       Reroute.note_fresh ctx;
                       Sink.incr obs "reroute.fresh"
                   | (Br_nocontext | Br_ripped | Br_fresh), _ -> ());
                   Pathfind.replay_frozen_accounting ~obs ?ctx:reroute st_log
                     st_path ~dist:st_dist;
                   (match st_path with
                   | Some p ->
                       Pathfind.reserve_path res p;
                       Option.iter
                         (fun c ->
                           Reroute.record c (transport_key Reroute.Rev l dom)
                             {
                               Reroute.e_anchor = r_arr;
                               e_len = p.Pathfind.p_len;
                               e_hops = p.Pathfind.p_hops;
                               e_probes =
                                 (if Reroute.is_exact c then
                                    Some
                                      ( st_log.Pathfind.fl_free,
                                        st_log.Pathfind.fl_blocked_slots )
                                  else None);
                             })
                         reroute;
                       {
                         rt_domain = dom;
                         rt_rdep = r_arr + p.Pathfind.p_len;
                         rt_rarr = r_arr;
                         rt_hops = p.Pathfind.p_hops;
                         rt_hard = false;
                       }
                   | None -> (
                       let d = unroutable_diag l r_arr in
                       match reroute with
                       | None -> raise (Unroutable d)
                       | Some c ->
                           Reroute.note_failure c
                             (transport_key Reroute.Rev l dom) d;
                           Sink.incr obs "reroute.residue";
                           {
                             rt_domain = dom;
                             rt_rdep = r_arr + st_dist;
                             rt_rarr = r_arr;
                             rt_hops = [];
                             rt_hard = false;
                           }))
             in
             finish_link xi (equalized (List.map commit_one specs));
             true
           end
  in
  let reverse_pass_sequential () =
    List.iter
      (fun node ->
        match node with
        | Sched_graph.Lnk i -> process_link i
        | Sched_graph.Grp (b, gi) -> process_group b gi)
      order
  in
  (* Parallel driver: build a batch of provably independent consecutive
     links (no member's destination block is another member's source, so
     the [req] values captured at batch build equal the sequential ones),
     speculate the batch on the pool, then commit sequentially.  Congestion
     history written by a commit steers later searches, so the first commit
     that bumps history poisons the rest of its batch (dirty flag → those
     links re-route live). *)
  let reverse_pass_parallel pool =
    Sink.annotate obs [ ("jobs", string_of_int jobs) ];
    let wsinks = Array.init jobs (fun _ -> Sink.fork obs) in
    let hist_total () =
      match reroute with Some c -> Reroute.history_total c | None -> 0
    in
    let nodes = Array.of_list order in
    let n = Array.length nodes in
    let i = ref 0 in
    while !i < n do
      match nodes.(!i) with
      | Sched_graph.Grp (b, gi) ->
          process_group b gi;
          Stdlib.incr i
      | Sched_graph.Lnk _ ->
          let members = ref [] in
          let count = ref 0 in
          let srcs = Hashtbl.create 16 in
          let stop = ref false in
          while (not !stop) && !i < n && !count < batch_cap do
            match nodes.(!i) with
            | Sched_graph.Grp _ -> stop := true
            | Sched_graph.Lnk xi ->
                let l = links.(xi) in
                if Hashtbl.mem srcs (Ids.Block.to_int l.Link.dst_block) then
                  stop := true
                else begin
                  Hashtbl.replace srcs (Ids.Block.to_int l.Link.src_block) ();
                  members :=
                    (xi, req_get l.Link.dst_block l.Link.net) :: !members;
                  Stdlib.incr count;
                  Stdlib.incr i
                end
          done;
          let batch = Array.of_list (List.rev !members) in
          let bn = Array.length batch in
          Sink.incr obs "tiers.par.batches";
          if bn = 1 then begin
            Sink.incr obs "tiers.par.links_solo";
            process_link (fst batch.(0))
          end
          else begin
            let specs = Array.make bn None in
            Msched_par.Pool.run pool ~n:bn (fun ~worker k ->
                let xi, r_arr = batch.(k) in
                specs.(k) <- Some (spec_link wsinks.(worker) xi r_arr));
            let dirty = ref false in
            Array.iteri
              (fun k spec ->
                let xi, r_arr = batch.(k) in
                let h0 = hist_total () in
                if (not !dirty) && try_commit_spec xi r_arr (Option.get spec)
                then Sink.incr obs "tiers.par.links_committed"
                else begin
                  Sink.incr obs "tiers.par.links_redone";
                  process_link xi
                end;
                if hist_total () <> h0 then dirty := true)
              specs
          end
    done;
    Array.iter (fun w -> Sink.merge obs w) wsinks
  in
  (Sink.span obs "tiers.reverse-pass" @@ fun () ->
   if jobs <= 1 then reverse_pass_sequential ()
   else Msched_par.Pool.with_pool ~jobs (fun pool -> reverse_pass_parallel pool));

  (* Deferred unroutability: with a reroute context the whole residue was
     collected above; the attempt still fails, but the ledger now holds
     every routable transport and the context names every culprit. *)
  (match reroute with
  | None -> ()
  | Some ctx -> (
      Reroute.record_metrics obs ctx;
      match Reroute.failures ctx with
      | [] -> ()
      | (_, d) :: _ as fails ->
          Log.warn (fun m ->
              m "%d transport(s) unroutable this attempt" (List.length fails));
          raise (Unroutable d)));

  (* ---- Schedule length. ---- *)
  let length = ref !lmax in
  let length_driver = ref !lmax_reason in
  let bump_len need reason =
    if need > !length then begin
      length := need;
      length_driver := reason ()
    end
  in
  bump_len (Resource.max_rslot res) (fun () ->
      "wire congestion (latest reserved slot)");
  (Sink.span obs "tiers.length" @@ fun () ->
   for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    let block = lab.Latch_analysis.block in
    List.iter
      (fun cid ->
        let c = Netlist.cell nl cid in
        let settle n = local_settle b n in
        let deadline_nets =
          match c.Cell.kind, c.Cell.trigger with
          | Cell.Flip_flop, Some (Cell.Dom_clock _) -> [ c.Cell.data_inputs.(0) ]
          | Cell.Ram { addr_bits }, _ ->
              List.init (2 + addr_bits) (fun i -> c.Cell.data_inputs.(i))
          | Cell.Output, _ -> [ c.Cell.data_inputs.(0) ]
          | (Cell.Flip_flop | Cell.Gate _ | Cell.Latch _ | Cell.Input _
            | Cell.Clock_source _), _ ->
              []
        in
        List.iter
          (fun n ->
            bump_len (settle n) (fun () ->
                Format.asprintf
                  "local combinational chain to frame-end sink %s in %a"
                  c.Cell.name Ids.Block.pp (Ids.Block.of_int b)))
          deadline_nets;
        (* Latches, net-triggered flip-flops and net-triggered RAM write
           ports: local pin settle plus the reverse-time output requirement
           must fit in the frame. *)
        match c.Cell.kind, c.Cell.trigger with
        | Cell.Latch _, _
        | (Cell.Flip_flop | Cell.Ram _), Some (Cell.Net_trigger _) ->
            let r =
              match c.Cell.output with
              | Some out -> req_get block out
              | None -> 0
            in
            let pin_settle =
              let data =
                match c.Cell.kind with
                | Cell.Ram { addr_bits } ->
                    let m = ref 0 in
                    for i = 0 to (2 + addr_bits) - 1 do
                      m := max !m (settle c.Cell.data_inputs.(i))
                    done;
                    !m
                | Cell.Latch _ | Cell.Flip_flop | Cell.Gate _ | Cell.Input _
                | Cell.Clock_source _ | Cell.Output ->
                    settle c.Cell.data_inputs.(0)
              in
              let gate =
                match c.Cell.trigger with
                | Some (Cell.Net_trigger tn) -> settle tn
                | Some (Cell.Dom_clock _) | None -> 0
              in
              max data gate
            in
            bump_len (r + pin_settle + 1) (fun () ->
                Format.asprintf "latch evaluation of %s in %a" c.Cell.name
                  Ids.Block.pp (Ids.Block.of_int b))
        | (Cell.Flip_flop | Cell.Ram _ | Cell.Gate _ | Cell.Input _
          | Cell.Clock_source _ | Cell.Output), _ ->
            ())
      (Partition.cells_of_block part (Ids.Block.of_int b))
   done);
  let length_driver = !length_driver in
  let length = !length in
  let fwd r = length - r in

  (* ---- Forward-time link schedules. ---- *)
  let link_scheds =
    Array.to_list routed
    |> List.filter_map (fun r ->
           Option.map
             (fun rl ->
               {
                 Schedule.ls_link = rl.rl_link;
                 ls_transports =
                   List.map
                     (fun t ->
                       {
                         Schedule.tr_domain = t.rt_domain;
                         tr_fwd_dep = fwd t.rt_rdep;
                         tr_fwd_arr = fwd t.rt_rarr;
                         tr_hops =
                           List.map (fun (c, rs) -> (c, fwd rs)) t.rt_hops;
                         tr_hard = t.rt_hard;
                       })
                     rl.rl_transports;
               })
             r)
  in

  (* ---- Data hold-offs (delay compensation). ---- *)
  let holdoffs =
    if not options.latch_ordering then []
    else
      Sink.span obs "tiers.holdoff" @@ fun () ->
      Holdoff.compute ~obs part dom_analysis la
        ~same_domain_only:options.same_domain_only ~length
        ~arrival:(Holdoff.arrival_oracle link_scheds)
  in
  let sched =
    {
      Schedule.length;
      length_driver;
      vclock_hz = System.vclock_hz sys;
      link_scheds;
      holdoffs;
      peak_channel_usage = Resource.peak_usage res;
      dedicated_per_channel =
        Array.init
          (Array.length (System.channels sys))
          (fun c -> Resource.dedicated res ~channel:c);
      warnings = List.rev !warnings;
    }
  in
  Schedule.record_metrics obs sched sys;
  sched
