open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module System = Msched_arch.System
module Domain_analysis = Msched_mts.Domain_analysis
module Latch_analysis = Msched_mts.Latch_analysis
module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag

exception Unsupported of Diag.t

(* Availability of a value at a block terminal, forward slots.  Built from
   the block's origin tables: local frame-start paths, link arrivals plus
   combinational delay, and latch evaluation times plus delay. *)
type avail_env = {
  arr : (int * int, int) Hashtbl.t;  (* (block, net) -> link arrival *)
  eval : int Ids.Cell.Tbl.t;  (* latch/net-FF -> evaluation slot *)
}

let schedule placement dom_analysis ?analysis ?(options = Tiers.default_options)
    ?(obs = Sink.null) ?reroute () =
  if options.Tiers.mode = Tiers.Mts_hard then
    raise
      (Unsupported
         (Diag.error Diag.E_UNSUPPORTED
            "forward scheduler has no hard-routing mode"));
  Sink.span obs "forward" @@ fun () ->
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let sys = Placement.system placement in
  let la =
    match analysis with Some a -> a | None -> Latch_analysis.analyze part
  in
  let links =
    Sink.span obs "forward.link-build" @@ fun () ->
    Array.of_list
      (Link.build placement dom_analysis ~decompose_mts:true ~hard_mts:false)
  in
  Sink.add obs "sched.links" (Array.length links);
  let res = Resource.create sys in
  let order, warnings =
    Sink.span obs "forward.order" @@ fun () -> Sched_graph.order part la links
  in
  let order = List.rev order (* producers first *) in
  let env = { arr = Hashtbl.create 1024; eval = Ids.Cell.Tbl.create 64 } in
  let arrival ~block ~net =
    Option.value ~default:0
      (Hashtbl.find_opt env.arr (block, Ids.Net.to_int net))
  in
  let local_settle b n =
    Option.value ~default:0
      (Ids.Net.Tbl.find_opt la.(b).Latch_analysis.local_max_settle n)
  in
  (* Every stateful cell gets a local-only evaluation estimate up front, so
     links departing on the cones of latches with no block-input
     dependencies still wait for their (hold-off-delayed) outputs; group
     processing raises the estimates with link-fed contributions. *)
  for b = 0 to Partition.num_blocks part - 1 do
    List.iter
      (fun cid ->
        let c = Netlist.cell nl cid in
        match c.Cell.kind, c.Cell.trigger with
        | Cell.Latch _, _
        | (Cell.Flip_flop | Cell.Ram _), Some (Cell.Net_trigger _) ->
            let gs =
              match c.Cell.trigger with
              | Some (Cell.Net_trigger tn) -> local_settle b tn
              | Some (Cell.Dom_clock _) | None -> 0
            in
            let ds = local_settle b c.Cell.data_inputs.(0) in
            let ho = if options.Tiers.latch_ordering then gs + 1 else 0 in
            Ids.Cell.Tbl.replace env.eval cid (max ds ho + 1)
        | _, _ -> ())
      (Partition.cells_of_block part (Ids.Block.of_int b))
  done;
  (* Availability of net [n] (an origin or a downstream net) at block [b]:
     local settle, plus every origin that reaches it. *)
  let avail b n =
    let lab = la.(b) in
    let base = local_settle b n in
    Ids.Net.Tbl.fold
      (fun m info acc ->
        let reaches =
          List.find_opt
            (fun (onet, _) -> Ids.Net.equal onet n)
            info.Latch_analysis.to_outputs
        in
        match reaches with
        | None -> acc
        | Some (_, d) ->
            let t0 =
              match Ids.Cell.Tbl.find_opt env.eval (Netlist.driver nl m).Cell.id with
              | Some e -> e  (* latch-output origin *)
              | None -> arrival ~block:b ~net:m  (* link-fed origin *)
            in
            max acc (t0 + d.Traverse.dmax))
      lab.Latch_analysis.origins base
  in
  let shares_domain origin data_net =
    (not options.Tiers.same_domain_only)
    || not
         (Ids.Dom.Set.is_empty
            (Ids.Dom.Set.inter
               (Domain_analysis.transitions dom_analysis origin)
               (Domain_analysis.transitions dom_analysis data_net)))
  in
  let process_group b gi =
    let g = la.(b).Latch_analysis.groups.(gi) in
    (* Online evaluation-time estimate; the official hold-offs are computed
       by [Holdoff.compute] from the same arrivals at the end. *)
    List.iter
      (fun latch ->
        let c = Netlist.cell nl latch in
        let data_net = c.Cell.data_inputs.(0) in
        let side ~gate =
          let base =
            match gate, c.Cell.trigger with
            | true, Some (Cell.Net_trigger tn) -> local_settle b tn
            | true, _ -> 0
            | false, _ -> local_settle b data_net
          in
          List.fold_left
            (fun acc (d : Latch_analysis.dep) ->
              if not (Ids.Cell.equal d.Latch_analysis.dep_latch latch) then acc
              else
                let delay =
                  if gate then d.Latch_analysis.dep_pd.Latch_analysis.to_gate
                  else d.Latch_analysis.dep_pd.Latch_analysis.to_data
                in
                match delay with
                | None -> acc
                | Some dd ->
                    if
                      gate
                      && not (shares_domain d.Latch_analysis.dep_origin data_net)
                    then acc
                    else
                      let t0 =
                        match
                          Ids.Cell.Tbl.find_opt env.eval
                            (Netlist.driver nl d.Latch_analysis.dep_origin)
                              .Cell.id
                        with
                        | Some e -> e
                        | None ->
                            arrival ~block:b ~net:d.Latch_analysis.dep_origin
                      in
                      max acc (t0 + dd.Traverse.dmax))
            base
            (g.Latch_analysis.input_deps @ g.Latch_analysis.local_deps)
        in
        let gate_settle = side ~gate:true in
        let data_settle = side ~gate:false in
        let ho = if options.Tiers.latch_ordering then gate_settle + 1 else 0 in
        let prev =
          Option.value ~default:0 (Ids.Cell.Tbl.find_opt env.eval latch)
        in
        Ids.Cell.Tbl.replace env.eval latch (max prev (max data_settle ho + 1)))
      g.Latch_analysis.latches
  in
  let routed = Array.make (Array.length links) [] in
  let transport_key (l : Link.t) dom =
    {
      Reroute.k_dir = Reroute.Fwd;
      k_net = Ids.Net.to_int l.Link.net;
      k_src_block = Ids.Block.to_int l.Link.src_block;
      k_dst_block = Ids.Block.to_int l.Link.dst_block;
      k_domain = (match dom with Some d -> Ids.Dom.to_int d | None -> -1);
    }
  in
  let search_transport ctx (l : Link.t) dom dep =
    match
      Pathfind.search_forward ~obs ?ctx sys res ~src:l.Link.src_fpga
        ~dst:l.Link.dst_fpga ~t_dep:dep ~max_extra:options.Tiers.max_extra_slots
    with
    | Some p ->
        Pathfind.reserve_path res p;
        (match ctx with
        | Some c ->
            Reroute.record c (transport_key l dom)
              {
                Reroute.e_anchor = dep;
                e_len = p.Pathfind.p_len;
                e_hops = p.Pathfind.p_hops;
                e_probes = None;
              }
        | None -> ());
        (dom, dep, dep + p.Pathfind.p_len, p.Pathfind.p_hops)
    | None ->
        raise
          (Tiers.Unroutable
             (Diag.error Diag.E_UNROUTABLE
                ~net:(Ids.Net.to_int l.Link.net)
                ~fpga:(Ids.Fpga.to_int l.Link.dst_fpga)
                ~block:(Ids.Block.to_int l.Link.dst_block)
                ~slack:(dep + options.Tiers.max_extra_slots)
                ~culprit:(Netlist.net nl l.Link.net).Netlist.net_name
                "forward: no path for %a within slack budget %d" Link.pp l
                options.Tiers.max_extra_slots))
  in
  let route_transport (l : Link.t) dom dep =
    match reroute with
    | None -> search_transport None l dom dep
    | Some c -> (
        let key = transport_key l dom in
        match Reroute.lookup c key with
        | Some e
          when e.Reroute.e_anchor = dep
               && List.for_all
                    (fun (channel, rslot) ->
                      Resource.free_at res ~channel ~rslot)
                    e.Reroute.e_hops ->
            List.iter
              (fun (channel, rslot) -> Resource.reserve res ~channel ~rslot)
              e.Reroute.e_hops;
            Reroute.note_reused c;
            Sink.incr obs "reroute.reused";
            (dom, dep, dep + e.Reroute.e_len, e.Reroute.e_hops)
        | Some _ ->
            Reroute.rip c key;
            Reroute.note_ripped c;
            Sink.incr obs "reroute.ripped";
            search_transport reroute l dom dep
        | None ->
            Reroute.note_fresh c;
            Sink.incr obs "reroute.fresh";
            search_transport reroute l dom dep)
  in
  let process_link xi =
    let l = links.(xi) in
    let sb = Ids.Block.to_int l.Link.src_block in
    let dep = avail sb l.Link.net in
    let doms =
      match l.Link.domains with [] -> [ None ] | ds -> List.map Option.some ds
    in
    let transports = List.map (fun dom -> route_transport l dom dep) doms in
    let transports =
      if options.Tiers.equalize_forks && List.length transports > 1 then begin
        let arr_max =
          List.fold_left (fun acc (_, _, arr, _) -> max acc arr) 0 transports
        in
        List.map (fun (d, dep, _, hops) -> (d, dep, arr_max, hops)) transports
      end
      else transports
    in
    Sink.add obs "sched.transports" (List.length transports);
    Sink.observe obs "fork.fanout" (List.length transports);
    routed.(xi) <- transports;
    let arr_final =
      List.fold_left (fun acc (_, _, arr, _) -> max acc arr) 0 transports
    in
    let key = (Ids.Block.to_int l.Link.dst_block, Ids.Net.to_int l.Link.net) in
    let cur = Option.value ~default:0 (Hashtbl.find_opt env.arr key) in
    if arr_final > cur then Hashtbl.replace env.arr key arr_final
  in
  (Sink.span obs "forward.forward-pass" @@ fun () ->
   List.iter
     (fun node ->
       match node with
       | Sched_graph.Lnk i -> process_link i
       | Sched_graph.Grp (b, gi) -> process_group b gi)
     order);
  (* ---- Frame length: latest arrival/evaluation plus frame-end cones. *)
  let length = ref 1 in
  let length_driver = ref "minimum frame" in
  let bump_len need reason =
    if need > !length then begin
      length := need;
      length_driver := reason ()
    end
  in
  bump_len (Resource.max_rslot res) (fun () ->
      "wire congestion (latest reserved slot)");
  let nblocks = Partition.num_blocks part in
  (Sink.span obs "forward.length" @@ fun () ->
   for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    Ids.Net.Tbl.iter
      (fun m info ->
        match info.Latch_analysis.deadline_delay with
        | None -> ()
        | Some d ->
            let t0 =
              match
                Ids.Cell.Tbl.find_opt env.eval (Netlist.driver nl m).Cell.id
              with
              | Some e -> e
              | None -> arrival ~block:b ~net:m
            in
            bump_len (t0 + d) (fun () ->
                Format.asprintf "frame-end cone of origin %a in %a" Ids.Net.pp
                  m Ids.Block.pp (Ids.Block.of_int b)))
      lab.Latch_analysis.origins;
    (* Pure local frame-end chains and latch evaluations. *)
    List.iter
      (fun cid ->
        let c = Netlist.cell nl cid in
        let local_reason () =
          Format.asprintf "local chain to sink %s in %a" c.Cell.name
            Ids.Block.pp (Ids.Block.of_int b)
        in
        (match c.Cell.kind, c.Cell.trigger with
        | Cell.Flip_flop, Some (Cell.Dom_clock _) ->
            bump_len (local_settle b c.Cell.data_inputs.(0)) local_reason
        | Cell.Ram { addr_bits }, _ ->
            for i = 0 to (2 + addr_bits) - 1 do
              bump_len (local_settle b c.Cell.data_inputs.(i)) local_reason
            done
        | Cell.Output, _ ->
            bump_len (local_settle b c.Cell.data_inputs.(0)) local_reason
        | ( Cell.Flip_flop | Cell.Gate _ | Cell.Latch _ | Cell.Input _
          | Cell.Clock_source _ ), _ ->
            ());
        match Ids.Cell.Tbl.find_opt env.eval cid with
        | Some e ->
            bump_len (e + 1) (fun () ->
                Format.asprintf "latch evaluation of %s in %a" c.Cell.name
                  Ids.Block.pp (Ids.Block.of_int b))
        | None -> ())
      (Partition.cells_of_block part (Ids.Block.of_int b))
   done);
  let length_driver = !length_driver in
  let length = !length in
  let link_scheds =
    Array.to_list
      (Array.mapi
         (fun i transports ->
           {
             Schedule.ls_link = links.(i);
             ls_transports =
               List.map
                 (fun (dom, dep, arr, hops) ->
                   {
                     Schedule.tr_domain = dom;
                     tr_fwd_dep = dep;
                     tr_fwd_arr = arr;
                     tr_hops = hops;
                     tr_hard = false;
                   })
                 transports;
           })
         routed)
  in
  let holdoffs =
    if not options.Tiers.latch_ordering then []
    else
      Sink.span obs "forward.holdoff" @@ fun () ->
      Holdoff.compute ~obs part dom_analysis la
        ~same_domain_only:options.Tiers.same_domain_only ~length
        ~arrival:(Holdoff.arrival_oracle link_scheds)
  in
  let sched =
    {
      Schedule.length;
      length_driver;
      vclock_hz = System.vclock_hz sys;
      link_scheds;
      holdoffs;
      peak_channel_usage = Resource.peak_usage res;
      dedicated_per_channel =
        Array.make (Array.length (System.channels sys)) 0;
      warnings;
    }
  in
  (match reroute with
  | Some c -> Reroute.record_metrics obs c
  | None -> ());
  Schedule.record_metrics obs sched sys;
  sched
