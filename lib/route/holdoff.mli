(** Data/gate hold-off finalization, shared by the reverse (TIERS) and
    forward schedulers.

    Once transports have forward-time arrivals and the frame length is
    known, every latch and net-triggered flip-flop gets:
    - [ho_gate]: the slot at which its gate pin's settled value is
      presented (masking transients — intra-FPGA evaluation is scheduled);
    - [ho_data]: the slot before which data-pin updates are buffered,
      always strictly after [ho_gate] (the paper's delay compensation).

    Settle times combine local frame-start paths, link-fed paths (arrival
    plus max pin delay) and local latch-to-latch chains (relaxed to a fixed
    point, clamped at the frame length).  With [same_domain_only], gate
    contributions whose transition domains are disjoint from the data net's
    are ignored (the paper's Observation 1). *)

open Msched_netlist

val compute :
  ?obs:Msched_obs.Sink.t ->
  Msched_partition.Partition.t ->
  Msched_mts.Domain_analysis.t ->
  Msched_mts.Latch_analysis.t array ->
  same_domain_only:bool ->
  length:int ->
  arrival:(block:int -> net:Ids.Net.t -> int) ->
  Schedule.holdoff list
(** [arrival ~block ~net] is the forward slot at which the (last) transport
    delivering [net] to [block] lands; 0 when the net is not delivered
    there. *)

val arrival_oracle :
  Schedule.link_sched list -> block:int -> net:Ids.Net.t -> int
(** Builds the standard arrival oracle over a finished transport list
    (indexed once, O(1) per query). *)
