(** Time-expanded wire reservation tables.

    Physical wires inside one directed channel are interchangeable, so
    reservations are counted per (channel, reverse slot): a slot can hold at
    most [effective width] concurrent transports.  Hard routing removes whole
    wires from a channel's pool by incrementing its dedicated count. *)

type t

val create : Msched_arch.System.t -> t

val dedicate : t -> channel:int -> unit
(** Permanently remove one wire from the channel's multiplexed pool.
    @raise Invalid_argument if the channel has no wires left. *)

val dedicated : t -> channel:int -> int
val effective_width : t -> channel:int -> int
(** Width available to time-multiplexed traffic. *)

val free_at : t -> channel:int -> rslot:int -> bool
val reserve : t -> channel:int -> rslot:int -> unit
(** @raise Invalid_argument when the slot is full. *)

val usage_at : t -> channel:int -> rslot:int -> int
val peak_usage : t -> int array
(** Per channel: the maximum number of wires concurrently used in any slot
    (multiplexed traffic only; add {!dedicated} for total pin pressure). *)

val max_rslot : t -> int
(** Largest reverse slot with any reservation ([-1] when none). *)
