open Msched_netlist
module Partition = Msched_partition.Partition
module Domain_analysis = Msched_mts.Domain_analysis
module Latch_analysis = Msched_mts.Latch_analysis
module Sink = Msched_obs.Sink

let arrival_oracle link_scheds =
  let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      let key =
        ( Ids.Block.to_int ls.Schedule.ls_link.Link.dst_block,
          Ids.Net.to_int ls.Schedule.ls_link.Link.net )
      in
      let arr =
        List.fold_left
          (fun acc t -> max acc t.Schedule.tr_fwd_arr)
          0 ls.Schedule.ls_transports
      in
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      if arr > cur then Hashtbl.replace tbl key arr)
    link_scheds;
  fun ~block ~net ->
    Option.value ~default:0 (Hashtbl.find_opt tbl (block, Ids.Net.to_int net))

let compute ?(obs = Sink.null) part dom_analysis la ~same_domain_only ~length
    ~arrival =
  let nl = Partition.netlist part in
  let nblocks = Partition.num_blocks part in
  let out = ref [] in
  for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    (* Per-state-element dependency lists from all groups of the block;
       the bool marks link-fed (block input) origins. *)
    let deps_of : (bool * Latch_analysis.dep) list Ids.Cell.Tbl.t =
      Ids.Cell.Tbl.create 32
    in
    let push is_input (d : Latch_analysis.dep) =
      let cur =
        Option.value ~default:[]
          (Ids.Cell.Tbl.find_opt deps_of d.Latch_analysis.dep_latch)
      in
      Ids.Cell.Tbl.replace deps_of d.Latch_analysis.dep_latch
        ((is_input, d) :: cur)
    in
    Array.iter
      (fun (g : Latch_analysis.group) ->
        List.iter (push true) g.Latch_analysis.input_deps;
        List.iter (push false) g.Latch_analysis.local_deps)
      lab.Latch_analysis.groups;
    let statefuls =
      List.filter
        (fun cid ->
          let c = Netlist.cell nl cid in
          match c.Cell.kind, c.Cell.trigger with
          | Cell.Latch _, _ -> true
          | (Cell.Flip_flop | Cell.Ram _), Some (Cell.Net_trigger _) -> true
          | _, _ -> false)
        (Partition.cells_of_block part (Ids.Block.of_int b))
    in
    let eval_fwd = Ids.Cell.Tbl.create 32 in
    let get_eval c =
      Option.value ~default:0 (Ids.Cell.Tbl.find_opt eval_fwd c)
    in
    let settle n =
      Option.value ~default:0
        (Ids.Net.Tbl.find_opt lab.Latch_analysis.local_max_settle n)
    in
    let shares_domain origin data_net =
      (not same_domain_only)
      || not
           (Ids.Dom.Set.is_empty
              (Ids.Dom.Set.inter
                 (Domain_analysis.transitions dom_analysis origin)
                 (Domain_analysis.transitions dom_analysis data_net)))
    in
    let holdoff_tbl = Ids.Cell.Tbl.create 32 in
    let relax () =
      Sink.incr obs "holdoff.relax_rounds";
      let changed = ref false in
      List.iter
        (fun cid ->
          let c = Netlist.cell nl cid in
          let data_net = c.Cell.data_inputs.(0) in
          (* Local settle must cover every write pin of a RAM. *)
          let data_pins =
            match c.Cell.kind with
            | Cell.Ram { addr_bits } ->
                List.init (2 + addr_bits) (fun i -> c.Cell.data_inputs.(i))
            | Cell.Latch _ | Cell.Flip_flop | Cell.Gate _ | Cell.Input _
            | Cell.Clock_source _ | Cell.Output ->
                [ data_net ]
          in
          let is_ram =
            match c.Cell.kind with Cell.Ram _ -> true | _ -> false
          in
          let gate_net =
            match c.Cell.trigger with
            | Some (Cell.Net_trigger tn) -> Some tn
            | Some (Cell.Dom_clock _) | None -> None
          in
          let deps =
            Option.value ~default:[] (Ids.Cell.Tbl.find_opt deps_of cid)
          in
          let side ~gate =
            let base =
              match gate, gate_net with
              | true, Some gn -> settle gn
              | true, None -> 0
              | false, _ ->
                  List.fold_left (fun acc n -> max acc (settle n)) 0 data_pins
            in
            List.fold_left
              (fun acc (is_input, (d : Latch_analysis.dep)) ->
                let delay =
                  if gate then d.Latch_analysis.dep_pd.Latch_analysis.to_gate
                  else d.Latch_analysis.dep_pd.Latch_analysis.to_data
                in
                match delay with
                | None -> acc
                | Some dd ->
                    if
                      gate && (not is_ram)
                      && not (shares_domain d.Latch_analysis.dep_origin data_net)
                    then acc
                    else
                      let origin_time =
                        if is_input then
                          arrival ~block:b ~net:d.Latch_analysis.dep_origin
                        else
                          get_eval
                            (Netlist.driver nl d.Latch_analysis.dep_origin)
                              .Cell.id
                      in
                      max acc (origin_time + dd.Traverse.dmax))
              base deps
          in
          let gate_settle = min length (side ~gate:true) in
          let data_settle = min length (side ~gate:false) in
          (* Data strictly after gate: simultaneous arrival latches the old
             value (paper Figure 4a). *)
          let ho = min length (gate_settle + 1) in
          let ev = min length (max data_settle ho + 1) in
          if
            (gate_settle, ho)
            > Option.value ~default:(-1, -1)
                (Ids.Cell.Tbl.find_opt holdoff_tbl cid)
          then begin
            Ids.Cell.Tbl.replace holdoff_tbl cid (gate_settle, ho);
            changed := true
          end;
          if ev > get_eval cid then begin
            Ids.Cell.Tbl.replace eval_fwd cid ev;
            changed := true
          end)
        statefuls;
      !changed
    in
    let rec loop i = if i < 20 && relax () then loop (i + 1) in
    loop 0;
    Ids.Cell.Tbl.iter
      (fun cid (gho, ho) ->
        out := { Schedule.ho_cell = cid; ho_gate = gho; ho_data = ho } :: !out)
      holdoff_tbl
  done;
  !out
