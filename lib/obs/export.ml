let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_float b f =
  (* JSON has no NaN/Infinity; clamp to null-free finite output. *)
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
  else Buffer.add_string b "0"

let add_sep b first = if !first then first := false else Buffer.add_string b ","

let obj_of_strings b kvs =
  Buffer.add_char b '{';
  let first = ref true in
  List.iter
    (fun (k, v) ->
      add_sep b first;
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_json_string b v)
    kvs;
  Buffer.add_char b '}'

(* ------------------------------------------------------------------ *)

let pp_summary ppf sink =
  let spans = Sink.spans sink in
  if spans = [] then Format.fprintf ppf "obs: no spans recorded@."
  else begin
    Format.fprintf ppf "spans:@.";
    (* [spans] is in start order; since children start after their parent
       and finish before it, printing in start order with depth
       indentation reproduces the tree. *)
    List.iter
      (fun (s : Sink.span) ->
        Format.fprintf ppf "  %s%-*s %8.3f ms%s@."
          (String.concat "" (List.init s.Sink.sp_depth (fun _ -> "  ")))
          (max 1 (28 - (2 * s.Sink.sp_depth)))
          s.Sink.sp_name
          (float_of_int s.Sink.sp_dur_us /. 1e3)
          (match s.Sink.sp_args with
          | [] -> ""
          | args ->
              "  ["
              ^ String.concat ", "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) args)
              ^ "]"))
      spans
  end;
  (match Sink.counters sink with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "counters:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-32s %d@." k v) cs);
  (match Sink.gauges sink with
  | [] -> ()
  | gs ->
      Format.fprintf ppf "gauges:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-32s %g@." k v) gs);
  match Sink.histograms sink with
  | [] -> ()
  | hs ->
      Format.fprintf ppf "histograms:@.";
      List.iter
        (fun (k, (h : Sink.hist_summary)) ->
          Format.fprintf ppf
            "  %-32s n=%d sum=%d min=%d p50=%d p90=%d max=%d mean=%.2f@." k
            h.Sink.hs_count h.Sink.hs_sum h.Sink.hs_min h.Sink.hs_p50
            h.Sink.hs_p90 h.Sink.hs_max h.Sink.hs_mean)
        hs

(* ------------------------------------------------------------------ *)

let json_string sink =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"msched-obs-1\",\"spans\":[";
  let first = ref true in
  List.iter
    (fun (s : Sink.span) ->
      add_sep b first;
      Buffer.add_string b "{\"id\":";
      Buffer.add_string b (string_of_int s.Sink.sp_id);
      Buffer.add_string b ",\"parent\":";
      (match s.Sink.sp_parent with
      | None -> Buffer.add_string b "null"
      | Some p -> Buffer.add_string b (string_of_int p));
      Buffer.add_string b ",\"depth\":";
      Buffer.add_string b (string_of_int s.Sink.sp_depth);
      Buffer.add_string b ",\"name\":";
      buf_add_json_string b s.Sink.sp_name;
      Buffer.add_string b ",\"begin_us\":";
      Buffer.add_string b (string_of_int s.Sink.sp_begin_us);
      Buffer.add_string b ",\"dur_us\":";
      Buffer.add_string b (string_of_int s.Sink.sp_dur_us);
      Buffer.add_string b ",\"args\":";
      obj_of_strings b s.Sink.sp_args;
      Buffer.add_char b '}')
    (Sink.spans sink);
  Buffer.add_string b "],\"counters\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      add_sep b first;
      buf_add_json_string b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    (Sink.counters sink);
  Buffer.add_string b "},\"gauges\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      add_sep b first;
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_float b v)
    (Sink.gauges sink);
  Buffer.add_string b "},\"histograms\":{";
  let first = ref true in
  List.iter
    (fun (k, (h : Sink.hist_summary)) ->
      add_sep b first;
      buf_add_json_string b k;
      Buffer.add_string b
        (Printf.sprintf
           ":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":" h.Sink.hs_count
           h.Sink.hs_sum h.Sink.hs_min h.Sink.hs_max);
      buf_add_float b h.Sink.hs_mean;
      Buffer.add_string b
        (Printf.sprintf ",\"p50\":%d,\"p90\":%d}" h.Sink.hs_p50 h.Sink.hs_p90))
    (Sink.histograms sink);
  Buffer.add_string b "}}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let chrome_trace_string sink =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  add_sep b first;
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"msched\"}}";
  let t_max = ref 0 in
  List.iter
    (fun (s : Sink.span) ->
      if s.Sink.sp_begin_us + s.Sink.sp_dur_us > !t_max then
        t_max := s.Sink.sp_begin_us + s.Sink.sp_dur_us;
      add_sep b first;
      Buffer.add_string b "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":";
      buf_add_json_string b s.Sink.sp_name;
      Buffer.add_string b ",\"ts\":";
      Buffer.add_string b (string_of_int s.Sink.sp_begin_us);
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (string_of_int (max 1 s.Sink.sp_dur_us));
      Buffer.add_string b ",\"args\":";
      obj_of_strings b s.Sink.sp_args;
      Buffer.add_char b '}')
    (Sink.spans sink);
  (* One counter track per counter/gauge, sampled once at the trace end so
     Perfetto shows final values next to the span tree. *)
  List.iter
    (fun (k, v) ->
      add_sep b first;
      Buffer.add_string b "{\"ph\":\"C\",\"pid\":1,\"name\":";
      buf_add_json_string b k;
      Buffer.add_string b ",\"ts\":";
      Buffer.add_string b (string_of_int !t_max);
      Buffer.add_string b ",\"args\":{\"value\":";
      Buffer.add_string b (string_of_int v);
      Buffer.add_string b "}}")
    (Sink.counters sink);
  List.iter
    (fun (k, v) ->
      add_sep b first;
      Buffer.add_string b "{\"ph\":\"C\",\"pid\":1,\"name\":";
      buf_add_json_string b k;
      Buffer.add_string b ",\"ts\":";
      Buffer.add_string b (string_of_int !t_max);
      Buffer.add_string b ",\"args\":{\"value\":";
      buf_add_float b v;
      Buffer.add_string b "}}")
    (Sink.gauges sink);
  List.iter
    (fun (k, (h : Sink.hist_summary)) ->
      add_sep b first;
      Buffer.add_string b "{\"ph\":\"C\",\"pid\":1,\"name\":";
      buf_add_json_string b k;
      Buffer.add_string b ",\"ts\":";
      Buffer.add_string b (string_of_int !t_max);
      Buffer.add_string b
        (Printf.sprintf
           ",\"args\":{\"p50\":%d,\"p90\":%d,\"max\":%d}}" h.Sink.hs_p50
           h.Sink.hs_p90 h.Sink.hs_max))
    (Sink.histograms sink);
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file path contents =
  if String.equal path "-" then print_string contents
  else begin
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  end
