type span = {
  sp_id : int;
  sp_parent : int option;
  sp_depth : int;
  sp_name : string;
  sp_args : (string * string) list;
  sp_begin_us : int;
  sp_dur_us : int;
}

type hist_summary = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_p50 : int;
  hs_p90 : int;
}

(* Raw histogram state: exact count/sum/min/max plus a capped sample of the
   observations for percentile estimates. *)
type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  mutable h_values : int list;  (* newest first *)
  mutable h_kept : int;
}

let hist_cap = 65536

type open_span = { os_id : int; os_name : string; os_args : (string * string) list; os_begin : float }

type state = {
  clock : unit -> float;
  t0 : float;
  mutable next_id : int;
  mutable stack : open_span list;  (* innermost first *)
  mutable done_spans : span list;  (* newest completion first *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

type t = Null | Enabled of state

let null = Null

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  Enabled
    {
      clock;
      t0 = clock ();
      next_id = 0;
      stack = [];
      done_spans = [];
      counters = Hashtbl.create 64;
      gauges = Hashtbl.create 16;
      hists = Hashtbl.create 16;
    }

let enabled = function Null -> false | Enabled _ -> true

let us_of s t = int_of_float ((t -. s.t0) *. 1e6)

let span t ?(args = []) name f =
  match t with
  | Null -> f ()
  | Enabled s ->
      let id = s.next_id in
      s.next_id <- id + 1;
      let os = { os_id = id; os_name = name; os_args = args; os_begin = s.clock () } in
      s.stack <- os :: s.stack;
      let close () =
        let t_end = s.clock () in
        (* Close any spans the thunk left open (an exception escaped an
           inner [span]'s thunk before Fun.protect there could run — or the
           thunk opened spans through an escaping continuation): pop down to
           and including [os] so nesting stays well-formed. *)
        let rec pop = function
          | [] -> []
          | o :: rest ->
              let parent =
                match rest with [] -> None | p :: _ -> Some p.os_id
              in
              let depth = List.length rest in
              s.done_spans <-
                {
                  sp_id = o.os_id;
                  sp_parent = parent;
                  sp_depth = depth;
                  sp_name = o.os_name;
                  sp_args = o.os_args;
                  sp_begin_us = us_of s o.os_begin;
                  sp_dur_us = max 0 (us_of s t_end - us_of s o.os_begin);
                }
                :: s.done_spans;
              if o.os_id = os.os_id then rest else pop rest
        in
        s.stack <- pop s.stack
      in
      Fun.protect ~finally:close f

let annotate t kvs =
  match t with
  | Null -> ()
  | Enabled s -> (
      match s.stack with
      | [] -> ()
      | os :: rest -> s.stack <- { os with os_args = os.os_args @ kvs } :: rest)

let add t name d =
  match t with
  | Null -> ()
  | Enabled s -> (
      match Hashtbl.find_opt s.counters name with
      | Some r -> r := !r + d
      | None -> Hashtbl.replace s.counters name (ref d))

let incr t name = add t name 1

let gauge t name v =
  match t with
  | Null -> ()
  | Enabled s -> (
      match Hashtbl.find_opt s.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace s.gauges name (ref v))

let observe t name v =
  match t with
  | Null -> ()
  | Enabled s ->
      let h =
        match Hashtbl.find_opt s.hists name with
        | Some h -> h
        | None ->
            let h =
              { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int; h_values = []; h_kept = 0 }
            in
            Hashtbl.replace s.hists name h;
            h
      in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      if h.h_kept < hist_cap then begin
        h.h_values <- v :: h.h_values;
        h.h_kept <- h.h_kept + 1
      end

let fork = function
  | Null -> Null
  | Enabled s ->
      Enabled
        {
          clock = s.clock;
          t0 = s.t0;
          next_id = 0;
          stack = [];
          done_spans = [];
          counters = Hashtbl.create 16;
          gauges = Hashtbl.create 8;
          hists = Hashtbl.create 8;
        }

let merge parent child =
  match (parent, child) with
  | Null, _ | _, Null -> ()
  | Enabled p, Enabled c ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt p.counters name with
          | Some pr -> pr := !pr + !r
          | None -> Hashtbl.replace p.counters name (ref !r))
        c.counters;
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt p.gauges name with
          | Some pr -> pr := !r
          | None -> Hashtbl.replace p.gauges name (ref !r))
        c.gauges;
      Hashtbl.iter
        (fun name h ->
          let ph =
            match Hashtbl.find_opt p.hists name with
            | Some ph -> ph
            | None ->
                let ph =
                  {
                    h_count = 0;
                    h_sum = 0;
                    h_min = max_int;
                    h_max = min_int;
                    h_values = [];
                    h_kept = 0;
                  }
                in
                Hashtbl.replace p.hists name ph;
                ph
          in
          ph.h_count <- ph.h_count + h.h_count;
          ph.h_sum <- ph.h_sum + h.h_sum;
          if h.h_count > 0 then begin
            if h.h_min < ph.h_min then ph.h_min <- h.h_min;
            if h.h_max > ph.h_max then ph.h_max <- h.h_max
          end;
          List.iter
            (fun v ->
              if ph.h_kept < hist_cap then begin
                ph.h_values <- v :: ph.h_values;
                ph.h_kept <- ph.h_kept + 1
              end)
            (List.rev h.h_values))
        c.hists;
      (* Completed child spans graft under the parent's innermost open
         span, with ids renumbered past the parent's. *)
      if c.done_spans <> [] then begin
        let base = p.next_id in
        let graft_parent, graft_depth =
          match p.stack with
          | [] -> (None, 0)
          | os :: rest -> (Some os.os_id, 1 + List.length rest)
        in
        let reparented =
          List.map
            (fun sp ->
              {
                sp with
                sp_id = base + sp.sp_id;
                sp_parent =
                  (match sp.sp_parent with
                  | Some pid -> Some (base + pid)
                  | None -> graft_parent);
                sp_depth = sp.sp_depth + graft_depth;
              })
            c.done_spans
        in
        p.done_spans <- reparented @ p.done_spans;
        p.next_id <- base + c.next_id
      end

let spans = function
  | Null -> []
  | Enabled s ->
      List.sort (fun a b -> compare a.sp_id b.sp_id) s.done_spans

let open_spans = function
  | Null -> []
  | Enabled s -> List.map (fun o -> o.os_name) s.stack

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function
  | Null -> []
  | Enabled s -> sorted_bindings s.counters (fun r -> !r)

let counter t name =
  match t with
  | Null -> 0
  | Enabled s -> (
      match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let gauges = function
  | Null -> []
  | Enabled s -> sorted_bindings s.gauges (fun r -> !r)

let percentile sorted n q =
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let summarize h =
  let sorted = Array.of_list h.h_values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = (if h.h_count = 0 then 0 else h.h_min);
    hs_max = (if h.h_count = 0 then 0 else h.h_max);
    hs_mean =
      (if h.h_count = 0 then 0.0
       else float_of_int h.h_sum /. float_of_int h.h_count);
    hs_p50 = percentile sorted n 0.50;
    hs_p90 = percentile sorted n 0.90;
  }

let histograms = function
  | Null -> []
  | Enabled s -> sorted_bindings s.hists summarize

let hist_values t name =
  match t with
  | Null -> []
  | Enabled s -> (
      match Hashtbl.find_opt s.hists name with
      | Some h -> List.rev h.h_values
      | None -> [])
