(** Pipeline observability: hierarchical timed spans plus counters, gauges
    and histograms, recorded into an in-memory sink.

    The compiler is instrumented throughout ({!Msched.Compile},
    {!Msched_route.Tiers}, {!Msched_route.Forward},
    {!Msched_route.Pathfind}, {!Msched_check.Verify}, …) against this
    interface; every instrumented entry point takes an optional [?obs]
    argument defaulting to {!null}.  The null sink makes every operation a
    single tag test, so the instrumentation is free when profiling is off.

    A sink is single-threaded mutable state: record into it from one
    pipeline run (or several sequential runs — metrics accumulate, spans
    append), then hand it to {!Export} for the human summary tree, the
    stable JSON document, or the Chrome/Perfetto trace.

    Metric names are dot-separated, lower-case, category-first
    (["pathfind.searches"], ["channel.peak_usage"]); the catalogue lives in
    [docs/OBSERVABILITY.md]. *)

type t

type span = {
  sp_id : int;  (** Dense, in start order. *)
  sp_parent : int option;  (** [sp_id] of the enclosing span. *)
  sp_depth : int;  (** 0 for roots. *)
  sp_name : string;
  sp_args : (string * string) list;
  sp_begin_us : int;  (** Microseconds since the sink was created. *)
  sp_dur_us : int;
}

type hist_summary = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_p50 : int;
  hs_p90 : int;
}

val null : t
(** The disabled sink: every operation is a no-op and {!span} reduces to
    calling its thunk. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh enabled sink.  [clock] (seconds, monotone non-decreasing)
    defaults to [Unix.gettimeofday]; inject a fake for deterministic
    tests. *)

val enabled : t -> bool

val span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] as a span nested inside the innermost
    span currently open on [t].  The span is closed even if [f] raises. *)

val annotate : t -> (string * string) list -> unit
(** Append key/value args to the innermost span currently open on [t],
    after any args given at creation.  Lets a phase attach results it only
    knows at the end (link counts, accepted moves) to its own span, making
    exported traces self-describing.  No-op on a disabled sink or when no
    span is open. *)

val add : t -> string -> int -> unit
(** Add to a counter (created at zero on first touch).  Counters are
    monotone by convention: pass non-negative deltas. *)

val incr : t -> string -> unit
(** [add t name 1]. *)

val gauge : t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : t -> string -> int -> unit
(** Record one observation into a histogram. *)

(** {2 Worker sub-sinks}

    A sink is single-domain mutable state, so parallel pipeline phases
    must not record into a shared sink concurrently.  Instead each worker
    records into a private {!fork} of the phase sink and the coordinator
    folds the children back with {!merge} after the join, in a
    deterministic (worker-index) order.  Counters and histogram totals
    are sums, so the merged metrics are exactly what a sequential run
    would have recorded; merged spans share the parent's epoch and graft
    under the span open at merge time. *)

val fork : t -> t
(** A fresh, empty child sink sharing the parent's clock and epoch
    (timestamps comparable after {!merge}); {!null} when the parent is
    disabled.  The child must be used from a single domain. *)

val merge : t -> t -> unit
(** [merge parent child] folds the child's counters (added), gauges
    (overwritten), histograms (concatenated) and completed spans
    (renumbered, grafted under the parent's innermost open span) into the
    parent.  Call after the worker owning the child has joined; the child
    should not be used afterwards. *)

(** {2 Introspection (used by {!Export} and tests)} *)

val spans : t -> span list
(** Completed spans in start order.  Empty for {!null}. *)

val open_spans : t -> string list
(** Names of spans currently open, innermost first (empty when every
    {!span} call has returned). *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val counter : t -> string -> int
(** 0 when never touched. *)

val gauges : t -> (string * float) list
(** Sorted by name. *)

val histograms : t -> (string * hist_summary) list
(** Sorted by name. *)

val hist_values : t -> string -> int list
(** Raw observations of one histogram, oldest first (capped; see
    {!hist_summary} for totals that never lose precision). *)
