(** Exporters for a recorded {!Sink.t}.

    Three formats, all total functions of the sink's state (a {!Sink.null}
    sink exports as an empty document):

    - {!pp_summary}: a human-readable span tree with durations, followed by
      the metric catalogue — what [msched profile] prints.
    - {!json_string}: a stable JSON document
      ([{"schema":"msched-obs-1","spans":…,"counters":…,"gauges":…,
      "histograms":…}]) meant to be diffed across runs and committed as
      [BENCH_pipeline.json].
    - {!chrome_trace_string}: Chrome trace-event format
      ([{"traceEvents":[…]}]) that loads directly in [chrome://tracing] and
      {{:https://ui.perfetto.dev}Perfetto}: spans become complete ("X")
      events, counters one counter ("C") event each.

    All JSON is hand-emitted (no external dependency) with full string
    escaping; numbers are integers except gauge values and histogram
    means. *)

val pp_summary : Format.formatter -> Sink.t -> unit

val json_string : Sink.t -> string

val chrome_trace_string : Sink.t -> string

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper shared by the CLI, bench and
    experiment drivers; ["-"] writes to stdout. *)
