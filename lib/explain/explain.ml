(* Critical-chain extraction works by replay with provenance: the TIERS
   scheduler derives the frame length from a ReadyTime requirement table it
   propagates consumers-first over links and latch groups; we re-run that
   propagation over the same processing order (Sched_graph), but take every
   transport's departure/arrival from the compiled schedule instead of
   routing, and store a backpointer alongside every requirement bump.
   Because the order is consumers-first, a requirement is final before the
   link that consumes it is processed, so the replayed table matches the
   one the scheduler saw and the replayed length lands exactly on
   Schedule.length for any TIERS-compiled schedule.  The chain is then the
   backpointer walk from the binding length constraint toward the frame
   end; requirement values strictly decrease along the walk, so it
   terminates and the hops tile [0, length] with no gaps. *)

open Msched_netlist
module Partition = Msched_partition.Partition
module System = Msched_arch.System
module Latch_analysis = Msched_mts.Latch_analysis
module Schedule = Msched_route.Schedule
module Link = Msched_route.Link
module Sched_graph = Msched_route.Sched_graph
module Tiers = Msched_route.Tiers
module Sink = Msched_obs.Sink
module Diag = Msched_diag.Diag
module Compile = Msched.Compile

type hop = {
  h_kind : string;
  h_from : int;
  h_to : int;
  h_what : string;
  h_ctx : Diag.context;
  h_channel : int option;
}

type chain = {
  ch_hops : hop list;
  ch_length : int;
  ch_driver : string;
  ch_exact : bool;
}

(* Backpointer stored at a (block, net) requirement: what bumped it to its
   final value. *)
type prov =
  | P_deadline of { delay : int }
  | P_link of { li : int; dmax : int }
  | P_group of {
      latch : Ids.Cell.t;
      gate : bool;
      dmax : int;
      via_out : Ids.Net.t option;
    }

(* The length candidate that ended up binding, mirroring the scheduler's
   bump order exactly (strict >, first writer of a value wins ties). *)
type binding =
  | B_floor
  | B_transport of int
  | B_congestion of (int * int) option  (* owning (link, channel) *)
  | B_sink of int * Ids.Cell.t * Ids.Net.t
  | B_latch of int * Ids.Cell.t * Ids.Net.t option * int * int

let critical_chain ?(route = Tiers.default_options) (p : Compile.prepared)
    (sched : Schedule.t) =
  let part = p.Compile.partition in
  let la = p.Compile.latch_analysis in
  let nl = p.Compile.netlist in
  let length = sched.Schedule.length in
  let link_scheds = Array.of_list sched.Schedule.link_scheds in
  let links = Array.map (fun ls -> ls.Schedule.ls_link) link_scheds in
  let nblocks = Partition.num_blocks part in
  let order, _graph_warnings = Sched_graph.order part la links in
  let req : (int * int, int * prov) Hashtbl.t = Hashtbl.create 4096 in
  let req_get b n =
    match Hashtbl.find_opt req (Ids.Block.to_int b, Ids.Net.to_int n) with
    | Some (v, _) -> v
    | None -> 0
  in
  let req_bump b n v prov =
    let key = (Ids.Block.to_int b, Ids.Net.to_int n) in
    let cur =
      match Hashtbl.find_opt req key with Some (v, _) -> v | None -> 0
    in
    if v > cur then Hashtbl.replace req key (v, prov)
  in
  for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    Ids.Net.Tbl.iter
      (fun m info ->
        match info.Latch_analysis.deadline_delay with
        | Some d -> req_bump lab.Latch_analysis.block m d (P_deadline { delay = d })
        | None -> ())
      lab.Latch_analysis.origins
  done;
  let local_settle b n =
    Option.value ~default:0
      (Ids.Net.Tbl.find_opt la.(b).Latch_analysis.local_max_settle n)
  in
  let lmax = ref 1 in
  let binding = ref B_floor in
  let bump need b =
    if need > !lmax then begin
      lmax := need;
      binding := b
    end
  in
  let rdep_max_of i =
    List.fold_left
      (fun acc tr -> max acc (length - tr.Schedule.tr_fwd_dep))
      0 link_scheds.(i).Schedule.ls_transports
  in
  let process_link i =
    let l = links.(i) in
    let rdep_max = rdep_max_of i in
    let sb = Ids.Block.to_int l.Link.src_block in
    Ids.Net.Tbl.iter
      (fun m info ->
        List.iter
          (fun (onet, (d : Traverse.delay)) ->
            if Ids.Net.equal onet l.Link.net then
              req_bump l.Link.src_block m
                (rdep_max + d.Traverse.dmax)
                (P_link { li = i; dmax = d.Traverse.dmax }))
          info.Latch_analysis.to_outputs)
      la.(sb).Latch_analysis.origins;
    bump (rdep_max + local_settle sb l.Link.net) (B_transport i)
  in
  let process_group b gi =
    let lab = la.(b) in
    let block = lab.Latch_analysis.block in
    let g = lab.Latch_analysis.groups.(gi) in
    let r_group, via_out =
      List.fold_left
        (fun (acc, via) latch ->
          match (Netlist.cell nl latch).Cell.output with
          | Some out ->
              let r = req_get block out in
              if r > acc || via = None then (max r acc, Some out)
              else (acc, via)
          | None -> (acc, via))
        (0, None) g.Latch_analysis.latches
    in
    (* Mirror the scheduler: [via] only refines the walk; a group whose
       outputs all carry requirement 0 keeps via_out = None when it has no
       latch outputs at all. *)
    let bump_for_dep (dep : Latch_analysis.dep) ~gate_side =
      let bump_pin gate d =
        req_bump block dep.Latch_analysis.dep_origin
          (r_group + d.Traverse.dmax + 1)
          (P_group
             { latch = dep.Latch_analysis.dep_latch; gate; dmax = d.Traverse.dmax; via_out })
      in
      (match dep.Latch_analysis.dep_pd.Latch_analysis.to_data with
      | Some d -> bump_pin false d
      | None -> ());
      if gate_side then
        match dep.Latch_analysis.dep_pd.Latch_analysis.to_gate with
        | Some d -> bump_pin true d
        | None -> ()
    in
    List.iter
      (bump_for_dep ~gate_side:route.Tiers.latch_ordering)
      g.Latch_analysis.input_deps;
    List.iter (bump_for_dep ~gate_side:true) g.Latch_analysis.local_deps
  in
  List.iter
    (function
      | Sched_graph.Lnk i -> process_link i
      | Sched_graph.Grp (b, gi) -> process_group b gi)
    order;
  (* Wire congestion: the latest reverse slot with a multiplexed
     reservation — exactly the hops of non-hard transports. *)
  let max_rslot = ref (-1) in
  let max_hop = ref None in
  Array.iteri
    (fun i ls ->
      List.iter
        (fun tr ->
          if not tr.Schedule.tr_hard then
            List.iter
              (fun (c, fs) ->
                let rs = length - fs in
                if rs > !max_rslot then begin
                  max_rslot := rs;
                  max_hop := Some (i, c)
                end)
              tr.Schedule.tr_hops)
        ls.Schedule.ls_transports)
    link_scheds;
  bump !max_rslot (B_congestion !max_hop);
  for b = 0 to nblocks - 1 do
    let lab = la.(b) in
    let block = lab.Latch_analysis.block in
    List.iter
      (fun cid ->
        let c = Netlist.cell nl cid in
        let settle n = local_settle b n in
        let deadline_nets =
          match (c.Cell.kind, c.Cell.trigger) with
          | Cell.Flip_flop, Some (Cell.Dom_clock _) -> [ c.Cell.data_inputs.(0) ]
          | Cell.Ram { addr_bits }, _ ->
              List.init (2 + addr_bits) (fun i -> c.Cell.data_inputs.(i))
          | Cell.Output, _ -> [ c.Cell.data_inputs.(0) ]
          | ( ( Cell.Flip_flop | Cell.Gate _ | Cell.Latch _ | Cell.Input _
              | Cell.Clock_source _ ),
              _ ) ->
              []
        in
        List.iter (fun n -> bump (settle n) (B_sink (b, cid, n))) deadline_nets;
        match (c.Cell.kind, c.Cell.trigger) with
        | Cell.Latch _, _
        | (Cell.Flip_flop | Cell.Ram _), Some (Cell.Net_trigger _) ->
            let r =
              match c.Cell.output with
              | Some out -> req_get block out
              | None -> 0
            in
            let pin_settle =
              let data =
                match c.Cell.kind with
                | Cell.Ram { addr_bits } ->
                    let m = ref 0 in
                    for i = 0 to (2 + addr_bits) - 1 do
                      m := max !m (settle c.Cell.data_inputs.(i))
                    done;
                    !m
                | Cell.Latch _ | Cell.Flip_flop | Cell.Gate _ | Cell.Input _
                | Cell.Clock_source _ | Cell.Output ->
                    settle c.Cell.data_inputs.(0)
              in
              let gate =
                match c.Cell.trigger with
                | Some (Cell.Net_trigger tn) -> settle tn
                | Some (Cell.Dom_clock _) | None -> 0
              in
              max data gate
            in
            bump (r + pin_settle + 1)
              (B_latch (b, cid, c.Cell.output, r, pin_settle))
        | ( ( Cell.Flip_flop | Cell.Ram _ | Cell.Gate _ | Cell.Input _
            | Cell.Clock_source _ | Cell.Output ),
            _ ) ->
            ())
      (Partition.cells_of_block part (Ids.Block.of_int b))
  done;
  (* ---- Chain construction from the binding constraint. ---- *)
  let net_name n = (Netlist.net nl n).Netlist.net_name in
  let cell_name c = (Netlist.cell nl c).Cell.name in
  let mk ?net ?cell ?block ?domain ?channel kind ~from_ ~to_ what =
    let from_ = max 0 (min length from_) in
    let to_ = max from_ (min length to_) in
    let ctx =
      {
        Diag.no_context with
        Diag.net = Option.map Ids.Net.to_int net;
        cell = Option.map Ids.Cell.to_int cell;
        block = Option.map Ids.Block.to_int block;
        domain = Option.map Ids.Dom.to_int domain;
      }
    in
    { h_kind = kind; h_from = from_; h_to = to_; h_what = what; h_ctx = ctx;
      h_channel = channel }
  in
  let buf = ref [] in
  let emit h = buf := h :: !buf in
  let rec walk fuel block n v =
    if v > 0 && fuel > 0 then begin
      let t = length - v in
      match Hashtbl.find_opt req (Ids.Block.to_int block, Ids.Net.to_int n) with
      | Some (v', prov) when v' = v -> (
          match prov with
          | P_deadline { delay } ->
              emit
                (mk "sink-path" ~from_:t ~to_:length ~net:n ~block
                   (Format.asprintf
                      "combinational chain (depth %d) from net %s into a \
                       frame-end sink of %a"
                      delay (net_name n) Ids.Block.pp block))
          | P_link { li; dmax } ->
              let l = links.(li) in
              if dmax > 0 then
                emit
                  (mk "comb" ~from_:t ~to_:(t + dmax) ~net:n ~block
                     (Format.asprintf
                        "combinational (depth %d) from net %s to the source \
                         terminal of net %s in %a"
                        dmax (net_name n) (net_name l.Link.net) Ids.Block.pp
                        block));
              transport_hop fuel li (t + dmax)
          | P_group { latch; gate; dmax; via_out } ->
              if dmax > 0 then
                emit
                  (mk "comb" ~from_:t ~to_:(t + dmax) ~net:n ~cell:latch
                     ~block
                     (Format.asprintf
                        "combinational (depth %d) from net %s to the %s pin \
                         of %s"
                        dmax (net_name n)
                        (if gate then "gate" else "data")
                        (cell_name latch)));
              emit
                (mk "latch-eval" ~from_:(t + dmax) ~to_:(t + dmax + 1)
                   ~cell:latch ~block
                   (Format.asprintf "evaluation of latch %s in %a"
                      (cell_name latch) Ids.Block.pp block));
              (match via_out with
              | Some out -> walk (fuel - 1) block out (v - dmax - 1)
              | None -> ()))
      | _ ->
          (* The replayed table disagrees (non-TIERS schedule); close the
             chain so the span invariant still holds. *)
          emit
            (mk "comb" ~from_:t ~to_:length ~net:n ~block
               (Format.asprintf "path of net %s to the frame end" (net_name n)))
    end
  and transport_hop fuel li t =
    let l = links.(li) in
    let ts = link_scheds.(li).Schedule.ls_transports in
    let arr = List.fold_left (fun a tr -> max a tr.Schedule.tr_fwd_arr) t ts in
    let ntr = List.length ts in
    let hard = List.exists (fun tr -> tr.Schedule.tr_hard) ts in
    let nhops =
      match ts with tr :: _ -> List.length tr.Schedule.tr_hops | [] -> 0
    in
    let what =
      if hard then
        Format.asprintf "dedicated-wire transport of %a (%d hops, 2 vclocks each)"
          Link.pp l nhops
      else if ntr > 1 then
        Format.asprintf
          "multi-domain transport of %a: %d fork-equalized transports, %d \
           hop(s) each"
          Link.pp l ntr nhops
      else Format.asprintf "transport of %a (%d hop(s))" Link.pp l nhops
    in
    let domain =
      match ts with
      | [ { Schedule.tr_domain = Some d; _ } ] -> Some d
      | _ -> None
    in
    let channel =
      match ts with
      | { Schedule.tr_hops = (c, _) :: _; _ } :: _ -> Some c
      | _ -> None
    in
    emit
      (mk "transport" ~from_:t ~to_:arr ~net:l.Link.net ~block:l.Link.dst_block
         ?domain ?channel what);
    walk (fuel - 1) l.Link.dst_block l.Link.net (length - arr)
  in
  let fuel = 4 * (length + 4) in
  let start () =
    match !binding with
    | B_floor -> emit (mk "frame" ~from_:0 ~to_:length "minimum frame")
    | B_transport i ->
        let l = links.(i) in
        let sb = Ids.Block.to_int l.Link.src_block in
        let settle = local_settle sb l.Link.net in
        if settle > 0 then
          emit
            (mk "settle" ~from_:0 ~to_:settle ~net:l.Link.net
               ~block:l.Link.src_block
               (Format.asprintf
                  "frame-start combinational settle of net %s in %a (depth %d)"
                  (net_name l.Link.net) Ids.Block.pp l.Link.src_block settle));
        transport_hop fuel i settle
    | B_congestion (Some (i, ch)) ->
        let dep = length - rdep_max_of i in
        if dep > 0 then
          emit
            (mk "congestion" ~from_:0 ~to_:dep ~channel:ch
               (Format.asprintf
                  "wire congestion: channel %d is reserved back to the \
                   frame's first slots"
                  ch));
        transport_hop fuel i dep
    | B_congestion None ->
        emit (mk "frame" ~from_:0 ~to_:length "wire congestion (latest reserved slot)")
    | B_sink (b, cid, n) ->
        emit
          (mk "settle" ~from_:0 ~to_:length ~net:n ~cell:cid
             ~block:(Ids.Block.of_int b)
             (Format.asprintf
                "frame-start combinational chain (depth %d) to frame-end \
                 sink %s in %a"
                length (cell_name cid) Ids.Block.pp (Ids.Block.of_int b)))
    | B_latch (b, cid, out, r, pin_settle) ->
        let block = Ids.Block.of_int b in
        if pin_settle > 0 then
          emit
            (mk "settle" ~from_:0 ~to_:pin_settle ~cell:cid ~block
               (Format.asprintf
                  "frame-start settle of the data/gate pins of %s (depth %d)"
                  (cell_name cid) pin_settle));
        emit
          (mk "latch-eval" ~from_:pin_settle ~to_:(pin_settle + 1) ~cell:cid
             ~block
             (Format.asprintf "evaluation of latch %s in %a" (cell_name cid)
                Ids.Block.pp block));
        (match out with Some o -> walk fuel block o r | None -> ())
  in
  let driver =
    match !binding with
    | B_floor -> "minimum frame"
    | B_transport i ->
        Format.asprintf "transport chain: settle + departure of %a" Link.pp
          links.(i)
    | B_congestion _ -> "wire congestion (latest reserved slot)"
    | B_sink (b, cid, _) ->
        Format.asprintf "local combinational chain to frame-end sink %s in %a"
          (cell_name cid) Ids.Block.pp (Ids.Block.of_int b)
    | B_latch (b, cid, _, _, _) ->
        Format.asprintf "latch evaluation of %s in %a" (cell_name cid)
          Ids.Block.pp (Ids.Block.of_int b)
  in
  if !lmax <> length then
    {
      ch_hops =
        [ mk "frame" ~from_:0 ~to_:length sched.Schedule.length_driver ];
      ch_length = length;
      ch_driver = sched.Schedule.length_driver;
      ch_exact = false;
    }
  else begin
    start ();
    { ch_hops = List.rev !buf; ch_length = length; ch_driver = driver;
      ch_exact = true }
  end

(* ---- Occupancy analytics. ---- *)

type occupancy = {
  oc_num_channels : int;
  oc_length : int;
  oc_channel_names : string array;
  oc_matrix : int array array;
  oc_per_channel_util : float array;
  oc_mean_util : float;
  oc_hot_channels : (int * int) list;
  oc_hot_links : (string * int) list;
  oc_hot_domains : (string * int) list;
  oc_mts_wire_slots : int;
  oc_single_wire_slots : int;
  oc_hard_wires : int;
}

let top_n n l =
  let sorted =
    List.sort (fun (ka, va) (kb, vb) -> compare (-va, ka) (-vb, kb)) l
  in
  List.filteri (fun i _ -> i < n) (List.filter (fun (_, v) -> v > 0) sorted)

let occupancy (sched : Schedule.t) sys =
  let matrix = Schedule.occupancy_matrix sched sys in
  let per = Schedule.per_channel_utilization sched sys in
  let names =
    Array.map
      (fun (c : System.channel) ->
        Format.asprintf "ch%d f%d->f%d" c.System.channel_index
          (Ids.Fpga.to_int c.System.src)
          (Ids.Fpga.to_int c.System.dst))
      (System.channels sys)
  in
  let channel_slots =
    Array.to_list
      (Array.mapi (fun i row -> (i, Array.fold_left ( + ) 0 row)) matrix)
  in
  let link_slots = Hashtbl.create 64 in
  let dom_slots = Hashtbl.create 8 in
  let mts = ref 0 and single = ref 0 in
  List.iter
    (fun ls ->
      let label = Format.asprintf "%a" Link.pp ls.Schedule.ls_link in
      List.iter
        (fun tr ->
          if not tr.Schedule.tr_hard then begin
            let n = List.length tr.Schedule.tr_hops in
            Hashtbl.replace link_slots label
              (n + Option.value ~default:0 (Hashtbl.find_opt link_slots label));
            match tr.Schedule.tr_domain with
            | Some d ->
                mts := !mts + n;
                let dn = Format.asprintf "%a" Ids.Dom.pp d in
                Hashtbl.replace dom_slots dn
                  (n + Option.value ~default:0 (Hashtbl.find_opt dom_slots dn))
            | None -> single := !single + n
          end)
        ls.Schedule.ls_transports)
    sched.Schedule.link_scheds;
  let bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  {
    oc_num_channels = Array.length matrix;
    oc_length = sched.Schedule.length;
    oc_channel_names = names;
    oc_matrix = matrix;
    oc_per_channel_util = per;
    oc_mean_util = Schedule.channel_utilization sched sys;
    oc_hot_channels = top_n 5 channel_slots;
    oc_hot_links = top_n 5 (bindings link_slots);
    oc_hot_domains = top_n 5 (bindings dom_slots);
    oc_mts_wire_slots = !mts;
    oc_single_wire_slots = !single;
    oc_hard_wires =
      Array.fold_left ( + ) 0 sched.Schedule.dedicated_per_channel;
  }

(* ---- Amdahl-style phase attribution from compiler spans. ---- *)

type phase = {
  ph_name : string;
  ph_count : int;
  ph_total_us : int;
  ph_self_us : int;
  ph_frac : float;
  ph_amdahl : float;
}

type attribution = {
  at_wall_us : int;
  at_phases : phase list;
  at_serial : string option;
}

let attribution obs =
  match Sink.spans obs with
  | [] -> None
  | spans ->
      let child_us = Hashtbl.create 64 in
      List.iter
        (fun (s : Sink.span) ->
          match s.Sink.sp_parent with
          | Some p ->
              Hashtbl.replace child_us p
                (s.Sink.sp_dur_us
                + Option.value ~default:0 (Hashtbl.find_opt child_us p))
          | None -> ())
        spans;
      let wall =
        List.fold_left
          (fun acc (s : Sink.span) ->
            if s.Sink.sp_depth = 0 then acc + s.Sink.sp_dur_us else acc)
          0 spans
      in
      let per_name = Hashtbl.create 64 in
      List.iter
        (fun (s : Sink.span) ->
          let self =
            max 0
              (s.Sink.sp_dur_us
              - Option.value ~default:0 (Hashtbl.find_opt child_us s.Sink.sp_id))
          in
          let count, total, self0 =
            Option.value ~default:(0, 0, 0)
              (Hashtbl.find_opt per_name s.Sink.sp_name)
          in
          Hashtbl.replace per_name s.Sink.sp_name
            (count + 1, total + s.Sink.sp_dur_us, self0 + self))
        spans;
      let phases =
        Hashtbl.fold
          (fun name (count, total, self) acc ->
            let frac =
              if wall > 0 then float_of_int self /. float_of_int wall else 0.0
            in
            {
              ph_name = name;
              ph_count = count;
              ph_total_us = total;
              ph_self_us = self;
              ph_frac = frac;
              ph_amdahl = (if frac < 1.0 then 1.0 /. (1.0 -. frac) else infinity);
            }
            :: acc)
          per_name []
        |> List.sort (fun a b ->
               compare (-a.ph_self_us, a.ph_name) (-b.ph_self_us, b.ph_name))
      in
      Some
        {
          at_wall_us = wall;
          at_phases = phases;
          at_serial =
            (match phases with [] -> None | p :: _ -> Some p.ph_name);
        }

(* ---- The full report. ---- *)

type t = {
  r_design : string;
  r_mode : string;
  r_length : int;
  r_driver : string;
  r_est_speed_hz : float;
  r_chain : chain;
  r_occupancy : occupancy;
  r_phases : attribution option;
}

let analyze ?(route = Tiers.default_options) ?(obs = Sink.null) ~design
    prepared sched =
  {
    r_design = design;
    r_mode = Tiers.mode_name route.Tiers.mode;
    r_length = sched.Schedule.length;
    r_driver = sched.Schedule.length_driver;
    r_est_speed_hz = Schedule.est_speed_hz sched;
    r_chain = critical_chain ~route prepared sched;
    r_occupancy = occupancy sched prepared.Compile.system;
    r_phases = attribution obs;
  }

(* ---- Exporters. ---- *)

let pp_summary ppf t =
  Format.fprintf ppf "explain: %s (%s): %d vclocks/frame, %.1f kHz — %s@,"
    t.r_design t.r_mode t.r_length
    (t.r_est_speed_hz /. 1e3)
    t.r_driver;
  Format.fprintf ppf "critical chain (span 0..%d%s):@," t.r_chain.ch_length
    (if t.r_chain.ch_exact then ", exact" else ", approximate");
  List.iter
    (fun h ->
      Format.fprintf ppf "  [%3d..%3d] %-11s %s@," h.h_from h.h_to h.h_kind
        h.h_what)
    t.r_chain.ch_hops;
  let oc = t.r_occupancy in
  Format.fprintf ppf
    "occupancy: %d channels x %d slots, mean utilization %.1f%%@,"
    oc.oc_num_channels (oc.oc_length + 1)
    (100.0 *. oc.oc_mean_util);
  let pp_rank label fmt_item items =
    if items <> [] then begin
      Format.fprintf ppf "  %s:" label;
      List.iter (fun it -> Format.fprintf ppf " %s" (fmt_item it)) items;
      Format.fprintf ppf "@,"
    end
  in
  pp_rank "hot channels"
    (fun (c, n) ->
      Format.asprintf "%s (%d wire-slots, %.0f%%)" oc.oc_channel_names.(c) n
        (100.0 *. oc.oc_per_channel_util.(c)))
    oc.oc_hot_channels;
  pp_rank "hot links"
    (fun (l, n) -> Printf.sprintf "%s (%d)" l n)
    oc.oc_hot_links;
  pp_rank "hot domains"
    (fun (d, n) -> Printf.sprintf "%s (%d)" d n)
    oc.oc_hot_domains;
  Format.fprintf ppf
    "  wire-slots: %d multi-domain (FORK) / %d single-domain, %d dedicated \
     wires@,"
    oc.oc_mts_wire_slots oc.oc_single_wire_slots oc.oc_hard_wires;
  match t.r_phases with
  | None -> ()
  | Some a ->
      Format.fprintf ppf "phase attribution (wall %.1f ms):@,"
        (float_of_int a.at_wall_us /. 1e3);
      List.iter
        (fun p ->
          if p.ph_self_us > 0 then
            Format.fprintf ppf
              "  %-18s self %8.1f ms  %5.1f%%  (Amdahl bound x%.2f)@,"
              p.ph_name
              (float_of_int p.ph_self_us /. 1e3)
              (100.0 *. p.ph_frac) p.ph_amdahl)
        a.at_phases;
      (match a.at_serial with
      | Some s -> Format.fprintf ppf "  serial bottleneck: %s@," s
      | None -> ())

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>%a@]" pp_summary t

let to_json t =
  let module J = Diag.Json in
  let b = Buffer.create 8192 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-explain-1");
  J.field b ~first "design" (J.string t.r_design);
  J.field b ~first "mode" (J.string t.r_mode);
  J.field b ~first "length" (string_of_int t.r_length);
  J.field b ~first "driver" (J.string t.r_driver);
  J.field b ~first "est_speed_hz" (Printf.sprintf "%.6g" t.r_est_speed_hz);
  J.field b ~first "exact" (string_of_bool t.r_chain.ch_exact);
  J.field b ~first "chain_driver" (J.string t.r_chain.ch_driver);
  let chain =
    let cb = Buffer.create 1024 in
    Buffer.add_char cb '[';
    List.iteri
      (fun i h ->
        if i > 0 then Buffer.add_char cb ',';
        let hf = ref true in
        Buffer.add_char cb '{';
        J.field cb ~first:hf "kind" (J.string h.h_kind);
        J.field cb ~first:hf "from" (string_of_int h.h_from);
        J.field cb ~first:hf "to" (string_of_int h.h_to);
        J.field cb ~first:hf "what" (J.string h.h_what);
        let opt name v =
          match v with
          | Some v -> J.field cb ~first:hf name (string_of_int v)
          | None -> ()
        in
        opt "net" h.h_ctx.Diag.net;
        opt "cell" h.h_ctx.Diag.cell;
        opt "block" h.h_ctx.Diag.block;
        opt "domain" h.h_ctx.Diag.domain;
        opt "channel" h.h_channel;
        Buffer.add_char cb '}')
      t.r_chain.ch_hops;
    Buffer.add_char cb ']';
    Buffer.contents cb
  in
  J.field b ~first "chain" chain;
  let oc = t.r_occupancy in
  let occ =
    let ob = Buffer.create 4096 in
    let of_ = ref true in
    Buffer.add_char ob '{';
    J.field ob ~first:of_ "channels" (string_of_int oc.oc_num_channels);
    J.field ob ~first:of_ "length" (string_of_int oc.oc_length);
    J.field ob ~first:of_ "mean_utilization"
      (Printf.sprintf "%.6g" oc.oc_mean_util);
    let float_arr a =
      "["
      ^ String.concat ","
          (Array.to_list (Array.map (Printf.sprintf "%.6g") a))
      ^ "]"
    in
    let int_arr a =
      "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"
    in
    J.field ob ~first:of_ "per_channel_utilization"
      (float_arr oc.oc_per_channel_util);
    J.field ob ~first:of_ "matrix"
      ("["
      ^ String.concat "," (Array.to_list (Array.map int_arr oc.oc_matrix))
      ^ "]");
    let rank name fmt_key l =
      J.field ob ~first:of_ name
        ("["
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "{%s,\"wire_slots\":%d}" (fmt_key k) v)
               l)
        ^ "]")
    in
    rank "hot_channels"
      (fun c -> Printf.sprintf "\"channel\":%d" c)
      oc.oc_hot_channels;
    rank "hot_links"
      (fun l -> Printf.sprintf "\"link\":%s" (J.string l))
      oc.oc_hot_links;
    rank "hot_domains"
      (fun d -> Printf.sprintf "\"domain\":%s" (J.string d))
      oc.oc_hot_domains;
    J.field ob ~first:of_ "mts_wire_slots" (string_of_int oc.oc_mts_wire_slots);
    J.field ob ~first:of_ "single_wire_slots"
      (string_of_int oc.oc_single_wire_slots);
    J.field ob ~first:of_ "hard_wires" (string_of_int oc.oc_hard_wires);
    Buffer.add_char ob '}';
    Buffer.contents ob
  in
  J.field b ~first "occupancy" occ;
  (match t.r_phases with
  | None -> ()
  | Some a ->
      let pb = Buffer.create 1024 in
      let pf = ref true in
      Buffer.add_char pb '{';
      J.field pb ~first:pf "wall_us" (string_of_int a.at_wall_us);
      (match a.at_serial with
      | Some s -> J.field pb ~first:pf "serial_bottleneck" (J.string s)
      | None -> ());
      J.field pb ~first:pf "phases"
        ("["
        ^ String.concat ","
            (List.map
               (fun p ->
                 Printf.sprintf
                   "{\"name\":%s,\"count\":%d,\"total_us\":%d,\"self_us\":%d,\"fraction\":%.6g,\"amdahl_bound\":%.6g}"
                   (J.string p.ph_name) p.ph_count p.ph_total_us p.ph_self_us
                   p.ph_frac p.ph_amdahl)
               a.at_phases)
        ^ "]");
      Buffer.add_char pb '}';
      J.field b ~first "phases" (Buffer.contents pb));
  Buffer.add_char b '}';
  Buffer.contents b

let perfetto_string t =
  let module J = Diag.Json in
  let oc = t.r_occupancy in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  Array.iteri
    (fun c row ->
      Array.iteri
        (fun slot wires ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":%s,\"ph\":\"C\",\"ts\":%d,\"pid\":0,\"tid\":0,\"args\":{\"wires\":%d}}"
               (J.string oc.oc_channel_names.(c))
               slot wires))
        row)
    oc.oc_matrix;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b
