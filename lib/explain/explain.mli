(** Schedule explainability: why is the frame as long as it is, and where
    do the wires go?

    The compiler's observability ({!Msched_obs}) times the {e compiler};
    this pass explains the {e compiled artifact}.  Three analyses over a
    finished {!Msched_route.Schedule.t} plus the prepared front-end it was
    built from:

    - {b Critical chain} ({!critical_chain}): the dependency path of
      settles, transports, FORK equalizations and latch evaluations whose
      end-to-end slot span equals [Schedule.length].  Extracted by
      {e replaying} the TIERS requirement propagation over the scheduler's
      own processing order ({!Msched_route.Sched_graph}), using the actual
      departure/arrival slots of the compiled schedule and recording a
      provenance backpointer at every requirement bump; the chain is the
      backpointer walk from the binding length constraint to the frame
      end.  For a TIERS-compiled schedule the replayed length equals
      [Schedule.length] and the chain is exact ([ch_exact]); for schedules
      this pass cannot reproduce (e.g. the forward scheduler's) it
      degrades to a single whole-frame hop with [ch_exact = false].

    - {b Occupancy} ({!occupancy}): the per-slot × per-channel hop matrix
      (generalizing {!Msched_route.Schedule.channel_utilization}), hot
      channel / link / domain rankings by wire-slots, and the
      MTS-vs-single-domain contribution split.

    - {b Phase attribution} ({!attribution}): an Amdahl-style self-time
      table over recorded compiler spans, naming the serial fraction a
      parallelization effort must attack.

    Exporters follow the {!Msched_obs.Export} style: a human summary tree,
    a stable [msched-explain-1] JSON document, and a Perfetto/Chrome trace
    of per-channel occupancy counter tracks. *)

type hop = {
  h_kind : string;
      (** One of ["settle"], ["transport"], ["comb"], ["latch-eval"],
          ["sink-path"], ["congestion"], ["frame"]. *)
  h_from : int;  (** Forward slot the hop starts at. *)
  h_to : int;  (** Forward slot the hop ends at ([>= h_from]). *)
  h_what : string;  (** Human description of the hop. *)
  h_ctx : Msched_diag.Diag.context;
      (** Culprit ids (net/cell/block/domain — the channel rides in
          [fpga]-free [slack]-free context via [h_channel]). *)
  h_channel : int option;  (** Channel index for transport-ish hops. *)
}

type chain = {
  ch_hops : hop list;
      (** In forward-time order; contiguous: the first hop starts at slot
          0, each hop starts where the previous one ended, and the last
          ends at [ch_length]. *)
  ch_length : int;  (** The schedule's frame length. *)
  ch_driver : string;  (** Replayed description of the binding constraint. *)
  ch_exact : bool;
      (** The replayed length equals the schedule's.  When [false] the
          chain is the single whole-frame fallback hop. *)
}

val critical_chain :
  ?route:Msched_route.Tiers.options ->
  Msched.Compile.prepared ->
  Msched_route.Schedule.t ->
  chain
(** [route] must be the options the schedule was compiled with (only
    [latch_ordering] influences the replay; defaults to
    {!Msched_route.Tiers.default_options}). *)

type occupancy = {
  oc_num_channels : int;
  oc_length : int;
  oc_channel_names : string array;  (** ["ch3 f1->f2"], per channel. *)
  oc_matrix : int array array;
      (** [channel × (length + 1)]: multiplexed hops per (channel, slot). *)
  oc_per_channel_util : float array;
  oc_mean_util : float;
  oc_hot_channels : (int * int) list;
      (** (channel, wire-slots), busiest first, zero-traffic channels
          omitted, at most 5. *)
  oc_hot_links : (string * int) list;  (** (link description, wire-slots). *)
  oc_hot_domains : (string * int) list;  (** (domain, wire-slots). *)
  oc_mts_wire_slots : int;
      (** Hops on constituent-domain (FORK) transports. *)
  oc_single_wire_slots : int;  (** Hops on untagged multiplexed transports. *)
  oc_hard_wires : int;  (** Dedicated wires (whole-frame occupancy). *)
}

val occupancy : Msched_route.Schedule.t -> Msched_arch.System.t -> occupancy

type phase = {
  ph_name : string;
  ph_count : int;  (** Spans with this name. *)
  ph_total_us : int;  (** Summed wall time including children. *)
  ph_self_us : int;  (** Summed wall time excluding child spans. *)
  ph_frac : float;  (** Self time over total root wall time. *)
  ph_amdahl : float;
      (** Speedup bound from parallelizing this phase alone:
          [1 / (1 - ph_frac)]. *)
}

type attribution = {
  at_wall_us : int;  (** Summed duration of root spans. *)
  at_phases : phase list;  (** Largest self-time first. *)
  at_serial : string option;  (** The serial bottleneck phase. *)
}

val attribution : Msched_obs.Sink.t -> attribution option
(** [None] for a disabled sink or one with no completed spans. *)

type t = {
  r_design : string;
  r_mode : string;
  r_length : int;
  r_driver : string;  (** The schedule's own [length_driver]. *)
  r_est_speed_hz : float;
  r_chain : chain;
  r_occupancy : occupancy;
  r_phases : attribution option;
}

val analyze :
  ?route:Msched_route.Tiers.options ->
  ?obs:Msched_obs.Sink.t ->
  design:string ->
  Msched.Compile.prepared ->
  Msched_route.Schedule.t ->
  t
(** Everything above in one report.  Phases are included only when [obs]
    is an enabled sink with recorded spans; without them the report (and
    {!to_json}) is a deterministic function of the compiled schedule. *)

val pp_summary : Format.formatter -> t -> unit
(** Human tree: chain, occupancy rankings, phase table. *)

val to_json : t -> string
(** Stable [msched-explain-1] document.  Byte-deterministic for a fixed
    design/seed when the report carries no phase attribution (phase rows
    embed wall times). *)

val perfetto_string : t -> string
(** Chrome trace-event JSON of per-channel occupancy counter tracks: one
    counter ("C") event per (channel, slot), [ts] = forward slot.  Loads
    in {{:https://ui.perfetto.dev}Perfetto} next to a compiler trace. *)
