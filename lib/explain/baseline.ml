module Diag = Msched_diag.Diag
module J = Diag.Json

type kind = Time | Count | Length | Speed | Bool

let kind_name = function
  | Time -> "time"
  | Count -> "count"
  | Length -> "length"
  | Speed -> "speed"
  | Bool -> "bool"

type metric = { m_path : string; m_kind : kind; m_value : float }

let parse_error fmt = Format.kasprintf (fun m -> Diag.error Diag.E_PARSE "%s" m) fmt

(* Flatten one msched-obs-1 document under [prefix].  Span durations are
   aggregated to a per-name maximum (several attempts may reuse a span
   name); counters become Count metrics; the schedule gauges carry their
   deterministic classes. *)
let extract_obs ~prefix v acc =
  let acc =
    match J.mem "spans" v with
    | Some (J.Arr spans) ->
        let max_by_name = Hashtbl.create 32 in
        List.iter
          (fun s ->
            match (Option.bind (J.mem "name" s) J.str,
                   Option.bind (J.mem "dur_us" s) J.num)
            with
            | Some name, Some dur ->
                let cur =
                  Option.value ~default:neg_infinity
                    (Hashtbl.find_opt max_by_name name)
                in
                Hashtbl.replace max_by_name name (Float.max cur dur)
            | _ -> ())
          spans;
        Hashtbl.fold
          (fun name dur acc ->
            {
              m_path = Printf.sprintf "%s.span.%s.max_dur_us" prefix name;
              m_kind = Time;
              m_value = dur;
            }
            :: acc)
          max_by_name acc
    | _ -> acc
  in
  let flat_obj member kind_of acc =
    match J.mem member v with
    | Some (J.Obj kvs) ->
        List.fold_left
          (fun acc (k, value) ->
            match J.num value with
            | Some f ->
                {
                  m_path =
                    Printf.sprintf "%s.%s.%s" prefix
                      (match member with "counters" -> "counter" | _ -> "gauge")
                      k;
                  m_kind = kind_of k;
                  m_value = f;
                }
                :: acc
            | None -> acc)
          acc kvs
    | _ -> acc
  in
  let gauge_kind = function
    | "schedule.length" -> Length
    | "schedule.est_speed_hz" -> Speed
    | _ -> Count
  in
  flat_obj "counters" (fun _ -> Count) acc |> flat_obj "gauges" gauge_kind

let extract text =
  match J.parse text with
  | Error at -> Error (parse_error "baseline is not valid JSON (%s)" at)
  | Ok doc -> (
      match Option.bind (J.mem "schema" doc) J.str with
      | Some "msched-bench-pipeline-7" ->
          let acc = [] in
          let acc =
            match J.mem "designs" doc with
            | Some (J.Obj designs) ->
                List.fold_left
                  (fun acc (name, obs) ->
                    extract_obs ~prefix:("designs." ^ name) obs acc)
                  acc designs
            | _ -> acc
          in
          let acc =
            match Option.bind (J.mem "driver" doc) (J.mem "obs") with
            | Some obs -> (
                (* Driver spans are wall-clock over many attempts and its
                   gauges repeat the per-design ones; only the resilience
                   counters are gate-worthy. *)
                match J.mem "counters" obs with
                | Some (J.Obj kvs) ->
                    List.fold_left
                      (fun acc (k, value) ->
                        match J.num value with
                        | Some f ->
                            {
                              m_path = "driver.counter." ^ k;
                              m_kind = Count;
                              m_value = f;
                            }
                            :: acc
                        | None -> acc)
                      acc kvs
                | _ -> acc)
            | None -> acc
          in
          let acc =
            match J.mem "workloads" doc with
            | Some (J.Obj families) ->
                List.fold_left
                  (fun acc (family, entries) ->
                    match J.arr entries with
                    | None -> acc
                    | Some entries ->
                        List.fold_left
                          (fun acc e ->
                            match Option.bind (J.mem "spec" e) J.str with
                            | None -> acc
                            | Some spec ->
                                let p field =
                                  Printf.sprintf "workloads.%s.%s.%s" family
                                    spec field
                                in
                                let num field kind acc =
                                  match
                                    Option.bind (J.mem field e) J.num
                                  with
                                  | Some f ->
                                      {
                                        m_path = p field;
                                        m_kind = kind;
                                        m_value = f;
                                      }
                                      :: acc
                                  | None -> acc
                                in
                                let acc = num "schedule_length" Length acc in
                                let acc = num "est_speed_hz" Speed acc in
                                let acc =
                                  match J.mem "verifier_clean" e with
                                  | Some (J.Bool b) ->
                                      {
                                        m_path = p "verifier_clean";
                                        m_kind = Bool;
                                        m_value = (if b then 1.0 else 0.0);
                                      }
                                      :: acc
                                  | _ -> acc
                                in
                                acc)
                          acc entries)
                  acc families
            | _ -> acc
          in
          let acc =
            (* Parallel-compile section: only its equality classes are
               gated (identical schedules/placements across widths, stable
               length/speed) — the recorded wall times are informational,
               never compared (1-core runners cannot show parallel gain). *)
            match J.mem "par" doc with
            | Some par ->
                let bool_metric field acc =
                  match J.mem field par with
                  | Some (J.Bool b) ->
                      {
                        m_path = "par." ^ field;
                        m_kind = Bool;
                        m_value = (if b then 1.0 else 0.0);
                      }
                      :: acc
                  | _ -> acc
                in
                let num_metric field kind acc =
                  match Option.bind (J.mem field par) J.num with
                  | Some f ->
                      { m_path = "par." ^ field; m_kind = kind; m_value = f }
                      :: acc
                  | None -> acc
                in
                bool_metric "schedule_identical_1v2" acc
                |> bool_metric "schedule_identical_1v4"
                |> bool_metric "placement_identical"
                |> num_metric "schedule_length" Length
                |> num_metric "est_speed_hz" Speed
            | None -> acc
          in
          let acc =
            (* Delta-compilation section: gate the equality classes (warm
               schedule byte-identical to cold, strictly fewer pathfinder
               expansions) and the reuse economics; the wall times are
               informational, never compared. *)
            match J.mem "delta" doc with
            | Some delta ->
                let bool_metric field acc =
                  match J.mem field delta with
                  | Some (J.Bool b) ->
                      {
                        m_path = "delta." ^ field;
                        m_kind = Bool;
                        m_value = (if b then 1.0 else 0.0);
                      }
                      :: acc
                  | _ -> acc
                in
                let num_metric field kind acc =
                  match Option.bind (J.mem field delta) J.num with
                  | Some f ->
                      { m_path = "delta." ^ field; m_kind = kind; m_value = f }
                      :: acc
                  | None -> acc
                in
                bool_metric "schedule_identical" acc
                |> bool_metric "fewer_expansions"
                |> num_metric "reuse_fraction" Speed
                |> num_metric "warm_expansions" Count
                |> num_metric "identity_expansions" Count
                |> num_metric "schedule_length" Length
                |> num_metric "est_speed_hz" Speed
            | None -> acc
          in
          Ok
            (List.sort
               (fun a b -> compare a.m_path b.m_path)
               acc)
      | Some other ->
          Error
            (parse_error
               "baseline schema is %S, expected \"msched-bench-pipeline-7\""
               other)
      | None -> Error (parse_error "baseline document has no schema field"))

type verdict = {
  v_path : string;
  v_kind : kind;
  v_base : float;
  v_fresh : float option;
  v_regressed : bool;
  v_note : string;
}

type diff = { d_compared : int; d_new : int; d_verdicts : verdict list }

(* Tolerances, per class.  Shared-runner wall clocks are noisy: a time
   metric must blow through BOTH a 5x ratio and a 50 ms absolute delta.
   Work counters allow 1.5x-and-64 drift.  Schedule lengths, estimated
   speeds and verifier cleanliness are deterministic for a committed seed:
   any worsening regresses. *)
let time_ratio = 5.0
let time_abs_us = 50_000.0
let count_ratio = 1.5
let count_abs = 64.0

let judge kind base fresh =
  match kind with
  | Time ->
      let worse =
        fresh > base *. time_ratio && fresh -. base > time_abs_us
      in
      ( worse,
        if worse then
          Printf.sprintf "%.1fx and +%.0fus over baseline (limit %gx and +%gus)"
            (fresh /. Float.max 1.0 base)
            (fresh -. base) time_ratio time_abs_us
        else "within time tolerance" )
  | Count ->
      let worse = fresh > base *. count_ratio && fresh -. base > count_abs in
      ( worse,
        if worse then
          Printf.sprintf "%.2fx and +%.0f over baseline (limit %gx and +%g)"
            (fresh /. Float.max 1.0 base)
            (fresh -. base) count_ratio count_abs
        else "within count tolerance" )
  | Length ->
      let worse = fresh > base in
      ( worse,
        if worse then
          Printf.sprintf "frame grew %.0f -> %.0f vclocks (any increase fails)"
            base fresh
        else "no increase" )
  | Speed ->
      let worse = fresh < base in
      ( worse,
        if worse then
          Printf.sprintf
            "estimated speed fell %.4g -> %.4g Hz (any decrease fails)" base
            fresh
        else "no decrease" )
  | Bool ->
      let worse = base >= 1.0 && fresh < 1.0 in
      ( worse,
        if worse then "was clean in baseline, dirty in fresh run"
        else "still clean" )

let compare_runs ~baseline ~fresh =
  match extract baseline with
  | Error d -> Error d
  | Ok base_metrics -> (
      match extract fresh with
      | Error d -> Error d
      | Ok fresh_metrics ->
          let fresh_tbl = Hashtbl.create 256 in
          List.iter
            (fun m -> Hashtbl.replace fresh_tbl m.m_path m.m_value)
            fresh_metrics;
          let base_paths = Hashtbl.create 256 in
          List.iter
            (fun m -> Hashtbl.replace base_paths m.m_path ())
            base_metrics;
          let compared = ref 0 in
          let verdicts =
            List.filter_map
              (fun m ->
                match Hashtbl.find_opt fresh_tbl m.m_path with
                | Some f ->
                    incr compared;
                    let regressed, note = judge m.m_kind m.m_value f in
                    if regressed then
                      Some
                        {
                          v_path = m.m_path;
                          v_kind = m.m_kind;
                          v_base = m.m_value;
                          v_fresh = Some f;
                          v_regressed = true;
                          v_note = note;
                        }
                    else None
                | None ->
                    Some
                      {
                        v_path = m.m_path;
                        v_kind = m.m_kind;
                        v_base = m.m_value;
                        v_fresh = None;
                        v_regressed = true;
                        v_note = "metric missing from fresh run";
                      })
              base_metrics
          in
          let d_new =
            List.length
              (List.filter
                 (fun m -> not (Hashtbl.mem base_paths m.m_path))
                 fresh_metrics)
          in
          Ok { d_compared = !compared; d_new; d_verdicts = verdicts })

let ok d = d.d_verdicts = []

let to_json d =
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_char b '{';
  J.field b ~first "schema" (J.string "msched-bench-diff-1");
  J.field b ~first "ok" (string_of_bool (ok d));
  J.field b ~first "compared" (string_of_int d.d_compared);
  J.field b ~first "new_metrics" (string_of_int d.d_new);
  J.field b ~first "regressions" (string_of_int (List.length d.d_verdicts));
  J.field b ~first "tolerances"
    (Printf.sprintf
       "{\"time\":\"fail if >%gx and >+%gus\",\"count\":\"fail if >%gx and \
        >+%g\",\"length\":\"fail on any increase\",\"speed\":\"fail on any \
        decrease\",\"bool\":\"fail on true->false\"}"
       time_ratio time_abs_us count_ratio count_abs);
  let vb = Buffer.create 1024 in
  Buffer.add_char vb '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char vb ',';
      let vf = ref true in
      Buffer.add_char vb '{';
      J.field vb ~first:vf "path" (J.string v.v_path);
      J.field vb ~first:vf "kind" (J.string (kind_name v.v_kind));
      J.field vb ~first:vf "base" (Printf.sprintf "%.6g" v.v_base);
      (match v.v_fresh with
      | Some f -> J.field vb ~first:vf "fresh" (Printf.sprintf "%.6g" f)
      | None -> J.field vb ~first:vf "fresh" "null");
      J.field vb ~first:vf "note" (J.string v.v_note);
      Buffer.add_char vb '}')
    d.d_verdicts;
  Buffer.add_char vb ']';
  J.field b ~first "details" (Buffer.contents vb);
  Buffer.add_char b '}';
  Buffer.contents b

let pp ppf d =
  Format.fprintf ppf "@[<v>bench gate: %d metrics compared, %d new, %d regressions@,"
    d.d_compared d.d_new
    (List.length d.d_verdicts);
  List.iter
    (fun v ->
      Format.fprintf ppf "  REGRESSED [%s] %s: %.6g -> %s — %s@,"
        (kind_name v.v_kind) v.v_path v.v_base
        (match v.v_fresh with
        | Some f -> Printf.sprintf "%.6g" f
        | None -> "(missing)")
        v.v_note)
    d.d_verdicts;
  Format.fprintf ppf "%s@]"
    (if ok d then "bench gate: OK" else "bench gate: FAILED")
