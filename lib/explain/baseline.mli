(** Bench regression gate: diff a fresh [msched-bench-pipeline-7] document
    (what [bench/main.exe] just produced) against a committed baseline
    ([BENCH_pipeline.json]) with per-metric-class tolerances.

    Metrics are flattened to dotted paths and classified:

    - {b Time} — per-design span durations ([designs.*.span.<name>.max_dur_us]).
      Wall-clock noise on shared CI runners is large, so a time metric only
      regresses when it is {e both} more than 5× the baseline {e and} more
      than 50 ms absolute over it.
    - {b Count} — compiler work counters ([designs.*.counter.*],
      [driver.counter.*]) and the placement wirelength gauge.  Regress when
      more than 1.5× the baseline and more than 64 absolute over it (the
      annealer is seeded, but small count drift must not block a PR).
    - {b Length} — schedule frame lengths ([…schedule.length],
      [workloads.*.*.schedule_length]).  Deterministic: {e any} increase
      regresses.
    - {b Speed} — estimated emulation speeds.  Deterministic: any decrease
      regresses.
    - {b Bool} — verifier cleanliness ([workloads.*.*.verifier_clean]) and
      the parallel-compile equality classes ([par.schedule_identical_1v2],
      [par.schedule_identical_1v4], [par.placement_identical]).  [true] in
      the baseline must stay [true].

    A metric present in the baseline but missing from the fresh run is a
    regression (coverage must not silently shrink); a metric only present
    in the fresh run is reported as new but never fails the gate.  The
    [batch] section is wall-clock-dominated and excluded entirely. *)

type kind = Time | Count | Length | Speed | Bool

val kind_name : kind -> string

type metric = { m_path : string; m_kind : kind; m_value : float }

val extract : string -> (metric list, Msched_diag.Diag.t) result
(** Flatten a [msched-bench-pipeline-7] JSON document into classified
    metrics.  [Error] ([E_PARSE]) when the text is not valid JSON or not
    the expected schema. *)

type verdict = {
  v_path : string;
  v_kind : kind;
  v_base : float;
  v_fresh : float option;  (** [None]: metric vanished from the fresh run. *)
  v_regressed : bool;
  v_note : string;
}

type diff = {
  d_compared : int;  (** Metrics present in both documents. *)
  d_new : int;  (** Metrics only in the fresh run (never failing). *)
  d_verdicts : verdict list;  (** Regressions only, sorted by path. *)
}

val compare_runs : baseline:string -> fresh:string -> (diff, Msched_diag.Diag.t) result

val ok : diff -> bool

val to_json : diff -> string
(** Stable [msched-bench-diff-1] document with the tolerance table and the
    regression list — the CI artifact. *)

val pp : Format.formatter -> diff -> unit
