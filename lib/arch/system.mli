(** Emulation-system descriptor: topology + pin budget + virtual clock.

    Each directed neighbor pair of FPGAs is joined by a {e channel} holding a
    fixed number of physical wires; a wire carries one bit per virtual clock.
    Channel widths are derived from the per-FPGA user-IO pin budget: an
    FPGA's pins are split evenly over its incident directed channels (in and
    out), and a channel's width is the minimum of what its two endpoints can
    afford.  This matches the paper's Xilinx XC4062XL setting (240 user-IO
    pins, 34 MHz virtual clock). *)

open Msched_netlist

type channel = {
  channel_index : int;
  src : Ids.Fpga.t;
  dst : Ids.Fpga.t;
  width : int;  (** Number of physical wires in this directed channel. *)
}

type t

val make :
  ?vclock_hz:float -> Topology.t -> pins_per_fpga:int -> t
(** Default virtual clock: 34 MHz.
    @raise Invalid_argument if the pin budget gives some channel zero
    wires. *)

val topology : t -> Topology.t
val pins_per_fpga : t -> int
val vclock_hz : t -> float
val num_fpgas : t -> int
val channels : t -> channel array
val channel : t -> int -> channel
val channel_between : t -> src:Ids.Fpga.t -> dst:Ids.Fpga.t -> channel option
val out_channels : t -> Ids.Fpga.t -> channel list
val in_channels : t -> Ids.Fpga.t -> channel list

val pins_used_per_fpga : t -> Ids.Fpga.t -> int
(** Pins consumed by the derived channel widths at an FPGA (each wire costs
    one pin at each endpoint). *)

val xilinx_4062_pins : int
(** User-IO pin count of the paper's XC4062XL FPGAs (240). *)

val default_vclock_hz : float
(** 34 MHz, the VStation-5M virtual clock used for speed estimates. *)

val pp : Format.formatter -> t -> unit
