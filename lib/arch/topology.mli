(** FPGA-array topologies of the emulation system.

    The VirtuaLogic boards the paper targets are fixed arrays of FPGAs joined
    by point-to-point wires.  We model three interconnect shapes; the
    scheduler only depends on the neighbor relation and hop distances. *)

open Msched_netlist

type kind =
  | Mesh  (** 2-D grid, 4-neighbor. *)
  | Torus  (** 2-D grid with wraparound links. *)
  | Crossbar  (** Every FPGA directly wired to every other. *)

val pp_kind : Format.formatter -> kind -> unit

type t

val make : kind -> nx:int -> ny:int -> t
(** An [nx * ny] array. For [Crossbar] the shape is only used for the FPGA
    count. @raise Invalid_argument on non-positive dimensions. *)

val make_for_count : kind -> int -> t
(** The most square [nx * ny] array with at least the given FPGA count. *)

val kind : t -> kind
val num_fpgas : t -> int
val fpgas : t -> Ids.Fpga.t list
val coords : t -> Ids.Fpga.t -> int * int
val fpga_at : t -> x:int -> y:int -> Ids.Fpga.t
val neighbors : t -> Ids.Fpga.t -> Ids.Fpga.t list
(** Deterministic order; does not include the FPGA itself. *)

val degree : t -> Ids.Fpga.t -> int
val distance : t -> Ids.Fpga.t -> Ids.Fpga.t -> int
(** Minimal hop count between two FPGAs. *)

val pp : Format.formatter -> t -> unit
