open Msched_netlist

type kind = Mesh | Torus | Crossbar

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Mesh -> "mesh" | Torus -> "torus" | Crossbar -> "crossbar")

type t = { kind : kind; nx : int; ny : int }

let make kind ~nx ~ny =
  if nx <= 0 || ny <= 0 then invalid_arg "Topology.make: dimensions";
  { kind; nx; ny }

let make_for_count kind n =
  if n <= 0 then invalid_arg "Topology.make_for_count";
  let nx = int_of_float (ceil (sqrt (float_of_int n))) in
  let ny = (n + nx - 1) / nx in
  make kind ~nx ~ny

let kind t = t.kind
let num_fpgas t = t.nx * t.ny
let fpgas t = List.init (num_fpgas t) Ids.Fpga.of_int

let coords t f =
  let i = Ids.Fpga.to_int f in
  (i mod t.nx, i / t.nx)

let fpga_at t ~x ~y =
  if x < 0 || x >= t.nx || y < 0 || y >= t.ny then
    invalid_arg "Topology.fpga_at: out of bounds";
  Ids.Fpga.of_int ((y * t.nx) + x)

let neighbors t f =
  match t.kind with
  | Crossbar ->
      List.filter (fun g -> not (Ids.Fpga.equal f g)) (fpgas t)
  | Mesh ->
      let x, y = coords t f in
      let candidates = [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ] in
      List.filter_map
        (fun (x, y) ->
          if x >= 0 && x < t.nx && y >= 0 && y < t.ny then
            Some (fpga_at t ~x ~y)
          else None)
        candidates
  | Torus ->
      let x, y = coords t f in
      let wrap v n = ((v mod n) + n) mod n in
      let candidates =
        [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]
        |> List.map (fun (x, y) -> (wrap x t.nx, wrap y t.ny))
      in
      (* A 1-wide or 1-tall torus degenerates; deduplicate and drop self. *)
      let module S = Ids.Fpga.Set in
      S.elements
        (List.fold_left
           (fun acc (x, y) ->
             let g = fpga_at t ~x ~y in
             if Ids.Fpga.equal g f then acc else S.add g acc)
           S.empty candidates)

let degree t f = List.length (neighbors t f)

let distance t a b =
  let ax, ay = coords t a and bx, by = coords t b in
  match t.kind with
  | Crossbar -> if Ids.Fpga.equal a b then 0 else 1
  | Mesh -> abs (ax - bx) + abs (ay - by)
  | Torus ->
      let d v1 v2 n = min (abs (v1 - v2)) (n - abs (v1 - v2)) in
      d ax bx t.nx + d ay by t.ny

let pp ppf t = Format.fprintf ppf "%a %dx%d" pp_kind t.kind t.nx t.ny
