open Msched_netlist

type channel = {
  channel_index : int;
  src : Ids.Fpga.t;
  dst : Ids.Fpga.t;
  width : int;
}

type t = {
  topology : Topology.t;
  pins_per_fpga : int;
  vclock_hz : float;
  channels : channel array;
  out_by_fpga : channel list array;
  in_by_fpga : channel list array;
  index : (int * int, int) Hashtbl.t;  (* (src, dst) -> channel_index *)
}

let xilinx_4062_pins = 240
let default_vclock_hz = 34.0e6

let make ?(vclock_hz = default_vclock_hz) topology ~pins_per_fpga =
  if pins_per_fpga <= 0 then invalid_arg "System.make: pins_per_fpga";
  if vclock_hz <= 0.0 then invalid_arg "System.make: vclock_hz";
  let n = Topology.num_fpgas topology in
  (* Pins are divided over the incident directed channels of each FPGA;
     out and in channels both consume pins. *)
  let afford f =
    let deg = Topology.degree topology f in
    if deg = 0 then max_int else pins_per_fpga / (2 * deg)
  in
  let channels = ref [] in
  let idx = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          let width = min (afford src) (afford dst) in
          if width <= 0 then
            invalid_arg
              (Format.asprintf
                 "System.make: pin budget %d gives channel %a->%a zero wires"
                 pins_per_fpga Ids.Fpga.pp src Ids.Fpga.pp dst);
          channels := { channel_index = !idx; src; dst; width } :: !channels;
          incr idx)
        (Topology.neighbors topology src))
    (Topology.fpgas topology);
  let channels = Array.of_list (List.rev !channels) in
  let out_by_fpga = Array.make n [] in
  let in_by_fpga = Array.make n [] in
  let index = Hashtbl.create (Array.length channels) in
  Array.iter
    (fun c ->
      let s = Ids.Fpga.to_int c.src and d = Ids.Fpga.to_int c.dst in
      out_by_fpga.(s) <- c :: out_by_fpga.(s);
      in_by_fpga.(d) <- c :: in_by_fpga.(d);
      Hashtbl.replace index (s, d) c.channel_index)
    channels;
  Array.iteri (fun i l -> out_by_fpga.(i) <- List.rev l) out_by_fpga;
  Array.iteri (fun i l -> in_by_fpga.(i) <- List.rev l) in_by_fpga;
  { topology; pins_per_fpga; vclock_hz; channels; out_by_fpga; in_by_fpga; index }

let topology t = t.topology
let pins_per_fpga t = t.pins_per_fpga
let vclock_hz t = t.vclock_hz
let num_fpgas t = Topology.num_fpgas t.topology
let channels t = t.channels
let channel t i = t.channels.(i)

let channel_between t ~src ~dst =
  match Hashtbl.find_opt t.index (Ids.Fpga.to_int src, Ids.Fpga.to_int dst) with
  | Some i -> Some t.channels.(i)
  | None -> None

let out_channels t f = t.out_by_fpga.(Ids.Fpga.to_int f)
let in_channels t f = t.in_by_fpga.(Ids.Fpga.to_int f)

let pins_used_per_fpga t f =
  let sum = List.fold_left (fun acc c -> acc + c.width) 0 in
  sum (out_channels t f) + sum (in_channels t f)

let pp ppf t =
  Format.fprintf ppf "%a, %d pins/FPGA, %.1f MHz vclock, %d channels"
    Topology.pp t.topology t.pins_per_fpga (t.vclock_hz /. 1e6)
    (Array.length t.channels)
