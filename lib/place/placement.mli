(** Block-to-FPGA placement.

    Blocks produced by the partitioner are mapped one-to-one onto FPGAs of
    the emulation system.  The placer minimizes total weighted hop distance
    over inter-block connections (a proxy for route-link path length) with a
    greedy constructive pass followed by seeded simulated annealing. *)

open Msched_netlist

type t

val place :
  Msched_partition.Partition.t ->
  Msched_arch.System.t ->
  ?seed:int ->
  ?effort:int ->
  ?pinned:(Ids.Block.t * Ids.Fpga.t) list ->
  ?obs:Msched_obs.Sink.t ->
  ?jobs:int ->
  unit ->
  t
(** [effort] scales the annealing move budget (default 4; 0 disables
    annealing and keeps the constructive placement).  [pinned] blocks are
    fixed to the given FPGAs and never moved — the hook for hard-wired
    cores, whose heterogeneous placement the paper lists as future work.

    Annealing draws are counter-based (a pure function of seed and move
    index), so the trajectory is a function of [seed] alone: [jobs]
    (default 1) only sets how many worker domains evaluate move batches
    speculatively — the returned placement and the [place.*] metrics are
    identical for every [jobs], and [jobs <= 1] never spawns a domain.
    @raise Invalid_argument if there are more blocks than FPGAs, or if
    pinned entries conflict. *)

val of_assignment :
  Msched_partition.Partition.t ->
  Msched_arch.System.t ->
  Ids.Fpga.t array ->
  t
(** Adopt an explicit block-to-FPGA map (indexed by [Ids.Block.to_int]).
    @raise Invalid_argument on duplicate FPGAs. *)

val partition : t -> Msched_partition.Partition.t
val system : t -> Msched_arch.System.t
val fpga_of_block : t -> Ids.Block.t -> Ids.Fpga.t
val block_of_fpga : t -> Ids.Fpga.t -> Ids.Block.t option
val fpga_of_cell : t -> Ids.Cell.t -> Ids.Fpga.t

val wirelength : t -> int
(** Total weighted hop distance over inter-block connections (the annealing
    objective). *)

val pp_summary : Format.formatter -> t -> unit
