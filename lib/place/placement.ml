open Msched_netlist
module Partition = Msched_partition.Partition
module System = Msched_arch.System
module Topology = Msched_arch.Topology

type t = {
  partition : Partition.t;
  system : System.t;
  fpga_of_block : int array;  (* by block index *)
  block_of_fpga : int array;  (* by fpga index, -1 when empty *)
}

let partition t = t.partition
let system t = t.system
let fpga_of_block t b = Ids.Fpga.of_int t.fpga_of_block.(Ids.Block.to_int b)

let block_of_fpga t f =
  match t.block_of_fpga.(Ids.Fpga.to_int f) with
  | -1 -> None
  | b -> Some (Ids.Block.of_int b)

let fpga_of_cell t c = fpga_of_block t (Partition.block_of_cell t.partition c)

(* Inter-block connection multiset: (a, b, weight) with a < b. *)
let connections part =
  let tbl = Hashtbl.create 256 in
  let bump a b w =
    let key = if a < b then (a, b) else (b, a) in
    if a <> b then
      Hashtbl.replace tbl key (w + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let nl = Partition.netlist part in
  List.iter
    (fun net ->
      let src =
        Ids.Block.to_int (Partition.block_of_cell part (Netlist.driver nl net).Cell.id)
      in
      List.iter
        (fun (b, terms) ->
          bump src (Ids.Block.to_int b) (List.length terms))
        (Partition.foreign_consumers part net))
    (Partition.crossing_nets part);
  Hashtbl.fold (fun (a, b) w acc -> (a, b, w) :: acc) tbl []
  |> List.sort compare

let cost_of sys conns fpga_of_block =
  let topo = System.topology sys in
  List.fold_left
    (fun acc (a, b, w) ->
      acc
      + w
        * Topology.distance topo
            (Ids.Fpga.of_int fpga_of_block.(a))
            (Ids.Fpga.of_int fpga_of_block.(b)))
    0 conns

let build part sys fpga_of_block =
  let nf = System.num_fpgas sys in
  let block_of_fpga = Array.make nf (-1) in
  Array.iteri
    (fun b f ->
      if block_of_fpga.(f) <> -1 then
        invalid_arg "Placement: two blocks on one FPGA";
      block_of_fpga.(f) <- b)
    fpga_of_block;
  { partition = part; system = sys; fpga_of_block; block_of_fpga }

let of_assignment part sys assignment =
  if Array.length assignment <> Partition.num_blocks part then
    invalid_arg "Placement.of_assignment: wrong length";
  build part sys (Array.map Ids.Fpga.to_int assignment)

(* Greedy constructive placement: pinned blocks first, then the rest in
   decreasing connectivity order, each at the free FPGA minimizing cost
   against already-placed neighbors. *)
let constructive part sys conns pinned =
  let nb = Partition.num_blocks part in
  let nf = System.num_fpgas sys in
  let topo = System.topology sys in
  let adj = Array.make nb [] in
  List.iter
    (fun (a, b, w) ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    conns;
  let degree b = List.fold_left (fun acc (_, w) -> acc + w) 0 adj.(b) in
  let order =
    List.sort
      (fun a b -> compare (degree b, a) (degree a, b))
      (List.init nb Fun.id)
    |> List.filter (fun b -> pinned.(b) = -1)
  in
  let fpga_of_block = Array.make nb (-1) in
  let taken = Array.make nf false in
  Array.iteri
    (fun b f ->
      if f >= 0 then begin
        if taken.(f) then invalid_arg "Placement.place: conflicting pins";
        fpga_of_block.(b) <- f;
        taken.(f) <- true
      end)
    pinned;
  List.iter
    (fun b ->
      let best = ref (-1) and best_cost = ref max_int in
      for f = 0 to nf - 1 do
        if not taken.(f) then begin
          let c =
            List.fold_left
              (fun acc (nb', w) ->
                if fpga_of_block.(nb') >= 0 then
                  acc
                  + w
                    * Topology.distance topo (Ids.Fpga.of_int f)
                        (Ids.Fpga.of_int fpga_of_block.(nb'))
                else acc)
              0 adj.(b)
          in
          if c < !best_cost then begin
            best_cost := c;
            best := f
          end
        end
      done;
      fpga_of_block.(b) <- !best;
      taken.(!best) <- true)
    order;
  fpga_of_block

(* ---- Annealing RNG: counter mode. ----

   Every random draw of the annealer is a pure function of (seed, nb, nf,
   draw index) — splitmix64 applied to a per-placement base plus the draw
   counter — so the move stream does not depend on execution order or on
   how many draws a rejected move consumed.  This is what lets the
   parallel annealer evaluate moves speculatively out of order and still
   commit the exact sequential trajectory. *)

let sm64_gamma = 0x9E3779B97F4A7C15L

let splitmix64 z =
  let open Int64 in
  let z = add z sm64_gamma in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let draw_base ~seed ~nb ~nf =
  let s = splitmix64 (Int64.of_int seed) in
  let s = splitmix64 (Int64.add s (Int64.of_int nb)) in
  splitmix64 (Int64.add s (Int64.of_int nf))

let draw base i =
  splitmix64 (Int64.add base (Int64.mul (Int64.of_int i) sm64_gamma))

let draw_int base i n =
  Int64.to_int (Int64.shift_right_logical (draw base i) 33) mod n

let draw_unit base i =
  Int64.to_float (Int64.shift_right_logical (draw base i) 11) *. 0x1p-53

(* Speculative evaluation of one annealing move (parallel path): the swap
   candidate and its cost delta against the state the evaluation read. *)
type move_spec =
  | Ms_skip  (* guard rejected the move; no state read beyond block_at *)
  | Ms_eval of { ms_b1 : int; ms_b2 : int; ms_delta : int }

(* Parallel batch width: fixed (not scaled by [jobs]) so batch boundaries
   are identical for every parallel width. *)
let anneal_batch = 128

let place part sys ?(seed = 7) ?(effort = 4) ?(pinned = [])
    ?(obs = Msched_obs.Sink.null) ?(jobs = 1) () =
  let module Sink = Msched_obs.Sink in
  let nb = Partition.num_blocks part in
  let nf = System.num_fpgas sys in
  if nb > nf then
    invalid_arg
      (Printf.sprintf "Placement.place: %d blocks > %d FPGAs" nb nf);
  let pinned_arr = Array.make nb (-1) in
  List.iter
    (fun (b, f) ->
      let bi = Ids.Block.to_int b in
      if bi >= nb then invalid_arg "Placement.place: pinned block out of range";
      if pinned_arr.(bi) >= 0 then
        invalid_arg "Placement.place: block pinned twice";
      pinned_arr.(bi) <- Ids.Fpga.to_int f)
    pinned;
  let conns = connections part in
  let fpga_of_block = constructive part sys conns pinned_arr in
  if effort > 0 && nb > 1 then begin
    let topo = System.topology sys in
    let adj = Array.make nb [] in
    List.iter
      (fun (a, b, w) ->
        adj.(a) <- (b, w) :: adj.(a);
        adj.(b) <- (a, w) :: adj.(b))
      conns;
    let block_at = Array.make nf (-1) in
    Array.iteri (fun b f -> block_at.(f) <- b) fpga_of_block;
    let base = draw_base ~seed ~nb ~nf in
    (* Cost of all connections incident to [b] as if it sat at [at],
       excluding those to [other] (counted once by the caller); reads only
       the positions of [b]'s other neighbors, so a swap's delta can be
       computed without mutating the placement. *)
    let placed_cost b other ~at =
      if b < 0 then 0
      else
        List.fold_left
          (fun acc (nb', w) ->
            if nb' = other then acc
            else
              acc
              + w
                * Topology.distance topo (Ids.Fpga.of_int at)
                    (Ids.Fpga.of_int fpga_of_block.(nb')))
          0 adj.(b)
    in
    let movable b = b < 0 || pinned_arr.(b) < 0 in
    let cost = ref (cost_of sys conns fpga_of_block) in
    let moves = effort * 200 * nb in
    let tried = ref 0 in
    let accepted = ref 0 in
    let temp0 = 1.0 +. (float_of_int !cost /. float_of_int (max 1 nb)) in
    let temp m =
      temp0 *. (1.0 -. (float_of_int m /. float_of_int moves)) +. 1e-3
    in
    (* Best-so-far snapshot: annealing may end on an uphill excursion; the
       returned placement is the cheapest state the trajectory visited
       (never worse than the constructive start). *)
    let best_cost = ref !cost in
    let best = Array.copy fpga_of_block in
    let note_best () =
      if !cost < !best_cost then begin
        best_cost := !cost;
        Array.blit fpga_of_block 0 best 0 nb
      end
    in
    let eval m =
      let f1 = draw_int base (3 * m) nf and f2 = draw_int base ((3 * m) + 1) nf in
      if
        f1 <> f2
        && (block_at.(f1) >= 0 || block_at.(f2) >= 0)
        && movable block_at.(f1)
        && movable block_at.(f2)
      then begin
        let b1 = block_at.(f1) and b2 = block_at.(f2) in
        let before = placed_cost b1 b2 ~at:f1 + placed_cost b2 b1 ~at:f2 in
        let after = placed_cost b1 b2 ~at:f2 + placed_cost b2 b1 ~at:f1 in
        Ms_eval { ms_b1 = b1; ms_b2 = b2; ms_delta = after - before }
      end
      else Ms_skip
    in
    (* Commit one evaluated move; [touch] records the FPGAs and blocks an
       accepted swap rewrites (conflict tracking for the parallel path). *)
    let commit ?touch m spec =
      match spec with
      | Ms_skip -> ()
      | Ms_eval { ms_b1 = b1; ms_b2 = b2; ms_delta = delta } ->
          let f1 = draw_int base (3 * m) nf
          and f2 = draw_int base ((3 * m) + 1) nf in
          Stdlib.incr tried;
          if
            delta <= 0
            || draw_unit base ((3 * m) + 2)
               < exp (-.float_of_int delta /. temp m)
          then begin
            Stdlib.incr accepted;
            block_at.(f1) <- b2;
            block_at.(f2) <- b1;
            if b1 >= 0 then fpga_of_block.(b1) <- f2;
            if b2 >= 0 then fpga_of_block.(b2) <- f1;
            cost := !cost + delta;
            (match touch with
            | Some (touched_f, touched_b) ->
                touched_f.(f1) <- true;
                touched_f.(f2) <- true;
                if b1 >= 0 then touched_b.(b1) <- true;
                if b2 >= 0 then touched_b.(b2) <- true
            | None -> ());
            note_best ()
          end
    in
    if jobs <= 1 then
      for m = 0 to moves - 1 do
        commit m (eval m)
      done
    else begin
      (* Speculative batches: workers evaluate a window of moves against
         the state at batch start; the committer walks the window in move
         order and keeps each speculation unless an earlier accepted swap
         of the same batch touched an FPGA or block (or neighbor) the
         evaluation read — those moves are re-evaluated live.  The
         committed trajectory is exactly the sequential one. *)
      Msched_par.Pool.with_pool ~jobs @@ fun pool ->
      let touched_f = Array.make nf false in
      let touched_b = Array.make nb false in
      let specs = Array.make anneal_batch Ms_skip in
      let m0 = ref 0 in
      while !m0 < moves do
        let bn = min anneal_batch (moves - !m0) in
        Sink.incr obs "placement.par.batches";
        Msched_par.Pool.run pool ~n:bn (fun ~worker:_ k ->
            specs.(k) <- eval (!m0 + k));
        Array.fill touched_f 0 nf false;
        Array.fill touched_b 0 nb false;
        for k = 0 to bn - 1 do
          let m = !m0 + k in
          let f1 = draw_int base (3 * m) nf
          and f2 = draw_int base ((3 * m) + 1) nf in
          let conflict =
            touched_f.(f1) || touched_f.(f2)
            ||
            match specs.(k) with
            | Ms_skip -> false
            | Ms_eval { ms_b1; ms_b2; _ } ->
                let reads b =
                  b >= 0
                  && (touched_b.(b)
                     || List.exists (fun (n, _) -> touched_b.(n)) adj.(b))
                in
                reads ms_b1 || reads ms_b2
          in
          let spec =
            if conflict then begin
              Sink.incr obs "placement.par.moves_redone";
              eval m
            end
            else specs.(k)
          in
          commit ~touch:(touched_f, touched_b) m spec
        done;
        m0 := !m0 + bn
      done
    end;
    if !best_cost < !cost then Array.blit best 0 fpga_of_block 0 nb;
    Sink.add obs "place.moves_tried" !tried;
    Sink.add obs "place.moves_accepted" !accepted;
    Sink.annotate obs
      [
        ("moves_accepted", string_of_int !accepted);
        ("moves_rejected", string_of_int (!tried - !accepted));
      ]
  end;
  Msched_obs.Sink.gauge obs "place.wirelength"
    (float_of_int (cost_of sys conns fpga_of_block));
  build part sys fpga_of_block

let wirelength t =
  cost_of t.system (connections t.partition) t.fpga_of_block

let pp_summary ppf t =
  Format.fprintf ppf "%d blocks on %a, wirelength=%d"
    (Partition.num_blocks t.partition)
    Msched_arch.Topology.pp
    (System.topology t.system)
    (wirelength t)
