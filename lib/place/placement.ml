open Msched_netlist
module Partition = Msched_partition.Partition
module System = Msched_arch.System
module Topology = Msched_arch.Topology

type t = {
  partition : Partition.t;
  system : System.t;
  fpga_of_block : int array;  (* by block index *)
  block_of_fpga : int array;  (* by fpga index, -1 when empty *)
}

let partition t = t.partition
let system t = t.system
let fpga_of_block t b = Ids.Fpga.of_int t.fpga_of_block.(Ids.Block.to_int b)

let block_of_fpga t f =
  match t.block_of_fpga.(Ids.Fpga.to_int f) with
  | -1 -> None
  | b -> Some (Ids.Block.of_int b)

let fpga_of_cell t c = fpga_of_block t (Partition.block_of_cell t.partition c)

(* Inter-block connection multiset: (a, b, weight) with a < b. *)
let connections part =
  let tbl = Hashtbl.create 256 in
  let bump a b w =
    let key = if a < b then (a, b) else (b, a) in
    if a <> b then
      Hashtbl.replace tbl key (w + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let nl = Partition.netlist part in
  List.iter
    (fun net ->
      let src =
        Ids.Block.to_int (Partition.block_of_cell part (Netlist.driver nl net).Cell.id)
      in
      List.iter
        (fun (b, terms) ->
          bump src (Ids.Block.to_int b) (List.length terms))
        (Partition.foreign_consumers part net))
    (Partition.crossing_nets part);
  Hashtbl.fold (fun (a, b) w acc -> (a, b, w) :: acc) tbl []
  |> List.sort compare

let cost_of sys conns fpga_of_block =
  let topo = System.topology sys in
  List.fold_left
    (fun acc (a, b, w) ->
      acc
      + w
        * Topology.distance topo
            (Ids.Fpga.of_int fpga_of_block.(a))
            (Ids.Fpga.of_int fpga_of_block.(b)))
    0 conns

let build part sys fpga_of_block =
  let nf = System.num_fpgas sys in
  let block_of_fpga = Array.make nf (-1) in
  Array.iteri
    (fun b f ->
      if block_of_fpga.(f) <> -1 then
        invalid_arg "Placement: two blocks on one FPGA";
      block_of_fpga.(f) <- b)
    fpga_of_block;
  { partition = part; system = sys; fpga_of_block; block_of_fpga }

let of_assignment part sys assignment =
  if Array.length assignment <> Partition.num_blocks part then
    invalid_arg "Placement.of_assignment: wrong length";
  build part sys (Array.map Ids.Fpga.to_int assignment)

(* Greedy constructive placement: pinned blocks first, then the rest in
   decreasing connectivity order, each at the free FPGA minimizing cost
   against already-placed neighbors. *)
let constructive part sys conns pinned =
  let nb = Partition.num_blocks part in
  let nf = System.num_fpgas sys in
  let topo = System.topology sys in
  let adj = Array.make nb [] in
  List.iter
    (fun (a, b, w) ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    conns;
  let degree b = List.fold_left (fun acc (_, w) -> acc + w) 0 adj.(b) in
  let order =
    List.sort
      (fun a b -> compare (degree b, a) (degree a, b))
      (List.init nb Fun.id)
    |> List.filter (fun b -> pinned.(b) = -1)
  in
  let fpga_of_block = Array.make nb (-1) in
  let taken = Array.make nf false in
  Array.iteri
    (fun b f ->
      if f >= 0 then begin
        if taken.(f) then invalid_arg "Placement.place: conflicting pins";
        fpga_of_block.(b) <- f;
        taken.(f) <- true
      end)
    pinned;
  List.iter
    (fun b ->
      let best = ref (-1) and best_cost = ref max_int in
      for f = 0 to nf - 1 do
        if not taken.(f) then begin
          let c =
            List.fold_left
              (fun acc (nb', w) ->
                if fpga_of_block.(nb') >= 0 then
                  acc
                  + w
                    * Topology.distance topo (Ids.Fpga.of_int f)
                        (Ids.Fpga.of_int fpga_of_block.(nb'))
                else acc)
              0 adj.(b)
          in
          if c < !best_cost then begin
            best_cost := c;
            best := f
          end
        end
      done;
      fpga_of_block.(b) <- !best;
      taken.(!best) <- true)
    order;
  fpga_of_block

let place part sys ?(seed = 7) ?(effort = 4) ?(pinned = [])
    ?(obs = Msched_obs.Sink.null) () =
  let nb = Partition.num_blocks part in
  let nf = System.num_fpgas sys in
  if nb > nf then
    invalid_arg
      (Printf.sprintf "Placement.place: %d blocks > %d FPGAs" nb nf);
  let pinned_arr = Array.make nb (-1) in
  List.iter
    (fun (b, f) ->
      let bi = Ids.Block.to_int b in
      if bi >= nb then invalid_arg "Placement.place: pinned block out of range";
      if pinned_arr.(bi) >= 0 then
        invalid_arg "Placement.place: block pinned twice";
      pinned_arr.(bi) <- Ids.Fpga.to_int f)
    pinned;
  let conns = connections part in
  let fpga_of_block = constructive part sys conns pinned_arr in
  if effort > 0 && nb > 1 then begin
    let rng = Random.State.make [| seed; nb; nf |] in
    let topo = System.topology sys in
    let adj = Array.make nb [] in
    List.iter
      (fun (a, b, w) ->
        adj.(a) <- (b, w) :: adj.(a);
        adj.(b) <- (a, w) :: adj.(b))
      conns;
    let block_at = Array.make nf (-1) in
    Array.iteri (fun b f -> block_at.(f) <- b) fpga_of_block;
    (* Incremental cost of all connections incident to block [b], excluding
       those to [other] (counted once by the caller). *)
    let local_cost b other =
      if b < 0 then 0
      else
        List.fold_left
          (fun acc (nb', w) ->
            if nb' = other then acc
            else
              acc
              + w
                * Topology.distance topo
                    (Ids.Fpga.of_int fpga_of_block.(b))
                    (Ids.Fpga.of_int fpga_of_block.(nb')))
          0 adj.(b)
    in
    let cost = ref (cost_of sys conns fpga_of_block) in
    let moves = effort * 200 * nb in
    let tried = ref 0 in
    let accepted = ref 0 in
    let temp0 = 1.0 +. (float_of_int !cost /. float_of_int (max 1 nb)) in
    for m = 0 to moves - 1 do
      let f1 = Random.State.int rng nf and f2 = Random.State.int rng nf in
      let movable b = b < 0 || pinned_arr.(b) < 0 in
      if
        f1 <> f2
        && (block_at.(f1) >= 0 || block_at.(f2) >= 0)
        && movable block_at.(f1)
        && movable block_at.(f2)
      then begin
        let b1 = block_at.(f1) and b2 = block_at.(f2) in
        let swap () =
          block_at.(f1) <- b2;
          block_at.(f2) <- b1;
          if b1 >= 0 then fpga_of_block.(b1) <- f2;
          if b2 >= 0 then fpga_of_block.(b2) <- f1
        in
        let unswap () =
          block_at.(f1) <- b1;
          block_at.(f2) <- b2;
          if b1 >= 0 then fpga_of_block.(b1) <- f1;
          if b2 >= 0 then fpga_of_block.(b2) <- f2
        in
        Stdlib.incr tried;
        let before = local_cost b1 b2 + local_cost b2 b1 in
        swap ();
        let after = local_cost b1 b2 + local_cost b2 b1 in
        let delta = after - before in
        let temp =
          temp0 *. (1.0 -. (float_of_int m /. float_of_int moves)) +. 1e-3
        in
        if
          delta <= 0
          || Random.State.float rng 1.0 < exp (-.float_of_int delta /. temp)
        then begin
          Stdlib.incr accepted;
          cost := !cost + delta
        end
        else unswap ()
      end
    done;
    Msched_obs.Sink.add obs "place.moves_tried" !tried;
    Msched_obs.Sink.add obs "place.moves_accepted" !accepted;
    Msched_obs.Sink.annotate obs
      [
        ("moves_accepted", string_of_int !accepted);
        ("moves_rejected", string_of_int (!tried - !accepted));
      ]
  end;
  Msched_obs.Sink.gauge obs "place.wirelength"
    (float_of_int (cost_of sys conns fpga_of_block));
  build part sys fpga_of_block

let wirelength t =
  cost_of t.system (connections t.partition) t.fpga_of_block

let pp_summary ppf t =
  Format.fprintf ppf "%d blocks on %a, wirelength=%d"
    (Partition.num_blocks t.partition)
    Msched_arch.Topology.pp
    (System.topology t.system)
    (wirelength t)
