open Msched_netlist
module Diag = Msched_diag.Diag

type t = { seed : int }

let make ?(seed = 42) _nl = { seed }

(* A small splitmix-style hash; quality is irrelevant, determinism is not. *)
let hash_bool a b c =
  let h = ref (a * 0x9e3779b1) in
  h := !h lxor ((b + 0x85ebca6b) * 0xc2b2ae35);
  h := !h lxor ((c + 0x27d4eb2f) * 0x165667b1);
  h := !h lxor (!h lsr 15);
  !h land 1 = 1

let value t (c : Cell.t) ~edge_index =
  match c.Cell.kind with
  | Cell.Input { domain = Some _ } ->
      hash_bool t.seed (Ids.Cell.to_int c.Cell.id) (edge_index + 1)
  | Cell.Input { domain = None } -> hash_bool t.seed (Ids.Cell.to_int c.Cell.id) 0
  | Cell.Gate _ | Cell.Latch _ | Cell.Flip_flop | Cell.Ram _
  | Cell.Clock_source _ | Cell.Output ->
      Diag.fail Diag.E_INTERNAL
        ~cell:(Ids.Cell.to_int c.Cell.id)
        "Stimulus.value: %s is not an input cell" c.Cell.name

let initial t c = value t c ~edge_index:(-1)
