open Msched_netlist
module Edges = Msched_clocking.Edges

(* VCD identifiers: printable ASCII 33..126, little-endian base 94. *)
let ident i =
  let buf = Buffer.create 4 in
  let rec go i =
    Buffer.add_char buf (Char.chr (33 + (i mod 94)));
    if i >= 94 then go (i / 94)
  in
  go i;
  Buffer.contents buf

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_'
      then c
      else '_')
    name

let trace_run sim ~edges ?nets ppf =
  let nl = Ref_sim.netlist sim in
  let nets =
    match nets with
    | Some l -> l
    | None -> List.init (Netlist.num_nets nl) Ids.Net.of_int
  in
  let nets = Array.of_list nets in
  let domains = Netlist.domains nl in
  let line fmt = Format.fprintf ppf fmt in
  line "$date reproduction run $end@\n";
  line "$version msched reference simulator $end@\n";
  line "$timescale 1ps $end@\n";
  line "$scope module %s $end@\n" (sanitize (Netlist.design_name nl));
  Array.iteri
    (fun i n ->
      line "$var wire 1 %s %s $end@\n" (ident i)
        (sanitize (Netlist.net nl n).Netlist.net_name))
    nets;
  let clock_base = Array.length nets in
  List.iteri
    (fun i d ->
      line "$var wire 1 %s clk_%s $end@\n"
        (ident (clock_base + i))
        (sanitize (Netlist.domain_name nl d)))
    domains;
  line "$upscope $end@\n$enddefinitions $end@\n";
  (* Initial values. *)
  let last = Array.map (fun n -> Ref_sim.net_value sim n) nets in
  let clock_last = Array.make (List.length domains) false in
  line "$dumpvars@\n";
  Array.iteri (fun i v -> line "%d%s@\n" (Bool.to_int v) (ident i)) last;
  Array.iteri
    (fun i v -> line "%d%s@\n" (Bool.to_int v) (ident (clock_base + i)))
    clock_last;
  line "$end@\n";
  let last_time = ref (-1) in
  List.iter
    (fun (e : Edges.edge) ->
      Ref_sim.apply_edge sim e;
      let stamp = max e.Edges.time_ps (!last_time + 1) in
      let emitted = ref false in
      let emit_time () =
        if not !emitted then begin
          line "#%d@\n" stamp;
          emitted := true;
          last_time := stamp
        end
      in
      (* The synthetic clock wire of the edge's domain. *)
      let di = Ids.Dom.to_int e.Edges.domain in
      let level = e.Edges.polarity = Edges.Rising in
      if clock_last.(di) <> level then begin
        emit_time ();
        clock_last.(di) <- level;
        line "%d%s@\n" (Bool.to_int level) (ident (clock_base + di))
      end;
      Array.iteri
        (fun i n ->
          let v = Ref_sim.net_value sim n in
          if v <> last.(i) then begin
            emit_time ();
            last.(i) <- v;
            line "%d%s@\n" (Bool.to_int v) (ident i)
          end)
        nets)
    edges;
  Format.pp_print_flush ppf ()

let trace_to_string sim ~edges ?nets () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  trace_run sim ~edges ?nets ppf;
  Buffer.contents buf
