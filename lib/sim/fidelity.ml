open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module Edges = Msched_clocking.Edges

type report = {
  frames : int;
  mismatch_frames : int;
  state_mismatches : int;
  ram_mismatches : int;
  first_mismatch_frame : int option;
  violations : Emu_sim.violations;
  settle_warnings : int;
}

let perfect r =
  r.state_mismatches = 0 && r.ram_mismatches = 0
  && r.violations.Emu_sim.hold_hazards = 0
  && r.violations.Emu_sim.causality_inversions = 0

let compare_groups placement sched ~groups ?(seed = 42)
    ?(obs = Msched_obs.Sink.null) () =
  Msched_obs.Sink.span obs "fidelity" @@ fun () ->
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let stim = Stimulus.make ~seed nl in
  let golden = Ref_sim.create nl stim in
  let emu = Emu_sim.create placement sched stim in
  let rams = Ref_sim.state_cells nl
    |> List.filter (fun cid ->
           match (Netlist.cell nl cid).Cell.kind with
           | Cell.Ram _ -> true
           | Cell.Gate _ | Cell.Latch _ | Cell.Flip_flop | Cell.Input _
           | Cell.Clock_source _ | Cell.Output -> false)
  in
  let frames = ref 0 in
  let mismatch_frames = ref 0 in
  let state_mismatches = ref 0 in
  let ram_mismatches = ref 0 in
  let first = ref None in
  List.iter
    (fun group ->
      List.iter (Ref_sim.apply_edge golden) group;
      Emu_sim.run_frame emu group;
      incr frames;
      let g = Ref_sim.state_snapshot golden in
      let m = Emu_sim.state_snapshot emu in
      let frame_bad = ref 0 in
      let frame_ram_bad = ref 0 in
      List.iter2
        (fun (cg, vg) (cm, vm) ->
          assert (Ids.Cell.equal cg cm);
          if vg <> vm then incr frame_bad)
        g m;
      List.iter
        (fun cid ->
          let a = Ref_sim.ram_contents golden cid in
          let b = Emu_sim.ram_contents emu cid in
          Array.iteri (fun i v -> if v <> b.(i) then incr frame_ram_bad) a)
        rams;
      if !frame_bad > 0 || !frame_ram_bad > 0 then begin
        incr mismatch_frames;
        state_mismatches := !state_mismatches + !frame_bad;
        ram_mismatches := !ram_mismatches + !frame_ram_bad;
        if !first = None then first := Some !frames
      end)
    groups;
  Msched_obs.Sink.add obs "fidelity.frames" !frames;
  Msched_obs.Sink.add obs "fidelity.mismatch_frames" !mismatch_frames;
  Msched_obs.Sink.add obs "fidelity.state_mismatches" !state_mismatches;
  Msched_obs.Sink.add obs "fidelity.ram_mismatches" !ram_mismatches;
  {
    frames = !frames;
    mismatch_frames = !mismatch_frames;
    state_mismatches = !state_mismatches;
    ram_mismatches = !ram_mismatches;
    first_mismatch_frame = !first;
    violations = Emu_sim.violations emu;
    settle_warnings = Ref_sim.settle_warnings golden;
  }

let compare_edges placement sched ~edges ?seed ?obs () =
  compare_groups placement sched ~groups:(List.map (fun e -> [ e ]) edges)
    ?seed ?obs ()

let compare_frames placement sched ~frames ?seed ?obs () =
  compare_groups placement sched ~groups:frames ?seed ?obs ()

let compare_run placement sched ~clocks ~horizon_ps ?seed ?obs () =
  let edges = Edges.stream clocks ~horizon_ps in
  compare_edges placement sched ~edges ?seed ?obs ()

let pp_report ppf r =
  Format.fprintf ppf
    "%d frames: %d mismatching frames (%d cells, %d ram words), first=%s; \
     hold hazards=%d, causality inversions=%d, late events=%d"
    r.frames r.mismatch_frames r.state_mismatches r.ram_mismatches
    (match r.first_mismatch_frame with
    | None -> "-"
    | Some f -> string_of_int f)
    r.violations.Emu_sim.hold_hazards
    r.violations.Emu_sim.causality_inversions
    r.violations.Emu_sim.late_events

(* Structured diagnostics for the simulation-fidelity gate, so the CLI and
   bench entry points can report mismatches through the same machinery
   (and exit classes) as the static pipeline. *)
let diags_of_report r =
  let module Diag = Msched_diag.Diag in
  let d = ref [] in
  let push x = d := x :: !d in
  if r.state_mismatches > 0 || r.ram_mismatches > 0 then
    push
      (Diag.error Diag.E_VERIFY
         "emulation diverged from the golden model: %d state cell(s) and \
          %d RAM word(s) mismatched over %d frame(s)%s"
         r.state_mismatches r.ram_mismatches r.mismatch_frames
         (match r.first_mismatch_frame with
         | None -> ""
         | Some f -> Printf.sprintf ", first at frame %d" f));
  if r.violations.Emu_sim.hold_hazards > 0 then
    push
      (Diag.error Diag.E_HOLD_VIOLATION
         "%d hold hazard(s): data reached an open latch before its gate \
          update in the same frame"
         r.violations.Emu_sim.hold_hazards);
  if r.violations.Emu_sim.causality_inversions > 0 then
    push
      (Diag.error Diag.E_VERIFY
         "%d causality inversion(s) across MTS transport pairs"
         r.violations.Emu_sim.causality_inversions);
  if r.violations.Emu_sim.late_events > 0 then
    push
      (Diag.error Diag.E_INTERNAL "%d event(s) past the frame length"
         r.violations.Emu_sim.late_events);
  if r.violations.Emu_sim.event_overflows > 0 then
    push
      (Diag.error Diag.E_INTERNAL
         "%d frame(s) hit the event budget (oscillation?)"
         r.violations.Emu_sim.event_overflows);
  if r.settle_warnings > 0 then
    push
      (Diag.warning Diag.E_VERIFY "%d settle warning(s)" r.settle_warnings);
  List.rev !d
