(** Fidelity harness: lock-step comparison of the emulation-schedule
    simulator against the golden reference.

    Both simulators consume the same merged edge stream and the same
    stimulus; after every edge the architectural state (latch/flip-flop
    outputs and RAM contents) is compared.  A correct MTS schedule shows
    zero mismatches and zero violations; the naive baseline typically does
    not — this is the experimental evidence behind the paper's modeling-
    fidelity claims. *)

type report = {
  frames : int;
  mismatch_frames : int;  (** Frames with at least one state mismatch. *)
  state_mismatches : int;  (** Total mismatching state cells over the run. *)
  ram_mismatches : int;  (** Total mismatching RAM words over the run. *)
  first_mismatch_frame : int option;
  violations : Emu_sim.violations;
  settle_warnings : int;
}

val perfect : report -> bool
(** No mismatches, no hold hazards, no causality inversions. *)

val compare_run :
  Msched_place.Placement.t ->
  Msched_route.Schedule.t ->
  clocks:Msched_clocking.Clock.t list ->
  horizon_ps:int ->
  ?seed:int ->
  ?obs:Msched_obs.Sink.t ->
  unit ->
  report

val compare_edges :
  Msched_place.Placement.t ->
  Msched_route.Schedule.t ->
  edges:Msched_clocking.Edges.edge list ->
  ?seed:int ->
  ?obs:Msched_obs.Sink.t ->
  unit ->
  report

val compare_frames :
  Msched_place.Placement.t ->
  Msched_route.Schedule.t ->
  frames:Msched_clocking.Edges.edge list list ->
  ?seed:int ->
  ?obs:Msched_obs.Sink.t ->
  unit ->
  report
(** Multi-edge-frame comparison: the emulator executes one frame per edge
    group while the golden simulator applies the same edges sequentially;
    states are compared at each frame boundary.  Frames containing edges
    from several domains can quantize cross-domain races differently from
    the golden order, so transient mismatches are possible by construction —
    single-edge frames must still be perfect. *)

val pp_report : Format.formatter -> report -> unit

val diags_of_report : report -> Msched_diag.Diag.t list
(** Structured diagnostics for a non-perfect run: [E_VERIFY] for
    golden-model divergence and causality inversions, [E_HOLD_VIOLATION]
    for hold hazards (both exit class 2), [E_INTERNAL] for schedule
    overruns, plus a warning for settle warnings.  Empty when {!perfect}
    holds and there were no settle warnings. *)
