(** Value-change-dump (VCD) tracing of reference-simulator runs.

    Runs the golden simulator over a merged multi-domain edge stream and
    writes an IEEE-1364 VCD trace: every selected net becomes a 1-bit wire,
    clock domains appear as synthetic [clk_<name>] wires, and time is in
    picoseconds.  View the result with GTKWave or any VCD viewer — handy
    for debugging generated designs and understanding MTS behavior. *)

open Msched_netlist

val trace_run :
  Ref_sim.t ->
  edges:Msched_clocking.Edges.edge list ->
  ?nets:Ids.Net.t list ->
  Format.formatter ->
  unit
(** Simulates [edges] on the given (freshly created) simulator, dumping
    value changes after each edge at its [time_ps].  [nets] defaults to all
    named nets of the design. *)

val trace_to_string :
  Ref_sim.t ->
  edges:Msched_clocking.Edges.edge list ->
  ?nets:Ids.Net.t list ->
  unit ->
  string
