(** Deterministic pseudo-random input stimulus.

    Primary inputs carrying a domain annotation change value on that
    domain's rising edges (modeling a synchronous testbench per domain);
    domainless inputs are quasi-static.  Values are a pure function of
    (seed, input cell, edge index), so the reference simulator and the
    emulation simulator see identical stimulus by construction. *)

open Msched_netlist

type t

val make : ?seed:int -> Netlist.t -> t

val value : t -> Cell.t -> edge_index:int -> bool
(** Value of an input after the [edge_index]-th rising edge of its domain
    ([edge_index = -1] gives the initial, pre-first-edge value). *)

val initial : t -> Cell.t -> bool
