(** Emulation-system simulator: executes a compiled static schedule.

    Models the emulator at virtual-clock granularity.  Every block (FPGA)
    holds its own copy of each net it consumes; copies are updated only by
    the schedule's transports (sampled at the source at [tr_fwd_dep],
    delivered at [tr_fwd_arr]) or, for hard wires, whenever the source
    changes (with hop latency).  Gates evaluate event-driven with unit
    delay; latches are genuinely level-sensitive, so mis-scheduled arrivals
    produce real hold-time clobbering — the failure mode the paper's
    scheduler exists to prevent.  Data hold-offs from the schedule delay
    data-pin application at latches, materializing the paper's delay
    compensation.

    One frame executes one edge of the merged clock stream.  After each
    frame the architectural state can be compared against {!Ref_sim}. *)

open Msched_netlist

type violations = {
  hold_hazards : int;
      (** Data applied to an open latch that later received a gate update in
          the same frame (new data evaluated against an old gate). *)
  causality_inversions : int;
      (** Transport pairs of one MTS crossing where an earlier-sampled value
          arrived after a later-sampled one (static schedule property). *)
  late_events : int;  (** Events past the frame length (schedule overrun). *)
  event_overflows : int;  (** Frames that hit the event budget (oscillation). *)
}

type t

val create :
  Msched_place.Placement.t ->
  Msched_route.Schedule.t ->
  Stimulus.t ->
  t
(** Sites are initialized from the settled reference-simulator state
    (modeling configuration download), so frame 0 starts aligned. *)

val run_edge : t -> Msched_clocking.Edges.edge -> unit
(** One frame per edge — the controller mode where the emulator steps the
    design one clock event at a time. *)

val run_frame : t -> Msched_clocking.Edges.edge list -> unit
(** One frame carrying all the edges that fall within its wall-clock window
    (see {!Msched_clocking.Edges.frames}).  All edges take effect at slot 0,
    with captures sampling the settled pre-frame state; cross-domain races
    inside one window are resolved by the schedule's gate-before-data
    discipline, which can transiently differ from the golden simulator's
    sequential edge order (frame quantization — a property of real
    emulators, measured by {!Fidelity.compare_frames}). *)

val run : t -> Msched_clocking.Edges.edge list -> unit

val site_value : t -> Ids.Block.t -> Ids.Net.t -> bool
(** The block-local copy of a net. *)

val state_snapshot : t -> (Ids.Cell.t * bool) list
(** Owner-block output values of every state cell, in {!Ref_sim.state_cells}
    order — directly comparable with {!Ref_sim.state_snapshot}. *)

val ram_contents : t -> Ids.Cell.t -> bool array
val violations : t -> violations
