(** Golden reference simulator.

    An event-accurate multi-domain netlist simulator with zero-delay
    combinational settling.  Edges from the merged clock stream are applied
    one at a time; on each edge, flip-flops and RAM writes whose triggers
    rise capture their {e pre-edge} data, then the network settles through
    gates and transparent latches.  Ripple/derived clocks are handled by
    iterating capture phases until no further trigger rises.

    This simulator defines correctness: the emulation-schedule simulator is
    compared against it state-for-state after every edge. *)

open Msched_netlist

type t

val create : Netlist.t -> Stimulus.t -> t
(** All nets start at [false]; RAM contents start cleared. *)

val netlist : t -> Netlist.t

val apply_edge : t -> Msched_clocking.Edges.edge -> unit

val run : t -> Msched_clocking.Edges.edge list -> unit

val net_value : t -> Ids.Net.t -> bool

val state_cells : Netlist.t -> Ids.Cell.t list
(** Latches, flip-flops and RAMs — the cells whose outputs constitute the
    architectural state compared by the fidelity harness. *)

val state_snapshot : t -> (Ids.Cell.t * bool) list
(** Output value of every state cell (RAMs report their read-data net). *)

val ram_contents : t -> Ids.Cell.t -> bool array
(** @raise Not_found if the cell is not a RAM. *)

val settle_warnings : t -> int
(** Number of times combinational settling hit its iteration bound
    (oscillating latch loops). *)
