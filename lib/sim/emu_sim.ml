open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module Schedule = Msched_route.Schedule
module Link = Msched_route.Link
module Edges = Msched_clocking.Edges

type violations = {
  hold_hazards : int;
  causality_inversions : int;
  late_events : int;
  event_overflows : int;
}

(* A transport instance prepared for fast per-frame enqueueing. *)
type prepared_transport = {
  pt_net : int;
  pt_src_block : int;
  pt_dst_block : int;
  pt_dep : int;
  pt_arr : int;
}

type event =
  | Apply of int * int * bool  (* block, net, value *)
  | Eval of int * Ids.Cell.t  (* block, cell *)
  | Sample of prepared_transport
  | Release_data of Ids.Cell.t  (* holdoff expiry: apply buffered latch data *)
  | Release_gate of Ids.Cell.t  (* gate settle: present the settled gate *)

type latch_state = {
  mutable data_view : bool;
  mutable gate_view : bool;
  mutable release_pending : bool;
  mutable gate_release_pending : bool;
  mutable prev_trigger : bool;
  mutable last_open_data_apply : int;  (* within current frame, -1 if none *)
  mutable last_gate_change : int;  (* within current frame, -1 if none *)
}

type t = {
  nl : Netlist.t;
  part : Partition.t;
  sched : Schedule.t;
  stim : Stimulus.t;
  nnets : int;
  sites : Bytes.t;  (* nblocks * nnets, 0/1 *)
  clock_levels : bool array;
  rams : bool array Ids.Cell.Tbl.t;
  ram_views : bool array Ids.Cell.Tbl.t;
      (* per net-triggered RAM: gated view of [we; wdata; waddr...] *)
  latches : latch_state Ids.Cell.Tbl.t;  (* latches, net-trig FFs and RAMs *)
  holdoff : (int * int) Ids.Cell.Tbl.t;  (* per cell: (gate, data) holdoff *)
  owner : int array;  (* per net: block of driver *)
  consumers : (int * Netlist.term) list array;  (* per net: (block, term) *)
  transports : prepared_transport list;
  hard_routes : (int * int) list array;  (* per net: (dst block, latency) *)
  dom_cells : Ids.Cell.t list array;  (* per domain: Dom_clock-triggered cells *)
  dom_inputs : Ids.Cell.t list array;  (* per domain: input cells *)
  live : bool array;  (* per net: transitively feeds a state/output sink *)
  mutable buckets : event list array;
  mutable frame_end : int;
  mutable hold_hazards : int;
  causality_inversions : int;
  mutable late_events : int;
  mutable event_overflows : int;
  mutable events_this_frame : int;
}

let site_idx t b n = (b * t.nnets) + n
let get_site t b n = Bytes.unsafe_get t.sites (site_idx t b n) <> '\000'

let set_site t b n v =
  Bytes.unsafe_set t.sites (site_idx t b n) (if v then '\001' else '\000')

let site_value t b n =
  get_site t (Ids.Block.to_int b) (Ids.Net.to_int n)

let violations t =
  {
    hold_hazards = t.hold_hazards;
    causality_inversions = t.causality_inversions;
    late_events = t.late_events;
    event_overflows = t.event_overflows;
  }

let event_budget = 2_000_000

let debug_late =
  match Sys.getenv_opt "MSCHED_DEBUG_LATE" with Some _ -> true | None -> false

(* MSCHED_TRACE_NETS="12,34" traces site applies of those nets. *)
let trace_nets =
  match Sys.getenv_opt "MSCHED_TRACE_NETS" with
  | None -> []
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

let schedule_event t time ev =
  let time = max 0 time in
  let time = min time (Array.length t.buckets - 1) in
  t.buckets.(time) <- ev :: t.buckets.(time)

let trigger_level t b (c : Cell.t) =
  match c.Cell.trigger with
  | Some (Cell.Dom_clock d) -> t.clock_levels.(Ids.Dom.to_int d)
  | Some (Cell.Net_trigger n) -> get_site t b (Ids.Net.to_int n)
  | None -> false

let holdoff_of t cid =
  Option.value ~default:(0, 0) (Ids.Cell.Tbl.find_opt t.holdoff cid)

(* The gate level a state element is allowed to see: the raw site for
   dom-clocked triggers (root clocks are glitch-free), the gated view for
   net triggers (intra-FPGA evaluation is scheduled; latches only see
   settled gates). *)
let gated_trigger_level t _b (c : Cell.t) ls =
  match c.Cell.trigger with
  | Some (Cell.Dom_clock d) -> t.clock_levels.(Ids.Dom.to_int d)
  | Some (Cell.Net_trigger _) -> ls.gate_view
  | None -> false

let update_gate_view t time b (c : Cell.t) ls =
  match c.Cell.trigger with
  | Some (Cell.Net_trigger tn) ->
      let site = get_site t b (Ids.Net.to_int tn) in
      if site <> ls.gate_view then begin
        let gho, _ = holdoff_of t c.Cell.id in
        if time >= gho then begin
          ls.gate_view <- site;
          ls.last_gate_change <- time
        end
        else if not ls.gate_release_pending then begin
          ls.gate_release_pending <- true;
          schedule_event t gho (Release_gate c.Cell.id)
        end
      end
  | Some (Cell.Dom_clock _) | None -> ()

let ram_addr t b (c : Cell.t) ~offset ~addr_bits =
  let addr = ref 0 in
  for i = 0 to addr_bits - 1 do
    if get_site t b (Ids.Net.to_int c.Cell.data_inputs.(offset + i)) then
      addr := !addr lor (1 lsl i)
  done;
  !addr

(* Apply a value to a site and schedule consumer evaluations one slot
   later (unit gate delay). *)
let rec apply t time b n v =
  if get_site t b n <> v then begin
    (* A value still changing after the frame deadline means the schedule
       under-provisioned this path (dead logic excluded: lateness is only
       counted when a site actually changes). *)
    if time > t.frame_end && t.live.(n) then begin
      t.late_events <- t.late_events + 1;
      if debug_late then
        Printf.eprintf "LATE-APPLY t=%d end=%d b%d n%d=%b (driver %s)\n%!"
          time t.frame_end b n v
          (Netlist.driver t.nl (Ids.Net.of_int n)).Cell.name
    end;
    set_site t b n v;
    if trace_nets <> [] && List.mem n trace_nets then
      Printf.eprintf "TRACE t=%d b%d n%d=%b\n%!" time b n v;
    (* Hard wires: destination copies follow the source continuously. *)
    if t.owner.(n) = b then
      List.iter
        (fun (db, latency) ->
          schedule_event t (time + latency) (Apply (db, n, v)))
        t.hard_routes.(n);
    List.iter
      (fun (cb, (tm : Netlist.term)) ->
        if cb = b then
          schedule_event t (time + 1) (Eval (cb, tm.Netlist.term_cell)))
      t.consumers.(n)
  end

and eval_cell t time b cid =
  let c = Netlist.cell t.nl cid in
  match c.Cell.kind with
  | Cell.Gate g ->
      let inputs =
        Array.map
          (fun n -> get_site t b (Ids.Net.to_int n))
          c.Cell.data_inputs
      in
      let v = Cell.eval_gate g inputs in
      apply t time b (Ids.Net.to_int (Option.get c.Cell.output)) v
  | Cell.Ram { addr_bits } -> begin
      (* Asynchronous read; writes commit on (gated) trigger rise.  A
         net-triggered RAM's write port gets the same gate-before-data
         treatment as a latch: the write pins are presented through a view
         held off until after the write clock has settled, so a
         multi-domain write clock (the paper's "memories under test"
         future work) never commits racing data. *)
      let mem = Ids.Cell.Tbl.find t.rams cid in
      (match c.Cell.trigger with
      | Some (Cell.Net_trigger _) ->
          let ls = Ids.Cell.Tbl.find t.latches cid in
          update_gate_view t time b c ls;
          let view = Ids.Cell.Tbl.find t.ram_views cid in
          let nview = Array.length view in
          (* A trigger rise in this very evaluation commits with the view as
             it stood BEFORE any data sync: on simultaneous arrival the old
             write-port values win (paper Figure 4a). *)
          let trig = ls.gate_view in
          if trig && not ls.prev_trigger then begin
            if view.(0) (* we *) then begin
              let a = ref 0 in
              for i = 0 to addr_bits - 1 do
                if view.(2 + i) then a := !a lor (1 lsl i)
              done;
              mem.(!a) <- view.(1)
            end
          end;
          ls.prev_trigger <- trig;
          let stale =
            let differs = ref false in
            for i = 0 to nview - 1 do
              if view.(i) <> get_site t b (Ids.Net.to_int c.Cell.data_inputs.(i))
              then differs := true
            done;
            !differs
          in
          if stale then begin
            let _, ho = holdoff_of t cid in
            if time >= ho then
              for i = 0 to nview - 1 do
                view.(i) <-
                  get_site t b (Ids.Net.to_int c.Cell.data_inputs.(i))
              done
            else if not ls.release_pending then begin
              ls.release_pending <- true;
              schedule_event t ho (Release_data cid)
            end
          end
      | Some (Cell.Dom_clock _) | None -> ());
      let v = mem.(ram_addr t b c ~offset:(2 + addr_bits) ~addr_bits) in
      apply t time b (Ids.Net.to_int (Option.get c.Cell.output)) v
    end
  | Cell.Latch { active_high } ->
      let ls = Ids.Cell.Tbl.find t.latches cid in
      update_gate_view t time b c ls;
      let gate = gated_trigger_level t b c ls in
      let gate_active = gate = active_high in
      (match c.Cell.trigger with
      | Some (Cell.Dom_clock _) ->
          if gate <> ls.prev_trigger then begin
            ls.prev_trigger <- gate;
            ls.last_gate_change <- time
          end
      | Some (Cell.Net_trigger _) | None -> ());
      update_data_view t time b c ls ~open_now:gate_active;
      if gate_active then
        apply t time b (Ids.Net.to_int (Option.get c.Cell.output)) ls.data_view
  | Cell.Flip_flop -> begin
      match c.Cell.trigger with
      | Some (Cell.Net_trigger _) ->
          let ls = Ids.Cell.Tbl.find t.latches cid in
          update_gate_view t time b c ls;
          let trig = gated_trigger_level t b c ls in
          (* Capture BEFORE syncing the data view: a data change landing in
             the same evaluation as the clock edge must lose the race. *)
          if trig && not ls.prev_trigger then
            apply t time b
              (Ids.Net.to_int (Option.get c.Cell.output))
              ls.data_view;
          ls.prev_trigger <- trig;
          update_data_view t time b c ls ~open_now:false
      | Some (Cell.Dom_clock _) | None ->
          (* Dom-clocked flip-flops capture at frame boundaries only. *)
          ()
    end
  | Cell.Input _ | Cell.Clock_source _ | Cell.Output -> ()

and update_data_view t time b (c : Cell.t) ls ~open_now =
  let dnet = Ids.Net.to_int c.Cell.data_inputs.(0) in
  let site = get_site t b dnet in
  if site <> ls.data_view then begin
    let _, ho = holdoff_of t c.Cell.id in
    if time >= ho then begin
      ls.data_view <- site;
      if open_now then ls.last_open_data_apply <- time
    end
    else if not ls.release_pending then begin
      ls.release_pending <- true;
      schedule_event t ho (Release_data c.Cell.id)
    end
  end

let process_event t time ev =
  t.events_this_frame <- t.events_this_frame + 1;
  match ev with
  | Apply (b, n, v) -> apply t time b n v
  | Eval (b, c) -> eval_cell t time b c
  | Sample pt ->
      let v = get_site t pt.pt_src_block pt.pt_net in
      schedule_event t pt.pt_arr (Apply (pt.pt_dst_block, pt.pt_net, v))
  | Release_data cid ->
      let ls = Ids.Cell.Tbl.find t.latches cid in
      ls.release_pending <- false;
      let b = Ids.Block.to_int (Partition.block_of_cell t.part cid) in
      eval_cell t time b cid
  | Release_gate cid ->
      let ls = Ids.Cell.Tbl.find t.latches cid in
      ls.gate_release_pending <- false;
      let b = Ids.Block.to_int (Partition.block_of_cell t.part cid) in
      eval_cell t time b cid

let drain t =
  let i = ref 0 in
  let n = Array.length t.buckets in
  while !i < n do
    (match t.buckets.(!i) with
    | [] -> incr i
    | evs ->
        t.buckets.(!i) <- [];
        if t.events_this_frame > event_budget then begin
          t.event_overflows <- t.event_overflows + 1;
          i := n
        end
        else begin
          (* FIFO within the bucket, but transport samples go last so a
             source net settling in this very slot is read post-update. *)
          let evs = List.rev evs in
          let samples, others =
            List.partition (function Sample _ -> true | _ -> false) evs
          in
          List.iter (process_event t !i) others;
          List.iter (process_event t !i) samples
        end)
  done

let begin_frame t =
  t.events_this_frame <- 0;
  Ids.Cell.Tbl.iter
    (fun _ ls ->
      ls.last_open_data_apply <- -1;
      ls.last_gate_change <- -1)
    t.latches

let end_frame_stats t =
  Ids.Cell.Tbl.iter
    (fun _ ls ->
      if
        ls.last_open_data_apply >= 0
        && ls.last_gate_change > ls.last_open_data_apply
      then t.hold_hazards <- t.hold_hazards + 1)
    t.latches

(* Apply one edge's frame-start effects (clock level, dom-clocked captures,
   testbench inputs).  Captures sample the settled previous-frame sites, so
   all edges of a multi-edge frame see consistent pre-frame state. *)
let apply_edge_effects t (e : Edges.edge) =
  let d = e.Edges.domain in
  let di = Ids.Dom.to_int d in
  let rising = e.Edges.polarity = Edges.Rising in
  t.clock_levels.(di) <- rising;
  (* Clock-source net level change in its owner block. *)
  (match Netlist.clock_source_net t.nl d with
  | Some n ->
      let ni = Ids.Net.to_int n in
      schedule_event t 0 (Apply (t.owner.(ni), ni, rising))
  | None -> ());
  (* Dom-clocked cells of this domain. *)
  List.iter
    (fun cid ->
      let c = Netlist.cell t.nl cid in
      let b = Ids.Block.to_int (Partition.block_of_cell t.part cid) in
      match c.Cell.kind with
      | Cell.Flip_flop ->
          if rising then begin
            (* Capture the settled previous-frame data now; publish at 0,
               matching the scheduler's frame-start-origin model. *)
            let v = get_site t b (Ids.Net.to_int c.Cell.data_inputs.(0)) in
            schedule_event t 0
              (Apply (b, Ids.Net.to_int (Option.get c.Cell.output), v))
          end
      | Cell.Ram { addr_bits } ->
          if rising then begin
            let we = get_site t b (Ids.Net.to_int c.Cell.data_inputs.(0)) in
            if we then begin
              let a = ram_addr t b c ~offset:2 ~addr_bits in
              (Ids.Cell.Tbl.find t.rams cid).(a) <-
                get_site t b (Ids.Net.to_int c.Cell.data_inputs.(1))
            end;
            schedule_event t 0 (Eval (b, cid))
          end
      | Cell.Latch _ -> schedule_event t 0 (Eval (b, cid))
      | Cell.Gate _ | Cell.Input _ | Cell.Clock_source _ | Cell.Output -> ())
    t.dom_cells.(di);
  (* Testbench input changes for this domain. *)
  if rising then
    List.iter
      (fun cid ->
        let c = Netlist.cell t.nl cid in
        let b = Ids.Block.to_int (Partition.block_of_cell t.part cid) in
        let v = Stimulus.value t.stim c ~edge_index:e.Edges.index in
        schedule_event t 0
          (Apply (b, Ids.Net.to_int (Option.get c.Cell.output), v)))
      t.dom_inputs.(di)

let run_frame t edges =
  begin_frame t;
  (* Enqueue the static transport schedule for this frame. *)
  List.iter (fun pt -> schedule_event t pt.pt_dep (Sample pt)) t.transports;
  List.iter (apply_edge_effects t) edges;
  drain t;
  end_frame_stats t

let run_edge t e = run_frame t [ e ]

let run t edges = List.iter (run_edge t) edges

let state_snapshot t =
  List.map
    (fun cid ->
      let c = Netlist.cell t.nl cid in
      let b = Ids.Block.to_int (Partition.block_of_cell t.part cid) in
      (cid, get_site t b (Ids.Net.to_int (Option.get c.Cell.output))))
    (Ref_sim.state_cells t.nl)

let ram_contents t cell = Array.copy (Ids.Cell.Tbl.find t.rams cell)

(* Static causality check: transports of one fork group must preserve
   sampling order on arrival. *)
let count_causality_inversions sched =
  List.fold_left
    (fun acc (ls : Schedule.link_sched) ->
      let ts = Array.of_list ls.Schedule.ls_transports in
      let n = Array.length ts in
      let count = ref 0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = ts.(i) and b = ts.(j) in
          let dep_lt = a.Schedule.tr_fwd_dep < b.Schedule.tr_fwd_dep in
          let arr_gt = a.Schedule.tr_fwd_arr > b.Schedule.tr_fwd_arr in
          let dep_gt = a.Schedule.tr_fwd_dep > b.Schedule.tr_fwd_dep in
          let arr_lt = a.Schedule.tr_fwd_arr < b.Schedule.tr_fwd_arr in
          if (dep_lt && arr_gt) || (dep_gt && arr_lt) then incr count
        done
      done;
      acc + !count)
    0 sched.Schedule.link_scheds

let create placement sched stim =
  let part = Placement.partition placement in
  let nl = Partition.netlist part in
  let nblocks = Partition.num_blocks part in
  let nnets = Netlist.num_nets nl in
  let owner = Array.make nnets 0 in
  Netlist.iter_nets nl (fun n ni ->
      owner.(Ids.Net.to_int n) <-
        Ids.Block.to_int (Partition.block_of_cell part ni.Netlist.driver));
  let consumers = Array.make nnets [] in
  Netlist.iter_nets nl (fun n ni ->
      let l =
        Array.to_list ni.Netlist.fanouts
        |> List.filter_map (fun (tm : Netlist.term) ->
               if Partition.is_global_term nl tm then None
               else
                 Some
                   ( Ids.Block.to_int
                       (Partition.block_of_cell part tm.Netlist.term_cell),
                     tm ))
      in
      consumers.(Ids.Net.to_int n) <- l);
  let ram_views = Ids.Cell.Tbl.create 8 in
  Netlist.iter_cells nl (fun c ->
      match c.Cell.kind, c.Cell.trigger with
      | Cell.Ram { addr_bits }, Some (Cell.Net_trigger _) ->
          Ids.Cell.Tbl.replace ram_views c.Cell.id
            (Array.make (2 + addr_bits) false)
      | _, _ -> ());
  let transports = ref [] in
  let hard_routes = Array.make nnets [] in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      let link = ls.Schedule.ls_link in
      let ni = Ids.Net.to_int link.Link.net in
      List.iter
        (fun (tr : Schedule.transport) ->
          if tr.Schedule.tr_hard then
            hard_routes.(ni) <-
              ( Ids.Block.to_int link.Link.dst_block,
                max 1 (tr.Schedule.tr_fwd_arr - tr.Schedule.tr_fwd_dep) )
              :: hard_routes.(ni)
          else
            transports :=
              {
                pt_net = ni;
                pt_src_block = Ids.Block.to_int link.Link.src_block;
                pt_dst_block = Ids.Block.to_int link.Link.dst_block;
                pt_dep = tr.Schedule.tr_fwd_dep;
                pt_arr = tr.Schedule.tr_fwd_arr;
              }
              :: !transports)
        ls.Schedule.ls_transports)
    sched.Schedule.link_scheds;
  (* Later-sampled transports of a fork group must apply last on arrival
     ties, so sort by (arr, dep). *)
  let transports =
    List.sort
      (fun a b -> compare (a.pt_arr, a.pt_dep) (b.pt_arr, b.pt_dep))
      !transports
  in
  (* Liveness: a net is live when it feeds a sequential/output pin, or a
     combinational cell whose output is live.  Dead cones may legitimately
     settle after the frame deadline (the scheduler leaves them
     unconstrained), so they are excluded from lateness accounting. *)
  let live = Array.make nnets false in
  let changed = ref true in
  while !changed do
    changed := false;
    Netlist.iter_nets nl (fun n ni ->
        let i = Ids.Net.to_int n in
        if not live.(i) then begin
          let feeds_live =
            Array.exists
              (fun (tm : Netlist.term) ->
                let c = Netlist.cell nl tm.Netlist.term_cell in
                if
                  Levelize.is_comb_through c
                  && Levelize.is_comb_pin c tm.Netlist.term_pin
                then
                  match c.Cell.output with
                  | Some out -> live.(Ids.Net.to_int out)
                  | None -> false
                else
                  match c.Cell.kind with
                  | Cell.Latch _ | Cell.Flip_flop | Cell.Ram _ | Cell.Output ->
                      true
                  | Cell.Gate _ | Cell.Input _ | Cell.Clock_source _ -> false)
              ni.Netlist.fanouts
          in
          if feeds_live then begin
            live.(i) <- true;
            changed := true
          end
        end)
  done;
  let ndomains = Netlist.num_domains nl in
  let dom_cells = Array.make ndomains [] in
  let dom_inputs = Array.make ndomains [] in
  let latches = Ids.Cell.Tbl.create 64 in
  let rams = Ids.Cell.Tbl.create 8 in
  Netlist.iter_cells nl (fun c ->
      (match c.Cell.trigger with
      | Some (Cell.Dom_clock d) ->
          let di = Ids.Dom.to_int d in
          dom_cells.(di) <- c.Cell.id :: dom_cells.(di)
      | Some (Cell.Net_trigger _) | None -> ());
      (match c.Cell.kind with
      | Cell.Input { domain = Some d } ->
          let di = Ids.Dom.to_int d in
          dom_inputs.(di) <- c.Cell.id :: dom_inputs.(di)
      | Cell.Input { domain = None } | Cell.Gate _ | Cell.Latch _
      | Cell.Flip_flop | Cell.Ram _ | Cell.Clock_source _ | Cell.Output ->
          ());
      match c.Cell.kind with
      | Cell.Latch _ | Cell.Flip_flop | Cell.Ram _ ->
          Ids.Cell.Tbl.replace latches c.Cell.id
            {
              data_view = false;
              gate_view = false;
              release_pending = false;
              gate_release_pending = false;
              prev_trigger = false;
              last_open_data_apply = -1;
              last_gate_change = -1;
            };
          (match c.Cell.kind with
          | Cell.Ram { addr_bits } ->
              Ids.Cell.Tbl.replace rams c.Cell.id
                (Array.make (Cell.ram_words ~addr_bits) false)
          | Cell.Latch _ | Cell.Flip_flop | Cell.Gate _ | Cell.Input _
          | Cell.Clock_source _ | Cell.Output ->
              ())
      | Cell.Gate _ | Cell.Input _ | Cell.Clock_source _ | Cell.Output -> ());
  let holdoff = Ids.Cell.Tbl.create 64 in
  List.iter
    (fun (h : Schedule.holdoff) ->
      Ids.Cell.Tbl.replace holdoff h.Schedule.ho_cell
        (h.Schedule.ho_gate, h.Schedule.ho_data))
    sched.Schedule.holdoffs;
  (* Initialize sites from the settled reference state (configuration
     download): every block copy starts at the golden initial value. *)
  let golden = Ref_sim.create nl stim in
  let sites = Bytes.make (nblocks * nnets) '\000' in
  let t =
    {
      nl;
      part;
      sched;
      stim;
      nnets;
      sites;
      clock_levels = Array.make ndomains false;
      rams;
      ram_views;
      latches;
      holdoff;
      owner;
      consumers;
      transports;
      hard_routes;
      dom_cells;
      dom_inputs;
      live;
      buckets = Array.make (max 2 (4 * sched.Schedule.length) + 16) [];
      frame_end = sched.Schedule.length;
      hold_hazards = 0;
      causality_inversions = count_causality_inversions sched;
      late_events = 0;
      event_overflows = 0;
      events_this_frame = 0;
    }
  in
  for n = 0 to nnets - 1 do
    let v = Ref_sim.net_value golden (Ids.Net.of_int n) in
    for b = 0 to nblocks - 1 do
      set_site t b n v
    done
  done;
  Ids.Cell.Tbl.iter
    (fun cid ls ->
      let c = Netlist.cell nl cid in
      let b = Ids.Block.to_int (Partition.block_of_cell part cid) in
      ls.data_view <- get_site t b (Ids.Net.to_int c.Cell.data_inputs.(0));
      (match c.Cell.trigger with
      | Some (Cell.Net_trigger tn) ->
          ls.gate_view <- get_site t b (Ids.Net.to_int tn)
      | Some (Cell.Dom_clock _) | None -> ());
      ls.prev_trigger <- trigger_level t b c)
    latches;
  Ids.Cell.Tbl.iter
    (fun cid view ->
      let c = Netlist.cell nl cid in
      let b = Ids.Block.to_int (Partition.block_of_cell part cid) in
      Array.iteri
        (fun i _ ->
          view.(i) <- get_site t b (Ids.Net.to_int c.Cell.data_inputs.(i)))
        view)
    ram_views;
  t
