open Msched_netlist
module Edges = Msched_clocking.Edges

type t = {
  nl : Netlist.t;
  stim : Stimulus.t;
  values : bool array;  (* by net index *)
  clock_levels : bool array;  (* by domain index *)
  prev_trigger : bool array;  (* by cell index; last seen trigger level *)
  rams : bool array Ids.Cell.Tbl.t;
  topo : Ids.Cell.t array;  (* combinational cells in topological order *)
  mutable warnings : int;
}

let netlist t = t.nl
let net_value t n = t.values.(Ids.Net.to_int n)
let settle_warnings t = t.warnings

let trigger_value t (c : Cell.t) =
  match c.Cell.trigger with
  | Some (Cell.Dom_clock d) -> t.clock_levels.(Ids.Dom.to_int d)
  | Some (Cell.Net_trigger n) -> t.values.(Ids.Net.to_int n)
  | None -> false

let ram_addr t (c : Cell.t) ~offset ~addr_bits =
  let addr = ref 0 in
  for i = 0 to addr_bits - 1 do
    if t.values.(Ids.Net.to_int c.Cell.data_inputs.(offset + i)) then
      addr := !addr lor (1 lsl i)
  done;
  !addr

let eval_comb t (c : Cell.t) =
  match c.Cell.kind with
  | Cell.Gate g ->
      let inputs =
        Array.map (fun n -> t.values.(Ids.Net.to_int n)) c.Cell.data_inputs
      in
      Some (Cell.eval_gate g inputs)
  | Cell.Ram { addr_bits } ->
      let mem = Ids.Cell.Tbl.find t.rams c.Cell.id in
      Some mem.(ram_addr t c ~offset:(2 + addr_bits) ~addr_bits)
  | Cell.Latch _ | Cell.Flip_flop | Cell.Input _ | Cell.Clock_source _
  | Cell.Output ->
      None

(* Settle combinational logic and transparent latches to a fixed point.
   One pass over the topological order fully settles pure combinational
   logic; latch transparency can feed values back, so passes repeat until no
   latch output changes (bounded: latch loops may genuinely oscillate). *)
let settle t =
  let max_passes = 50 in
  let rec pass i =
    Array.iter
      (fun cid ->
        let c = Netlist.cell t.nl cid in
        match eval_comb t c, c.Cell.output with
        | Some v, Some out -> t.values.(Ids.Net.to_int out) <- v
        | (None | Some _), _ -> ())
      t.topo;
    let latch_changed = ref false in
    Netlist.iter_cells t.nl (fun c ->
        match c.Cell.kind with
        | Cell.Latch { active_high } ->
            let g = trigger_value t c in
            if g = active_high then begin
              let d = t.values.(Ids.Net.to_int c.Cell.data_inputs.(0)) in
              let out = Ids.Net.to_int (Option.get c.Cell.output) in
              if t.values.(out) <> d then begin
                t.values.(out) <- d;
                latch_changed := true
              end
            end
        | Cell.Gate _ | Cell.Flip_flop | Cell.Ram _ | Cell.Input _
        | Cell.Clock_source _ | Cell.Output ->
            ());
    if !latch_changed then
      if i >= max_passes then t.warnings <- t.warnings + 1 else pass (i + 1)
  in
  pass 0

type capture = Ff_q of Ids.Cell.t * bool | Ram_write of Ids.Cell.t * int * bool

(* Captures sample data from the [snapshot] taken before the edge was
   applied: when a (possibly derived) clock edge and a data change race on
   the same edge, the old data wins — the same gate-before-data convention
   the scheduler enforces (and that a master/slave latch pair implements in
   hardware). *)
let collect_captures t snapshot =
  let sampled n = snapshot.(Ids.Net.to_int n) in
  let snap_addr (c : Cell.t) ~offset ~addr_bits =
    let addr = ref 0 in
    for i = 0 to addr_bits - 1 do
      if sampled c.Cell.data_inputs.(offset + i) then addr := !addr lor (1 lsl i)
    done;
    !addr
  in
  let captures = ref [] in
  Netlist.iter_cells t.nl (fun c ->
      let i = Ids.Cell.to_int c.Cell.id in
      match c.Cell.kind with
      | Cell.Flip_flop ->
          let trig = trigger_value t c in
          if trig && not t.prev_trigger.(i) then
            captures :=
              Ff_q (c.Cell.id, sampled c.Cell.data_inputs.(0)) :: !captures
      | Cell.Ram { addr_bits } ->
          let trig = trigger_value t c in
          if trig && not t.prev_trigger.(i) then begin
            let we = sampled c.Cell.data_inputs.(0) in
            if we then
              let addr = snap_addr c ~offset:2 ~addr_bits in
              let data = sampled c.Cell.data_inputs.(1) in
              captures := Ram_write (c.Cell.id, addr, data) :: !captures
          end
      | Cell.Gate _ | Cell.Latch _ | Cell.Input _ | Cell.Clock_source _
      | Cell.Output ->
          ());
  !captures

let refresh_prev_triggers t =
  Netlist.iter_cells t.nl (fun c ->
      match c.Cell.kind with
      | Cell.Flip_flop | Cell.Ram _ ->
          t.prev_trigger.(Ids.Cell.to_int c.Cell.id) <- trigger_value t c
      | Cell.Gate _ | Cell.Latch _ | Cell.Input _ | Cell.Clock_source _
      | Cell.Output ->
          ())

let apply_captures t captures =
  List.iter
    (fun cap ->
      match cap with
      | Ff_q (cell, v) ->
          let c = Netlist.cell t.nl cell in
          t.values.(Ids.Net.to_int (Option.get c.Cell.output)) <- v
      | Ram_write (cell, addr, data) ->
          (Ids.Cell.Tbl.find t.rams cell).(addr) <- data)
    captures

let apply_inputs t domain edge_index =
  Netlist.iter_cells t.nl (fun c ->
      match c.Cell.kind with
      | Cell.Input { domain = Some d } when Ids.Dom.equal d domain ->
          t.values.(Ids.Net.to_int (Option.get c.Cell.output)) <-
            Stimulus.value t.stim c ~edge_index
      | Cell.Input _ | Cell.Gate _ | Cell.Latch _ | Cell.Flip_flop
      | Cell.Ram _ | Cell.Clock_source _ | Cell.Output ->
          ())

let apply_edge t (e : Edges.edge) =
  let di = Ids.Dom.to_int e.Edges.domain in
  t.clock_levels.(di) <- e.Edges.polarity = Edges.Rising;
  (match Netlist.clock_source_net t.nl e.Edges.domain with
  | Some n -> t.values.(Ids.Net.to_int n) <- t.clock_levels.(di)
  | None -> ());
  let inputs_pending = ref (e.Edges.polarity = Edges.Rising) in
  let snapshot = Array.copy t.values in
  let progress = ref true in
  while !progress do
    progress := false;
    settle t;
    let captures = collect_captures t snapshot in
    refresh_prev_triggers t;
    if captures <> [] then begin
      apply_captures t captures;
      progress := true
    end;
    if !inputs_pending then begin
      apply_inputs t e.Edges.domain e.Edges.index;
      inputs_pending := false;
      progress := true
    end
  done;
  settle t

let run t edges = List.iter (apply_edge t) edges

let state_cells nl =
  Netlist.fold_cells nl ~init:[] ~f:(fun acc c ->
      match c.Cell.kind with
      | Cell.Latch _ | Cell.Flip_flop | Cell.Ram _ -> c.Cell.id :: acc
      | Cell.Gate _ | Cell.Input _ | Cell.Clock_source _ | Cell.Output -> acc)
  |> List.rev

let state_snapshot t =
  List.map
    (fun cid ->
      let c = Netlist.cell t.nl cid in
      (cid, t.values.(Ids.Net.to_int (Option.get c.Cell.output))))
    (state_cells t.nl)

let ram_contents t cell = Array.copy (Ids.Cell.Tbl.find t.rams cell)

let create nl stim =
  let topo =
    match Levelize.compute nl with
    | Ok lv -> Levelize.topo_cells lv
    | Error cycle -> raise (Levelize.Combinational_cycle cycle)
  in
  let t =
    {
      nl;
      stim;
      values = Array.make (Netlist.num_nets nl) false;
      clock_levels = Array.make (Netlist.num_domains nl) false;
      prev_trigger = Array.make (Netlist.num_cells nl) false;
      rams = Ids.Cell.Tbl.create 8;
      topo;
      warnings = 0;
    }
  in
  Netlist.iter_cells nl (fun c ->
      match c.Cell.kind with
      | Cell.Ram { addr_bits } ->
          Ids.Cell.Tbl.replace t.rams c.Cell.id
            (Array.make (Cell.ram_words ~addr_bits) false)
      | Cell.Input { domain = _ } ->
          t.values.(Ids.Net.to_int (Option.get c.Cell.output)) <-
            Stimulus.initial stim c
      | Cell.Gate _ | Cell.Latch _ | Cell.Flip_flop | Cell.Clock_source _
      | Cell.Output ->
          ());
  settle t;
  refresh_prev_triggers t;
  t
