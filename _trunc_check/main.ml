let () =
  let bad = String.concat "\n" (List.init 150 (fun i -> Printf.sprintf "bogus%d" i)) in
  match Msched_netlist.Serial.of_string_diag bad with
  | Ok _ -> print_endline "ok?!"
  | Error ds ->
      Printf.printf "ndiags=%d\n" (List.length ds);
      List.iter (fun d -> print_endline (Msched_diag.Diag.to_json d))
        (List.filteri (fun i _ -> i >= List.length ds - 2) ds)
