open Msched_netlist
module Partition = Msched_partition.Partition
module Capacity = Msched_partition.Capacity
module Design_gen = Msched_gen.Design_gen

let small_design () =
  (Design_gen.random_multidomain ~seed:3 ~domains:2 ~modules:12 ~mts_fraction:0.2 ())
    .Design_gen.netlist

let test_validates () =
  let nl = small_design () in
  let part = Partition.make nl ~max_weight:20 () in
  match Partition.validate part with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_weights_bounded () =
  let nl = small_design () in
  let part = Partition.make nl ~max_weight:20 () in
  List.iter
    (fun b ->
      Alcotest.(check bool) "weight within budget" true
        (Partition.weight_of_block part b <= 20))
    (Partition.blocks part)

let test_all_cells_assigned () =
  let nl = small_design () in
  let part = Partition.make nl ~max_weight:20 () in
  let total =
    List.fold_left
      (fun acc b -> acc + List.length (Partition.cells_of_block part b))
      0 (Partition.blocks part)
  in
  Alcotest.(check int) "all cells" (Netlist.num_cells nl) total

let test_packing_quality () =
  (* The merge pass must pack blocks: block count close to the lower bound. *)
  let nl = small_design () in
  let part = Partition.make nl ~max_weight:20 () in
  let lower = (Capacity.total_weight nl + 19) / 20 in
  Alcotest.(check bool)
    (Printf.sprintf "blocks %d within 2x of lower bound %d"
       (Partition.num_blocks part) lower)
    true
    (Partition.num_blocks part <= 2 * lower + 1)

let test_crossing_consistency () =
  let nl = small_design () in
  let part = Partition.make nl ~max_weight:20 () in
  List.iter
    (fun net ->
      let foreign = Partition.foreign_consumers part net in
      Alcotest.(check bool) "crossing has foreign" true (foreign <> []);
      let src = Partition.block_of_cell part (Netlist.driver nl net).Cell.id in
      List.iter
        (fun (b, terms) ->
          Alcotest.(check bool) "foreign differs from src" false
            (Ids.Block.equal b src);
          List.iter
            (fun (tm : Netlist.term) ->
              Alcotest.(check bool) "term really in block" true
                (Ids.Block.equal (Partition.block_of_cell part tm.Netlist.term_cell) b))
            terms)
        foreign)
    (Partition.crossing_nets part)

let test_input_output_nets () =
  let nl = small_design () in
  let part = Partition.make nl ~max_weight:20 () in
  List.iter
    (fun b ->
      List.iter
        (fun n ->
          let src = Partition.block_of_cell part (Netlist.driver nl n).Cell.id in
          Alcotest.(check bool) "input driven elsewhere" false (Ids.Block.equal src b))
        (Partition.input_nets part b);
      List.iter
        (fun n ->
          let src = Partition.block_of_cell part (Netlist.driver nl n).Cell.id in
          Alcotest.(check bool) "output driven here" true (Ids.Block.equal src b))
        (Partition.output_nets part b))
    (Partition.blocks part)

let test_global_clock_not_crossing () =
  (* Dom-clocked triggers never force their clock-source net to cross. *)
  let b = Netlist.Builder.create () in
  let d = Netlist.Builder.add_domain b "clk" in
  let (_ : Ids.Net.t) = Netlist.Builder.add_clock_source b d in
  let i = Netlist.Builder.add_input b ~domain:d () in
  let q1 = Netlist.Builder.add_flip_flop b ~data:i ~clock:(Cell.Dom_clock d) () in
  let q2 = Netlist.Builder.add_flip_flop b ~data:q1 ~clock:(Cell.Dom_clock d) () in
  let (_ : Ids.Cell.t) = Netlist.Builder.add_output b q2 in
  let nl = Netlist.Builder.finalize b in
  (* Force the two flip-flops into different blocks. *)
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (if i mod 2 = 0 then 0 else 1))
  in
  let part = Partition.of_assignment nl assignment in
  let crossing = Partition.crossing_nets part in
  let clock_net = Option.get (Netlist.clock_source_net nl d) in
  Alcotest.(check bool) "clock net does not cross" false
    (List.exists (Ids.Net.equal clock_net) crossing)

let test_deterministic () =
  let nl = small_design () in
  let p1 = Partition.make nl ~max_weight:20 ~seed:5 () in
  let p2 = Partition.make nl ~max_weight:20 ~seed:5 () in
  Alcotest.(check int) "same block count" (Partition.num_blocks p1)
    (Partition.num_blocks p2);
  Netlist.iter_cells nl (fun c ->
      Alcotest.(check int) "same assignment"
        (Ids.Block.to_int (Partition.block_of_cell p1 c.Cell.id))
        (Ids.Block.to_int (Partition.block_of_cell p2 c.Cell.id)))

let test_oversized_cell_rejected () =
  let b = Netlist.Builder.create () in
  let d = Netlist.Builder.add_domain b "clk" in
  let i = Netlist.Builder.add_input b ~domain:d () in
  let (_ : Ids.Net.t) =
    Netlist.Builder.add_ram b ~addr_bits:6 ~write_enable:i ~write_data:i
      ~write_addr:(List.init 6 (fun _ -> i))
      ~read_addr:(List.init 6 (fun _ -> i))
      ~clock:(Cell.Dom_clock d) ()
  in
  let nl = Netlist.Builder.finalize b in
  (* the 64-word RAM weighs 16 > max_weight 4 *)
  match Partition.make nl ~max_weight:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected oversized-cell rejection"

let prop_partition_valid =
  QCheck.Test.make ~name:"partition always valid and bounded" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 10 60))
    (fun (seed, max_weight) ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:2 ~modules:10
          ~mts_fraction:0.2 ()
      in
      let part = Partition.make d.Design_gen.netlist ~max_weight ~seed () in
      Partition.validate part = Ok ()
      && List.for_all
           (fun b -> Partition.weight_of_block part b <= max_weight)
           (Partition.blocks part))

let suite =
  [
    Alcotest.test_case "validates" `Quick test_validates;
    Alcotest.test_case "weights bounded" `Quick test_weights_bounded;
    Alcotest.test_case "all cells assigned" `Quick test_all_cells_assigned;
    Alcotest.test_case "packing quality" `Quick test_packing_quality;
    Alcotest.test_case "crossing consistency" `Quick test_crossing_consistency;
    Alcotest.test_case "input/output nets" `Quick test_input_output_nets;
    Alcotest.test_case "global clock not crossing" `Quick test_global_clock_not_crossing;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "oversized cell rejected" `Quick test_oversized_cell_rejected;
    QCheck_alcotest.to_alcotest prop_partition_valid;
  ]
