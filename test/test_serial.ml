open Msched_netlist
module Design_gen = Msched_gen.Design_gen

let roundtrip nl =
  match Serial.of_string (Serial.to_string nl) with
  | Ok nl' -> nl'
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)

let structurally_equal a b =
  Netlist.num_cells a = Netlist.num_cells b
  && Netlist.num_nets a = Netlist.num_nets b
  && Netlist.num_domains a = Netlist.num_domains b
  && List.for_all
       (fun i ->
         let ca = Netlist.cell a (Ids.Cell.of_int i) in
         let cb = Netlist.cell b (Ids.Cell.of_int i) in
         ca.Cell.kind = cb.Cell.kind
         && ca.Cell.data_inputs = cb.Cell.data_inputs
         && ca.Cell.trigger = cb.Cell.trigger
         && ca.Cell.output = cb.Cell.output)
       (List.init (Netlist.num_cells a) Fun.id)

let test_roundtrip_fig_designs () =
  List.iter
    (fun (d : Design_gen.design) ->
      let nl = d.Design_gen.netlist in
      Alcotest.(check bool)
        (d.Design_gen.design_label ^ " roundtrips")
        true
        (structurally_equal nl (roundtrip nl)))
    [ Design_gen.fig1 (); Design_gen.fig3_latch (); Design_gen.handshake () ]

let test_roundtrip_with_ram () =
  let d = Design_gen.design2_like ~scale:0.02 () in
  let nl = d.Design_gen.netlist in
  Alcotest.(check bool) "ram design roundtrips" true
    (structurally_equal nl (roundtrip nl))

let test_roundtrip_behavior () =
  (* The reparsed netlist must simulate identically. *)
  let d = Design_gen.fig3_latch () in
  let nl = d.Design_gen.netlist in
  let nl' = roundtrip nl in
  let stim = Msched_sim.Stimulus.make ~seed:7 nl in
  let g1 = Msched_sim.Ref_sim.create nl stim in
  let g2 = Msched_sim.Ref_sim.create nl' stim in
  let clocks = Msched_clocking.Async_gen.clocks (Netlist.domains nl) in
  let edges = Msched_clocking.Edges.stream clocks ~horizon_ps:200_000 in
  Msched_sim.Ref_sim.run g1 edges;
  Msched_sim.Ref_sim.run g2 edges;
  List.iter2
    (fun (ca, va) (cb, vb) ->
      Alcotest.(check int) "cell order" (Ids.Cell.to_int ca) (Ids.Cell.to_int cb);
      Alcotest.(check bool) "state equal" va vb)
    (Msched_sim.Ref_sim.state_snapshot g1)
    (Msched_sim.Ref_sim.state_snapshot g2)

let test_parse_errors () =
  let check_err text =
    match Serial.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected parse failure for: " ^ text)
  in
  check_err "bogus directive";
  check_err "net 0";
  check_err "gate frobnicate g 0 1";
  check_err "net 0 a\ninput i 0 domain notanint"

let test_comments_and_blank_lines () =
  let text =
    "design t\n# a comment\ndomain clk\n\nnet 0 i\nnet 1 q\ninput i 0 domain \
     0\nff f 1 0 dom 0\noutput o 1\n"
  in
  match Serial.of_string text with
  | Ok nl ->
      Alcotest.(check int) "cells" 3 (Netlist.num_cells nl);
      Alcotest.(check int) "nets" 2 (Netlist.num_nets nl)
  | Error msg -> Alcotest.fail msg

let prop_roundtrip_random =
  QCheck.Test.make ~name:"serialization roundtrips random designs" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:2 ~modules:8
          ~mts_fraction:0.25 ()
      in
      let nl = d.Design_gen.netlist in
      match Serial.of_string (Serial.to_string nl) with
      | Ok nl' -> structurally_equal nl nl'
      | Error _ -> false)

let test_dot_contains_structure () =
  let d = Design_gen.fig1 () in
  let nl = d.Design_gen.netlist in
  let dot = Dot.to_string nl in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has FF1" true (contains "FF1");
  Alcotest.(check bool) "has edges" true (contains "->");
  Alcotest.(check bool) "dashed trigger edges absent (dom clocks only)" true
    (not (contains "style=dashed") || contains "clksrc")

let test_dot_clusters () =
  let d = Design_gen.fig1 () in
  let nl = d.Design_gen.netlist in
  let part = Msched_partition.Partition.make nl ~max_weight:4 () in
  let dot =
    Dot.to_string
      ~cluster:(fun c ->
        Some (Ids.Block.to_int (Msched_partition.Partition.block_of_cell part c)))
      nl
  in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has clusters" true (contains "subgraph cluster_")

let suite =
  [
    Alcotest.test_case "roundtrip fig designs" `Quick test_roundtrip_fig_designs;
    Alcotest.test_case "roundtrip with ram" `Quick test_roundtrip_with_ram;
    Alcotest.test_case "roundtrip behavior" `Quick test_roundtrip_behavior;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blank lines" `Quick test_comments_and_blank_lines;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    Alcotest.test_case "dot structure" `Quick test_dot_contains_structure;
    Alcotest.test_case "dot clusters" `Quick test_dot_clusters;
  ]
