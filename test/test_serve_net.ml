(* Chaos suite for the hardened concurrent serve: real sockets, real
   worker domains, injected faults.  Every scenario must end in a
   documented E_* diagnostic and exit class — never a hang, a lost
   response, or a dead server:

   - concurrent clients over Unix-domain and TCP sockets
   - slow / hung / crashing jobs (poison requests, --inject-faults only)
   - deadlines: cancelled-in-queue and abandoned-while-running (E_TIMEOUT)
   - backpressure: shed (E_OVERLOAD) and block policies on a full queue
   - worker crash recovery (domain reaped, replacement spawned)
   - hung-worker replacement after the grace period
   - malformed and oversized frames, mid-request client disconnects
   - graceful drain with zero lost in-flight responses; abort escalation
   - cache LRU eviction under a live server
   - server.* gauges sampled by the monitor, asserted against the faults *)

module Diag = Msched_diag.Diag
module Sink = Msched_obs.Sink
module Serial = Msched_netlist.Serial
module Design_gen = Msched_gen.Design_gen
module Server = Msched_server.Server
module Cache = Msched_server.Cache
module Dispatch = Msched_server.Dispatch
module Transport = Msched_server.Transport

let good_text ?(seed = 901) () =
  Serial.to_string
    (Design_gen.random_multidomain ~seed ~domains:2 ~modules:6
       ~mts_fraction:0.25 ())
      .Design_gen.netlist

let broken_text = "design broken\nnet x\n"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "msched-serve-net-%d-%d" (Unix.getpid ()) !n)
    in
    Cache.ensure_dir dir;
    dir

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* ---- Server / client helpers. ---- *)

let config ?(address = Transport.Tcp ("127.0.0.1", 0)) ?(workers = 2)
    ?(queue_max = 64) ?(overload = Dispatch.Shed) ?(grace = 0.3) ?cache_dir
    ?cache_max_bytes ?(inject = false) ?max_frame ?(gc_interval = 0.2)
    ?(compile_jobs = 1) () =
  {
    Transport.t_address = address;
    t_dispatch =
      {
        Dispatch.default_config with
        Dispatch.d_workers = workers;
        d_queue_max = queue_max;
        d_overload = overload;
        d_grace_s = grace;
      };
    t_settings =
      (let s =
         match cache_dir with
         | None -> Server.default_settings
         | Some dir ->
             { Server.default_settings with Server.s_cache_dir = Some dir }
       in
       {
         s with
         Server.s_options =
           { s.Server.s_options with Msched.Compile.compile_jobs };
       });
    t_inject_faults = inject;
    t_max_frame =
      (match max_frame with
      | Some n -> n
      | None -> Transport.default_config.Transport.t_max_frame);
    t_cache_max_bytes = cache_max_bytes;
    t_gc_interval_s = gc_interval;
    t_drain_timeout_s = 10.0;
    t_abort_timeout_s = 3.0;
  }

type client = { c_fd : Unix.file_descr; mutable c_carry : string }

let connect srv =
  match Transport.bound_address srv with
  | Transport.Tcp (_, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      { c_fd = fd; c_carry = "" }
  | Transport.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      { c_fd = fd; c_carry = "" }

let send_raw c s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring c.c_fd s off (n - off))
  in
  go 0

let send c line = send_raw c (line ^ "\n")

(* One response line, or [None] on clean EOF.  Raises on timeout so a
   lost response fails the test instead of hanging it. *)
let recv ?(timeout_s = 30.0) c =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match String.index_opt c.c_carry '\n' with
    | Some i ->
        let line = String.sub c.c_carry 0 i in
        c.c_carry <-
          String.sub c.c_carry (i + 1) (String.length c.c_carry - i - 1);
        Some line
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then
          Alcotest.failf "timed out waiting for a response (carry=%S)"
            c.c_carry
        else begin
          match Unix.select [ c.c_fd ] [] [] (Float.min left 0.2) with
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  if c.c_carry <> "" then begin
                    let line = c.c_carry in
                    c.c_carry <- "";
                    Some line
                  end
                  else None
              | n ->
                  c.c_carry <- c.c_carry ^ Bytes.sub_string chunk 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None)
        end
  in
  go ()

let close c = try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let recv_exn ?timeout_s c =
  match recv ?timeout_s c with
  | Some line -> line
  | None -> Alcotest.fail "connection closed while expecting a response"

(* ---- Response dissection. ---- *)

let json line =
  match Diag.Json.parse line with
  | Ok v -> v
  | Error m -> Alcotest.failf "unparseable response %S: %s" line m

let str_mem k line = Option.bind (Diag.Json.mem k (json line)) Diag.Json.str
let int_mem k line = Option.bind (Diag.Json.mem k (json line)) Diag.Json.int

let schema line =
  match str_mem "schema" line with
  | Some s -> s
  | None -> Alcotest.failf "response without schema: %S" line

let exit_code line =
  match int_mem "exit_code" line with
  | Some e -> e
  | None -> Alcotest.failf "response without exit_code: %S" line

let diag_codes line =
  match
    Option.bind (Diag.Json.mem "diagnostics" (json line)) Diag.Json.arr
  with
  | None -> []
  | Some ds ->
      List.filter_map
        (fun d -> Option.bind (Diag.Json.mem "code" d) Diag.Json.str)
        ds

let check_failure ~what ~code ~exit line =
  Alcotest.(check string) (what ^ ": schema") "msched-batch-1" (schema line);
  Alcotest.(check int) (what ^ ": exit class") exit (exit_code line);
  Alcotest.(check bool)
    (Printf.sprintf "%s: carries %s (got %s)" what code
       (String.concat "," (diag_codes line)))
    true
    (List.mem code (diag_codes line))

let drain_and_wait srv =
  Transport.request_shutdown srv `Drain;
  Transport.wait srv

let gauge_of sink name =
  match List.assoc_opt name (Sink.gauges sink) with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "gauge %s never sampled" name

(* ---- Scenarios. ---- *)

let test_roundtrip_unix () =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "serve.sock" in
  let mnl = Filename.concat dir "good.mnl" in
  write_file mnl (good_text ());
  let srv = Transport.start (config ~address:(Transport.Unix_path sock) ()) in
  let c = connect srv in
  (* JSON path form with id; bare path form; inline text form. *)
  send c (Printf.sprintf {|{"path":%s,"id":"req-1"}|} (Diag.Json.string mnl));
  let r1 = recv_exn c in
  Alcotest.(check (option string)) "id echoed" (Some "req-1") (str_mem "id" r1);
  Alcotest.(check int) "path request compiles" 0 (exit_code r1);
  send c mnl;
  Alcotest.(check int) "bare path compiles" 0 (exit_code (recv_exn c));
  send c (Printf.sprintf {|{"text":%s}|} (Diag.Json.string (good_text ())));
  Alcotest.(check int) "inline text compiles" 0 (exit_code (recv_exn c));
  (* Broken design: per-request failure, connection stays usable. *)
  send c
    (Printf.sprintf {|{"text":%s,"id":"bad"}|} (Diag.Json.string broken_text));
  let rb = recv_exn c in
  Alcotest.(check int) "broken design exits 3" 3 (exit_code rb);
  Alcotest.(check (option string)) "failure echoes id" (Some "bad")
    (str_mem "id" rb);
  (* Shutdown op acks, the drain flushes the connection summary. *)
  send c {|{"op":"shutdown"}|};
  let ack = recv_exn c in
  Alcotest.(check string) "ctl ack schema" "msched-serve-ctl-1" (schema ack);
  let s = Transport.wait srv in
  let summary = recv_exn c in
  Alcotest.(check string) "connection summary schema" "msched-serve-conn-1"
    (schema summary);
  Alcotest.(check (option int)) "connection counted requests" (Some 4)
    (int_mem "requests" summary);
  Alcotest.(check (option int)) "connection counted errors" (Some 1)
    (int_mem "errors" summary);
  close c;
  Alcotest.(check bool) "clean drain" true s.Transport.sm_clean;
  Alcotest.(check int) "all submitted completed" 4
    s.Transport.sm_counters.Dispatch.c_completed;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists sock);
  let sj = Transport.summary_json s in
  Alcotest.(check string) "server summary schema" "msched-serve-summary-1"
    (schema sj);
  Alcotest.(check (option string)) "server summary drain verdict"
    (Some "clean") (str_mem "drain" sj)

let test_concurrent_clients () =
  let srv = Transport.start (config ~workers:4 ()) in
  let text = good_text () in
  let per_client = 3 and clients = 5 in
  let errors = Atomic.make 0 in
  let run_client ci =
    let c = connect srv in
    for r = 0 to per_client - 1 do
      let id = Printf.sprintf "c%d-r%d" ci r in
      let body = if r = per_client - 1 then broken_text else text in
      send c
        (Printf.sprintf {|{"text":%s,"id":%s}|} (Diag.Json.string body)
           (Diag.Json.string id));
      let resp = recv_exn c in
      if str_mem "id" resp <> Some id then Atomic.incr errors;
      let expect = if r = per_client - 1 then 3 else 0 in
      if exit_code resp <> expect then Atomic.incr errors
    done;
    close c
  in
  let threads = List.init clients (Thread.create run_client) in
  List.iter Thread.join threads;
  let s = drain_and_wait srv in
  Alcotest.(check int) "every response matched its request id and class" 0
    (Atomic.get errors);
  Alcotest.(check int) "all requests completed" (clients * per_client)
    s.Transport.sm_counters.Dispatch.c_completed;
  Alcotest.(check int) "connections counted" clients s.Transport.sm_connections;
  Alcotest.(check bool) "clean drain" true s.Transport.sm_clean

(* --compile-jobs is invisible on the wire: a server whose workers run
   parallel compiles (compile_jobs=2) under concurrent clients answers
   byte-for-byte what a sequential-compile server answers, and loses
   nothing. *)
let test_compile_jobs_differential () =
  let corpus =
    List.init 4 (fun i -> (Printf.sprintf "d%d" i, good_text ~seed:(910 + i) ()))
  in
  let collect ~compile_jobs ~clients =
    let srv = Transport.start (config ~workers:2 ~compile_jobs ()) in
    let tbl = Hashtbl.create 16 in
    let mu = Mutex.create () in
    let run_client ci =
      let c = connect srv in
      List.iter
        (fun (id, text) ->
          let id = Printf.sprintf "c%d-%s" ci id in
          send c
            (Printf.sprintf {|{"text":%s,"id":%s}|} (Diag.Json.string text)
               (Diag.Json.string id));
          let resp = recv_exn c in
          Mutex.lock mu;
          Hashtbl.replace tbl id resp;
          Mutex.unlock mu)
        corpus;
      close c
    in
    let threads = List.init clients (Thread.create run_client) in
    List.iter Thread.join threads;
    let s = drain_and_wait srv in
    Alcotest.(check bool) "clean drain" true s.Transport.sm_clean;
    Alcotest.(check int) "zero lost responses"
      (clients * List.length corpus)
      (Hashtbl.length tbl);
    tbl
  in
  let par = collect ~compile_jobs:2 ~clients:3 in
  let seq = collect ~compile_jobs:1 ~clients:3 in
  Hashtbl.iter
    (fun id body ->
      match Hashtbl.find_opt par id with
      | None -> Alcotest.failf "parallel server lost response %s" id
      | Some pbody ->
          Alcotest.(check string)
            (Printf.sprintf "%s: byte-identical body" id)
            body pbody)
    seq

let test_timeout_and_hung_replacement () =
  let sink = Sink.create () in
  let srv =
    Transport.start ~sink (config ~workers:1 ~grace:0.3 ~inject:true ())
  in
  let c = connect srv in
  (* A hung job with a deadline: E_TIMEOUT (exit 7) comes back promptly
     even though the worker never returns. *)
  let t0 = Unix.gettimeofday () in
  send c {|{"poison":"hang","deadline_s":0.3,"id":"h1"}|};
  let r = recv_exn c in
  check_failure ~what:"hung request" ~code:"E_TIMEOUT" ~exit:7 r;
  Alcotest.(check bool) "timeout honoured promptly" true
    (Unix.gettimeofday () -. t0 < 5.0);
  (* After the grace period the monitor writes the hung worker off and
     spawns a replacement — the single-worker server must serve again. *)
  Thread.delay 0.6;
  send c
    (Printf.sprintf {|{"text":%s,"id":"after"}|}
       (Diag.Json.string (good_text ())));
  Alcotest.(check int) "replacement worker serves" 0 (exit_code (recv_exn c));
  (* A deadline that expires while QUEUED: hold the only worker, then a
     second client's request cannot start before its deadline. *)
  send c {|{"poison":"sleep=0.8","id":"s1"}|};
  let c2 = connect srv in
  Thread.delay 0.1;
  send c2
    (Printf.sprintf {|{"text":%s,"deadline_s":0.2,"id":"q1"}|}
       (Diag.Json.string (good_text ())));
  check_failure ~what:"queued past deadline" ~code:"E_TIMEOUT" ~exit:7
    (recv_exn c2);
  Alcotest.(check int) "held request still finishes" 0 (exit_code (recv_exn c));
  close c;
  close c2;
  (* Abort releases the genuinely hung worker (it polls the stopping
     flag); its domain is joined as a zombie. *)
  Transport.request_shutdown srv `Abort;
  let s = Transport.wait srv in
  let cnt = s.Transport.sm_counters in
  Alcotest.(check bool) "timeouts counted" true (cnt.Dispatch.c_timed_out >= 2);
  Alcotest.(check bool) "hung worker replaced" true
    (cnt.Dispatch.c_replaced >= 1);
  Alcotest.(check bool) "gauge server.timeouts tracks the faults" true
    (gauge_of sink "server.timeouts" >= 2);
  Alcotest.(check bool) "gauge server.replaced tracks the hang" true
    (gauge_of sink "server.replaced" >= 1)

let test_crash_recovery () =
  let sink = Sink.create () in
  let srv = Transport.start ~sink (config ~workers:2 ~inject:true ()) in
  let c = connect srv in
  send c {|{"poison":"crash","id":"boom"}|};
  let r = recv_exn c in
  check_failure ~what:"crashing request" ~code:"E_INTERNAL" ~exit:6 r;
  Alcotest.(check (option string)) "crash response echoes id" (Some "boom")
    (str_mem "id" r);
  (* The dead domain is reaped and replaced; the server keeps serving at
     full capacity. *)
  Thread.delay 0.2;
  send c
    (Printf.sprintf {|{"text":%s,"id":"after"}|}
       (Diag.Json.string (good_text ())));
  Alcotest.(check int) "server survives the crash" 0 (exit_code (recv_exn c));
  close c;
  let s = drain_and_wait srv in
  let cnt = s.Transport.sm_counters in
  Alcotest.(check int) "crash counted" 1 cnt.Dispatch.c_crashed;
  Alcotest.(check int) "dead domain reaped" 1 cnt.Dispatch.c_reaped;
  Alcotest.(check bool) "clean drain after crash" true s.Transport.sm_clean;
  Alcotest.(check int) "gauge server.crashes sampled" 1
    (gauge_of sink "server.crashes");
  Alcotest.(check int) "gauge server.reaped sampled" 1
    (gauge_of sink "server.reaped");
  Alcotest.(check bool) "gauge server.connections sampled" true
    (gauge_of sink "server.connections" >= 1)

let test_overload_shed () =
  let srv =
    Transport.start (config ~workers:1 ~queue_max:1 ~inject:true ())
  in
  let c1 = connect srv and c2 = connect srv and c3 = connect srv in
  (* Fill the worker, then the queue, then overflow. *)
  send c1 {|{"poison":"sleep=0.8","id":"busy"}|};
  Thread.delay 0.2;
  send c2 {|{"poison":"sleep=0.1","id":"queued"}|};
  Thread.delay 0.1;
  send c3
    (Printf.sprintf {|{"text":%s,"id":"shed"}|}
       (Diag.Json.string (good_text ())));
  let r3 = recv_exn c3 in
  check_failure ~what:"overflow request" ~code:"E_OVERLOAD" ~exit:8 r3;
  Alcotest.(check (option string)) "shed response echoes id" (Some "shed")
    (str_mem "id" r3);
  (* The two admitted requests still complete. *)
  Alcotest.(check int) "busy request completes" 0 (exit_code (recv_exn c1));
  Alcotest.(check int) "queued request completes" 0 (exit_code (recv_exn c2));
  List.iter close [ c1; c2; c3 ];
  let s = drain_and_wait srv in
  Alcotest.(check bool) "shed counted" true
    (s.Transport.sm_counters.Dispatch.c_rejected >= 1);
  Alcotest.(check int) "admitted requests completed" 2
    s.Transport.sm_counters.Dispatch.c_completed

let test_overload_block_deadline () =
  let srv =
    Transport.start
      (config ~workers:1 ~queue_max:1 ~overload:Dispatch.Block ~inject:true ())
  in
  let c1 = connect srv and c2 = connect srv and c3 = connect srv in
  send c1 {|{"poison":"sleep=0.7","id":"busy"}|};
  Thread.delay 0.2;
  send c2 {|{"poison":"sleep=0.1","id":"queued"}|};
  Thread.delay 0.1;
  (* Block policy: the submitter waits for space, but its deadline expires
     first — E_TIMEOUT, not E_OVERLOAD. *)
  send c3
    (Printf.sprintf {|{"text":%s,"deadline_s":0.15,"id":"blocked"}|}
       (Diag.Json.string (good_text ())));
  check_failure ~what:"blocked past deadline" ~code:"E_TIMEOUT" ~exit:7
    (recv_exn c3);
  Alcotest.(check int) "busy request completes" 0 (exit_code (recv_exn c1));
  Alcotest.(check int) "queued request completes" 0 (exit_code (recv_exn c2));
  List.iter close [ c1; c2; c3 ];
  ignore (drain_and_wait srv)

let test_malformed_frames () =
  let srv = Transport.start (config ~max_frame:2048 ()) in
  let c = connect srv in
  let check_bad what line code exit =
    send c line;
    check_failure ~what ~code ~exit (recv_exn c)
  in
  check_bad "unparseable json" "{not json" "E_PARSE" 3;
  check_bad "unknown op" {|{"op":"bogus"}|} "E_PARSE" 3;
  check_bad "missing path/text" {|{"nope":1}|} "E_PARSE" 3;
  check_bad "both path and text" {|{"path":"a","text":"b"}|} "E_PARSE" 3;
  check_bad "bad poison spec" "poison:frobnicate" "E_PARSE" 3;
  (* Poison without --inject-faults: refused with its own class. *)
  check_bad "poison while injection disabled" "poison:crash" "E_UNSUPPORTED" 5;
  (* Oversized unterminated frame: answered, then the connection is
     closed on the server's terms. *)
  send_raw c (String.make 4096 'x');
  check_failure ~what:"oversized frame" ~code:"E_PARSE" ~exit:3 (recv_exn c);
  Alcotest.(check (option string)) "connection closed after frame error" None
    (recv c);
  close c;
  (* The server is still healthy for the next client. *)
  let c2 = connect srv in
  send c2 (Printf.sprintf {|{"text":%s}|} (Diag.Json.string (good_text ())));
  Alcotest.(check int) "server survives malformed traffic" 0
    (exit_code (recv_exn c2));
  close c2;
  let s = drain_and_wait srv in
  Alcotest.(check int) "frame error counted" 1 s.Transport.sm_frame_errors

let test_mid_request_disconnect () =
  let srv = Transport.start (config ~workers:1 ~inject:true ()) in
  (* Client vanishes while its request is in flight: the response write
     hits a dead socket; the server counts a disconnect and moves on. *)
  let c = connect srv in
  send c {|{"poison":"sleep=0.4","id":"gone"}|};
  close c;
  Thread.delay 0.8;
  let c2 = connect srv in
  send c2 (Printf.sprintf {|{"text":%s}|} (Diag.Json.string (good_text ())));
  Alcotest.(check int) "server unaffected by the disconnect" 0
    (exit_code (recv_exn c2));
  close c2;
  let s = drain_and_wait srv in
  Alcotest.(check bool) "disconnect counted" true (s.Transport.sm_disconnects >= 1);
  Alcotest.(check bool) "abandoned-by-client job still completed" true
    (s.Transport.sm_counters.Dispatch.c_completed >= 2)

let test_drain_zero_lost () =
  let srv = Transport.start (config ~workers:2 ()) in
  let text = good_text () in
  let clients = 4 and per_client = 2 in
  let completed = Atomic.make 0 and shed = Atomic.make 0 in
  let lost = Atomic.make 0 in
  let run_client ci =
    let c = connect srv in
    for r = 0 to per_client - 1 do
      send c
        (Printf.sprintf {|{"text":%s,"id":"c%d-%d"}|} (Diag.Json.string text)
           ci r)
    done;
    (* All requests are on the wire before the drain hits; every one must
       be answered — completed, or explicitly shed with E_OVERLOAD. *)
    for _ = 0 to per_client - 1 do
      match recv c with
      | None -> Atomic.incr lost
      | Some resp -> (
          match exit_code resp with
          | 0 -> Atomic.incr completed
          | 8 -> Atomic.incr shed
          | e -> Alcotest.failf "unexpected exit class %d during drain" e)
    done;
    (* The drain still flushes this connection's summary. *)
    (match recv c with
    | Some line ->
        if schema line <> "msched-serve-conn-1" then Atomic.incr lost
    | None -> Atomic.incr lost);
    close c
  in
  let threads = List.init clients (Thread.create run_client) in
  Thread.delay 0.05;
  let s = drain_and_wait srv in
  List.iter Thread.join threads;
  Alcotest.(check int) "zero lost responses" 0 (Atomic.get lost);
  Alcotest.(check int) "every request answered" (clients * per_client)
    (Atomic.get completed + Atomic.get shed);
  Alcotest.(check int) "server accounting matches the wire"
    (clients * per_client)
    (s.Transport.sm_counters.Dispatch.c_completed
    + s.Transport.sm_counters.Dispatch.c_rejected);
  Alcotest.(check bool) "clean drain" true s.Transport.sm_clean

let test_abort_during_drain () =
  let srv = Transport.start (config ~workers:1 ~inject:true ()) in
  let c = connect srv in
  (* A hung job with no deadline would hold a graceful drain open
     forever; escalating to abort must unstick it and still answer the
     client. *)
  send c {|{"poison":"hang","id":"stuck"}|};
  Thread.delay 0.2;
  Transport.request_shutdown srv `Drain;
  let waiter = Thread.create Transport.wait srv in
  Thread.delay 0.3;
  Transport.request_shutdown srv `Abort;
  (* The cooperative hang exits on the stopping flag and the request is
     answered (a compiled record or a structured failure — never
     silence). *)
  let r = recv_exn c in
  Alcotest.(check string) "stuck request answered" "msched-batch-1" (schema r);
  close c;
  Thread.join waiter

let test_cache_gc_under_serve () =
  let dir = fresh_dir () in
  let srv =
    Transport.start
      (config ~workers:2 ~cache_dir:dir ~cache_max_bytes:512 ~gc_interval:0.2 ())
  in
  let c = connect srv in
  (* Distinct designs, each persisting a warm-route entry; the janitor
     must keep the directory under the cap while the server runs. *)
  for seed = 910 to 917 do
    send c
      (Printf.sprintf {|{"text":%s}|} (Diag.Json.string (good_text ~seed ())));
    Alcotest.(check int)
      (Printf.sprintf "design %d compiles" seed)
      0
      (exit_code (recv_exn c))
  done;
  Thread.delay 0.5;
  close c;
  let s = drain_and_wait srv in
  Alcotest.(check bool) "janitor evicted old entries" true
    (s.Transport.sm_evictions > 0);
  let stats = Cache.stats ~dir in
  Alcotest.(check bool)
    (Printf.sprintf "cache within cap after shutdown (%d bytes)"
       stats.Cache.st_bytes)
    true
    (stats.Cache.st_bytes <= 512)

(* One worker, three clients with unequal backlogs: completion order must
   rotate the client lanes round-robin, not drain the flooder first.  A
   plug job holds the only worker while the lanes fill, so the enqueue
   order is fully deterministic. *)
let test_fairness_round_robin () =
  let released = Atomic.make false in
  let plug_running = Atomic.make false in
  let order_mu = Mutex.create () in
  let order = ref [] in
  let run ~stopping:_ = function
    | `Plug ->
        Atomic.set plug_running true;
        while not (Atomic.get released) do
          Thread.delay 0.002
        done
    | `Tag client ->
        Mutex.lock order_mu;
        order := client :: !order;
        Mutex.unlock order_mu
  in
  let disp =
    Dispatch.create { Dispatch.default_config with Dispatch.d_workers = 1 } run
  in
  let await cond what =
    let t_end = Unix.gettimeofday () +. 10.0 in
    while not (cond ()) do
      if Unix.gettimeofday () > t_end then
        Alcotest.failf "timed out waiting for %s" what;
      Thread.delay 0.002
    done
  in
  let submitters = ref [] in
  let submit_tagged client =
    let before = (Dispatch.counters disp).Dispatch.c_submitted in
    let th =
      Thread.create
        (fun () ->
          match Dispatch.submit ~client disp (`Tag client) with
          | Dispatch.Done () -> ()
          | _ -> ())
        ()
    in
    submitters := th :: !submitters;
    (* Serialize enqueue order: the next job is only submitted once this
       one is counted into its lane. *)
    await
      (fun () -> (Dispatch.counters disp).Dispatch.c_submitted > before)
      "submission"
  in
  let plug = Thread.create (fun () -> ignore (Dispatch.submit disp `Plug)) () in
  await (fun () -> Atomic.get plug_running) "the plug job to start";
  (* Client 1 floods; clients 2 and 3 trickle. *)
  List.iter submit_tagged [ 1; 1; 1; 1; 1; 1; 2; 2; 3; 3 ];
  Alcotest.(check bool) "three lanes seen at once" true
    ((Dispatch.counters disp).Dispatch.c_peak_lanes >= 3);
  Atomic.set released true;
  Thread.join plug;
  List.iter Thread.join !submitters;
  Alcotest.(check (list int))
    "lanes rotate: one job per client per round"
    [ 1; 2; 3; 1; 2; 3; 1; 1; 1; 1 ]
    (List.rev !order);
  ignore (Dispatch.drain disp)

(* The delta op over a real socket: a base compile announces its manifest
   key, a warm compile against that key reuses transports, and the
   schedule fingerprint equals the cold compile's — the warm≡cold witness
   asserted over the wire. *)
let test_delta_over_socket () =
  let dir = fresh_dir () in
  let srv = Transport.start (config ~workers:1 ~cache_dir:dir ()) in
  let c = connect srv in
  let base_text = good_text ~seed:931 () in
  let delta_field k line =
    Option.bind
      (Option.bind (Diag.Json.mem "delta" (json line)) (Diag.Json.mem k))
      Diag.Json.str
  in
  let delta_int k line =
    Option.bind
      (Option.bind (Diag.Json.mem "delta" (json line)) (Diag.Json.mem k))
      Diag.Json.int
  in
  send c
    (Printf.sprintf {|{"op":"delta","text":%s,"id":"base"}|}
       (Diag.Json.string base_text));
  let r0 = recv_exn c in
  Alcotest.(check string) "delta record schema" "msched-delta-1" (schema r0);
  Alcotest.(check int) "base compile succeeds" 0 (exit_code r0);
  Alcotest.(check (option string)) "no base requested" (Some "none")
    (str_mem "base" r0);
  let key =
    match str_mem "key" r0 with
    | Some k -> k
    | None -> Alcotest.fail "base compile announced no manifest key"
  in
  let edited =
    let nl =
      match Serial.of_string base_text with
      | Ok nl -> nl
      | Error m -> Alcotest.failf "base text does not parse: %s" m
    in
    let rec scan seed =
      if seed > 8 then Alcotest.fail "no applicable domain-flip edit"
      else
        match Msched_delta.Edit.apply ~seed Msched_delta.Edit.Flip_domain nl with
        | Ok (nl', _) -> Serial.to_string nl'
        | Error _ -> scan (seed + 1)
    in
    scan 0
  in
  send c
    (Printf.sprintf {|{"op":"delta","text":%s,"id":"cold"}|}
       (Diag.Json.string edited));
  let cold = recv_exn c in
  Alcotest.(check int) "cold compile succeeds" 0 (exit_code cold);
  send c
    (Printf.sprintf {|{"op":"delta","text":%s,"base":%s,"id":"warm"}|}
       (Diag.Json.string edited) (Diag.Json.string key));
  let warm = recv_exn c in
  Alcotest.(check int) "warm compile succeeds" 0 (exit_code warm);
  Alcotest.(check (option string)) "manifest loaded warm" (Some "warm")
    (str_mem "base" warm);
  Alcotest.(check (option string)) "warm schedule == cold schedule"
    (delta_field "schedule_fp" cold)
    (delta_field "schedule_fp" warm);
  Alcotest.(check bool) "cold request reused nothing" true
    (delta_int "reused" cold = Some 0);
  (* A bogus base key is a miss, not an error: the compile falls cold. *)
  send c
    (Printf.sprintf {|{"op":"delta","text":%s,"base":"no-such-key"}|}
       (Diag.Json.string edited));
  let missed = recv_exn c in
  Alcotest.(check (option string)) "unknown key misses" (Some "miss")
    (str_mem "base" missed);
  Alcotest.(check (option string)) "missed compile still matches cold"
    (delta_field "schedule_fp" cold)
    (delta_field "schedule_fp" missed);
  close c;
  let s = drain_and_wait srv in
  Alcotest.(check bool) "clean drain" true s.Transport.sm_clean

let suite =
  [
    Alcotest.test_case "serve: round-trip over a unix socket" `Quick
      test_roundtrip_unix;
    Alcotest.test_case "serve: concurrent clients over tcp" `Slow
      test_concurrent_clients;
    Alcotest.test_case "serve: --compile-jobs answers byte-identical bodies"
      `Quick test_compile_jobs_differential;
    Alcotest.test_case "serve: deadlines + hung-worker replacement" `Quick
      test_timeout_and_hung_replacement;
    Alcotest.test_case "serve: worker crash is reaped and replaced" `Quick
      test_crash_recovery;
    Alcotest.test_case "serve: full queue sheds with E_OVERLOAD" `Quick
      test_overload_shed;
    Alcotest.test_case "serve: block policy still honours deadlines" `Quick
      test_overload_block_deadline;
    Alcotest.test_case "serve: malformed and oversized frames" `Quick
      test_malformed_frames;
    Alcotest.test_case "serve: mid-request client disconnect" `Quick
      test_mid_request_disconnect;
    Alcotest.test_case "serve: drain loses zero in-flight responses" `Quick
      test_drain_zero_lost;
    Alcotest.test_case "serve: abort escalation unsticks a hung drain" `Quick
      test_abort_during_drain;
    Alcotest.test_case "serve: cache LRU gc under live traffic" `Quick
      test_cache_gc_under_serve;
    Alcotest.test_case "serve: client lanes drain round-robin" `Quick
      test_fairness_round_robin;
    Alcotest.test_case "serve: delta op warm == cold over the wire" `Quick
      test_delta_over_socket;
  ]
