open Msched_netlist
module B = Netlist.Builder

let test_levels () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i1 = B.add_input b ~domain:d () in
  let i2 = B.add_input b ~domain:d () in
  let g1 = B.add_gate b Cell.And [ i1; i2 ] in
  let g2 = B.add_gate b Cell.Or [ g1; i1 ] in
  let q = B.add_flip_flop b ~data:g2 ~clock:(Cell.Dom_clock d) () in
  let g3 = B.add_gate b Cell.Not [ q ] in
  let nl = B.finalize b in
  let lv = Levelize.compute_exn nl in
  Alcotest.(check int) "input level" 0 (Levelize.net_level lv i1);
  Alcotest.(check int) "g1 level" 1 (Levelize.net_level lv g1);
  Alcotest.(check int) "g2 level" 2 (Levelize.net_level lv g2);
  Alcotest.(check int) "ff output level" 0 (Levelize.net_level lv q);
  Alcotest.(check int) "g3 level" 1 (Levelize.net_level lv g3);
  Alcotest.(check int) "max level" 2 (Levelize.max_level lv)

let test_topo_order () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~domain:d () in
  let g1 = B.add_gate b Cell.Not [ i ] in
  let g2 = B.add_gate b Cell.Not [ g1 ] in
  let (_ : Ids.Net.t) = B.add_gate b Cell.Not [ g2 ] in
  let nl = B.finalize b in
  let lv = Levelize.compute_exn nl in
  let order = Array.to_list (Levelize.topo_cells lv) in
  Alcotest.(check int) "three comb cells" 3 (List.length order);
  (* Each cell appears after its combinational inputs' drivers. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun cid ->
      let c = Netlist.cell nl cid in
      List.iter
        (fun n ->
          let drv = (Netlist.driver nl n).Cell.id in
          if Levelize.is_comb_through (Netlist.driver nl n) then
            Alcotest.(check bool)
              "input driver precedes" true
              (Hashtbl.mem seen (Ids.Cell.to_int drv)))
        (Levelize.comb_inputs nl c);
      Hashtbl.replace seen (Ids.Cell.to_int cid) ())
    order

let test_cycle_detected () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~domain:d () in
  let loop = B.fresh_net b () in
  let g1 = B.add_gate b Cell.And [ i; loop ] in
  B.add_gate_to b Cell.Not [ g1 ] ~output:loop;
  let nl = B.finalize b in
  match Levelize.compute nl with
  | Error cycle -> Alcotest.(check bool) "cycle nonempty" true (cycle <> [])
  | Ok _ -> Alcotest.fail "expected a combinational cycle"

let test_latch_feedback_is_not_a_cycle () =
  (* A loop broken by a latch must levelize fine. *)
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let gate = B.add_input b ~domain:d () in
  let loop = B.fresh_net b () in
  let g1 = B.add_gate b Cell.Not [ loop ] in
  B.add_latch_to b ~data:g1 ~gate:(Cell.Net_trigger gate) ~output:loop ();
  let nl = B.finalize b in
  match Levelize.compute nl with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "latch feedback should not be a comb cycle"

let test_ram_read_path_is_comb () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~domain:d () in
  let addr = B.add_gate b Cell.Not [ i ] in
  let rdata =
    B.add_ram b ~addr_bits:1 ~write_enable:i ~write_data:i ~write_addr:[ i ]
      ~read_addr:[ addr ] ~clock:(Cell.Dom_clock d) ()
  in
  let nl = B.finalize b in
  let lv = Levelize.compute_exn nl in
  (* rdata is one level past the read address. *)
  Alcotest.(check int) "ram read level" 2 (Levelize.net_level lv rdata)

let test_comb_pin_classification () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~domain:d () in
  let (_ : Ids.Net.t) =
    B.add_ram b ~addr_bits:1 ~write_enable:i ~write_data:i ~write_addr:[ i ]
      ~read_addr:[ i ] ~clock:(Cell.Dom_clock d) ()
  in
  let nl = B.finalize b in
  let ram =
    Netlist.fold_cells nl ~init:None ~f:(fun acc c ->
        match c.Cell.kind with Cell.Ram _ -> Some c | _ -> acc)
    |> Option.get
  in
  Alcotest.(check bool) "we pin not comb" false
    (Levelize.is_comb_pin ram (Netlist.Data_pin 0));
  Alcotest.(check bool) "waddr pin not comb" false
    (Levelize.is_comb_pin ram (Netlist.Data_pin 2));
  Alcotest.(check bool) "raddr pin comb" true
    (Levelize.is_comb_pin ram (Netlist.Data_pin 3))

let suite =
  [
    Alcotest.test_case "levels" `Quick test_levels;
    Alcotest.test_case "topo order" `Quick test_topo_order;
    Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
    Alcotest.test_case "latch feedback ok" `Quick test_latch_feedback_is_not_a_cycle;
    Alcotest.test_case "ram read path comb" `Quick test_ram_read_path_is_comb;
    Alcotest.test_case "comb pin classification" `Quick test_comb_pin_classification;
  ]
