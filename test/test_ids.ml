open Msched_netlist

let test_roundtrip () =
  for i = 0 to 100 do
    Alcotest.(check int) "roundtrip" i (Ids.Net.to_int (Ids.Net.of_int i))
  done

let test_negative_rejected () =
  Alcotest.check_raises "negative id" (Invalid_argument "n id must be non-negative")
    (fun () -> ignore (Ids.Net.of_int (-1)))

let test_equal_compare () =
  let a = Ids.Cell.of_int 3 and b = Ids.Cell.of_int 4 in
  Alcotest.(check bool) "equal self" true (Ids.Cell.equal a a);
  Alcotest.(check bool) "not equal" false (Ids.Cell.equal a b);
  Alcotest.(check bool) "compare" true (Ids.Cell.compare a b < 0)

let test_set_map () =
  let s =
    Ids.Dom.Set.of_list [ Ids.Dom.of_int 2; Ids.Dom.of_int 0; Ids.Dom.of_int 2 ]
  in
  Alcotest.(check int) "set dedups" 2 (Ids.Dom.Set.cardinal s);
  let m = Ids.Dom.Map.add (Ids.Dom.of_int 1) "one" Ids.Dom.Map.empty in
  Alcotest.(check (option string))
    "map find" (Some "one")
    (Ids.Dom.Map.find_opt (Ids.Dom.of_int 1) m)

let test_tbl () =
  let tbl = Ids.Block.Tbl.create 4 in
  Ids.Block.Tbl.replace tbl (Ids.Block.of_int 7) "seven";
  Alcotest.(check (option string))
    "tbl find" (Some "seven")
    (Ids.Block.Tbl.find_opt tbl (Ids.Block.of_int 7));
  Alcotest.(check (option string))
    "tbl miss" None
    (Ids.Block.Tbl.find_opt tbl (Ids.Block.of_int 8))

let test_pp () =
  Alcotest.(check string) "pp net" "n5" (Format.asprintf "%a" Ids.Net.pp (Ids.Net.of_int 5));
  Alcotest.(check string) "pp fpga" "f0" (Format.asprintf "%a" Ids.Fpga.pp (Ids.Fpga.of_int 0))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
    Alcotest.test_case "equal/compare" `Quick test_equal_compare;
    Alcotest.test_case "set/map" `Quick test_set_map;
    Alcotest.test_case "tbl" `Quick test_tbl;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
