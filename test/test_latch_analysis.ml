open Msched_netlist
module B = Netlist.Builder
module Partition = Msched_partition.Partition
module LA = Msched_mts.Latch_analysis

(* Two-block design: block 0 holds the sources, block 1 an MTS latch with
   distinct data and gate input terminals. *)
let split_latch_design () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let fa = B.add_flip_flop b ~name:"fa" ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let fb = B.add_flip_flop b ~name:"fb" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  (* Block 1 contents: data logic (2 levels), gate logic (1 level), latch. *)
  let dmix = B.add_gate b ~name:"dmix" Cell.Xor [ fa; fb ] in
  let data = B.add_gate b ~name:"data" Cell.Buf [ dmix ] in
  let gate = B.add_gate b ~name:"gate" Cell.Or [ fa; fb ] in
  let q = B.add_latch b ~name:"mtsl" ~data ~gate:(Cell.Net_trigger gate) () in
  let s = B.add_flip_flop b ~name:"s" ~data:q ~clock:(Cell.Dom_clock d0) () in
  let (_ : Ids.Cell.t) = B.add_output b ~name:"o" s in
  let nl = B.finalize b in
  let block_of (c : Cell.t) =
    match c.Cell.name with
    | "dmix" | "data" | "gate" | "mtsl" | "s" | "o" -> 1
    | _ -> 0
  in
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (block_of (Netlist.cell nl (Ids.Cell.of_int i))))
  in
  let part = Partition.of_assignment nl assignment in
  (nl, part, fa, fb, q)

let find_cell nl name =
  Netlist.fold_cells nl ~init:None ~f:(fun acc c ->
      if c.Cell.name = name then Some c else acc)
  |> Option.get

let test_terminal_sets () =
  let nl, part, fa, fb, _ = split_latch_design () in
  let la = LA.analyze_block part (Ids.Block.of_int 1) in
  Alcotest.(check int) "two input nets" 2 (List.length la.LA.input_nets);
  Alcotest.(check int) "one group" 1 (Array.length la.LA.groups);
  let g = la.LA.groups.(0) in
  let latch = find_cell nl "mtsl" in
  Alcotest.(check int) "one latch" 1 (List.length g.LA.latches);
  Alcotest.(check bool) "the latch" true
    (List.exists (Ids.Cell.equal latch.Cell.id) g.LA.latches);
  (* fa and fb both reach data (through dmix/data: 2 levels) and gate
     (through gate: 1 level) — they are GD terminals. *)
  List.iter
    (fun src ->
      let dep =
        List.find
          (fun (d : LA.dep) -> Ids.Net.equal d.LA.dep_origin src)
          g.LA.input_deps
      in
      (match dep.LA.dep_pd.LA.to_data with
      | Some dd ->
          Alcotest.(check int) "data delay" 2 dd.Traverse.dmax
      | None -> Alcotest.fail "expected data path");
      match dep.LA.dep_pd.LA.to_gate with
      | Some gd -> Alcotest.(check int) "gate delay" 1 gd.Traverse.dmax
      | None -> Alcotest.fail "expected gate path")
    [ fa; fb ]

let test_origin_deadlines () =
  let nl, part, _, _, q = split_latch_design () in
  let la = LA.analyze_block part (Ids.Block.of_int 1) in
  (* The latch output is an origin with a frame-end deadline: it feeds the
     FF "s" directly (delay 0) and the primary output via s... only the FF
     data pin counts here, at delay 0. *)
  let info = Ids.Net.Tbl.find la.LA.origins q in
  Alcotest.(check (option int)) "deadline" (Some 0) info.LA.deadline_delay;
  ignore nl

let test_d_type_merge () =
  (* One input reaching the data pins of two latches merges them. *)
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let g0 = B.add_flip_flop b ~name:"src" ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let gate_src = B.add_flip_flop b ~name:"gsrc" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  let shared = B.add_gate b ~name:"shared" Cell.Buf [ g0 ] in
  let gate = B.add_gate b ~name:"gate" Cell.Or [ gate_src; g0 ] in
  let q1 = B.add_latch b ~name:"l1" ~data:shared ~gate:(Cell.Net_trigger gate) () in
  let q2 = B.add_latch b ~name:"l2" ~data:shared ~gate:(Cell.Net_trigger gate) () in
  let s1 = B.add_flip_flop b ~data:q1 ~clock:(Cell.Dom_clock d0) () in
  let s2 = B.add_flip_flop b ~data:q2 ~clock:(Cell.Dom_clock d1) () in
  let (_ : Ids.Cell.t) = B.add_output b s1 in
  let (_ : Ids.Cell.t) = B.add_output b s2 in
  let nl = B.finalize b in
  let latch_block (c : Cell.t) =
    match c.Cell.name with
    | "shared" | "gate" | "l1" | "l2" -> 1
    | _ -> 0
  in
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (latch_block (Netlist.cell nl (Ids.Cell.of_int i))))
  in
  let part = Partition.of_assignment nl assignment in
  let la = LA.analyze_block part (Ids.Block.of_int 1) in
  Alcotest.(check int) "merged into one group" 1 (Array.length la.LA.groups);
  Alcotest.(check int) "two latches in it" 2
    (List.length la.LA.groups.(0).LA.latches)

let test_g_type_order () =
  (* i reaches gate of l_parent and data of l_child: the parent's group is
     processed first (appears earlier). *)
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let i2 = B.add_input b ~domain:d1 () in
  let x = B.add_flip_flop b ~name:"x" ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let y = B.add_flip_flop b ~name:"y" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  let z = B.add_flip_flop b ~name:"z" ~data:i2 ~clock:(Cell.Dom_clock d1) () in
  (* x reaches: data of child, gate of parent — and nothing else, so the
     only G-type edge is parent-before-child. *)
  let child_gate = B.add_gate b ~name:"cg" Cell.Or [ z ] in
  let parent_gate = B.add_gate b ~name:"pg" Cell.Or [ x ] in
  let parent_data = B.add_gate b ~name:"pd" Cell.Buf [ y ] in
  let qp =
    B.add_latch b ~name:"parent" ~data:parent_data
      ~gate:(Cell.Net_trigger parent_gate) ()
  in
  let qc =
    B.add_latch b ~name:"child" ~data:x ~gate:(Cell.Net_trigger child_gate) ()
  in
  let s1 = B.add_flip_flop b ~data:qp ~clock:(Cell.Dom_clock d0) () in
  let s2 = B.add_flip_flop b ~data:qc ~clock:(Cell.Dom_clock d1) () in
  let (_ : Ids.Cell.t) = B.add_output b s1 in
  let (_ : Ids.Cell.t) = B.add_output b s2 in
  let nl = B.finalize b in
  let latch_block (c : Cell.t) =
    match c.Cell.name with
    | "cg" | "pg" | "pd" | "parent" | "child" -> 1
    | _ -> 0
  in
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (latch_block (Netlist.cell nl (Ids.Cell.of_int i))))
  in
  let part = Partition.of_assignment nl assignment in
  let la = LA.analyze_block part (Ids.Block.of_int 1) in
  Alcotest.(check int) "two groups" 2 (Array.length la.LA.groups);
  let parent = find_cell nl "parent" and child = find_cell nl "child" in
  let pos cell =
    let found = ref (-1) in
    Array.iteri
      (fun gi g ->
        if List.exists (Ids.Cell.equal cell) g.LA.latches then found := gi)
      la.LA.groups;
    !found
  in
  Alcotest.(check bool) "parent before child" true
    (pos parent.Cell.id < pos child.Cell.id)

let test_g_cycle_merged () =
  (* Mutual gate/data relationships force a single simultaneous group. *)
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let x = B.add_flip_flop b ~name:"x" ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let y = B.add_flip_flop b ~name:"y" ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  (* x: data of l1, gate of l2; y: data of l2, gate of l1. *)
  let g1 = B.add_gate b ~name:"g1" Cell.Or [ y ] in
  let g2 = B.add_gate b ~name:"g2" Cell.Or [ x ] in
  let q1 = B.add_latch b ~name:"l1" ~data:x ~gate:(Cell.Net_trigger g1) () in
  let q2 = B.add_latch b ~name:"l2" ~data:y ~gate:(Cell.Net_trigger g2) () in
  let s1 = B.add_flip_flop b ~data:q1 ~clock:(Cell.Dom_clock d0) () in
  let s2 = B.add_flip_flop b ~data:q2 ~clock:(Cell.Dom_clock d1) () in
  let (_ : Ids.Cell.t) = B.add_output b s1 in
  let (_ : Ids.Cell.t) = B.add_output b s2 in
  let nl = B.finalize b in
  let latch_block (c : Cell.t) =
    match c.Cell.name with "g1" | "g2" | "l1" | "l2" -> 1 | _ -> 0
  in
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (latch_block (Netlist.cell nl (Ids.Cell.of_int i))))
  in
  let part = Partition.of_assignment nl assignment in
  let la = LA.analyze_block part (Ids.Block.of_int 1) in
  Alcotest.(check int) "cycle merged to one group" 1 (Array.length la.LA.groups);
  Alcotest.(check int) "both latches" 2 (List.length la.LA.groups.(0).LA.latches)

let test_local_settle () =
  let nl, part, _, _, _ = split_latch_design () in
  ignore nl;
  let la = LA.analyze_block part (Ids.Block.of_int 0) in
  (* Block 0 has only sources; local settle exists for FF outputs. *)
  Alcotest.(check bool) "some local settle entries" true
    (Ids.Net.Tbl.length la.LA.local_max_settle > 0)

let suite =
  [
    Alcotest.test_case "terminal sets + delays" `Quick test_terminal_sets;
    Alcotest.test_case "origin deadlines" `Quick test_origin_deadlines;
    Alcotest.test_case "d-type merge" `Quick test_d_type_merge;
    Alcotest.test_case "g-type order" `Quick test_g_type_order;
    Alcotest.test_case "g-cycle merged" `Quick test_g_cycle_merged;
    Alcotest.test_case "local settle" `Quick test_local_settle;
  ]
