module Clock = Msched_clocking.Clock
module Edges = Msched_clocking.Edges
module Async_gen = Msched_clocking.Async_gen
module Netlist = Msched_netlist.Netlist
module Ids = Msched_netlist.Ids
module Tiers = Msched_route.Tiers
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen

let d0 = Ids.Dom.of_int 0
let d1 = Ids.Dom.of_int 1

let test_frames_grouping () =
  let c0 = Clock.make d0 ~name:"a" ~period_ps:1000 ~phase_ps:0 in
  let c1 = Clock.make d1 ~name:"b" ~period_ps:1300 ~phase_ps:100 in
  let edges = Edges.stream [ c0; c1 ] ~horizon_ps:10_000 in
  let frames = Edges.frames edges ~frame_ps:400 in
  (* Every edge lands in the window of its timestamp. *)
  List.iter
    (fun frame ->
      match frame with
      | [] -> Alcotest.fail "empty frame emitted"
      | first :: _ ->
          let k = first.Edges.time_ps / 400 in
          List.iter
            (fun e -> Alcotest.(check int) "same window" k (e.Edges.time_ps / 400))
            frame)
    frames;
  (* All edges preserved, in order. *)
  let flat = List.concat frames in
  Alcotest.(check int) "edge count" (List.length edges) (List.length flat);
  List.iter2
    (fun a b -> Alcotest.(check int) "order" a.Edges.time_ps b.Edges.time_ps)
    edges flat

let test_frames_rejects_bad_length () =
  Alcotest.check_raises "frame_ps 0" (Invalid_argument "Edges.frames: frame_ps")
    (fun () -> ignore (Edges.frames [] ~frame_ps:0))

let test_max_edges_diagnostic () =
  let c0 = Clock.make d0 ~name:"a" ~period_ps:1000 ~phase_ps:0 in
  let edges = Edges.stream [ c0 ] ~horizon_ps:5_000 in
  (* Window of 2500ps holds multiple rising edges of the same clock. *)
  let coarse = Edges.frames edges ~frame_ps:2500 in
  Alcotest.(check bool) "overrun detected" true
    (Edges.max_edges_per_domain_in_frame coarse > 1);
  let fine = Edges.frames edges ~frame_ps:400 in
  Alcotest.(check int) "fine ok" 1 (Edges.max_edges_per_domain_in_frame fine)

let compile (d : Design_gen.design) ~weight =
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = weight }
  in
  let prepared = Msched.Compile.prepare ~options:copts d.Design_gen.netlist in
  (prepared, Msched.Compile.route prepared Tiers.default_options)

let test_single_edge_frames_equal_edge_mode () =
  let d = Design_gen.fig3_latch () in
  let prepared, sched = compile d ~weight:4 in
  let clocks = Async_gen.clocks ~seed:5 (Netlist.domains prepared.Msched.Compile.netlist) in
  let edges = Edges.stream clocks ~horizon_ps:200_000 in
  let r_edges =
    Fidelity.compare_edges prepared.Msched.Compile.placement sched ~edges ()
  in
  let r_frames =
    Fidelity.compare_frames prepared.Msched.Compile.placement sched
      ~frames:(List.map (fun e -> [ e ]) edges)
      ()
  in
  Alcotest.(check int) "same frames" r_edges.Fidelity.frames r_frames.Fidelity.frames;
  Alcotest.(check int) "same mismatches" r_edges.Fidelity.state_mismatches
    r_frames.Fidelity.state_mismatches;
  Alcotest.(check bool) "both perfect" true
    (Fidelity.perfect r_edges && Fidelity.perfect r_frames)

let test_handshake_multi_edge_frames () =
  (* A correct 2-flop CDC must survive frame quantization: multi-edge frames
     group edges of both domains into single frames. *)
  let d = Design_gen.handshake () in
  let prepared, sched = compile d ~weight:6 in
  let clocks = Async_gen.clocks ~seed:7 (Netlist.domains prepared.Msched.Compile.netlist) in
  let edges = Edges.stream clocks ~horizon_ps:800_000 in
  let frames = Edges.frames edges ~frame_ps:4000 in
  Alcotest.(check int) "no per-domain overrun" 1
    (Edges.max_edges_per_domain_in_frame frames);
  (* There must actually be multi-edge frames for the test to mean much. *)
  Alcotest.(check bool) "some multi-edge frames" true
    (List.exists (fun f -> List.length f > 1) frames);
  let r =
    Fidelity.compare_frames prepared.Msched.Compile.placement sched ~frames ()
  in
  Alcotest.(check bool)
    (Format.asprintf "handshake quantization-proof: %a" Fidelity.pp_report r)
    true (Fidelity.perfect r)

let test_single_domain_multi_edge_frames_exact () =
  (* With one domain per frame window there is no cross-domain race, so even
     multi-edge frames (rise+fall of one clock) must match exactly. *)
  let d = Design_gen.fig1 () in
  let prepared, sched = compile d ~weight:4 in
  let clocks = Async_gen.clocks ~seed:11 (Netlist.domains prepared.Msched.Compile.netlist) in
  let edges = Edges.stream clocks ~horizon_ps:300_000 in
  (* Keep only domain-0 edges: rise+fall pairs can then share frames. *)
  let edges0 = List.filter (fun e -> Ids.Dom.to_int e.Edges.domain = 0) edges in
  let frames = Edges.frames edges0 ~frame_ps:12_000 in
  let r =
    Fidelity.compare_frames prepared.Msched.Compile.placement sched ~frames ()
  in
  Alcotest.(check bool)
    (Format.asprintf "single-domain frames exact: %a" Fidelity.pp_report r)
    true
    (r.Fidelity.state_mismatches = 0 && r.Fidelity.ram_mismatches = 0)

let suite =
  [
    Alcotest.test_case "frames grouping" `Quick test_frames_grouping;
    Alcotest.test_case "frames rejects bad length" `Quick test_frames_rejects_bad_length;
    Alcotest.test_case "max edges diagnostic" `Quick test_max_edges_diagnostic;
    Alcotest.test_case "single-edge frames = edge mode" `Quick
      test_single_edge_frames_equal_edge_mode;
    Alcotest.test_case "handshake multi-edge frames" `Quick
      test_handshake_multi_edge_frames;
    Alcotest.test_case "single-domain multi-edge exact" `Quick
      test_single_domain_multi_edge_frames_exact;
  ]
