open Msched_netlist
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen
module Verify = Msched_check.Verify

let compile ?(weight = 24) (d : Design_gen.design) =
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = weight }
  in
  Msched.Compile.prepare ~options:copts d.Design_gen.netlist

let run prepared opts ~seed ~horizon =
  let sched = Msched.Compile.route prepared opts in
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
    ~horizon_ps:horizon ~seed ()

let check_perfect name prepared opts =
  let r = run prepared opts ~seed:42 ~horizon:250_000 in
  Alcotest.(check bool)
    (Printf.sprintf "%s perfect: %s" name (Format.asprintf "%a" Fidelity.pp_report r))
    true (Fidelity.perfect r)

let test_fig1_all_modes () =
  let prepared = compile ~weight:4 (Design_gen.fig1 ()) in
  check_perfect "fig1 virtual" prepared Tiers.default_options;
  check_perfect "fig1 hard" prepared Tiers.hard_options

let test_fig3_virtual_and_hard () =
  let prepared = compile ~weight:4 (Design_gen.fig3_latch ()) in
  check_perfect "fig3 virtual" prepared Tiers.default_options;
  check_perfect "fig3 hard" prepared Tiers.hard_options

let test_handshake_all_modes () =
  let prepared = compile ~weight:6 (Design_gen.handshake ()) in
  check_perfect "handshake virtual" prepared Tiers.default_options;
  check_perfect "handshake hard" prepared Tiers.hard_options;
  (* A correct 2-flop CDC survives even naive routing. *)
  check_perfect "handshake naive" prepared Tiers.naive_options

let test_random_mts_virtual_perfect () =
  let d = Design_gen.random_multidomain ~seed:77 ~domains:3 ~modules:30 ~mts_fraction:0.25 () in
  let prepared = compile ~weight:32 d in
  check_perfect "random virtual" prepared Tiers.default_options;
  check_perfect "random hard" prepared Tiers.hard_options

let test_memory_design_virtual_perfect () =
  let d = Design_gen.design2_like ~scale:0.03 () in
  let prepared = compile ~weight:64 d in
  check_perfect "memory virtual" prepared Tiers.default_options

let test_naive_breaks_mts_designs () =
  (* Over several seeds, naive scheduling must corrupt at least one
     MTS-heavy design (statistically it corrupts nearly all). *)
  let broken = ref 0 in
  List.iter
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:30
          ~mts_fraction:0.3 ()
      in
      let prepared = compile ~weight:32 d in
      let r = run prepared Tiers.naive_options ~seed ~horizon:250_000 in
      if not (Fidelity.perfect r) then incr broken)
    [ 301; 302; 303 ];
  Alcotest.(check bool) "naive corrupts MTS designs" true (!broken >= 1)

let test_verifier_emulator_hold_agreement () =
  (* The static verifier and the emulator must agree on hold hazards: zero
     on the TIERS schedule, and both non-zero once its hold-offs are
     stripped — with the verifier naming exactly the cells whose hold-off
     records were dropped. *)
  let d =
    Design_gen.random_multidomain ~seed:72 ~domains:3 ~modules:30
      ~mts_fraction:0.3 ()
  in
  let prepared = compile ~weight:32 d in
  let sched = Msched.Compile.route prepared Tiers.default_options in
  Alcotest.(check bool) "design has hold-offs" true (sched.Schedule.holdoffs <> []);
  let static_cells s =
    Ids.Cell.Set.cardinal
      (Verify.hold_safety_cells (Msched.Compile.verify_schedule prepared s))
  in
  let dynamic_hazards s =
    let clocks =
      Async_gen.clocks ~seed:72 (Netlist.domains prepared.Msched.Compile.netlist)
    in
    let r =
      Fidelity.compare_run prepared.Msched.Compile.placement s ~clocks
        ~horizon_ps:250_000 ~seed:72 ()
    in
    r.Fidelity.violations.Msched_sim.Emu_sim.hold_hazards
  in
  Alcotest.(check int) "clean schedule: verifier flags no cells" 0
    (static_cells sched);
  Alcotest.(check int) "clean schedule: emulator sees no hazards" 0
    (dynamic_hazards sched);
  let broken = { sched with Schedule.holdoffs = [] } in
  Alcotest.(check int) "verifier flags every stripped hold-off cell"
    (List.length sched.Schedule.holdoffs)
    (static_cells broken);
  Alcotest.(check bool) "emulator also sees hazards" true
    (dynamic_hazards broken > 0)

let test_report_counts () =
  let prepared = compile ~weight:4 (Design_gen.fig1 ()) in
  let r = run prepared Tiers.default_options ~seed:1 ~horizon:100_000 in
  Alcotest.(check bool) "frames counted" true (r.Fidelity.frames > 10);
  Alcotest.(check (option int)) "no first mismatch" None r.Fidelity.first_mismatch_frame

let prop_virtual_always_faithful =
  QCheck.Test.make ~name:"MTS virtual scheduling is always faithful" ~count:6
    QCheck.(int_range 500 900)
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:2 ~modules:20
          ~mts_fraction:0.3 ()
      in
      let prepared = compile ~weight:32 d in
      let r = run prepared Tiers.default_options ~seed ~horizon:150_000 in
      Fidelity.perfect r)

let prop_extensions_faithful =
  (* Designs exercising the future-work extensions: MTS flip-flops (rewritten
     to master/slave pairs) and RAMs with multi-domain write clocks. *)
  QCheck.Test.make ~name:"MTS flip-flops and cross-written RAMs are faithful"
    ~count:10
    QCheck.(int_range 100 1999)
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:15
          ~mts_fraction:0.2 ~mts_ffs:3 ~xwrite_rams:2 ()
      in
      let prepared = compile ~weight:32 d in
      let r = run prepared Tiers.default_options ~seed ~horizon:150_000 in
      Fidelity.perfect r)

let suite =
  [
    Alcotest.test_case "fig1 all modes" `Quick test_fig1_all_modes;
    Alcotest.test_case "fig3 virtual+hard" `Quick test_fig3_virtual_and_hard;
    Alcotest.test_case "handshake all modes" `Quick test_handshake_all_modes;
    Alcotest.test_case "random virtual/hard perfect" `Slow test_random_mts_virtual_perfect;
    Alcotest.test_case "memory design perfect" `Slow test_memory_design_virtual_perfect;
    Alcotest.test_case "naive breaks MTS designs" `Slow test_naive_breaks_mts_designs;
    Alcotest.test_case "report counts" `Quick test_report_counts;
    Alcotest.test_case "verifier/emulator hold agreement" `Slow
      test_verifier_emulator_hold_agreement;
    QCheck_alcotest.to_alcotest prop_virtual_always_faithful;
    QCheck_alcotest.to_alcotest prop_extensions_faithful;
  ]
