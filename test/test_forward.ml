module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Async_gen = Msched_clocking.Async_gen
module Netlist = Msched_netlist.Netlist
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen

let prepared_of ?(weight = 32) (d : Design_gen.design) =
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = weight }
  in
  Msched.Compile.prepare ~options:copts d.Design_gen.netlist

let fidelity prepared sched ~seed =
  let clocks =
    Async_gen.clocks ~seed (Netlist.domains prepared.Msched.Compile.netlist)
  in
  Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
    ~horizon_ps:200_000 ~seed ()

let test_forward_faithful () =
  List.iter
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:25
          ~mts_fraction:0.3 ()
      in
      let prepared = prepared_of d in
      let sched = Msched.Compile.route_forward prepared Tiers.default_options in
      let r = fidelity prepared sched ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d faithful: %s" seed
           (Format.asprintf "%a" Fidelity.pp_report r))
        true (Fidelity.perfect r))
    [ 41; 42; 43 ]

let test_forward_fig_designs () =
  List.iter
    (fun (d : Design_gen.design) ->
      let prepared = prepared_of ~weight:4 d in
      let sched = Msched.Compile.route_forward prepared Tiers.default_options in
      let r = fidelity prepared sched ~seed:5 in
      Alcotest.(check bool) (d.Design_gen.design_label ^ " faithful") true
        (Fidelity.perfect r))
    [ Design_gen.fig1 (); Design_gen.fig3_latch () ]

let test_forward_departure_after_settle () =
  let d =
    Design_gen.random_multidomain ~seed:44 ~domains:2 ~modules:20 ~mts_fraction:0.2 ()
  in
  let prepared = prepared_of d in
  let sched = Msched.Compile.route_forward prepared Tiers.default_options in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      List.iter
        (fun (tr : Schedule.transport) ->
          Alcotest.(check bool) "dep >= 0" true (tr.Schedule.tr_fwd_dep >= 0);
          Alcotest.(check bool) "arr after dep" true
            (tr.Schedule.tr_fwd_arr > tr.Schedule.tr_fwd_dep);
          Alcotest.(check bool) "arr within frame" true
            (tr.Schedule.tr_fwd_arr <= sched.Schedule.length))
        ls.Schedule.ls_transports)
    sched.Schedule.link_scheds

let test_forward_equalize_aligns_arrivals () =
  let d =
    Design_gen.random_multidomain ~seed:45 ~domains:3 ~modules:25 ~mts_fraction:0.3 ()
  in
  let prepared = prepared_of d in
  let sched = Msched.Compile.route_forward prepared Tiers.default_options in
  let da = prepared.Msched.Compile.analysis in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      if
        Msched_mts.Domain_analysis.is_multi_transition da
          ls.Schedule.ls_link.Msched_route.Link.net
      then
        match ls.Schedule.ls_transports with
        | [] | [ _ ] -> ()
        | first :: rest ->
            List.iter
              (fun (tr : Schedule.transport) ->
                Alcotest.(check int) "aligned arrival" first.Schedule.tr_fwd_arr
                  tr.Schedule.tr_fwd_arr)
              rest)
    sched.Schedule.link_scheds

let test_hard_mode_unsupported () =
  let d = Design_gen.fig1 () in
  let prepared = prepared_of ~weight:4 d in
  match Msched.Compile.route_forward prepared Tiers.hard_options with
  | exception Msched_route.Forward.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_duel_reverse_not_worse_usually () =
  (* Reverse scheduling delivers values just-in-time; it should not lose to
     forward scheduling by more than a slot or two on average.  We assert a
     weak bound per-seed: reverse <= forward + 2. *)
  List.iter
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:2 ~modules:25
          ~mts_fraction:0.25 ()
      in
      let prepared = prepared_of d in
      let rev = Msched.Compile.route prepared Tiers.default_options in
      let fwd = Msched.Compile.route_forward prepared Tiers.default_options in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: reverse %d vs forward %d" seed
           rev.Schedule.length fwd.Schedule.length)
        true
        (rev.Schedule.length <= fwd.Schedule.length + 2))
    [ 46; 47; 48 ]

let test_multi_domain_ram_fidelity () =
  (* Shared memory with a multi-domain write clock: the future-work
     extension must emulate faithfully under both schedulers. *)
  let b = Msched_netlist.Netlist.Builder.create ~design_name:"shared_ram" () in
  let module B = Msched_netlist.Netlist.Builder in
  let module Cell = Msched_netlist.Cell in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let q0 = B.add_flip_flop b ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let q1 = B.add_flip_flop b ~data:i1 ~clock:(Cell.Dom_clock d1) () in
  (* Race-free multi-domain write clock: one signal per domain. *)
  let wclk = B.add_gate b Cell.Or [ q0; q1 ] in
  let wdata = B.add_flip_flop b ~data:q0 ~clock:(Cell.Dom_clock d0) () in
  let waddr = B.add_flip_flop b ~data:q1 ~clock:(Cell.Dom_clock d1) () in
  let raddr = B.add_flip_flop b ~data:waddr ~clock:(Cell.Dom_clock d1) () in
  let we = B.add_flip_flop b ~data:i0 ~clock:(Cell.Dom_clock d0) () in
  let rdata =
    B.add_ram b ~addr_bits:1 ~write_enable:we ~write_data:wdata
      ~write_addr:[ waddr ] ~read_addr:[ raddr ]
      ~clock:(Cell.Net_trigger wclk) ()
  in
  let s0 = B.add_flip_flop b ~data:rdata ~clock:(Cell.Dom_clock d0) () in
  let s1 = B.add_flip_flop b ~data:rdata ~clock:(Cell.Dom_clock d1) () in
  let (_ : Msched_netlist.Ids.Cell.t) = B.add_output b s0 in
  let (_ : Msched_netlist.Ids.Cell.t) = B.add_output b s1 in
  let nl = B.finalize b in
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = 4 }
  in
  let prepared = Msched.Compile.prepare ~options:copts nl in
  List.iter
    (fun (label, sched) ->
      let r = fidelity prepared sched ~seed:9 in
      Alcotest.(check bool)
        (label ^ ": " ^ Format.asprintf "%a" Fidelity.pp_report r)
        true (Fidelity.perfect r))
    [
      ("reverse", Msched.Compile.route prepared Tiers.default_options);
      ("forward", Msched.Compile.route_forward prepared Tiers.default_options);
    ]

let suite =
  [
    Alcotest.test_case "forward faithful" `Slow test_forward_faithful;
    Alcotest.test_case "forward fig designs" `Quick test_forward_fig_designs;
    Alcotest.test_case "departure after settle" `Quick test_forward_departure_after_settle;
    Alcotest.test_case "equalize aligns arrivals" `Quick
      test_forward_equalize_aligns_arrivals;
    Alcotest.test_case "hard mode unsupported" `Quick test_hard_mode_unsupported;
    Alcotest.test_case "scheduler duel" `Slow test_duel_reverse_not_worse_usually;
    Alcotest.test_case "multi-domain ram fidelity" `Quick test_multi_domain_ram_fidelity;
  ]
