(* Batch-compile server: the Domain worker pool must be a deterministic
   map (jobs=4 output byte-identical to jobs=1 over a seeded corpus), and
   the process-spanning warm-route cache must round-trip exactly, replay
   equivalently to an in-process warm context, and degrade to cold (with
   the documented E_CACHE warning) on corrupt files. *)

module Ids = Msched_netlist.Ids
module Serial = Msched_netlist.Serial
module Tiers = Msched_route.Tiers
module Reroute = Msched_route.Reroute
module Design_gen = Msched_gen.Design_gen
module Verify = Msched_check.Verify
module Compile = Msched.Compile
module Diag = Msched_diag.Diag
module Pool = Msched_server.Pool
module Cache = Msched_server.Cache
module Manifest = Msched_server.Manifest
module Server = Msched_server.Server

let design ~seed ~modules ~domains =
  (Design_gen.random_multidomain ~seed ~domains ~modules ~mts_fraction:0.25 ())
    .Design_gen.netlist

let design_text ~seed ~modules ~domains =
  Serial.to_string (design ~seed ~modules ~domains)

(* A throwaway directory per test; the suite runs in dune's sandbox. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "msched-server-test-%d-%d" (Unix.getpid ()) !n)
    in
    Cache.ensure_dir dir;
    dir

(* Same congestion point as test_reroute: tight enough that the baseline
   rung fails and the ladder (and hence the reroute ledger) does real
   work. *)
let tight_options =
  {
    Compile.default_options with
    Compile.max_block_weight = 32;
    pins_per_fpga = 24;
    route = { Tiers.default_options with Tiers.max_extra_slots = 0 };
  }

(* ---- Worker pool. ---- *)

let test_pool_deterministic_map () =
  let tasks = Array.init 100 (fun i -> i) in
  let f x = (x * 37) mod 101 in
  let seq, _ = Pool.map ~jobs:1 f tasks in
  let par, stats = Pool.map ~jobs:4 f tasks in
  Alcotest.(check (array int)) "parallel map equals sequential" seq par;
  Alcotest.(check bool) "pool actually ran work" true (stats.Pool.max_inflight >= 1)

let test_pool_propagates_exceptions () =
  let tasks = Array.init 8 (fun i -> i) in
  match Pool.map ~jobs:3 (fun i -> if i = 5 then failwith "boom" else i) tasks with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure m -> Alcotest.(check string) "exception carried" "boom" m

let test_pool_first_exception_wins () =
  (* Several tasks fail; the caller must always see the exception of the
     LOWEST task index, independent of which domain ran it or which domain
     joined first — and with the worker's backtrace, not the join site's.
     Repeat to stress scheduling interleavings. *)
  Printexc.record_backtrace true;
  let tasks = Array.init 32 (fun i -> i) in
  for round = 0 to 19 do
    match
      Pool.map ~jobs:4
        (fun i ->
          (* Backtrace recording is per-domain in OCaml 5: enable it in the
             worker so the pool captures a non-empty trace to re-install. *)
          Printexc.record_backtrace true;
          if i mod 7 = 3 then failwith (Printf.sprintf "task-%d" i) else i)
        tasks
    with
    | _ -> Alcotest.fail "expected a worker exception"
    | exception Failure m ->
        (* Read the backtrace before any other call can clobber the
           per-domain buffer. *)
        let bt = String.trim (Printexc.get_backtrace ()) in
        Alcotest.(check string)
          (Printf.sprintf "round %d: first failing task (index 3) wins" round)
          "task-3" m;
        Alcotest.(check bool)
          (Printf.sprintf "round %d: worker backtrace preserved" round)
          true (bt <> "")
  done

(* ---- Determinism: jobs=4 byte-identical to jobs=1 over >= 30 designs. ---- *)

let corpus () =
  (* 3 size classes x 11 seeds = 33 designs. *)
  let specs = [ (6, 2); (10, 3); (14, 4) ] in
  List.concat_map
    (fun (modules, domains) ->
      List.init 11 (fun i ->
          let seed = 300 + (13 * modules) + i in
          let path = Printf.sprintf "corpus/m%d-d%d-s%d.mnl" modules domains seed in
          (path, design_text ~seed ~modules ~domains)))
    specs

let jobs_of corpus =
  List.mapi (fun index (path, text) -> Server.job_of_text ~index ~path text) corpus

let records batch =
  Array.to_list (Array.map Server.record_json batch.Server.b_results)

let test_batch_determinism () =
  let corpus = corpus () in
  Alcotest.(check bool) "corpus is >= 30 designs" true (List.length corpus >= 30);
  let b1 = Server.run_batch ~jobs:1 Server.default_settings (jobs_of corpus) in
  let b4 = Server.run_batch ~jobs:4 Server.default_settings (jobs_of corpus) in
  (* Byte-identical per-design records: same schedules, lengths, Hz,
     attempt ladders and diagnostics — the whole msched-driver-1 document
     (options.verify is on, so success also means verifier-clean). *)
  List.iteri
    (fun i (r1, r4) ->
      Alcotest.(check string)
        (Printf.sprintf "record %d identical across worker counts" i)
        r1 r4)
    (List.combine (records b1) (records b4));
  (* The corpus must actually compile (not vacuous identical failures). *)
  let compiled =
    Array.fold_left
      (fun n r -> if r.Server.r_exit = 0 then n + 1 else n)
      0 b4.Server.b_results
  in
  Alcotest.(check bool)
    (Printf.sprintf "most designs compiled (%d/%d)" compiled
       (List.length corpus))
    true
    (compiled > List.length corpus / 2);
  Alcotest.(check int) "exit code identical" (Server.exit_code b1)
    (Server.exit_code b4)

(* ---- Reroute cache: round-trip, warm-from-disk, corruption. ---- *)

let test_reroute_round_trip () =
  let nl = design ~seed:517 ~modules:30 ~domains:3 in
  let ctx = Reroute.create () in
  let r =
    Compile.compile_resilient ~options:tight_options ~max_retries:2
      ~fallback_hard:true ~reroute:ctx nl
  in
  Alcotest.(check bool) "congested design recovered" true (Compile.succeeded r);
  Alcotest.(check bool) "ledger non-trivial" true (Reroute.ledger_size ctx > 0);
  let s1 = Reroute.to_json_string ctx in
  match Reroute.of_json_string s1 with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok ctx2 ->
      Alcotest.(check string) "canonical re-serialization byte-identical" s1
        (Reroute.to_json_string ctx2);
      Alcotest.(check int) "ledger size preserved" (Reroute.ledger_size ctx)
        (Reroute.ledger_size ctx2);
      Alcotest.(check int) "history total preserved"
        (Reroute.history_total ctx)
        (Reroute.history_total ctx2);
      Alcotest.(check int) "forced-hard set preserved"
        (Reroute.forced_hard_count ctx)
        (Reroute.forced_hard_count ctx2);
      (* Stats are per-run state: a deserialized context starts clean. *)
      Alcotest.(check int) "stats reset on load" 0 (Reroute.reused ctx2)

let labels r = List.map (fun a -> a.Compile.attempt_label) r.Compile.attempts

let hz r =
  match r.Compile.degradation.Compile.achieved_hz with
  | None -> 0.0
  | Some hz -> hz

let check_clean name r =
  match r.Compile.compiled with
  | None -> ()
  | Some c ->
      Alcotest.(check bool) (name ^ ": verifier clean") true
        (Verify.is_clean
           (Compile.verify_schedule c.Compile.prepared c.Compile.schedule))

let test_warm_from_disk_equivalent () =
  let nl = design ~seed:517 ~modules:30 ~domains:3 in
  let run ctx =
    Compile.compile_resilient ~options:tight_options ~max_retries:2
      ~fallback_hard:true ~reroute:ctx nl
  in
  (* First run learns; its context is both kept in-process and persisted. *)
  let c_mem = Reroute.create () in
  let r0 = run c_mem in
  Alcotest.(check bool) "first run succeeded" true (Compile.succeeded r0);
  let serialized = Reroute.to_json_string c_mem in
  let c_disk =
    match Reroute.of_json_string serialized with
    | Ok c -> c
    | Error msg -> Alcotest.failf "deserialize failed: %s" msg
  in
  (* Re-run warm twice: once against the in-process context, once against
     the disk round-tripped one.  Outcomes must match exactly. *)
  let r_mem = run c_mem in
  let r_disk = run c_disk in
  Alcotest.(check (list string)) "same attempt ladder" (labels r_mem)
    (labels r_disk);
  Alcotest.(check (float 0.0)) "same emulation frequency" (hz r_mem) (hz r_disk);
  Alcotest.(check bool) "disk-warm replayed the ledger" true
    (r_disk.Compile.degradation.Compile.reused_transports > 0);
  check_clean "disk-warm" r_disk;
  check_clean "in-process warm" r_mem

let test_corrupt_cache_degrades_cold () =
  let dir = fresh_dir () in
  let text = design_text ~seed:611 ~modules:10 ~domains:2 in
  let options = Server.default_settings.Server.s_options in
  let key = Cache.key ~text ~options in
  (* A truncated document: parseable prefix, invalid JSON overall. *)
  let nl = design ~seed:611 ~modules:10 ~domains:2 in
  let ctx = Reroute.create () in
  ignore (Compile.compile_resilient ~reroute:ctx nl);
  let whole = Reroute.to_json_string ctx in
  let oc = open_out (Cache.file ~dir ~key) in
  output_string oc (String.sub whole 0 (String.length whole / 2));
  close_out oc;
  (match Cache.load ~dir ~key with
  | Cache.Corrupt d ->
      Alcotest.(check string) "corruption carries E_CACHE" "E_CACHE"
        (Diag.code_name d.Diag.code);
      Alcotest.(check bool) "warning, not error" false (Diag.is_error d)
  | Cache.Hit _ -> Alcotest.fail "truncated cache file accepted"
  | Cache.Miss -> Alcotest.fail "truncated cache file invisible");
  (* End to end: the job still compiles, reports cache=corrupt, and
     surfaces the warning in its record. *)
  let settings =
    { Server.default_settings with Server.s_cache_dir = Some dir }
  in
  let job = Server.job_of_text ~index:0 ~path:"corrupt-test.mnl" text in
  let batch = Server.run_batch ~jobs:1 settings [ job ] in
  let r = batch.Server.b_results.(0) in
  Alcotest.(check string) "status corrupt" "corrupt"
    (Server.cache_status_name r.Server.r_cache);
  Alcotest.(check int) "job still compiled" 0 r.Server.r_exit;
  Alcotest.(check bool) "E_CACHE diagnostic surfaced" true
    (List.exists (fun d -> d.Diag.code = Diag.E_CACHE) r.Server.r_diags);
  Alcotest.(check bool) "record mentions corrupt cache" true
    (let json = Server.record_json r in
     let needle = "\"cache\":\"corrupt\"" in
     let n = String.length json and m = String.length needle in
     let rec find i = i + m <= n && (String.sub json i m = needle || find (i + 1)) in
     find 0);
  (* The corrupt entry was overwritten by the successful run: next load is
     a hit. *)
  match Cache.load ~dir ~key with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "cache not repaired after successful compile"

let test_cache_spans_processes_effort () =
  (* Warm-from-cache must not change results but must skip search work:
     strictly fewer pathfinder expansions than the cold run of the same
     congested design (the per-process analogue of test_reroute's
     warm-vs-cold differential). *)
  let dir = fresh_dir () in
  let text = Serial.to_string (design ~seed:517 ~modules:30 ~domains:3) in
  let settings =
    {
      Server.default_settings with
      Server.s_options = tight_options;
      s_max_retries = 2;
      s_fallback_hard = true;
      s_cache_dir = Some dir;
    }
  in
  let job = Server.job_of_text ~index:0 ~path:"congested.mnl" text in
  let run () = Server.run_batch ~jobs:1 settings [ job ] in
  let cold = (run ()).Server.b_results.(0) in
  let warm = (run ()).Server.b_results.(0) in
  Alcotest.(check string) "cold then warm"
    "cold/warm"
    (Server.cache_status_name cold.Server.r_cache
    ^ "/"
    ^ Server.cache_status_name warm.Server.r_cache);
  let resilient r =
    match r.Server.r_resilient with
    | Some res -> res
    | None -> Alcotest.fail "job did not reach the driver"
  in
  let total_expansions r =
    List.fold_left
      (fun acc a -> acc + a.Compile.attempt_expansions)
      0 (resilient r).Compile.attempts
  in
  Alcotest.(check (float 0.0)) "same Hz from disk-warm start"
    (hz (resilient cold))
    (hz (resilient warm));
  Alcotest.(check bool) "disk-warm run searches strictly less" true
    (total_expansions warm < total_expansions cold);
  Alcotest.(check bool) "disk-warm run replays the ledger" true
    ((resilient warm).Compile.degradation.Compile.reused_transports > 0)

let test_cache_truncation_sweep () =
  (* Exhaustive torn-write simulation: for EVERY strict prefix of a small
     entry, a load must degrade (Corrupt, with the E_CACHE warning) — never
     accept the prefix as a Hit, never raise.  The fsync-before-rename in
     [store] is what keeps real crashes from publishing such prefixes; this
     sweep proves the reader is safe even if one appears. *)
  let dir = fresh_dir () in
  let key = Cache.hash_hex "truncation-sweep" in
  let whole = Reroute.to_json_string (Reroute.create ()) in
  let path = Cache.file ~dir ~key in
  for len = 0 to String.length whole - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub whole 0 len);
    close_out oc;
    match Cache.load ~dir ~key with
    | Cache.Corrupt d ->
        Alcotest.(check string)
          (Printf.sprintf "prefix %d/%d carries E_CACHE" len
             (String.length whole))
          "E_CACHE"
          (Diag.code_name d.Diag.code)
    | Cache.Hit _ ->
        Alcotest.failf "truncated prefix %d/%d accepted as a hit" len
          (String.length whole)
    | Cache.Miss ->
        Alcotest.failf "truncated prefix %d/%d invisible" len
          (String.length whole)
  done;
  (* The full document (as [store] writes it) still loads. *)
  (match Cache.store ~dir ~key (Reroute.create ()) with
  | Ok () -> ()
  | Error d -> Alcotest.failf "store failed: %s" d.Diag.message);
  match Cache.load ~dir ~key with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "full entry no longer loads"

let test_cache_stats_and_gc () =
  let dir = fresh_dir () in
  let ctx = Reroute.create () in
  let keys = List.map Cache.hash_hex [ "gc-a"; "gc-b"; "gc-c" ] in
  List.iter
    (fun key ->
      match Cache.store ~dir ~key ctx with
      | Ok () -> ()
      | Error d -> Alcotest.failf "store failed: %s" d.Diag.message)
    keys;
  let k1, k2, k3 =
    match keys with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let size = (Unix.stat (Cache.file ~dir ~key:k1)).Unix.st_size in
  let stats = Cache.stats ~dir in
  Alcotest.(check int) "stats counts entries" 3 stats.Cache.st_entries;
  Alcotest.(check int) "stats sums bytes" (3 * size) stats.Cache.st_bytes;
  (* Age the entries: k1 oldest, then k2, then k3. *)
  let now = Unix.gettimeofday () in
  let age key secs =
    let p = Cache.file ~dir ~key in
    Unix.utimes p (now -. secs) (now -. secs)
  in
  age k1 300.0;
  age k2 200.0;
  age k3 100.0;
  (* A load refreshes k1's mtime — it is now the MOST recently used, so a
     gc to two entries must evict k2 (the oldest remaining), proving that
     entries in active use survive the cap. *)
  (match Cache.load ~dir ~key:k1 with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "expected a hit on k1");
  let r = Cache.gc ~dir ~max_bytes:(2 * size) in
  Alcotest.(check int) "gc scanned all entries" 3 r.Cache.gc_scanned;
  Alcotest.(check int) "gc evicted exactly one" 1 r.Cache.gc_evicted;
  Alcotest.(check int) "gc bytes settle at the cap" (2 * size)
    r.Cache.gc_bytes_after;
  Alcotest.(check bool) "recently-loaded k1 survives" true
    (Sys.file_exists (Cache.file ~dir ~key:k1));
  Alcotest.(check bool) "LRU k2 evicted" false
    (Sys.file_exists (Cache.file ~dir ~key:k2));
  Alcotest.(check bool) "newer k3 survives" true
    (Sys.file_exists (Cache.file ~dir ~key:k3));
  (* Idempotent under the cap; cap 0 clears everything but the lock. *)
  let r2 = Cache.gc ~dir ~max_bytes:(2 * size) in
  Alcotest.(check int) "gc under cap evicts nothing" 0 r2.Cache.gc_evicted;
  let r3 = Cache.gc ~dir ~max_bytes:0 in
  Alcotest.(check int) "cap 0 clears the cache" 2 r3.Cache.gc_evicted;
  Alcotest.(check int) "cache empty after cap 0"
    0 (Cache.stats ~dir).Cache.st_entries

(* ---- Manifest sources. ---- *)

let test_manifest_sources () =
  let dir = fresh_dir () in
  let sub = Filename.concat dir "sub" in
  Cache.ensure_dir sub;
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  write (Filename.concat dir "b.mnl") "design b\n";
  write (Filename.concat dir "a.mnl") "design a\n";
  write (Filename.concat sub "c.mnl") "design c\n";
  write (Filename.concat dir "ignored.txt") "not a netlist\n";
  (match Manifest.load dir with
  | Error _ -> Alcotest.fail "directory scan failed"
  | Ok entries ->
      Alcotest.(check (list string))
        "recursive *.mnl scan, sorted"
        [
          Filename.concat dir "a.mnl";
          Filename.concat dir "b.mnl";
          Filename.concat sub "c.mnl";
        ]
        (List.map (fun e -> e.Manifest.e_path) entries));
  let manifest = Filename.concat dir "jobs.txt" in
  write manifest "# comment\na.mnl\n{\"path\":\"sub/c.mnl\"}\n\n";
  (match Manifest.load manifest with
  | Error _ -> Alcotest.fail "manifest parse failed"
  | Ok entries ->
      Alcotest.(check (list string))
        "paths resolve against the manifest directory"
        [ Filename.concat dir "a.mnl"; Filename.concat dir "sub/c.mnl" ]
        (List.map (fun e -> e.Manifest.e_path) entries));
  let bad = Filename.concat dir "bad.txt" in
  write bad "{\"nope\":1}\n{not json\n";
  match Manifest.load bad with
  | Ok _ -> Alcotest.fail "bad manifest accepted"
  | Error diags ->
      Alcotest.(check int) "one diagnostic per bad line" 2 (List.length diags);
      List.iter
        (fun d ->
          Alcotest.(check string) "manifest errors are E_PARSE" "E_PARSE"
            (Diag.code_name d.Diag.code))
        diags

let test_manifest_crlf_and_no_final_newline () =
  (* NDJSON manifests written on Windows (CRLF) or by tools that do not
     terminate the last line must parse identically to the canonical
     form.  [String.trim] strips the [\r] before both the comment check
     and the JSON parse; [input_line] yields the unterminated last line. *)
  let dir = fresh_dir () in
  let manifest = Filename.concat dir "jobs-crlf.txt" in
  let oc = open_out_bin manifest in
  (* CRLF throughout, comment and blank lines included, and NO newline
     after the final entry. *)
  output_string oc
    "# comment\r\na.mnl\r\n\r\n{\"path\":\"sub/c.mnl\"}\r\nlast.mnl";
  close_out oc;
  (match Manifest.load manifest with
  | Error diags ->
      Alcotest.failf "CRLF manifest rejected: %d diagnostics"
        (List.length diags)
  | Ok entries ->
      Alcotest.(check (list string))
        "CRLF + missing final newline parse to clean resolved paths"
        [
          Filename.concat dir "a.mnl";
          Filename.concat dir "sub/c.mnl";
          Filename.concat dir "last.mnl";
        ]
        (List.map (fun e -> e.Manifest.e_path) entries);
      (* No stray [\r] may survive into any resolved path. *)
      List.iter
        (fun e ->
          Alcotest.(check bool) "path free of carriage returns" false
            (String.contains e.Manifest.e_path '\r'))
        entries);
  (* A JSON line whose closing brace is followed only by [\r] must not
     trip the strict parser. *)
  let manifest2 = Filename.concat dir "jobs-crlf2.txt" in
  let oc = open_out_bin manifest2 in
  output_string oc "{\"path\":\"x.mnl\"}\r";
  close_out oc;
  match Manifest.load manifest2 with
  | Ok [ e ] ->
      Alcotest.(check string) "lone CR-terminated JSON line parses"
        (Filename.concat dir "x.mnl")
        e.Manifest.e_path
  | Ok _ -> Alcotest.fail "wrong entry count"
  | Error _ -> Alcotest.fail "CR-terminated JSON line rejected"

(* ---- Exit classes surface per job. ---- *)

let test_batch_exit_classes () =
  let jobs =
    [
      Server.job_of_text ~index:0 ~path:"good.mnl"
        (design_text ~seed:801 ~modules:6 ~domains:2);
      Server.job_of_text ~index:1 ~path:"broken.mnl" "design broken\nnet x\n";
    ]
  in
  let batch = Server.run_batch ~jobs:2 Server.default_settings jobs in
  Alcotest.(check int) "good job exit 0" 0 batch.Server.b_results.(0).Server.r_exit;
  Alcotest.(check int) "parse failure exit 3" 3
    batch.Server.b_results.(1).Server.r_exit;
  Alcotest.(check bool) "parse failure has no driver result" true
    (batch.Server.b_results.(1).Server.r_resilient = None);
  Alcotest.(check int) "batch exit is first failing class" 3
    (Server.exit_code batch)

(* ---- Mixed GALS corpus (ISSUE 6): workload families through the batch
   server at jobs=2, deterministic vs jobs=1, with per-job exit classes. ---- *)

let test_batch_gals_corpus () =
  let family_text seed =
    let d : Design_gen.design =
      match seed mod 3 with
      | 0 -> Design_gen.gals_islands ~seed ~islands:3 ~island_size:1 ()
      | 1 -> Design_gen.dense_crossing ~seed ~domains:5 ~density:0.3 ()
      | _ -> Design_gen.gated_memory_fabric ~seed ~banks:3 ~addr_bits:2 ()
    in
    (Printf.sprintf "corpus/%s-s%d.mnl" d.Design_gen.design_label seed,
     Serial.to_string d.Design_gen.netlist)
  in
  let corpus =
    List.init 9 (fun i -> family_text (700 + i))
    @ [ ("corpus/broken.mnl", "design broken\nnet x\n") ]
  in
  let jobs =
    List.mapi (fun index (path, text) -> Server.job_of_text ~index ~path text)
      corpus
  in
  let b1 = Server.run_batch ~jobs:1 Server.default_settings jobs in
  let b2 = Server.run_batch ~jobs:2 Server.default_settings jobs in
  List.iteri
    (fun i (r1, r2) ->
      Alcotest.(check string)
        (Printf.sprintf "family record %d identical at jobs=2" i)
        r1 r2)
    (List.combine (records b1) (records b2));
  (* Every well-formed family design compiles (exit 0, verifier on); the
     seeded broken text fails in the malformed-input class (exit 3). *)
  Array.iteri
    (fun i r ->
      let expected = if i < 9 then 0 else 3 in
      Alcotest.(check int)
        (Printf.sprintf "job %d (%s) exit class" i r.Server.r_job.Server.j_path)
        expected r.Server.r_exit)
    b2.Server.b_results;
  Alcotest.(check int) "batch exit is the parse-failure class" 3
    (Server.exit_code b2)

let suite =
  [
    Alcotest.test_case "pool: parallel map deterministic" `Quick
      test_pool_deterministic_map;
    Alcotest.test_case "pool: worker exceptions re-raise" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "pool: first failing task wins, backtrace kept" `Quick
      test_pool_first_exception_wins;
    Alcotest.test_case "batch: jobs=4 byte-identical to jobs=1 (33 designs)"
      `Slow test_batch_determinism;
    Alcotest.test_case "reroute cache: serialize/deserialize round-trip"
      `Quick test_reroute_round_trip;
    Alcotest.test_case "reroute cache: disk-warm equivalent to in-process warm"
      `Quick test_warm_from_disk_equivalent;
    Alcotest.test_case "reroute cache: corrupt file degrades to cold" `Quick
      test_corrupt_cache_degrades_cold;
    Alcotest.test_case "reroute cache: warm spans processes, less search"
      `Quick test_cache_spans_processes_effort;
    Alcotest.test_case "cache: truncated-at-every-byte sweep" `Quick
      test_cache_truncation_sweep;
    Alcotest.test_case "cache: stats and LRU gc respect active use" `Quick
      test_cache_stats_and_gc;
    Alcotest.test_case "manifest: dir scan and file entries" `Quick
      test_manifest_sources;
    Alcotest.test_case "manifest: CRLF and missing final newline" `Quick
      test_manifest_crlf_and_no_final_newline;
    Alcotest.test_case "batch: per-job exit classes" `Quick
      test_batch_exit_classes;
    Alcotest.test_case "batch: mixed GALS corpus at jobs=2" `Slow
      test_batch_gals_corpus;
  ]
