(* Schedule explainability (ISSUE 7 tentpole suite).

   The critical-chain extractor replays the TIERS requirement propagation
   with provenance backpointers; its contract is sharp enough to test
   structurally:

   - the chain is {e exact} for every TIERS-compiled schedule: the replayed
     length equals [Schedule.length], the first hop starts at slot 0, the
     last ends at [length], and every hop starts where the previous ended
     (dependency contiguity) — across seeded workload families, both
     routing modes, and random multi-domain designs (qcheck);
   - explain output is byte-deterministic: two independent compiles of the
     same seeded design render identical [msched-explain-1] documents;
   - the occupancy matrix column peaks agree with the schedule's own
     [peak_channel_usage] accounting;
   - phase attribution does exact Amdahl arithmetic on a fake clock, and
     [Sink.annotate] lands args on the innermost open span;
   - the bench regression gate passes on identical documents and fails on
     each injected regression class (slower span, longer frame, dirty
     verifier, vanished metric) while tolerating benign wall-clock noise. *)

module Design_gen = Msched_gen.Design_gen
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Sink = Msched_obs.Sink
module Explain = Msched_explain.Explain
module Baseline = Msched_explain.Baseline

let compile ?(weight = 48) ?(route = Tiers.default_options) nl =
  let options =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = weight }
  in
  let prepared = Msched.Compile.prepare ~options nl in
  let sched = Msched.Compile.route prepared route in
  (prepared, sched)

let check_chain label route prepared sched =
  let chain = Explain.critical_chain ~route prepared sched in
  Alcotest.(check bool)
    (label ^ ": chain is exact (replayed length = schedule length)")
    true chain.Explain.ch_exact;
  Alcotest.(check int)
    (label ^ ": chain length") sched.Schedule.length chain.Explain.ch_length;
  (match chain.Explain.ch_hops with
  | [] -> Alcotest.fail (label ^ ": chain has no hops")
  | first :: _ ->
      Alcotest.(check int) (label ^ ": first hop starts at 0") 0
        first.Explain.h_from);
  let rec contiguous prev = function
    | [] ->
        Alcotest.(check int)
          (label ^ ": last hop ends at schedule length")
          sched.Schedule.length prev
    | h :: rest ->
        Alcotest.(check int)
          (Printf.sprintf "%s: hop %S starts where the previous ended" label
             h.Explain.h_what)
          prev h.Explain.h_from;
        Alcotest.(check bool)
          (label ^ ": hop does not go backwards")
          true
          (h.Explain.h_to >= h.Explain.h_from);
        contiguous h.Explain.h_to rest
  in
  contiguous 0 chain.Explain.ch_hops;
  chain

let seeded_families () =
  List.iter
    (fun (label, nl) ->
      List.iter
        (fun (mode, route) ->
          let prepared, sched = compile ~route nl in
          ignore (check_chain (label ^ " " ^ mode) route prepared sched))
        [ ("virtual", Tiers.default_options); ("hard", Tiers.hard_options) ])
    [
      ( "gals",
        (Design_gen.of_spec "gals:islands=4,size=2" |> function
         | Ok d -> d.Design_gen.netlist
         | Error _ -> Alcotest.fail "gals spec") );
      ( "dense",
        (Design_gen.of_spec "dense:domains=6,density=0.3" |> function
         | Ok d -> d.Design_gen.netlist
         | Error _ -> Alcotest.fail "dense spec") );
      ( "fabric",
        (Design_gen.of_spec "fabric:banks=4" |> function
         | Ok d -> d.Design_gen.netlist
         | Error _ -> Alcotest.fail "fabric spec") );
      ("design1", (Design_gen.design1_like ~scale:0.05 ()).Design_gen.netlist);
    ]

let prop_random_chains_exact =
  QCheck.Test.make ~name:"random multi-domain chains are exact and contiguous"
    ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:6
          ~mts_fraction:0.3 ()
      in
      let route = Tiers.default_options in
      let prepared, sched = compile ~route d.Design_gen.netlist in
      let chain = Explain.critical_chain ~route prepared sched in
      chain.Explain.ch_exact
      && (match chain.Explain.ch_hops with
         | [] -> false
         | first :: _ -> first.Explain.h_from = 0)
      && List.fold_left
           (fun prev h ->
             match prev with
             | None -> None
             | Some p ->
                 if h.Explain.h_from = p && h.Explain.h_to >= p then
                   Some h.Explain.h_to
                 else None)
           (Some 0) chain.Explain.ch_hops
         = Some sched.Schedule.length)

let deterministic_json () =
  let analyze () =
    let nl = (Design_gen.design1_like ~scale:0.05 ()).Design_gen.netlist in
    let prepared, sched = compile nl in
    Explain.to_json (Explain.analyze ~design:"design1" prepared sched)
  in
  let a = analyze () and b = analyze () in
  Alcotest.(check string) "two fresh compiles render identical explain JSON" a b;
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "document carries the schema tag" true
    (contains "msched-explain-1" a)

let occupancy_matches_peaks () =
  let nl = (Design_gen.design1_like ~scale:0.05 ()).Design_gen.netlist in
  let prepared, sched = compile nl in
  let oc = Explain.occupancy sched prepared.Msched.Compile.system in
  Alcotest.(check int) "one row per channel"
    (Array.length sched.Schedule.peak_channel_usage)
    (Array.length oc.Explain.oc_matrix);
  Array.iteri
    (fun c row ->
      let peak = Array.fold_left max 0 row in
      Alcotest.(check int)
        (Printf.sprintf "channel %d: matrix column peak = recorded peak" c)
        sched.Schedule.peak_channel_usage.(c)
        peak)
    oc.Explain.oc_matrix;
  Alcotest.(check bool) "wire-slot split covers all multiplexed hops" true
    (oc.Explain.oc_mts_wire_slots + oc.Explain.oc_single_wire_slots
    = Array.fold_left
        (fun acc row -> acc + Array.fold_left ( + ) 0 row)
        0 oc.Explain.oc_matrix)

let attribution_math () =
  let now = ref 0.0 in
  let obs = Sink.create ~clock:(fun () -> !now) () in
  (* root [0,100ms] with child [20,60ms]: root self 60ms, child self 40ms. *)
  Sink.span obs "root" (fun () ->
      now := 0.020;
      Sink.span obs "child" (fun () -> now := 0.060);
      now := 0.100);
  match Explain.attribution obs with
  | None -> Alcotest.fail "attribution missing"
  | Some a ->
      Alcotest.(check int) "wall is the root span" 100_000 a.Explain.at_wall_us;
      Alcotest.(check (option string)) "serial bottleneck is the root's self"
        (Some "root") a.Explain.at_serial;
      let phase name =
        List.find (fun p -> p.Explain.ph_name = name) a.Explain.at_phases
      in
      Alcotest.(check int) "root self excludes the child" 60_000
        (phase "root").Explain.ph_self_us;
      Alcotest.(check int) "child self" 40_000 (phase "child").Explain.ph_self_us;
      let r = phase "root" in
      Alcotest.(check bool) "Amdahl bound of a 0.6 fraction is 2.5" true
        (abs_float (r.Explain.ph_amdahl -. 2.5) < 1e-9)

let annotate_lands_on_open_span () =
  let obs = Sink.create () in
  Sink.span obs "stage" (fun () -> Sink.annotate obs [ ("k", "v") ]);
  Sink.annotate obs [ ("ignored", "no-open-span") ];
  match Sink.spans obs with
  | [ s ] ->
      Alcotest.(check (list (pair string string)))
        "args recorded on the innermost open span" [ ("k", "v") ]
        s.Sink.sp_args
  | _ -> Alcotest.fail "expected exactly one span"

(* ---- Bench regression gate ---- *)

let doc ?(par_identical = true) ~span_us ~length ~speed ~clean ~extra_counter
    () =
  Printf.sprintf
    {|{"schema":"msched-bench-pipeline-7",
       "designs":{"d1":{"schema":"msched-obs-1",
         "spans":[{"id":0,"parent":null,"depth":0,"name":"prepare","begin_us":0,"dur_us":%d,"args":{}}],
         "counters":{"work.items":100%s},
         "gauges":{"schedule.length":%d,"schedule.est_speed_hz":%g,"place.wirelength":500},
         "histograms":{}}},
       "driver":{"result":{},"obs":{"schema":"msched-obs-1","spans":[],"counters":{"driver.attempts":1},"gauges":{},"histograms":{}}},
       "batch":{"cores":1},
       "workloads":{"gals":[{"spec":"gals:islands=4,size=2","schedule_length":%d,"est_speed_hz":%g,"verifier_clean":%b}]},
       "par":{"design":"dense:domains=16,density=0.8","cores":1,
         "prepare_wall_s":{"jobs1":0.1,"jobs2":0.2,"jobs4":0.3},
         "route_wall_s":{"jobs1":0.1,"jobs2":0.2,"jobs4":0.3},
         "schedule_identical_1v2":%b,"schedule_identical_1v4":true,
         "placement_identical":true,"schedule_length":%d,"est_speed_hz":%g}}|}
    span_us extra_counter length speed length speed clean par_identical
    length speed

let base_doc =
  doc ~span_us:10_000 ~length:10 ~speed:1e6 ~clean:true ~extra_counter:"" ()

let gate label ~fresh expect_ok =
  match Baseline.compare_runs ~baseline:base_doc ~fresh with
  | Error d -> Alcotest.failf "%s: gate errored: %a" label Msched_diag.Diag.pp d
  | Ok diff ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (regressions: %s)" label
           (String.concat "; "
              (List.map (fun v -> v.Baseline.v_path) diff.Baseline.d_verdicts)))
        expect_ok (Baseline.ok diff)

let gate_verdicts () =
  gate "identical documents pass" ~fresh:base_doc true;
  gate "benign time noise passes"
    ~fresh:(doc ~span_us:30_000 ~length:10 ~speed:1e6 ~clean:true ~extra_counter:"" ())
    true;
  gate "6x slower and >50ms fails"
    ~fresh:(doc ~span_us:70_000 ~length:10 ~speed:1e6 ~clean:true ~extra_counter:"" ())
    false;
  gate "any frame growth fails"
    ~fresh:(doc ~span_us:10_000 ~length:11 ~speed:1e6 ~clean:true ~extra_counter:"" ())
    false;
  gate "any speed loss fails"
    ~fresh:(doc ~span_us:10_000 ~length:10 ~speed:9e5 ~clean:true ~extra_counter:"" ())
    false;
  gate "verifier going dirty fails"
    ~fresh:(doc ~span_us:10_000 ~length:10 ~speed:1e6 ~clean:false ~extra_counter:"" ())
    false;
  (* Parallel widths diverging (schedule no longer byte-identical across
     --compile-jobs) is a Bool equality class: any flip fails. *)
  gate "parallel divergence fails"
    ~fresh:
      (doc ~par_identical:false ~span_us:10_000 ~length:10 ~speed:1e6
         ~clean:true ~extra_counter:"" ())
    false;
  (* New metrics never fail; metrics vanishing from the fresh run do. *)
  gate "new metric in fresh run passes"
    ~fresh:
      (doc ~span_us:10_000 ~length:10 ~speed:1e6 ~clean:true
         ~extra_counter:{|,"work.extra":1|} ())
    true;
  (match
     Baseline.compare_runs
       ~baseline:
         (doc ~span_us:10_000 ~length:10 ~speed:1e6 ~clean:true
            ~extra_counter:{|,"work.extra":1|} ())
       ~fresh:base_doc
   with
  | Ok diff ->
      Alcotest.(check bool) "vanished metric fails" false (Baseline.ok diff)
  | Error d -> Alcotest.failf "gate errored: %a" Msched_diag.Diag.pp d);
  (match Baseline.compare_runs ~baseline:{|{"schema":"nope"}|} ~fresh:base_doc with
  | Ok _ -> Alcotest.fail "wrong schema must be rejected"
  | Error d ->
      Alcotest.(check string) "schema mismatch is E_PARSE" "E_PARSE"
        (Msched_diag.Diag.code_name d.Msched_diag.Diag.code))

let gate_roundtrip_on_real_doc () =
  (* The diff's own JSON document parses and carries the verdict. *)
  match Baseline.compare_runs ~baseline:base_doc ~fresh:base_doc with
  | Error d -> Alcotest.failf "gate errored: %a" Msched_diag.Diag.pp d
  | Ok diff -> (
      let json = Baseline.to_json diff in
      match Msched_diag.Diag.Json.parse json with
      | Error e -> Alcotest.failf "diff JSON does not parse: %s" e
      | Ok v ->
          Alcotest.(check (option string)) "schema" (Some "msched-bench-diff-1")
            Option.(bind (Msched_diag.Diag.Json.mem "schema" v)
                      Msched_diag.Diag.Json.str))

let suite =
  [
    Alcotest.test_case "seeded families: chains exact in both modes" `Slow
      seeded_families;
    QCheck_alcotest.to_alcotest prop_random_chains_exact;
    Alcotest.test_case "explain JSON is byte-deterministic" `Quick
      deterministic_json;
    Alcotest.test_case "occupancy matrix matches peak accounting" `Quick
      occupancy_matches_peaks;
    Alcotest.test_case "phase attribution Amdahl arithmetic" `Quick
      attribution_math;
    Alcotest.test_case "Sink.annotate targets the innermost open span" `Quick
      annotate_lands_on_open_span;
    Alcotest.test_case "bench gate verdicts per tolerance class" `Quick
      gate_verdicts;
    Alcotest.test_case "bench gate diff document round-trips" `Quick
      gate_roundtrip_on_real_doc;
  ]
