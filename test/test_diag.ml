(* The structured-diagnostics layer (Msched_diag), the netlist lint, the
   lint-grade parser and the resilient compilation driver. *)

module Diag = Msched_diag.Diag
module Netlist = Msched_netlist.Netlist
module Serial = Msched_netlist.Serial
module Lint = Msched_netlist.Lint
module Ids = Msched_netlist.Ids
module Tiers = Msched_route.Tiers
module Design_gen = Msched_gen.Design_gen
module Sink = Msched_obs.Sink
module Compile = Msched.Compile

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- Diag core. ---- *)

let test_code_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Diag.code_name c ^ " roundtrips")
        true
        (Diag.code_of_name (Diag.code_name c) = Some c))
    Diag.all_codes;
  Alcotest.(check bool) "unknown name" true (Diag.code_of_name "E_NOPE" = None)

let test_exit_codes () =
  (* The documented classes: 2 verification, 3 malformed input, 4
     infeasible, 5 unsupported, 6 internal, 7 timeout, 8 overload. *)
  Alcotest.(check int) "verify" 2 (Diag.exit_code Diag.E_VERIFY);
  Alcotest.(check int) "hold" 2 (Diag.exit_code Diag.E_HOLD_VIOLATION);
  Alcotest.(check int) "parse" 3 (Diag.exit_code Diag.E_PARSE);
  Alcotest.(check int) "undriven" 3 (Diag.exit_code Diag.E_UNDRIVEN);
  Alcotest.(check int) "unroutable" 4 (Diag.exit_code Diag.E_UNROUTABLE);
  Alcotest.(check int) "capacity" 4 (Diag.exit_code Diag.E_CAPACITY);
  Alcotest.(check int) "unsupported" 5 (Diag.exit_code Diag.E_UNSUPPORTED);
  Alcotest.(check int) "internal" 6 (Diag.exit_code Diag.E_INTERNAL);
  Alcotest.(check int) "timeout" 7 (Diag.exit_code Diag.E_TIMEOUT);
  Alcotest.(check int) "overload" 8 (Diag.exit_code Diag.E_OVERLOAD);
  List.iter
    (fun c ->
      let e = Diag.exit_code c in
      Alcotest.(check bool)
        (Diag.code_name c ^ " exit in 2..8")
        true
        (e >= 2 && e <= 8))
    Diag.all_codes

let test_report_accumulates () =
  let rep = Diag.Report.create () in
  Alcotest.(check bool) "fresh report empty" true (Diag.Report.is_empty rep);
  Diag.Report.add rep (Diag.warning Diag.E_DANGLING ~net:3 "w");
  Diag.Report.add rep (Diag.error Diag.E_UNROUTABLE ~net:7 ~slack:2 "e1");
  Diag.Report.add rep (Diag.error Diag.E_PARSE "e2");
  Alcotest.(check int) "count" 3 (Diag.Report.count rep);
  Alcotest.(check int) "errors" 2 (List.length (Diag.Report.errors rep));
  Alcotest.(check int) "warnings" 1 (List.length (Diag.Report.warnings rep));
  (* Exit class of the FIRST error. *)
  Alcotest.(check int) "report exit code" 4 (Diag.Report.exit_code rep)

let test_json_shape () =
  let d =
    Diag.error Diag.E_UNROUTABLE ~net:42 ~fpga:3 ~block:9 ~slack:5
      ~culprit:"nfoo" "no path for %s" "nfoo"
  in
  let j = Diag.to_json d in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s in %s" frag j)
        true (contains j frag))
    [
      {|"code":"E_UNROUTABLE"|};
      {|"severity":"error"|};
      {|"exit_code":4|};
      {|"net":42|};
      {|"slack":5|};
      {|"culprit":"nfoo"|};
    ]

(* ---- Lint. ---- *)

let netlist_of_string_exn s =
  match Serial.of_string s with
  | Ok nl -> nl
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_lint_clean_design () =
  let d = Design_gen.fig1 () in
  let diags = Lint.check d.Design_gen.netlist in
  Alcotest.(check bool)
    (Format.asprintf "fig1 lints clean, got %d diags" (List.length diags))
    true (diags = [])

let test_lint_dangling () =
  let nl =
    netlist_of_string_exn
      "design d\n\
       domain clk\n\
       net 0 A\n\
       net 1 X\n\
       net 2 F\n\
       input A 0 domain 0\n\
       gate buf X 1 0\n\
       ff F 2 0 dom 0\n\
       output O 2\n"
  in
  let diags = Lint.check nl in
  Alcotest.(check bool) "dangling flagged" true
    (List.exists (fun d -> d.Diag.code = Diag.E_DANGLING) diags);
  Alcotest.(check bool) "dangling is a warning" false (Lint.has_errors diags)

let test_lint_comb_cycle () =
  let nl =
    netlist_of_string_exn
      "design d\n\
       domain clk\n\
       net 0 A\n\
       net 1 X\n\
       net 2 Y\n\
       net 3 F\n\
       input A 0 domain 0\n\
       gate and X 1 0 2\n\
       gate buf Y 2 1\n\
       ff F 3 1 dom 0\n\
       output O 3\n"
  in
  let diags = Lint.check nl in
  Alcotest.(check bool) "cycle flagged as error" true
    (List.exists
       (fun d -> d.Diag.code = Diag.E_COMB_CYCLE && Diag.is_error d)
       diags)

(* One net sampled through a buffer by flip-flops of [domains] distinct
   domains, every FF output consumed so the only possible warning is the
   fanin one. *)
let fanin_design ~domains =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "design fanin\n";
  for d = 0 to domains - 1 do
    pr "domain d%d\n" d
  done;
  pr "net 0 A\nnet 1 X\n";
  for d = 0 to domains - 1 do
    pr "net %d F%d\n" (2 + d) d
  done;
  pr "input A 0 domain 0\ngate buf X 1 0\n";
  for d = 0 to domains - 1 do
    pr "ff F%d %d 1 dom %d\n" d (2 + d) d
  done;
  for d = 0 to domains - 1 do
    pr "output O%d %d\n" d (2 + d)
  done;
  netlist_of_string_exn (Buffer.contents b)

let test_lint_xdomain_fanin () =
  let diags = Lint.check (fanin_design ~domains:Lint.xdomain_fanin_limit) in
  Alcotest.(check bool)
    (Format.asprintf "%d sampling domains lint clean, got %d diags"
       Lint.xdomain_fanin_limit (List.length diags))
    true (diags = []);
  let diags =
    Lint.check (fanin_design ~domains:(Lint.xdomain_fanin_limit + 2))
  in
  let fanin = List.filter (fun d -> d.Diag.code = Diag.E_XDOMAIN_FANIN) diags in
  Alcotest.(check bool) "over-limit fanin flagged" true (fanin <> []);
  Alcotest.(check bool) "fanin is a warning" false (Lint.has_errors diags);
  Alcotest.(check bool) "fanin names the hot net" true
    (List.exists (fun d -> d.Diag.ctx.Diag.culprit = Some "X") fanin);
  (* The sampling set propagates backward through the buffer, so the
     primary-input net is flagged too. *)
  Alcotest.(check bool) "fanin reaches the backward cone" true
    (List.exists (fun d -> d.Diag.ctx.Diag.culprit = Some "A") fanin);
  Alcotest.(check int) "warning exit class is 3" 3
    (Diag.exit_code Diag.E_XDOMAIN_FANIN)

let test_parser_recovers () =
  (* Multiple independent problems, all reported in one pass. *)
  let r =
    Serial.of_string_diag
      "design d\n\
       domain clk\n\
       net 0 A\n\
       net zero B\n\
       input A 0 domain 0\n\
       wire Q 7 0\n\
       gate buf Q 99 0\n\
       output O 0\n"
  in
  match r with
  | Ok _ -> Alcotest.fail "expected parse diagnostics"
  | Error diags ->
      Alcotest.(check bool)
        (Format.asprintf "collected several problems, got %d" (List.length diags))
        true
        (List.length diags >= 3);
      List.iter
        (fun d ->
          Alcotest.(check bool) "all parse-class" true
            (Diag.exit_code d.Diag.code = 3))
        diags

let test_parser_diag_ok_on_good_input () =
  let d = Design_gen.fig3_latch () in
  let text = Serial.to_string d.Design_gen.netlist in
  match Serial.of_string_diag text with
  | Ok nl ->
      Alcotest.(check int) "same cells"
        (Netlist.num_cells d.Design_gen.netlist)
        (Netlist.num_cells nl)
  | Error diags ->
      Alcotest.failf "good input rejected: %d diags" (List.length diags)

(* ---- Resilient driver. ---- *)

let test_resilient_clean_design () =
  let d = Design_gen.fig1 () in
  let r = Compile.compile_resilient d.Design_gen.netlist in
  Alcotest.(check bool) "succeeded" true (Compile.succeeded r);
  Alcotest.(check bool) "not degraded" false (Compile.degraded r);
  Alcotest.(check int) "one attempt" 1 (List.length r.Compile.attempts);
  Alcotest.(check int) "exit 0" 0 (Compile.resilient_exit_code r)

let tight_options =
  (* Few pins per FPGA (narrow channels) plus max_extra_slots = 0 starves
     the router so the baseline attempt fails on congestion. *)
  {
    Compile.default_options with
    Compile.max_block_weight = 32;
    pins_per_fpga = 24;
    route = { Tiers.default_options with Tiers.max_extra_slots = 0 };
  }

let congested_netlist () =
  (Design_gen.random_multidomain ~seed:517 ~domains:3 ~modules:30
     ~mts_fraction:0.3 ())
    .Design_gen.netlist

let test_resilient_retries_recover () =
  let nl = congested_netlist () in
  (* Baseline must fail for the scenario to be meaningful. *)
  let r0 = Compile.compile_resilient ~options:tight_options ~max_retries:0 nl in
  Alcotest.(check bool) "baseline fails" false (Compile.succeeded r0);
  Alcotest.(check int) "unroutable exit class" 4 (Compile.resilient_exit_code r0);
  Alcotest.(check bool) "failure diagnosed" true
    (List.exists
       (fun d -> d.Diag.code = Diag.E_UNROUTABLE || d.Diag.code = Diag.E_CAPACITY)
       r0.Compile.diagnostics);
  (* With retries, slack relaxation recovers. *)
  let obs = Sink.create () in
  let options = { tight_options with Compile.obs } in
  let r = Compile.compile_resilient ~options ~max_retries:3 nl in
  Alcotest.(check bool) "retries recover" true (Compile.succeeded r);
  Alcotest.(check bool) "degraded" true (Compile.degraded r);
  Alcotest.(check bool) "retries counted" true (r.Compile.degradation.Compile.retries >= 1);
  Alcotest.(check bool) "achieved speed reported" true
    (r.Compile.degradation.Compile.achieved_hz <> None);
  Alcotest.(check bool) "driver.retries counter" true
    (Sink.counter obs "driver.retries" >= 1);
  Alcotest.(check bool) "driver.attempts counter" true
    (Sink.counter obs "driver.attempts" >= 2);
  Alcotest.(check bool) "driver span recorded" true
    (List.exists (fun s -> s.Sink.sp_name = "driver") (Sink.spans obs))

let test_resilient_hard_fallback () =
  let nl = congested_netlist () in
  let r =
    Compile.compile_resilient ~options:tight_options ~max_retries:0
      ~fallback_hard:true nl
  in
  Alcotest.(check bool) "fallback succeeds" true (Compile.succeeded r);
  (* Per-net fallback: only the unroutable residue moves to dedicated
     wires, so the achieved mode stays the requested (virtual) one unless
     the whole-schedule hard rung had to run. *)
  Alcotest.(check bool) "achieved mode reported" true
    (r.Compile.degradation.Compile.achieved_mode <> None);
  Alcotest.(check bool) "fallback rung ran" true
    (List.exists
       (fun a ->
         String.length a.Compile.attempt_label >= 13
         && String.sub a.Compile.attempt_label 0 13 = "fallback-hard")
       r.Compile.attempts);
  Alcotest.(check bool) "fallback transports counted" true
    (r.Compile.degradation.Compile.fallback_nets > 0);
  Alcotest.(check int) "exit 0 when degraded" 0 (Compile.resilient_exit_code r)

let test_resilient_per_net_fallback_stays_virtual () =
  (* The per-net rung should succeed while keeping the schedule in the
     requested virtual mode: hard-wire the residue, not the design. *)
  let nl = congested_netlist () in
  let r =
    Compile.compile_resilient ~options:tight_options ~max_retries:0
      ~fallback_hard:true nl
  in
  match r.Compile.degradation.Compile.achieved_mode with
  | Some Tiers.Mts_virtual ->
      let c = Option.get r.Compile.compiled in
      let total =
        List.fold_left
          (fun acc ls ->
            acc + List.length ls.Msched_route.Schedule.ls_transports)
          0 c.Compile.schedule.Msched_route.Schedule.link_scheds
      in
      Alcotest.(check bool) "residue smaller than schedule" true
        (r.Compile.degradation.Compile.fallback_nets < total)
  | Some m ->
      Alcotest.failf "expected virtual mode after per-net fallback, got %s"
        (Tiers.mode_name m)
  | None -> Alcotest.fail "per-net fallback did not succeed"

(* ---- Simulation-fidelity failures flow through Msched_diag. ---- *)

let test_fidelity_diag_exit_class () =
  let module Fidelity = Msched_sim.Fidelity in
  let module Emu_sim = Msched_sim.Emu_sim in
  let clean_violations =
    {
      Emu_sim.hold_hazards = 0;
      causality_inversions = 0;
      late_events = 0;
      event_overflows = 0;
    }
  in
  let base =
    {
      Fidelity.frames = 100;
      mismatch_frames = 0;
      state_mismatches = 0;
      ram_mismatches = 0;
      first_mismatch_frame = None;
      violations = clean_violations;
      settle_warnings = 0;
    }
  in
  Alcotest.(check int) "perfect run has no diags" 0
    (List.length (Fidelity.diags_of_report base));
  (* Golden-model divergence and hold hazards are verification failures:
     every error diag must carry exit class 2. *)
  let bad =
    {
      base with
      Fidelity.mismatch_frames = 3;
      state_mismatches = 7;
      first_mismatch_frame = Some 12;
      violations = { clean_violations with Emu_sim.hold_hazards = 2 };
    }
  in
  let diags = Fidelity.diags_of_report bad in
  Alcotest.(check bool) "divergence diagnosed" true (List.length diags >= 2);
  List.iter
    (fun d ->
      if Diag.is_error d then
        Alcotest.(check int)
          ("exit class of " ^ Diag.code_name d.Diag.code)
          2 (Diag.exit_code d.Diag.code))
    diags;
  Alcotest.(check bool) "hold hazard coded" true
    (List.exists (fun d -> d.Diag.code = Diag.E_HOLD_VIOLATION) diags);
  (* Schedule overruns are internal errors (class 6). *)
  let overrun =
    { base with Fidelity.violations = { clean_violations with Emu_sim.late_events = 1 } }
  in
  (match Fidelity.diags_of_report overrun with
  | [ d ] ->
      Alcotest.(check int) "overrun class" 6 (Diag.exit_code d.Diag.code)
  | ds -> Alcotest.failf "expected one overrun diag, got %d" (List.length ds))

let test_stimulus_misuse_is_structured () =
  (* The simulator's precondition failures raise structured diagnostics,
     not bare [Invalid_argument] — so the driver-side classifier keeps
     them in the internal class. *)
  let nl =
    netlist_of_string_exn
      "design d\n\
       domain clk\n\
       net 0 A\n\
       net 1 F\n\
       input A 0 domain 0\n\
       ff F 1 0 dom 0\n\
       output O 1\n"
  in
  let stim = Msched_sim.Stimulus.make nl in
  let ff =
    let found = ref None in
    Netlist.iter_cells nl (fun c ->
        if c.Msched_netlist.Cell.kind = Msched_netlist.Cell.Flip_flop then
          found := Some c);
    Option.get !found
  in
  match Msched_sim.Stimulus.value stim ff ~edge_index:0 with
  | _ -> Alcotest.fail "expected a structured failure"
  | exception Diag.Fail d ->
      Alcotest.(check bool) "internal code" true (d.Diag.code = Diag.E_INTERNAL);
      Alcotest.(check int) "internal exit class" 6
        (Diag.exit_code (Compile.diag_of_exn (Diag.Fail d)).Diag.code)

let test_resilient_lint_stops () =
  (* A combinational cycle is a lint error: no attempt should run. *)
  let nl =
    netlist_of_string_exn
      "design d\n\
       domain clk\n\
       net 0 A\n\
       net 1 X\n\
       net 2 Y\n\
       net 3 F\n\
       input A 0 domain 0\n\
       gate and X 1 0 2\n\
       gate buf Y 2 1\n\
       ff F 3 1 dom 0\n\
       output O 3\n"
  in
  let r = Compile.compile_resilient nl in
  Alcotest.(check bool) "failed" false (Compile.succeeded r);
  Alcotest.(check int) "no attempts" 0 (List.length r.Compile.attempts);
  Alcotest.(check int) "malformed-input exit class" 3
    (Compile.resilient_exit_code r)

let test_resilient_json () =
  let nl = congested_netlist () in
  let r =
    Compile.compile_resilient ~options:tight_options ~max_retries:1 nl
  in
  let j = Compile.resilient_to_json r in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "driver json has %s" frag)
        true (contains j frag))
    [ {|"schema":"msched-driver-1"|}; {|"attempts":[|}; {|"degradation":{|} ]

let suite =
  [
    Alcotest.test_case "code names roundtrip" `Quick test_code_roundtrip;
    Alcotest.test_case "exit-code classes" `Quick test_exit_codes;
    Alcotest.test_case "report accumulates" `Quick test_report_accumulates;
    Alcotest.test_case "diagnostic JSON shape" `Quick test_json_shape;
    Alcotest.test_case "lint: clean design" `Quick test_lint_clean_design;
    Alcotest.test_case "lint: dangling net" `Quick test_lint_dangling;
    Alcotest.test_case "lint: combinational cycle" `Quick test_lint_comb_cycle;
    Alcotest.test_case "lint: cross-domain fanin" `Quick
      test_lint_xdomain_fanin;
    Alcotest.test_case "parser recovers per line" `Quick test_parser_recovers;
    Alcotest.test_case "parser diag accepts good input" `Quick
      test_parser_diag_ok_on_good_input;
    Alcotest.test_case "resilient: clean design" `Quick
      test_resilient_clean_design;
    Alcotest.test_case "resilient: retries recover" `Quick
      test_resilient_retries_recover;
    Alcotest.test_case "resilient: per-net fallback stays virtual" `Quick
      test_resilient_per_net_fallback_stays_virtual;
    Alcotest.test_case "resilient: hard fallback" `Quick
      test_resilient_hard_fallback;
    Alcotest.test_case "fidelity diags carry exit classes" `Quick
      test_fidelity_diag_exit_class;
    Alcotest.test_case "stimulus misuse is structured" `Quick
      test_stimulus_misuse_is_structured;
    Alcotest.test_case "resilient: lint stops attempts" `Quick
      test_resilient_lint_stops;
    Alcotest.test_case "resilient: driver JSON" `Quick test_resilient_json;
  ]
