module Partition = Msched_partition.Partition
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Link = Msched_route.Link
module DA = Msched_mts.Domain_analysis
module Design_gen = Msched_gen.Design_gen

let compile_design ?(weight = 24) ?(options = Tiers.default_options)
    (d : Design_gen.design) =
  let copts =
    { Msched.Compile.default_options with Msched.Compile.max_block_weight = weight }
  in
  let prepared = Msched.Compile.prepare ~options:copts d.Design_gen.netlist in
  (prepared, Msched.Compile.route prepared options)

let random_design seed =
  Design_gen.random_multidomain ~seed ~domains:3 ~modules:25 ~mts_fraction:0.3 ()

let test_schedule_nonempty () =
  let _, sched = compile_design (Design_gen.fig1 ()) ~weight:4 in
  Alcotest.(check bool) "has links" true (sched.Schedule.link_scheds <> []);
  Alcotest.(check bool) "positive length" true (sched.Schedule.length >= 1)

let test_departure_before_arrival () =
  let _, sched = compile_design (random_design 31) in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      List.iter
        (fun (tr : Schedule.transport) ->
          Alcotest.(check bool) "dep < arr" true
            (tr.Schedule.tr_fwd_dep < tr.Schedule.tr_fwd_arr);
          Alcotest.(check bool) "dep >= 0" true (tr.Schedule.tr_fwd_dep >= 0);
          Alcotest.(check bool) "arr <= length" true
            (tr.Schedule.tr_fwd_arr <= sched.Schedule.length))
        ls.Schedule.ls_transports)
    sched.Schedule.link_scheds

let test_fork_groups_equalized () =
  let prepared, sched = compile_design (random_design 32) in
  let da = prepared.Msched.Compile.analysis in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      if DA.is_multi_transition da ls.Schedule.ls_link.Link.net then begin
        match ls.Schedule.ls_transports with
        | [] | [ _ ] -> ()
        | first :: rest ->
            List.iter
              (fun (tr : Schedule.transport) ->
                Alcotest.(check int) "same departure" first.Schedule.tr_fwd_dep
                  tr.Schedule.tr_fwd_dep;
                Alcotest.(check int) "same arrival" first.Schedule.tr_fwd_arr
                  tr.Schedule.tr_fwd_arr)
              rest
      end)
    sched.Schedule.link_scheds

let test_no_causality_inversions_when_equalized () =
  let prepared, sched = compile_design (random_design 33) in
  let stim = Msched_sim.Stimulus.make (Partition.netlist prepared.Msched.Compile.partition) in
  let emu = Msched_sim.Emu_sim.create prepared.Msched.Compile.placement sched stim in
  Alcotest.(check int) "no inversions" 0
    (Msched_sim.Emu_sim.violations emu).Msched_sim.Emu_sim.causality_inversions

let test_channel_capacity_respected () =
  let prepared, sched = compile_design (random_design 34) in
  let sys = prepared.Msched.Compile.system in
  (* Count per (channel, fwd slot) usage from hop records. *)
  let usage = Hashtbl.create 256 in
  List.iter
    (fun (ls : Schedule.link_sched) ->
      List.iter
        (fun (tr : Schedule.transport) ->
          if not tr.Schedule.tr_hard then
            List.iter
              (fun (channel, slot) ->
                let k = (channel, slot) in
                Hashtbl.replace usage k
                  (1 + Option.value ~default:0 (Hashtbl.find_opt usage k)))
              tr.Schedule.tr_hops)
        ls.Schedule.ls_transports)
    sched.Schedule.link_scheds;
  Hashtbl.iter
    (fun (channel, _slot) n ->
      let width = (Msched_arch.System.channel sys channel).Msched_arch.System.width in
      Alcotest.(check bool) "within width" true (n <= width))
    usage

let test_holdoffs_present_for_mts_latches () =
  let _, sched = compile_design (Design_gen.fig3_latch ()) ~weight:4 in
  Alcotest.(check bool) "has holdoffs" true (sched.Schedule.holdoffs <> []);
  List.iter
    (fun (h : Schedule.holdoff) ->
      Alcotest.(check bool) "data after gate" true
        (h.Schedule.ho_data > h.Schedule.ho_gate || h.Schedule.ho_data = sched.Schedule.length))
    sched.Schedule.holdoffs

let test_naive_has_no_holdoffs () =
  let _, sched =
    compile_design (Design_gen.fig3_latch ()) ~weight:4 ~options:Tiers.naive_options
  in
  Alcotest.(check int) "no holdoffs" 0 (List.length sched.Schedule.holdoffs)

let test_hard_mode_dedicates () =
  let _, sched =
    compile_design (Design_gen.fig1 ()) ~weight:4 ~options:Tiers.hard_options
  in
  let dedicated = Array.fold_left ( + ) 0 sched.Schedule.dedicated_per_channel in
  Alcotest.(check bool) "dedicated wires exist" true (dedicated > 0);
  let hard_transport_exists =
    List.exists
      (fun (ls : Schedule.link_sched) ->
        List.exists (fun t -> t.Schedule.tr_hard) ls.Schedule.ls_transports)
      sched.Schedule.link_scheds
  in
  Alcotest.(check bool) "hard transports exist" true hard_transport_exists

let test_deterministic () =
  let _, s1 = compile_design (random_design 35) in
  let _, s2 = compile_design (random_design 35) in
  Alcotest.(check int) "same length" s1.Schedule.length s2.Schedule.length;
  Alcotest.(check int) "same link count"
    (List.length s1.Schedule.link_scheds)
    (List.length s2.Schedule.link_scheds)

let test_est_speed () =
  let _, sched = compile_design (Design_gen.fig1 ()) ~weight:4 in
  let expected = sched.Schedule.vclock_hz /. float_of_int sched.Schedule.length in
  Alcotest.(check (float 0.01)) "speed" expected (Schedule.est_speed_hz sched)

let test_diagnostics () =
  let prepared, sched = compile_design (random_design 36) in
  Alcotest.(check bool) "length driver nonempty" true
    (String.length sched.Schedule.length_driver > 0);
  let util =
    Schedule.channel_utilization sched prepared.Msched.Compile.system
  in
  Alcotest.(check bool) "utilization in [0,1]" true (util >= 0.0 && util <= 1.0);
  let lat = Schedule.mean_transport_latency sched in
  Alcotest.(check bool) "latency >= 1 hop" true (lat >= 1.0)

(* Observation 1 (paper Section 5): constraints only bind between
   same-domain (data, gate) pairs.  A latch whose gate transitions only in
   domain C while its data transitions in A and B has NO same-domain pair,
   so with the filter on, the gate's link arrival does not hold the data
   off; the conservative all-domain mode must wait for it. *)
let test_observation1_filter_shrinks_holdoff () =
  let module B = Msched_netlist.Netlist.Builder in
  let module Cell = Msched_netlist.Cell in
  let module Ids = Msched_netlist.Ids in
  let module Netlist = Msched_netlist.Netlist in
  let b = B.create ~design_name:"obs1" () in
  let da = B.add_domain b "a" in
  let db = B.add_domain b "b" in
  let dc = B.add_domain b "c" in
  let ia = B.add_input b ~domain:da () in
  let ib = B.add_input b ~domain:db () in
  let ic = B.add_input b ~domain:dc () in
  let qa = B.add_flip_flop b ~name:"qa" ~data:ia ~clock:(Cell.Dom_clock da) () in
  let qb = B.add_flip_flop b ~name:"qb" ~data:ib ~clock:(Cell.Dom_clock db) () in
  let qc = B.add_flip_flop b ~name:"qc" ~data:ic ~clock:(Cell.Dom_clock dc) () in
  (* Block 1 logic: data mixes A and B, gate is pure C. *)
  let data = B.add_gate b ~name:"data" Cell.Xor [ qa; qb ] in
  let gate = B.add_gate b ~name:"gate" Cell.Buf [ qc ] in
  let q = B.add_latch b ~name:"obs1_latch" ~data ~gate:(Cell.Net_trigger gate) () in
  let s = B.add_flip_flop b ~name:"s" ~data:q ~clock:(Cell.Dom_clock da) () in
  let (_ : Ids.Cell.t) = B.add_output b s in
  let nl = B.finalize b in
  let in_block1 (c : Cell.t) =
    match c.Cell.name with
    | "data" | "gate" | "obs1_latch" | "s" -> 1
    | _ -> 0
  in
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (in_block1 (Netlist.cell nl (Ids.Cell.of_int i))))
  in
  let part = Msched_partition.Partition.of_assignment nl assignment in
  let topo = Msched_arch.Topology.make Msched_arch.Topology.Mesh ~nx:2 ~ny:1 in
  let sys = Msched_arch.System.make topo ~pins_per_fpga:16 in
  let placement = Msched_place.Placement.place part sys () in
  let analysis = Msched_mts.Domain_analysis.compute nl in
  let latch =
    Netlist.fold_cells nl ~init:None ~f:(fun acc c ->
        if c.Cell.name = "obs1_latch" then Some c.Cell.id else acc)
    |> Option.get
  in
  let ho_of options =
    let sched = Tiers.schedule placement analysis ~options () in
    match Schedule.holdoff_of sched latch with
    | Some h -> h.Schedule.ho_data
    | None -> 0
  in
  let ho_same = ho_of Tiers.default_options in
  let ho_all = ho_of { Tiers.default_options with Tiers.same_domain_only = false } in
  Alcotest.(check bool)
    (Printf.sprintf "filtered %d < conservative %d" ho_same ho_all)
    true (ho_same < ho_all)

(* A combinational-through-latch loop crossing blocks creates a scheduling
   dependency cycle; the scheduler must fall back gracefully (warn, still
   produce a valid schedule) instead of diverging. *)
let test_cross_block_latch_loop_warns () =
  let module B = Msched_netlist.Netlist.Builder in
  let module Cell = Msched_netlist.Cell in
  let module Ids = Msched_netlist.Ids in
  let module Netlist = Msched_netlist.Netlist in
  let b = B.create ~design_name:"latch_loop" () in
  let da = B.add_domain b "a" in
  let db = B.add_domain b "b" in
  let ia = B.add_input b ~domain:da () in
  let ib = B.add_input b ~domain:db () in
  let ga = B.add_flip_flop b ~name:"ga" ~data:ia ~clock:(Cell.Dom_clock da) () in
  let gb = B.add_flip_flop b ~name:"gb" ~data:ib ~clock:(Cell.Dom_clock db) () in
  let qa = B.fresh_net b ~name:"qa" () in
  let qb = B.fresh_net b ~name:"qb" () in
  (* latch A (block 0) data <- latch B output; latch B (block 1) data <-
     latch A output: a loop whose transport crosses blocks both ways. *)
  let da_in = B.add_gate b ~name:"da_in" Cell.Buf [ qb ] in
  B.add_latch_to b ~name:"latchA" ~data:da_in ~gate:(Cell.Net_trigger ga)
    ~output:qa ();
  let db_in = B.add_gate b ~name:"db_in" Cell.Buf [ qa ] in
  B.add_latch_to b ~name:"latchB" ~data:db_in ~gate:(Cell.Net_trigger gb)
    ~output:qb ();
  let sa = B.add_flip_flop b ~name:"sa" ~data:qa ~clock:(Cell.Dom_clock da) () in
  let sb = B.add_flip_flop b ~name:"sb" ~data:qb ~clock:(Cell.Dom_clock db) () in
  let (_ : Ids.Cell.t) = B.add_output b sa in
  let (_ : Ids.Cell.t) = B.add_output b sb in
  let nl = B.finalize b in
  let block_of (c : Cell.t) =
    match c.Cell.name with
    | "da_in" | "latchA" | "sa" -> 0
    | "db_in" | "latchB" | "sb" -> 1
    | _ -> 0
  in
  let assignment =
    Array.init (Netlist.num_cells nl) (fun i ->
        Ids.Block.of_int (block_of (Netlist.cell nl (Ids.Cell.of_int i))))
  in
  let part = Partition.of_assignment nl assignment in
  let topo = Msched_arch.Topology.make Msched_arch.Topology.Mesh ~nx:2 ~ny:1 in
  let sys = Msched_arch.System.make topo ~pins_per_fpga:16 in
  let placement = Msched_place.Placement.place part sys () in
  let analysis = Msched_mts.Domain_analysis.compute nl in
  let sched = Tiers.schedule placement analysis () in
  Alcotest.(check bool) "cycle warning emitted" true
    (List.exists
       (fun w ->
         let n = String.length "cycle" and h = String.length w in
         let rec scan i = i + n <= h && (String.sub w i n = "cycle" || scan (i + 1)) in
         scan 0)
       sched.Schedule.warnings);
  Alcotest.(check bool) "schedule still valid" true (sched.Schedule.length >= 1)

let prop_virtual_schedule_length_le_hard =
  QCheck.Test.make ~name:"virtual critical path <= hard critical path" ~count:8
    QCheck.(int_range 100 400)
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:2 ~modules:20
          ~mts_fraction:0.3 ()
      in
      let copts =
        {
          Msched.Compile.default_options with
          Msched.Compile.max_block_weight = 32;
          pins_per_fpga = 80;
        }
      in
      let prepared = Msched.Compile.prepare ~options:copts d.Design_gen.netlist in
      match
        ( Msched.Compile.route prepared Tiers.default_options,
          Msched.Compile.route prepared Tiers.hard_options )
      with
      | virt, hard -> virt.Schedule.length <= hard.Schedule.length
      | exception Tiers.Unroutable _ -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "schedule nonempty" `Quick test_schedule_nonempty;
    Alcotest.test_case "departure before arrival" `Quick test_departure_before_arrival;
    Alcotest.test_case "fork groups equalized" `Quick test_fork_groups_equalized;
    Alcotest.test_case "no causality inversions" `Quick
      test_no_causality_inversions_when_equalized;
    Alcotest.test_case "channel capacity respected" `Quick test_channel_capacity_respected;
    Alcotest.test_case "holdoffs for MTS latches" `Quick test_holdoffs_present_for_mts_latches;
    Alcotest.test_case "naive has no holdoffs" `Quick test_naive_has_no_holdoffs;
    Alcotest.test_case "hard mode dedicates" `Quick test_hard_mode_dedicates;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "est speed" `Quick test_est_speed;
    Alcotest.test_case "diagnostics" `Quick test_diagnostics;
    Alcotest.test_case "observation-1 filter" `Quick
      test_observation1_filter_shrinks_holdoff;
    Alcotest.test_case "cross-block latch loop warns" `Quick
      test_cross_block_latch_loop_warns;
    QCheck_alcotest.to_alcotest prop_virtual_schedule_length_le_hard;
  ]
