let () =
  Alcotest.run "msched"
    [
      ("ids", Test_ids.suite);
      ("cell", Test_cell.suite);
      ("netlist", Test_netlist.suite);
      ("levelize", Test_levelize.suite);
      ("traverse", Test_traverse.suite);
      ("clocking", Test_clocking.suite);
      ("arch", Test_arch.suite);
      ("partition", Test_partition.suite);
      ("place", Test_place.suite);
      ("domain-analysis", Test_domain_analysis.suite);
      ("transform", Test_transform.suite);
      ("latch-analysis", Test_latch_analysis.suite);
      ("route", Test_route.suite);
      ("tiers", Test_tiers.suite);
      ("sim", Test_sim.suite);
      ("fidelity", Test_fidelity.suite);
      ("gen", Test_gen.suite);
      ("serial", Test_serial.suite);
      ("vcd", Test_vcd.suite);
      ("frames", Test_frames.suite);
      ("injection", Test_injection.suite);
      ("diag", Test_diag.suite);
      ("reroute", Test_reroute.suite);
      ("verify", Test_verify.suite);
      ("forward", Test_forward.suite);
      ("compile", Test_compile.suite);
      ("obs", Test_obs.suite);
      ("workloads", Test_workloads.suite);
      ("server", Test_server.suite);
      ("par", Test_par.suite);
      ("serve-net", Test_serve_net.suite);
      ("explain", Test_explain.suite);
      ("delta", Test_delta.suite);
    ]
