open Msched_netlist
module Topology = Msched_arch.Topology
module System = Msched_arch.System
module Resource = Msched_route.Resource
module Pathfind = Msched_route.Pathfind
module Link = Msched_route.Link
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module DA = Msched_mts.Domain_analysis

let sys4 () =
  System.make (Topology.make Topology.Mesh ~nx:2 ~ny:2) ~pins_per_fpga:8

let test_resource_reserve () =
  let sys = sys4 () in
  let res = Resource.create sys in
  (* width = 8/(2*2) = 2 per channel *)
  Alcotest.(check int) "width" 2 (Resource.effective_width res ~channel:0);
  Alcotest.(check bool) "free" true (Resource.free_at res ~channel:0 ~rslot:3);
  Resource.reserve res ~channel:0 ~rslot:3;
  Resource.reserve res ~channel:0 ~rslot:3;
  Alcotest.(check bool) "full" false (Resource.free_at res ~channel:0 ~rslot:3);
  Alcotest.check_raises "over-reserve" (Invalid_argument "Resource.reserve: slot full")
    (fun () -> Resource.reserve res ~channel:0 ~rslot:3);
  Alcotest.(check int) "peak" 2 (Resource.peak_usage res).(0);
  Alcotest.(check int) "max rslot" 3 (Resource.max_rslot res)

let test_resource_dedicate () =
  let sys = sys4 () in
  let res = Resource.create sys in
  Resource.dedicate res ~channel:0;
  Alcotest.(check int) "width after dedicate" 1 (Resource.effective_width res ~channel:0);
  Resource.dedicate res ~channel:0;
  Alcotest.(check int) "exhausted" 0 (Resource.effective_width res ~channel:0);
  Alcotest.check_raises "no more" (Invalid_argument "Resource.dedicate: channel exhausted")
    (fun () -> Resource.dedicate res ~channel:0)

let test_search_basic () =
  let sys = sys4 () in
  let res = Resource.create sys in
  let src = Ids.Fpga.of_int 0 and dst = Ids.Fpga.of_int 3 in
  match Pathfind.search sys res ~src ~dst ~r_arr:0 ~max_extra:16 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
      Alcotest.(check int) "latency = distance" 2 p.Pathfind.p_len;
      Alcotest.(check int) "two hops" 2 (List.length p.Pathfind.p_hops)

let test_search_respects_congestion () =
  let sys = sys4 () in
  let res = Resource.create sys in
  let src = Ids.Fpga.of_int 0 and dst = Ids.Fpga.of_int 1 in
  (* Saturate the direct channel at the needed slot on both possible
     detours' first hops too, forcing waiting. *)
  let p1 = Option.get (Pathfind.search sys res ~src ~dst ~r_arr:0 ~max_extra:16) in
  Pathfind.reserve_path res p1;
  let p2 = Option.get (Pathfind.search sys res ~src ~dst ~r_arr:0 ~max_extra:16) in
  Pathfind.reserve_path res p2;
  let p3 = Option.get (Pathfind.search sys res ~src ~dst ~r_arr:0 ~max_extra:16) in
  (* The direct channel (width 2) is full at slot 1; the third transport is
     longer (waits or detours). *)
  Alcotest.(check bool) "third path is longer" true (p3.Pathfind.p_len > 1)

let test_search_arrival_exact () =
  let sys = sys4 () in
  let res = Resource.create sys in
  let src = Ids.Fpga.of_int 0 and dst = Ids.Fpga.of_int 3 in
  let p = Option.get (Pathfind.search sys res ~src ~dst ~r_arr:7 ~max_extra:16) in
  (* All hop slots lie in (r_arr, r_arr + latency]. *)
  List.iter
    (fun (_, rslot) ->
      Alcotest.(check bool) "slot in window" true (rslot > 7 && rslot <= 7 + p.Pathfind.p_len))
    p.Pathfind.p_hops

let test_hard_path () =
  let sys = sys4 () in
  let res = Resource.create sys in
  let src = Ids.Fpga.of_int 0 and dst = Ids.Fpga.of_int 3 in
  match Pathfind.shortest_free_wire_path sys res ~src ~dst with
  | None -> Alcotest.fail "expected wire path"
  | Some channels -> Alcotest.(check int) "two channels" 2 (List.length channels)

let test_hard_path_spares_last_wire () =
  let sys = System.make (Topology.make Topology.Mesh ~nx:2 ~ny:1) ~pins_per_fpga:4 in
  (* single channel pair, width 2 *)
  let res = Resource.create sys in
  let src = Ids.Fpga.of_int 0 and dst = Ids.Fpga.of_int 1 in
  let p1 = Option.get (Pathfind.shortest_free_wire_path sys res ~src ~dst) in
  List.iter (fun c -> Resource.dedicate res ~channel:c) p1;
  (* One wire left: the preferred search keeps it, the fallback drains it. *)
  let p2 = Pathfind.shortest_free_wire_path sys res ~src ~dst in
  Alcotest.(check bool) "fallback still routes" true (p2 <> None)

let test_link_build () =
  let d = Msched_gen.Design_gen.fig1 () in
  let nl = d.Msched_gen.Design_gen.netlist in
  let analysis = DA.compute nl in
  let part = Partition.make nl ~max_weight:4 () in
  let topo = Topology.make_for_count Topology.Mesh (Partition.num_blocks part) in
  let sys = System.make topo ~pins_per_fpga:16 in
  let placement = Placement.place part sys () in
  let links = Link.build placement analysis ~decompose_mts:true ~hard_mts:false in
  Alcotest.(check bool) "has links" true (links <> []);
  List.iter
    (fun (l : Link.t) ->
      Alcotest.(check bool) "src != dst block" false
        (Ids.Block.equal l.Link.src_block l.Link.dst_block);
      (* Multi-transition nets decompose into >= 2 domains. *)
      if DA.is_multi_transition analysis l.Link.net then
        Alcotest.(check bool) "decomposed" true (List.length l.Link.domains >= 2)
      else Alcotest.(check int) "single transport" 0 (List.length l.Link.domains))
    links

let test_link_hard_flag () =
  let d = Msched_gen.Design_gen.fig1 () in
  let nl = d.Msched_gen.Design_gen.netlist in
  let analysis = DA.compute nl in
  let part = Partition.make nl ~max_weight:4 () in
  let topo = Topology.make_for_count Topology.Mesh (Partition.num_blocks part) in
  let sys = System.make topo ~pins_per_fpga:16 in
  let placement = Placement.place part sys () in
  let links = Link.build placement analysis ~decompose_mts:false ~hard_mts:true in
  let mts_links =
    List.filter (fun (l : Link.t) -> DA.is_multi_transition analysis l.Link.net) links
  in
  Alcotest.(check bool) "some MTS links" true (mts_links <> []);
  List.iter
    (fun (l : Link.t) -> Alcotest.(check bool) "hard" true l.Link.hard)
    mts_links

let suite =
  [
    Alcotest.test_case "resource reserve" `Quick test_resource_reserve;
    Alcotest.test_case "resource dedicate" `Quick test_resource_dedicate;
    Alcotest.test_case "search basic" `Quick test_search_basic;
    Alcotest.test_case "search congestion" `Quick test_search_respects_congestion;
    Alcotest.test_case "search arrival exact" `Quick test_search_arrival_exact;
    Alcotest.test_case "hard path" `Quick test_hard_path;
    Alcotest.test_case "hard path spares last wire" `Quick test_hard_path_spares_last_wire;
    Alcotest.test_case "link build" `Quick test_link_build;
    Alcotest.test_case "link hard flag" `Quick test_link_hard_flag;
  ]
