(* The delta-compilation subsystem, tested the only way that matters:
   differentially.  For every generator family, both MTS routing modes
   and every applicable single-edit mutator, the warm compile against the
   base manifest must produce a schedule byte-identical to a cold compile
   of the edited design ([Schedule.to_json_string] equality) — the
   warm≡cold guarantee docs/DELTA.md argues for.  On top of that:
   identity deltas replay everything, connectivity-preserving edits beat
   the cold compile on search work, doctored manifests fail closed,
   block-granular cache entries degrade (never corrupt) under eviction,
   and the canonical serial form the cache keys on is a byte fixpoint. *)

module Compile = Msched.Compile
module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Verify = Msched_check.Verify
module Serial = Msched_netlist.Serial
module Design_gen = Msched_gen.Design_gen
module Manifest = Msched_delta.Manifest
module Diff = Msched_delta.Diff
module Edit = Msched_delta.Edit
module Fingerprint = Msched_delta.Fingerprint
module Cache = Msched_server.Cache
module Diag = Msched_diag.Diag

let options mode =
  {
    Compile.default_options with
    Compile.route = { Tiers.default_options with Tiers.mode };
    verify = false (* The verifier gets its own dedicated test below. *);
  }

(* The nine generator families, sized for test speed; every family the
   bench and verifier exercise is represented. *)
let families () =
  [
    ("fig1", (Design_gen.fig1 ()).Design_gen.netlist);
    ("fig3_latch", (Design_gen.fig3_latch ()).Design_gen.netlist);
    ("handshake", (Design_gen.handshake ()).Design_gen.netlist);
    ( "random_multidomain",
      (Design_gen.random_multidomain ~seed:11 ~domains:3 ~modules:6
         ~mts_fraction:0.3 ())
        .Design_gen.netlist );
    ( "design1_like",
      (Design_gen.design1_like ~seed:1 ~scale:0.02 ()).Design_gen.netlist );
    ( "design2_like",
      (Design_gen.design2_like ~seed:2 ~scale:0.02 ()).Design_gen.netlist );
    ( "gals_islands",
      (Design_gen.gals_islands ~seed:3 ~islands:4 ()).Design_gen.netlist );
    ( "dense_crossing",
      (Design_gen.dense_crossing ~seed:4 ~domains:8 ~density:0.2 ())
        .Design_gen.netlist );
    ( "gated_memory_fabric",
      (Design_gen.gated_memory_fabric ~seed:5 ~banks:4 ()).Design_gen.netlist );
  ]

(* First seed under which this edit kind applies to this design. *)
let find_edit kind nl =
  let rec go seed =
    if seed > 8 then None
    else
      match Edit.apply ~seed kind nl with
      | Ok (nl', desc) -> Some (nl', desc)
      | Error _ -> go (seed + 1)
  in
  go 0

let schedule_json sched = Schedule.to_json_string sched

(* ---- The differential suite: warm ≡ cold, byte for byte. ---- *)

let test_differential () =
  let comparisons = ref 0 in
  List.iter
    (fun (label, nl) ->
      List.iter
        (fun mode ->
          let options = options mode in
          let base = Compile.compile_base ~options nl in
          List.iter
            (fun kind ->
              match find_edit kind nl with
              | None -> () (* Kind inapplicable to this design: fine. *)
              | Some (edited, desc) -> (
                  let what =
                    Printf.sprintf "%s/%s/%s (%s)" label (Tiers.mode_name mode)
                      (Edit.kind_name kind) desc
                  in
                  match Compile.compile_base ~options edited with
                  | cold ->
                      let delta =
                        Compile.compile_delta ~options
                          ~manifest:base.Compile.base_manifest edited
                      in
                      Alcotest.(check string)
                        (what ^ ": delta schedule == cold schedule")
                        (schedule_json cold.Compile.base_compiled.Compile.schedule)
                        (schedule_json
                           delta.Compile.delta_compiled.Compile.schedule);
                      (* The updated manifest describes the edited design
                         exactly as a cold harvest would. *)
                      Alcotest.(check string)
                        (what ^ ": manifest design fingerprint")
                        cold.Compile.base_manifest.Manifest.design_fp
                        delta.Compile.delta_manifest.Manifest.design_fp;
                      Alcotest.(check (array string))
                        (what ^ ": manifest block fingerprints")
                        cold.Compile.base_manifest.Manifest.block_fps
                        delta.Compile.delta_manifest.Manifest.block_fps;
                      incr comparisons
                  | exception _ -> (
                      (* Cold compile of the edited design fails; the delta
                         compile must fail too, never hand back a schedule
                         a cold compile would refuse. *)
                      match
                        Compile.compile_delta ~options
                          ~manifest:base.Compile.base_manifest edited
                      with
                      | _ ->
                          Alcotest.failf "%s: cold compile failed but delta \
                                          compile succeeded"
                            what
                      | exception _ -> ())))
            Edit.all_kinds)
        [ Tiers.Mts_virtual; Tiers.Mts_hard ])
    (families ());
  Alcotest.(check bool)
    (Printf.sprintf "at least 50 differential comparisons ran (got %d)"
       !comparisons)
    true (!comparisons >= 50)

(* ---- Identity delta: everything replays, nothing is searched. ---- *)

let test_identity_replay () =
  let nl =
    (Design_gen.gals_islands ~seed:9 ~islands:6 ~island_size:6 ())
      .Design_gen.netlist
  in
  let options = options Tiers.Mts_virtual in
  let base = Compile.compile_base ~options nl in
  Alcotest.(check bool) "base has ledger entries" true
    (List.length base.Compile.base_manifest.Manifest.entries > 0);
  Alcotest.(check bool) "base did search work" true
    (base.Compile.base_expansions > 0);
  let delta =
    Compile.compile_delta ~options ~manifest:base.Compile.base_manifest nl
  in
  (match delta.Compile.delta_diff with
  | None -> Alcotest.fail "identity delta fell back cold"
  | Some diff ->
      Alcotest.(check int) "no dirty blocks" 0 (Diff.dirty_count diff);
      Alcotest.(check int) "empty cone" 0 (Diff.cone_size diff));
  Alcotest.(check int) "zero expansions on identity replay" 0
    delta.Compile.delta_expansions;
  Alcotest.(check bool) "everything reused" true
    (delta.Compile.delta_reused > 0 && delta.Compile.delta_fresh = 0);
  Alcotest.(check (float 0.0001)) "reuse fraction 1" 1.0
    (Compile.delta_reuse_fraction delta);
  Alcotest.(check string) "schedule identical"
    (schedule_json base.Compile.base_compiled.Compile.schedule)
    (schedule_json delta.Compile.delta_compiled.Compile.schedule)

(* ---- Single-block edit: warm reuse beats the cold search. ---- *)

let test_reuse_beats_cold () =
  let nl =
    (Design_gen.gals_islands ~seed:9 ~islands:6 ~island_size:6 ())
      .Design_gen.netlist
  in
  let options = options Tiers.Mts_virtual in
  let base = Compile.compile_base ~options nl in
  (* A connectivity-preserving edit keeps the seeded partition stable, so
     the untouched blocks' transports replay.  Scan flip seeds until one
     achieves reuse — the partition is allowed to be globally sensitive
     to some edits, but not to all of them. *)
  let rec scan seed =
    if seed > 19 then
      Alcotest.fail
        "no domain-flip edit achieved any reuse over 20 seeds — the cone \
         or fingerprints regressed"
    else
      match Edit.apply ~seed Edit.Flip_domain nl with
      | Error _ -> scan (seed + 1)
      | Ok (edited, desc) ->
          let cold = Compile.compile_base ~options edited in
          let delta =
            Compile.compile_delta ~options ~manifest:base.Compile.base_manifest
              edited
          in
          Alcotest.(check string)
            (desc ^ ": schedule identical")
            (schedule_json cold.Compile.base_compiled.Compile.schedule)
            (schedule_json delta.Compile.delta_compiled.Compile.schedule);
          if delta.Compile.delta_reused > 0 then begin
            Alcotest.(check bool)
              (Printf.sprintf
                 "%s: warm expansions (%d) strictly below cold (%d)" desc
                 delta.Compile.delta_expansions cold.Compile.base_expansions)
              true
              (delta.Compile.delta_expansions < cold.Compile.base_expansions);
            Alcotest.(check bool)
              (desc ^ ": reuse fraction > 0")
              true
              (Compile.delta_reuse_fraction delta > 0.0)
          end
          else scan (seed + 1)
  in
  scan 0

(* ---- The independent verifier accepts delta schedules. ---- *)

let test_delta_schedule_verifies () =
  let nl =
    (Design_gen.random_multidomain ~seed:21 ~domains:3 ~modules:8
       ~mts_fraction:0.3 ())
      .Design_gen.netlist
  in
  let options = options Tiers.Mts_virtual in
  let base = Compile.compile_base ~options nl in
  List.iter
    (fun kind ->
      match find_edit kind nl with
      | None -> ()
      | Some (edited, desc) ->
          let delta =
            Compile.compile_delta ~options ~manifest:base.Compile.base_manifest
              edited
          in
          let p = delta.Compile.delta_compiled.Compile.prepared in
          let report =
            Verify.verify p.Compile.placement p.Compile.analysis
              delta.Compile.delta_compiled.Compile.schedule
          in
          if not (Verify.is_clean report) then
            Alcotest.failf "%s (%s): delta schedule rejected: %a"
              (Edit.kind_name kind) desc Verify.pp_report report)
    Edit.all_kinds

(* ---- Manifest persistence: roundtrip, checksum, foreign options. ---- *)

let small_manifest () =
  let nl =
    (Design_gen.random_multidomain ~seed:31 ~domains:3 ~modules:6
       ~mts_fraction:0.3 ())
      .Design_gen.netlist
  in
  let options = options Tiers.Mts_virtual in
  (nl, options, Compile.compile_base ~options nl)

let test_manifest_roundtrip () =
  let _, _, base = small_manifest () in
  let m = base.Compile.base_manifest in
  let text = Manifest.to_json_string m in
  match Manifest.of_json_string text with
  | Error e -> Alcotest.failf "manifest did not reload: %s" e
  | Ok m' ->
      Alcotest.(check string) "roundtrip is byte-stable" text
        (Manifest.to_json_string m')

let test_manifest_doctored_fails () =
  let _, _, base = small_manifest () in
  let m = base.Compile.base_manifest in
  let text = Manifest.to_json_string m in
  (* Flip one character of the embedded design fingerprint: the document
     still parses as JSON, but the checksum must catch the tamper. *)
  let find_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec scan i =
      if i + n > h then None
      else if String.sub hay i n = needle then Some i
      else scan (i + 1)
    in
    scan 0
  in
  let i =
    match find_sub text m.Manifest.design_fp with
    | Some i -> i
    | None -> Alcotest.fail "design_fp not embedded in manifest JSON"
  in
  let doctored = Bytes.of_string text in
  Bytes.set doctored i (if Bytes.get doctored i = '0' then '1' else '0');
  (match Manifest.of_json_string (Bytes.to_string doctored) with
  | Ok _ -> Alcotest.fail "doctored manifest was accepted"
  | Error _ -> ());
  (* Truncation must also fail closed. *)
  match Manifest.of_json_string (String.sub text 0 (String.length text / 2)) with
  | Ok _ -> Alcotest.fail "truncated manifest was accepted"
  | Error _ -> ()

let test_foreign_options_fall_cold () =
  let nl, options, base = small_manifest () in
  let foreign =
    { base.Compile.base_manifest with Manifest.options_fp = "deadbeefdeadbeef" }
  in
  match find_edit Edit.Flip_domain nl with
  | None -> Alcotest.fail "no applicable flip edit"
  | Some (edited, _) ->
      let cold = Compile.compile_base ~options edited in
      let delta = Compile.compile_delta ~options ~manifest:foreign edited in
      Alcotest.(check bool) "fell back cold" true
        (delta.Compile.delta_diff = None);
      Alcotest.(check int) "nothing reused" 0 delta.Compile.delta_reused;
      Alcotest.(check string) "schedule still identical to cold"
        (schedule_json cold.Compile.base_compiled.Compile.schedule)
        (schedule_json delta.Compile.delta_compiled.Compile.schedule)

(* ---- Block-granular cache entries. ---- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "msched-delta-test-%d-%d" (Unix.getpid ()) !n)
    in
    Cache.ensure_dir dir;
    dir

let test_cache_block_granular () =
  let _, _, base = small_manifest () in
  let m = base.Compile.base_manifest in
  let dir = fresh_dir () in
  let key = "cafe0001cafe0001" in
  (match Cache.store_manifest ~dir ~key m with
  | Ok () -> ()
  | Error d -> Alcotest.failf "store failed: %a" Diag.pp d);
  (* Full reload reassembles the manifest byte-identically. *)
  (match Cache.load_manifest ~dir ~key with
  | Cache.M_hit (m', 0) ->
      Alcotest.(check string) "reassembled byte-identically"
        (Manifest.to_json_string m)
        (Manifest.to_json_string m')
  | Cache.M_hit (_, n) -> Alcotest.failf "%d slices missing on full load" n
  | Cache.M_miss -> Alcotest.fail "stored manifest missed"
  | Cache.M_corrupt _ -> Alcotest.fail "stored manifest corrupt");
  (* An evicted slice degrades that block to cold, nothing more. *)
  Sys.remove (Cache.block_file ~dir ~key ~block:0);
  (match Cache.load_manifest ~dir ~key with
  | Cache.M_hit (m', missing) ->
      Alcotest.(check int) "one slice missing" 1 missing;
      Alcotest.(check bool) "block 0 entries gone, shape intact" true
        (m'.Manifest.num_blocks = m.Manifest.num_blocks
        && List.for_all (fun e -> e.Manifest.m_src <> 0) m'.Manifest.entries)
  | _ -> Alcotest.fail "manifest with an evicted slice must still load");
  (* A corrupt header is a full, diagnosed miss. *)
  let oc = open_out (Cache.manifest_file ~dir ~key) in
  output_string oc "{\"schema\": \"garbage\"}";
  close_out oc;
  (match Cache.load_manifest ~dir ~key with
  | Cache.M_corrupt d ->
      Alcotest.(check string) "E_CACHE" "E_CACHE" (Diag.code_name d.Diag.code)
  | _ -> Alcotest.fail "corrupt header must be reported corrupt");
  match Cache.load_manifest ~dir ~key:"0123456789abcdef" with
  | Cache.M_miss -> ()
  | _ -> Alcotest.fail "unknown key must miss"

let test_cache_gc_never_strands () =
  let _, _, base = small_manifest () in
  let m = base.Compile.base_manifest in
  let dir = fresh_dir () in
  let keys = [ "1111aaaa1111aaaa"; "2222bbbb2222bbbb"; "3333cccc3333cccc" ] in
  List.iter
    (fun key ->
      match Cache.store_manifest ~dir ~key m with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "store failed")
    keys;
  let st = Cache.stats ~dir in
  Alcotest.(check int) "manifest headers counted" 3 st.Cache.st_manifests;
  Alcotest.(check int) "block slices counted"
    (3 * m.Manifest.num_blocks)
    st.Cache.st_blocks;
  (* Evict down to roughly a third: some entries must go, and whatever
     survives must still load — degraded at worst, never corrupt. *)
  let r = Cache.gc ~dir ~max_bytes:(st.Cache.st_bytes / 3) in
  Alcotest.(check bool) "something was evicted" true (r.Cache.gc_evicted > 0);
  Alcotest.(check bool) "cap respected" true
    (r.Cache.gc_bytes_after <= st.Cache.st_bytes / 3);
  List.iter
    (fun key ->
      match Cache.load_manifest ~dir ~key with
      | Cache.M_miss -> ()
      | Cache.M_hit (m', missing) ->
          Alcotest.(check bool) "surviving manifest is coherent" true
            (m'.Manifest.num_blocks = m.Manifest.num_blocks && missing >= 0)
      | Cache.M_corrupt _ ->
          Alcotest.fail "gc stranded a manifest in a corrupt state")
    keys;
  (* Deleting a header orphans its slices; the next gc sweeps them. *)
  let dir2 = fresh_dir () in
  (match Cache.store_manifest ~dir:dir2 ~key:(List.hd keys) m with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "store failed");
  Sys.remove (Cache.manifest_file ~dir:dir2 ~key:(List.hd keys));
  let r2 = Cache.gc ~dir:dir2 ~max_bytes:max_int in
  Alcotest.(check int) "orphaned slices swept" m.Manifest.num_blocks
    r2.Cache.gc_orphans;
  Alcotest.(check int) "directory left empty" 0
    (Cache.stats ~dir:dir2).Cache.st_entries

(* ---- Canonical serial form: the cache-key preimage is a fixpoint. ---- *)

let prop_canonical_fixpoint =
  QCheck.Test.make ~name:"canonical serial text is a byte fixpoint" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let nl =
        (Design_gen.random_multidomain ~seed ~domains:3 ~modules:6
           ~mts_fraction:0.3 ())
          .Design_gen.netlist
      in
      let text = Serial.to_string nl in
      (* Print -> parse -> print is byte-stable... *)
      (match Serial.of_string text with
      | Error _ -> QCheck.Test.fail_report "emitted text did not parse"
      | Ok nl' ->
          if Serial.to_string nl' <> text then
            QCheck.Test.fail_report "print/parse/print not byte-stable");
      (* ...and canonicalization absorbs comments, blank lines and
         renumbering, then reaches its fixpoint in one step. *)
      let noisy = "# a comment\n\n" ^ text ^ "\n# trailing\n\n" in
      match Serial.canonical noisy with
      | Error _ -> QCheck.Test.fail_report "noisy text did not canonicalize"
      | Ok c -> (
          match Serial.canonical c with
          | Error _ -> QCheck.Test.fail_report "canonical text did not reparse"
          | Ok c' -> c = c'))

let prop_cache_key_canonical =
  QCheck.Test.make
    ~name:"cache keys ignore whitespace, comments and net numbering" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let nl =
        (Design_gen.random_multidomain ~seed ~domains:2 ~modules:5
           ~mts_fraction:0.25 ())
          .Design_gen.netlist
      in
      let text = Serial.to_string nl in
      let noisy = "# edited in some IDE\n\n" ^ text ^ "\n\n# eof\n" in
      let options = Compile.default_options in
      Cache.key ~text ~options = Cache.key ~text:noisy ~options)

let suite =
  [
    Alcotest.test_case "differential: delta == cold across families, modes, \
                        edits"
      `Slow test_differential;
    Alcotest.test_case "identity delta replays everything" `Quick
      test_identity_replay;
    Alcotest.test_case "single-block edit reuses and searches less" `Quick
      test_reuse_beats_cold;
    Alcotest.test_case "verifier accepts delta schedules" `Quick
      test_delta_schedule_verifies;
    Alcotest.test_case "manifest JSON roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "doctored manifest fails closed" `Quick
      test_manifest_doctored_fails;
    Alcotest.test_case "foreign options fingerprint falls cold" `Quick
      test_foreign_options_fall_cold;
    Alcotest.test_case "cache: block-granular store, load, degrade" `Quick
      test_cache_block_granular;
    Alcotest.test_case "cache: gc never strands a manifest" `Quick
      test_cache_gc_never_strands;
    QCheck_alcotest.to_alcotest prop_canonical_fixpoint;
    QCheck_alcotest.to_alcotest prop_cache_key_canonical;
  ]
