open Msched_netlist
module B = Netlist.Builder
module Clock = Msched_clocking.Clock
module Edges = Msched_clocking.Edges
module Ref_sim = Msched_sim.Ref_sim
module Stimulus = Msched_sim.Stimulus

let d0 = Ids.Dom.of_int 0

let rise k = { Edges.domain = d0; polarity = Edges.Rising; index = k; time_ps = k * 100 }
let fall k = { Edges.domain = d0; polarity = Edges.Falling; index = k; time_ps = (k * 100) + 50 }

(* A 1-bit toggle: q' = not q. *)
let toggle_design () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let q = B.fresh_net b ~name:"q" () in
  let nq = B.add_gate b Cell.Not [ q ] in
  B.add_flip_flop_to b ~data:nq ~clock:(Cell.Dom_clock d) ~output:q ();
  let (_ : Ids.Cell.t) = B.add_output b q in
  (B.finalize b, q)

let test_ff_toggles () =
  let nl, q = toggle_design () in
  let sim = Ref_sim.create nl (Stimulus.make nl) in
  Alcotest.(check bool) "initial" false (Ref_sim.net_value sim q);
  Ref_sim.apply_edge sim (rise 0);
  Alcotest.(check bool) "after rise 0" true (Ref_sim.net_value sim q);
  Ref_sim.apply_edge sim (fall 0);
  Alcotest.(check bool) "falling edge no capture" true (Ref_sim.net_value sim q);
  Ref_sim.apply_edge sim (rise 1);
  Alcotest.(check bool) "after rise 1" false (Ref_sim.net_value sim q)

let test_ff_captures_pre_edge () =
  (* Two flip-flops in a chain must shift, not fall through. *)
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i = B.add_input b ~domain:d () in
  let q1 = B.add_flip_flop b ~data:i ~clock:(Cell.Dom_clock d) () in
  let q2 = B.add_flip_flop b ~data:q1 ~clock:(Cell.Dom_clock d) () in
  let (_ : Ids.Cell.t) = B.add_output b q2 in
  let nl = B.finalize b in
  let stim = Stimulus.make ~seed:1 nl in
  let sim = Ref_sim.create nl stim in
  let q1_before = Ref_sim.net_value sim q1 in
  Ref_sim.apply_edge sim (rise 0);
  (* q2 must have captured q1's PRE-edge value. *)
  Alcotest.(check bool) "shift semantics" q1_before (Ref_sim.net_value sim q2)

let test_latch_transparent () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let data = B.add_input b ~domain:d () in
  let clk = B.add_clock_source b d in
  let q = B.add_latch b ~data ~gate:(Cell.Net_trigger clk) () in
  let (_ : Ids.Cell.t) = B.add_output b q in
  let nl = B.finalize b in
  let stim = Stimulus.make ~seed:2 nl in
  let sim = Ref_sim.create nl stim in
  (* While the clock is high the latch follows data; when low it holds. *)
  Ref_sim.apply_edge sim (rise 0);
  let data_v = Ref_sim.net_value sim data in
  Alcotest.(check bool) "transparent" data_v (Ref_sim.net_value sim q);
  Ref_sim.apply_edge sim (fall 0);
  let held = Ref_sim.net_value sim q in
  Ref_sim.apply_edge sim (rise 1);
  (* New data comes with the rising edge; latch follows again. *)
  let data_v' = Ref_sim.net_value sim data in
  Alcotest.(check bool) "follows again" data_v' (Ref_sim.net_value sim q);
  ignore held

let test_latch_holds_on_close () =
  (* Gate closes: the latch keeps the pre-edge data even though data
     changes on the same edge. *)
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let data = B.add_input b ~domain:d () in
  let clk = B.add_clock_source b d in
  let ngate = B.add_gate b Cell.Not [ clk ] in
  (* active-high latch gated by NOT clk: open while clk low *)
  let q = B.add_latch b ~data ~gate:(Cell.Net_trigger ngate) () in
  let (_ : Ids.Cell.t) = B.add_output b q in
  let nl = B.finalize b in
  let stim = Stimulus.make ~seed:3 nl in
  let sim = Ref_sim.create nl stim in
  (* clk low initially: latch open, q follows initial data *)
  let initial_data = Ref_sim.net_value sim data in
  Alcotest.(check bool) "open initially" initial_data (Ref_sim.net_value sim q);
  (* Rising edge: gate closes AND data may change; held value must be the
     pre-edge data. *)
  Ref_sim.apply_edge sim (rise 0);
  Alcotest.(check bool) "held pre-edge value" initial_data (Ref_sim.net_value sim q)

let test_ram_write_read () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let we = B.add_input b ~domain:d () in
  let wdata = B.add_input b ~domain:d () in
  let addr = B.add_input b ~domain:d () in
  let rdata =
    B.add_ram b ~addr_bits:1 ~write_enable:we ~write_data:wdata
      ~write_addr:[ addr ] ~read_addr:[ addr ] ~clock:(Cell.Dom_clock d) ()
  in
  let (_ : Ids.Cell.t) = B.add_output b rdata in
  let nl = B.finalize b in
  let stim = Stimulus.make ~seed:4 nl in
  let sim = Ref_sim.create nl stim in
  (* Drive a few edges and check that the RAM contents track committed
     writes: after each rising edge where we=1 (pre-edge), mem[addr] is the
     pre-edge wdata. *)
  let prev = ref None in
  for k = 0 to 7 do
    let pre_we = Ref_sim.net_value sim we in
    let pre_data = Ref_sim.net_value sim wdata in
    let pre_addr = if Ref_sim.net_value sim addr then 1 else 0 in
    Ref_sim.apply_edge sim (rise k);
    if pre_we then prev := Some (pre_addr, pre_data);
    (match !prev with
    | Some (a, v) ->
        let ram_cell =
          List.find
            (fun cid ->
              match (Netlist.cell nl cid).Cell.kind with
              | Cell.Ram _ -> true
              | _ -> false)
            (Ref_sim.state_cells nl)
        in
        let mem = Ref_sim.ram_contents sim ram_cell in
        Alcotest.(check bool) "committed write visible" v mem.(a)
    | None -> ());
    Ref_sim.apply_edge sim (fall k)
  done

let test_state_snapshot_stable_order () =
  let nl, _ = toggle_design () in
  let sim = Ref_sim.create nl (Stimulus.make nl) in
  let s1 = Ref_sim.state_snapshot sim in
  let s2 = Ref_sim.state_snapshot sim in
  List.iter2
    (fun (a, _) (b, _) -> Alcotest.(check int) "order" (Ids.Cell.to_int a) (Ids.Cell.to_int b))
    s1 s2

let test_stimulus_deterministic () =
  let nl, _ = toggle_design () in
  let s1 = Stimulus.make ~seed:9 nl and s2 = Stimulus.make ~seed:9 nl in
  let cell =
    Netlist.fold_cells nl ~init:None ~f:(fun acc c ->
        match c.Cell.kind with Cell.Input _ -> Some c | _ -> acc)
  in
  match cell with
  | None -> () (* toggle has no inputs; fine *)
  | Some c ->
      for k = -1 to 20 do
        Alcotest.(check bool) "same" (Stimulus.value s1 c ~edge_index:k)
          (Stimulus.value s2 c ~edge_index:k)
      done

let suite =
  [
    Alcotest.test_case "ff toggles" `Quick test_ff_toggles;
    Alcotest.test_case "ff captures pre-edge" `Quick test_ff_captures_pre_edge;
    Alcotest.test_case "latch transparent" `Quick test_latch_transparent;
    Alcotest.test_case "latch holds on close" `Quick test_latch_holds_on_close;
    Alcotest.test_case "ram write/read" `Quick test_ram_write_read;
    Alcotest.test_case "snapshot order stable" `Quick test_state_snapshot_stable_order;
    Alcotest.test_case "stimulus deterministic" `Quick test_stimulus_deterministic;
  ]
