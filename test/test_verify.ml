(* The static schedule verifier (Msched_check.Verify) as a fuzzing oracle.

   Three layers of evidence that the verifier is the right third leg next to
   the by-construction schedulers and the dynamic fidelity harness:

   - a seeded fuzz loop: every TIERS schedule for >= 100 random multi-domain
     designs, in both virtual and hard MTS modes, is verifier-clean;
   - a cross-check: on a subsample, verifier-clean schedules are also
     fidelity-perfect under lock-step differential simulation;
   - qcheck properties: TIERS (and the forward scheduler) always emit clean
     schedules, while naive mode on a design with stateful MTS logic is
     flagged statically (or at least warned about by the scheduler). *)

module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Netlist = Msched_netlist.Netlist
module Async_gen = Msched_clocking.Async_gen
module Fidelity = Msched_sim.Fidelity
module Design_gen = Msched_gen.Design_gen
module Verify = Msched_check.Verify

let design_of_seed seed =
  (* Vary every generator knob with the seed so the fuzz corpus covers
     2..4 domains, different sizes and MTS densities, plus the MTS
     flip-flop and cross-written RAM extensions. *)
  Design_gen.random_multidomain ~seed
    ~domains:(2 + (seed mod 3))
    ~modules:(12 + (seed mod 4 * 6))
    ~mts_fraction:(0.15 +. (0.1 *. float_of_int (seed mod 3)))
    ~mts_ffs:(seed mod 2)
    ~xwrite_rams:(if seed mod 5 = 0 then 1 else 0)
    ()

let prepare_seed seed =
  let d = design_of_seed seed in
  let copts =
    {
      Msched.Compile.default_options with
      Msched.Compile.max_block_weight = 24 + (seed mod 3 * 8);
    }
  in
  Msched.Compile.prepare ~options:copts d.Design_gen.netlist

let verify prepared sched = Msched.Compile.verify_schedule prepared sched

let fuzz_seeds = List.init 100 (fun i -> 9000 + i)

(* The GALS/handshake workload families (ISSUE 6): same oracle, different
   asynchronous topologies — pausible-clock islands, dense pairwise
   crossings, clock-gated memory fabrics. *)
let family_design_of_seed seed =
  match seed mod 3 with
  | 0 ->
      Design_gen.gals_islands ~seed
        ~islands:(3 + (seed mod 4))
        ~island_size:(1 + (seed mod 2))
        ~wrapper_depth:(2 + (seed mod 2))
        ()
  | 1 ->
      Design_gen.dense_crossing ~seed
        ~domains:(4 + (seed mod 8))
        ~density:(0.15 +. (0.07 *. float_of_int (seed mod 6)))
        ()
  | _ ->
      Design_gen.gated_memory_fabric ~seed
        ~banks:(2 + (seed mod 6))
        ~domains:(2 + (seed mod 3))
        ()

let test_fuzz_families_clean () =
  (* Every workload family, scheduled in both virtual and hard MTS modes,
     verifier-clean across a seeded sweep. *)
  let failures = ref [] in
  List.iter
    (fun seed ->
      let d = family_design_of_seed seed in
      let copts =
        {
          Msched.Compile.default_options with
          Msched.Compile.max_block_weight = 32 + (seed mod 2 * 16);
        }
      in
      let prepared = Msched.Compile.prepare ~options:copts d.Design_gen.netlist in
      List.iter
        (fun (mode, ropts) ->
          let sched = Msched.Compile.route prepared ropts in
          let r = verify prepared sched in
          if not (Verify.is_clean r) then
            failures :=
              Format.asprintf "%s seed %d %s: %a" d.Design_gen.design_label
                seed mode Verify.pp_report r
              :: !failures)
        [ ("virtual", Tiers.default_options); ("hard", Tiers.hard_options) ])
    (List.init 24 (fun i -> 9100 + i));
  Alcotest.(check (list string)) "all family schedules verifier-clean" []
    (List.rev !failures)

let test_fuzz_tiers_clean () =
  (* The acceptance bar: >= 100 random designs, each scheduled in both
     virtual and hard MTS modes, all verifier-clean. *)
  let schedules = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let prepared = prepare_seed seed in
      List.iter
        (fun (mode, ropts) ->
          let sched = Msched.Compile.route prepared ropts in
          incr schedules;
          let r = verify prepared sched in
          if not (Verify.is_clean r) then
            failures :=
              Format.asprintf "seed %d %s: %a" seed mode Verify.pp_report r
              :: !failures)
        [ ("virtual", Tiers.default_options); ("hard", Tiers.hard_options) ])
    fuzz_seeds;
  Alcotest.(check (list string)) "all TIERS schedules verifier-clean" []
    (List.rev !failures);
  Alcotest.(check bool) "fuzz budget met" true (!schedules >= 200)

let test_fuzz_forward_clean () =
  (* The forward list scheduler is an independent construction — the
     verifier must accept its schedules too (virtual mode only; forward
     does not support hard routing). *)
  let failures = ref [] in
  List.iter
    (fun seed ->
      let prepared = prepare_seed seed in
      let sched = Msched.Compile.route_forward prepared Tiers.default_options in
      let r = verify prepared sched in
      if not (Verify.is_clean r) then
        failures :=
          Format.asprintf "seed %d forward: %a" seed Verify.pp_report r
          :: !failures)
    (List.init 20 (fun i -> 9000 + (5 * i)));
  Alcotest.(check (list string)) "forward schedules verifier-clean" []
    (List.rev !failures)

let test_clean_implies_fidelity () =
  (* Cross-check the static verdict against the dynamic oracle: on a
     subsample of the fuzz corpus, every verifier-clean schedule is also
     fidelity-perfect in lock-step differential simulation. *)
  List.iter
    (fun seed ->
      let prepared = prepare_seed seed in
      let sched = Msched.Compile.route prepared Tiers.default_options in
      let r = verify prepared sched in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d verifier-clean" seed)
        true (Verify.is_clean r);
      let clocks =
        Async_gen.clocks ~seed
          (Netlist.domains prepared.Msched.Compile.netlist)
      in
      let f =
        Fidelity.compare_run prepared.Msched.Compile.placement sched ~clocks
          ~horizon_ps:120_000 ~seed ()
      in
      Alcotest.(check bool)
        (Format.asprintf "seed %d fidelity-perfect: %a" seed
           Fidelity.pp_report f)
        true (Fidelity.perfect f))
    (List.init 8 (fun i -> 9001 + (13 * i)))

let prop_tiers_always_clean =
  QCheck.Test.make ~name:"TIERS schedules are always verifier-clean"
    ~count:12
    QCheck.(int_range 2000 5999)
    (fun seed ->
      let prepared = prepare_seed seed in
      List.for_all
        (fun ropts ->
          Verify.is_clean (verify prepared (Msched.Compile.route prepared ropts)))
        [ Tiers.default_options; Tiers.hard_options ])

let prop_naive_flagged_or_warned =
  (* Paper Section 3: naive scheduling of a design with stateful MTS logic
     is unsafe.  Statically that surfaces as a verifier violation (naive
     mode emits no hold-offs, and may also skew forks) or, at minimum, a
     scheduler warning.  Designs whose TIERS schedule needs no hold-offs
     (no latches or net-triggered state) are exempt: a pure-FF design such
     as a handshake synchronizer legitimately survives naive routing. *)
  QCheck.Test.make
    ~name:"naive mode on stateful MTS designs is flagged statically"
    ~count:12
    QCheck.(int_range 6000 8999)
    (fun seed ->
      let prepared = prepare_seed seed in
      let tiers = Msched.Compile.route prepared Tiers.default_options in
      QCheck.assume (tiers.Schedule.holdoffs <> []);
      let naive = Msched.Compile.route prepared Tiers.naive_options in
      let r = verify prepared naive in
      (not (Verify.is_clean r)) || naive.Schedule.warnings <> [])

let test_report_shape () =
  let prepared = prepare_seed 9001 in
  let sched = Msched.Compile.route prepared Tiers.default_options in
  let r = verify prepared sched in
  Alcotest.(check bool) "links counted" true
    (r.Verify.links_checked = List.length sched.Schedule.link_scheds);
  Alcotest.(check int) "frame length recorded" sched.Schedule.length
    r.Verify.length;
  Alcotest.(check int) "no hold-safety cells on clean schedule" 0
    (Msched_netlist.Ids.Cell.Set.cardinal (Verify.hold_safety_cells r));
  Alcotest.(check int) "count_kind on clean schedule" 0
    (Verify.count_kind r "fork-skew")

let test_compile_verifies_by_default () =
  (* Compile.compile with default options runs the verifier; a clean design
     must pass, and the options record must default to verify = true. *)
  Alcotest.(check bool) "default verify on" true
    Msched.Compile.default_options.Msched.Compile.verify;
  let d = design_of_seed 9002 in
  let compiled =
    Msched.Compile.compile
      ~options:
        {
          Msched.Compile.default_options with
          Msched.Compile.max_block_weight = 32;
        }
      d.Design_gen.netlist
  in
  Alcotest.(check bool) "compile produced a schedule" true
    (compiled.Msched.Compile.schedule.Schedule.length > 0)

let suite =
  [
    Alcotest.test_case "fuzz: 100 designs x {virtual,hard} clean" `Slow
      test_fuzz_tiers_clean;
    Alcotest.test_case "fuzz: forward scheduler clean" `Slow
      test_fuzz_forward_clean;
    Alcotest.test_case "fuzz: workload families x {virtual,hard} clean" `Slow
      test_fuzz_families_clean;
    Alcotest.test_case "clean implies fidelity-perfect" `Slow
      test_clean_implies_fidelity;
    Alcotest.test_case "report shape" `Quick test_report_shape;
    Alcotest.test_case "compile verifies by default" `Quick
      test_compile_verifies_by_default;
    QCheck_alcotest.to_alcotest prop_tiers_always_clean;
    QCheck_alcotest.to_alcotest prop_naive_flagged_or_warned;
  ]
