open Msched_netlist
module Partition = Msched_partition.Partition
module Schedule = Msched_route.Schedule
module Tiers = Msched_route.Tiers
module Design_gen = Msched_gen.Design_gen

let test_prepare_pipeline () =
  let d = Design_gen.fig3_latch () in
  let prepared = Msched.Compile.prepare d.Design_gen.netlist in
  Alcotest.(check bool) "has partition" true
    (Partition.num_blocks prepared.Msched.Compile.partition >= 1);
  Alcotest.(check int) "latch analysis per block"
    (Partition.num_blocks prepared.Msched.Compile.partition)
    (Array.length prepared.Msched.Compile.latch_analysis);
  (* fig3 has one MTS latch. *)
  Alcotest.(check int) "one MTS state" 1
    (Ids.Cell.Set.cardinal
       prepared.Msched.Compile.classification.Msched_mts.Classify.mts_states)

let test_compile_end_to_end () =
  let d = Design_gen.random_multidomain ~seed:55 ~domains:2 ~modules:15 ~mts_fraction:0.2 () in
  let compiled = Msched.Compile.compile d.Design_gen.netlist in
  Alcotest.(check bool) "schedule built" true
    (compiled.Msched.Compile.schedule.Schedule.length >= 1)

let test_multi_domain_ram_compiles () =
  let b = Netlist.Builder.create () in
  let d0 = Netlist.Builder.add_domain b "c0" in
  let d1 = Netlist.Builder.add_domain b "c1" in
  let i0 = Netlist.Builder.add_input b ~domain:d0 () in
  let i1 = Netlist.Builder.add_input b ~domain:d1 () in
  let mix = Netlist.Builder.add_gate b Cell.Or [ i0; i1 ] in
  let rdata =
    Netlist.Builder.add_ram b ~addr_bits:1 ~write_enable:i0 ~write_data:i0
      ~write_addr:[ i0 ] ~read_addr:[ i1 ] ~clock:(Cell.Net_trigger mix) ()
  in
  let (_ : Ids.Cell.t) = Netlist.Builder.add_output b rdata in
  let nl = Netlist.Builder.finalize b in
  let compiled = Msched.Compile.compile nl in
  Alcotest.(check bool) "schedules" true
    (compiled.Msched.Compile.schedule.Schedule.length >= 1)

let test_mts_ff_transformed_in_pipeline () =
  let b = Netlist.Builder.create () in
  let d0 = Netlist.Builder.add_domain b "c0" in
  let d1 = Netlist.Builder.add_domain b "c1" in
  let i0 = Netlist.Builder.add_input b ~domain:d0 () in
  let i1 = Netlist.Builder.add_input b ~domain:d1 () in
  let mix = Netlist.Builder.add_gate b Cell.Or [ i0; i1 ] in
  let q = Netlist.Builder.add_flip_flop b ~data:i0 ~clock:(Cell.Net_trigger mix) () in
  let (_ : Ids.Cell.t) = Netlist.Builder.add_output b q in
  let nl = Netlist.Builder.finalize b in
  let prepared = Msched.Compile.prepare nl in
  Alcotest.(check int) "one rewrite" 1 (List.length prepared.Msched.Compile.rewrites)

let test_report_shape () =
  let d = Design_gen.design1_like ~scale:0.02 () in
  let options =
    {
      Msched.Compile.default_options with
      Msched.Compile.max_block_weight = 64;
      pins_per_fpga = 96;
    }
  in
  let r = Msched.Report.of_design ~options d in
  Alcotest.(check int) "domains" 3 r.Msched.Report.num_domains;
  Alcotest.(check bool) "speeds positive" true
    (r.Msched.Report.speed_hard_hz > 0.0 && r.Msched.Report.speed_virtual_hz > 0.0);
  Alcotest.(check bool) "virtual at least as fast" true
    (r.Msched.Report.speed_virtual_hz >= r.Msched.Report.speed_hard_hz);
  Alcotest.(check int) "fpgas partition"
    r.Msched.Report.total_fpgas
    (r.Msched.Report.num_mts_fpgas + r.Msched.Report.num_non_mts_fpgas)

let test_pin_sweep_monotone () =
  let d = Design_gen.random_multidomain ~seed:66 ~domains:2 ~modules:50 ~mts_fraction:0.2 () in
  let points =
    Msched.Pin_sweep.sweep ~weights:[ 96; 24 ]
      ~pin_candidates:[ 96; 48; 24 ] d.Design_gen.netlist
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  (* Smaller partitions -> more FPGAs, fewer hard pins. *)
  match points with
  | [ big; small ] ->
      Alcotest.(check bool) "more fpgas when smaller" true
        (small.Msched.Pin_sweep.fpga_count > big.Msched.Pin_sweep.fpga_count);
      Alcotest.(check bool) "fewer hard pins when smaller" true
        (small.Msched.Pin_sweep.pins_hard <= big.Msched.Pin_sweep.pins_hard);
      (* Virtual demand is far below hard demand on the big partition. *)
      (match big.Msched.Pin_sweep.pins_virtual with
      | Some v ->
          Alcotest.(check bool) "virtual << hard" true
            (v < big.Msched.Pin_sweep.pins_hard)
      | None -> Alcotest.fail "virtual should be feasible")
  | _ -> Alcotest.fail "expected two points"

let test_min_fpgas_under_limit () =
  let points =
    [
      {
        Msched.Pin_sweep.max_block_weight = 64;
        fpga_count = 10;
        pins_hard = 100;
        pins_virtual = Some 20;
        base_length = 5;
      };
      {
        Msched.Pin_sweep.max_block_weight = 32;
        fpga_count = 20;
        pins_hard = 50;
        pins_virtual = Some 16;
        base_length = 7;
      };
    ]
  in
  Alcotest.(check (option int)) "hard at 60" (Some 20)
    (Msched.Pin_sweep.min_fpgas_under_pin_limit points ~pin_limit:60 ~hard:true);
  Alcotest.(check (option int)) "virtual at 60" (Some 10)
    (Msched.Pin_sweep.min_fpgas_under_pin_limit points ~pin_limit:60 ~hard:false);
  Alcotest.(check (option int)) "hard at 40" None
    (Msched.Pin_sweep.min_fpgas_under_pin_limit points ~pin_limit:40 ~hard:true)

let suite =
  [
    Alcotest.test_case "prepare pipeline" `Quick test_prepare_pipeline;
    Alcotest.test_case "compile end to end" `Quick test_compile_end_to_end;
    Alcotest.test_case "multi-domain ram compiles" `Quick test_multi_domain_ram_compiles;
    Alcotest.test_case "mts ff transformed" `Quick test_mts_ff_transformed_in_pipeline;
    Alcotest.test_case "report shape" `Slow test_report_shape;
    Alcotest.test_case "pin sweep monotone" `Slow test_pin_sweep_monotone;
    Alcotest.test_case "min fpgas under limit" `Quick test_min_fpgas_under_limit;
  ]
