open Msched_netlist
module Design_gen = Msched_gen.Design_gen
module DA = Msched_mts.Domain_analysis

let test_all_generators_valid () =
  let designs =
    [
      Design_gen.fig1 ();
      Design_gen.fig3_latch ();
      Design_gen.handshake ();
      Design_gen.random_multidomain ~domains:3 ~modules:20 ~mts_fraction:0.2 ();
      Design_gen.design1_like ~scale:0.02 ();
      Design_gen.design2_like ~scale:0.02 ();
      Design_gen.gals_islands ~islands:4 ~island_size:2 ();
      Design_gen.dense_crossing ~domains:6 ~density:0.3 ();
      Design_gen.gated_memory_fabric ~banks:4 ();
    ]
  in
  List.iter
    (fun (d : Design_gen.design) ->
      match Levelize.compute d.Design_gen.netlist with
      | Ok _ -> ()
      | Error _ ->
          Alcotest.fail (d.Design_gen.design_label ^ " has a combinational cycle"))
    designs

let test_deterministic () =
  let a = Design_gen.random_multidomain ~seed:3 ~domains:2 ~modules:10 ~mts_fraction:0.2 () in
  let b = Design_gen.random_multidomain ~seed:3 ~domains:2 ~modules:10 ~mts_fraction:0.2 () in
  Alcotest.(check int) "same cells" (Netlist.num_cells a.Design_gen.netlist)
    (Netlist.num_cells b.Design_gen.netlist);
  Alcotest.(check int) "same nets" (Netlist.num_nets a.Design_gen.netlist)
    (Netlist.num_nets b.Design_gen.netlist)

let test_domain_counts () =
  let d1 = Design_gen.design1_like ~scale:0.02 () in
  let d2 = Design_gen.design2_like ~scale:0.02 () in
  Alcotest.(check int) "design1 3 domains" 3 (Netlist.num_domains d1.Design_gen.netlist);
  Alcotest.(check int) "design2 2 domains" 2 (Netlist.num_domains d2.Design_gen.netlist)

let test_mts_presence () =
  let d =
    Design_gen.random_multidomain ~seed:4 ~domains:2 ~modules:20 ~mts_fraction:0.3 ()
  in
  let nl = d.Design_gen.netlist in
  let da = DA.compute nl in
  let mts = ref 0 in
  Netlist.iter_nets nl (fun n _ -> if DA.is_multi_transition da n then incr mts);
  Alcotest.(check bool) "has MTS nets" true (!mts > 0);
  Alcotest.(check bool) "counted mts modules" true (d.Design_gen.mts_modules > 0)

let test_design2_has_rams () =
  let d = Design_gen.design2_like ~scale:0.02 () in
  let stats = Stats.compute d.Design_gen.netlist in
  Alcotest.(check bool) "rams present" true (stats.Stats.num_rams > 0);
  Alcotest.(check bool) "latches present (mts modules)" true (stats.Stats.num_latches > 0)

let test_gate_paths_race_free () =
  (* Every net-triggered state element's gate cone must contain at most one
     signal per domain at each input level — we check the weaker but
     sufficient generator invariant: latch gates are 1-level ORs of
     registered signals from distinct domains. *)
  let d =
    Design_gen.random_multidomain ~seed:5 ~domains:3 ~modules:30 ~mts_fraction:0.3 ()
  in
  let nl = d.Design_gen.netlist in
  let da = DA.compute nl in
  Netlist.iter_cells nl (fun c ->
      match c.Cell.kind, c.Cell.trigger with
      | Cell.Latch _, Some (Cell.Net_trigger g) ->
          let drv = Netlist.driver nl g in
          (match drv.Cell.kind with
          | Cell.Gate Cell.Or ->
              let domains_per_input =
                Array.to_list drv.Cell.data_inputs
                |> List.map (fun n -> DA.transitions da n)
              in
              (* inputs have pairwise-disjoint domain sets *)
              let rec pairwise = function
                | [] -> true
                | x :: rest ->
                    List.for_all
                      (fun y -> Ids.Dom.Set.is_empty (Ids.Dom.Set.inter x y))
                      rest
                    && pairwise rest
              in
              Alcotest.(check bool) "gate inputs domain-disjoint" true
                (pairwise domains_per_input)
          | _ -> Alcotest.fail "latch gate should be a single OR")
      | _ -> ())

let suite =
  [
    Alcotest.test_case "generators valid" `Quick test_all_generators_valid;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "domain counts" `Quick test_domain_counts;
    Alcotest.test_case "mts presence" `Quick test_mts_presence;
    Alcotest.test_case "design2 has rams" `Quick test_design2_has_rams;
    Alcotest.test_case "gate paths race free" `Quick test_gate_paths_race_free;
  ]
