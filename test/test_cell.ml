open Msched_netlist

let eval g ins = Cell.eval_gate g (Array.of_list ins)

let test_truth_tables () =
  Alcotest.(check bool) "and tt" true (eval Cell.And [ true; true ]);
  Alcotest.(check bool) "and tf" false (eval Cell.And [ true; false ]);
  Alcotest.(check bool) "or ff" false (eval Cell.Or [ false; false ]);
  Alcotest.(check bool) "or ft" true (eval Cell.Or [ false; true ]);
  Alcotest.(check bool) "nand tt" false (eval Cell.Nand [ true; true ]);
  Alcotest.(check bool) "nor ff" true (eval Cell.Nor [ false; false ]);
  Alcotest.(check bool) "xor tf" true (eval Cell.Xor [ true; false ]);
  Alcotest.(check bool) "xor tt" false (eval Cell.Xor [ true; true ]);
  Alcotest.(check bool) "xnor tt" true (eval Cell.Xnor [ true; true ]);
  Alcotest.(check bool) "not t" false (eval Cell.Not [ true ]);
  Alcotest.(check bool) "buf f" false (eval Cell.Buf [ false ])

let test_mux () =
  (* inputs = [| sel; a; b |], sel=0 -> a *)
  Alcotest.(check bool) "mux sel0" true (eval Cell.Mux [ false; true; false ]);
  Alcotest.(check bool) "mux sel1" false (eval Cell.Mux [ true; true; false ])

let test_variadic () =
  Alcotest.(check bool) "and3" true (eval Cell.And [ true; true; true ]);
  Alcotest.(check bool) "or4" true (eval Cell.Or [ false; false; false; true ]);
  Alcotest.(check bool) "and1" true (eval Cell.And [ true ])

let test_arity_checks () =
  Alcotest.check_raises "xor arity"
    (Invalid_argument "gate xor expects 2 inputs, got 3") (fun () ->
      ignore (eval Cell.Xor [ true; true; true ]));
  Alcotest.check_raises "not arity"
    (Invalid_argument "gate not expects 1 inputs, got 2") (fun () ->
      ignore (eval Cell.Not [ true; false ]))

let test_ram_words () =
  Alcotest.(check int) "2^4" 16 (Cell.ram_words ~addr_bits:4);
  Alcotest.(check int) "2^0" 1 (Cell.ram_words ~addr_bits:0);
  Alcotest.check_raises "negative" (Invalid_argument "ram_words: addr_bits")
    (fun () -> ignore (Cell.ram_words ~addr_bits:(-1)))

let test_predicates () =
  let mk kind trigger =
    {
      Cell.id = Ids.Cell.of_int 0;
      kind;
      data_inputs = [||];
      trigger;
      output = None;
      name = "t";
    }
  in
  let d0 = Ids.Dom.of_int 0 in
  Alcotest.(check bool) "latch seq" true
    (Cell.is_sequential (mk (Cell.Latch { active_high = true }) (Some (Cell.Dom_clock d0))));
  Alcotest.(check bool) "gate comb" true (Cell.is_combinational (mk (Cell.Gate Cell.And) None));
  Alcotest.(check bool) "gate not seq" false (Cell.is_sequential (mk (Cell.Gate Cell.And) None));
  Alcotest.(check bool) "input source" true
    (Cell.is_source (mk (Cell.Input { domain = None }) None));
  Alcotest.(check bool) "clock source" true
    (Cell.is_source (mk (Cell.Clock_source d0) None));
  Alcotest.(check bool) "output not source" false (Cell.is_source (mk Cell.Output None))

let suite =
  [
    Alcotest.test_case "gate truth tables" `Quick test_truth_tables;
    Alcotest.test_case "mux" `Quick test_mux;
    Alcotest.test_case "variadic gates" `Quick test_variadic;
    Alcotest.test_case "arity checks" `Quick test_arity_checks;
    Alcotest.test_case "ram words" `Quick test_ram_words;
    Alcotest.test_case "predicates" `Quick test_predicates;
  ]
