(* Parallel-compile determinism: --compile-jobs is a pure wall-clock knob.
   The speculative parallel TIERS reverse pass and placement annealer must
   produce byte-identical schedules, identical attempt ladders, identical
   emulation frequencies and identical placement metrics at every parallel
   width, cold and warm. *)

module Tiers = Msched_route.Tiers
module Schedule = Msched_route.Schedule
module Placement = Msched_place.Placement
module Design_gen = Msched_gen.Design_gen
module Sink = Msched_obs.Sink
module Verify = Msched_check.Verify
module Diag = Msched_diag.Diag
module Compile = Msched.Compile

(* Same pressure as test_reroute: tight enough that many seeds exercise
   the retry ladder (and with it the warm parallel path), loose enough
   that relaxation recovers. *)
let tight_options jobs =
  {
    Compile.default_options with
    Compile.max_block_weight = 32;
    pins_per_fpga = 24;
    route = { Tiers.default_options with Tiers.max_extra_slots = 0 };
    compile_jobs = jobs;
  }

let run ~jobs ~reuse ?(options = tight_options) nl =
  Compile.compile_resilient ~options:(options jobs) ~max_retries:2
    ~fallback_hard:true ~reuse nl

let labels r = List.map (fun a -> a.Compile.attempt_label) r.Compile.attempts

let hz r =
  match r.Compile.degradation.Compile.achieved_hz with
  | None -> 0.0
  | Some hz -> hz

let schedule_json r =
  match r.Compile.compiled with
  | None -> "<none>"
  | Some c -> Schedule.to_json_string c.Compile.schedule

let check_verifier_clean name r =
  match r.Compile.compiled with
  | None -> ()
  | Some c ->
      let report =
        Compile.verify_schedule c.Compile.prepared c.Compile.schedule
      in
      Alcotest.(check bool) (name ^ ": verifier clean") true
        (Verify.is_clean report)

(* The core differential: a jobs=4 resilient run against the jobs=1 run on
   the same netlist — byte-identical schedule JSON, same ladder, same Hz —
   under both a warm (ledger-reusing) and a cold context. *)
let differential_nl ?options ~ctxname nl =
  let compiled = ref false in
  List.iter
    (fun (mode, reuse) ->
      let seq = run ~jobs:1 ~reuse ?options nl in
      let par = run ~jobs:4 ~reuse ?options nl in
      let name what = Printf.sprintf "%s %s: %s" ctxname mode what in
      Alcotest.(check bool)
        (name "same success")
        (Compile.succeeded seq) (Compile.succeeded par);
      Alcotest.(check (list string))
        (name "same attempt labels")
        (labels seq) (labels par);
      Alcotest.(check (float 0.0)) (name "same Hz") (hz seq) (hz par);
      Alcotest.(check string)
        (name "byte-identical schedule JSON")
        (schedule_json seq) (schedule_json par);
      check_verifier_clean (name "jobs=4") par;
      if Compile.succeeded par then compiled := true)
    [ ("warm", true); ("cold", false) ];
  !compiled

let test_differential_many_seeds () =
  (* The 51-design set of the warm-reroute differential (test_reroute),
     now diffed across parallel widths. *)
  let succeeded = ref 0 and total = ref 0 in
  List.iter
    (fun (modules, domains) ->
      for seed = 100 to 100 + 16 do
        incr total;
        let nl =
          (Design_gen.random_multidomain ~seed ~domains ~modules
             ~mts_fraction:0.25 ())
            .Design_gen.netlist
        in
        if differential_nl ~ctxname:(Printf.sprintf "seed %d" seed) nl then
          incr succeeded
      done)
    [ (10, 2); (16, 3); (22, 4) ];
  Alcotest.(check bool)
    (Printf.sprintf "designs compiled (%d/%d)" !succeeded !total)
    true
    (!succeeded > !total / 2);
  Alcotest.(check bool) "suite is >= 50 designs" true (!total >= 50)

let families =
  [
    ("fig1", fun () -> Design_gen.fig1 ());
    ("fig3_latch", fun () -> Design_gen.fig3_latch ());
    ("handshake", fun () -> Design_gen.handshake ());
    ( "random",
      fun () ->
        Design_gen.random_multidomain ~seed:42 ~domains:3 ~modules:14
          ~mts_fraction:0.3 () );
    ("design1", fun () -> Design_gen.design1_like ~seed:1 ~scale:0.05 ());
    ("design2", fun () -> Design_gen.design2_like ~seed:2 ~scale:0.05 ());
    ("gals", fun () -> Design_gen.gals_islands ~seed:3 ~islands:4 ());
    ( "dense",
      fun () -> Design_gen.dense_crossing ~seed:4 ~domains:6 ~density:0.3 () );
    ("fabric", fun () -> Design_gen.gated_memory_fabric ~seed:5 ~banks:4 ());
  ]

let test_differential_families () =
  (* Every generator family, in both MTS routing modes. *)
  List.iter
    (fun (label, thunk) ->
      let d = thunk () in
      List.iter
        (fun (mname, mode) ->
          let options jobs =
            {
              (tight_options jobs) with
              Compile.route =
                { Tiers.default_options with Tiers.mode };
            }
          in
          ignore
            (differential_nl ~options
               ~ctxname:(Printf.sprintf "%s/%s" label mname)
               d.Design_gen.netlist))
        [ ("virtual", Tiers.Mts_virtual); ("hard", Tiers.Mts_hard) ])
    families

(* qcheck: any random multidomain design, any jobs in {1,2,4} — all three
   widths agree byte-for-byte. *)
let prop_jobs_agree =
  QCheck.Test.make ~name:"jobs 1/2/4 agree on random multidomain" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let nl =
        (Design_gen.random_multidomain ~seed ~domains:(2 + (seed mod 3))
           ~modules:(8 + (seed mod 9)) ~mts_fraction:0.25 ())
          .Design_gen.netlist
      in
      let results =
        List.map (fun jobs -> run ~jobs ~reuse:true nl) [ 1; 2; 4 ]
      in
      match results with
      | [ r1; r2; r4 ] ->
          schedule_json r1 = schedule_json r2
          && schedule_json r1 = schedule_json r4
          && labels r1 = labels r2
          && labels r1 = labels r4
      | _ -> false)

(* ---- Placement: move counters and result are jobs-independent. ---- *)

let test_placement_counters_jobs_independent () =
  List.iter
    (fun seed ->
      let d =
        Design_gen.random_multidomain ~seed ~domains:3 ~modules:18
          ~mts_fraction:0.25 ()
      in
      let place jobs =
        let obs = Sink.create () in
        let p =
          Compile.prepare
            ~options:
              {
                Compile.default_options with
                Compile.obs = obs;
                compile_jobs = jobs;
                max_block_weight = 32;
              }
            d.Design_gen.netlist
        in
        (obs, p.Compile.placement)
      in
      let obs1, p1 = place 1 in
      let obs4, p4 = place 4 in
      List.iter
        (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d: %s jobs-independent" seed c)
            (Sink.counter obs1 c) (Sink.counter obs4 c))
        [ "place.moves_tried"; "place.moves_accepted" ];
      Alcotest.(check (float 0.0))
        (Printf.sprintf "seed %d: same wirelength" seed)
        (float_of_int (Placement.wirelength p1))
        (float_of_int (Placement.wirelength p4));
      (* The moves_accepted/moves_rejected span args are counted in
         canonical move order at commit time, so the annotated placement
         span is identical too. *)
      let span_args obs =
        List.concat_map
          (fun sp ->
            if sp.Sink.sp_name = "placement" then sp.Sink.sp_args else [])
          (Sink.spans obs)
        |> List.filter (fun (k, _) ->
               k = "moves_accepted" || k = "moves_rejected")
      in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "seed %d: span args jobs-independent" seed)
        (span_args obs1) (span_args obs4);
      (* And the placement itself. *)
      let assignment p =
        List.init
          (Msched_partition.Partition.num_blocks (Placement.partition p))
          (fun b ->
            Msched_netlist.Ids.Fpga.to_int
              (Placement.fpga_of_block p (Msched_netlist.Ids.Block.of_int b)))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: identical placement" seed)
        (assignment p1) (assignment p4))
    [ 700; 701; 702 ]

(* ---- Oversubscription budget: jobs x compile_jobs capped. ---- *)

let test_jobs_budget () =
  let ok ~jobs ~compile_jobs ~recommended =
    match Compile.check_jobs_budget ~recommended ~jobs ~compile_jobs () with
    | Ok () -> true
    | Error _ -> false
  in
  (* Either knob alone may exceed the budget. *)
  Alcotest.(check bool) "jobs alone passes" true
    (ok ~jobs:16 ~compile_jobs:1 ~recommended:8);
  Alcotest.(check bool) "compile-jobs alone passes" true
    (ok ~jobs:1 ~compile_jobs:16 ~recommended:8);
  (* Product within budget passes. *)
  Alcotest.(check bool) "product = budget passes" true
    (ok ~jobs:2 ~compile_jobs:4 ~recommended:8);
  (* Product beyond budget is a structured E_PARSE diagnostic. *)
  Alcotest.(check bool) "product > budget fails" false
    (ok ~jobs:4 ~compile_jobs:4 ~recommended:8);
  (match Compile.check_jobs_budget ~recommended:8 ~jobs:3 ~compile_jobs:3 () with
  | Ok () -> Alcotest.fail "3x3 > 8 must be rejected"
  | Error d ->
      Alcotest.(check string) "diagnostic code" "E_PARSE"
        (Diag.code_name d.Diag.code))

(* ---- tiers.par.* accounting sanity on a direct schedule call. ---- *)

let test_tiers_par_counters () =
  let d =
    Design_gen.random_multidomain ~seed:900 ~domains:3 ~modules:16
      ~mts_fraction:0.25 ()
  in
  let prepared =
    Compile.prepare
      ~options:{ Compile.default_options with Compile.max_block_weight = 32 }
      d.Design_gen.netlist
  in
  let obs = Sink.create () in
  let sched =
    Compile.route ~obs ~jobs:4 prepared Tiers.default_options
  in
  let sched_seq = Compile.route prepared Tiers.default_options in
  Alcotest.(check string) "route jobs=4 == jobs=1"
    (Schedule.to_json_string sched_seq)
    (Schedule.to_json_string sched);
  let committed = Sink.counter obs "tiers.par.links_committed" in
  let redone = Sink.counter obs "tiers.par.links_redone" in
  let solo = Sink.counter obs "tiers.par.links_solo" in
  let links = Sink.counter obs "sched.links" in
  Alcotest.(check int) "every link accounted once" links
    (committed + redone + solo);
  Alcotest.(check bool) "some links actually speculated" true
    (committed + redone > 0);
  Alcotest.(check bool) "batches recorded" true
    (Sink.counter obs "tiers.par.batches" > 0)

let suite =
  [
    Alcotest.test_case "parallel differential: 51-seed set" `Slow
      test_differential_many_seeds;
    Alcotest.test_case "parallel differential: families x modes" `Slow
      test_differential_families;
    QCheck_alcotest.to_alcotest prop_jobs_agree;
    Alcotest.test_case "placement counters jobs-independent" `Quick
      test_placement_counters_jobs_independent;
    Alcotest.test_case "jobs budget check" `Quick test_jobs_budget;
    Alcotest.test_case "tiers.par counters account every link" `Quick
      test_tiers_par_counters;
  ]
