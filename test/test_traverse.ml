open Msched_netlist
module B = Netlist.Builder

(* i1 -> g1 -> g2 -> ff.d ; i1 -> g2 (reconvergent: min 1, max 2 to g2 out) *)
let diamond () =
  let b = B.create () in
  let d = B.add_domain b "clk" in
  let i1 = B.add_input b ~domain:d () in
  let g1 = B.add_gate b Cell.Not [ i1 ] in
  let g2 = B.add_gate b Cell.And [ g1; i1 ] in
  let q = B.add_flip_flop b ~data:g2 ~clock:(Cell.Dom_clock d) () in
  let (_ : Ids.Cell.t) = B.add_output b q in
  (B.finalize b, i1, g1, g2, q)

let region_of nl = Traverse.make nl ~member:(fun _ -> true)

let test_delays () =
  let nl, i1, g1, g2, _ = diamond () in
  let region = region_of nl in
  let tbl = Traverse.delays_from region i1 in
  let d n = Ids.Net.Tbl.find tbl n in
  Alcotest.(check int) "src dmin" 0 (d i1).Traverse.dmin;
  Alcotest.(check int) "src dmax" 0 (d i1).Traverse.dmax;
  Alcotest.(check int) "g1 dmin" 1 (d g1).Traverse.dmin;
  Alcotest.(check int) "g2 dmin (short side)" 1 (d g2).Traverse.dmin;
  Alcotest.(check int) "g2 dmax (long side)" 2 (d g2).Traverse.dmax

let test_sink_terms () =
  let nl, i1, _, g2, _ = diamond () in
  let region = region_of nl in
  let sinks = Traverse.sink_terms_from region i1 in
  (* The flip-flop data pin, reached through g2. *)
  let ff_sink =
    List.find_opt
      (fun ((tm : Netlist.term), _) ->
        match (Netlist.cell nl tm.Netlist.term_cell).Cell.kind with
        | Cell.Flip_flop -> true
        | _ -> false)
      sinks
  in
  match ff_sink with
  | None -> Alcotest.fail "flip-flop sink not found"
  | Some (_, delay) ->
      Alcotest.(check int) "delay min" 1 delay.Traverse.dmin;
      Alcotest.(check int) "delay max" 2 delay.Traverse.dmax;
      ignore g2

let test_reaches () =
  let nl, i1, g1, g2, q = diamond () in
  let region = region_of nl in
  Alcotest.(check bool) "i1 reaches g2" true (Traverse.reaches region i1 g2);
  Alcotest.(check bool) "g1 reaches g2" true (Traverse.reaches region g1 g2);
  Alcotest.(check bool) "i1 does not reach q (ff cut)" false
    (Traverse.reaches region i1 q)

let test_region_restriction () =
  let nl, i1, g1, g2, _ = diamond () in
  (* Exclude g2's cell from the region: i1 only reaches g1. *)
  let g2_cell = (Netlist.driver nl g2).Cell.id in
  let region =
    Traverse.make nl ~member:(fun c -> not (Ids.Cell.equal c g2_cell))
  in
  Alcotest.(check bool) "reaches g1" true (Traverse.reaches region i1 g1);
  Alcotest.(check bool) "not g2" false (Traverse.reaches region i1 g2)

let test_cones () =
  let nl, i1, _, g2, q = diamond () in
  let fanin = Traverse.fanin_cone nl g2 in
  Alcotest.(check bool) "fanin has input driver" true
    (Ids.Cell.Set.mem (Netlist.driver nl i1).Cell.id fanin);
  let fanout = Traverse.fanout_cone nl i1 in
  Alcotest.(check bool) "fanout has ff" true
    (Ids.Cell.Set.mem (Netlist.driver nl q).Cell.id fanout)

let suite =
  [
    Alcotest.test_case "min/max delays" `Quick test_delays;
    Alcotest.test_case "sink terms" `Quick test_sink_terms;
    Alcotest.test_case "reaches" `Quick test_reaches;
    Alcotest.test_case "region restriction" `Quick test_region_restriction;
    Alcotest.test_case "cones" `Quick test_cones;
  ]
