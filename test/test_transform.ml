open Msched_netlist
module B = Netlist.Builder
module DA = Msched_mts.Domain_analysis
module Transform = Msched_mts.Transform

(* A flip-flop clocked by a net that mixes two domains: an MTS flip-flop. *)
let mts_ff_design () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let clk_mix = B.add_gate b ~name:"clk_mix" Cell.Or [ i0; i1 ] in
  let data = B.add_input b ~domain:d0 () in
  let q =
    B.add_flip_flop b ~name:"mts_ff" ~data ~clock:(Cell.Net_trigger clk_mix) ()
  in
  let (_ : Ids.Cell.t) = B.add_output b q in
  (B.finalize b, q)

let test_rewrites_mts_ff () =
  let nl, q = mts_ff_design () in
  let da = DA.compute nl in
  let r = Transform.master_slave nl da in
  Alcotest.(check int) "one rewrite" 1 (List.length r.Transform.rewrites);
  let nl' = r.Transform.netlist in
  (* One more cell (ff -> 2 latches), one more net (master output). *)
  Alcotest.(check int) "cell count" (Netlist.num_cells nl + 1) (Netlist.num_cells nl');
  Alcotest.(check int) "net count" (Netlist.num_nets nl + 1) (Netlist.num_nets nl');
  (* The slave drives the original output net. *)
  let rw = List.hd r.Transform.rewrites in
  let slave = Netlist.cell nl' rw.Transform.slave in
  Alcotest.(check (option int)) "slave drives q" (Some (Ids.Net.to_int q))
    (Option.map Ids.Net.to_int slave.Cell.output);
  (match slave.Cell.kind with
  | Cell.Latch { active_high } ->
      Alcotest.(check bool) "slave active high" true active_high
  | _ -> Alcotest.fail "slave is not a latch");
  let master = Netlist.cell nl' rw.Transform.master in
  (match master.Cell.kind with
  | Cell.Latch { active_high } ->
      Alcotest.(check bool) "master active low" false active_high
  | _ -> Alcotest.fail "master is not a latch");
  (* Master output feeds the slave data pin. *)
  Alcotest.(check (option int)) "master feeds slave"
    (Option.map Ids.Net.to_int master.Cell.output)
    (Some (Ids.Net.to_int slave.Cell.data_inputs.(0)))

let test_preserves_net_ids () =
  let nl, _ = mts_ff_design () in
  let da = DA.compute nl in
  let r = Transform.master_slave nl da in
  let nl' = r.Transform.netlist in
  Netlist.iter_nets nl (fun n ni ->
      let ni' = Netlist.net nl' n in
      Alcotest.(check string) "net name preserved" ni.Netlist.net_name
        ni'.Netlist.net_name)

let test_single_domain_ff_untouched () =
  let d = Msched_gen.Design_gen.fig1 () in
  let nl = d.Msched_gen.Design_gen.netlist in
  let da = DA.compute nl in
  let r = Transform.master_slave nl da in
  Alcotest.(check int) "no rewrites" 0 (List.length r.Transform.rewrites);
  Alcotest.(check int) "same cells" (Netlist.num_cells nl)
    (Netlist.num_cells r.Transform.netlist)

let test_check_supported_accepts_multi_domain_ram () =
  let b = B.create () in
  let d0 = B.add_domain b "c0" and d1 = B.add_domain b "c1" in
  let i0 = B.add_input b ~domain:d0 () in
  let i1 = B.add_input b ~domain:d1 () in
  let clk_mix = B.add_gate b Cell.Or [ i0; i1 ] in
  let rdata =
    B.add_ram b ~addr_bits:1 ~write_enable:i0 ~write_data:i0 ~write_addr:[ i0 ]
      ~read_addr:[ i1 ] ~clock:(Cell.Net_trigger clk_mix) ()
  in
  let (_ : Ids.Cell.t) = B.add_output b rdata in
  let nl = B.finalize b in
  let da = DA.compute nl in
  (* Multi-domain RAM write clocks are supported (the paper's "memories
     under test" future work, implemented here). *)
  match Transform.check_supported nl da with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_rewritten_netlist_valid () =
  let nl, _ = mts_ff_design () in
  let da = DA.compute nl in
  let r = Transform.master_slave nl da in
  (* The rewritten netlist must levelize (no structural damage). *)
  match Msched_netlist.Levelize.compute r.Transform.netlist with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "rewritten netlist has a cycle"

let test_rewrite_behavior_equivalent () =
  (* Golden-simulate original vs rewritten on the same edges: identical
     primary-output traces. *)
  let nl, q = mts_ff_design () in
  let da = DA.compute nl in
  let r = Transform.master_slave nl da in
  let stim = Msched_sim.Stimulus.make ~seed:5 nl in
  let g1 = Msched_sim.Ref_sim.create nl stim in
  let g2 = Msched_sim.Ref_sim.create r.Transform.netlist stim in
  let clocks =
    Msched_clocking.Async_gen.clocks ~seed:2 (Netlist.domains nl)
  in
  let edges = Msched_clocking.Edges.stream clocks ~horizon_ps:300_000 in
  List.iter
    (fun e ->
      Msched_sim.Ref_sim.apply_edge g1 e;
      Msched_sim.Ref_sim.apply_edge g2 e;
      Alcotest.(check bool) "q equal" (Msched_sim.Ref_sim.net_value g1 q)
        (Msched_sim.Ref_sim.net_value g2 q))
    edges

let suite =
  [
    Alcotest.test_case "rewrites mts ff" `Quick test_rewrites_mts_ff;
    Alcotest.test_case "preserves net ids" `Quick test_preserves_net_ids;
    Alcotest.test_case "single-domain ff untouched" `Quick test_single_domain_ff_untouched;
    Alcotest.test_case "multi-domain ram accepted" `Quick
      test_check_supported_accepts_multi_domain_ram;
    Alcotest.test_case "rewritten netlist valid" `Quick test_rewritten_netlist_valid;
    Alcotest.test_case "rewrite behavior equivalent" `Quick
      test_rewrite_behavior_equivalent;
  ]
