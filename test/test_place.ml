open Msched_netlist
module Partition = Msched_partition.Partition
module Placement = Msched_place.Placement
module Topology = Msched_arch.Topology
module System = Msched_arch.System
module Design_gen = Msched_gen.Design_gen

let prepared () =
  let d =
    Design_gen.random_multidomain ~seed:7 ~domains:2 ~modules:15 ~mts_fraction:0.2 ()
  in
  let part = Partition.make d.Design_gen.netlist ~max_weight:24 () in
  let topo = Topology.make_for_count Topology.Mesh (Partition.num_blocks part) in
  let sys = System.make topo ~pins_per_fpga:80 in
  (part, sys)

let test_bijective () =
  let part, sys = prepared () in
  let pl = Placement.place part sys () in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let f = Ids.Fpga.to_int (Placement.fpga_of_block pl b) in
      Alcotest.(check bool) "unique fpga" false (Hashtbl.mem seen f);
      Hashtbl.replace seen f ())
    (Partition.blocks part)

let test_inverse_consistent () =
  let part, sys = prepared () in
  let pl = Placement.place part sys () in
  List.iter
    (fun b ->
      let f = Placement.fpga_of_block pl b in
      match Placement.block_of_fpga pl f with
      | Some b' -> Alcotest.(check int) "roundtrip" (Ids.Block.to_int b) (Ids.Block.to_int b')
      | None -> Alcotest.fail "fpga lost its block")
    (Partition.blocks part)

let test_annealing_not_worse () =
  let part, sys = prepared () in
  let constructive = Placement.place part sys ~effort:0 () in
  let annealed = Placement.place part sys ~effort:6 () in
  Alcotest.(check bool)
    (Printf.sprintf "annealed %d <= constructive %d" (Placement.wirelength annealed)
       (Placement.wirelength constructive))
    true
    (Placement.wirelength annealed <= Placement.wirelength constructive)

let test_fpga_of_cell () =
  let part, sys = prepared () in
  let pl = Placement.place part sys () in
  let nl = Partition.netlist part in
  Netlist.iter_cells nl (fun c ->
      let expected = Placement.fpga_of_block pl (Partition.block_of_cell part c.Cell.id) in
      Alcotest.(check int) "fpga_of_cell"
        (Ids.Fpga.to_int expected)
        (Ids.Fpga.to_int (Placement.fpga_of_cell pl c.Cell.id)))

let test_too_many_blocks_rejected () =
  let part, _ = prepared () in
  let tiny = System.make (Topology.make Topology.Mesh ~nx:1 ~ny:2) ~pins_per_fpga:8 in
  if Partition.num_blocks part > 2 then
    match Placement.place part tiny () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected too-many-blocks rejection"

let test_of_assignment_duplicate_rejected () =
  let part, sys = prepared () in
  let n = Partition.num_blocks part in
  if n >= 2 then begin
    let assignment = Array.make n (Ids.Fpga.of_int 0) in
    match Placement.of_assignment part sys assignment with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected duplicate-FPGA rejection"
  end

let test_pinned_blocks () =
  let part, sys = prepared () in
  if Partition.num_blocks part >= 2 then begin
    let b0 = Ids.Block.of_int 0 and b1 = Ids.Block.of_int 1 in
    let f0 = Ids.Fpga.of_int 3 and f1 = Ids.Fpga.of_int 0 in
    let pl = Placement.place part sys ~pinned:[ (b0, f0); (b1, f1) ] () in
    Alcotest.(check int) "b0 pinned" 3 (Ids.Fpga.to_int (Placement.fpga_of_block pl b0));
    Alcotest.(check int) "b1 pinned" 0 (Ids.Fpga.to_int (Placement.fpga_of_block pl b1))
  end

let test_pinned_conflicts_rejected () =
  let part, sys = prepared () in
  if Partition.num_blocks part >= 2 then begin
    let b0 = Ids.Block.of_int 0 and b1 = Ids.Block.of_int 1 in
    let f = Ids.Fpga.of_int 0 in
    match Placement.place part sys ~pinned:[ (b0, f); (b1, f) ] () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected conflicting-pin rejection"
  end

let suite =
  [
    Alcotest.test_case "bijective" `Quick test_bijective;
    Alcotest.test_case "inverse consistent" `Quick test_inverse_consistent;
    Alcotest.test_case "annealing not worse" `Quick test_annealing_not_worse;
    Alcotest.test_case "fpga_of_cell" `Quick test_fpga_of_cell;
    Alcotest.test_case "too many blocks rejected" `Quick test_too_many_blocks_rejected;
    Alcotest.test_case "duplicate assignment rejected" `Quick
      test_of_assignment_duplicate_rejected;
    Alcotest.test_case "pinned blocks" `Quick test_pinned_blocks;
    Alcotest.test_case "pinned conflicts rejected" `Quick
      test_pinned_conflicts_rejected;
  ]
