module Netlist = Msched_netlist.Netlist
module Async_gen = Msched_clocking.Async_gen
module Edges = Msched_clocking.Edges
module Ref_sim = Msched_sim.Ref_sim
module Stimulus = Msched_sim.Stimulus
module Vcd = Msched_sim.Vcd
module Design_gen = Msched_gen.Design_gen

let trace () =
  let d = Design_gen.fig1 () in
  let nl = d.Design_gen.netlist in
  let sim = Ref_sim.create nl (Stimulus.make ~seed:3 nl) in
  let clocks = Async_gen.clocks ~seed:3 (Netlist.domains nl) in
  let edges = Edges.stream clocks ~horizon_ps:100_000 in
  Vcd.trace_to_string sim ~edges ()

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_header () =
  let t = trace () in
  Alcotest.(check bool) "timescale" true (contains t "$timescale 1ps $end");
  Alcotest.(check bool) "enddefinitions" true (contains t "$enddefinitions $end");
  Alcotest.(check bool) "dumpvars" true (contains t "$dumpvars");
  Alcotest.(check bool) "clock wires" true (contains t "clk_clk1");
  Alcotest.(check bool) "net wires" true (contains t "$var wire 1")

let test_timestamps_monotone () =
  let t = trace () in
  let last = ref (-1) in
  String.split_on_char '\n' t
  |> List.iter (fun line ->
         if String.length line > 1 && line.[0] = '#' then begin
           let stamp = int_of_string (String.sub line 1 (String.length line - 1)) in
           Alcotest.(check bool) "monotone" true (stamp > !last);
           last := stamp
         end);
  Alcotest.(check bool) "has timestamps" true (!last > 0)

let test_value_changes_present () =
  let t = trace () in
  (* The toggling clocks must produce many value-change lines. *)
  let changes =
    String.split_on_char '\n' t
    |> List.filter (fun l ->
           String.length l >= 2 && (l.[0] = '0' || l.[0] = '1') && l.[1] <> ' ')
  in
  Alcotest.(check bool) "many changes" true (List.length changes > 50)

let suite =
  [
    Alcotest.test_case "header" `Quick test_header;
    Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
    Alcotest.test_case "value changes" `Quick test_value_changes_present;
  ]
